(* The shared disk-backed verdict store: Blob framing, differential
   warm-vs-cold agreement, crash/corruption injection, key-soundness
   fuzzing against a brute-force oracle, version-bump invalidation, and a
   multi-thread hammer.

   ORDER MATTERS: the crash-injection test forks a child writer, so this
   suite must run before any suite that spawns a domain (OCaml 5 forbids
   fork afterwards).  It sits between Test_serve (which also forks) and
   Test_vproc (whose last case is the first domain spawner). *)

open Veriopt_ir
module A = Veriopt_alive.Alive
module Engine = Veriopt_alive.Engine
module Store = Veriopt_store.Store
module Blob = Veriopt_store.Blob
module Vcache = Veriopt_alive.Vcache
module Workload = Veriopt_serve.Workload
module Fault = Veriopt_fault.Fault
module I = Veriopt_eval.Interp
module Solver = Veriopt_smt.Solver

let dir_counter = ref 0

let temp_dir () =
  incr dir_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "veriopt-test-store-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (* a leftover from a killed earlier run must not leak entries in *)
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Unix.mkdir d 0o755;
  d

let digest = Store.version_digest [ ("test", 1) ]
let vkey i = Fmt.str "k%06d" i
let vval i = Fmt.str "value-of:%s" (vkey i)

(* The single segment file a freshly written-and-closed store left behind. *)
let only_segment dir =
  match
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".vst")
  with
  | [ f ] -> Filename.concat dir f
  | l -> Alcotest.failf "expected exactly one segment, found %d" (List.length l)

let write_store dir n =
  let t = Store.open_ ~flush_bytes:1 ~dir ~semantics:digest () in
  for i = 0 to n - 1 do
    Store.add t ~key:(vkey i) (vval i)
  done;
  Store.close t

(* Reopen [dir] read-only and check every readable value is the one its key
   demands — damage may lose records, never falsify them.  Returns the set
   of found indices and the scan stats. *)
let audit dir n =
  let t = Store.open_ ~read_only:true ~dir ~semantics:digest () in
  let found = ref [] in
  for i = 0 to n - 1 do
    match Store.find t ~key:(vkey i) with
    | Some v ->
      Alcotest.(check string) (Fmt.str "value of %s" (vkey i)) (vval i) v;
      found := i :: !found
    | None -> ()
  done;
  let s = Store.stats t in
  Store.close t;
  (List.rev !found, s)

(* ------------------------------------------------------------------ *)
(* Blob: the extracted Checkpoint-v2 atomic-write idioms *)

let blob_tests =
  let magic = "TEST-BLOB" and version = 3 in
  let read path = Blob.read_framed ~magic ~version ~path in
  [
    Alcotest.test_case "write_framed round-trips and rotates .prev" `Quick (fun () ->
        let dir = temp_dir () in
        let path = Filename.concat dir "blob" in
        Blob.write_framed ~magic ~version ~path "first";
        Blob.write_framed ~magic ~version ~path "second";
        (match read path with
        | Ok p -> Alcotest.(check string) "payload" "second" p
        | Error _ -> Alcotest.fail "fresh blob unreadable");
        match read (Blob.prev_path path) with
        | Ok p -> Alcotest.(check string) ".prev holds the prior payload" "first" p
        | Error _ -> Alcotest.fail ".prev unreadable");
    Alcotest.test_case "every corruption mode maps to its typed error" `Quick (fun () ->
        let dir = temp_dir () in
        let path = Filename.concat dir "blob" in
        let reset payload = Blob.write_framed ~magic ~version ~path payload in
        let patch off b =
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          ignore (Unix.write fd (Bytes.make 1 b) 0 1);
          Unix.close fd
        in
        let expect name want =
          match read path with
          | Error e when e = want -> ()
          | Error _ -> Alcotest.failf "%s: wrong error" name
          | Ok _ -> Alcotest.failf "%s: read succeeded" name
        in
        Alcotest.(check bool) "missing" true (read (Filename.concat dir "no") = Error Blob.Missing);
        reset "payload";
        Unix.truncate path 3;
        expect "truncated header" Blob.Truncated_header;
        reset "payload";
        Unix.truncate path (String.length magic + 8 + 3);
        expect "truncated payload" Blob.Truncated_payload;
        reset "payload";
        patch 0 'X';
        expect "bad magic" Blob.Bad_magic;
        reset "payload";
        patch (String.length magic + 10) 'X';
        (* a flipped payload byte must fail the CRC, not decode wrong *)
        expect "crc mismatch" Blob.Crc_mismatch);
  ]

(* ------------------------------------------------------------------ *)
(* Store basics: persistence, cross-writer visibility, version bump *)

let store_tests =
  [
    Alcotest.test_case "entries persist across close and reopen" `Quick (fun () ->
        let dir = temp_dir () in
        write_store dir 20;
        let found, s = audit dir 20 in
        Alcotest.(check int) "all entries back" 20 (List.length found);
        Alcotest.(check int) "none corrupt" 0 s.Store.corrupt_entries;
        Alcotest.(check int) "none stale" 0 s.Store.stale_version_skips);
    Alcotest.test_case "a second writer's flushed appends are visible on refresh" `Quick
      (fun () ->
        let dir = temp_dir () in
        let a = Store.open_ ~dir ~semantics:digest () in
        let b = Store.open_ ~dir ~semantics:digest () in
        Store.add a ~key:"shared" "from-a";
        Store.flush a;
        Store.refresh b;
        (match Store.find b ~key:"shared" with
        | Some v -> Alcotest.(check string) "b reads a's append" "from-a" v
        | None -> Alcotest.fail "b missed a's flushed entry");
        Store.close a;
        Store.close b);
    Alcotest.test_case "version bump invalidates all prior entries, reopen restores them"
      `Quick (fun () ->
        let dir = temp_dir () in
        write_store dir 5;
        let other = Store.version_digest [ ("test", 2) ] in
        let t = Store.open_ ~read_only:true ~dir ~semantics:other () in
        for i = 0 to 4 do
          Alcotest.(check bool) (Fmt.str "%s stale under bumped digest" (vkey i)) true
            (Store.find t ~key:(vkey i) = None)
        done;
        let s = Store.stats t in
        Store.close t;
        Alcotest.(check bool) "stale skips counted" true (s.Store.stale_version_skips >= 5);
        Alcotest.(check int) "nothing indexed" 0 s.Store.entries;
        let found, _ = audit dir 5 in
        Alcotest.(check int) "original digest reads everything again" 5 (List.length found));
    Alcotest.test_case "closed store: counted miss, dropped add, no exception" `Quick
      (fun () ->
        let dir = temp_dir () in
        let t = Store.open_ ~dir ~semantics:digest () in
        Store.add t ~key:"k" "v";
        Store.close t;
        Store.close t;
        Alcotest.(check bool) "find after close misses" true (Store.find t ~key:"k" = None);
        Store.add t ~key:"k2" "v2";
        Alcotest.(check bool) "miss counted" true ((Store.stats t).Store.misses >= 1));
  ]

(* ------------------------------------------------------------------ *)
(* Crash and corruption injection (satellite: every damage mode degrades
   to a counted miss — never a wrong value, never an exception) *)

let crash_tests =
  [
    Alcotest.test_case "SIGKILL mid-write: survivors intact, tail torn at worst" `Quick
      (fun () ->
        let dir = temp_dir () in
        let n = 100_000 in
        (match Unix.fork () with
        | 0 ->
          (* child: append as fast as possible until killed; flush_bytes=1
             pushes every record through the channel immediately so the
             kill lands mid-stream *)
          (try
             let t = Store.open_ ~flush_bytes:1 ~dir ~semantics:digest () in
             for i = 0 to n - 1 do
               Store.add t ~key:(vkey i) (vval i)
             done;
             Store.close t
           with _ -> ());
          Unix._exit 0
        | pid ->
          Unix.sleepf 0.15;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid));
        let found, _ = audit dir n in
        Alcotest.(check bool)
          (Fmt.str "some records survived the kill (%d)" (List.length found))
          true
          (List.length found > 0);
        (* appends are sequential: everything before the torn tail survives,
           so the found set must be a prefix 0..k-1 *)
        List.iteri
          (fun i j -> Alcotest.(check int) "survivors form a prefix" i j)
          found);
    Alcotest.test_case "truncated segment: a torn tail is a miss, not a lie" `Quick
      (fun () ->
        let dir = temp_dir () in
        write_store dir 50;
        let seg = only_segment dir in
        Unix.truncate seg ((Unix.stat seg).Unix.st_size - 3);
        let found, _ = audit dir 50 in
        Alcotest.(check int) "only the last record lost" 49 (List.length found);
        Alcotest.(check bool) "the lost one is the tail" true (not (List.mem 49 found)));
    Alcotest.test_case "bit-flipped record: CRC catches it, scan resyncs past it" `Quick
      (fun () ->
        let dir = temp_dir () in
        write_store dir 50;
        let seg = only_segment dir in
        (* record 0 spans [0, 33+7+16): flip a payload byte inside its value *)
        let fd = Unix.openfile seg [ Unix.O_RDWR ] 0 in
        ignore (Unix.lseek fd 45 Unix.SEEK_SET);
        let b = Bytes.create 1 in
        ignore (Unix.read fd b 0 1);
        ignore (Unix.lseek fd 45 Unix.SEEK_SET);
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
        ignore (Unix.write fd b 0 1);
        Unix.close fd;
        let found, s = audit dir 50 in
        Alcotest.(check int) "49 records survive" 49 (List.length found);
        Alcotest.(check bool) "record 0 dropped" true (not (List.mem 0 found));
        Alcotest.(check bool) "damage counted" true
          (s.Store.corrupt_entries + s.Store.stale_version_skips >= 1));
    Alcotest.test_case "garbage segment file: scan skips it whole, store still serves"
      `Quick (fun () ->
        let dir = temp_dir () in
        write_store dir 10;
        let oc = open_out (Filename.concat dir "seg-99999-0.vst") in
        output_string oc "this is not a segment at all, just noise bytes";
        close_out oc;
        let found, _ = audit dir 10 in
        Alcotest.(check int) "real records unaffected" 10 (List.length found));
    Alcotest.test_case "store_corrupt / store_stale faults force counted misses" `Quick
      (fun () ->
        let dir = temp_dir () in
        write_store dir 1;
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let check_kind spec get =
          (match Fault.configure_string spec with
          | Ok () -> ()
          | Error e -> Alcotest.failf "bad fault spec: %s" e);
          let t = Store.open_ ~read_only:true ~dir ~semantics:digest () in
          Alcotest.(check bool) (spec ^ " forces a miss") true
            (Store.find t ~key:(vkey 0) = None);
          let s = Store.stats t in
          Store.close t;
          Alcotest.(check bool) (spec ^ " counted") true (get s >= 1);
          Alcotest.(check bool) (spec ^ " is a miss") true (s.Store.misses >= 1)
        in
        check_kind "seed=1,store_corrupt=1.0" (fun s -> s.Store.corrupt_entries);
        check_kind "seed=1,store_stale=1.0" (fun s -> s.Store.stale_version_skips);
        Fault.disable ();
        let found, _ = audit dir 1 in
        Alcotest.(check int) "entry intact once the fault clears" 1 (List.length found));
  ]

(* ------------------------------------------------------------------ *)
(* Differential: a warm store answers verdict-for-verdict like the cold
   run that filled it, with zero tier-2 solver calls *)

let run_workload e qs =
  List.map
    (fun q ->
      (Engine.verify_funcs ?unroll:q.Workload.w_unroll
         ?max_conflicts:q.Workload.w_max_conflicts e q.Workload.w_m ~src:q.Workload.w_src
         ~tgt:q.Workload.w_tgt)
        .A.category)
    qs

let differential_tests =
  [
    Alcotest.test_case "warm rerun agrees verdict-for-verdict with zero solver calls"
      `Quick (fun () ->
        let dir = temp_dir () in
        let qs = List.init 18 (fun i -> Workload.make ~seed:5 ~index:i) in
        let cold_engine = Engine.create ~tier1_samples:0 ~store:dir () in
        let cold = run_workload cold_engine qs in
        let writes =
          match Engine.store_stats cold_engine with
          | Some s -> s.Store.writes
          | None -> Alcotest.fail "cold engine mounted no store"
        in
        Engine.shutdown cold_engine;
        Alcotest.(check bool) "cold run wrote entries" true (writes > 0);
        let warm_engine = Engine.create ~tier1_samples:0 ~store:dir () in
        let warm = run_workload warm_engine qs in
        let vs = Engine.stats warm_engine in
        let ss = Option.get (Engine.store_stats warm_engine) in
        Engine.shutdown warm_engine;
        List.iteri
          (fun i (c, w) ->
            Alcotest.(check bool)
              (Fmt.str "query %d (%s) agrees" i (List.nth qs i).Workload.w_label)
              true (c = w))
          (List.combine cold warm);
        Alcotest.(check int) "zero tier-2 solver calls when warm" 0
          vs.Vcache.tier2_runs;
        Alcotest.(check int) "zero tier-1 runs when warm" 0
          (vs.Vcache.tier1_hits + vs.Vcache.tier1_misses);
        Alcotest.(check int) "nothing rewritten when warm" 0 ss.Store.writes;
        Alcotest.(check int) "nothing corrupt" 0 ss.Store.corrupt_entries;
        Alcotest.(check bool) "store hits served the rerun" true (ss.Store.hits > 0));
    Alcotest.test_case "alpha-renamed resubmission hits the cold run's entry" `Quick
      (fun () ->
        let dir = temp_dir () in
        let q = Workload.make ~seed:5 ~index:1 in
        let cold_engine = Engine.create ~tier1_samples:0 ~store:dir () in
        let cold = run_workload cold_engine [ q ] in
        Engine.shutdown cold_engine;
        let warm_engine = Engine.create ~tier1_samples:0 ~store:dir () in
        let warm = run_workload warm_engine [ Workload.alpha_variant q ] in
        let vs = Engine.stats warm_engine in
        let ss = Option.get (Engine.store_stats warm_engine) in
        Engine.shutdown warm_engine;
        Alcotest.(check bool) "same verdict for the renamed twin" true (cold = warm);
        Alcotest.(check int) "no solver call" 0 vs.Vcache.tier2_runs;
        Alcotest.(check bool) "served from the store" true (ss.Store.hits > 0));
    Alcotest.test_case "chaos store_corrupt on a warm store recomputes, never lies" `Quick
      (fun () ->
        let dir = temp_dir () in
        let q = Workload.make ~seed:5 ~index:2 in
        let cold_engine = Engine.create ~tier1_samples:0 ~store:dir () in
        let cold = run_workload cold_engine [ q ] in
        Engine.shutdown cold_engine;
        (match Fault.configure_string "seed=1,store_corrupt=1.0" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "bad fault spec: %s" e);
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let warm_engine = Engine.create ~tier1_samples:0 ~store:dir () in
        let warm = run_workload warm_engine [ q ] in
        let ss = Option.get (Engine.store_stats warm_engine) in
        Engine.shutdown warm_engine;
        Alcotest.(check bool) "recomputed verdict agrees" true (cold = warm);
        Alcotest.(check bool) "the injected corruption was counted" true
          (ss.Store.corrupt_entries >= 1));
    Alcotest.test_case "store payload encode/decode round-trips, garbage decodes to None"
      `Quick (fun () ->
        let delta = Solver.diff (Solver.stats ()) (Solver.stats ()) in
        let m = Parser.parse_module
            "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}" in
        let f = List.hd m.Ast.funcs in
        let v = A.verify_funcs m ~src:f ~tgt:f in
        (match Engine.store_decode (Engine.store_encode ~tier:2 ~delta v) with
        | Some (v', tier, _) ->
          Alcotest.(check bool) "verdict back" true (v'.A.category = v.A.category);
          Alcotest.(check int) "tier back" 2 tier
        | None -> Alcotest.fail "round-trip failed");
        Alcotest.(check bool) "garbage is None, not an exception" true
          (Engine.store_decode "not a payload" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Key soundness: alpha-renamed pairs collide onto one entry; mutated,
   oracle-distinguished pairs never do *)

let ops = [| "add"; "sub"; "mul"; "and"; "or"; "xor" |]

(* A random straight-line i5 function: [n] binops over %x, %y, previous
   temps and constants, the last one feeding ret through a constant
   operand (the mutation site). *)
let gen_prog st =
  let n = 2 + Random.State.int st 3 in
  let body = ref [] in
  for i = 0 to n - 2 do
    let pick_val () =
      match Random.State.int st (i + 2) with
      | 0 -> "%x"
      | 1 -> "%y"
      | j -> Fmt.str "%%t%d" (j - 2)
    in
    let b =
      if Random.State.bool st then pick_val ()
      else string_of_int (Random.State.int st 32)
    in
    body :=
      Fmt.str "  %%t%d = %s i5 %s, %s" i ops.(Random.State.int st 6) (pick_val ()) b
      :: !body
  done;
  let last_op = ops.(Random.State.int st 6) in
  let last_in = Fmt.str "%%t%d" (n - 2) in
  let c = Random.State.int st 32 in
  let render c =
    Fmt.str "define i5 @f(i5 %%x, i5 %%y) {\nentry:\n%s\n  %%t%d = %s i5 %s, %d\n  ret i5 %%t%d\n}"
      (String.concat "\n" (List.rev !body))
      (n - 1) last_op last_in c (n - 1)
  in
  (render c, render ((c + 1) mod 32))

let parse1 text =
  let m = Parser.parse_module text in
  (m, List.hd m.Ast.funcs)

(* Brute-force oracle: equal return values on all 1024 i5 input pairs. *)
let oracle_equal m f g =
  let out fn x y =
    match (I.run m fn [ I.vint 5 (Int64.of_int x); I.vint 5 (Int64.of_int y) ]).I.ret with
    | Some (I.VInt { v; _ }) -> v
    | _ -> Alcotest.fail "oracle: non-integer result from a straight-line func"
  in
  let ok = ref true in
  for x = 0 to 31 do
    for y = 0 to 31 do
      if out f x y <> out g x y then ok := false
    done
  done;
  !ok

let fuzz_tests =
  [
    Alcotest.test_case
      "fuzz: alpha twins collide, oracle-distinguished mutants never do" `Quick (fun () ->
        let distinguished = ref 0 in
        for seed = 0 to 149 do
          let st = Random.State.make [| seed; 0xbeef |] in
          let text, mutant_text = gen_prog st in
          let m, f = parse1 text in
          let _, fm = parse1 mutant_text in
          let key = Engine.store_key m ~src:f ~tgt:f in
          (* alpha soundness: renaming both sides lands on the same entry *)
          let key_alpha =
            Engine.store_key m ~src:(Builder.renumber f) ~tgt:(Builder.renumber f)
          in
          Alcotest.(check string) (Fmt.str "seed %d: alpha twins collide" seed) key key_alpha;
          (* knob soundness: any verdict-relevant flag splits the key *)
          Alcotest.(check bool) (Fmt.str "seed %d: unroll splits" seed) true
            (Engine.store_key ~unroll:5 m ~src:f ~tgt:f <> key);
          Alcotest.(check bool) (Fmt.str "seed %d: budget splits" seed) true
            (Engine.store_key ~max_conflicts:1 m ~src:f ~tgt:f <> key);
          (* non-collision: if the oracle can tell the mutant apart, the
             keys must differ; if the keys collide, the oracle must not *)
          let key_mut = Engine.store_key m ~src:f ~tgt:fm in
          if oracle_equal m f fm then ()
          else begin
            incr distinguished;
            Alcotest.(check bool)
              (Fmt.str "seed %d: distinguished mutant gets its own key" seed)
              true (key <> key_mut)
          end;
          if key = key_mut then
            Alcotest.(check bool)
              (Fmt.str "seed %d: colliding keys imply oracle equivalence" seed)
              true (oracle_equal m f fm)
        done;
        (* the fuzz must actually exercise the interesting branch *)
        Alcotest.(check bool)
          (Fmt.str "oracle distinguished %d mutants" !distinguished)
          true
          (!distinguished > 50));
    Alcotest.test_case "semantics digest is stable and component-sensitive" `Quick
      (fun () ->
        Alcotest.(check string) "digest is deterministic" (Engine.semantics_digest ())
          (Engine.semantics_digest ());
        Alcotest.(check int) "fixed width" 16 (String.length (Engine.semantics_digest ()));
        let d1 = Store.version_digest [ ("encode", 1); ("sat", 1) ] in
        let d2 = Store.version_digest [ ("encode", 2); ("sat", 1) ] in
        let d3 = Store.version_digest [ ("sat", 1); ("encode", 1) ] in
        Alcotest.(check bool) "version bump changes it" true (d1 <> d2);
        Alcotest.(check bool) "component order matters" true (d1 <> d3));
  ]

(* ------------------------------------------------------------------ *)
(* Concurrency: one handle hammered by many threads — no torn reads, no
   lost writes *)

let hammer_tests =
  [
    Alcotest.test_case "threaded hammer: every write readable, byte-exact" `Quick
      (fun () ->
        let dir = temp_dir () in
        let t = Store.open_ ~flush_bytes:512 ~dir ~semantics:digest () in
        let n_threads = 6 and per = 400 in
        let key i j = Fmt.str "t%d-%04d" i j in
        let value i j = Fmt.str "payload:%d:%d:%s" i j (String.make (j mod 32) 'x') in
        let worker i =
          Thread.create
            (fun () ->
              for j = 0 to per - 1 do
                Store.add t ~key:(key i j) (value i j);
                (* interleave reads of a neighbour's keys: either absent or
                   byte-exact, never torn *)
                if j land 7 = 0 then
                  match Store.find t ~key:(key ((i + 1) mod n_threads) (j / 2)) with
                  | Some v ->
                    Alcotest.(check string) "concurrent read exact"
                      (value ((i + 1) mod n_threads) (j / 2))
                      v
                  | None -> ()
              done)
            ()
        in
        let ths = List.init n_threads worker in
        List.iter Thread.join ths;
        for i = 0 to n_threads - 1 do
          for j = 0 to per - 1 do
            match Store.find t ~key:(key i j) with
            | Some v -> Alcotest.(check string) "no lost or torn write" (value i j) v
            | None -> Alcotest.failf "lost write %s" (key i j)
          done
        done;
        let s = Store.stats t in
        Alcotest.(check int) "every distinct key indexed" (n_threads * per)
          s.Store.entries;
        Store.close t;
        (* and the whole load survives a reopen from disk *)
        let r = Store.open_ ~read_only:true ~dir ~semantics:digest () in
        Alcotest.(check int) "all entries durable" (n_threads * per)
          (Store.stats r).Store.entries;
        Alcotest.(check int) "no corruption from concurrency" 0
          (Store.stats r).Store.corrupt_entries;
        Store.close r);
  ]

let suite =
  ( "store",
    blob_tests @ store_tests @ crash_tests @ differential_tests @ fuzz_tests @ hammer_tests
  )

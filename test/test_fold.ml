(* The emit-time fold engine: differential equivalence against the
   reference rescanning driver (identical functions, bit-identical traces,
   identical fuel accounting) over both Cgen profiles and mined corpus
   cases, the dead-rule-family lint, the PHIBARRIER guard, fuel-exhaustion
   surfacing, and the canonical-key layer (commuted / renormalized twins
   share Vcache/store/coalesce keys; semantics-digest bumps invalidate
   stale store entries with zero corrupt serves). *)

open Veriopt_ir
module IC = Veriopt_passes.Instcombine
module FE = Veriopt_passes.Fold_engine
module Cgen = Veriopt_data.Cgen
module Lower = Veriopt_data.Lower
module Miner = Veriopt_adversary.Miner
module Mutate = Veriopt_adversary.Mutate
module Engine = Veriopt_alive.Engine
module Alive = Veriopt_alive.Alive
module Vcache = Veriopt_alive.Vcache
module Store = Veriopt_store.Store

let m0 = Ast.empty_module
let parse = Parser.parse_func
let print = Printer.func_to_string

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let trace_str (t : IC.trace_entry list) =
  String.concat "; " (List.map (fun (e : IC.trace_entry) -> e.IC.rule ^ "@" ^ e.IC.site) t)

(* The differential heart: both drivers must agree on everything the
   result record exposes.  Trace equality is checked as *lists*, which is
   strictly stronger than the rule-multiset requirement. *)
let check_differential ?max_steps ~label (m : Ast.modul) (f : Ast.func) =
  let a = IC.run ?max_steps m f in
  let b = IC.run_fixpoint ?max_steps m f in
  Alcotest.(check string) (label ^ ": function") (print b.IC.func) (print a.IC.func);
  Alcotest.(check string) (label ^ ": trace") (trace_str b.IC.trace) (trace_str a.IC.trace);
  Alcotest.(check int) (label ^ ": steps") b.IC.steps a.IC.steps;
  Alcotest.(check bool) (label ^ ": fuel_exhausted") b.IC.fuel_exhausted a.IC.fuel_exhausted;
  a

let fired_families = Hashtbl.create 16

let note_families (t : IC.trace_entry list) =
  List.iter
    (fun (e : IC.trace_entry) ->
      match IC.find_rule e.IC.rule with
      | Some r -> Hashtbl.replace fired_families r.Veriopt_passes.Rewrite.family ()
      | None -> if e.IC.rule = "constant-fold" then Hashtbl.replace fired_families "fold" ())
    t

let differential_over_cgen ~profile ~label n () =
  for seed = 0 to n - 1 do
    let m, f =
      match profile with
      | None -> Lower.lower (Cgen.generate ~seed ~name:"t" ())
      | Some p -> Lower.lower (Cgen.generate ~profile:p ~seed ~name:"t" ())
    in
    let r = check_differential ~label:(Fmt.str "%s seed %d" label seed) m f in
    note_families r.IC.trace
  done

(* Mined-corpus shapes: miner seeds plus one mutation round on top, the
   exact IR population the adversarial suite replays. *)
let differential_over_mined () =
  let cfg = Miner.default_config in
  let tried = ref 0 in
  for i = 0 to 39 do
    match Miner.seed_pair cfg i with
    | None -> ()
    | Some (_, p) ->
      incr tried;
      let check which f =
        let r = check_differential ~label:(Fmt.str "mined %d %s" i which) p.Mutate.a_m f in
        note_families r.IC.trace
      in
      check "src" p.Mutate.a_src;
      check "tgt" p.Mutate.a_tgt;
      let rng = Random.State.make [| 0x5eed; i |] in
      (match Mutate.apply rng p with
      | Some (_, p') when Mutate.valid p' -> check "mutant" p'.Mutate.a_tgt
      | _ -> ())
  done;
  Alcotest.(check bool) "miner produced seeds" true (!tried > 10)

(* One tiny body per rule family: together with the fuzz sweeps above,
   every family in the catalog must fire somewhere — a refactor that
   silently kills a family (matcher wiring, barrier overreach, ctx drift)
   fails here, not in production traces. *)
let family_battery =
  [
    ("add", "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 0\n  ret i32 %r\n}");
    ("sub", "define i32 @f(i32 %x) {\nentry:\n  %r = sub i32 %x, 0\n  ret i32 %r\n}");
    ("mul", "define i32 @f(i32 %x) {\nentry:\n  %r = mul i32 %x, 1\n  ret i32 %r\n}");
    ("div", "define i32 @f(i32 %x) {\nentry:\n  %r = sdiv i32 %x, 1\n  ret i32 %r\n}");
    ("logic", "define i32 @f(i32 %x) {\nentry:\n  %r = and i32 %x, %x\n  ret i32 %r\n}");
    ("shift", "define i32 @f(i32 %x) {\nentry:\n  %r = shl i32 %x, 0\n  ret i32 %r\n}");
    ("icmp", "define i1 @f(i32 %x) {\nentry:\n  %r = icmp ult i32 %x, 0\n  ret i1 %r\n}");
    ( "select",
      "define i32 @f(i1 %c, i32 %x) {\nentry:\n  %r = select i1 %c, i32 %x, i32 %x\n  ret i32 %r\n}"
    );
    ( "cast",
      "define i32 @f(i32 %x) {\nentry:\n  %t = trunc i32 %x to i8\n  %r = zext i8 %t to i32\n  ret i32 %r\n}"
    );
    ( "phi",
      "define i32 @f(i32 %x) {\nentry:\n  br label %next\nnext:\n  %p = phi i32 [ %x, %entry ]\n  ret i32 %p\n}"
    );
    ("fold", "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 2, 3\n  ret i32 %r\n}");
    ("canon", "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 5, %x\n  ret i32 %r\n}");
  ]

let dead_rule_lint () =
  List.iter
    (fun (fam, src) ->
      let f = parse src in
      let r = check_differential ~label:(Fmt.str "battery %s" fam) m0 f in
      note_families r.IC.trace;
      if not (Hashtbl.mem fired_families fam) then
        Alcotest.failf "battery case for family %s fired nothing of it (trace: %s)" fam
          (trace_str r.IC.trace))
    family_battery;
  let catalog_families = Hashtbl.create 16 in
  Hashtbl.replace catalog_families "fold" ();
  List.iter
    (fun (r : Veriopt_passes.Rewrite.rule) ->
      Hashtbl.replace catalog_families r.Veriopt_passes.Rewrite.family ())
    IC.all_rules;
  Hashtbl.iter
    (fun fam () ->
      if not (Hashtbl.mem fired_families fam) then
        Alcotest.failf "rule family %s never fired across the sweep (dead rule?)" fam)
    catalog_families

(* ------------------------------------------------------------------ *)
(* PHIBARRIER *)

(* The degenerate loop-carried fold: a single-incoming phi in a loop
   header whose incoming is defined *below* it.  Folding %i to %j would
   rewrite %j's own operand into a self-reference (`%j = add %j, 1`).
   The barrier must refuse, in both drivers. *)
let phi_barrier_degenerate () =
  let src =
    "define i32 @f(i32 %n) {\nentry:\n  br label %loop\nloop:\n  %i = phi i32 [ %j, %loop ]\n  %j = add i32 %i, 1\n  %c = icmp slt i32 %j, %n\n  br i1 %c, label %loop, label %done\ndone:\n  ret i32 %j\n}"
  in
  let f = parse src in
  let before = Atomic.get FE.barrier_hits_total in
  let r = check_differential ~label:"phi barrier" m0 f in
  Alcotest.(check bool) "barrier consulted" true (Atomic.get FE.barrier_hits_total > before);
  List.iter
    (fun (e : IC.trace_entry) ->
      if e.IC.site = "i" then Alcotest.failf "barred phi fold fired anyway: %s" e.IC.rule)
    r.IC.trace;
  (* the self-reference never materialized *)
  Alcotest.(check bool) "add stays on %i" true
    (contains ~affix:"add i32 %i, 1" (print r.IC.func))

(* A forward phi reference outside any loop must still fold: the barrier
   only guards loop headers. *)
let phi_barrier_scope () =
  let src =
    "define i32 @f(i32 %x) {\nentry:\n  br label %a\na:\n  %p = phi i32 [ %x, %entry ]\n  %r = add i32 %p, 0\n  ret i32 %r\n}"
  in
  let r = check_differential ~label:"phi no-loop" m0 (parse src) in
  Alcotest.(check bool) "phi folded away" true
    (not (contains ~affix:"phi" (print r.IC.func)))

(* ------------------------------------------------------------------ *)
(* Fuel *)

let fuel_surfacing () =
  (* a chain long enough to exhaust small budgets *)
  let body =
    String.concat "\n"
      ([ "define i32 @f(i32 %x) {"; "entry:" ]
      @ List.init 12 (fun i ->
            Fmt.str "  %%a%d = add i32 %s, 0" i (if i = 0 then "%x" else Fmt.str "%%a%d" (i - 1)))
      @ [ "  ret i32 %a11"; "}" ])
  in
  let f = parse body in
  let full = IC.run m0 f in
  Alcotest.(check bool) "full run reaches fixpoint" false full.IC.fuel_exhausted;
  Alcotest.(check bool) "steps counted" true (full.IC.steps >= 12);
  for max_steps = 0 to 5 do
    let r = check_differential ~max_steps ~label:(Fmt.str "fuel %d" max_steps) m0 f in
    Alcotest.(check bool)
      (Fmt.str "budget %d flagged" max_steps)
      true r.IC.fuel_exhausted;
    Alcotest.(check int) (Fmt.str "budget %d trace len" max_steps) max_steps
      (List.length r.IC.trace)
  done

(* ------------------------------------------------------------------ *)
(* Canonical keys *)

let commuted_twins () =
  let f1 = parse "define i32 @f(i32 %x, i32 %y) {\nentry:\n  %a = mul i32 %y, %x\n  %r = add i32 %a, %x\n  ret i32 %r\n}" in
  let f2 = parse "define i32 @f(i32 %x, i32 %y) {\nentry:\n  %a = mul i32 %x, %y\n  %r = add i32 %x, %a\n  ret i32 %r\n}" in
  let tgt = parse "define i32 @f(i32 %x, i32 %y) {\nentry:\n  %r = add i32 %x, %x\n  ret i32 %r\n}" in
  Alcotest.(check string) "store keys collide"
    (Engine.store_key m0 ~src:f1 ~tgt)
    (Engine.store_key m0 ~src:f2 ~tgt);
  Alcotest.(check string) "coalesce keys collide"
    (Engine.coalesce_key m0 ~src:f1 ~tgt)
    (Engine.coalesce_key m0 ~src:f2 ~tgt);
  (* icmp twins commute through the predicate mirror *)
  let g1 = parse "define i1 @f(i32 %x, i32 %y) {\nentry:\n  %r = icmp slt i32 %y, %x\n  ret i1 %r\n}" in
  let g2 = parse "define i1 @f(i32 %x, i32 %y) {\nentry:\n  %r = icmp sgt i32 %x, %y\n  ret i1 %r\n}" in
  Alcotest.(check string) "icmp twins collide"
    (Engine.coalesce_key m0 ~src:g1 ~tgt:g1)
    (Engine.coalesce_key m0 ~src:g2 ~tgt:g2);
  (* distinguished mutants never collide *)
  let h1 = parse "define i32 @f(i32 %x, i32 %y) {\nentry:\n  %r = sub i32 %x, %y\n  ret i32 %r\n}" in
  let h2 = parse "define i32 @f(i32 %x, i32 %y) {\nentry:\n  %r = sub i32 %y, %x\n  ret i32 %r\n}" in
  Alcotest.(check bool) "sub operand order is significant" false
    (Engine.coalesce_key m0 ~src:h1 ~tgt:h1 = Engine.coalesce_key m0 ~src:h2 ~tgt:h2);
  let k1 = parse "define i1 @f(i32 %x, i32 %y) {\nentry:\n  %r = icmp slt i32 %x, %y\n  ret i1 %r\n}" in
  let k2 = parse "define i1 @f(i32 %x, i32 %y) {\nentry:\n  %r = icmp slt i32 %y, %x\n  ret i1 %r\n}" in
  Alcotest.(check bool) "icmp swap without mirror is significant" false
    (Engine.coalesce_key m0 ~src:k1 ~tgt:k1 = Engine.coalesce_key m0 ~src:k2 ~tgt:k2)

(* Constants stored denormalized (sign-extended instead of masked) must
   key identically to their masked twin: build the unmasked form directly,
   bypassing the parser's masking constructor. *)
let renormalized_const_twins () =
  let mk value =
    let open Ast in
    {
      fname = "f";
      params = [ (Types.Int 8, "x") ];
      ret_ty = Types.Int 8;
      blocks =
        [
          {
            label = "entry";
            instrs =
              [
                {
                  name = Some "r";
                  instr =
                    Binop
                      {
                        op = And;
                        flags = no_flags;
                        ty = Types.Int 8;
                        lhs = Var "x";
                        rhs = Const (CInt { width = 8; value });
                      };
                };
              ];
            term = Ret (Some (Types.Int 8, Var "r"));
          };
        ];
    }
  in
  let masked = mk 0xF0L and unmasked = mk 0xFFFFFFFFFFFFFFF0L in
  Alcotest.(check string) "renormalized twins collide"
    (Engine.coalesce_key m0 ~src:masked ~tgt:masked)
    (Engine.coalesce_key m0 ~src:unmasked ~tgt:unmasked);
  let other = mk 0x70L in
  Alcotest.(check bool) "different constants stay distinct" false
    (Engine.coalesce_key m0 ~src:masked ~tgt:masked
    = Engine.coalesce_key m0 ~src:other ~tgt:other)

(* Twin queries hit one Vcache entry end to end, and conclusive verdicts
   agree across the whole canon class. *)
let vcache_twin_hits () =
  let engine = Engine.create ~tier1_samples:8 () in
  let src1 = parse "define i32 @f(i32 %x, i32 %y) {\nentry:\n  %r = add i32 %x, %y\n  ret i32 %r\n}" in
  let src2 = parse "define i32 @f(i32 %x, i32 %y) {\nentry:\n  %r = add i32 %y, %x\n  ret i32 %r\n}" in
  let tgt = parse "define i32 @f(i32 %x, i32 %y) {\nentry:\n  %r = add i32 %y, %x\n  ret i32 %r\n}" in
  let v1 = Engine.verify_funcs engine m0 ~src:src1 ~tgt in
  let h0 = (Engine.stats engine).Vcache.hits in
  let v2 = Engine.verify_funcs engine m0 ~src:src2 ~tgt in
  let h1 = (Engine.stats engine).Vcache.hits in
  Alcotest.(check bool) "commuted twin served from cache" true (h1 > h0);
  Alcotest.(check bool) "verdicts agree" true
    (v1.Alive.category = v2.Alive.category);
  Engine.shutdown engine

(* A store populated under a pre-refactor semantics digest must be
   entirely stale under the canon-bumped digest: skipped, not served, and
   never counted corrupt. *)
let dir_counter = ref 0

let temp_dir () =
  incr dir_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "veriopt-test-fold-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Unix.mkdir d 0o755;
  d

let store_digest_bump () =
  let dir = temp_dir () in
  (* the digest the store carried before ("canon", ...) joined the
     registry — any digest that differs from the engine's current one *)
  let old_digest = Store.version_digest [ ("pre-canon", 1) ] in
  Alcotest.(check bool) "digests differ" true (old_digest <> Engine.semantics_digest ());
  let s_old = Store.open_ ~dir ~semantics:old_digest () in
  Store.add s_old ~key:"pair-key" "stale-verdict";
  Store.close s_old;
  let s_new = Store.open_ ~dir ~semantics:(Engine.semantics_digest ()) () in
  Alcotest.(check (option string)) "stale entry not served" None (Store.find s_new ~key:"pair-key");
  let st = Store.stats s_new in
  Alcotest.(check bool) "skip was counted as stale" true (st.Store.stale_version_skips >= 1);
  Alcotest.(check int) "zero corrupt serves" 0 st.Store.corrupt_entries;
  Store.close s_new

(* Lower emits canonical IR: re-canonicalizing its output is the identity,
   on both profiles. *)
let lower_emits_canonical () =
  List.iter
    (fun profile ->
      for seed = 0 to 9 do
        let _, f =
          match profile with
          | None -> Lower.lower (Cgen.generate ~seed ~name:"t" ())
          | Some p -> Lower.lower (Cgen.generate ~profile:p ~seed ~name:"t" ())
        in
        List.iter
          (fun (b : Ast.block) ->
            List.iter
              (fun (ni : Ast.named_instr) ->
                if Canon.canon_instr ni.Ast.instr <> ni.Ast.instr then
                  Alcotest.failf "non-canonical emission (seed %d): %s" seed (print f))
              b.Ast.instrs)
          f.Ast.blocks
      done)
    [ None; Some Cgen.adversarial_profile ]

(* Zero conclusive flips across drivers: both optimized outputs verify
   identically against their source. *)
let no_conclusive_flips () =
  let engine = Engine.create ~tier1_samples:8 () in
  for seed = 0 to 3 do
    let m, f = Lower.lower (Cgen.generate ~seed ~name:"t" ()) in
    let a = IC.run m f in
    let b = IC.run_fixpoint m f in
    let va = Engine.verify_funcs engine m ~src:f ~tgt:a.IC.func in
    let vb = Engine.verify_funcs engine m ~src:f ~tgt:b.IC.func in
    Alcotest.(check bool) (Fmt.str "seed %d verdict agreement" seed) true
      (va.Alive.category = vb.Alive.category)
  done;
  Engine.shutdown engine

let suite =
  ( "fold",
    [
      Alcotest.test_case "differential: default Cgen stream" `Quick
        (differential_over_cgen ~profile:None ~label:"default" 20);
      Alcotest.test_case "differential: adversarial Cgen stream" `Quick
        (differential_over_cgen ~profile:(Some Cgen.adversarial_profile) ~label:"adversarial" 20);
      Alcotest.test_case "differential: mined corpus seeds and mutants" `Quick
        differential_over_mined;
      Alcotest.test_case "dead-rule lint: every family fires" `Quick dead_rule_lint;
      Alcotest.test_case "PHIBARRIER refuses the degenerate loop fold" `Quick
        phi_barrier_degenerate;
      Alcotest.test_case "PHIBARRIER leaves straight-line phis alone" `Quick phi_barrier_scope;
      Alcotest.test_case "fuel exhaustion is surfaced and differential" `Quick fuel_surfacing;
      Alcotest.test_case "commuted twins share keys; mutants do not" `Quick commuted_twins;
      Alcotest.test_case "renormalized constants share keys" `Quick renormalized_const_twins;
      Alcotest.test_case "Vcache serves the whole canon class" `Quick vcache_twin_hits;
      Alcotest.test_case "store digest bump invalidates pre-refactor entries" `Quick
        store_digest_bump;
      Alcotest.test_case "Lower emits canonical IR" `Quick lower_emits_canonical;
      Alcotest.test_case "zero conclusive flips across drivers" `Quick no_conclusive_flips;
    ] )

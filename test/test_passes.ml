(* The optimizer substrate: known-bits, folding, the rule catalog, memory
   optimizations, mem2reg, simplifycfg, DCE — each checked for the rewrite it
   performs, plus the global property that whole pipelines preserve semantics
   according to the verifier. *)

open Veriopt_ir
module PM = Veriopt_passes.Pass_manager
module IC = Veriopt_passes.Instcombine
module KB = Veriopt_passes.Known_bits
module A = Veriopt_alive.Alive

let m0 = Ast.empty_module
let parse = Parser.parse_func
let print = Printer.func_to_string

(* Run instcombine and check the optimized body printed form. *)
let after_instcombine src = print (IC.run m0 (parse src)).IC.func

let applies rule_name src =
  let trace = (IC.run m0 (parse src)).IC.trace in
  if not (List.exists (fun (e : IC.trace_entry) -> e.IC.rule = rule_name) trace) then
    Alcotest.failf "rule %s did not fire; trace: %s" rule_name
      (String.concat ", " (List.map (fun (e : IC.trace_entry) -> e.IC.rule) trace))

let body_is expected src =
  Alcotest.(check string) "optimized body" expected (after_instcombine src)

let wrap body = Fmt.str "define i32 @f(i32 %%x, i32 %%y) {\nentry:\n%s}\n" body

let rule_fires_tests =
  (* each entry: rule name, input body exercising it *)
  List.map
    (fun (rule, body) ->
      Alcotest.test_case (Fmt.str "rule %s fires" rule) `Quick (fun () ->
          applies rule (wrap body)))
    [
      ("add-zero", "  %r = add i32 %x, 0\n  ret i32 %r\n");
      ("add-self-to-shl", "  %r = add i32 %x, %x\n  ret i32 %r\n");
      ("sub-zero", "  %r = sub i32 %x, 0\n  ret i32 %r\n");
      ("sub-self", "  %r = sub i32 %x, %x\n  ret i32 %r\n");
      ("sub-const-to-add", "  %r = sub i32 %x, 5\n  ret i32 %r\n");
      ("add-add-const", "  %a = add i32 %x, 3\n  %r = add i32 %a, 4\n  ret i32 %r\n");
      ("sub-add-cancel", "  %a = sub i32 %x, %y\n  %r = add i32 %a, %y\n  ret i32 %r\n");
      ("add-sub-cancel", "  %a = add i32 %x, %y\n  %r = sub i32 %a, %y\n  ret i32 %r\n");
      ("mul-one", "  %r = mul i32 %x, 1\n  ret i32 %r\n");
      ("mul-zero", "  %r = mul i32 %x, 0\n  ret i32 %r\n");
      ("mul-pow2-to-shl", "  %r = mul i32 %x, 8\n  ret i32 %r\n");
      ("mul-minus-one", "  %r = mul i32 %x, -1\n  ret i32 %r\n");
      ("mul-mul-const", "  %a = mul i32 %x, 3\n  %r = mul i32 %a, 5\n  ret i32 %r\n");
      ("div-one", "  %r = udiv i32 %x, 1\n  ret i32 %r\n");
      ("udiv-pow2-to-lshr", "  %r = udiv i32 %x, 4\n  ret i32 %r\n");
      ("urem-pow2-to-and", "  %r = urem i32 %x, 8\n  ret i32 %r\n");
      ("div-self", "  %r = udiv i32 %x, %x\n  ret i32 %r\n");
      ("rem-self", "  %r = urem i32 %x, %x\n  ret i32 %r\n");
      ("sdiv-minus-one", "  %r = sdiv i32 %x, -1\n  ret i32 %r\n");
      ("rem-one", "  %r = srem i32 %x, 1\n  ret i32 %r\n");
      ("and-zero", "  %r = and i32 %x, 0\n  ret i32 %r\n");
      ("and-all-ones", "  %r = and i32 %x, -1\n  ret i32 %r\n");
      ("and-self", "  %r = and i32 %x, %x\n  ret i32 %r\n");
      ("or-zero", "  %r = or i32 %x, 0\n  ret i32 %r\n");
      ("or-all-ones", "  %r = or i32 %x, -1\n  ret i32 %r\n");
      ("or-self", "  %r = or i32 %x, %x\n  ret i32 %r\n");
      ("xor-zero", "  %r = xor i32 %x, 0\n  ret i32 %r\n");
      ("xor-self", "  %r = xor i32 %x, %x\n  ret i32 %r\n");
      ("logic-assoc-const", "  %a = and i32 %x, 255\n  %r = and i32 %a, 15\n  ret i32 %r\n");
      ("absorption", "  %a = or i32 %x, %y\n  %r = and i32 %x, %a\n  ret i32 %r\n");
      ( "and-known-bits",
        "  %a = lshr i32 %x, 28\n  %r = and i32 %a, 255\n  ret i32 %r\n" );
      ( "or-known-bits",
        "  %a = or i32 %x, 12\n  %r = or i32 %a, 4\n  %s = add i32 %r, %a\n  ret i32 %s\n" );
      ("xor-xor-cancel", "  %a = xor i32 %x, %y\n  %r = xor i32 %a, %y\n  ret i32 %r\n");
      ("shift-zero", "  %r = shl i32 %x, 0\n  ret i32 %r\n");
      ("shift-of-zero", "  %r = lshr i32 0, %x\n  ret i32 %r\n");
      ("shl-lshr-to-and", "  %a = shl i32 %x, 4\n  %r = lshr i32 %a, 4\n  ret i32 %r\n");
      ( "shl-nuw-lshr-cancel",
        "  %a = shl nuw i32 %x, 4\n  %r = lshr i32 %a, 4\n  ret i32 %r\n" );
      ("shl-shl", "  %a = shl i32 %x, 2\n  %r = shl i32 %a, 3\n  ret i32 %r\n");
      ("lshr-lshr", "  %a = lshr i32 %x, 2\n  %r = lshr i32 %a, 3\n  ret i32 %r\n");
      ( "ashr-nonneg-to-lshr",
        "  %a = lshr i32 %x, 1\n  %r = ashr i32 %a, 2\n  ret i32 %r\n" );
      ("icmp-self", "  %c = icmp eq i32 %x, %x\n  %r = zext i1 %c to i32\n  ret i32 %r\n");
      ("icmp-range", "  %c = icmp ult i32 %x, 0\n  %r = zext i1 %c to i32\n  ret i32 %r\n");
      ( "icmp-boundary-to-eq",
        "  %c = icmp ult i32 %x, 1\n  %r = zext i1 %c to i32\n  ret i32 %r\n" );
      ( "icmp-eq-add-const",
        "  %a = add i32 %x, 7\n  %c = icmp eq i32 %a, 9\n  %r = zext i1 %c to i32\n  ret i32 %r\n"
      );
      ( "icmp-xor-zero",
        "  %a = xor i32 %x, %y\n  %c = icmp eq i32 %a, 0\n  %r = zext i1 %c to i32\n  ret i32 %r\n"
      );
      ( "icmp-ugt-zero",
        "  %c = icmp ugt i32 %x, 0\n  %r = zext i1 %c to i32\n  ret i32 %r\n" );
      ( "icmp-known-bits",
        "  %a = or i32 %x, 16\n  %c = icmp eq i32 %a, 0\n  %r = zext i1 %c to i32\n  ret i32 %r\n"
      );
      ("select-same-arms", "  %c = icmp slt i32 %x, %y\n  %r = select i1 %c, i32 %x, i32 %x\n  ret i32 %r\n");
      ( "select-to-zext",
        "  %c = icmp slt i32 %x, %y\n  %r = select i1 %c, i32 1, i32 0\n  ret i32 %r\n" );
      ( "select-eq-collapse",
        "  %c = icmp eq i32 %x, 7\n  %r = select i1 %c, i32 7, i32 %x\n  ret i32 %r\n" );
      ( "ext-of-ext",
        "  %t = trunc i32 %x to i8\n  %a = zext i8 %t to i16\n  %b = zext i16 %a to i32\n  ret i32 %b\n"
      );
      ( "sext-nonneg-to-zext",
        "  %a = and i32 %x, 127\n  %t = trunc i32 %a to i8\n  %s = sext i8 %t to i32\n  ret i32 %s\n"
      );
      ("constant-fold", "  %r = add i32 3, 4\n  ret i32 %r\n");
      ("neg-of-neg", "  %a = sub i32 0, %x\n  %r = sub i32 0, %a\n  ret i32 %r\n");
      ("add-not-self", "  %n = xor i32 %x, -1\n  %r = add i32 %x, %n\n  ret i32 %r\n");
      ("and-not-self", "  %n = xor i32 %x, -1\n  %r = and i32 %x, %n\n  ret i32 %r\n");
      ("or-not-self", "  %n = xor i32 %x, -1\n  %r = or i32 %x, %n\n  ret i32 %r\n");
      ( "icmp-zext-bool",
        "  %c = icmp slt i32 %x, %y\n  %z = zext i1 %c to i32\n  %t = icmp ne i32 %z, 0\n  %r = zext i1 %t to i32\n  ret i32 %r\n"
      );
      ( "xor-icmp-negate",
        "  %c = icmp slt i32 %x, %y\n  %n = xor i1 %c, true\n  %r = zext i1 %n to i32\n  ret i32 %r\n"
      );
      ( "sdiv-pow2-nonneg",
        "  %a = lshr i32 %x, 1\n  %r = sdiv i32 %a, 4\n  ret i32 %r\n" );
      ( "srem-pow2-nonneg",
        "  %a = lshr i32 %x, 1\n  %r = srem i32 %a, 8\n  ret i32 %r\n" );
      ( "icmp-sign-known",
        "  %a = lshr i32 %x, 1\n  %c = icmp slt i32 %a, 0\n  %r = zext i1 %c to i32\n  ret i32 %r\n"
      );
      ( "icmp-eq-xor-const",
        "  %a = xor i32 %x, 5\n  %c = icmp eq i32 %a, 9\n  %r = zext i1 %c to i32\n  ret i32 %r\n"
      );
      ( "sub-add-const-cancel",
        "  %a = add i32 %x, 9\n  %r = sub i32 %x, %a\n  %s = add i32 %r, %a\n  ret i32 %s\n" );
      ("freeze-const", "  %r = freeze i32 7\n  ret i32 %r\n");
      ( "zext-of-trunc-to-and",
        "  %t = trunc i32 %x to i8\n  %r = zext i8 %t to i32\n  ret i32 %r\n" );
      ( "trunc-of-bitwise-const",
        "  %a = or i32 %x, %y\n  %m = mul i32 %a, 345\n  %r = trunc i32 %m to i8\n  %z = zext i8 %r to i32\n  ret i32 %z\n"
      );
      ( "demorgan",
        "  %na = xor i32 %x, -1\n  %nb = xor i32 %y, -1\n  %r = and i32 %na, %nb\n  ret i32 %r\n"
      );
    ]

let narrow_wrap body = Fmt.str "define i32 @f(i8 %%s, i8 %%u) {\nentry:\n%s}\n" body

let applies_narrow rule body = applies rule (narrow_wrap body)

let directed_tests =
  [
    Alcotest.test_case "rule icmp-zext-const fires (i8 source)" `Quick (fun () ->
        applies_narrow "icmp-zext-const"
          "  %z = zext i8 %s to i32\n  %c = icmp eq i32 %z, 300\n  %r = zext i1 %c to i32\n  ret i32 %r\n");
    Alcotest.test_case "rule trunc-of-ext fires (i8 source)" `Quick (fun () ->
        applies_narrow "trunc-of-ext"
          "  %a = zext i8 %s to i32\n  %b = trunc i32 %a to i8\n  %r = zext i8 %b to i32\n  ret i32 %r\n");
    Alcotest.test_case "rule bitwise-of-zexts fires" `Quick (fun () ->
        applies_narrow "bitwise-of-zexts"
          "  %za = zext i8 %s to i32\n  %zb = zext i8 %u to i32\n  %r = xor i32 %za, %zb\n  ret i32 %r\n");
    Alcotest.test_case "rule icmp-of-zexts fires" `Quick (fun () ->
        applies_narrow "icmp-of-zexts"
          "  %za = zext i8 %s to i32\n  %zb = zext i8 %u to i32\n  %c = icmp ult i32 %za, %zb\n  %r = zext i1 %c to i32\n  ret i32 %r\n");
    Alcotest.test_case "x+0 fully collapses" `Quick (fun () ->
        body_is "define i32 @f(i32 %x, i32 %y) {\nentry:\n  ret i32 %x\n}\n"
          (wrap "  %r = add i32 %x, 0\n  ret i32 %r\n"));
    Alcotest.test_case "chain of identities collapses" `Quick (fun () ->
        body_is "define i32 @f(i32 %x, i32 %y) {\nentry:\n  ret i32 %x\n}\n"
          (wrap
             "  %a = mul i32 %x, 1\n  %b = add i32 %a, 0\n  %c = or i32 %b, 0\n  %d = and i32 %c, -1\n  ret i32 %d\n"));
    Alcotest.test_case "constant expression precomputed" `Quick (fun () ->
        body_is "define i32 @f(i32 %x, i32 %y) {\nentry:\n  ret i32 20\n}\n"
          (wrap "  %a = add i32 3, 7\n  %b = mul i32 %a, 2\n  ret i32 %b\n"));
    Alcotest.test_case "store-to-load forwarding fires" `Quick (fun () ->
        applies "store-to-load-forward"
          "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 %x, ptr %p, align 4\n  %v = load i32, ptr %p, align 4\n  ret i32 %v\n}");
    Alcotest.test_case "dead store eliminated" `Quick (fun () ->
        applies "dead-store"
          "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 1, ptr %p, align 4\n  store i32 %x, ptr %p, align 4\n  %v = load i32, ptr %p, align 4\n  ret i32 %v\n}");
    Alcotest.test_case "redundant load reused" `Quick (fun () ->
        let m = Parser.parse_module "@g = global i32 3\ndefine i32 @f() {\nentry:\n  %a = load i32, ptr @g, align 4\n  %b = load i32, ptr @g, align 4\n  %r = add i32 %a, %b\n  ret i32 %r\n}" in
        let f = List.hd m.Ast.funcs in
        let trace = (IC.run m f).IC.trace in
        Alcotest.(check bool) "fired" true
          (List.exists (fun (e : IC.trace_entry) -> e.IC.rule = "redundant-load") trace));
    Alcotest.test_case "no forwarding across may-alias store" `Quick (fun () ->
        let m =
          Parser.parse_module
            "define i32 @f(ptr %p, ptr %q, i32 %x) {\nentry:\n  store i32 %x, ptr %p, align 4\n  store i32 9, ptr %q, align 4\n  %v = load i32, ptr %p, align 4\n  ret i32 %v\n}"
        in
        let f = List.hd m.Ast.funcs in
        let trace = (IC.run m f).IC.trace in
        Alcotest.(check bool) "no forward" false
          (List.exists (fun (e : IC.trace_entry) -> e.IC.rule = "store-to-load-forward") trace));
    Alcotest.test_case "no forwarding across a call for escaped memory" `Quick (fun () ->
        let m =
          Parser.parse_module
            "declare void @sink(i32)\n@g = global i32 1\ndefine i32 @f(i32 %x) {\nentry:\n  store i32 %x, ptr @g, align 4\n  call void @sink(i32 0)\n  %v = load i32, ptr @g, align 4\n  ret i32 %v\n}"
        in
        let f = List.hd m.Ast.funcs in
        let trace = (IC.run m f).IC.trace in
        Alcotest.(check bool) "no forward" false
          (List.exists (fun (e : IC.trace_entry) -> e.IC.rule = "store-to-load-forward") trace));
  ]

let known_bits_tests =
  [
    Alcotest.test_case "constants are fully known" `Quick (fun () ->
        let defs = Hashtbl.create 1 in
        let k = KB.compute defs 8 (Ast.const_int 8 0xa5L) in
        Alcotest.(check int64) "one" 0xa5L k.KB.one;
        Alcotest.(check int64) "zero" 0x5aL k.KB.zero);
    Alcotest.test_case "and narrows known bits" `Quick (fun () ->
        let f = parse (wrap "  %a = and i32 %x, 15\n  ret i32 %a\n") in
        let defs = Builder.def_map f in
        let k = KB.compute defs 32 (Ast.Var "a") in
        Alcotest.(check bool) "high bits zero" true
          (Int64.logand k.KB.zero 0xfffffff0L = 0xfffffff0L));
    Alcotest.test_case "or sets known ones" `Quick (fun () ->
        let f = parse (wrap "  %a = or i32 %x, 12\n  ret i32 %a\n") in
        let defs = Builder.def_map f in
        let k = KB.compute defs 32 (Ast.Var "a") in
        Alcotest.(check int64) "ones" 12L (Int64.logand k.KB.one 12L));
    Alcotest.test_case "shl makes low bits zero" `Quick (fun () ->
        let f = parse (wrap "  %a = shl i32 %x, 4\n  ret i32 %a\n") in
        let defs = Builder.def_map f in
        let k = KB.compute defs 32 (Ast.Var "a") in
        Alcotest.(check int64) "low zeros" 15L (Int64.logand k.KB.zero 15L));
    Alcotest.test_case "lshr makes high bits zero" `Quick (fun () ->
        let f = parse (wrap "  %a = lshr i32 %x, 28\n  ret i32 %a\n") in
        let defs = Builder.def_map f in
        let k = KB.compute defs 32 (Ast.Var "a") in
        Alcotest.(check bool) "high zeros" true
          (Int64.logand k.KB.zero 0xfffffff0L = 0xfffffff0L));
    Alcotest.test_case "zext high bits zero" `Quick (fun () ->
        let f =
          parse (wrap "  %t = trunc i32 %x to i8\n  %a = zext i8 %t to i32\n  ret i32 %a\n")
        in
        let defs = Builder.def_map f in
        let k = KB.compute defs 32 (Ast.Var "a") in
        Alcotest.(check bool) "high zeros" true
          (Int64.logand k.KB.zero 0xffffff00L = 0xffffff00L));
    Alcotest.test_case "as_constant on fully-determined value" `Quick (fun () ->
        let f = parse (wrap "  %a = and i32 %x, 0\n  ret i32 %a\n") in
        let defs = Builder.def_map f in
        Alcotest.(check (option int64)) "zero" (Some 0L) (KB.as_constant defs 32 (Ast.Var "a")));
  ]

let mem2reg_tests =
  [
    Alcotest.test_case "promotes a straight-line alloca" `Quick (fun () ->
        let f =
          parse
            "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 %x, ptr %p, align 4\n  %v = load i32, ptr %p, align 4\n  ret i32 %v\n}"
        in
        let f', trace = Veriopt_passes.Mem2reg.run f in
        Alcotest.(check bool) "promoted" true (trace <> []);
        Alcotest.(check bool) "no alloca left" true
          (List.for_all
             (fun b ->
               List.for_all
                 (fun ni -> match ni.Ast.instr with Ast.Alloca _ -> false | _ -> true)
                 b.Ast.instrs)
             f'.Ast.blocks);
        match Validator.validate_func f' with
        | Ok () -> ()
        | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
    Alcotest.test_case "inserts a phi at a join" `Quick (fun () ->
        let f =
          parse
            {|define i32 @f(i32 %x) {
entry:
  %p = alloca i32, align 4
  %c = icmp slt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  store i32 1, ptr %p, align 4
  br label %j
b:
  store i32 2, ptr %p, align 4
  br label %j
j:
  %v = load i32, ptr %p, align 4
  ret i32 %v
}|}
        in
        let f', _ = Veriopt_passes.Mem2reg.run f in
        (match Validator.validate_func f' with
        | Ok () -> ()
        | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
        let has_phi =
          List.exists
            (fun b ->
              List.exists (fun ni -> match ni.Ast.instr with Ast.Phi _ -> true | _ -> false) b.Ast.instrs)
            f'.Ast.blocks
        in
        Alcotest.(check bool) "phi inserted" true has_phi;
        (* semantics preserved *)
        let v = A.verify_funcs m0 ~src:f ~tgt:f' in
        Alcotest.(check bool) "equivalent" true (v.A.category = A.Equivalent));
    Alcotest.test_case "escaped alloca is not promoted" `Quick (fun () ->
        let m =
          Parser.parse_module
            "declare void @usep(i32)\ndefine i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  %q = ptrtoint ptr %p to i64\n  %t = trunc i64 %q to i32\n  call void @usep(i32 %t)\n  ret i32 0\n}"
        in
        let f = List.hd m.Ast.funcs in
        Alcotest.(check (list (pair string Alcotest.reject)))
          "no candidates" []
          (List.map (fun (v, t) -> (v, t)) (Veriopt_passes.Mem2reg.promotable_allocas f)));
    Alcotest.test_case "promotion respects the limit" `Quick (fun () ->
        let f =
          parse
            "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  %q = alloca i32, align 4\n  store i32 %x, ptr %p, align 4\n  store i32 %x, ptr %q, align 4\n  %v = load i32, ptr %p, align 4\n  ret i32 %v\n}"
        in
        let _, trace = Veriopt_passes.Mem2reg.run ~limit:1 f in
        Alcotest.(check int) "one promoted" 1 (List.length trace));
  ]

let simplifycfg_tests =
  [
    Alcotest.test_case "constant branch folds" `Quick (fun () ->
        let f =
          parse
            "define i32 @f(i32 %x) {\nentry:\n  br i1 true, label %a, label %b\na:\n  ret i32 1\nb:\n  ret i32 2\n}"
        in
        let f', trace = Veriopt_passes.Simplifycfg.run f in
        Alcotest.(check bool) "fired" true
          (List.exists (fun (e : Veriopt_passes.Simplifycfg.trace_entry) -> e.rule = "br-const-cond") trace);
        Alcotest.(check int) "one block after merge" 1 (List.length f'.Ast.blocks));
    Alcotest.test_case "same-target branch collapses" `Quick (fun () ->
        let f =
          parse
            "define i32 @f(i32 %x) {\nentry:\n  %c = icmp slt i32 %x, 0\n  br i1 %c, label %a, label %a\na:\n  ret i32 1\n}"
        in
        let _, trace = Veriopt_passes.Simplifycfg.run f in
        Alcotest.(check bool) "fired" true
          (List.exists (fun (e : Veriopt_passes.Simplifycfg.trace_entry) -> e.rule = "br-same-target") trace));
    Alcotest.test_case "switch with identical targets collapses" `Quick (fun () ->
        let f =
          parse
            "define i32 @f(i32 %x) {\nentry:\n  switch i32 %x, label %d [ i32 1, label %d i32 2, label %d ]\nd:\n  ret i32 0\n}"
        in
        let _, trace = Veriopt_passes.Simplifycfg.run f in
        Alcotest.(check bool) "fired" true
          (List.exists
             (fun (e : Veriopt_passes.Simplifycfg.trace_entry) -> e.rule = "switch-same-targets")
             trace));
    Alcotest.test_case "single-case switch becomes compare-and-branch" `Quick (fun () ->
        let f =
          parse
            "define i32 @f(i32 %x) {\nentry:\n  switch i32 %x, label %d [ i32 5, label %a ]\na:\n  ret i32 1\nd:\n  ret i32 0\n}"
        in
        let f2, trace = Veriopt_passes.Simplifycfg.run f in
        Alcotest.(check bool) "fired" true
          (List.exists
             (fun (e : Veriopt_passes.Simplifycfg.trace_entry) -> e.rule = "switch-to-br")
             trace);
        (match Validator.validate_func f2 with
        | Ok () -> ()
        | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
        let v = A.verify_funcs m0 ~src:f ~tgt:f2 in
        Alcotest.(check bool) "equivalent" true (v.A.category = A.Equivalent));
    Alcotest.test_case "unreachable blocks removed" `Quick (fun () ->
        let f =
          parse
            "define i32 @f(i32 %x) {\nentry:\n  ret i32 0\ndead:\n  ret i32 1\n}"
        in
        let f', _ = Veriopt_passes.Simplifycfg.run f in
        Alcotest.(check int) "one block" 1 (List.length f'.Ast.blocks));
    Alcotest.test_case "simplifycfg output stays valid and equivalent" `Quick (fun () ->
        let f =
          parse
            {|define i32 @f(i32 %x) {
entry:
  %c = icmp slt i32 %x, 10
  br i1 %c, label %fwd, label %other
fwd:
  br label %j
other:
  br label %j
j:
  %r = phi i32 [ 1, %fwd ], [ 2, %other ]
  ret i32 %r
}|}
        in
        let f', _ = Veriopt_passes.Simplifycfg.run f in
        (match Validator.validate_func f' with
        | Ok () -> ()
        | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
        let v = A.verify_funcs m0 ~src:f ~tgt:f' in
        Alcotest.(check bool) "equivalent" true (v.A.category = A.Equivalent));
  ]

let dce_tests =
  [
    Alcotest.test_case "unused pure instruction removed" `Quick (fun () ->
        let f = parse (wrap "  %dead = add i32 %x, %y\n  ret i32 %x\n") in
        let f', n = Veriopt_passes.Dce.run f in
        Alcotest.(check int) "one removed" 1 n;
        Alcotest.(check int) "no instrs" 0 (List.length (List.hd f'.Ast.blocks).Ast.instrs));
    Alcotest.test_case "stores and calls survive" `Quick (fun () ->
        let m =
          Parser.parse_module
            "declare void @sink(i32)\ndefine i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 %x, ptr %p, align 4\n  call void @sink(i32 %x)\n  ret i32 %x\n}"
        in
        let f = List.hd m.Ast.funcs in
        let _, n = Veriopt_passes.Dce.run f in
        Alcotest.(check int) "nothing removed" 0 n);
    Alcotest.test_case "dead chains removed transitively" `Quick (fun () ->
        let f =
          parse (wrap "  %a = add i32 %x, 1\n  %b = mul i32 %a, 2\n  %c = xor i32 %b, 3\n  ret i32 %x\n")
        in
        let _, n = Veriopt_passes.Dce.run f in
        Alcotest.(check int) "three removed" 3 n);
  ]

(* The central property: the optimizer pipelines preserve semantics, as
   judged by the verifier, on random clang-O0-style inputs. *)
let pipeline_property name pipeline =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:22 ~name (QCheck2.Gen.int_bound 50_000) (fun seed ->
         let cf = Veriopt_data.Cgen.generate ~seed ~name:"t" () in
         let m, src = Veriopt_data.Lower.lower cf in
         let out, _ = pipeline m src in
         (match Validator.validate_func ~module_:m out with
         | Ok () -> ()
         | Error es -> QCheck2.Test.fail_reportf "invalid output: %s" (String.concat "; " es));
         match (A.verify_funcs ~max_conflicts:60_000 m ~src ~tgt:out).A.category with
         | A.Equivalent | A.Inconclusive -> true
         | A.Semantic_error | A.Syntax_error -> false))

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:15 ~name:"every single rule application preserves semantics"
         (QCheck2.Gen.int_bound 50_000) (fun seed ->
           (* stronger than the pipeline-level property: each individually
              applicable (rule, site) pair is applied alone and verified *)
           let cf = Veriopt_data.Cgen.generate ~seed ~name:"t" () in
           let m, src = Veriopt_data.Lower.lower cf in
           let sites = Veriopt_llm.Actions.enumerate_rule_sites m src in
           let sites = List.filteri (fun i _ -> i < 8) sites in
           List.for_all
             (fun (rule, site) ->
               let out = Veriopt_llm.Actions.apply_rule m src rule site in
               match Validator.validate_func ~module_:m out with
               | Error es ->
                 QCheck2.Test.fail_reportf "rule %s at %%%s made invalid IR: %s" rule site
                   (String.concat "; " es)
               | Ok () -> (
                 match (A.verify_funcs ~max_conflicts:60_000 m ~src ~tgt:out).A.category with
                 | A.Equivalent | A.Inconclusive -> true
                 | A.Semantic_error | A.Syntax_error ->
                   QCheck2.Test.fail_reportf "rule %s at %%%s is unsound on seed %d" rule site
                     seed))
             sites));
    pipeline_property "instcombine preserves semantics" PM.instcombine;
    pipeline_property "aggressive pipeline preserves semantics" (PM.aggressive ~max_iters:3);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:40 ~name:"instcombine never increases cost"
         (QCheck2.Gen.int_bound 50_000) (fun seed ->
           let cf = Veriopt_data.Cgen.generate ~seed ~name:"t" () in
           let m, src = Veriopt_data.Lower.lower cf in
           let out, _ = PM.instcombine m src in
           Veriopt_cost.Latency.of_func out <= Veriopt_cost.Latency.of_func src
           && Veriopt_cost.Icount.of_func out <= Veriopt_cost.Icount.of_func src));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:30 ~name:"instcombine reaches a fixpoint"
         (QCheck2.Gen.int_bound 50_000) (fun seed ->
           let cf = Veriopt_data.Cgen.generate ~seed ~name:"t" () in
           let m, src = Veriopt_data.Lower.lower cf in
           let once, _ = PM.instcombine m src in
           let twice, trace2 = PM.instcombine m once in
           trace2 = [] && print once = print twice));
  ]

let suite =
  ( "passes",
    rule_fires_tests @ directed_tests @ known_bits_tests @ mem2reg_tests @ simplifycfg_tests
    @ dce_tests @ property_tests )

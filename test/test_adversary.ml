(* The adversarial pain miner: corpus crash-safety and corruption
   degradation, mutator validity, miner smoke with deterministic replay,
   and the workload-replay consumers.

   ORDER MATTERS: the crash test forks a child miner and SIGKILLs it
   mid-commit, so this suite must run before any suite that spawns a
   domain (OCaml 5 forbids fork afterwards).  Within the suite the fork
   test runs first for the same reason. *)

module Corpus = Veriopt_adversary.Corpus
module Miner = Veriopt_adversary.Miner
module Mutate = Veriopt_adversary.Mutate
module Engine = Veriopt_alive.Engine
module Workload = Veriopt_serve.Workload
module Fault = Veriopt_fault.Fault
open Veriopt_ir

let dir_counter = ref 0

let temp_dir () =
  incr dir_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "veriopt-test-adv-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Unix.mkdir d 0o755;
  d

let mk_case i =
  let src = Fmt.str "define i8 @f(i8 %%x) {\nentry:\n  %%r = add i8 %%x, %d\n  ret i8 %%r\n}" i in
  let tgt = Fmt.str "define i8 @f(i8 %%x) {\nentry:\n  %%r = add i8 %%x, %d\n  ret i8 %%r\n}" i in
  {
    Corpus.c_id = 0;
    c_family = "flags";
    c_label = "test";
    c_key = Fmt.str "key-%04d" i;
    c_verdict = "inconclusive";
    c_pain = 1.5;
    c_wall_us = 1200 + i;
    c_conflicts = 34;
    c_unroll = 6;
    c_max_conflicts = 2000;
    c_semantics = Engine.semantics_digest ();
    c_m_text = src;
    c_src_text = src;
    c_tgt_text = tgt;
  }

(* ------------------------------------------------------------------ *)
(* Crash-safety: SIGKILL a child miner mid-commit; the reopened corpus
   must hold only whole cases — zero torn entries, at most the in-flight
   case lost *)

let crash_tests =
  [
    Alcotest.test_case "SIGKILL mid-mine: no torn cases on reopen" `Quick (fun () ->
        let dir = temp_dir () in
        (match Unix.fork () with
        | 0 ->
          (* child: commit synthetic cases as fast as possible until killed *)
          (try
             let c = Corpus.load ~dir in
             for i = 0 to 100_000 do
               ignore (Corpus.add c (mk_case i))
             done
           with _ -> ());
          Unix._exit 0
        | pid ->
          Unix.sleepf 0.2;
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid));
        let c = Corpus.load ~dir in
        let cases = Corpus.cases c in
        let s = Corpus.stats c in
        Alcotest.(check bool)
          (Fmt.str "some cases survived the kill (%d)" (List.length cases))
          true
          (List.length cases > 0);
        Alcotest.(check int) "zero torn or skipped cases" 0 s.Corpus.s_skipped;
        (* tmp+rename per case means every surviving file decodes whole *)
        List.iteri
          (fun i (case : Corpus.case) ->
            Alcotest.(check int) "ids form a contiguous prefix" i case.Corpus.c_id;
            Alcotest.(check bool)
              (Fmt.str "case %d decodes" case.Corpus.c_id)
              true
              (Corpus.decode_pair case <> None))
          cases);
  ]

(* ------------------------------------------------------------------ *)
(* Corpus basics: round-trip, dedup key membership, damage degradation *)

let corpus_tests =
  [
    Alcotest.test_case "cases round-trip across close and reopen" `Quick (fun () ->
        let dir = temp_dir () in
        let c = Corpus.load ~dir in
        for i = 0 to 9 do
          ignore (Corpus.add c (mk_case i))
        done;
        let c' = Corpus.load ~dir in
        let cases = Array.of_list (Corpus.cases c') in
        Alcotest.(check int) "all back" 10 (Array.length cases);
        Array.iteri
          (fun i (case : Corpus.case) ->
            Alcotest.(check int) "id" i case.Corpus.c_id;
            Alcotest.(check string) "key" (Fmt.str "key-%04d" i) case.Corpus.c_key;
            Alcotest.(check string) "family" "flags" case.Corpus.c_family;
            Alcotest.(check int) "unroll" 6 case.Corpus.c_unroll;
            Alcotest.(check bool) "pair decodes" true (Corpus.decode_pair case <> None))
          cases;
        Alcotest.(check bool) "mem_key finds a committed key" true
          (Corpus.mem_key c' "key-0003");
        Alcotest.(check bool) "mem_key rejects a fresh key" true
          (not (Corpus.mem_key c' "key-9999")));
    Alcotest.test_case "a corrupt case file degrades to one counted skip" `Quick (fun () ->
        let dir = temp_dir () in
        let c = Corpus.load ~dir in
        for i = 0 to 4 do
          ignore (Corpus.add c (mk_case i))
        done;
        (* flip a payload byte inside one case file: the CRC frame must
           catch it and the load must keep every other case *)
        let victim = Filename.concat dir "case-000002.vadv" in
        let fd = Unix.openfile victim [ Unix.O_RDWR ] 0 in
        let size = (Unix.fstat fd).Unix.st_size in
        ignore (Unix.lseek fd (size - 5) Unix.SEEK_SET);
        let b = Bytes.create 1 in
        ignore (Unix.read fd b 0 1);
        ignore (Unix.lseek fd (size - 5) Unix.SEEK_SET);
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
        ignore (Unix.write fd b 0 1);
        Unix.close fd;
        let c' = Corpus.load ~dir in
        let s = Corpus.stats c' in
        Alcotest.(check int) "four cases survive" 4 (List.length (Corpus.cases c'));
        Alcotest.(check bool) "damage counted" true (s.Corpus.s_skipped >= 1);
        Alcotest.(check bool) "case 2 is the one lost" true
          (List.for_all (fun (k : Corpus.case) -> k.Corpus.c_id <> 2) (Corpus.cases c'));
        (* a fresh commit into the damaged corpus must not reuse id 2's file *)
        let added = Corpus.add c' (mk_case 99) in
        Alcotest.(check bool) "fresh id past the damaged one" true (added.Corpus.c_id > 4));
    Alcotest.test_case "corpus_corrupt fault forces the counted-skip path" `Quick (fun () ->
        let dir = temp_dir () in
        let c = Corpus.load ~dir in
        for i = 0 to 3 do
          ignore (Corpus.add c (mk_case i))
        done;
        (match Fault.configure_string "seed=1,corpus_corrupt=1.0" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "bad fault spec: %s" e);
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let c' = Corpus.load ~dir in
        Alcotest.(check int) "every read skipped under the fault" 0
          (List.length (Corpus.cases c'));
        Alcotest.(check bool) "skips counted" true ((Corpus.stats c').Corpus.s_skipped >= 4);
        Fault.disable ();
        let c'' = Corpus.load ~dir in
        Alcotest.(check int) "intact once the fault clears" 4
          (List.length (Corpus.cases c'')));
    Alcotest.test_case "a lost index is healed from the directory scan" `Quick (fun () ->
        let dir = temp_dir () in
        let c = Corpus.load ~dir in
        for i = 0 to 3 do
          ignore (Corpus.add c (mk_case i))
        done;
        Sys.remove (Filename.concat dir "index.vadv");
        let c' = Corpus.load ~dir in
        Alcotest.(check int) "all cases recovered" 4 (List.length (Corpus.cases c'));
        Alcotest.(check bool) "rescan counted" true ((Corpus.stats c').Corpus.s_rescans >= 1);
        (* the heal rewrote the index: a third load is clean *)
        let c'' = Corpus.load ~dir in
        Alcotest.(check int) "healed index agrees" 0 (Corpus.stats c'').Corpus.s_rescans);
  ]

(* ------------------------------------------------------------------ *)
(* Mutators: every family produces validator-clean pairs *)

let mutate_tests =
  [
    Alcotest.test_case "mutants validate and cover several families" `Quick (fun () ->
        let cfg = Miner.default_config in
        let rng = Random.State.make [| 42 |] in
        let seen = Hashtbl.create 8 in
        let applied = ref 0 in
        for i = 0 to 39 do
          match Miner.seed_pair cfg i with
          | None -> ()
          | Some (_, p) -> (
            match Mutate.apply rng p with
            | None -> ()
            | Some (family, p') ->
              incr applied;
              Alcotest.(check bool) (Fmt.str "mutant %d (%s) validates" i family) true
                (Mutate.valid p');
              Alcotest.(check bool) "family name is known" true
                (List.mem family Mutate.families);
              Hashtbl.replace seen family ())
        done;
        Alcotest.(check bool) (Fmt.str "%d mutants applied" !applied) true (!applied >= 20);
        Alcotest.(check bool)
          (Fmt.str "%d families seen" (Hashtbl.length seen))
          true
          (Hashtbl.length seen >= 3));
    Alcotest.test_case "widen never fires on a loop" `Quick (fun () ->
        (* widened loop trip counts would make the interpreter-backed
           oracle battery quadratic in the new bound, so widen must be
           restricted to loop-free control flow *)
        let m =
          Parser.parse_module
            "define i8 @f(i8 %x) {\n\
             entry:\n\
            \  br label %loop\n\
             loop:\n\
            \  %i = phi i8 [ 0, %entry ], [ %i1, %loop ]\n\
            \  %i1 = add i8 %i, 1\n\
            \  %c = icmp ult i8 %i1, %x\n\
            \  br i1 %c, label %loop, label %done\n\
             done:\n\
            \  ret i8 %i1\n\
             }"
        in
        let f = List.hd m.Ast.funcs in
        let p = { Mutate.a_m = m; a_src = f; a_tgt = f } in
        let rng = Random.State.make [| 7 |] in
        for _ = 0 to 199 do
          match Mutate.apply rng p with
          | Some ("widen", _) -> Alcotest.fail "widen fired on a loopy function"
          | _ -> ()
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Miner smoke: a short budgeted run mines real cases, minimization
   never flips a conclusive verdict, and replay is deterministic *)

let miner_tests =
  [
    Alcotest.test_case "fast corpus smoke: mine, reopen, replay twice" `Slow (fun () ->
        let dir = temp_dir () in
        let corpus = Corpus.load ~dir in
        let cfg = { Miner.default_config with Miner.mc_budget_s = 4.; mc_max_cases = 6 } in
        let r = Miner.mine ~cfg corpus in
        Alcotest.(check bool) (Fmt.str "mined %d cases" r.Miner.r_mined) true
          (r.Miner.r_mined >= 1);
        Alcotest.(check int) "zero committed verdict flips" 0 r.Miner.r_committed_flips;
        (* reopen from disk and replay on two fresh engines: the verdict
           stream must be a pure function of the corpus *)
        let corpus' = Corpus.load ~dir in
        Alcotest.(check int) "reopen sees every mined case" r.Miner.r_mined
          (List.length (Corpus.cases corpus'));
        let once = Miner.replay corpus' in
        let twice = Miner.replay corpus' in
        Alcotest.(check int) "replay covers the corpus" r.Miner.r_mined (List.length once);
        List.iter2
          (fun (a : Miner.replayed) (b : Miner.replayed) ->
            Alcotest.(check int) "same case" a.Miner.rp_id b.Miner.rp_id;
            Alcotest.(check string)
              (Fmt.str "case %d verdict deterministic" a.Miner.rp_id)
              a.Miner.rp_category b.Miner.rp_category)
          once twice;
        let keys = List.sort_uniq compare (List.map (fun r -> r.Miner.rp_key) once) in
        Alcotest.(check int) "store keys distinct" (List.length once) (List.length keys);
        (* the curriculum consumer sees the same cases *)
        Alcotest.(check int) "curriculum samples cover the corpus" r.Miner.r_mined
          (List.length (Miner.curriculum_samples corpus')));
    Alcotest.test_case "miner_stall fault: counted bounded pause, mining continues" `Slow
      (fun () ->
        let dir = temp_dir () in
        (match Fault.configure_string "seed=3,miner_stall=0.5:0.002" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "bad fault spec: %s" e);
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let corpus = Corpus.load ~dir in
        let cfg = { Miner.default_config with Miner.mc_budget_s = 3.; mc_max_cases = 3 } in
        let r = Miner.mine ~cfg corpus in
        Alcotest.(check bool) (Fmt.str "stalls fired (%d)" r.Miner.r_stalls) true
          (r.Miner.r_stalls >= 1);
        Alcotest.(check bool) "mining survived the stalls" true (r.Miner.r_mined >= 1));
  ]

(* ------------------------------------------------------------------ *)
(* Workload determinism (the replay consumer's foundation) *)

let workload_tests =
  [
    Alcotest.test_case "same (seed, index) is bit-identical" `Quick (fun () ->
        for index = 0 to 49 do
          let a = Workload.make ~seed:9 ~index in
          let b = Workload.make ~seed:9 ~index in
          Alcotest.(check string) "label" a.Workload.w_label b.Workload.w_label;
          Alcotest.(check string) "module text"
            (Printer.module_to_string a.Workload.w_m)
            (Printer.module_to_string b.Workload.w_m);
          Alcotest.(check string) "src text"
            (Printer.func_to_string a.Workload.w_src)
            (Printer.func_to_string b.Workload.w_src);
          Alcotest.(check string) "tgt text"
            (Printer.func_to_string a.Workload.w_tgt)
            (Printer.func_to_string b.Workload.w_tgt);
          Alcotest.(check bool) "knobs" true
            (a.Workload.w_unroll = b.Workload.w_unroll
            && a.Workload.w_max_conflicts = b.Workload.w_max_conflicts)
        done);
    Alcotest.test_case "alpha_variant coalesces with the original" `Quick (fun () ->
        for index = 0 to 19 do
          let q = Workload.make ~seed:9 ~index in
          let a = Workload.alpha_variant q in
          Alcotest.(check string)
            (Fmt.str "index %d (%s) coalesce keys equal" index q.Workload.w_label)
            (Engine.coalesce_key q.Workload.w_m ~src:q.Workload.w_src ~tgt:q.Workload.w_tgt)
            (Engine.coalesce_key a.Workload.w_m ~src:a.Workload.w_src ~tgt:a.Workload.w_tgt)
        done);
    Alcotest.test_case "the documented mix holds over 1k indices" `Quick (fun () ->
        let count = Hashtbl.create 8 in
        for index = 0 to 999 do
          let q = Workload.make ~seed:21 ~index in
          Hashtbl.replace count q.Workload.w_label
            (1 + Option.value ~default:0 (Hashtbl.find_opt count q.Workload.w_label))
        done;
        let n label = Option.value ~default:0 (Hashtbl.find_opt count label) in
        let within label lo hi =
          let v = n label in
          Alcotest.(check bool) (Fmt.str "%s share %d in [%d, %d]" label v lo hi) true
            (lo <= v && v <= hi)
        in
        (* ~40% chain loops, ~20% commuted muls, the rest split between
           easy / wrong / count shapes *)
        within "mul-chain" 340 460;
        within "mul-comm" 150 250;
        within "easy" 100 200;
        within "wrong" 100 200;
        within "count" 50 150;
        Alcotest.(check int) "labels partition the stream" 1000
          (Hashtbl.fold (fun _ v acc -> v + acc) count 0));
    Alcotest.test_case "make_from replays mined queries deterministically" `Quick (fun () ->
        let mined =
          Array.init 3 (fun i ->
              let case = mk_case i in
              Workload.of_pair ~label:(Fmt.str "mined-%d" i) ~unroll:6 ~max_conflicts:2000
                (Parser.parse_module case.Corpus.c_m_text)
                ~src:(Parser.parse_func case.Corpus.c_src_text)
                ~tgt:(Parser.parse_func case.Corpus.c_tgt_text))
        in
        let source = Workload.Mined mined in
        for index = 0 to 19 do
          let a = Workload.make_from ~source ~seed:5 ~index in
          let b = Workload.make_from ~source ~seed:5 ~index in
          Alcotest.(check string) "mined pick deterministic" a.Workload.w_label
            b.Workload.w_label;
          Alcotest.(check bool) "label is a mined one" true
            (String.length a.Workload.w_label >= 6
            && String.sub a.Workload.w_label 0 6 = "mined-")
        done;
        (* an empty corpus falls back to the synthetic stream *)
        let e = Workload.make_from ~source:(Workload.Mined [||]) ~seed:5 ~index:0 in
        let s = Workload.make ~seed:5 ~index:0 in
        Alcotest.(check string) "empty corpus falls back" s.Workload.w_label
          e.Workload.w_label);
  ]

let suite =
  ("adversary", crash_tests @ corpus_tests @ mutate_tests @ miner_tests @ workload_tests)

(* The process-isolation layer: EINTR-safe syscall wrappers, the forked
   worker pool (hard SIGKILL deadlines, rlimits, supervisor respawn), and
   the proc verification backend end to end.

   ORDER MATTERS: OCaml 5 forbids [Unix.fork] in any process that has ever
   created a domain, so this suite runs FIRST in the test binary and keeps
   its own domain-spawning test (the trainer chaos sweep) last.  Everything
   fork-based before that point sees a domain-free runtime. *)

open Veriopt_ir
module A = Veriopt_alive.Alive
module Engine = Veriopt_alive.Engine
module Vcache = Veriopt_alive.Vcache
module Eintr = Veriopt_vproc.Eintr
module Vproc = Veriopt_vproc.Vproc
module Portfolio = Veriopt_smt.Portfolio
module Fault = Veriopt_fault.Fault
module Trainer = Veriopt_rl.Trainer
module S = Veriopt_data.Suite

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let category =
  Alcotest.testable
    (fun ppf -> function
      | A.Equivalent -> Fmt.string ppf "Equivalent"
      | A.Semantic_error -> Fmt.string ppf "Semantic_error"
      | A.Syntax_error -> Fmt.string ppf "Syntax_error"
      | A.Inconclusive -> Fmt.string ppf "Inconclusive")
    ( = )

let with_faults spec f =
  (match Fault.configure_string spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e);
  Fault.reset_stats ();
  Fun.protect ~finally:Fault.disable f

(* SMT-hostile pair: mul commutativity, trivial algebraically and brutal
   bit-blasted — only a hard deadline bounds it. *)
let hostile_pair () =
  let text op =
    Fmt.str "define i12 @f(i12 %%x, i12 %%y) {\nentry:\n  %%r = mul i12 %s\n  ret i12 %%r\n}" op
  in
  let m = Parser.parse_module (text "%x, %y") in
  let src = List.hd m.Ast.funcs in
  let tgt = List.hd (Parser.parse_module (text "%y, %x")).Ast.funcs in
  (m, src, tgt)

let easy_pair () =
  let m =
    Parser.parse_module
      "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 0\n  ret i8 %r\n}"
  in
  let src = List.hd m.Ast.funcs in
  let tgt = List.hd (Parser.parse_module "define i8 @f(i8 %x) {\nentry:\n  ret i8 %x\n}").Ast.funcs in
  (m, src, tgt)

(* cyclic, so the worker's iterative-deepening incremental session engages *)
let loop_pair ?(bound = 3) ?(ret = 3) () =
  let src =
    Printf.sprintf
      "define i32 @f(i32 %%n) {\nentry:\n  br label %%h\nh:\n  %%i = phi i32 [ 0, %%entry ], [ \
       %%i2, %%b ]\n  %%c = icmp slt i32 %%i, %d\n  br i1 %%c, label %%b, label %%x\nb:\n  %%i2 \
       = add i32 %%i, 1\n  br label %%h\nx:\n  ret i32 %%i\n}"
      bound
  in
  let tgt = Printf.sprintf "define i32 @f(i32 %%n) {\nentry:\n  ret i32 %d\n}" ret in
  let m = Parser.parse_module src in
  (m, List.hd m.Ast.funcs, List.hd (Parser.parse_module tgt).Ast.funcs)

(* ------------------------------------------------------------------ *)

let eintr_tests =
  [
    Alcotest.test_case "read_fully/write_fully round-trip a pipe exactly" `Quick (fun () ->
        let r, w = Unix.pipe () in
        Fun.protect
          ~finally:(fun () ->
            Unix.close r;
            Unix.close w)
          (fun () ->
            let n = 8192 in
            let data = Bytes.init n (fun i -> Char.chr ((i * 31) land 0xff)) in
            let got = Bytes.create n in
            (* interleave bounded chunks so one thread never fills the pipe *)
            let rec go off =
              if off < n then begin
                let k = min 4096 (n - off) in
                Eintr.write_fully w data off k;
                Alcotest.(check bool) "no EOF mid-stream" true (Eintr.read_fully r got off k);
                go (off + k)
              end
            in
            go 0;
            Alcotest.(check bool) "payload intact" true (Bytes.equal data got)));
    Alcotest.test_case "read_fully reports EOF as false, not an exception" `Quick (fun () ->
        let r, w = Unix.pipe () in
        Eintr.write_fully w (Bytes.of_string "abc") 0 3;
        Unix.close w;
        let buf = Bytes.create 8 in
        Alcotest.(check bool) "peer closed early" false (Eintr.read_fully r buf 0 8);
        Unix.close r);
    Alcotest.test_case "wait_readable: timeout on silence, ready on data" `Quick (fun () ->
        let r, w = Unix.pipe () in
        Fun.protect
          ~finally:(fun () ->
            Unix.close r;
            Unix.close w)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            (match Eintr.wait_readable r ~deadline:(Some (t0 +. 0.05)) with
            | `Timeout -> ()
            | `Ready -> Alcotest.fail "ready on an empty pipe");
            Alcotest.(check bool) "timeout honored the deadline" true
              (Unix.gettimeofday () -. t0 >= 0.04);
            Eintr.write_fully w (Bytes.of_string "x") 0 1;
            match Eintr.wait_readable r ~deadline:(Some (Unix.gettimeofday () +. 1.0)) with
            | `Ready -> ()
            | `Timeout -> Alcotest.fail "data was waiting"));
    Alcotest.test_case "a signal mid-read retries instead of erroring" `Quick (fun () ->
        let r, w = Unix.pipe () in
        let wrote = ref false in
        let old =
          Sys.signal Sys.sigalrm
            (Sys.Signal_handle
               (fun _ ->
                 if not !wrote then begin
                   wrote := true;
                   Eintr.write_fully w (Bytes.of_string "x") 0 1
                 end))
        in
        Fun.protect
          ~finally:(fun () ->
            ignore
              (Unix.setitimer Unix.ITIMER_REAL
                 { Unix.it_value = 0.; it_interval = 0. });
            Sys.set_signal Sys.sigalrm old;
            Unix.close r;
            Unix.close w)
          (fun () ->
            (* the alarm interrupts the blocking read; the handler supplies
               the byte; the retry must deliver it as if nothing happened *)
            ignore
              (Unix.setitimer Unix.ITIMER_REAL
                 { Unix.it_value = 0.03; it_interval = 0.03 });
            let buf = Bytes.create 1 in
            let n = Eintr.read r buf 0 1 in
            Alcotest.(check int) "one byte" 1 n;
            Alcotest.(check char) "the handler's byte" 'x' (Bytes.get buf 0)));
  ]

(* ------------------------------------------------------------------ *)

(* The pool request language: closure-free values only (Marshal). *)
type cmd =
  | Echo of string
  | Sleep of float * string  (* answer after a nap — race-leg stand-in *)
  | Hang  (* busy-spin; only SIGKILL ends it *)
  | Crash  (* exit without a response *)
  | Raise  (* handler exception; the worker itself survives *)
  | Alloc of int  (* grab and hold this many MB, tripping RLIMIT_AS *)

let handler = function
  | Echo s -> String.uppercase_ascii s
  | Sleep (d, s) ->
    Unix.sleepf d;
    String.uppercase_ascii s
  | Hang ->
    while true do
      ignore (Sys.opaque_identity 0)
    done;
    assert false
  | Crash -> Unix._exit 3
  | Raise -> failwith "boom"
  | Alloc mb ->
    let hold = Array.init mb (fun _ -> Bytes.create (1 lsl 20)) in
    string_of_int (Array.length hold)

let with_pool ?mem_headroom_mb f =
  Vproc.reset_stats ();
  let pool = Vproc.create ?mem_headroom_mb ~jobs:1 ~handler () in
  Fun.protect ~finally:(fun () -> Vproc.shutdown pool) (fun () -> f pool)

let check_ok pool what =
  match Vproc.call pool (Echo what) with
  | Ok r -> Alcotest.(check string) ("echo " ^ what) (String.uppercase_ascii what) r
  | Error f -> Alcotest.failf "echo %s failed: %s" what (Vproc.failure_message f)

let pool_tests =
  [
    Alcotest.test_case "echo round-trips frames through a forked worker" `Quick (fun () ->
        with_pool (fun pool ->
            Alcotest.(check bool) "a slot came up" true (Vproc.slots_available pool >= 1);
            check_ok pool "alpha";
            check_ok pool "beta";
            let st = Vproc.stats () in
            Alcotest.(check int) "two frames" 2 st.Vproc.frames;
            Alcotest.(check int) "one worker" 1 st.Vproc.spawned;
            Alcotest.(check int) "nothing killed" 0 st.Vproc.killed));
    Alcotest.test_case "a hung worker is SIGKILLed at the deadline and respawned" `Quick
      (fun () ->
        with_pool (fun pool ->
            let t0 = Unix.gettimeofday () in
            (match Vproc.call ~kill_at:(t0 +. 0.1) pool Hang with
            | Error (Vproc.Killed _) -> ()
            | Ok _ -> Alcotest.fail "a busy-spin returned"
            | Error f -> Alcotest.failf "expected Killed, got %s" (Vproc.failure_message f));
            let dt = Unix.gettimeofday () -. t0 in
            Alcotest.(check bool) (Fmt.str "kill was prompt (%.3fs)" dt) true (dt < 2.0);
            (* the next call must land on a fresh worker *)
            check_ok pool "after-kill";
            let st = Vproc.stats () in
            Alcotest.(check int) "one kill" 1 st.Vproc.killed;
            Alcotest.(check bool) "respawned" true (st.Vproc.respawned >= 1)));
    Alcotest.test_case "a crashing worker yields Crashed, then a fresh worker" `Quick
      (fun () ->
        with_pool (fun pool ->
            (match Vproc.call ~kill_at:(Unix.gettimeofday () +. 10.) pool Crash with
            | Error (Vproc.Crashed _) -> ()
            | Ok _ -> Alcotest.fail "an _exit 3 returned"
            | Error f -> Alcotest.failf "expected Crashed, got %s" (Vproc.failure_message f));
            check_ok pool "after-crash";
            let st = Vproc.stats () in
            Alcotest.(check bool) "crash counted" true (st.Vproc.crashed >= 1);
            Alcotest.(check bool) "respawned" true (st.Vproc.respawned >= 1)));
    Alcotest.test_case "an allocation bomb dies on its rlimit, not in the parent" `Quick
      (fun () ->
        with_pool ~mem_headroom_mb:48 (fun pool ->
            (match Vproc.call ~kill_at:(Unix.gettimeofday () +. 30.) pool (Alloc 512) with
            | Error (Vproc.Crashed _) -> ()
            | Ok held -> Alcotest.failf "held %s MB past a 48 MB headroom" held
            | Error f -> Alcotest.failf "expected Crashed, got %s" (Vproc.failure_message f));
            check_ok pool "after-oom"));
    Alcotest.test_case "handler exceptions come back as values, worker intact" `Quick
      (fun () ->
        with_pool (fun pool ->
            (match Vproc.call pool Raise with
            | Error (Vproc.Handler_raised msg) ->
              Alcotest.(check bool) "carries the message" true (contains msg "boom")
            | Ok _ -> Alcotest.fail "failwith returned Ok"
            | Error f ->
              Alcotest.failf "expected Handler_raised, got %s" (Vproc.failure_message f));
            let before = (Vproc.stats ()).Vproc.spawned in
            check_ok pool "after-raise";
            Alcotest.(check int) "same worker answered" before (Vproc.stats ()).Vproc.spawned));
    Alcotest.test_case "shutdown turns calls into Unavailable" `Quick (fun () ->
        Vproc.reset_stats ();
        let pool = Vproc.create ~jobs:1 ~handler () in
        check_ok pool "live";
        Vproc.shutdown pool;
        match Vproc.call pool (Echo "dead") with
        | Error (Vproc.Unavailable _) -> ()
        | Ok _ -> Alcotest.fail "a closed pool answered"
        | Error f -> Alcotest.failf "expected Unavailable, got %s" (Vproc.failure_message f));
    Alcotest.test_case "VERIOPT_NO_FORK forces graceful unavailability" `Quick (fun () ->
        Unix.putenv "VERIOPT_NO_FORK" "1";
        Fun.protect
          ~finally:(fun () -> Unix.putenv "VERIOPT_NO_FORK" "")
          (fun () ->
            Alcotest.(check bool) "available() says no" false (Vproc.available ());
            let pool = Vproc.create ~jobs:1 ~handler () in
            Alcotest.(check int) "no slots" 0 (Vproc.slots_available pool);
            (match Vproc.call pool (Echo "x") with
            | Error (Vproc.Unavailable _) -> ()
            | Ok _ -> Alcotest.fail "forked despite VERIOPT_NO_FORK"
            | Error f ->
              Alcotest.failf "expected Unavailable, got %s" (Vproc.failure_message f));
            Vproc.shutdown pool);
        Alcotest.(check bool) "empty string reads as unset" true (Vproc.available ()));
  ]

(* ------------------------------------------------------------------ *)

let with_race_pool f =
  Vproc.reset_stats ();
  let pool = Vproc.create ~jobs:2 ~handler () in
  Fun.protect ~finally:(fun () -> Vproc.shutdown pool) (fun () -> f pool);
  Alcotest.(check int) "no orphans after shutdown" 0 (Vproc.orphans pool)

let race_tests =
  [
    Alcotest.test_case "call_race: first responder wins, the loser is reaped promptly" `Quick
      (fun () ->
        with_race_pool (fun pool ->
            let t0 = Unix.gettimeofday () in
            (match
               Vproc.call_race
                 ~kill_at:(t0 +. 30.)
                 ~decide:(fun _ _ -> `Win)
                 pool
                 [ Sleep (0.02, "fast"); Sleep (10.0, "slow") ]
             with
            | Error f -> Alcotest.failf "race failed outright: %s" (Vproc.failure_message f)
            | Ok members ->
              Alcotest.(check int) "one member per request" 2 (Array.length members);
              (match members.(0) with
              | Vproc.Race_done (r, dt) ->
                Alcotest.(check string) "winner's response" "FAST" r;
                Alcotest.(check bool) (Fmt.str "winner was quick (%.3fs)" dt) true (dt < 5.0)
              | _ -> Alcotest.fail "the fast member must win");
              (match members.(1) with
              | Vproc.Race_cancelled _ -> ()
              | Vproc.Race_done _ -> Alcotest.fail "a 10s sleeper finished first"
              | Vproc.Race_failed f ->
                Alcotest.failf "loser failed instead of cancelling: %s"
                  (Vproc.failure_message f)));
            let dt = Unix.gettimeofday () -. t0 in
            Alcotest.(check bool) (Fmt.str "loser reaped promptly (%.3fs)" dt) true (dt < 5.0);
            Alcotest.(check int) "one loser cancelled" 1 (Vproc.stats ()).Vproc.cancelled;
            Alcotest.(check int) "cancellation is not a kill" 0 (Vproc.stats ()).Vproc.killed;
            (* the cancelled slot respawns and serves again — no backoff *)
            check_ok pool "after-race"));
    Alcotest.test_case "call_race: `Continue legs all complete, nobody is cancelled" `Quick
      (fun () ->
        with_race_pool (fun pool ->
            match
              Vproc.call_race
                ~kill_at:(Unix.gettimeofday () +. 30.)
                ~decide:(fun _ r -> if r = "YES" then `Win else `Continue)
                pool
                [ Sleep (0.01, "no"); Sleep (0.15, "yes") ]
            with
            | Error f -> Alcotest.failf "race failed outright: %s" (Vproc.failure_message f)
            | Ok members ->
              (match members.(0) with
              | Vproc.Race_done ("NO", _) -> ()
              | _ -> Alcotest.fail "the inconclusive leg must still report its answer");
              (match members.(1) with
              | Vproc.Race_done ("YES", _) -> ()
              | _ -> Alcotest.fail "the conclusive leg must win");
              Alcotest.(check int) "nothing cancelled" 0 (Vproc.stats ()).Vproc.cancelled));
    Alcotest.test_case "call_race: members beyond the pool fail, the rest still race" `Quick
      (fun () ->
        with_race_pool (fun pool ->
            match
              Vproc.call_race
                ~kill_at:(Unix.gettimeofday () +. 30.)
                ~decide:(fun _ _ -> `Win)
                pool
                [ Sleep (0.02, "a"); Sleep (10.0, "b"); Sleep (0.02, "c") ]
            with
            | Error f -> Alcotest.failf "race failed outright: %s" (Vproc.failure_message f)
            | Ok members ->
              (match members.(0) with
              | Vproc.Race_done ("A", _) -> ()
              | _ -> Alcotest.fail "member 0 must win");
              (match members.(1) with
              | Vproc.Race_cancelled _ -> ()
              | _ -> Alcotest.fail "member 1 must be cancelled");
              (match members.(2) with
              | Vproc.Race_failed (Vproc.Unavailable _) -> ()
              | _ -> Alcotest.fail "member 2 exceeds the pool and must be Unavailable")));
    Alcotest.test_case "call_race: the deadline kills every still-running member" `Quick
      (fun () ->
        with_race_pool (fun pool ->
            let t0 = Unix.gettimeofday () in
            (match
               Vproc.call_race
                 ~kill_at:(t0 +. 0.1)
                 ~decide:(fun _ _ -> `Continue)
                 pool
                 [ Sleep (10.0, "a"); Sleep (10.0, "b") ]
             with
            | Error f -> Alcotest.failf "race failed outright: %s" (Vproc.failure_message f)
            | Ok members ->
              Array.iter
                (function
                  | Vproc.Race_failed (Vproc.Killed _) -> ()
                  | _ -> Alcotest.fail "a member outlived the race deadline")
                members);
            let dt = Unix.gettimeofday () -. t0 in
            Alcotest.(check bool) (Fmt.str "deadline was hard (%.3fs)" dt) true (dt < 5.0);
            Alcotest.(check int) "both members killed" 2 (Vproc.stats ()).Vproc.killed;
            Alcotest.(check int) "deadline kills are not cancellations" 0
              (Vproc.stats ()).Vproc.cancelled;
            check_ok pool "after-deadline"));
    Alcotest.test_case "shutdown under an active race quiesces first, leaves no orphans"
      `Quick (fun () ->
        (* Regression: shutdown used to tear the pool down while a race was
           still cancelling its loser, racing the orphans audit against the
           supervisors' own reaping.  It must now block until every in-flight
           call releases its slots, then reap deterministically. *)
        Vproc.reset_stats ();
        let pool = Vproc.create ~jobs:2 ~handler () in
        let result = ref None in
        let racer =
          Thread.create
            (fun () ->
              result :=
                Some
                  (Vproc.call_race
                     ~kill_at:(Unix.gettimeofday () +. 30.)
                     ~decide:(fun _ _ -> `Win)
                     pool
                     [ Sleep (0.15, "fast"); Sleep (10.0, "slow") ]))
            ()
        in
        (* let the race dispatch both legs, then shut down underneath it *)
        Unix.sleepf 0.05;
        let t0 = Unix.gettimeofday () in
        Vproc.shutdown pool;
        let dt = Unix.gettimeofday () -. t0 in
        Thread.join racer;
        Alcotest.(check bool)
          (Fmt.str "shutdown blocked until the race resolved (%.3fs)" dt)
          true (dt >= 0.05);
        (match !result with
        | Some (Ok members) ->
          (match members.(0) with
          | Vproc.Race_done ("FAST", _) -> ()
          | _ -> Alcotest.fail "the fast leg must still win under teardown");
          (match members.(1) with
          | Vproc.Race_cancelled _ -> ()
          | _ -> Alcotest.fail "the slow leg must be cancelled, not torn down")
        | Some (Error f) ->
          Alcotest.failf "race failed under teardown: %s" (Vproc.failure_message f)
        | None -> Alcotest.fail "race never completed");
        Alcotest.(check int) "no orphans after teardown under load" 0 (Vproc.orphans pool));
  ]

(* ------------------------------------------------------------------ *)

let engine_tests =
  [
    Alcotest.test_case "proc backend verdicts match the in-process backend" `Quick (fun () ->
        let e = Engine.create ~tier1_samples:0 ~isolate:Engine.Proc () in
        Alcotest.(check bool) "proc backend is live" true (Engine.isolate e = Engine.Proc);
        let m_easy, src_e, tgt_e = easy_pair () in
        let fresh = A.verify_funcs m_easy ~src:src_e ~tgt:tgt_e in
        let proc = Engine.verify_funcs e m_easy ~src:src_e ~tgt:tgt_e in
        Alcotest.check category "equivalent pair" fresh.A.category proc.A.category;
        (* a refuted pair and a syntax error, through the same worker *)
        let m =
          Parser.parse_module
            "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}"
        in
        let src = List.hd m.Ast.funcs in
        let bad =
          Engine.verify_text e m ~src
            ~tgt_text:"define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 2\n  ret i8 %r\n}"
        in
        Alcotest.check category "refuted pair" A.Semantic_error bad.A.category);
    Alcotest.test_case "incremental deepening through the worker matches in-process" `Quick
      (fun () ->
        (* the marshalled request carries the incremental flag; the worker's
           deepening session must agree with a fresh in-process single-shot
           solve at the full bound on every loop verdict *)
        let e = Engine.create ~tier1_samples:0 ~isolate:Engine.Proc () in
        if Engine.isolate e <> Engine.Proc then
          (* fork refused: the fallback IS the in-process backend, nothing
             to compare across the boundary *)
          ()
        else
          List.iter
            (fun (name, (m, src, tgt)) ->
              let fresh = A.verify_funcs ~incremental:false m ~src ~tgt in
              let proc = Engine.verify_funcs ~incremental:true e m ~src ~tgt in
              Alcotest.check category name fresh.A.category proc.A.category)
            [
              ("terminating loop", loop_pair ());
              ("wrong constant", loop_pair ~ret:4 ());
              ("bound exceeds unroll", loop_pair ~bound:100 ~ret:100 ());
            ]);
    Alcotest.test_case "worker_hang chaos: uncached Inconclusive, killed and respawned"
      `Quick (fun () ->
        let e = Engine.create ~tier1_samples:0 ~isolate:Engine.Proc () in
        let m, src, tgt = hostile_pair () in
        Vproc.reset_stats ();
        with_faults "seed=1,worker_hang=1" (fun () ->
            let t0 = Unix.gettimeofday () in
            let v = Engine.verify_funcs ~deadline:(t0 +. 0.05) e m ~src ~tgt in
            let dt = Unix.gettimeofday () -. t0 in
            Alcotest.check category "degraded, not hung" A.Inconclusive v.A.category;
            Alcotest.(check bool) (Fmt.str "bounded (%.3fs)" dt) true (dt < 2.0);
            (* a cached verdict would return instantly without a second
               kill; a second kill proves it was never cached *)
            let v2 =
              Engine.verify_funcs ~deadline:(Unix.gettimeofday () +. 0.05) e m ~src ~tgt
            in
            Alcotest.check category "still degraded" A.Inconclusive v2.A.category);
        Alcotest.(check int) "each attempt was killed" 2 (Vproc.stats ()).Vproc.killed;
        (* injection off again: the same engine recovers to real verdicts —
           and talking to the slot again is what reads the pid notice of the
           replacement worker, so the respawn shows up in the counters *)
        let m_easy, src_e, tgt_e = easy_pair () in
        let v = Engine.verify_funcs e m_easy ~src:src_e ~tgt:tgt_e in
        Alcotest.check category "pool healthy after the sweep" A.Equivalent v.A.category;
        let v2 = Engine.verify_funcs ~max_conflicts:70_000 e m_easy ~src:tgt_e ~tgt:src_e in
        Alcotest.check category "both slots healthy" A.Equivalent v2.A.category;
        Alcotest.(check bool) "respawns recorded" true
          ((Vproc.stats ()).Vproc.respawned >= 1));
    Alcotest.test_case "portfolio racing: verdicts match in-process, no orphans" `Slow
      (fun () ->
        let e = Engine.create ~tier1_samples:0 ~portfolio:2 () in
        if Engine.portfolio e < 2 then ()
          (* fork refused: the portfolio degraded to a single solver *)
        else
          Fun.protect
            ~finally:(fun () ->
              Engine.shutdown e;
              Alcotest.(check int) "no orphans after shutdown" 0 (Engine.orphans e))
            (fun () ->
              Portfolio.reset_stats ();
              (* conclusive probes short-circuit the race; verdicts match *)
              let m_easy, src_e, tgt_e = easy_pair () in
              let fresh = A.verify_funcs m_easy ~src:src_e ~tgt:tgt_e in
              let raced = Engine.verify_funcs e m_easy ~src:src_e ~tgt:tgt_e in
              Alcotest.check category "equivalent pair" fresh.A.category raced.A.category;
              let m =
                Parser.parse_module
                  "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}"
              in
              let src = List.hd m.Ast.funcs in
              let bad =
                Engine.verify_text e m ~src
                  ~tgt_text:
                    "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 2\n  ret i8 %r\n}"
              in
              Alcotest.check category "refuted pair" A.Semantic_error bad.A.category;
              (* loop pairs go through the same race plumbing *)
              List.iter
                (fun (name, (lm, lsrc, ltgt)) ->
                  let fresh = A.verify_funcs ~incremental:false lm ~src:lsrc ~tgt:ltgt in
                  let raced = Engine.verify_funcs e lm ~src:lsrc ~tgt:ltgt in
                  Alcotest.check category name fresh.A.category raced.A.category)
                [ ("terminating loop", loop_pair ()); ("wrong constant", loop_pair ~ret:4 ()) ];
              (* a probe-resistant pair forces an actual cube split: i8 mul
                 commutativity blows the 500-conflict probe but the cube
                 legs close it.  Whatever wins, the verdict must never flip
                 to a refutation *)
              let text op =
                Fmt.str
                  "define i8 @f(i8 %%x, i8 %%y) {\nentry:\n  %%r = mul i8 %s\n  ret i8 %%r\n}"
                  op
              in
              let hm = Parser.parse_module (text "%x, %y") in
              let hsrc = List.hd hm.Ast.funcs in
              let htgt = List.hd (Parser.parse_module (text "%y, %x")).Ast.funcs in
              let v = Engine.verify_funcs ~max_conflicts:400_000 e hm ~src:hsrc ~tgt:htgt in
              Alcotest.check category "i8 mul commutes" A.Equivalent v.A.category;
              let p = Portfolio.stats () in
              Alcotest.(check bool) "races ran" true (p.Portfolio.races >= 1);
              Alcotest.(check bool) "the hostile pair split into cubes" true
                (p.Portfolio.cube_splits >= 1)));
    Alcotest.test_case "worker_oom chaos: the bomb dies in the worker" `Quick (fun () ->
        Unix.putenv "VERIOPT_PROC_MEM_MB" "64";
        Fun.protect
          ~finally:(fun () -> Unix.putenv "VERIOPT_PROC_MEM_MB" "")
          (fun () ->
            let e = Engine.create ~tier1_samples:0 ~isolate:Engine.Proc () in
            let m_easy, src_e, tgt_e = easy_pair () in
            Vproc.reset_stats ();
            with_faults "seed=1,worker_oom=1" (fun () ->
                let v =
                  Engine.verify_funcs
                    ~deadline:(Unix.gettimeofday () +. 5.0)
                    e m_easy ~src:src_e ~tgt:tgt_e
                in
                Alcotest.check category "degraded to Inconclusive" A.Inconclusive v.A.category);
            Alcotest.(check bool) "the worker died" true
              ((Vproc.stats ()).Vproc.crashed >= 1);
            let v = Engine.verify_funcs e m_easy ~src:src_e ~tgt:tgt_e in
            Alcotest.check category "recovered" A.Equivalent v.A.category));
  ]

(* ------------------------------------------------------------------ *)

(* LAST: [Trainer] spins up the Par pool's domains, which permanently
   disables fork in this process — nothing fork-based may run after this. *)
let trainer_tests =
  [
    Alcotest.test_case "100% worker_hang: the stage completes, every death counted"
      `Slow (fun () ->
        let train = (S.build ~verify:false ~seed0:60301 ~n:4 ()).S.samples in
        let base = Veriopt_llm.Capability.base_3b () in
        let engine = Engine.create ~isolate:Engine.Proc () in
        Alcotest.(check bool) "proc backend live pre-domains" true
          (Engine.isolate engine = Engine.Proc);
        Vproc.reset_stats ();
        (* one direct hostile call pins the kill path before training *)
        let m, src, tgt = hostile_pair () in
        with_faults "seed=1,worker_hang=1" (fun () ->
            let v =
              Engine.verify_funcs ~deadline:(Unix.gettimeofday () +. 0.05) engine m ~src ~tgt
            in
            Alcotest.check category "hostile degraded" A.Inconclusive v.A.category);
        Alcotest.(check bool) "worker killed" true ((Vproc.stats ()).Vproc.killed >= 1);
        (* now the sweep: every tier-2 verdict in the reward path degrades,
           the stage itself must neither crash nor hang *)
        let opts =
          {
            Trainer.default_options with
            Trainer.grpo_steps = 4;
            group_size = 4;
            verify_timeout = Some 0.05;
          }
        in
        let r =
          with_faults "seed=1,worker_hang=1" (fun () ->
              Trainer.train_model_zero ~opts ~engine base train)
        in
        Alcotest.(check int) "every GRPO step logged" 4
          (List.length r.Trainer.zero_log.Trainer.raw_rewards));
  ]

let suite = ("vproc", eintr_tests @ pool_tests @ race_tests @ engine_tests @ trainer_tests)

(* The resilience layer: fault-spec parsing and determinism, wall-clock
   deadlines, the circuit breaker, the crash-proof reward path, and
   checkpoint/resume (kill-and-resume must be bit-identical).

   Every test that arms injection disables it again in a [Fun.protect]
   finalizer: the fault config is process-global. *)

open Veriopt_ir
module A = Veriopt_alive.Alive
module Engine = Veriopt_alive.Engine
module Vcache = Veriopt_alive.Vcache
module Solver = Veriopt_smt.Solver
module Fault = Veriopt_fault.Fault
module Par = Veriopt_par.Par
module Model = Veriopt_llm.Model
module Reward = Veriopt_rl.Reward
module Trainer = Veriopt_rl.Trainer
module Checkpoint = Veriopt_rl.Checkpoint
module S = Veriopt_data.Suite

let m0 = Ast.empty_module
let parse = Parser.parse_func

let with_faults spec f =
  (match Fault.configure_string spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e);
  Fault.reset_stats ();
  Fun.protect ~finally:Fault.disable f

let tmpdir () =
  let d = Filename.temp_file "veriopt-ckpt" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let category =
  Alcotest.testable
    (fun ppf -> function
      | A.Equivalent -> Fmt.string ppf "Equivalent"
      | A.Semantic_error -> Fmt.string ppf "Semantic_error"
      | A.Syntax_error -> Fmt.string ppf "Syntax_error"
      | A.Inconclusive -> Fmt.string ppf "Inconclusive")
    ( = )

(* SMT-hostile pair: mul commutativity is trivial algebraically and brutal
   bit-blasted — the shape the deadline exists for. *)
let hostile_pair () =
  let text op =
    Fmt.str "define i12 @f(i12 %%x, i12 %%y) {\nentry:\n  %%r = mul i12 %s\n  ret i12 %%r\n}" op
  in
  let m = Parser.parse_module (text "%x, %y") in
  let src = List.hd m.Ast.funcs in
  let tgt = List.hd (Parser.parse_module (text "%y, %x")).Ast.funcs in
  (m, src, tgt)

(* ------------------------------------------------------------------ *)

let spec_tests =
  [
    Alcotest.test_case "spec grammar round-trips" `Quick (fun () ->
        match Fault.parse "seed=9, solver_timeout=1, verify_delay=0.25:0.002" with
        | Error e -> Alcotest.fail e
        | Ok cfg ->
          Alcotest.(check int) "seed" 9 cfg.Fault.seed;
          (match cfg.Fault.specs.(0) with
          | Some s -> Alcotest.(check (float 0.)) "rate" 1.0 s.Fault.rate
          | None -> Alcotest.fail "solver_timeout unset");
          (match cfg.Fault.specs.(2) with
          | Some s -> Alcotest.(check (float 1e-9)) "param" 0.002 s.Fault.param
          | None -> Alcotest.fail "verify_delay unset"));
    Alcotest.test_case "invalid specs are rejected with a reason" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Fault.parse bad with
            | Ok _ -> Alcotest.failf "accepted %S" bad
            | Error _ -> ())
          [ "nonsense"; "bogus_kind=1"; "solver_timeout=2.0"; "seed=abc"; "verify_delay=0.5:x" ]);
    Alcotest.test_case "same spec, same call sequence, same faults" `Quick (fun () ->
        let sequence () =
          with_faults "seed=3,oracle_exn=0.5" (fun () ->
              List.init 64 (fun _ -> Fault.fire Fault.Oracle_exn))
        in
        let a = sequence () and b = sequence () in
        Alcotest.(check (list bool)) "deterministic" a b;
        Alcotest.(check bool) "roughly half fire" true
          (let fires = List.length (List.filter Fun.id a) in
           fires > 16 && fires < 48));
    Alcotest.test_case "disabled injection never fires" `Quick (fun () ->
        Fault.disable ();
        Alcotest.(check bool) "enabled" false (Fault.enabled ());
        Alcotest.(check bool) "fire" false (Fault.fire Fault.Solver_timeout));
  ]

(* ------------------------------------------------------------------ *)

let deadline_tests =
  [
    Alcotest.test_case "expired deadline: Inconclusive immediately" `Quick (fun () ->
        let m, src, tgt = hostile_pair () in
        let t0 = Unix.gettimeofday () in
        let v =
          A.verify_funcs ~max_conflicts:10_000_000 ~deadline:(t0 -. 1.0) m ~src ~tgt
        in
        Alcotest.check category "inconclusive" A.Inconclusive v.A.category;
        Alcotest.(check bool) "fast" true (Unix.gettimeofday () -. t0 < 1.0));
    Alcotest.test_case "deadline bounds a hostile SMT query" `Quick (fun () ->
        let m, src, tgt = hostile_pair () in
        let t0 = Unix.gettimeofday () in
        let v =
          A.verify_funcs ~max_conflicts:10_000_000 ~deadline:(t0 +. 0.05) m ~src ~tgt
        in
        let dt = Unix.gettimeofday () -. t0 in
        Alcotest.check category "inconclusive, not hung" A.Inconclusive v.A.category;
        (* amortized checks add slack; the point is seconds, not minutes *)
        Alcotest.(check bool) (Fmt.str "bounded (took %.3fs)" dt) true (dt < 2.0));
    Alcotest.test_case "deadline-expired verdicts are not cached" `Quick (fun () ->
        let m, src, tgt = hostile_pair () in
        let e = Engine.create ~tier1_samples:0 () in
        let v1 =
          Engine.verify_funcs ~max_conflicts:10_000_000
            ~deadline:(Unix.gettimeofday () -. 1.0)
            e m ~src ~tgt
        in
        Alcotest.check category "expired run inconclusive" A.Inconclusive v1.A.category;
        let st = Engine.stats e in
        Alcotest.(check int) "nothing cached" 0 st.Vcache.insertions);
  ]

(* ------------------------------------------------------------------ *)

let breaker_tests =
  [
    Alcotest.test_case "breaker state machine: trip, cooldown, half-open" `Quick (fun () ->
        let (c : unit Vcache.t) = Vcache.create () in
        let note inconclusive = Vcache.breaker_note c ~inconclusive ~k:2 ~cooldown:3 in
        Alcotest.(check bool) "closed: no skip" false (Vcache.breaker_skip c);
        note true;
        note true;
        (* tripped: 3 skips, then half-open *)
        Alcotest.(check bool) "open" true (Vcache.breaker_skip c);
        Alcotest.(check bool) "open" true (Vcache.breaker_skip c);
        Alcotest.(check bool) "open" true (Vcache.breaker_skip c);
        Alcotest.(check bool) "half-open lets the trial through" false (Vcache.breaker_skip c);
        (* conclusive trial closes it *)
        note false;
        Alcotest.(check bool) "closed again" false (Vcache.breaker_skip c);
        (* re-trip needs k consecutive again, then an inconclusive trial
           re-opens immediately *)
        note true;
        note true;
        for _ = 1 to 3 do
          ignore (Vcache.breaker_skip c)
        done;
        note true;
        Alcotest.(check bool) "half-open failure re-trips" true (Vcache.breaker_skip c);
        let st = Vcache.stats c in
        Alcotest.(check int) "trips" 3 st.Vcache.breaker_trips;
        Alcotest.(check bool) "skips counted" true (st.Vcache.breaker_skips >= 7));
    Alcotest.test_case "100% solver timeouts: breaker trips, verdicts only widen" `Quick
      (fun () ->
        let ds = S.build ~verify:false ~seed0:99221 ~n:8 () in
        let clean_engine = Engine.create () in
        let clean =
          List.map
            (fun (s : S.sample) ->
              (Engine.verify_funcs clean_engine s.S.modul ~src:s.S.src ~tgt:s.S.label)
                .A.category)
            ds.S.samples
        in
        let chaos =
          with_faults "seed=5,solver_timeout=1" (fun () ->
              let e = Engine.create ~breaker_k:2 ~breaker_cooldown:4 () in
              let cats =
                List.map
                  (fun (s : S.sample) ->
                    (Engine.verify_funcs e s.S.modul ~src:s.S.src ~tgt:s.S.label).A.category)
                  ds.S.samples
              in
              (cats, Engine.stats e))
        in
        let cats, st = chaos in
        List.iter2
          (fun cl ch ->
            if ch <> cl then
              Alcotest.check category "faults may only widen to Inconclusive" A.Inconclusive ch)
          clean cats;
        Alcotest.(check bool) "breaker tripped at least once" true
          (st.Vcache.breaker_trips >= 1);
        Alcotest.(check bool) "skips counted" true (st.Vcache.breaker_skips >= 1));
  ]

(* ------------------------------------------------------------------ *)

let crash_proof_tests =
  [
    Alcotest.test_case "injected parse crash becomes a counted engine failure" `Quick
      (fun () ->
        let src = parse "define i8 @f(i8 %x) {\nentry:\n  ret i8 %x\n}" in
        let completion = "<answer>define i8 @f(i8 %x) {\nentry:\n  ret i8 %x\n}</answer>" in
        with_faults "seed=1,parse_corrupt=1" (fun () ->
            Reward.reset_engine_failures ();
            let vc = Reward.verify_completion m0 ~src completion in
            Alcotest.check category "absorbed as inconclusive" A.Inconclusive
              vc.Reward.verdict.A.category;
            Alcotest.(check int) "counted" 1 (Reward.engine_failures ())));
    Alcotest.test_case "injected oracle crash is absorbed too" `Quick (fun () ->
        let src = parse "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}" in
        let completion =
          "<answer>define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 2\n  ret i8 %r\n}</answer>"
        in
        with_faults "seed=1,oracle_exn=1" (fun () ->
            Reward.reset_engine_failures ();
            let vc = Reward.verify_completion ~engine:(Engine.create ()) m0 ~src completion in
            Alcotest.check category "absorbed" A.Inconclusive vc.Reward.verdict.A.category;
            Alcotest.(check int) "counted" 1 (Reward.engine_failures ())));
    Alcotest.test_case "worker death surfaces to the Par caller, not a crash" `Quick
      (fun () ->
        with_faults "seed=1,worker_exn=1" (fun () ->
            let pool = Par.create ~jobs:3 in
            let got =
              try
                ignore (Par.map pool (fun x -> x) (List.init 8 Fun.id));
                `No_exn
              with Fault.Injected _ -> `Injected
            in
            Par.shutdown pool;
            Alcotest.(check bool) "Injected delivered in order" true (got = `Injected)));
  ]

(* ------------------------------------------------------------------ *)

let par_jobs_tests =
  [
    Alcotest.test_case "invalid VERIOPT_JOBS falls back to recommended" `Quick (fun () ->
        let recommended = min 8 (Domain.recommended_domain_count ()) in
        let with_env v f =
          Unix.putenv "VERIOPT_JOBS" v;
          Fun.protect ~finally:(fun () -> Unix.putenv "VERIOPT_JOBS" "") f
        in
        with_env "abc" (fun () ->
            Alcotest.(check int) "abc -> recommended" recommended (Par.default_jobs ()));
        with_env "0" (fun () ->
            Alcotest.(check int) "0 -> recommended" recommended (Par.default_jobs ()));
        with_env "-3" (fun () ->
            Alcotest.(check int) "-3 -> recommended" recommended (Par.default_jobs ()));
        with_env "3" (fun () -> Alcotest.(check int) "3 -> 3" 3 (Par.default_jobs ()));
        Alcotest.(check int) "unset -> recommended" recommended (Par.default_jobs ()));
  ]

(* ------------------------------------------------------------------ *)

let vcache_tests =
  [
    Alcotest.test_case "generation sweep: promotion on old-generation hit" `Quick (fun () ->
        let key i =
          {
            Vcache.ctx = "";
            src = string_of_int i;
            tgt = "";
            unroll = 4;
            max_conflicts = 1;
            reduce = true;
            incremental = true;
            portfolio = 1;
            sat = "s0:luby100:pF";
          }
        in
        let (c : int Vcache.t) = Vcache.create ~capacity:2 () in
        Vcache.add c (key 1) 1;
        Vcache.add c (key 2) 2;
        (* the third insertion sweeps {1,2} into the old generation *)
        Vcache.add c (key 3) 3;
        Alcotest.(check (option int)) "old-gen entry still found" (Some 1) (Vcache.find c (key 1));
        (* the hit promoted it; two more sweeps without touching it evict it *)
        Vcache.add c (key 4) 4;
        Vcache.add c (key 5) 5;
        Vcache.add c (key 6) 6;
        Vcache.add c (key 7) 7;
        Alcotest.(check (option int)) "untouched entry evicted" None (Vcache.find c (key 1));
        let st = Vcache.stats c in
        Alcotest.(check bool) "entries bounded by 2*capacity" true
          (st.Vcache.entries <= 4);
        Alcotest.(check bool) "evictions counted" true (st.Vcache.evictions >= 1));
    Alcotest.test_case "capacity floor and reset" `Quick (fun () ->
        let (c : int Vcache.t) = Vcache.create ~capacity:0 () in
        let st = Vcache.stats c in
        Alcotest.(check int) "capacity clamped to 1" 1 st.Vcache.capacity;
        Vcache.add c
          {
            Vcache.ctx = "x";
            src = "";
            tgt = "";
            unroll = 0;
            max_conflicts = 0;
            reduce = true;
            incremental = true;
            portfolio = 1;
            sat = "s0:luby100:pF";
          }
          9;
        Vcache.reset c;
        let st = Vcache.stats c in
        Alcotest.(check int) "no entries after reset" 0 st.Vcache.entries;
        Alcotest.(check int) "breaker counters zeroed" 0
          (st.Vcache.breaker_trips + st.Vcache.breaker_skips));
  ]

(* ------------------------------------------------------------------ *)

let theta_alist (m : Model.t) =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) m.Model.theta [] |> List.sort compare

let ckpt_opts dir =
  {
    Trainer.default_options with
    Trainer.grpo_steps = 6;
    group_size = 4;
    checkpoint_dir = dir;
    checkpoint_every = 2;
  }

let checkpoint_tests =
  [
    Alcotest.test_case "snapshot save/load round-trip and validation" `Quick (fun () ->
        let dir = tmpdir () in
        let model = Veriopt_llm.Capability.base_3b () in
        Model.set model "act:rule" 1.25;
        let snap =
          {
            Checkpoint.stage = "model-zero";
            step = 7;
            model;
            rng = Random.State.make [| 42 |];
            rewards_rev = [ 0.5; 0.25 ];
            failures_rev = [];
          }
        in
        Checkpoint.save ~dir snap;
        (match Checkpoint.load ~dir ~stage:"model-zero" with
        | Error e -> Alcotest.fail e
        | Ok got ->
          Alcotest.(check int) "step" 7 got.Checkpoint.step;
          Alcotest.(check (list (float 0.))) "metrics" [ 0.5; 0.25 ] got.Checkpoint.rewards_rev;
          Alcotest.(check bool) "params round-trip" true
            (theta_alist got.Checkpoint.model = theta_alist model);
          (* the marshalled RNG must continue identically *)
          Alcotest.(check int) "rng state round-trips"
            (Random.State.int (Random.State.make [| 42 |]) 1_000_000)
            (Random.State.int got.Checkpoint.rng 1_000_000));
        (match Checkpoint.load ~dir ~stage:"model-latency" with
        | Ok _ -> Alcotest.fail "stage mismatch accepted"
        | Error _ -> ());
        let oc = open_out (Checkpoint.path ~dir ~stage:"model-zero") in
        output_string oc "NOT A CHECKPOINT";
        close_out oc;
        match Checkpoint.load ~dir ~stage:"model-zero" with
        | Ok _ -> Alcotest.fail "corrupt file accepted"
        | Error _ -> ());
    Alcotest.test_case "corrupt snapshot falls back to the previous good one" `Quick
      (fun () ->
        let model = Veriopt_llm.Capability.base_3b () in
        let snap step =
          {
            Checkpoint.stage = "model-zero";
            step;
            model;
            rng = Random.State.make [| step |];
            rewards_rev = [ float_of_int step ];
            failures_rev = [];
          }
        in
        let damaged damage =
          let dir = tmpdir () in
          Checkpoint.save ~dir (snap 2);
          Checkpoint.save ~dir (snap 4) (* rotates the step-2 file into .prev *);
          let path = Checkpoint.path ~dir ~stage:"model-zero" in
          damage path;
          match Checkpoint.load ~dir ~stage:"model-zero" with
          | Error e -> Alcotest.failf "no fallback: %s" e
          | Ok got -> Alcotest.(check int) "previous good snapshot" 2 got.Checkpoint.step
        in
        (* a truncated payload (crash mid-write) fails the length check *)
        damaged (fun path ->
            let len = (Unix.stat path).Unix.st_size in
            Unix.truncate path (len - 7));
        (* a flipped byte (disk rot) fails the CRC *)
        damaged (fun path ->
            let ic = open_in_bin path in
            let len = in_channel_length ic in
            let body = Bytes.of_string (really_input_string ic len) in
            close_in ic;
            Bytes.set body (len - 3) (Char.chr (Char.code (Bytes.get body (len - 3)) lxor 0x5a));
            let oc = open_out_bin path in
            output_bytes oc body;
            close_out oc);
        (* with both generations corrupt, the error mentions each *)
        let dir = tmpdir () in
        Checkpoint.save ~dir (snap 2);
        Checkpoint.save ~dir (snap 4);
        let wreck path =
          let oc = open_out_bin path in
          output_string oc "NOT A CHECKPOINT";
          close_out oc
        in
        let path = Checkpoint.path ~dir ~stage:"model-zero" in
        wreck path;
        wreck (path ^ ".prev");
        match Checkpoint.load ~dir ~stage:"model-zero" with
        | Ok _ -> Alcotest.fail "two corrupt generations accepted"
        | Error _ -> ());
    Alcotest.test_case "kill and resume reproduces the uninterrupted run exactly" `Quick
      (fun () ->
        let train = (S.build ~verify:false ~seed0:55105 ~n:4 ()).S.samples in
        let base = Veriopt_llm.Capability.base_3b () in
        (* reference: uninterrupted *)
        let reference = Trainer.train_model_zero ~opts:(ckpt_opts None) base train in
        (* killed: checkpoints every 2 steps, simulated crash after step 4 *)
        let dir = Some (tmpdir ()) in
        (match
           with_faults "seed=1,trainer_abort=1:4" (fun () ->
               Trainer.train_model_zero ~opts:(ckpt_opts dir) base train)
         with
        | _ -> Alcotest.fail "the injected abort did not fire"
        | exception Fault.Injected _ -> ());
        (* resume from the snapshot written at step 4 *)
        let resumed =
          Trainer.train_model_zero
            ~opts:{ (ckpt_opts dir) with Trainer.resume = true }
            base train
        in
        Alcotest.(check (list (float 0.)))
          "per-step mean rewards bit-identical"
          reference.Trainer.zero_log.Trainer.raw_rewards
          resumed.Trainer.zero_log.Trainer.raw_rewards;
        Alcotest.(check bool) "final model parameters bit-identical" true
          (theta_alist reference.Trainer.model_zero = theta_alist resumed.Trainer.model_zero);
        Alcotest.(check int) "harvested failures match"
          (List.length reference.Trainer.failures)
          (List.length resumed.Trainer.failures));
  ]

(* ------------------------------------------------------------------ *)

let proc_chaos_tests =
  [
    Alcotest.test_case "worker-death chaos cannot break training even without fork" `Quick
      (fun () ->
        (* by this point the test binary has long since spawned Par domains,
           so OCaml 5 refuses to fork: asking for the proc backend must fall
           back to the in-process one (where worker faults have no site to
           fire) and the sweep must still complete every step *)
        let e = Engine.create ~isolate:Engine.Proc () in
        Alcotest.(check bool) "fell back to the domain backend" true
          (Engine.isolate e = Engine.Domains);
        let train = (S.build ~verify:false ~seed0:55111 ~n:4 ()).S.samples in
        let base = Veriopt_llm.Capability.base_3b () in
        let opts =
          {
            Trainer.default_options with
            Trainer.grpo_steps = 4;
            group_size = 4;
            verify_timeout = Some 0.05;
            isolate = Some Engine.Proc;
          }
        in
        let r =
          with_faults "seed=1,worker_hang=1,worker_oom=1" (fun () ->
              Trainer.train_model_zero ~opts base train)
        in
        Alcotest.(check int) "every GRPO step logged" 4
          (List.length r.Trainer.zero_log.Trainer.raw_rewards));
  ]

let suite =
  ( "fault",
    spec_tests @ deadline_tests @ breaker_tests @ crash_proof_tests @ par_jobs_tests
    @ vcache_tests @ checkpoint_tests @ proc_chaos_tests )

(* SAT solver and bit-blaster: unit formulas, pigeonhole unsatisfiability,
   and differential testing of the circuits against concrete evaluation. *)

module Sat = Veriopt_smt.Sat
module Expr = Veriopt_smt.Expr
module Solver = Veriopt_smt.Solver

let lit v = Sat.lit_of_var v
let nlit v = Sat.lit_of_var ~sign:false v

let sat_result =
  Alcotest.testable
    (fun ppf -> function
      | Sat.Sat -> Fmt.string ppf "SAT"
      | Sat.Unsat -> Fmt.string ppf "UNSAT"
      | Sat.Unknown -> Fmt.string ppf "UNKNOWN")
    ( = )

let sat_tests =
  [
    Alcotest.test_case "empty formula is SAT" `Quick (fun () ->
        let s = Sat.create () in
        Alcotest.check sat_result "sat" Sat.Sat (Sat.solve s));
    Alcotest.test_case "unit clauses propagate" `Quick (fun () ->
        let s = Sat.create () in
        let a = Sat.new_var s and b = Sat.new_var s in
        Sat.add_clause s [ lit a ];
        Sat.add_clause s [ nlit a; lit b ];
        Alcotest.check sat_result "sat" Sat.Sat (Sat.solve s);
        Alcotest.(check bool) "a true" true (Sat.model_value s a);
        Alcotest.(check bool) "b true" true (Sat.model_value s b));
    Alcotest.test_case "contradiction is UNSAT" `Quick (fun () ->
        let s = Sat.create () in
        let a = Sat.new_var s in
        Sat.add_clause s [ lit a ];
        Sat.add_clause s [ nlit a ];
        Alcotest.check sat_result "unsat" Sat.Unsat (Sat.solve s));
    Alcotest.test_case "xor chain forces conflict-driven search" `Quick (fun () ->
        (* a xor b, b xor c, a xor c is unsatisfiable as parity constraints
           with odd total parity *)
        let s = Sat.create () in
        let a = Sat.new_var s and b = Sat.new_var s and c = Sat.new_var s in
        let xor_true x y =
          Sat.add_clause s [ lit x; lit y ];
          Sat.add_clause s [ nlit x; nlit y ]
        in
        xor_true a b;
        xor_true b c;
        xor_true a c;
        Alcotest.check sat_result "unsat" Sat.Unsat (Sat.solve s));
    Alcotest.test_case "pigeonhole PHP(4,3) is UNSAT" `Quick (fun () ->
        (* 4 pigeons in 3 holes; classic resolution-hard family at scale *)
        let s = Sat.create () in
        let v = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Sat.new_var s)) in
        for p = 0 to 3 do
          Sat.add_clause s (List.init 3 (fun h -> lit v.(p).(h)))
        done;
        for h = 0 to 2 do
          for p1 = 0 to 3 do
            for p2 = p1 + 1 to 3 do
              Sat.add_clause s [ nlit v.(p1).(h); nlit v.(p2).(h) ]
            done
          done
        done;
        Alcotest.check sat_result "unsat" Sat.Unsat (Sat.solve s));
    Alcotest.test_case "pigeonhole PHP(5,5) is SAT" `Quick (fun () ->
        let s = Sat.create () in
        let v = Array.init 5 (fun _ -> Array.init 5 (fun _ -> Sat.new_var s)) in
        for p = 0 to 4 do
          Sat.add_clause s (List.init 5 (fun h -> lit v.(p).(h)))
        done;
        for h = 0 to 4 do
          for p1 = 0 to 4 do
            for p2 = p1 + 1 to 4 do
              Sat.add_clause s [ nlit v.(p1).(h); nlit v.(p2).(h) ]
            done
          done
        done;
        Alcotest.check sat_result "sat" Sat.Sat (Sat.solve s));
    Alcotest.test_case "conflict budget yields Unknown" `Quick (fun () ->
        (* PHP(7,6) with a budget of 1 conflict *)
        let s = Sat.create () in
        let v = Array.init 7 (fun _ -> Array.init 6 (fun _ -> Sat.new_var s)) in
        for p = 0 to 6 do
          Sat.add_clause s (List.init 6 (fun h -> lit v.(p).(h)))
        done;
        for h = 0 to 5 do
          for p1 = 0 to 6 do
            for p2 = p1 + 1 to 6 do
              Sat.add_clause s [ nlit v.(p1).(h); nlit v.(p2).(h) ]
            done
          done
        done;
        Alcotest.check sat_result "unknown" Sat.Unknown (Sat.solve ~max_conflicts:1 s));
  ]

(* Random 3-CNF solved by the CDCL solver and checked against brute force. *)
let gen_cnf =
  QCheck2.Gen.(
    let* nvars = int_range 3 8 in
    let* nclauses = int_range 3 30 in
    let* clauses =
      list_size (return nclauses)
        (list_size (return 3)
           (let* v = int_bound (nvars - 1) in
            let* sign = bool in
            return (v, sign)))
    in
    return (nvars, clauses))

let brute_force nvars clauses =
  let rec go assignment v =
    if v = nvars then
      List.for_all
        (fun clause -> List.exists (fun (x, sign) -> List.nth assignment x = sign) clause)
        clauses
    else go (assignment @ [ true ]) (v + 1) || go (assignment @ [ false ]) (v + 1)
  in
  go [] 0

let sat_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"CDCL agrees with brute force on random 3-CNF" gen_cnf
       (fun (nvars, clauses) ->
         let s = Sat.create () in
         let vars = Array.init nvars (fun _ -> Sat.new_var s) in
         List.iter
           (fun clause ->
             Sat.add_clause s
               (List.map (fun (v, sign) -> Sat.lit_of_var ~sign vars.(v)) clause))
           clauses;
         let expected = brute_force nvars clauses in
         match Sat.solve s with
         | Sat.Sat ->
           expected
           && List.for_all
                (fun clause ->
                  List.exists (fun (v, sign) -> Sat.model_value s vars.(v) = sign) clause)
                clauses
         | Sat.Unsat -> not expected
         | Sat.Unknown -> false))

(* Differential testing of the bit-blaster against concrete evaluation. *)
let all_ops =
  Expr.[ Add; Sub; Mul; UDiv; URem; SDiv; SRem; Shl; LShr; AShr; And; Or; Xor ]

let gen_term =
  QCheck2.Gen.(
    let* w = oneofl [ 1; 5; 8; 16; 32; 64 ] in
    let* env = array_size (return 3) (map Int64.of_int int) in
    let rec term depth =
      if depth = 0 then
        let* pick = int_bound 3 in
        if pick = 0 then map (Expr.bv_const w) (map Int64.of_int int)
        else return (Expr.bv_var (Fmt.str "x%d" (pick - 1)) w)
      else
        let* a = term (depth - 1) in
        let* b = term (depth - 1) in
        let* op = oneofl all_ops in
        return (Expr.bin op a b)
    in
    let* t = term 3 in
    return (w, env, t))

let env_fn env name =
  match name with
  | "x0" -> env.(0)
  | "x1" -> env.(1)
  | "x2" -> env.(2)
  | _ -> 0L

let bitblast_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"bit-blast agrees with concrete evaluation" gen_term
       (fun (w, env, t) ->
         let expected = Solver.eval_bv (env_fn env) (fun _ -> false) t in
         let pin i =
           Expr.eq (Expr.bv_var (Fmt.str "x%d" i) w) (Expr.bv_const w env.(i))
         in
         (* t != expected under the pinned env must be UNSAT *)
         match
           Solver.check
             (Expr.not_ (Expr.eq t (Expr.bv_const w expected)) :: List.init 3 pin)
         with
         | Solver.Unsat -> true
         | Solver.Sat _ | Solver.Unknown -> false))

let model_soundness_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"SAT models satisfy the formula" gen_term
       (fun (w, _, t) ->
         let goal = Expr.bv_const w 42L in
         match Solver.check [ Expr.eq t goal ] with
         | Solver.Unsat | Solver.Unknown -> true
         | Solver.Sat m ->
           let env name = match m.Solver.bv_value name with Some (_, v) -> v | None -> 0L in
           Solver.eval_bv env (fun _ -> false) t = Veriopt_ir.Bits.mask w 42L))

(* ------------------------------------------------------------------ *)
(* End-to-end bit-vector fuzz: >= 1000 seeded round-trip cases (concrete
   evaluation vs bit-blast + solve), plus the nsw/nuw/exact poison
   predicates the Alive encoder builds, cross-checked against Bits'
   concrete overflow predicates — the single source of truth both the
   interpreter and the encoder claim to mirror.  VERIOPT_FUZZ_N cranks the
   counts along with the SAT fuzzer's. *)

module Bits = Veriopt_ir.Bits

let bv_fuzz_n =
  match Sys.getenv_opt "VERIOPT_FUZZ_N" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> max 1_000 (n / 5) | _ -> 1_000)
  | None -> 1_000

(* Like [gen_term] but biased toward small widths and shallow terms so a
   thousand cases bit-blast in seconds; occasional wide terms keep the
   64-bit carry chains honest. *)
let gen_term_small =
  QCheck2.Gen.(
    let* w = frequency [ (9, oneofl [ 1; 2; 3; 4; 5; 6; 7; 8 ]); (1, oneofl [ 16; 32; 64 ]) ]
    in
    let* env = array_size (return 3) (map Int64.of_int int) in
    let* depth = int_range 1 2 in
    let rec term depth =
      if depth = 0 then
        let* pick = int_bound 3 in
        if pick = 0 then map (Expr.bv_const w) (map Int64.of_int int)
        else return (Expr.bv_var (Fmt.str "x%d" (pick - 1)) w)
      else
        let* a = term (depth - 1) in
        let* b = term (depth - 1) in
        let* op = oneofl all_ops in
        return (Expr.bin op a b)
    in
    let* t = term depth in
    return (w, env, t))

let bitblast_roundtrip_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:bv_fuzz_n
       ~name:(Fmt.str "bit-vector round-trip fuzz, %d cases (VERIOPT_FUZZ_N)" bv_fuzz_n)
       gen_term_small
       (fun (w, env, t) ->
         let expected = Solver.eval_bv (env_fn env) (fun _ -> false) t in
         let pin i = Expr.eq (Expr.bv_var (Fmt.str "x%d" i) w) (Expr.bv_const w env.(i)) in
         match
           Solver.check (Expr.not_ (Expr.eq t (Expr.bv_const w expected)) :: List.init 3 pin)
         with
         | Solver.Unsat -> true
         | Solver.Sat _ | Solver.Unknown -> false))

(* The poison paths used by Alive: each case mirrors the exact term the
   encoder builds for the flag (encode.ml) and the exact concrete predicate
   the interpreter uses (Bits). *)
type poison_case =
  | Add_nsw
  | Add_nuw
  | Sub_nsw
  | Sub_nuw
  | Mul_nsw
  | Mul_nuw
  | Shl_nuw
  | Shl_nsw
  | Udiv_exact
  | Sdiv_exact
  | Lshr_exact
  | Ashr_exact

let poison_cases =
  [
    Add_nsw; Add_nuw; Sub_nsw; Sub_nuw; Mul_nsw; Mul_nuw; Shl_nuw; Shl_nsw; Udiv_exact;
    Sdiv_exact; Lshr_exact; Ashr_exact;
  ]

let poison_term case w at bt =
  let r op = Expr.bin op at bt in
  let zero = Expr.bv_const w 0L in
  let ones = Expr.bv_const w (Bits.all_ones w) in
  let minv = Expr.bv_const w (Bits.min_signed w) in
  match case with
  | Add_nsw ->
    let rt = r Expr.Add in
    Expr.or_
      (Expr.conj [ Expr.sge at zero; Expr.sge bt zero; Expr.slt rt zero ])
      (Expr.conj [ Expr.slt at zero; Expr.slt bt zero; Expr.sge rt zero ])
  | Add_nuw -> Expr.ult (r Expr.Add) at
  | Sub_nsw ->
    let rt = r Expr.Sub in
    Expr.or_
      (Expr.conj [ Expr.sge at zero; Expr.slt bt zero; Expr.slt rt zero ])
      (Expr.conj [ Expr.slt at zero; Expr.sge bt zero; Expr.sge rt zero ])
  | Sub_nuw -> Expr.ult at bt
  | Mul_nuw ->
    Expr.and_ (Expr.not_ (Expr.eq at zero)) (Expr.ugt bt (Expr.bin Expr.UDiv ones at))
  | Mul_nsw ->
    let rt = r Expr.Mul in
    Expr.and_
      (Expr.not_ (Expr.eq bt zero))
      (Expr.or_
         (Expr.not_ (Expr.eq (Expr.bin Expr.SDiv rt bt) at))
         (Expr.and_ (Expr.eq at minv) (Expr.eq bt ones)))
  | Shl_nuw -> Expr.not_ (Expr.eq (Expr.bin Expr.LShr (r Expr.Shl) bt) at)
  | Shl_nsw -> Expr.not_ (Expr.eq (Expr.bin Expr.AShr (r Expr.Shl) bt) at)
  | Udiv_exact -> Expr.not_ (Expr.eq (r Expr.URem) zero)
  | Sdiv_exact -> Expr.not_ (Expr.eq (r Expr.SRem) zero)
  | Lshr_exact -> Expr.not_ (Expr.eq (Expr.bin Expr.Shl (r Expr.LShr) bt) at)
  | Ashr_exact -> Expr.not_ (Expr.eq (Expr.bin Expr.Shl (r Expr.AShr) bt) at)

let poison_concrete case w a b =
  match case with
  | Add_nsw -> Bits.add_nsw_overflow w a b
  | Add_nuw -> Bits.add_nuw_overflow w a b
  | Sub_nsw -> Bits.sub_nsw_overflow w a b
  | Sub_nuw -> Bits.sub_nuw_overflow w a b
  | Mul_nsw -> Bits.mul_nsw_overflow w a b
  | Mul_nuw -> Bits.mul_nuw_overflow w a b
  | Shl_nuw -> Bits.shl_nuw_overflow w a b
  | Shl_nsw -> Bits.shl_nsw_overflow w a b
  | Udiv_exact -> Bits.udiv_exact_violation w a b
  | Sdiv_exact -> Bits.sdiv_exact_violation w a b
  | Lshr_exact -> Bits.lshr_exact_violation w a b
  | Ashr_exact -> Bits.ashr_exact_violation w a b

let gen_poison =
  QCheck2.Gen.(
    let* w = oneofl [ 1; 2; 3; 4; 5; 6; 7; 8; 12; 16 ] in
    let* case = oneofl poison_cases in
    let* a0 = map Int64.of_int int in
    let* b0 = map Int64.of_int int in
    let a = Bits.mask w a0 and b = Bits.mask w b0 in
    (* mirror the UB/poison guards the encoder emits before the flag
       predicate matters: in-range shift amounts, nonzero divisors, and no
       min/-1 signed-division overflow *)
    let b =
      match case with
      | Shl_nuw | Shl_nsw | Lshr_exact | Ashr_exact -> Int64.rem b (Int64.of_int w)
      | Udiv_exact | Sdiv_exact -> if b = 0L then 1L else b
      | _ -> b
    in
    let a =
      match case with
      | Sdiv_exact when a = Bits.min_signed w && b = Bits.all_ones w -> 0L
      | _ -> a
    in
    return (case, w, a, b))

let poison_paths_fuzz =
  let n = max 600 (bv_fuzz_n / 2) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:n
       ~name:(Fmt.str "nsw/nuw/exact poison predicates vs Bits, %d cases" n)
       gen_poison
       (fun (case, w, a, b) ->
         let at = Expr.bv_var "pa" w and bt = Expr.bv_var "pb" w in
         let p = poison_term case w at bt in
         let expected = poison_concrete case w a b in
         let env name = if name = "pa" then a else if name = "pb" then b else 0L in
         (* the term evaluator agrees with Bits *)
         Solver.eval_bool env (fun _ -> false) p = expected
         &&
         (* and so does the bit-blasted circuit: the disagreeing formula is
            UNSAT under the pinned inputs *)
         match
           Solver.check
             [
               (if expected then Expr.not_ p else p);
               Expr.eq at (Expr.bv_const w a);
               Expr.eq bt (Expr.bv_const w b);
             ]
         with
         | Solver.Unsat -> true
         | Solver.Sat _ | Solver.Unknown -> false))

let expr_tests =
  [
    Alcotest.test_case "constant folding in smart constructors" `Quick (fun () ->
        let a = Expr.bv_const 8 200L and b = Expr.bv_const 8 100L in
        Alcotest.(check (option int64)) "fold add" (Some 44L) (Expr.const_value (Expr.bin Expr.Add a b));
        Alcotest.(check (option int64))
          "fold udiv by zero = all ones" (Some 255L)
          (Expr.const_value (Expr.bin Expr.UDiv a (Expr.bv_const 8 0L))));
    Alcotest.test_case "identity simplifications" `Quick (fun () ->
        let x = Expr.bv_var "x" 8 in
        Alcotest.(check bool) "x+0 = x" true (Expr.bin Expr.Add x (Expr.bv_const 8 0L) == x);
        Alcotest.(check bool) "x&x = x" true (Expr.bin Expr.And x x == x);
        Alcotest.(check bool)
          "x^x = 0" true
          (Expr.const_value (Expr.bin Expr.Xor x x) = Some 0L));
    Alcotest.test_case "hash-consing shares structure" `Quick (fun () ->
        let x = Expr.bv_var "hc" 16 in
        let t1 = Expr.bin Expr.Add x (Expr.bv_const 16 3L) in
        let t2 = Expr.bin Expr.Add x (Expr.bv_const 16 3L) in
        Alcotest.(check bool) "physically equal" true (t1 == t2));
    Alcotest.test_case "boolean simplifications" `Quick (fun () ->
        let p = Expr.bool_var "p" in
        Alcotest.(check bool) "not not p" true (Expr.not_ (Expr.not_ p) == p);
        Alcotest.(check bool) "p and not p" true (Expr.and_ p (Expr.not_ p) == Expr.ff);
        Alcotest.(check bool) "p or not p" true (Expr.or_ p (Expr.not_ p) == Expr.tt));
    Alcotest.test_case "valid recognizes a tautology" `Quick (fun () ->
        let x = Expr.bv_var "vx" 8 in
        (* (x & 0) = 0 is valid *)
        match Solver.valid (Expr.eq (Expr.bin Expr.And x (Expr.bv_const 8 0L)) (Expr.bv_const 8 0L)) with
        | Solver.Unsat -> ()
        | _ -> Alcotest.fail "expected validity");
    Alcotest.test_case "valid finds a counterexample" `Quick (fun () ->
        let x = Expr.bv_var "cx" 8 in
        (* x = 0 is not valid *)
        match Solver.valid (Expr.eq x (Expr.bv_const 8 0L)) with
        | Solver.Sat m -> (
          match m.Solver.bv_value "cx" with
          | Some (_, v) -> Alcotest.(check bool) "nonzero witness" true (v <> 0L)
          | None -> Alcotest.fail "no witness")
        | _ -> Alcotest.fail "expected counterexample");
  ]

let suite =
  ( "smt",
    sat_tests @ expr_tests
    @ [
        sat_property;
        bitblast_property;
        model_soundness_property;
        bitblast_roundtrip_fuzz;
        poison_paths_fuzz;
      ] )

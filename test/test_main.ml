let () =
  Alcotest.run "veriopt"
    [
      (* fork-dependent suites first: serve and vproc fork worker pools, and
         OCaml 5 forbids fork once any other suite has spawned a domain.
         Serve precedes vproc because the vproc suite's trainer chaos test
         (its last case) is the first domain spawner. *)
      Test_serve.suite;
      (* the store suite's crash-injection case forks a child writer, so it
         must also precede the first domain spawner *)
      Test_store.suite;
      (* the adversary suite's crash case forks and SIGKILLs a child miner *)
      Test_adversary.suite;
      Test_vproc.suite;
      Test_bits.suite;
      Test_ir.suite;
      Test_interp.suite;
      Test_smt.suite;
      Test_sat_fuzz.suite;
      Test_alive.suite;
      Test_passes.suite;
      Test_fold.suite;
      Test_cost.suite;
      Test_nlp.suite;
      Test_data.suite;
      Test_llm.suite;
      Test_rl.suite;
      Test_engine.suite;
      Test_core.suite;
      Test_fault.suite;
    ]

(* Differential fuzz harness guarding the SAT core's clause-DB reduction.

   Thousands of seeded random CNF instances (up to 18 variables, so
   brute-force enumeration stays cheap) are solved twice — reduction off
   (the seed solver's behavior) and on, with a tiny [reduce_first] so
   reductions actually fire on small instances — and cross-checked against
   exhaustive enumeration.  SAT models are validated against every clause,
   verdicts must agree across the knob, and [Sat.check_invariants] audits
   the clause DB after every solve.

   The case count defaults to 5000 and is cranked with VERIOPT_FUZZ_N
   (`make fuzz` runs a long campaign).  The seed is fixed so `dune runtest`
   is deterministic. *)

module Sat = Veriopt_smt.Sat
module Expr = Veriopt_smt.Expr
module Solver = Veriopt_smt.Solver
module Portfolio = Veriopt_smt.Portfolio

let fuzz_n =
  match Sys.getenv_opt "VERIOPT_FUZZ_N" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 5_000)
  | None -> 5_000

type cnf = { nvars : int; clauses : (int * bool) list list }

(* Mostly small mixed-width instances (cheap, exercise every code path);
   one case in five is a pure 3-SAT instance near the satisfiability phase
   transition (ratio ~4.26) at 14..18 variables — the conflict-heavy shape
   that actually accumulates enough learned clauses for the reducer to
   fire. *)
let gen_case st : cnf =
  if Random.State.int st 5 = 0 then begin
    let nvars = 14 + Random.State.int st 5 in
    let ratio = 4.0 +. Random.State.float st 0.6 in
    let nclauses = int_of_float (ratio *. float_of_int nvars) in
    let clause () = List.init 3 (fun _ -> (Random.State.int st nvars, Random.State.bool st)) in
    { nvars; clauses = List.init nclauses (fun _ -> clause ()) }
  end
  else begin
    let nvars = 3 + Random.State.int st 10 in
    let ratio = 2.0 +. Random.State.float st 3.0 in
    let nclauses = max 1 (int_of_float (ratio *. float_of_int nvars)) in
    let clause () =
      let len = [| 2; 3; 3; 3; 4 |].(Random.State.int st 5) in
      List.init len (fun _ -> (Random.State.int st nvars, Random.State.bool st))
    in
    { nvars; clauses = List.init nclauses (fun _ -> clause ()) }
  end

(* Exhaustive enumeration over bitmask assignments: bit [v] of the mask is
   variable [v]'s value.  A clause is two masks; early exit everywhere. *)
let brute_force { nvars; clauses } =
  let masks =
    List.map
      (fun c ->
        List.fold_left
          (fun (p, n) (v, sign) ->
            let bit = 1 lsl v in
            if sign then (p lor bit, n) else (p, n lor bit))
          (0, 0) c)
      clauses
  in
  let limit = 1 lsl nvars in
  let rec sat_from a =
    a < limit
    && (List.for_all (fun (p, n) -> a land p <> 0 || lnot a land n <> 0) masks
       || sat_from (a + 1))
  in
  sat_from 0

let show_cnf { nvars; clauses } =
  Fmt.str "%d vars: %s" nvars
    (String.concat " "
       (List.map
          (fun c ->
            Fmt.str "(%s)"
              (String.concat "|" (List.map (fun (v, s) -> Fmt.str "%s%d" (if s then "" else "-") v) c)))
          clauses))

let solve_cnf ~reduce (c : cnf) =
  let s = Sat.create () in
  let vars = Array.init c.nvars (fun _ -> Sat.new_var s) in
  List.iter
    (fun clause ->
      Sat.add_clause s (List.map (fun (v, sign) -> Sat.lit_of_var ~sign vars.(v)) clause))
    c.clauses;
  (* reduce_first far below the production default (2000) so reductions
     actually fire on instances this small *)
  let r = Sat.solve ~reduce ~reduce_first:4 s in
  Sat.check_invariants s;
  (r, s, vars)

let model_satisfies (c : cnf) s vars =
  List.for_all
    (fun clause -> List.exists (fun (v, sign) -> Sat.model_value s vars.(v) = sign) clause)
    c.clauses

let check_db_stats ~reduce ~case s =
  let db = Sat.db_stats s in
  if db.Sat.live <> db.Sat.learned - db.Sat.deleted then
    Alcotest.failf "case %d: live %d <> learned %d - deleted %d" case db.Sat.live db.Sat.learned
      db.Sat.deleted;
  if db.Sat.peak < db.Sat.live then
    Alcotest.failf "case %d: peak %d < live %d" case db.Sat.peak db.Sat.live;
  (* glue clauses (LBD <= 2 at learning time, and LBD only ever shrinks)
     are never deleted, so deletions are bounded by the non-glue count *)
  let glue = db.Sat.lbd_hist.(0) + db.Sat.lbd_hist.(1) in
  if db.Sat.deleted > db.Sat.learned - glue then
    Alcotest.failf "case %d: deleted %d > learned %d - glue %d" case db.Sat.deleted db.Sat.learned
      glue;
  if (not reduce) && (db.Sat.deleted > 0 || db.Sat.reductions > 0) then
    Alcotest.failf "case %d: reduction ran with the knob off (deleted %d, reductions %d)" case
      db.Sat.deleted db.Sat.reductions;
  db

let differential_fuzz () =
  let st = Random.State.make [| 0x5eed; 20260805 |] in
  let total_reductions = ref 0 and total_deleted = ref 0 and sat_cases = ref 0 in
  for case = 1 to fuzz_n do
    let c = gen_case st in
    let expected = brute_force c in
    let r_off, s_off, v_off = solve_cnf ~reduce:false c in
    let r_on, s_on, v_on = solve_cnf ~reduce:true c in
    let name r = match r with Sat.Sat -> "SAT" | Sat.Unsat -> "UNSAT" | Sat.Unknown -> "UNKNOWN" in
    if r_off <> r_on then
      Alcotest.failf "case %d: reduction flipped the verdict (%s off, %s on) on %s" case
        (name r_off) (name r_on) (show_cnf c);
    (match r_on with
    | Sat.Sat ->
      incr sat_cases;
      if not expected then
        Alcotest.failf "case %d: solver says SAT, brute force says UNSAT on %s" case (show_cnf c);
      if not (model_satisfies c s_on v_on) then
        Alcotest.failf "case %d: reduce-on model violates a clause on %s" case (show_cnf c);
      if not (model_satisfies c s_off v_off) then
        Alcotest.failf "case %d: reduce-off model violates a clause on %s" case (show_cnf c)
    | Sat.Unsat ->
      if expected then
        Alcotest.failf "case %d: solver says UNSAT, brute force says SAT on %s" case (show_cnf c)
    | Sat.Unknown ->
      Alcotest.failf "case %d: budget exhausted on a tiny instance: %s" case (show_cnf c));
    let db_on = check_db_stats ~reduce:true ~case s_on in
    let (_ : Sat.db_stats) = check_db_stats ~reduce:false ~case s_off in
    total_reductions := !total_reductions + db_on.Sat.reductions;
    total_deleted := !total_deleted + db_on.Sat.deleted
  done;
  Fmt.epr "sat-fuzz: %d cases (%d SAT), %d reductions deleted %d clauses@." fuzz_n !sat_cases
    !total_reductions !total_deleted;
  Alcotest.(check bool)
    "some instances were satisfiable and some were not" true
    (!sat_cases > 0 && !sat_cases < fuzz_n);
  Alcotest.(check bool) "the reducer actually fired during the campaign" true (!total_reductions > 0)

(* Incremental differential: one persistent solver takes the clauses in two
   batches with a solve in between — retained learned clauses, activities
   and phases must not flip the final verdict against brute force.  Then
   the same instance is solved under unit assumptions both ways and
   unconstrained again: assumption solves must match brute force with the
   unit added, leave no trace in the clause DB, and their models must set
   the assumed literal. *)
let incremental_fuzz () =
  let st = Random.State.make [| 0x1ac5; 20260805 |] in
  let n = max 200 (fuzz_n / 5) in
  let constrained_unsat = ref 0 and sat_cases = ref 0 in
  for case = 1 to n do
    let c = gen_case st in
    let expected = brute_force c in
    let s = Sat.create () in
    let vars = Array.init c.nvars (fun _ -> Sat.new_var s) in
    let add clause =
      Sat.add_clause s (List.map (fun (v, sign) -> Sat.lit_of_var ~sign vars.(v)) clause)
    in
    let k = List.length c.clauses / 2 in
    List.iteri (fun i clause -> if i < k then add clause) c.clauses;
    let r1 = Sat.solve ~reduce:true ~reduce_first:4 s in
    Sat.check_invariants s;
    if r1 = Sat.Unsat && expected then
      Alcotest.failf "case %d: clause prefix UNSAT but the full CNF is SAT on %s" case
        (show_cnf c);
    List.iteri (fun i clause -> if i >= k then add clause) c.clauses;
    let check_full label =
      match Sat.solve ~reduce:true ~reduce_first:4 s with
      | Sat.Sat ->
        if not expected then
          Alcotest.failf "case %d (%s): incremental SAT, brute force UNSAT on %s" case label
            (show_cnf c);
        if not (model_satisfies c s vars) then
          Alcotest.failf "case %d (%s): incremental model violates a clause on %s" case label
            (show_cnf c)
      | Sat.Unsat ->
        if expected then
          Alcotest.failf "case %d (%s): incremental UNSAT, brute force SAT on %s" case label
            (show_cnf c)
      | Sat.Unknown ->
        Alcotest.failf "case %d (%s): budget exhausted on a tiny instance: %s" case label
          (show_cnf c)
    in
    check_full "second batch";
    if expected then incr sat_cases;
    let v = Random.State.int st c.nvars in
    let check_assumption sign =
      let expected_a = brute_force { c with clauses = [ (v, sign) ] :: c.clauses } in
      match
        Sat.solve ~reduce:true ~reduce_first:4
          ~assumptions:[ Sat.lit_of_var ~sign vars.(v) ]
          s
      with
      | Sat.Sat ->
        if not expected_a then
          Alcotest.failf "case %d: SAT under assumption %s%d, brute force disagrees on %s" case
            (if sign then "" else "-") v (show_cnf c);
        if Sat.model_value s vars.(v) <> sign then
          Alcotest.failf "case %d: model ignores the assumption %s%d on %s" case
            (if sign then "" else "-") v (show_cnf c);
        if not (model_satisfies c s vars) then
          Alcotest.failf "case %d: assumption model violates a clause on %s" case (show_cnf c)
      | Sat.Unsat ->
        if expected_a then
          Alcotest.failf "case %d: UNSAT under assumption %s%d, brute force disagrees on %s" case
            (if sign then "" else "-") v (show_cnf c);
        if expected then incr constrained_unsat
      | Sat.Unknown ->
        Alcotest.failf "case %d: budget exhausted under an assumption: %s" case (show_cnf c)
    in
    check_assumption true;
    check_assumption false;
    (* the assumptions left no trace: the unconstrained verdict is intact *)
    check_full "after assumptions";
    Sat.check_invariants s
  done;
  Fmt.epr "sat-fuzz incremental: %d cases (%d SAT), %d assumption-forced UNSATs@." n !sat_cases
    !constrained_unsat;
  Alcotest.(check bool)
    "mixed verdicts in the campaign" true
    (!sat_cases > 0 && !sat_cases < n);
  Alcotest.(check bool)
    "some assumptions flipped a SAT instance to UNSAT-under-assumptions" true
    (!constrained_unsat > 0)

(* ------------------------------------------------------------------ *)
(* Regression pins: the reduction schedule on a crafted conflict-heavy
   query, and aggregate-stats monotonicity. *)

(* PHP(n+1, n): unsatisfiable, resolution-hard — a deterministic source of
   thousands of conflicts. *)
let pigeonhole s ~pigeons ~holes =
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (List.init holes (fun h -> Sat.lit_of_var v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sat.add_clause s [ Sat.lit_of_var ~sign:false v.(p1).(h); Sat.lit_of_var ~sign:false v.(p2).(h) ]
      done
    done
  done

let reduction_schedule_test () =
  let s = Sat.create () in
  pigeonhole s ~pigeons:8 ~holes:7;
  let r = Sat.solve ~reduce:true ~reduce_first:100 ~max_conflicts:50_000 s in
  Sat.check_invariants s;
  let db = Sat.db_stats s in
  Fmt.epr "sat-fuzz schedule: %s, learned %d, deleted %d, reductions %d, peak %d, live %d@."
    (match r with Sat.Sat -> "SAT" | Sat.Unsat -> "UNSAT" | Sat.Unknown -> "UNKNOWN")
    db.Sat.learned db.Sat.deleted db.Sat.reductions db.Sat.peak db.Sat.live;
  Alcotest.(check bool) "PHP(8,7) is not SAT" true (r <> Sat.Sat);
  Alcotest.(check bool) "several reduction passes ran" true (db.Sat.reductions >= 2);
  Alcotest.(check bool) "reductions deleted clauses" true (db.Sat.deleted > 0);
  Alcotest.(check bool) "the DB stayed well below the learned total" true
    (db.Sat.peak < db.Sat.learned);
  Alcotest.(check int) "live = learned - deleted" (db.Sat.learned - db.Sat.deleted) db.Sat.live;
  (* the geometric schedule (x3/2 from 100) bounds the live DB: after the
     last reduction at threshold T the DB holds at most ~T + growth-to-the-
     next-threshold clauses; with learned in the thousands, live must be a
     strict fraction of learned *)
  Alcotest.(check bool) "live DB bounded by the schedule" true (db.Sat.live < db.Sat.learned / 2);
  (* glue clauses are never deleted *)
  let glue = db.Sat.lbd_hist.(0) + db.Sat.lbd_hist.(1) in
  Alcotest.(check bool) "glue clauses survived every reduction" true
    (db.Sat.deleted <= db.Sat.learned - glue)

let locked_reasons_test () =
  (* same query, but stress a tiny threshold so reductions run while the
     trail is deep — check_invariants fails if a reason clause is deleted *)
  let s = Sat.create () in
  pigeonhole s ~pigeons:7 ~holes:6;
  let r = Sat.solve ~reduce:true ~reduce_first:20 ~max_conflicts:20_000 s in
  Sat.check_invariants s;
  Alcotest.(check bool) "PHP(7,6) is not SAT" true (r <> Sat.Sat);
  let db = Sat.db_stats s in
  Alcotest.(check bool) "aggressive schedule reduced repeatedly" true (db.Sat.reductions >= 3)

let solver_stats_monotonic_test () =
  Solver.reset_stats ();
  let z = Solver.stats () in
  Alcotest.(check int) "learned starts at 0" 0 z.Solver.learned;
  Alcotest.(check int) "deleted starts at 0" 0 z.Solver.deleted;
  Alcotest.(check int) "reductions start at 0" 0 z.Solver.reductions;
  Alcotest.(check int) "db_peak starts at 0" 0 z.Solver.db_peak;
  Alcotest.(check int) "lbd_hist starts empty" 0 (Array.fold_left ( + ) 0 z.Solver.lbd_hist);
  (* a conflict-heavy query: w-bit mul commutativity is valid, so the
     mismatch formula is UNSAT and the solver must actually search *)
  let query w =
    let x = Expr.bv_var "mx" w and y = Expr.bv_var "my" w in
    Expr.not_ (Expr.eq (Expr.bin Expr.Mul x y) (Expr.bin Expr.Mul y x))
  in
  (match Solver.check [ query 6 ] with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "mul commutativity must be UNSAT");
  let a = Solver.stats () in
  Alcotest.(check bool) "conflicts counted" true (a.Solver.conflicts > 0);
  Alcotest.(check bool) "clauses learned" true (a.Solver.learned > 0);
  Alcotest.(check bool) "learned >= deleted" true (a.Solver.learned >= a.Solver.deleted);
  Alcotest.(check bool) "db_peak positive and bounded by learned" true
    (a.Solver.db_peak > 0 && a.Solver.db_peak <= a.Solver.learned);
  Alcotest.(check int) "histogram sums to learned"
    a.Solver.learned
    (Array.fold_left ( + ) 0 a.Solver.lbd_hist);
  (match Solver.check [ query 5 ] with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "mul commutativity must be UNSAT");
  let b = Solver.stats () in
  Alcotest.(check bool) "checks monotone" true (b.Solver.checks > a.Solver.checks);
  Alcotest.(check bool) "conflicts monotone" true (b.Solver.conflicts >= a.Solver.conflicts);
  Alcotest.(check bool) "learned monotone" true (b.Solver.learned >= a.Solver.learned);
  Alcotest.(check bool) "deleted monotone" true (b.Solver.deleted >= a.Solver.deleted);
  Alcotest.(check bool) "reductions monotone" true (b.Solver.reductions >= a.Solver.reductions);
  Alcotest.(check bool) "db_peak monotone (CAS max)" true (b.Solver.db_peak >= a.Solver.db_peak);
  Alcotest.(check bool) "histogram monotone" true
    (Array.for_all2 ( <= ) a.Solver.lbd_hist b.Solver.lbd_hist);
  Alcotest.(check int) "histogram still sums to learned"
    b.Solver.learned
    (Array.fold_left ( + ) 0 b.Solver.lbd_hist);
  (* a reduce:false check must not advance the reduction counters *)
  (match Solver.check ~reduce:false [ query 5 ] with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "mul commutativity must be UNSAT");
  let c = Solver.stats () in
  Alcotest.(check int) "reduce:false adds no reductions" b.Solver.reductions c.Solver.reductions;
  Alcotest.(check int) "reduce:false deletes nothing" b.Solver.deleted c.Solver.deleted;
  Solver.reset_stats ();
  let r = Solver.stats () in
  Alcotest.(check int) "reset zeroes learned" 0 r.Solver.learned;
  Alcotest.(check int) "reset zeroes the histogram" 0 (Array.fold_left ( + ) 0 r.Solver.lbd_hist)

(* ------------------------------------------------------------------ *)
(* Portfolio diversification and cube-and-conquer.

   The portfolio knobs (seed, restart schedule, initial phase, decision
   noise, reduction cadence) change the search trajectory only — never the
   verdict — and every config is deterministic.  These campaigns pin both
   halves: zero conclusive flips across diversified members, and
   bit-reproducibility under an explicit config. *)

(* Everything about a solve that could possibly diverge between two runs:
   verdict, search counters, restarts, DB accounting, and the model. *)
let solve_trace ?config (c : cnf) =
  let s = match config with None -> Sat.create () | Some config -> Sat.create ~config () in
  let vars = Array.init c.nvars (fun _ -> Sat.new_var s) in
  List.iter
    (fun clause ->
      Sat.add_clause s (List.map (fun (v, sign) -> Sat.lit_of_var ~sign vars.(v)) clause))
    c.clauses;
  let r = Sat.solve s in
  Sat.check_invariants s;
  let model =
    if r = Sat.Sat then List.init c.nvars (fun v -> Sat.model_value s vars.(v)) else []
  in
  let db = Sat.db_stats s in
  (r, Sat.stats s, Sat.restarts s, (db.Sat.learned, db.Sat.deleted, db.Sat.reductions), model)

let seed_determinism_test () =
  (* member 0 of any portfolio IS the pre-portfolio solver *)
  (match Portfolio.members 1 with
  | [ m ] ->
    Alcotest.(check string) "member 0 label" "s0:luby100:pF" m.Portfolio.label;
    Alcotest.(check bool) "member 0 is the default config" true
      (m.Portfolio.config = Sat.default_config)
  | l -> Alcotest.failf "members 1 returned %d members" (List.length l));
  Alcotest.(check string) "default config label" "s0:luby100:pF"
    (Sat.describe_config Sat.default_config);
  let st = Random.State.make [| 0xd37; 20260808 |] in
  let seeded =
    { Sat.default_config with Sat.seed = 42; init_phase = Sat.Phase_random; random_var_freq = 0.05 }
  in
  for case = 1 to 60 do
    let c = gen_case st in
    (* the explicit default config replays the unconfigured solver bit for
       bit: same verdict, same conflict/decision/propagation counts, same
       restarts, same DB history, same model *)
    if solve_trace c <> solve_trace ~config:Sat.default_config c then
      Alcotest.failf "case %d: default_config diverged from the unconfigured solver on %s" case
        (show_cnf c);
    (* a seeded, randomized config is still deterministic run to run *)
    if solve_trace ~config:seeded c <> solve_trace ~config:seeded c then
      Alcotest.failf "case %d: seeded config is not reproducible on %s" case (show_cnf c)
  done

let portfolio_fuzz () =
  let st = Random.State.make [| 0x90f; 20260808 |] in
  let n = max 100 (fuzz_n / 20) in
  let members = Portfolio.members ~base_seed:7 4 in
  Alcotest.(check int) "four members" 4 (List.length members);
  Alcotest.(check int) "member labels are distinct" 4
    (List.length (List.sort_uniq compare (List.map (fun m -> m.Portfolio.label) members)));
  let sat_cases = ref 0 in
  for case = 1 to n do
    let c = gen_case st in
    let expected = brute_force c in
    if expected then incr sat_cases;
    List.iter
      (fun m ->
        let s = Sat.create ~config:m.Portfolio.config () in
        let vars = Array.init c.nvars (fun _ -> Sat.new_var s) in
        List.iter
          (fun clause ->
            Sat.add_clause s (List.map (fun (v, sign) -> Sat.lit_of_var ~sign vars.(v)) clause))
          c.clauses;
        (match Sat.solve s with
        | Sat.Sat ->
          if not expected then
            Alcotest.failf "case %d: member %s flipped UNSAT to SAT on %s" case m.Portfolio.label
              (show_cnf c);
          if not (model_satisfies c s vars) then
            Alcotest.failf "case %d: member %s model violates a clause on %s" case
              m.Portfolio.label (show_cnf c)
        | Sat.Unsat ->
          if expected then
            Alcotest.failf "case %d: member %s flipped SAT to UNSAT on %s" case m.Portfolio.label
              (show_cnf c)
        | Sat.Unknown ->
          Alcotest.failf "case %d: member %s exhausted its budget on a tiny instance: %s" case
            m.Portfolio.label (show_cnf c));
        Sat.check_invariants s)
      members
  done;
  Fmt.epr "sat-fuzz portfolio: %d cases x 4 members, zero conclusive flips (%d SAT)@." n
    !sat_cases;
  Alcotest.(check bool) "mixed verdicts in the campaign" true (!sat_cases > 0 && !sat_cases < n)

(* Small instances only: the partition check enumerates every assignment
   against every cube, and the unit-soundness check enumerates models. *)
let gen_small st : cnf =
  let nvars = 4 + Random.State.int st 7 in
  let ratio = 2.0 +. Random.State.float st 3.0 in
  let nclauses = max 1 (int_of_float (ratio *. float_of_int nvars)) in
  let clause () =
    let len = [| 2; 3; 3; 3; 4 |].(Random.State.int st 5) in
    List.init len (fun _ -> (Random.State.int st nvars, Random.State.bool st))
  in
  { nvars; clauses = List.init nclauses (fun _ -> clause ()) }

let lit_sat mask lit = mask land (1 lsl Sat.var_of_lit lit) <> 0 = Sat.lit_sign lit

let models { nvars; clauses } =
  let masks =
    List.map
      (fun c ->
        List.fold_left
          (fun (p, n) (v, sign) ->
            let bit = 1 lsl v in
            if sign then (p lor bit, n) else (p, n lor bit))
          (0, 0) c)
      clauses
  in
  List.filter
    (fun a -> List.for_all (fun (p, n) -> a land p <> 0 || lnot a land n <> 0) masks)
    (List.init (1 lsl nvars) Fun.id)

let cube_fuzz () =
  let st = Random.State.make [| 0xcbe; 20260808 |] in
  let n = max 100 (fuzz_n / 25) in
  let unsat_cases = ref 0 and total_units = ref 0 in
  for case = 1 to n do
    let c = gen_small st in
    let expected = brute_force c in
    if not expected then incr unsat_cases;
    (* k distinct split variables, randomly chosen — the partition and merge
       properties must hold for ANY split set, not just VSIDS picks *)
    let k = 1 + Random.State.int st 3 in
    let vars =
      let all = Array.init c.nvars Fun.id in
      for i = c.nvars - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = all.(i) in
        all.(i) <- all.(j);
        all.(j) <- t
      done;
      Array.to_list (Array.sub all 0 (min k c.nvars))
    in
    let cubes = Portfolio.cube_lits ~vars in
    Alcotest.(check int)
      (Fmt.str "case %d: 2^k cubes" case)
      (1 lsl List.length vars) (List.length cubes);
    for mask = 0 to (1 lsl c.nvars) - 1 do
      let sat_count =
        List.length (List.filter (fun cube -> List.for_all (lit_sat mask) cube) cubes)
      in
      if sat_count <> 1 then
        Alcotest.failf "case %d: assignment %d satisfies %d cubes, not exactly one" case mask
          sat_count
    done;
    let mods = models c in
    let results =
      List.map
        (fun cube ->
          let s = Sat.create () in
          let sv = Array.init c.nvars (fun _ -> Sat.new_var s) in
          List.iter
            (fun clause ->
              Sat.add_clause s (List.map (fun (v, sign) -> Sat.lit_of_var ~sign sv.(v)) clause))
            c.clauses;
          let r = Sat.solve ~assumptions:cube s in
          Sat.check_invariants s;
          (match r with
          | Sat.Sat ->
            if not (model_satisfies c s sv) then
              Alcotest.failf "case %d: cube model violates a clause on %s" case (show_cnf c);
            if
              not
                (List.for_all
                   (fun lit -> Sat.model_value s (Sat.var_of_lit lit) = Sat.lit_sign lit)
                   cube)
            then Alcotest.failf "case %d: cube model ignores its cube on %s" case (show_cnf c)
          | _ -> ());
          (* implied units are consequences of the clause DB alone (never of
             the cube assumptions): every model of the full CNF satisfies
             each one — exactly what makes merging them at a join sound *)
          let units = Sat.implied_units s in
          total_units := !total_units + List.length units;
          List.iter
            (fun u ->
              List.iter
                (fun m ->
                  if not (lit_sat m u) then
                    Alcotest.failf "case %d: implied unit %d falsified by a model of %s" case u
                      (show_cnf c))
                mods)
            units;
          r)
        cubes
    in
    match (Portfolio.merge results, expected) with
    | Sat.Sat, true | Sat.Unsat, false -> ()
    | Sat.Sat, false ->
      Alcotest.failf "case %d: cube merge SAT, brute force UNSAT on %s" case (show_cnf c)
    | Sat.Unsat, true ->
      Alcotest.failf "case %d: cube merge UNSAT, brute force SAT on %s" case (show_cnf c)
    | Sat.Unknown, _ ->
      Alcotest.failf "case %d: cube merge Unknown on a tiny instance: %s" case (show_cnf c)
  done;
  Fmt.epr "sat-fuzz cubes: %d cases (%d UNSAT), %d implied units audited@." n !unsat_cases
    !total_units;
  Alcotest.(check bool) "mixed verdicts in the campaign" true
    (!unsat_cases > 0 && !unsat_cases < n)

let cube_conquer_php_test () =
  (* the production shape end to end, in-process: probe on a tiny budget,
     split on the probe's top VSIDS variables, conquer each cube to
     completion, merge — the partition refutes PHP(7,6) *)
  let probe = Sat.create () in
  pigeonhole probe ~pigeons:7 ~holes:6;
  Alcotest.(check bool) "probe budget exhausted" true
    (Sat.solve ~max_conflicts:100 probe = Sat.Unknown);
  let vars = Sat.top_vars probe 3 in
  Alcotest.(check int) "three split vars" 3 (List.length vars);
  Alcotest.(check int) "split vars distinct" 3 (List.length (List.sort_uniq compare vars));
  List.iter
    (fun v ->
      Alcotest.(check bool) "split var in range" true (v >= 0 && v < Sat.num_vars probe))
    vars;
  Alcotest.(check bool) "top_vars is deterministic" true (Sat.top_vars probe 3 = vars);
  let cubes = Portfolio.cube_lits ~vars in
  Alcotest.(check int) "eight cubes" 8 (List.length cubes);
  let units = ref [] in
  let results =
    List.map
      (fun cube ->
        let s = Sat.create () in
        pigeonhole s ~pigeons:7 ~holes:6;
        let r = Sat.solve ~assumptions:cube ~max_conflicts:100_000 s in
        Sat.check_invariants s;
        units := Sat.implied_units s @ !units;
        r)
      cubes
  in
  Alcotest.(check bool) "every cube refuted" true (List.for_all (fun r -> r = Sat.Unsat) results);
  (match Portfolio.merge results with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "cube merge must refute PHP(7,6)");
  (* merged units conjoin soundly: adding them preserves the refutation *)
  let s = Sat.create () in
  pigeonhole s ~pigeons:7 ~holes:6;
  List.iter (fun u -> Sat.add_clause s [ u ]) (List.sort_uniq compare !units);
  Alcotest.(check bool) "units preserve the refutation" true (Sat.solve s = Sat.Unsat)

let suite =
  ( "sat-fuzz",
    [
      Alcotest.test_case
        (Fmt.str "differential CNF fuzz, %d cases (VERIOPT_FUZZ_N)" fuzz_n)
        `Slow differential_fuzz;
      Alcotest.test_case "incremental + assumption differential fuzz" `Slow incremental_fuzz;
      Alcotest.test_case "reduction schedule bounds the DB on PHP(8,7)" `Slow
        reduction_schedule_test;
      Alcotest.test_case "aggressive reduction never deletes reasons (PHP(7,6))" `Quick
        locked_reasons_test;
      Alcotest.test_case "Solver.stats clause-DB counters are monotone" `Quick
        solver_stats_monotonic_test;
      Alcotest.test_case "explicit default config is bit-identical; seeds are reproducible"
        `Quick seed_determinism_test;
      Alcotest.test_case "portfolio members never flip a verdict (differential fuzz)" `Slow
        portfolio_fuzz;
      Alcotest.test_case "cubes partition, merge agrees with brute force, units are sound"
        `Slow cube_fuzz;
      Alcotest.test_case "cube-and-conquer refutes PHP(7,6) from a budgeted probe" `Quick
        cube_conquer_php_test;
    ] )

(* The top layer: evaluation harness and the verified-fallback backend. *)

open Veriopt_ir
module E = Veriopt.Evaluate
module B = Veriopt.Backend
module S = Veriopt_data.Suite
module Cap = Veriopt_llm.Capability
module A = Veriopt_alive.Alive
module I = Veriopt_eval.Interp

let backend_tests =
  [
    Alcotest.test_case "backend output is always safe" `Quick (fun () ->
        (* whatever the model emits, the deployed output must be equivalent
           to the input: either the verified model output or the input *)
        let ds = S.build ~verify:false ~seed0:2024 ~n:6 () in
        let model = Cap.base_3b () in
        List.iter
          (fun (s : S.sample) ->
            let o = B.optimize ~max_conflicts:40_000 model s.S.modul s.S.src in
            let v = A.verify_funcs ~max_conflicts:40_000 s.S.modul ~src:s.S.src ~tgt:o.B.output in
            Alcotest.(check bool) "deployed output equivalent or inconclusive" true
              (match v.A.category with
              | A.Equivalent | A.Inconclusive -> true
              | A.Semantic_error | A.Syntax_error -> false))
          ds.S.samples);
    Alcotest.test_case "fallback keeps the input on failure" `Quick (fun () ->
        (* a model hard-wired to corrupt everything must always fall back *)
        let model = Veriopt_llm.Model.create ~noise_scale:0.0 "corruptor" in
        Veriopt_llm.Model.set model "act:corrupt" 10.0;
        Veriopt_llm.Model.set model "format:ok" 10.0;
        let ds = S.build ~verify:false ~seed0:2025 ~n:4 () in
        List.iter
          (fun (s : S.sample) ->
            let o = B.optimize model s.S.modul s.S.src in
            Alcotest.(check bool) "fell back" true (not o.B.used_model);
            Alcotest.(check string) "output = input"
              (Printer.func_to_string s.S.src)
              (Printer.func_to_string o.B.output))
          ds.S.samples);
    Alcotest.test_case "best-of-both never loses to instcombine" `Quick (fun () ->
        let ds = S.build ~verify:false ~seed0:2026 ~n:5 () in
        let model = Cap.base_3b () in
        List.iter
          (fun (s : S.sample) ->
            let best, _ = B.optimize_best_of_both model s.S.modul s.S.src in
            let ic, _ = Veriopt_passes.Pass_manager.instcombine s.S.modul s.S.src in
            Alcotest.(check bool) "<= instcombine latency" true
              (Veriopt_cost.Latency.of_func best <= Veriopt_cost.Latency.of_func ic))
          ds.S.samples);
  ]

let evaluate_tests =
  [
    Alcotest.test_case "category counts partition the set" `Quick (fun () ->
        let ds = S.build ~verify:true ~seed0:2027 ~n:10 () in
        let res = E.run ~max_conflicts:40_000 (Cap.base_3b ()) ds.S.samples in
        let c = res.E.counts in
        Alcotest.(check int) "partition" c.E.total
          (c.E.correct + c.E.semantic + c.E.syntax + c.E.inconclusive));
    Alcotest.test_case "fallback rows carry -O0 metrics" `Quick (fun () ->
        let ds = S.build ~verify:true ~seed0:2028 ~n:8 () in
        let res = E.run ~max_conflicts:40_000 (Cap.base_3b ()) ds.S.samples in
        List.iter
          (fun (r : E.row) ->
            match r.E.category with
            | E.Syntax_error | E.Semantic_error | E.Inconclusive ->
              Alcotest.(check int) "fallback latency" r.E.m_src.E.latency r.E.m_out.E.latency
            | E.Correct_copy ->
              Alcotest.(check int) "copy latency" r.E.m_src.E.latency r.E.m_out.E.latency
            | E.Correct_different -> ())
          res.E.rows);
    Alcotest.test_case "comparisons count every row once" `Quick (fun () ->
        let ds = S.build ~verify:true ~seed0:2029 ~n:8 () in
        let res = E.run ~max_conflicts:40_000 (Cap.base_3b ()) ds.S.samples in
        let c =
          E.compare_metric res.E.rows
            ~metric:(fun m -> m.E.latency)
            ~out:E.out_metrics ~base:E.src_metrics
        in
        Alcotest.(check int) "partition" res.E.counts.E.total (c.E.better + c.E.worse + c.E.tie));
    Alcotest.test_case "geomean of identical rows is 1" `Quick (fun () ->
        let ds = S.build ~verify:true ~seed0:2030 ~n:5 () in
        let res = E.run ~max_conflicts:40_000 (Cap.base_3b ()) ds.S.samples in
        Alcotest.(check (float 1e-9)) "identity" 1.0
          (E.geomean_speedup res.E.rows
             ~metric:(fun m -> m.E.latency)
             ~out:E.src_metrics ~base:E.src_metrics));
  ]

(* ------------------------------------------------------------------ *)
(* The SAT core's containers: the removal operations the clause-DB reducer
   leans on (watch-list detach, learnt-index compaction, heap surgery). *)

module Vec = Veriopt_smt.Vec
module Heap = Veriopt_smt.Heap

let container_tests =
  [
    Alcotest.test_case "Vec push/pop/swap_remove" `Quick (fun () ->
        let v = Vec.create () in
        List.iter (Vec.push v) [ 10; 20; 30; 40 ];
        Alcotest.(check int) "length" 4 (Vec.length v);
        Vec.swap_remove v 1;
        (* 40 swapped into slot 1 *)
        Alcotest.(check int) "length after swap_remove" 3 (Vec.length v);
        Alcotest.(check int) "last element moved in" 40 (Vec.get v 1);
        Alcotest.(check int) "pop" 30 (Vec.pop v);
        Alcotest.(check int) "length after pop" 2 (Vec.length v));
    Alcotest.test_case "Vec remove finds and removes one occurrence" `Quick (fun () ->
        let v = Vec.create () in
        List.iter (Vec.push v) [ 7; 8; 9; 8 ];
        Alcotest.(check bool) "removes present value" true (Vec.remove v 8);
        Alcotest.(check int) "one occurrence removed" 3 (Vec.length v);
        Alcotest.(check bool) "second occurrence still there" true (Vec.remove v 8);
        Alcotest.(check bool) "absent value" false (Vec.remove v 8);
        Alcotest.(check bool) "never-present value" false (Vec.remove v 42);
        Alcotest.(check int) "others untouched" 2 (Vec.length v));
    Alcotest.test_case "Vec filter_in_place keeps order" `Quick (fun () ->
        let v = Vec.create () in
        List.iter (Vec.push v) [ 1; 2; 3; 4; 5; 6 ];
        Vec.filter_in_place (fun x -> x mod 2 = 0) v;
        Alcotest.(check (list int)) "evens in order" [ 2; 4; 6 ] (Vec.to_list v);
        Vec.filter_in_place (fun _ -> false) v;
        Alcotest.(check int) "empty after filtering all" 0 (Vec.length v));
    Alcotest.test_case "Heap remove keeps max-heap order" `Quick (fun () ->
        let act = Array.init 10 (fun i -> float_of_int (i * 7 mod 10)) in
        let h = Heap.create ~capacity:10 ~score:(fun v -> act.(v)) in
        for v = 0 to 9 do
          Heap.insert h v
        done;
        Alcotest.(check int) "size" 10 (Heap.size h);
        (* remove the max, a middle element and the min *)
        Heap.remove h 7 (* act 9.0: the max *);
        Heap.remove h 5 (* act 5.0: middle *);
        Heap.remove h 0 (* act 0.0: min *);
        Alcotest.(check int) "size after removes" 7 (Heap.size h);
        Alcotest.(check bool) "removed not in heap" false
          (Heap.in_heap h 7 || Heap.in_heap h 5 || Heap.in_heap h 0);
        (* the survivors drain in strictly decreasing activity order *)
        let drained = ref [] in
        while Heap.size h > 0 do
          drained := Heap.pop_max h :: !drained
        done;
        let order = List.rev !drained in
        let rec sorted = function
          | a :: (b :: _ as rest) -> act.(a) >= act.(b) && sorted rest
          | _ -> true
        in
        Alcotest.(check bool) "drain order matches activities" true (sorted order);
        Alcotest.(check int) "all survivors drained" 7 (List.length order));
    Alcotest.test_case "Heap remove of absent element is a no-op" `Quick (fun () ->
        let h = Heap.create ~capacity:4 ~score:float_of_int in
        Heap.insert h 2;
        Heap.remove h 3;
        (* never inserted *)
        Alcotest.(check int) "size unchanged" 1 (Heap.size h);
        Alcotest.(check int) "max intact" 2 (Heap.pop_max h));
  ]

let suite = ("core", backend_tests @ evaluate_tests @ container_tests)

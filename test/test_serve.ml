(* The overload-safe serving layer: queue priorities and shedding,
   EWMA/breaker admission control, in-queue coalescing of alpha-equivalent
   queries, graceful drain, and chaos behavior under seeded faults plus
   real worker kills.

   ORDER MATTERS: the chaos test forks a Proc engine pool, so this suite
   must run before any suite that spawns a domain (OCaml 5 forbids fork
   afterwards).  The serve layer's own workers are systhreads, which are
   safe in a domain-free process. *)

open Veriopt_ir
module A = Veriopt_alive.Alive
module Engine = Veriopt_alive.Engine
module Serve = Veriopt_serve.Serve
module Workload = Veriopt_serve.Workload
module Fault = Veriopt_fault.Fault

let parse_pair src_text tgt_text =
  let m = Parser.parse_module src_text in
  (m, List.hd m.Ast.funcs, List.hd (Parser.parse_module tgt_text).Ast.funcs)

(* SMT-hostile blocker: holds a dispatcher busy until its deadline. *)
let hostile_pair () =
  let text op =
    Fmt.str "define i11 @f(i11 %%x, i11 %%y) {\nentry:\n  %%r = mul i11 %s\n  ret i11 %%r\n}" op
  in
  parse_pair (text "%x, %y") (text "%y, %x")

let easy_text k =
  Fmt.str "define i32 @f(i32 %%x) {\nentry:\n  %%r = add i32 %%x, %d\n  ret i32 %%r\n}" k

let easy_pair k = parse_pair (easy_text k) (easy_text k)

let with_serve ?config ?(engine = fun () -> Engine.create ()) f =
  let sv = Serve.create ?config ~engine:(engine ()) () in
  Fun.protect ~finally:(fun () -> ignore (Serve.drain ~timeout:10. sv)) (fun () -> f sv)

(* Submit a hostile query and give the (single) dispatcher a moment to pick
   it up, so subsequent submissions demonstrably sit in the queue. *)
let occupy_worker sv ~for_s =
  let m, src, tgt = hostile_pair () in
  let tk =
    Serve.submit ~priority:Serve.Bulk
      ~deadline:(Unix.gettimeofday () +. for_s)
      ~max_conflicts:100_000_000 sv m ~src ~tgt
  in
  Unix.sleepf 0.1;
  tk

let reason = function
  | Serve.Rejected { reason; _ } -> Serve.reason_name reason
  | Serve.Verdict _ -> "verdict"

let quiet_config =
  (* single worker, no admission: queue behavior is deterministic *)
  {
    Serve.default_config with
    Serve.workers = 1;
    admission = false;
    interactive_deadline_s = 30.;
    bulk_deadline_s = 30.;
  }

let serve_tests =
  [
    Alcotest.test_case "verify round-trips a verdict through the service" `Quick (fun () ->
        with_serve (fun sv ->
            let m, src, tgt = easy_pair 7 in
            match Serve.verify sv m ~src ~tgt with
            | Serve.Verdict v ->
              Alcotest.(check bool) "equivalent" true (v.A.category = A.Equivalent)
            | Serve.Rejected { detail; _ } -> Alcotest.failf "rejected: %s" detail));
    Alcotest.test_case
      "coalescing: N identical + M alpha-renamed waiters, one engine call" `Quick (fun () ->
        with_serve ~config:quiet_config (fun sv ->
            let blocker = occupy_worker sv ~for_s:0.5 in
            let m, src, tgt = easy_pair 3 in
            let q =
              { Workload.w_label = "easy"; w_m = m; w_src = src; w_tgt = tgt;
                w_unroll = None; w_max_conflicts = None }
            in
            let alpha = Workload.alpha_variant q in
            (* the alpha variant really is renamed, not a copy *)
            Alcotest.(check bool) "renamed text differs" true
              (Printer.func_to_string tgt <> Printer.func_to_string alpha.Workload.w_tgt);
            let n_identical = 4 and n_alpha = 3 in
            let tks =
              List.init n_identical (fun _ -> Serve.submit sv m ~src ~tgt)
              @ List.init n_alpha (fun _ ->
                    Serve.submit sv alpha.Workload.w_m ~src:alpha.Workload.w_src
                      ~tgt:alpha.Workload.w_tgt)
            in
            let outcomes = List.map Serve.await tks in
            List.iter
              (function
                | Serve.Verdict v ->
                  Alcotest.(check bool) "equivalent" true (v.A.category = A.Equivalent)
                | o -> Alcotest.failf "waiter rejected: %s" (reason o))
              outcomes;
            ignore (Serve.await blocker);
            let s = Serve.stats sv in
            Alcotest.(check int) "coalesced waiters" (n_identical + n_alpha - 1)
              s.Serve.coalesced;
            Alcotest.(check int) "engine calls: blocker + one for the group" 2
              s.Serve.engine_calls));
    Alcotest.test_case "interactive pops before earlier-queued bulk" `Quick (fun () ->
        with_serve ~config:{ quiet_config with Serve.coalesce = false } (fun sv ->
            let blocker = occupy_worker sv ~for_s:0.4 in
            let mb, sb, tb = easy_pair 1 in
            let mi, si, ti = easy_pair 2 in
            let bulk = Serve.submit ~priority:Serve.Bulk sv mb ~src:sb ~tgt:tb in
            let inter = Serve.submit ~priority:Serve.Interactive sv mi ~src:si ~tgt:ti in
            ignore (Serve.await bulk);
            ignore (Serve.await inter);
            ignore (Serve.await blocker);
            Alcotest.(check bool)
              (Fmt.str "interactive latency (%.0fms) below bulk (%.0fms)"
                 (Serve.latency inter *. 1e3) (Serve.latency bulk *. 1e3))
              true
              (Serve.latency inter < Serve.latency bulk)));
    Alcotest.test_case "full queue sheds by the documented policy" `Quick (fun () ->
        let config = { quiet_config with Serve.queue_capacity = 2; coalesce = false } in
        with_serve ~config (fun sv ->
            let blocker = occupy_worker sv ~for_s:0.6 in
            let now = Unix.gettimeofday () in
            let sub ?priority dl k =
              let m, src, tgt = easy_pair k in
              Serve.submit ?priority ~deadline:(now +. dl) sv m ~src ~tgt
            in
            let b1 = sub 10. 10 in
            let b2 = sub 20. 11 in
            (* most-expired bulk (b1) is displaced by a later-deadline bulk *)
            let b3 = sub 30. 12 in
            Alcotest.(check string) "b1 displaced" "displaced" (reason (Serve.await b1));
            (* a bulk newcomer that outranks nothing is itself rejected *)
            let b4 = sub 1. 13 in
            Alcotest.(check string) "b4 queue_full" "queue_full" (reason (Serve.await b4));
            (* interactive always displaces bulk *)
            let i1 = sub ~priority:Serve.Interactive 10. 14 in
            Alcotest.(check string) "b2 displaced" "displaced" (reason (Serve.await b2));
            List.iter
              (fun (name, tk) ->
                match Serve.await tk with
                | Serve.Verdict _ -> ()
                | o -> Alcotest.failf "%s should have been served, got %s" name (reason o))
              [ ("b3", b3); ("i1", i1) ];
            ignore (Serve.await blocker);
            let s = Serve.stats sv in
            Alcotest.(check int) "two displaced" 2 s.Serve.shed_displaced;
            Alcotest.(check int) "one queue-full rejection" 1 s.Serve.shed_queue_full));
    Alcotest.test_case "a queued request expires at its deadline, not silently" `Quick
      (fun () ->
        with_serve ~config:quiet_config (fun sv ->
            let blocker = occupy_worker sv ~for_s:0.4 in
            let m, src, tgt = easy_pair 21 in
            let tk = Serve.submit ~deadline:(Unix.gettimeofday () +. 0.05) sv m ~src ~tgt in
            Alcotest.(check string) "expired" "expired" (reason (Serve.await tk));
            ignore (Serve.await blocker);
            Alcotest.(check int) "counted" 1 (Serve.stats sv).Serve.shed_expired));
    Alcotest.test_case "admission control refuses a doomed deadline in microseconds" `Quick
      (fun () ->
        let config = { Serve.default_config with Serve.workers = 1 } in
        with_serve ~config (fun sv ->
            (* warm the per-tier EWMAs with one hostile query *)
            let m, src, tgt = hostile_pair () in
            (match
               Serve.verify
                 ~deadline:(Unix.gettimeofday () +. 0.2)
                 ~max_conflicts:100_000_000 sv m ~src ~tgt
             with
            | Serve.Verdict _ | Serve.Rejected _ -> ());
            Alcotest.(check bool) "tier-2 ewma warmed" true
              ((Engine.stats (Serve.engine sv)).Veriopt_alive.Vcache.tier2_ewma_s > 0.);
            let me, se, te = easy_pair 31 in
            let t0 = Unix.gettimeofday () in
            let tk = Serve.submit ~deadline:(t0 +. 0.001) sv me ~src:se ~tgt:te in
            let dt = Unix.gettimeofday () -. t0 in
            (match Serve.poll tk with
            | Some (Serve.Rejected { reason = Serve.Deadline_unmeetable; _ }) -> ()
            | Some o -> Alcotest.failf "expected deadline_unmeetable, got %s" (reason o)
            | None -> Alcotest.fail "refusal was not immediate");
            Alcotest.(check bool) (Fmt.str "refused fast (%.1fms)" (dt *. 1e3)) true (dt < 0.05);
            Alcotest.(check int) "counted" 1 (Serve.stats sv).Serve.admission_refused));
    Alcotest.test_case "drain stops admission, resolves everything, reaps everything" `Quick
      (fun () ->
        let sv = Serve.create ~config:quiet_config ~engine:(Engine.create ()) () in
        let m, src, tgt = easy_pair 41 in
        let tk = Serve.submit sv m ~src ~tgt in
        let r1 = Serve.drain ~timeout:5. sv in
        Alcotest.(check int) "no orphans" 0 r1.Serve.drain_orphans;
        (match Serve.await tk with
        | Serve.Verdict _ -> ()
        | o -> Alcotest.failf "pre-drain work lost: %s" (reason o));
        (match Serve.verify sv m ~src ~tgt with
        | Serve.Rejected { reason = Serve.Draining; _ } -> ()
        | o -> Alcotest.failf "post-drain submit not refused: %s" (reason o));
        let r2 = Serve.drain sv in
        Alcotest.(check bool) "drain is idempotent" true (r1 = r2));
  ]

(* Chaos: seeded serve-layer faults + real worker kills (worker_hang forces
   the vproc hard-SIGKILL path) under a submission hammer.  The contract:
   every ticket resolves to a Verdict or an explicit Rejected — no
   exception, no hang — and teardown leaves zero orphaned processes. *)
let chaos_tests =
  [
    Alcotest.test_case "chaos: fault sweep + worker kills yield only honest outcomes"
      `Quick (fun () ->
        (match
           Fault.configure_string
             "seed=3,worker_hang=0.1,queue_full=0.05,client_disconnect=0.05,slow_drain=0.05:0.002"
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "bad fault spec: %s" e);
        Fault.reset_stats ();
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let engine = Engine.create ~tier1_samples:0 ~isolate:Engine.Proc () in
        let config =
          {
            Serve.default_config with
            Serve.queue_capacity = 16;
            workers = 4;
            interactive_deadline_s = 0.08;
            bulk_deadline_s = 0.3;
          }
        in
        let sv = Serve.create ~config ~engine () in
        let n = 120 in
        let tickets =
          List.init n (fun i ->
              let q = Workload.make ~seed:7 ~index:i in
              let priority = if i mod 4 = 0 then Serve.Interactive else Serve.Bulk in
              Serve.submit ~priority ?unroll:q.Workload.w_unroll
                ?max_conflicts:q.Workload.w_max_conflicts sv q.Workload.w_m
                ~src:q.Workload.w_src ~tgt:q.Workload.w_tgt)
        in
        let verdicts = ref 0 and rejections = ref 0 in
        List.iter
          (fun tk ->
            match Serve.await tk with
            | Serve.Verdict _ -> incr verdicts
            | Serve.Rejected _ -> incr rejections)
          tickets;
        Alcotest.(check int) "every request answered" n (!verdicts + !rejections);
        let report = Serve.drain ~timeout:10. sv in
        Alcotest.(check int) "zero orphans after drain" 0 report.Serve.drain_orphans;
        let s = Serve.stats sv in
        Alcotest.(check bool) "some work actually reached the engine" true
          (s.Serve.engine_calls > 0);
        (* the serve fault kinds really fired under this seed *)
        List.iter
          (fun k ->
            let c = List.find (fun c -> c.Fault.kind = k) (Fault.stats ()) in
            Alcotest.(check bool) (Fault.kind_name k ^ " checked") true (c.Fault.checks > 0))
          [ Fault.Queue_full; Fault.Slow_drain; Fault.Client_disconnect ]);
    Alcotest.test_case "chaos: dispatchers + proc workers share one verdict store soundly"
      `Quick (fun () ->
        let module Store = Veriopt_store.Store in
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Fmt.str "veriopt-test-serve-store-%d" (Unix.getpid ()))
        in
        if Sys.file_exists dir then
          Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
        else Unix.mkdir dir 0o755;
        (match
           Fault.configure_string
             "seed=9,worker_hang=0.05,store_corrupt=0.1,store_stale=0.05"
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "bad fault spec: %s" e);
        Fault.reset_stats ();
        Fun.protect ~finally:Fault.disable @@ fun () ->
        let engine = Engine.create ~tier1_samples:0 ~isolate:Engine.Proc ~store:dir () in
        let config =
          {
            Serve.default_config with
            Serve.queue_capacity = 32;
            workers = 4;
            interactive_deadline_s = 0.5;
            bulk_deadline_s = 1.0;
          }
        in
        let sv = Serve.create ~config ~engine () in
        let n = 80 in
        let tickets =
          List.init n (fun i ->
              (* half the stream replays earlier queries (verbatim or
                 alpha-renamed) so the store actually gets warm traffic *)
              let q = Workload.make ~seed:13 ~index:(i mod (n / 2)) in
              let q = if i >= n / 2 && i mod 2 = 0 then Workload.alpha_variant q else q in
              Serve.submit
                ~priority:(if i mod 4 = 0 then Serve.Interactive else Serve.Bulk)
                ?unroll:q.Workload.w_unroll ?max_conflicts:q.Workload.w_max_conflicts sv
                q.Workload.w_m ~src:q.Workload.w_src ~tgt:q.Workload.w_tgt)
        in
        let resolved =
          List.fold_left
            (fun acc tk ->
              match Serve.await tk with Serve.Verdict _ | Serve.Rejected _ -> acc + 1)
            0 tickets
        in
        Alcotest.(check int) "every ticket resolves" n resolved;
        let ss = Option.get (Engine.store_stats engine) in
        let report = Serve.drain ~timeout:10. sv in
        Alcotest.(check int) "zero orphans after drain" 0 report.Serve.drain_orphans;
        Alcotest.(check bool) "the store saw traffic" true (ss.Store.hits + ss.Store.misses > 0);
        Alcotest.(check bool) "fresh verdicts were appended" true (ss.Store.writes > 0);
        let s = Serve.stats sv in
        Alcotest.(check bool) "store counters surface in serve stats" true
          (s.Serve.store_hits = ss.Store.hits && s.Serve.store_misses >= ss.Store.misses);
        (* a clean post-drain scan proves concurrent writers tore nothing:
           every appended record is whole and CRC-clean on disk *)
        let r =
          Store.open_ ~read_only:true ~dir
            ~semantics:(Veriopt_alive.Engine.semantics_digest ()) ()
        in
        let rs = Store.stats r in
        Store.close r;
        Alcotest.(check int) "no torn records on disk after drain" 0 rs.Store.corrupt_entries;
        Alcotest.(check int) "no stale records on disk after drain" 0
          rs.Store.stale_version_skips;
        Alcotest.(check bool) "the drained store is durable" true
          (rs.Store.entries > 0));
  ]

let suite = ("serve", serve_tests @ chaos_tests)

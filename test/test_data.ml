(* Dataset generation: the mini-C generator, the -O0 lowering shape, and the
   Suite filtering methodology. *)

open Veriopt_ir
module S = Veriopt_data.Suite
module Cgen = Veriopt_data.Cgen
module Lower = Veriopt_data.Lower

let lowering_tests =
  [
    Alcotest.test_case "generation is deterministic in the seed" `Quick (fun () ->
        let f1 = Cgen.generate ~seed:7 ~name:"t" () in
        let f2 = Cgen.generate ~seed:7 ~name:"t" () in
        let p f = Printer.func_to_string (snd (Lower.lower f)) in
        Alcotest.(check string) "same" (p f1) (p f2));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let p seed =
          Printer.func_to_string (snd (Lower.lower (Cgen.generate ~seed ~name:"t" ())))
        in
        Alcotest.(check bool) "different" true (p 1 <> p 2));
    Alcotest.test_case "lowering has clang -O0 shape" `Quick (fun () ->
        (* every parameter is spilled to an alloca; a retval slot exists *)
        let _, f = Lower.lower (Cgen.generate ~seed:3 ~name:"t" ()) in
        let entry = Ast.entry_block f in
        let allocas =
          List.filter
            (fun ni -> match ni.Ast.instr with Ast.Alloca _ -> true | _ -> false)
            entry.Ast.instrs
        in
        Alcotest.(check bool) "retval + params spilled" true
          (List.length allocas >= 1 + List.length f.Ast.params);
        Alcotest.(check bool) "has return block" true
          (List.exists (fun b -> b.Ast.label = "return") f.Ast.blocks));
    Alcotest.test_case "lowered functions never trap on zero inputs" `Quick (fun () ->
        (* the generator divides only by non-zero constants *)
        for seed = 0 to 30 do
          let m, f = Lower.lower (Cgen.generate ~seed ~name:"t" ()) in
          let args =
            List.map (fun (ty, _) -> Veriopt_eval.Interp.vint (Types.width ty) 0L) f.Ast.params
          in
          match Veriopt_eval.Interp.run ~fuel:100_000 m f args with
          | _ -> ()
          | exception Veriopt_eval.Interp.Undefined_behavior msg ->
            Alcotest.failf "seed %d traps: %s" seed msg
        done);
  ]

let profile_tests =
  [
    Alcotest.test_case "default profile generation is pinned bit-identical" `Quick
      (fun () ->
        (* the adversarial biases were added behind [> 0.] guards that must
           never perturb the default RNG stream; this digest was computed
           before those fields existed.  Recomputed (deliberately) when the
           Lower emit chokepoint gained the shared canonicalizer
           (Canon.canon_instr): the RNG stream is untouched, only the
           printed operand order of commutative ops changed. *)
        let buf = Buffer.create 65536 in
        for seed = 0 to 29 do
          let _, f = Lower.lower (Cgen.generate ~seed ~name:"t" ()) in
          Buffer.add_string buf (Printer.func_to_string f)
        done;
        Alcotest.(check string) "seed-stability pin" "98b122dfe7d68543ec0358ccef9fdb5e"
          (Digest.to_hex (Digest.string (Buffer.contents buf))));
    Alcotest.test_case "adversarial profile reaches the new shape families" `Quick
      (fun () ->
        (* selects, non-constant GEPs and overflow-flagged arithmetic must
           actually appear in the lowered IR across a seed sweep *)
        let selects = ref 0 and geps = ref 0 and nsw = ref 0 in
        for seed = 0 to 39 do
          let _, f =
            Lower.lower (Cgen.generate ~profile:Cgen.adversarial_profile ~seed ~name:"t" ())
          in
          List.iter
            (fun b ->
              List.iter
                (fun ni ->
                  match ni.Ast.instr with
                  | Ast.Select _ -> incr selects
                  | Ast.Gep { indices; _ }
                    when List.exists
                           (fun (_, o) -> match o with Ast.Var _ -> true | _ -> false)
                           indices -> incr geps
                  | Ast.Binop { flags; _ } when flags.Ast.nsw -> incr nsw
                  | _ -> ())
                b.Ast.instrs)
            f.Ast.blocks
        done;
        Alcotest.(check bool) (Fmt.str "selects lowered (%d)" !selects) true (!selects > 0);
        Alcotest.(check bool) (Fmt.str "variable geps lowered (%d)" !geps) true (!geps > 0);
        Alcotest.(check bool) (Fmt.str "nsw arithmetic lowered (%d)" !nsw) true (!nsw > 0);
        (* and the adversarial stream must differ from the default one *)
        let p profile =
          Printer.func_to_string
            (snd (Lower.lower (Cgen.generate ~profile ~seed:5 ~name:"t" ())))
        in
        Alcotest.(check bool) "profiles diverge" true
          (p Cgen.adversarial_profile <> p Cgen.default_profile));
    Alcotest.test_case "adversarial generation validates and mostly runs" `Quick (fun () ->
        (* ovf_bias intentionally manufactures poison (nsw overflow), which
           the interpreter may surface as UB on a call boundary — that is
           refinement-legal mining material, so only validator cleanliness
           is an invariant here, plus "most programs still run" *)
        let ran = ref 0 in
        for seed = 0 to 30 do
          let m, f =
            Lower.lower (Cgen.generate ~profile:Cgen.adversarial_profile ~seed ~name:"t" ())
          in
          (match Validator.validate_func ~module_:m f with
          | Ok () -> ()
          | Error (e :: _) -> Alcotest.failf "seed %d invalid: %s" seed e
          | Error [] -> Alcotest.failf "seed %d invalid" seed);
          let args =
            List.map (fun (ty, _) -> Veriopt_eval.Interp.vint (Types.width ty) 0L) f.Ast.params
          in
          match Veriopt_eval.Interp.run ~fuel:100_000 m f args with
          | _ -> incr ran
          | exception Veriopt_eval.Interp.Undefined_behavior _ -> ()
        done;
        Alcotest.(check bool) (Fmt.str "most adversarial programs run (%d/31)" !ran) true
          (!ran >= 20));
  ]

let suite_tests =
  [
    Alcotest.test_case "suite filters and labels" `Quick (fun () ->
        let ds = S.build ~verify:true ~seed0:4242 ~n:10 () in
        Alcotest.(check int) "requested samples" 10 (List.length ds.S.samples);
        List.iter
          (fun (s : S.sample) ->
            (* every sample has instcombine work to do *)
            Alcotest.(check bool) "label differs" true (s.S.trace <> []);
            (* src and label verified equivalent *)
            match Validator.validate_func ~module_:s.S.modul s.S.label with
            | Ok () -> ()
            | Error es -> Alcotest.failf "label invalid: %s" (String.concat "; " es))
          ds.S.samples);
    Alcotest.test_case "parallel verified build equals the sequential one" `Quick (fun () ->
        (* the Par-wave build must be bit-for-bit the sequential build:
           same samples (ids, texts), same stats *)
        let n = 8 in
        let seed0 = 4242 in
        let par = S.build ~verify:true ~seed0 ~n () in
        let rec seq i id acc stats =
          if id >= n then (List.rev acc, stats)
          else
            let stats = { stats with S.generated = stats.S.generated + 1 } in
            match S.build_sample ~verify:true ~seed:(seed0 + i) id with
            | Ok s -> seq (i + 1) (id + 1) (s :: acc) { stats with S.kept = stats.S.kept + 1 }
            | Error bump -> seq (i + 1) id acc (bump stats)
        in
        let seq_samples, seq_stats = seq 0 0 [] S.empty_stats in
        Alcotest.(check int) "same count" (List.length seq_samples)
          (List.length par.S.samples);
        List.iter2
          (fun (a : S.sample) (b : S.sample) ->
            Alcotest.(check int) "same id" a.S.id b.S.id;
            Alcotest.(check string) "same src" a.S.src_text b.S.src_text;
            Alcotest.(check string) "same label" a.S.label_text b.S.label_text)
          seq_samples par.S.samples;
        Alcotest.(check bool) "same stats" true (par.S.stats = seq_stats));
    Alcotest.test_case "train and validation seeds are disjoint" `Quick (fun () ->
        Alcotest.(check bool) "disjoint ranges" true
          (S.train_seed_base + 10_000_000 <> S.validation_seed_base
          && abs (S.train_seed_base - S.validation_seed_base) > 1_000_000));
    Alcotest.test_case "stats add up" `Quick (fun () ->
        let ds = S.build ~verify:false ~seed0:5555 ~n:15 () in
        let st = ds.S.stats in
        Alcotest.(check int) "kept = n" 15 st.S.kept;
        Alcotest.(check int) "generated >= kept" st.S.generated
          (st.S.kept + st.S.dropped_no_change + st.S.dropped_not_equivalent
         + st.S.dropped_inconclusive + st.S.dropped_too_long));
    Alcotest.test_case "token filter applies" `Quick (fun () ->
        let ds = S.build ~verify:false ~seed0:777 ~n:8 () in
        List.iter
          (fun (s : S.sample) ->
            Alcotest.(check bool) "within limit" true
              (Veriopt_nlp.Tokenizer.within_limit s.S.src_text))
          ds.S.samples);
  ]

let suite = ("data", lowering_tests @ profile_tests @ suite_tests)

(* The tiered, cached verification engine: cached verdicts match fresh
   ones, tier 1's concrete counterexamples agree with the SMT verdict, the
   cache stays bounded, and the Par pool is observationally List.map. *)

open Veriopt_ir
module A = Veriopt_alive.Alive
module Engine = Veriopt_alive.Engine
module Vcache = Veriopt_alive.Vcache
module Oracle = Veriopt_eval.Exec_oracle
module Par = Veriopt_par.Par
module Reward = Veriopt_rl.Reward
module S = Veriopt_data.Suite

let m0 = Ast.empty_module
let parse = Parser.parse_func

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let category =
  Alcotest.testable
    (fun ppf -> function
      | A.Equivalent -> Fmt.string ppf "Equivalent"
      | A.Semantic_error -> Fmt.string ppf "Semantic_error"
      | A.Syntax_error -> Fmt.string ppf "Syntax_error"
      | A.Inconclusive -> Fmt.string ppf "Inconclusive")
    ( = )

(* a small battery covering every verdict category *)
let battery =
  [
    ( "equivalent fold",
      "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 0\n  ret i32 %r\n}",
      "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}" );
    ( "identity copy",
      "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 0\n  ret i32 %r\n}",
      "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 0\n  ret i32 %r\n}" );
    ( "wrong constant",
      "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}",
      "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 2\n  ret i8 %r\n}" );
    ( "garbage target",
      "define i8 @f(i8 %x) {\nentry:\n  ret i8 %x\n}",
      "this is not IR at all" );
  ]

let cached_matches_fresh_tests =
  [
    Alcotest.test_case "engine verdict = seed verdict, then cache hit repeats it" `Quick
      (fun () ->
        let e = Engine.create () in
        List.iter
          (fun (name, src_text, tgt_text) ->
            let src = parse src_text in
            let fresh = A.verify_text m0 ~src ~tgt_text in
            let tiered = Engine.verify_text e m0 ~src ~tgt_text in
            Alcotest.check category (name ^ " category") fresh.A.category tiered.A.category;
            (* second query must come from the cache and be byte-identical *)
            let again = Engine.verify_text e m0 ~src ~tgt_text in
            Alcotest.(check bool) (name ^ " cached identical") true (tiered = again))
          battery;
        let st = Engine.stats e in
        Alcotest.(check bool) "cache was hit" true (st.Vcache.hits >= 1));
    Alcotest.test_case "verdict preserved across the dataset suite" `Quick (fun () ->
        let ds = S.build ~verify:false ~seed0:77001 ~n:12 () in
        let e = Engine.create () in
        List.iter
          (fun (s : S.sample) ->
            let fresh = A.verify_funcs s.S.modul ~src:s.S.src ~tgt:s.S.label in
            let tiered = Engine.verify_funcs e s.S.modul ~src:s.S.src ~tgt:s.S.label in
            Alcotest.check category
              (Printf.sprintf "sample %d label" s.S.id)
              fresh.A.category tiered.A.category)
          ds.S.samples);
  ]

let tier1_tests =
  [
    Alcotest.test_case "concrete counterexample agrees with SMT and skips it" `Quick
      (fun () ->
        let src =
          parse "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}"
        in
        let tgt =
          parse "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 2\n  ret i8 %r\n}"
        in
        let smt = A.verify_funcs m0 ~src ~tgt in
        Alcotest.check category "SMT says semantic error" A.Semantic_error smt.A.category;
        let e = Engine.create () in
        let v = Engine.verify_funcs e m0 ~src ~tgt in
        Alcotest.check category "tier 1 agrees" A.Semantic_error v.A.category;
        let st = Engine.stats e in
        Alcotest.(check bool) "tier 1 short-circuited" true (st.Vcache.tier1_hits >= 1);
        Alcotest.(check int) "SMT tier never ran" 0 st.Vcache.tier2_runs;
        (* the diagnostic carries the distinguishing input, alive2-style *)
        Alcotest.(check bool)
          "diagnostic shows an example" true
          (contains v.A.message "Example:"));
    Alcotest.test_case "tier 1 disabled falls through to SMT" `Quick (fun () ->
        let src = parse "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}" in
        let tgt = parse "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 2\n  ret i8 %r\n}" in
        let e = Engine.create ~tier1_samples:0 () in
        let v = Engine.verify_funcs e m0 ~src ~tgt in
        Alcotest.check category "still semantic error" A.Semantic_error v.A.category;
        let st = Engine.stats e in
        Alcotest.(check int) "tier 1 never ran" 0 (st.Vcache.tier1_hits + st.Vcache.tier1_misses);
        Alcotest.(check bool) "SMT ran" true (st.Vcache.tier2_runs >= 1));
  ]

let cache_tests =
  [
    Alcotest.test_case "generation sweep keeps the cache bounded" `Quick (fun () ->
        let capacity = 4 in
        let e = Engine.create ~capacity () in
        (* 12 distinct queries through a capacity-4 cache *)
        for k = 1 to 12 do
          let src =
            parse
              (Printf.sprintf "define i8 @f(i8 %%x) {\nentry:\n  %%r = add i8 %%x, %d\n  ret i8 %%r\n}" k)
          in
          ignore (Engine.verify_funcs e m0 ~src ~tgt:src)
        done;
        let st = Engine.stats e in
        Alcotest.(check bool) "entries bounded by 2*capacity" true
          (st.Vcache.entries <= (2 * capacity));
        Alcotest.(check bool) "sweeps evicted something" true (st.Vcache.evictions > 0);
        Alcotest.(check int) "every query was distinct" 12 st.Vcache.misses);
    Alcotest.test_case "reset zeroes counters and drops entries" `Quick (fun () ->
        let e = Engine.create () in
        let src = parse "define i8 @f(i8 %x) {\nentry:\n  ret i8 %x\n}" in
        ignore (Engine.verify_funcs e m0 ~src ~tgt:src);
        Engine.reset_stats e;
        let st = Engine.stats e in
        Alcotest.(check int) "no entries" 0 st.Vcache.entries;
        Alcotest.(check int) "no misses" 0 st.Vcache.misses);
  ]

let par_tests =
  [
    Alcotest.test_case "Par.map = List.map for pool sizes 1..4" `Quick (fun () ->
        let xs = List.init 100 (fun i -> i) in
        let f x = (x * x) + 7 in
        let expected = List.map f xs in
        List.iter
          (fun jobs ->
            let pool = Par.create ~jobs in
            let got = Par.map pool f xs in
            Par.shutdown pool;
            Alcotest.(check (list int))
              (Printf.sprintf "jobs=%d order and values" jobs)
              expected got)
          [ 1; 2; 3; 4 ]);
    Alcotest.test_case "Par.map re-raises the first exception" `Quick (fun () ->
        let pool = Par.create ~jobs:3 in
        let raised =
          try
            ignore (Par.map pool (fun x -> if x = 5 then failwith "boom" else x) (List.init 10 Fun.id));
            false
          with Failure m -> m = "boom"
        in
        Par.shutdown pool;
        Alcotest.(check bool) "Failure boom propagated" true raised);
  ]

let satellite_tests =
  [
    Alcotest.test_case "random_value samples the full 64-bit range" `Quick (fun () ->
        let rng = Random.State.make [| 31337 |] in
        let top_bit_seen = ref false in
        for _ = 1 to 100 do
          if Int64.compare (Oracle.random_value rng 64) 0L < 0 then top_bit_seen := true
        done;
        Alcotest.(check bool) "a negative (top-bit-set) value appeared" true !top_bit_seen);
    Alcotest.test_case "syntax_verdict and missing answer tags" `Quick (fun () ->
        let v = Reward.syntax_verdict "no <answer> tags" in
        Alcotest.check category "syntax" A.Syntax_error v.A.category;
        let src = parse "define i8 @f(i8 %x) {\nentry:\n  ret i8 %x\n}" in
        let vc = Reward.verify_completion m0 ~src "a completion with no tags" in
        Alcotest.check category "untagged completion" A.Syntax_error
          vc.Reward.verdict.A.category);
  ]

(* width-parameterized pairs so consecutive queries never share a cache key *)
let hostile_pair w =
  let text op =
    Printf.sprintf
      "define i%d @f(i%d %%x, i%d %%y) {\nentry:\n  %%r = mul i%d %s\n  ret i%d %%r\n}" w w w
      w op w
  in
  let m = Parser.parse_module (text "%x, %y") in
  let src = List.hd m.Ast.funcs in
  let tgt = List.hd (Parser.parse_module (text "%y, %x")).Ast.funcs in
  (m, src, tgt)

let easy_pair w =
  let m =
    Parser.parse_module
      (Printf.sprintf "define i%d @f(i%d %%x) {\nentry:\n  %%r = add i%d %%x, 0\n  ret i%d %%r\n}"
         w w w w)
  in
  let src = List.hd m.Ast.funcs in
  let tgt =
    List.hd
      (Parser.parse_module
         (Printf.sprintf "define i%d @f(i%d %%x) {\nentry:\n  ret i%d %%x\n}" w w w))
      .Ast.funcs
  in
  (m, src, tgt)

(* a counting loop against a constant: cyclic, so the bounded encoding and
   the iterative-deepening incremental session engage *)
let loop_pair ?(bound = 3) ?(ret = 3) () =
  let src =
    Printf.sprintf
      "define i32 @f(i32 %%n) {\nentry:\n  br label %%h\nh:\n  %%i = phi i32 [ 0, %%entry ], [ \
       %%i2, %%b ]\n  %%c = icmp slt i32 %%i, %d\n  br i1 %%c, label %%b, label %%x\nb:\n  %%i2 \
       = add i32 %%i, 1\n  br label %%h\nx:\n  ret i32 %%i\n}"
      bound
  in
  let tgt = Printf.sprintf "define i32 @f(i32 %%n) {\nentry:\n  ret i32 %d\n}" ret in
  let m = Parser.parse_module src in
  (m, List.hd m.Ast.funcs, List.hd (Parser.parse_module tgt).Ast.funcs)

(* the hostile mul moved inside a loop exit block: every deepening step
   re-poses the commutativity query, so no realistic deadline survives it *)
let hostile_loop_pair w =
  let text op =
    Printf.sprintf
      "define i%d @f(i%d %%x, i%d %%y) {\nentry:\n  br label %%h\nh:\n  %%i = phi i%d [ 0, \
       %%entry ], [ %%i2, %%b ]\n  %%c = icmp slt i%d %%i, 2\n  br i1 %%c, label %%b, label \
       %%x\nb:\n  %%i2 = add i%d %%i, 1\n  br label %%h\nx:\n  %%r = mul i%d %s\n  ret i%d \
       %%r\n}"
      w w w w w w w op w
  in
  let m = Parser.parse_module (text "%x, %y") in
  let src = List.hd m.Ast.funcs in
  let tgt = List.hd (Parser.parse_module (text "%y, %x")).Ast.funcs in
  (m, src, tgt)

let incremental_tests =
  [
    Alcotest.test_case "iterative deepening agrees with single-shot unroll" `Quick (fun () ->
        (* handwritten loop pairs covering every verdict the deepening loop
           can produce, plus a slice of the generated corpus (some samples
           carry loops): the incremental session must never flip a verdict
           against the fresh single-shot solve at the full bound *)
        List.iter
          (fun (name, (m, src, tgt)) ->
            let fresh = A.verify_funcs ~incremental:false m ~src ~tgt in
            let incr = A.verify_funcs ~incremental:true m ~src ~tgt in
            Alcotest.check category name fresh.A.category incr.A.category)
          [
            ("terminating loop", loop_pair ());
            ("wrong constant", loop_pair ~ret:4 ());
            ("bound exceeds unroll", loop_pair ~bound:100 ~ret:100 ());
            ("loop against itself", (fun (m, src, _) -> (m, src, src)) (loop_pair ()));
            ("mul commutativity in a loop", hostile_loop_pair 5);
          ];
        let ds = S.build ~verify:false ~seed0:88111 ~n:10 () in
        List.iter
          (fun (s : S.sample) ->
            let fresh =
              A.verify_funcs ~incremental:false s.S.modul ~src:s.S.src ~tgt:s.S.label
            in
            let incr = A.verify_funcs ~incremental:true s.S.modul ~src:s.S.src ~tgt:s.S.label in
            Alcotest.check category
              (Printf.sprintf "sample %d" s.S.id)
              fresh.A.category incr.A.category)
          ds.S.samples);
    Alcotest.test_case "deepening verdicts at the default bound" `Quick (fun () ->
        let check name expect (m, src, tgt) =
          let v = A.verify_funcs ~incremental:true m ~src ~tgt in
          Alcotest.check category name expect v.A.category;
          Alcotest.(check bool) (name ^ " is bounded") true v.A.bounded
        in
        check "exhausted loop proves equivalent" A.Equivalent (loop_pair ());
        check "wrong constant is refuted" A.Semantic_error (loop_pair ~ret:4 ());
        (* a loop that cannot exhaust the bound has no terminating execution
           within it, so bounded validation accepts vacuously — same as the
           single-shot path *)
        check "unexhausted loop verifies vacuously" A.Equivalent
          (loop_pair ~bound:100 ~ret:100 ()));
  ]

let breaker_tests =
  [
    Alcotest.test_case "half-open trial: a conclusive verdict closes the breaker" `Quick
      (fun () ->
        (* k=2 trips after two inconclusive tier-2 runs; cooldown=2 skips
           the next two would-be runs; the call after that is the trial *)
        let e = Engine.create ~tier1_samples:0 ~breaker_k:2 ~breaker_cooldown:2 () in
        let hostile w =
          let m, src, tgt = hostile_pair w in
          (Engine.verify_funcs ~max_conflicts:64 e m ~src ~tgt).A.category
        in
        let easy w =
          let m, src, tgt = easy_pair w in
          (Engine.verify_funcs e m ~src ~tgt).A.category
        in
        Alcotest.check category "starved solver is inconclusive" A.Inconclusive (hostile 11);
        Alcotest.check category "second strike trips" A.Inconclusive (hostile 12);
        let st = Engine.stats e in
        Alcotest.(check int) "tripped once" 1 st.Vcache.breaker_trips;
        Alcotest.(check int) "two real tier-2 runs" 2 st.Vcache.tier2_runs;
        (* open: even a trivially-equivalent pair is skipped and widened *)
        Alcotest.check category "skip 1 widens a hostile query" A.Inconclusive (hostile 13);
        Alcotest.check category "skip 2 widens an easy query" A.Inconclusive (easy 9);
        let st = Engine.stats e in
        Alcotest.(check int) "both skips counted" 2 st.Vcache.breaker_skips;
        Alcotest.(check int) "no tier-2 while open" 2 st.Vcache.tier2_runs;
        (* half-open: the trial runs for real, and a conclusive verdict
           closes the breaker *)
        Alcotest.check category "trial runs and concludes" A.Equivalent (easy 10);
        Alcotest.check category "closed: hostile runs again" A.Inconclusive (hostile 14);
        let st = Engine.stats e in
        Alcotest.(check int) "trial + reopened traffic ran tier 2" 4 st.Vcache.tier2_runs;
        Alcotest.(check int) "no further skips" 2 st.Vcache.breaker_skips;
        Alcotest.(check int) "no further trips" 1 st.Vcache.breaker_trips;
        (* the skipped verdict was transient: the same easy query now
           resolves conclusively instead of replaying a cached widening *)
        Alcotest.check category "skipped verdict was never cached" A.Equivalent (easy 9));
    Alcotest.test_case "deadline-expired verdicts are never cached" `Quick (fun () ->
        let e = Engine.create ~tier1_samples:0 () in
        let m, src, tgt = hostile_pair 12 in
        let v =
          Engine.verify_funcs ~deadline:(Unix.gettimeofday () +. 0.05) e m ~src ~tgt
        in
        Alcotest.check category "deadline widened" A.Inconclusive v.A.category;
        let st = Engine.stats e in
        Alcotest.(check int) "nothing was inserted" 0 st.Vcache.insertions;
        (* the retry is a genuine re-run, not a cache hit *)
        ignore (Engine.verify_funcs ~deadline:(Unix.gettimeofday () +. 0.05) e m ~src ~tgt);
        let st = Engine.stats e in
        Alcotest.(check int) "second attempt ran tier 2 again" 2 st.Vcache.tier2_runs;
        Alcotest.(check int) "still nothing cached" 0 st.Vcache.insertions);
    Alcotest.test_case "deadline death mid-session leaves no poisoned state" `Quick (fun () ->
        (* a loop pair drives the incremental deepening session; a deadline
           expiring inside it must yield an uncached Inconclusive, and the
           next check on the same engine must conclude from a clean session *)
        let e = Engine.create ~tier1_samples:0 () in
        let m, src, tgt = loop_pair () in
        let v = Engine.verify_funcs ~deadline:(Unix.gettimeofday () -. 1.0) e m ~src ~tgt in
        Alcotest.check category "expired deadline widens" A.Inconclusive v.A.category;
        let st = Engine.stats e in
        Alcotest.(check int) "nothing cached" 0 st.Vcache.insertions;
        (* a deadline that dies between depths, not before the first solve *)
        let mh, srch, tgth = hostile_loop_pair 12 in
        let v2 =
          Engine.verify_funcs ~deadline:(Unix.gettimeofday () +. 0.05) e mh ~src:srch ~tgt:tgth
        in
        Alcotest.check category "mid-session death widens" A.Inconclusive v2.A.category;
        let st = Engine.stats e in
        Alcotest.(check int) "still nothing cached" 0 st.Vcache.insertions;
        (* the abandoned sessions corrupt nothing: the retry concludes *)
        let v3 = Engine.verify_funcs e m ~src ~tgt in
        Alcotest.check category "retry concludes" A.Equivalent v3.A.category;
        let st = Engine.stats e in
        Alcotest.(check int) "all three were real tier-2 runs" 3 st.Vcache.tier2_runs;
        Alcotest.(check int) "the conclusive verdict was cached" 1 st.Vcache.insertions);
  ]

let report_tests =
  [
    Alcotest.test_case "engine_stats report renders every counter block" `Quick (fun () ->
        let e = Engine.create () in
        let src = parse "define i8 @f(i8 %x) {\nentry:\n  ret i8 %x\n}" in
        ignore (Engine.verify_funcs e m0 ~src ~tgt:src);
        let buf = Buffer.create 256 in
        let ppf = Format.formatter_of_buffer buf in
        Veriopt.Report.engine_stats ppf e;
        Format.pp_print_flush ppf ();
        let out = Buffer.contents buf in
        List.iter
          (fun block ->
            Alcotest.(check bool) (block ^ " present") true (contains out block))
          [ "cache"; "tier"; "sat"; "VERIOPT_JOBS" ]);
  ]

let suite =
  ( "engine",
    cached_matches_fresh_tests @ tier1_tests @ cache_tests @ par_tests @ satellite_tests
    @ incremental_tests @ breaker_tests @ report_tests )

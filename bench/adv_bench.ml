(* ADV-BENCH: the adversarial pain miner end to end.

   Four phases:

   1. Crash — fork a child miner and SIGKILL it mid-commit; the reopened
      corpus must hold only whole cases (tmp+rename per case file means a
      kill -9 loses at most the in-flight case, never a torn entry).
   2. Mine — a fresh-seed budgeted run must commit enough distinct
      minimized pain cases across several mutator families, with zero
      conclusive-verdict flips through minimization (the concrete-oracle
      guard, audited per commit).
   3. Replay — the corpus replayed twice on fresh engines with its
      recorded conflict budgets and no wall deadline must produce the
      identical verdict stream (the standing-stress determinism contract).
   4. Stress — a short open-loop traffic window replaying the corpus
      through the serving layer must answer every offered request.

   Emits BENCH_adv.json and exits non-zero on any contract violation.

   NOTE: runs before any domain is spawned — phase 1 forks, and OCaml 5
   forbids fork once a domain exists. *)

module Corpus = Veriopt_adversary.Corpus
module Miner = Veriopt_adversary.Miner
module Engine = Veriopt_alive.Engine
module Traffic = Veriopt_serve.Traffic

let fmt = Format.std_formatter

let temp_dir tag =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "veriopt-adv-bench-%d-%s" (Unix.getpid ()) tag)
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Unix.mkdir d 0o755;
  d

let () =
  let smoke = Array.to_list Sys.argv |> List.mem "--smoke" in
  Fmt.pf fmt "=== ADV-BENCH (adversarial pain miner) ===@.@.";
  let failures = ref 0 in
  let check cond msg =
    if not cond then begin
      Fmt.pf fmt "  ERROR: %s@." msg;
      incr failures
    end
  in

  (* phase 1: fork a child miner, SIGKILL it mid-commit *)
  let crash_dir = temp_dir "crash" in
  (match Unix.fork () with
  | 0 ->
    (try
       let corpus = Corpus.load ~dir:crash_dir in
       let cfg =
         { Miner.default_config with Miner.mc_seed = 7; mc_budget_s = 60.; mc_max_cases = 1000 }
       in
       ignore (Miner.mine ~cfg corpus)
     with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.sleepf (if smoke then 1.5 else 3.0);
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid));
  let crashed = Corpus.load ~dir:crash_dir in
  let crash_cases = List.length (Corpus.cases crashed) in
  let crash_stats = Corpus.stats crashed in
  Fmt.pf fmt "crash: SIGKILL mid-mine left %d whole cases, %d torn/skipped@." crash_cases
    crash_stats.Corpus.s_skipped;
  check (crash_stats.Corpus.s_skipped = 0)
    (Fmt.str "%d torn or skipped cases after SIGKILL" crash_stats.Corpus.s_skipped);
  check
    (List.for_all (fun c -> Corpus.decode_pair c <> None) (Corpus.cases crashed))
    "a surviving case failed to decode";
  if not smoke then
    check (crash_cases > 0) "the killed child committed nothing before the signal";

  (* phase 2: fresh-seed budgeted mine *)
  let dir = temp_dir "mine" in
  let corpus = Corpus.load ~dir in
  let budget = if smoke then 5. else 30. in
  let cfg =
    {
      Miner.default_config with
      Miner.mc_seed = 1;
      mc_budget_s = budget;
      mc_max_cases = (if smoke then 6 else 40);
    }
  in
  Fmt.pf fmt "@.mining fresh (seed %d, budget %.0fs)...@." cfg.Miner.mc_seed budget;
  let r = Miner.mine ~cfg corpus in
  Miner.pp_result fmt r;
  let min_cases = if smoke then 3 else 25 in
  let keys =
    List.sort_uniq compare (List.map (fun c -> c.Corpus.c_key) (Corpus.cases corpus))
  in
  check (r.Miner.r_mined >= min_cases)
    (Fmt.str "mined %d cases, need >= %d within %.0fs" r.Miner.r_mined min_cases budget);
  check
    (List.length keys = r.Miner.r_mined)
    (Fmt.str "%d distinct store keys for %d cases" (List.length keys) r.Miner.r_mined);
  check
    (List.length r.Miner.r_families >= if smoke then 2 else 3)
    (Fmt.str "only %d mutator families represented" (List.length r.Miner.r_families));
  check (r.Miner.r_committed_flips = 0)
    (Fmt.str "%d conclusive-verdict flips escaped the minimization oracle guard"
       r.Miner.r_committed_flips);

  (* phase 3: deterministic replay on two fresh engines *)
  let reopened = Corpus.load ~dir in
  check
    (List.length (Corpus.cases reopened) = r.Miner.r_mined)
    "reopen lost a committed case";
  let t0 = Unix.gettimeofday () in
  let once = Miner.replay reopened in
  let replay_s = Unix.gettimeofday () -. t0 in
  let twice = Miner.replay reopened in
  check (List.length once = r.Miner.r_mined) "replay skipped a case";
  List.iter2
    (fun (a : Miner.replayed) (b : Miner.replayed) ->
      check
        (a.Miner.rp_id = b.Miner.rp_id && a.Miner.rp_category = b.Miner.rp_category)
        (Fmt.str "case %d replay nondeterministic: %s vs %s" a.Miner.rp_id a.Miner.rp_category
           b.Miner.rp_category))
    once twice;
  let inconclusive =
    List.length (List.filter (fun r -> r.Miner.rp_category = "inconclusive") once)
  in
  Fmt.pf fmt "@.replay: %d cases twice in %.1fs+, %d still inconclusive at full budget@."
    (List.length once) replay_s inconclusive;

  (* phase 4: standing stress through the serving layer *)
  let engine = Engine.create ~tier1_samples:4 () in
  let stress =
    Miner.stress ~seed:11 ~rate:(if smoke then 30. else 80.)
      ~duration_s:(if smoke then 0.5 else 2.0)
      ~mix_pct:70 ~engine reopened
  in
  (match stress with
  | None -> check false "stress found no replayable queries"
  | Some s ->
    Fmt.pf fmt "@.stress summary:@.";
    Traffic.pp_summary fmt s;
    check (s.Traffic.offered > 0) "stress offered no traffic";
    (* every offered request must resolve — by verdict or by explicit
       rejection, never silently *)
    check
      (s.Traffic.answered = s.Traffic.offered)
      (Fmt.str "stress lost requests: %d of %d offered resolved" s.Traffic.answered
         s.Traffic.offered));

  let json =
    let fields =
      [
        ("bench", "\"adv\"");
        ("smoke", string_of_bool smoke);
        ("crash_survivors", string_of_int crash_cases);
        ("crash_torn", string_of_int crash_stats.Corpus.s_skipped);
        ("mined", string_of_int r.Miner.r_mined);
        ("distinct_keys", string_of_int (List.length keys));
        ("families", string_of_int (List.length r.Miner.r_families));
        ("probes", string_of_int r.Miner.r_probes);
        ("minimize_accepted", string_of_int r.Miner.r_minimize_accepted);
        ("minimize_flip_rejects", string_of_int r.Miner.r_minimize_flip_rejects);
        ("committed_flips", string_of_int r.Miner.r_committed_flips);
        ("mine_wall_s", Fmt.str "%.2f" r.Miner.r_wall_s);
        ("replay_wall_s", Fmt.str "%.2f" replay_s);
        ("replay_inconclusive", string_of_int inconclusive);
        ("failures", string_of_int !failures);
      ]
    in
    "{\n"
    ^ String.concat ",\n" (List.map (fun (k, v) -> Fmt.str "  %S: %s" k v) fields)
    ^ "\n}\n"
  in
  let oc = open_out "BENCH_adv.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf fmt "@.wrote BENCH_adv.json@.";
  if !failures > 0 then begin
    Fmt.pf fmt "adv-bench: %d contract violations@." !failures;
    exit 1
  end;
  Fmt.pf fmt "adv-bench: all mining contracts held.@."

(* SERVE-BENCH: open-loop overload replay against the serving layer.

   Three phases:

   1. Calibrate — closed-loop sustainable throughput of the engine behind
      the serve front end on the hostile workload mix.
   2. Overload replay — open-loop arrivals at 2x the calibrated rate with
      chaos faults enabled (worker kills/hangs, spurious queue-full, client
      disconnects, stalled dispatchers).  The service must answer every
      request (verdict or explicit rejection), keep interactive p99 within
      2x its deadline, and crash nothing.
   3. Drain — graceful shutdown; the engine's fork pool must leave zero
      orphaned processes.

   Emits BENCH_serve.json and exits non-zero on any contract violation.

   NOTE: runs before any domain is spawned — the engine's Proc pool forks,
   and OCaml 5 forbids fork once a domain exists.  The serve layer's own
   workers are systhreads, which are safe. *)

module Engine = Veriopt_alive.Engine
module Serve = Veriopt_serve.Serve
module Traffic = Veriopt_serve.Traffic
module Fault = Veriopt_fault.Fault

let fmt = Format.std_formatter

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt (String.trim s) with Some v -> v | None -> default)
  | None -> default

let () =
  let smoke = Array.to_list Sys.argv |> List.mem "--smoke" in
  Fmt.pf fmt "=== SERVE-BENCH (open-loop overload replay) ===@.@.";
  let engine = Engine.create ~tier1_samples:4 ~isolate:Engine.Proc () in
  let backend =
    match Engine.isolate engine with Engine.Proc -> "proc" | Engine.Domains -> "domains"
  in
  Fmt.pf fmt "engine backend: %s@." backend;
  let config =
    {
      Serve.default_config with
      Serve.queue_capacity = 128;
      workers = 4;
      interactive_deadline_s = 0.1;
      bulk_deadline_s = 2.0;
    }
  in
  let sv = Serve.create ~config ~engine () in

  (* phase 1: calibrate *)
  let cal_n = if smoke then 8 else 40 in
  let sustainable = Traffic.calibrate sv ~seed:101 ~n:cal_n in
  Fmt.pf fmt "calibrated sustainable throughput: %.0f req/s (%d closed-loop queries)@."
    sustainable cal_n;

  (* phase 2: overload replay at 2x sustainable, chaos on *)
  let rate = env_float "VERIOPT_SERVE_RATE" (2. *. sustainable) in
  let duration = env_float "VERIOPT_SERVE_DURATION_S" (if smoke then 0.5 else 4.0) in
  let faults =
    "seed=5,worker_hang=0.03:0.05,queue_full=0.01,client_disconnect=0.02,slow_drain=0.02:0.005"
  in
  (match Fault.configure_string faults with
  | Ok () -> ()
  | Error e ->
    Fmt.pf fmt "ERROR: bad fault spec: %s@." e;
    exit 1);
  Fmt.pf fmt "replaying %.1fs of open-loop traffic at %.0f req/s (2x sustainable), faults: %s@."
    duration rate faults;
  let cfg =
    {
      Traffic.rate;
      duration_s = duration;
      seed = 11;
      interactive_share = 0.25;
      interactive_deadline_s = config.Serve.interactive_deadline_s;
      bulk_deadline_s = config.Serve.bulk_deadline_s;
      dup_share = 0.3;
      source = Veriopt_serve.Workload.Synthetic;
    }
  in
  let summary = Traffic.run sv cfg in
  Fault.disable ();
  Fmt.pf fmt "@.replay summary:@.";
  Traffic.pp_summary fmt summary;

  (* phase 3: graceful drain *)
  let report = Serve.drain ~timeout:5. sv in
  Fmt.pf fmt "@.drain: %d waiters force-shed, %d orphaned workers@." report.Serve.forced_shed
    report.Serve.drain_orphans;

  (* contract checks *)
  let failures = ref 0 in
  let check cond msg =
    if not cond then begin
      Fmt.pf fmt "  ERROR: %s@." msg;
      incr failures
    end
  in
  check (summary.Traffic.answered = summary.Traffic.offered)
    (Fmt.str "answered %d of %d offered requests" summary.Traffic.answered
       summary.Traffic.offered);
  check (report.Serve.drain_orphans = 0)
    (Fmt.str "%d orphaned workers after drain" report.Serve.drain_orphans);
  let p99_cap_ms = 2. *. config.Serve.interactive_deadline_s *. 1e3 in
  check
    (summary.Traffic.p99_interactive_ms <= p99_cap_ms)
    (Fmt.str "interactive p99 %.1fms exceeds 2x deadline (%.0fms)"
       summary.Traffic.p99_interactive_ms p99_cap_ms);
  check
    (summary.Traffic.serve.Serve.engine_calls
     <= summary.Traffic.offered + cal_n - summary.Traffic.serve.Serve.coalesced
        - summary.Traffic.rejected + summary.Traffic.serve.Serve.shed_queue_full
        + summary.Traffic.serve.Serve.shed_displaced + summary.Traffic.serve.Serve.shed_expired)
    "engine call accounting inconsistent with coalesce/shed counters";

  let json =
    Traffic.json_of_summary ~name:"serve"
      ~extra:
        [
          ("backend", Fmt.str "%S" backend);
          ("sustainable_rps", Fmt.str "%.1f" sustainable);
          ("replay_rate_rps", Fmt.str "%.1f" rate);
          ("forced_shed_at_drain", string_of_int report.Serve.forced_shed);
          ("orphans_after_drain", string_of_int report.Serve.drain_orphans);
          ("failures", string_of_int !failures);
        ]
      summary
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf fmt "@.wrote BENCH_serve.json@.";
  if !failures > 0 then begin
    Fmt.pf fmt "serve-bench: %d contract violations@." !failures;
    exit 1
  end;
  Fmt.pf fmt "serve-bench: all overload contracts held.@."

(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation section, plus bechamel microbenchmarks of the
   substrates.

   Usage:
     dune exec bench/main.exe                 -- everything, quick scale
     dune exec bench/main.exe -- table1       -- one experiment
     dune exec bench/main.exe -- --full all   -- paper-sized counts (slow)

   Experiments: dataset table1 table2 table3 fig4 fig5 fig6 fig7 figs8to12
   ablations discussion verify-bench robust-bench sat-bench proc-bench
   incr-bench portfolio-bench store-bench fold-bench micro all. *)

module P = Veriopt.Pipeline
module E = Veriopt.Evaluate
module R = Veriopt.Report
module Trainer = Veriopt_rl.Trainer
module Prompt = Veriopt_llm.Prompt
module S = Veriopt_data.Suite

let fmt = Format.std_formatter

let header title =
  Fmt.pf fmt "@.============================================================@.";
  Fmt.pf fmt "%s@." title;
  Fmt.pf fmt "============================================================@."

(* ------------------------------------------------------------------ *)
(* Evaluation cache: train once, evaluate each model once. *)

type evals = {
  artifacts : P.artifacts;
  base : E.result;
  zero : E.result;
  warm : E.result;
  correctness : E.result;
  latency : E.result;
  zoo : (string * E.result) list;
  llm_compiler : E.result;
}

let build_evals (scale : P.scale) : evals =
  let t0 = Unix.gettimeofday () in
  let progress s = Fmt.pf fmt "[%6.1fs] %s@." (Unix.gettimeofday () -. t0) s in
  let a = P.build ~scale ~progress () in
  let ev ?mode m =
    progress (Fmt.str "evaluating %s" m.Veriopt_llm.Model.name);
    E.run ?mode ~max_conflicts:60_000 ~engine:a.P.engine m a.P.validation
  in
  let pl = a.P.pipeline in
  {
    artifacts = a;
    base = ev a.P.base;
    zero = ev pl.Trainer.stage1.Trainer.model_zero;
    warm = ev ~mode:Prompt.Augmented pl.Trainer.warm;
    correctness = ev ~mode:Prompt.Augmented pl.Trainer.stage2.Trainer.model_correctness;
    latency = ev pl.Trainer.stage3.Trainer.model_latency;
    zoo = List.map (fun (n, m) -> (n, ev m)) a.P.zoo_sft;
    llm_compiler = ev a.P.llm_compiler;
  }

(* ------------------------------------------------------------------ *)
(* Experiments *)

let run_dataset (e : evals) =
  header "DATASET CONSTRUCTION (paper SIV-A)";
  R.dataset_stats fmt ~train:e.artifacts.P.train_stats ~validation:e.artifacts.P.validation_stats;
  Fmt.pf fmt "U_max (80th percentile of instcombine speedups): %.2f@." e.artifacts.P.u_max

let run_table1 (e : evals) =
  header "TABLE I (paper: 73.2% correct, 56.8% copies, 16.4% different-correct)";
  R.table1 fmt e.base

let run_table2 (e : evals) =
  header "TABLE II (paper: ~89.5/89.9% correct, ~1.4% copies, 88.2% different-correct)";
  R.table2 fmt ~correctness:e.correctness ~latency:e.latency

let run_table3 (e : evals) =
  header "TABLE III (paper: Latency -50.68%, Size -17.37%, ICount -45.64% for Model-Latency)";
  R.table3 fmt
    [ ("Latency", e.latency); ("Correctness", e.correctness); ("Qwen-3B", e.base) ]

let run_fig4 (e : evals) =
  header "FIG 4 (training dynamics; paper shows rising reward under both stages)";
  R.fig4 fmt ~which:"a (correctness stage)"
    e.artifacts.P.pipeline.Trainer.stage2.Trainer.correctness_log;
  R.fig4 fmt ~which:"b (latency stage)" e.artifacts.P.pipeline.Trainer.stage3.Trainer.latency_log

let run_fig5 (e : evals) =
  header "FIG 5 (baselines in parameter-size order; Model-Latency wins latency/icount/accuracy)";
  let zoo_with_compiler =
    (* insert LLM-Compiler at its parameter-size position *)
    let rec insert = function
      | ("Qwen-7B-SFT", r) :: rest ->
        ("LLM-Compiler-7B", e.llm_compiler) :: ("Qwen-7B-SFT", r) :: rest
      | x :: rest -> x :: insert rest
      | [] -> [ ("LLM-Compiler-7B", e.llm_compiler) ]
    in
    insert (List.map (fun (n, r) -> (n ^ "-SFT", r)) e.zoo)
  in
  R.fig5 fmt (zoo_with_compiler @ [ ("Model-Latency", e.latency) ])

let run_fig6 (e : evals) =
  header
    "FIG 6 (paper: VeriOpt beats instcombine on 20.1%, loses 22.6%, ties 57.3%; 2.30x vs 2.39x; net +17%)";
  R.fig6 fmt ~latency_model:e.latency

let run_fig7 (e : evals) =
  header "FIG 7 (ablation: each stage of the hierarchy adds improvement)";
  R.fig7 fmt
    [
      ("Qwen-3B (base)", e.base);
      ("Model-Zero", e.zero);
      ("Warm-up", e.warm);
      ("Model-Correctness", e.correctness);
      ("Model-Latency", e.latency);
    ]

let run_figs8to12 (e : evals) =
  header "FIGS 8-12 (case studies)";
  R.figs8to12 fmt e.latency

let run_engine_stats (e : evals) =
  header "VERIFICATION ENGINE (tier / cache / SAT statistics for this run)";
  R.engine_stats fmt e.artifacts.P.engine

(* ------------------------------------------------------------------ *)
(* Ablations of the paper's design choices (SIII-A, SV-D, SVI). *)

module Grpo = Veriopt_rl.Grpo
module Reward = Veriopt_rl.Reward
module Alive = Veriopt_alive.Alive
module Model = Veriopt_llm.Model

(* Ablation A -- I/O testing vs formal verification: how many candidates pass
   a finite test battery but are formally wrong (the overestimation
   LLM-Vectorizer documented and the paper's introduction leans on). *)
let ablation_io_vs_formal (e : evals) =
  Fmt.pf fmt "@.[A] I/O-sample equivalence vs formal verification@.";
  let base = e.artifacts.P.base in
  let candidates =
    List.filter_map
      (fun (s : S.sample) ->
        let g =
          Model.generate base ~mode:Prompt.Generic ~rng:None ~sample_id:s.S.id s.S.modul s.S.src
        in
        match Veriopt_llm.Prompt.answer_of g.Model.completion with
        | Some answer -> (
          match Veriopt_ir.Parser.parse_func_result answer with
          | Ok tgt when Veriopt_ir.Validator.validate_func ~module_:s.S.modul tgt = Ok () ->
            Some (s, tgt)
          | _ -> None)
        | None -> None)
      e.artifacts.P.validation
  in
  let io_pass = ref 0 and formal_pass = ref 0 and io_only = ref 0 and total = ref 0 in
  List.iter
    (fun ((s : S.sample), tgt) ->
      incr total;
      let io =
        match Veriopt_eval.Exec_oracle.equivalent ~samples:32 s.S.modul ~src:s.S.src ~tgt with
        | Veriopt_eval.Exec_oracle.Io_equivalent _ -> true
        | _ -> false
      in
      let formal =
        (Alive.verify_funcs ~max_conflicts:60_000 s.S.modul ~src:s.S.src ~tgt).Alive.category
        = Alive.Equivalent
      in
      if io then incr io_pass;
      if formal then incr formal_pass;
      if io && not formal then incr io_only)
    candidates;
  Fmt.pf fmt
    "  parseable candidates %d: I/O-equivalent %d, formally verified %d,@.  passed I/O but NOT formally verified: %d (the overestimation)@."
    !total !io_pass !formal_pass !io_only

(* Ablation B -- dropping the BLEU shaping term of Eq. 1: the paper keeps it
   to avoid gradient starvation under sparse discrete rewards. *)
let ablation_no_bleu (e : evals) =
  Fmt.pf fmt "@.[B] Eq. 1 with vs without the BLEU shaping term (Model-Zero stage)@.";
  let train = Array.of_list e.artifacts.P.train in
  let run_stage ~use_bleu =
    let model = Model.clone ~name:"ablation" e.artifacts.P.base in
    let rng = Random.State.make [| 5; 55 |] in
    let cfg = Grpo.default_config in
    let final_rewards = ref [] in
    for step = 1 to 120 do
      let s = train.(Random.State.int rng (Array.length train)) in
      let group =
        List.init cfg.Grpo.group_size (fun _ ->
            Model.generate model ~mode:Prompt.Generic ~rng:(Some rng) ~sample_id:s.S.id s.S.modul
              s.S.src)
      in
      let scored =
        List.map
          (fun (g : Model.generation) ->
            let r, _ =
              Reward.correctness_of_completion s.S.modul ~src:s.S.src ~label:s.S.label
                g.Model.completion
            in
            let r = if use_bleu then r else Float.of_int (int_of_float r) in
            ({ Grpo.steps = g.Model.steps; reward = r }, r))
          group
      in
      let rs = Array.of_list (List.map snd scored) in
      let advs = Grpo.advantages rs in
      Grpo.update cfg model (List.mapi (fun i (r, _) -> (r, advs.(i))) scored);
      if step > 100 then
        final_rewards := (Array.fold_left ( +. ) 0. rs /. 6.) :: !final_rewards
    done;
    let avg = List.fold_left ( +. ) 0. !final_rewards /. float_of_int (List.length !final_rewards) in
    (avg, Model.get model "act:rule")
  in
  let with_bleu, rule_with = run_stage ~use_bleu:true in
  let without, rule_without = run_stage ~use_bleu:false in
  Fmt.pf fmt "  with BLEU:    final mean reward %.3f, act:rule logit %+.2f@." with_bleu rule_with;
  Fmt.pf fmt "  without BLEU: final mean reward %.3f, act:rule logit %+.2f@." without rule_without;
  Fmt.pf fmt "  (the continuous term keeps a gradient flowing when discrete rewards are flat)@."

(* Ablation C -- skipping the warm-up SFT: the paper reports direct GRPO on
   augmented prompts is unstable without it (SIII-C2, SV-D). *)
let ablation_no_warmup (e : evals) =
  Fmt.pf fmt "@.[C] Model-Correctness with vs without the warm-up SFT stage@.";
  let opts =
    { Trainer.default_options with Trainer.grpo_steps = e.artifacts.P.scale.P.opts.Trainer.grpo_steps }
  in
  let direct = Trainer.train_correctness ~opts e.artifacts.P.base e.artifacts.P.train in
  let ev_direct =
    E.run ~mode:Prompt.Augmented ~max_conflicts:60_000 direct.Trainer.model_correctness
      e.artifacts.P.validation
  in
  let pct x total = 100. *. float_of_int x /. float_of_int (max 1 total) in
  Fmt.pf fmt "  with warm-up:    %.1f%% verified-correct, %.1f%% different-correct@."
    (pct e.correctness.E.counts.E.correct e.correctness.E.counts.E.total)
    (100. *. E.different_correct_rate e.correctness);
  Fmt.pf fmt "  without warm-up: %.1f%% verified-correct, %.1f%% different-correct@."
    (pct ev_direct.E.counts.E.correct ev_direct.E.counts.E.total)
    (100. *. E.different_correct_rate ev_direct)

(* Ablation D -- the unrolling bound: bounded translation validation loses
   conclusiveness on loopy functions as the bound shrinks (SVI). *)
let ablation_unroll (e : evals) =
  Fmt.pf fmt "@.[D] verifier unroll bound vs inconclusive rate (label pairs)@.";
  let loopy =
    List.filter
      (fun (s : S.sample) -> Veriopt_ir.Cfg.has_loop (Veriopt_ir.Cfg.of_func s.S.src))
      e.artifacts.P.validation
  in
  Fmt.pf fmt "  validation functions with loops: %d@." (List.length loopy);
  List.iter
    (fun unroll ->
      let inconclusive =
        List.length
          (List.filter
             (fun (s : S.sample) ->
               (Alive.verify_funcs ~unroll ~max_conflicts:60_000 s.S.modul ~src:s.S.src
                  ~tgt:s.S.label)
                 .Alive.category
               = Alive.Inconclusive)
             loopy)
      in
      Fmt.pf fmt "  unroll bound %d: %d/%d inconclusive@." unroll inconclusive (List.length loopy))
    [ 1; 2; 4; 8 ]

(* The paper's SVI hypothesis: applied to a larger foundation model, the
   same pipeline should get stronger.  We run the full four-stage curriculum
   from the 32B-surrogate base and compare. *)
let run_discussion (e : evals) =
  header "DISCUSSION (SVI): the pipeline on a larger foundation model";
  let opts = e.artifacts.P.scale.P.opts in
  let base32 = Veriopt_llm.Capability.init ~name:"Qwen-32B" 0.8 in
  let r = Trainer.full_pipeline ~opts base32 e.artifacts.P.train in
  let ev32 =
    E.run ~max_conflicts:60_000 r.Trainer.stage3.Trainer.model_latency e.artifacts.P.validation
  in
  let line name (res : E.result) =
    let lat =
      E.geomean_speedup res.E.rows ~metric:(fun m -> m.E.latency) ~out:E.out_metrics
        ~base:E.src_metrics
    in
    Fmt.pf fmt "  %-28s %5.2fx latency, %5.1f%% verified-correct@." name lat
      (R.pct res.E.counts.E.correct res.E.counts.E.total)
  in
  line "Model-Latency (3B base)" e.latency;
  line "Model-Latency (32B base)" ev32;
  Fmt.pf fmt "  (the paper hypothesizes the gap grows with base-model capability)@."

let run_ablations (e : evals) =
  header "ABLATIONS (design choices from SIII-A, SV-D, SVI)";
  ablation_io_vs_formal e;
  ablation_no_bleu e;
  ablation_no_warmup e;
  ablation_unroll e

(* ------------------------------------------------------------------ *)
(* verify-bench: repeated-group verification throughput — the tiered +
   cached + pooled engine against the uncached sequential SMT path, on a
   GRPO-shaped workload (groups of completions per prompt, prompts
   revisited across rounds).  Emits machine-readable BENCH_verify.json so
   the perf trajectory is tracked across PRs. *)

let run_verify_bench () =
  header "VERIFY-BENCH (tiered + cached engine vs uncached sequential SMT)";
  let module Capability = Veriopt_llm.Capability in
  let module Engine = Veriopt_alive.Engine in
  let module Vcache = Veriopt_alive.Vcache in
  let module Solver = Veriopt_smt.Solver in
  let module Par = Veriopt_par.Par in
  let ds = S.build ~verify:false ~seed0:424242 ~n:16 () in
  let samples = ds.S.samples in
  let base = Capability.base_3b () in
  let rng = Random.State.make [| 2026 |] in
  let group_size = 6 and rounds = 16 in
  let groups =
    List.map
      (fun (s : S.sample) ->
        ( s,
          List.init group_size (fun _ ->
              (Model.generate base ~mode:Prompt.Generic ~rng:(Some rng) ~sample_id:s.S.id
                 s.S.modul s.S.src)
                .Model.completion) ))
      samples
  in
  let workload = List.concat (List.init rounds (fun _ -> groups)) in
  let n_verifications = rounds * group_size * List.length samples in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* baseline: the seed path — uncached, sequential, straight to SMT *)
  Solver.reset_stats ();
  let baseline_verify ((s : S.sample), completions) =
    List.map
      (fun c ->
        match Prompt.answer_of c with
        | None -> Alive.Syntax_error
        | Some answer ->
          (Alive.verify_text ~unroll:4 ~max_conflicts:60_000 s.S.modul ~src:s.S.src
             ~tgt_text:answer)
            .Alive.category)
      completions
  in
  let base_cats, base_secs = time (fun () -> List.concat_map baseline_verify workload) in
  let base_sat = Solver.stats () in
  (* engine: tier 0/1/2 + verdict cache, each group verified on the pool *)
  Solver.reset_stats ();
  let engine = Engine.create () in
  let engine_verify ((s : S.sample), completions) =
    Par.run
      (fun c ->
        (Reward.verify_completion ~engine s.S.modul ~src:s.S.src c).Reward.verdict.Alive.category)
      completions
  in
  let eng_cats, eng_secs = time (fun () -> List.concat_map engine_verify workload) in
  let eng_sat = Solver.stats () in
  let st = Engine.stats engine in
  (* verdict preservation: tier 1 may refine Inconclusive into
     Semantic_error (a concrete counterexample the solver's budget missed);
     any other difference is a bug *)
  let agree = ref 0 and refined = ref 0 and disagree = ref 0 in
  List.iter2
    (fun b e ->
      if b = e then incr agree
      else if b = Alive.Inconclusive && e = Alive.Semantic_error then incr refined
      else incr disagree)
    base_cats eng_cats;
  let per_sec secs =
    float_of_int n_verifications /. if secs <= 0. then epsilon_float else secs
  in
  let speedup = base_secs /. (if eng_secs <= 0. then epsilon_float else eng_secs) in
  let lookups = st.Vcache.hits + st.Vcache.misses in
  let hit_rate = float_of_int st.Vcache.hits /. float_of_int (max 1 lookups) in
  Fmt.pf fmt "  workload: %d samples x %d completions x %d rounds = %d verifications@."
    (List.length samples) group_size rounds n_verifications;
  Fmt.pf fmt "  baseline (uncached sequential SMT): %6.2fs  (%.1f verifications/s)@." base_secs
    (per_sec base_secs);
  Fmt.pf fmt "  engine (tiered+cached, %d jobs):    %6.2fs  (%.1f verifications/s)@."
    (Par.shared_jobs ()) eng_secs (per_sec eng_secs);
  Fmt.pf fmt "  speedup: %.2fx@." speedup;
  Fmt.pf fmt "  cache: %d/%d hits (%.1f%%); tiers: %d concrete cex, %d SMT runs@."
    st.Vcache.hits lookups (100. *. hit_rate) st.Vcache.tier1_hits st.Vcache.tier2_runs;
  Fmt.pf fmt "  sat conflicts: %d (baseline) -> %d (engine)@." base_sat.Solver.conflicts
    eng_sat.Solver.conflicts;
  Fmt.pf fmt "  verdicts: %d agree, %d refined (Inconclusive -> Semantic_error), %d disagree@."
    !agree !refined !disagree;
  let json =
    Fmt.str
      {|{
  "workload": { "samples": %d, "group_size": %d, "rounds": %d, "verifications": %d },
  "baseline": { "seconds": %.4f, "verifications_per_sec": %.2f, "sat_conflicts": %d, "sat_learned": %d, "sat_deleted": %d, "sat_reductions": %d },
  "engine": { "seconds": %.4f, "verifications_per_sec": %.2f, "sat_conflicts": %d, "sat_learned": %d, "sat_deleted": %d, "sat_reductions": %d, "jobs": %d },
  "speedup": %.3f,
  "cache": { "hits": %d, "misses": %d, "insertions": %d, "evictions": %d, "hit_rate": %.4f },
  "tiers": { "tier1_hits": %d, "tier1_misses": %d, "tier2_runs": %d, "tier1_seconds": %.4f, "tier2_seconds": %.4f },
  "verdicts": { "agree": %d, "refined_inconclusive": %d, "disagree": %d }
}
|}
      (List.length samples) group_size rounds n_verifications base_secs (per_sec base_secs)
      base_sat.Solver.conflicts base_sat.Solver.learned base_sat.Solver.deleted
      base_sat.Solver.reductions eng_secs (per_sec eng_secs) eng_sat.Solver.conflicts
      eng_sat.Solver.learned eng_sat.Solver.deleted eng_sat.Solver.reductions
      (Par.shared_jobs ()) speedup st.Vcache.hits st.Vcache.misses st.Vcache.insertions
      st.Vcache.evictions hit_rate st.Vcache.tier1_hits st.Vcache.tier1_misses
      st.Vcache.tier2_runs st.Vcache.tier1_seconds st.Vcache.tier2_seconds !agree !refined
      !disagree
  in
  let oc = open_out "BENCH_verify.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf fmt "  wrote BENCH_verify.json@.";
  if !disagree > 0 then begin
    Fmt.pf fmt "  ERROR: the tiered engine flipped a conclusive verdict@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* robust-bench: the resilience layer under chaos.  Two phases:

   1. Deadline latency: verify a workload laced with SMT-hostile queries
      (bit-blasted mul commutativity) with and without a wall-clock
      deadline, and report p50/p99/max per-call latency for both legs —
      the deadline must bound the tail.

   2. Chaos loop: 100% injected solver timeouts plus parse/oracle/worker
      faults, breaker armed, a GRPO-shaped verification sweep.  Reports
      crash count (must be 0), degraded-verdict rate, breaker trips/skips,
      engine failures absorbed — and checks the soundness invariant: a
      fault may widen a verdict to Inconclusive but never flip it.

   Emits machine-readable BENCH_robust.json. *)

let run_robust_bench () =
  header "ROBUST-BENCH (deadlines, fault injection, circuit breaker)";
  let module Engine = Veriopt_alive.Engine in
  let module Vcache = Veriopt_alive.Vcache in
  let module Par = Veriopt_par.Par in
  let module Fault = Veriopt_fault.Fault in
  Fault.disable ();
  let ds = S.build ~verify:false ~seed0:737373 ~n:12 () in
  let samples = ds.S.samples in
  (* --- phase 1: deadline-bounded tail latency ---------------------- *)
  (* mul commutativity is trivial algebraically and brutal bit-blasted:
     exactly the hostile-completion shape the deadline exists for *)
  let hostile =
    let text op =
      Fmt.str "define i12 @f(i12 %%x, i12 %%y) {\nentry:\n  %%r = mul i12 %s\n  ret i12 %%r\n}"
        op
    in
    let m = Veriopt_ir.Parser.parse_module (text "%x, %y") in
    let src = List.hd m.Veriopt_ir.Ast.funcs in
    let tgt = List.hd (Veriopt_ir.Parser.parse_module (text "%y, %x")).Veriopt_ir.Ast.funcs in
    (m, src, tgt)
  in
  let easy_pairs = List.map (fun (s : S.sample) -> (s.S.modul, s.S.src, s.S.label)) samples in
  let pairs = easy_pairs @ [ hostile; hostile; hostile ] in
  let deadline_budget = 0.05 in
  let run_leg ~with_deadline =
    List.map
      (fun (m, src, tgt) ->
        let t0 = Unix.gettimeofday () in
        let deadline = if with_deadline then Some (t0 +. deadline_budget) else None in
        ignore (Alive.verify_funcs ~unroll:4 ~max_conflicts:10_000 ?deadline m ~src ~tgt);
        Unix.gettimeofday () -. t0)
      pairs
  in
  let pctl latencies p =
    let a = Array.of_list latencies in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then 0. else a.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let summarize latencies =
    (pctl latencies 0.5, pctl latencies 0.99, List.fold_left Float.max 0. latencies)
  in
  let free = run_leg ~with_deadline:false in
  let bounded = run_leg ~with_deadline:true in
  let f50, f99, fmax = summarize free in
  let b50, b99, bmax = summarize bounded in
  let ms x = 1000. *. x in
  Fmt.pf fmt "  deadline phase: %d verifications (%d SMT-hostile), budget %.0fms@."
    (List.length pairs) 3 (ms deadline_budget);
  Fmt.pf fmt "  no deadline:   p50 %7.1fms  p99 %8.1fms  max %8.1fms@." (ms f50) (ms f99)
    (ms fmax);
  Fmt.pf fmt "  with deadline: p50 %7.1fms  p99 %8.1fms  max %8.1fms@." (ms b50) (ms b99)
    (ms bmax);
  (* --- phase 2: chaos loop ---------------------------------------- *)
  let module Capability = Veriopt_llm.Capability in
  let base = Capability.base_3b () in
  let rng = Random.State.make [| 4242 |] in
  let group_size = 6 and rounds = 4 in
  let groups =
    List.map
      (fun (s : S.sample) ->
        ( s,
          List.init group_size (fun _ ->
              (Model.generate base ~mode:Prompt.Generic ~rng:(Some rng) ~sample_id:s.S.id
                 s.S.modul s.S.src)
                .Model.completion) ))
      samples
  in
  let workload = List.concat (List.init rounds (fun _ -> groups)) in
  let n_verifications = rounds * group_size * List.length samples in
  let rcfg = { Reward.default_config with Reward.timeout = Some deadline_budget } in
  (* fault-free reference verdicts, then the same sweep under chaos *)
  let clean_engine = Engine.create () in
  let clean =
    List.concat_map
      (fun ((s : S.sample), completions) ->
        List.map
          (fun c ->
            (Reward.verify_completion ~cfg:rcfg ~engine:clean_engine s.S.modul ~src:s.S.src c)
              .Reward.verdict.Alive.category)
          completions)
      workload
  in
  Reward.reset_engine_failures ();
  (match
     Fault.configure_string "seed=11,solver_timeout=1,parse_corrupt=0.15,oracle_exn=0.1,worker_exn=0.05"
   with
  | Ok () -> ()
  | Error e -> failwith e);
  let chaos_engine = Engine.create ~breaker_k:3 ~breaker_cooldown:8 () in
  let crashes = ref 0 and batch_retries = ref 0 in
  let chaos =
    List.concat_map
      (fun ((s : S.sample), completions) ->
        let verify c =
          (Reward.verify_completion ~cfg:rcfg ~engine:chaos_engine s.S.modul ~src:s.S.src c)
            .Reward.verdict.Alive.category
        in
        match Par.run verify completions with
        | cats -> cats
        | exception Fault.Injected _ ->
          (* a worker task died: retry the whole group sequentially *)
          incr batch_retries;
          List.map verify completions
        | exception _ ->
          incr crashes;
          List.map (fun _ -> Alive.Inconclusive) completions)
      workload
  in
  Fault.disable ();
  let st = Engine.stats chaos_engine in
  let flips = ref 0 and widened = ref 0 and degraded = ref 0 in
  List.iter2
    (fun cl ch ->
      if ch = Alive.Inconclusive then incr degraded;
      if ch <> cl then
        if ch = Alive.Inconclusive then incr widened else incr flips)
    clean chaos;
  let degraded_rate = float_of_int !degraded /. float_of_int (max 1 n_verifications) in
  Fmt.pf fmt
    "  chaos sweep: %d verifications under 100%% solver timeouts + parse/oracle/worker faults@."
    n_verifications;
  Fmt.pf fmt "  crashes: %d uncaught, %d worker-death batch retries, %d engine failures absorbed@."
    !crashes !batch_retries
    (Reward.engine_failures ());
  Fmt.pf fmt "  verdicts: %d widened to inconclusive, %d flipped (must be 0); degraded rate %.1f%%@."
    !widened !flips (100. *. degraded_rate);
  Fmt.pf fmt "  breaker: %d trips, %d tier-2 runs skipped@." st.Vcache.breaker_trips
    st.Vcache.breaker_skips;
  let json =
    Fmt.str
      {|{
  "deadline": {
    "budget_ms": %.1f, "verifications": %d, "hostile": 3,
    "no_deadline": { "p50_ms": %.2f, "p99_ms": %.2f, "max_ms": %.2f },
    "with_deadline": { "p50_ms": %.2f, "p99_ms": %.2f, "max_ms": %.2f }
  },
  "chaos": {
    "verifications": %d,
    "crashes": %d,
    "batch_retries": %d,
    "engine_failures": %d,
    "degraded_rate": %.4f,
    "verdicts_widened": %d,
    "verdicts_flipped": %d,
    "breaker_trips": %d,
    "breaker_skips": %d
  }
}
|}
      (ms deadline_budget) (List.length pairs) (ms f50) (ms f99) (ms fmax) (ms b50) (ms b99)
      (ms bmax) n_verifications !crashes !batch_retries
      (Reward.engine_failures ())
      degraded_rate !widened !flips st.Vcache.breaker_trips st.Vcache.breaker_skips
  in
  let oc = open_out "BENCH_robust.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf fmt "  wrote BENCH_robust.json@.";
  if !flips > 0 || !crashes > 0 then begin
    Fmt.pf fmt "  ERROR: chaos flipped a conclusive verdict or escaped the reward guards@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* sat-bench: the clause-DB reduction knob on SMT-hostile queries.

   Bit-blasted mul commutativity is the chaos bench's canonical hostile
   shape: algebraically trivial, brutal for CDCL.  Each width is verified
   twice — reduction off (the seed solver's behavior) and on — with the
   same conflict budget.  Reports wall time, conflicts/sec and clause-DB
   statistics per leg, checks that no conclusive verdict flips (reduction
   trades search trajectory, never soundness), and emits BENCH_sat.json. *)

let run_sat_bench () =
  header "SAT-BENCH (clause-DB reduction on SMT-hostile queries)";
  let module Solver = Veriopt_smt.Solver in
  let hostile_pair w =
    let text op =
      Fmt.str "define i%d @f(i%d %%x, i%d %%y) {\nentry:\n  %%r = mul i%d %s\n  ret i%d %%r\n}"
        w w w w op w
    in
    let m = Veriopt_ir.Parser.parse_module (text "%x, %y") in
    let src = List.hd m.Veriopt_ir.Ast.funcs in
    let tgt = List.hd (Veriopt_ir.Parser.parse_module (text "%y, %x")).Veriopt_ir.Ast.funcs in
    (w, m, src, tgt)
  in
  let widths = [ 9; 10; 11 ] in
  let pairs = List.map hostile_pair widths in
  let max_conflicts = 10_000 in
  let run_leg ~reduce =
    Solver.reset_stats ();
    let t0 = Unix.gettimeofday () in
    let verdicts =
      List.map
        (fun (w, m, src, tgt) ->
          let t1 = Unix.gettimeofday () in
          let v = Alive.verify_funcs ~unroll:4 ~max_conflicts ~reduce m ~src ~tgt in
          (w, v.Alive.category, Unix.gettimeofday () -. t1))
        pairs
    in
    let secs = Unix.gettimeofday () -. t0 in
    (verdicts, secs, Solver.stats ())
  in
  let off_verdicts, off_secs, off_sat = run_leg ~reduce:false in
  let on_verdicts, on_secs, on_sat = run_leg ~reduce:true in
  let cat_name = function
    | Alive.Equivalent -> "equivalent"
    | Alive.Semantic_error -> "semantic_error"
    | Alive.Syntax_error -> "syntax_error"
    | Alive.Inconclusive -> "inconclusive"
  in
  let conclusive = function Alive.Inconclusive -> false | _ -> true in
  (* Unknown <-> conclusive changes are legitimate trajectory effects of the
     knob under a fixed budget; a conclusive verdict flipping is a bug. *)
  let flips =
    List.fold_left2
      (fun n (w, a, _) (_, b, _) ->
        if conclusive a && conclusive b && a <> b then begin
          Fmt.pf fmt "  ERROR: width %d verdict flipped: %s (off) vs %s (on)@." w (cat_name a)
            (cat_name b);
          n + 1
        end
        else n)
      0 off_verdicts on_verdicts
  in
  let cps secs (sat : Solver.stats) =
    float_of_int sat.Solver.conflicts /. if secs <= 0. then epsilon_float else secs
  in
  let leg_line name secs (sat : Solver.stats) =
    Fmt.pf fmt
      "  %-14s %6.2fs  %8d conflicts (%8.0f/s)  learned %7d, deleted %7d in %d reductions, peak DB %d@."
      name secs sat.Solver.conflicts (cps secs sat) sat.Solver.learned sat.Solver.deleted
      sat.Solver.reductions sat.Solver.db_peak
  in
  Fmt.pf fmt "  queries: bit-blasted mul commutativity at widths %a, %d-conflict budget@."
    Fmt.(list ~sep:comma int)
    widths max_conflicts;
  leg_line "reduction off" off_secs off_sat;
  leg_line "reduction on" on_secs on_sat;
  List.iter2
    (fun (w, a, ta) (_, b, tb) ->
      Fmt.pf fmt "  i%-3d  off: %-12s %7.2fs    on: %-12s %7.2fs@." w (cat_name a) ta (cat_name b)
        tb)
    off_verdicts on_verdicts;
  let speedup = off_secs /. (if on_secs <= 0. then epsilon_float else on_secs) in
  let saved = 100. *. (1. -. (on_secs /. if off_secs <= 0. then epsilon_float else off_secs)) in
  Fmt.pf fmt "  wall time: %.2fs -> %.2fs (%.2fx, %.1f%% saved); conclusive flips: %d@." off_secs
    on_secs speedup saved flips;
  let leg_json (verdicts : (int * Alive.category * float) list) secs (sat : Solver.stats) =
    let per_query =
      String.concat ", "
        (List.map
           (fun (w, c, t) -> Fmt.str {|{ "width": %d, "verdict": "%s", "seconds": %.4f }|} w
              (cat_name c) t)
           verdicts)
    in
    Fmt.str
      {|{ "seconds": %.4f, "conflicts": %d, "conflicts_per_sec": %.0f, "learned": %d, "deleted": %d, "reductions": %d, "db_peak": %d, "queries": [ %s ] }|}
      secs sat.Solver.conflicts (cps secs sat) sat.Solver.learned sat.Solver.deleted
      sat.Solver.reductions sat.Solver.db_peak per_query
  in
  let json =
    Fmt.str
      {|{
  "widths": [ %a ],
  "max_conflicts": %d,
  "reduction_off": %s,
  "reduction_on": %s,
  "speedup": %.3f,
  "wall_time_saved_pct": %.2f,
  "conclusive_flips": %d
}
|}
      Fmt.(list ~sep:comma int)
      widths max_conflicts
      (leg_json off_verdicts off_secs off_sat)
      (leg_json on_verdicts on_secs on_sat)
      speedup saved flips
  in
  let oc = open_out "BENCH_sat.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf fmt "  wrote BENCH_sat.json@.";
  if flips > 0 then begin
    Fmt.pf fmt "  ERROR: clause-DB reduction flipped a conclusive verdict@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* proc-bench: the fork-based isolation backend (--isolate proc).

   Phase 1 (kill latency): one worker slot, 100% worker_hang injection, a
   50ms deadline on the SMT-hostile mul-commutativity pair — every call
   must degrade to an uncached Inconclusive via SIGKILL within ~2x the
   budget.  An easy query between kills reads the replacement worker's pid
   notice and resets the slot's failure backoff, so the sweep measures kill
   latency, not backoff sleep.

   Phase 2 (verdict agreement): the verify-bench workload (dataset labels +
   hand-written pairs) through the proc backend vs the direct in-process
   call; a conclusive-verdict flip is a correctness bug and exits 1.

   Emits BENCH_proc.json.  Runs FIRST in the dispatch: OCaml 5 refuses to
   fork once any domain exists, so a training leg before this one would
   force the skip path. *)

let run_proc_bench () =
  header "PROC-BENCH (forked workers: SIGKILL deadlines, respawn, agreement)";
  let module Engine = Veriopt_alive.Engine in
  let module Vproc = Veriopt_vproc.Vproc in
  let module Fault = Veriopt_fault.Fault in
  let module A = Veriopt_alive.Alive in
  Fault.disable ();
  let skip reason =
    Fmt.pf fmt "  %s; skipping@." reason;
    let oc = open_out "BENCH_proc.json" in
    output_string oc "{ \"skipped\": true }\n";
    close_out oc;
    Fmt.pf fmt "  wrote BENCH_proc.json@."
  in
  if not (Vproc.available ()) then skip "fork unavailable (VERIOPT_NO_FORK or non-Unix)"
  else begin
    Unix.putenv "VERIOPT_PROC_JOBS" "1";
    let e = Engine.create ~tier1_samples:0 ~isolate:Engine.Proc () in
    Unix.putenv "VERIOPT_PROC_JOBS" "";
    if Engine.isolate e <> Engine.Proc then
      skip "fork refused (a domain already exists in this process)"
    else begin
      let hostile_m, hostile_src, hostile_tgt =
        let text op =
          Fmt.str
            "define i12 @f(i12 %%x, i12 %%y) {\nentry:\n  %%r = mul i12 %s\n  ret i12 %%r\n}" op
        in
        let m = Veriopt_ir.Parser.parse_module (text "%x, %y") in
        ( m,
          List.hd m.Veriopt_ir.Ast.funcs,
          List.hd (Veriopt_ir.Parser.parse_module (text "%y, %x")).Veriopt_ir.Ast.funcs )
      in
      let easy_m =
        Veriopt_ir.Parser.parse_module
          "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 0\n  ret i8 %r\n}"
      in
      let easy_src = List.hd easy_m.Veriopt_ir.Ast.funcs in
      let easy_tgt =
        List.hd
          (Veriopt_ir.Parser.parse_module "define i8 @f(i8 %x) {\nentry:\n  ret i8 %x\n}")
            .Veriopt_ir.Ast.funcs
      in
      (* --- phase 1: hard-kill latency under 100% worker_hang --------- *)
      let budget = 0.05 in
      let sweeps = 30 in
      Vproc.reset_stats ();
      let kill_lat = ref [] in
      let non_degraded = ref 0 in
      for i = 1 to sweeps do
        (match Fault.configure_string "seed=7,worker_hang=1" with
        | Ok () -> ()
        | Error e -> failwith e);
        let t0 = Unix.gettimeofday () in
        let v =
          Engine.verify_funcs ~deadline:(t0 +. budget) e hostile_m ~src:hostile_src
            ~tgt:hostile_tgt
        in
        kill_lat := (Unix.gettimeofday () -. t0) :: !kill_lat;
        if v.A.category <> A.Inconclusive then incr non_degraded;
        Fault.disable ();
        (* distinct budget => distinct cache key => a real worker round trip *)
        ignore
          (Engine.verify_funcs ~max_conflicts:(60_000 + i) e easy_m ~src:easy_src
             ~tgt:easy_tgt)
      done;
      let pctl latencies p =
        let a = Array.of_list latencies in
        Array.sort compare a;
        let n = Array.length a in
        if n = 0 then 0. else a.(min (n - 1) (int_of_float (p *. float_of_int n)))
      in
      let ms x = 1000. *. x in
      let k50 = pctl !kill_lat 0.5
      and k99 = pctl !kill_lat 0.99
      and kmax = List.fold_left Float.max 0. !kill_lat in
      let within_2x = k99 <= 2. *. budget in
      let st = Vproc.stats () in
      Fmt.pf fmt "  kill sweep: %d hostile calls at %.0fms budget, %d degraded@." sweeps
        (ms budget) (sweeps - !non_degraded);
      Fmt.pf fmt "  kill latency: p50 %.1fms  p99 %.1fms  max %.1fms  (2x budget: %s)@."
        (ms k50) (ms k99) (ms kmax)
        (if within_2x then "within" else "EXCEEDED");
      Fmt.pf fmt "  workers: %d spawned, %d killed, %d crashed, %d respawned, %d frames@."
        st.Vproc.spawned st.Vproc.killed st.Vproc.crashed st.Vproc.respawned st.Vproc.frames;
      (* --- phase 2: verdict agreement vs the in-process backend ------ *)
      let ds = S.build ~verify:false ~seed0:424242 ~n:12 () in
      let handwritten =
        List.filter_map
          (fun (src_text, tgt_text) ->
            let m = Veriopt_ir.Parser.parse_module (src_text ^ "\n" ^ tgt_text) in
            match m.Veriopt_ir.Ast.funcs with
            | [ src; tgt ] -> Some (m, src, tgt)
            | _ -> None)
          [
            ( "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}",
              "define i8 @g(i8 %x) {\nentry:\n  %r = add i8 %x, 2\n  ret i8 %r\n}" );
            ( "define i16 @f(i16 %x) {\nentry:\n  %r = mul i16 %x, 2\n  ret i16 %r\n}",
              "define i16 @g(i16 %x) {\nentry:\n  %r = shl i16 %x, 1\n  ret i16 %r\n}" );
          ]
      in
      let pairs =
        List.map (fun (s : S.sample) -> (s.S.modul, s.S.src, s.S.label)) ds.S.samples
        @ handwritten
      in
      let checked = ref 0 and flips = ref 0 in
      List.iter
        (fun (m, src, tgt) ->
          let direct = A.verify_funcs ~unroll:4 ~max_conflicts:10_000 m ~src ~tgt in
          let proc =
            Engine.verify_funcs ~unroll:4 ~max_conflicts:10_000 e m ~src ~tgt
          in
          incr checked;
          let conclusive c = c = A.Equivalent || c = A.Semantic_error in
          if
            conclusive direct.A.category && conclusive proc.A.category
            && direct.A.category <> proc.A.category
          then begin
            incr flips;
            Fmt.pf fmt "  FLIP: direct=%s proc=%s@." direct.A.message proc.A.message
          end)
        pairs;
      Fmt.pf fmt "  agreement: %d pairs checked, %d conclusive flips@." !checked !flips;
      let json =
        Fmt.str
          {|{
  "kill": {
    "deadline_ms": %.1f, "sweeps": %d, "degraded": %d,
    "p50_ms": %.2f, "p99_ms": %.2f, "max_ms": %.2f, "within_2x": %b
  },
  "workers": {
    "spawned": %d, "killed": %d, "crashed": %d, "respawned": %d, "frames": %d
  },
  "agreement": { "checked": %d, "flips": %d }
}
|}
          (ms budget) sweeps (sweeps - !non_degraded) (ms k50) (ms k99) (ms kmax) within_2x
          st.Vproc.spawned st.Vproc.killed st.Vproc.crashed st.Vproc.respawned st.Vproc.frames
          !checked !flips
      in
      let oc = open_out "BENCH_proc.json" in
      output_string oc json;
      close_out oc;
      Fmt.pf fmt "  wrote BENCH_proc.json@.";
      if !flips > 0 || !non_degraded > 0 then begin
        Fmt.pf fmt
          "  ERROR: the proc backend flipped a conclusive verdict or failed to degrade@.";
        exit 1
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* incr-bench: incremental solver sessions + iterative-deepening unroll.

   The workload is loops with DATA-DEPENDENT exits: the iteration count is
   an input, so every unroll depth admits real terminating executions and
   proving depth d means re-establishing every frame k < d of a commuted
   mul chain.  That is the shape where deepening has something to reuse —
   a counting loop with a fixed bound is vacuous at shallow depths (the
   exit is unreachable, the query propagates to Unsat with no search), so
   all its proof work lands once at the final depth in every leg.  Each
   pair is verified three ways under the same conflict budget:

   - incremental: one solver session walks the 1 -> 2 -> 4 schedule,
     retaining learned clauses, activities and the bit-blast memo;
   - fresh-per-depth: the same schedule, but every depth is a fresh
     single-shot solve — what deepening costs without the session;
   - single-shot: one solve at the full bound, the agreement baseline.

   A fourth leg replays the incremental schedule through the forked proc
   backend (skipped gracefully when fork is refused).  Conclusive verdicts
   must agree across all legs; wall time and conflicts per leg, the
   session counters and the incremental-vs-fresh speedup land in
   BENCH_incr.json.  Like proc-bench, this leg runs before anything spawns
   a domain so the proc comparison can fork. *)

let run_incr_bench () =
  header "INCR-BENCH (incremental sessions + iterative-deepening unroll)";
  let module Solver = Veriopt_smt.Solver in
  let module Engine = Veriopt_alive.Engine in
  let module Vproc = Veriopt_vproc.Vproc in
  let unroll = 4 in
  let max_conflicts = 200_000 in
  let schedule = Alive.unroll_schedule unroll in
  (* fork the proc pool first, while the process is still domain-free *)
  let proc_engine =
    if not (Vproc.available ()) then None
    else begin
      Unix.putenv "VERIOPT_PROC_JOBS" "1";
      let e = Engine.create ~tier1_samples:0 ~isolate:Engine.Proc () in
      Unix.putenv "VERIOPT_PROC_JOBS" "";
      if Engine.isolate e = Engine.Proc then Some e else None
    end
  in
  (* %z iterations of s <- (s * y) + k, returning the accumulator: the exit
     is data-dependent, so depth d's proof covers z in {0..d-1} and must
     re-prove mul commutativity for every frame below d. *)
  let chain_pair ?(src_k = 3) ?(tgt_k = 3) w =
    let text mul k =
      Fmt.str
        "define i%d @f(i%d %%x, i%d %%y, i%d %%z) {\nentry:\n  br label %%h\nh:\n  %%i = phi \
         i%d [ 0, %%entry ], [ %%i2, %%b ]\n  %%s = phi i%d [ %%x, %%entry ], [ %%s2, %%b ]\n  \
         %%c = icmp eq i%d %%i, %%z\n  br i1 %%c, label %%x, label %%b\nb:\n  %%m = mul i%d \
         %s\n  %%s2 = add i%d %%m, %d\n  %%i2 = add i%d %%i, 1\n  br label %%h\nx:\n  ret i%d \
         %%s\n}"
        w w w w w w w w mul w k w w
    in
    let m = Veriopt_ir.Parser.parse_module (text "%s, %y" src_k) in
    ( m,
      List.hd m.Veriopt_ir.Ast.funcs,
      List.hd (Veriopt_ir.Parser.parse_module (text "%y, %s" tgt_k)).Veriopt_ir.Ast.funcs )
  in
  let count_pair bound ret =
    let src =
      Fmt.str
        "define i32 @f(i32 %%n) {\nentry:\n  br label %%h\nh:\n  %%i = phi i32 [ 0, %%entry ], \
         [ %%i2, %%b ]\n  %%c = icmp slt i32 %%i, %d\n  br i1 %%c, label %%b, label %%x\nb:\n  \
         %%i2 = add i32 %%i, 1\n  br label %%h\nx:\n  ret i32 %%i\n}"
        bound
    in
    let tgt = Fmt.str "define i32 @f(i32 %%n) {\nentry:\n  ret i32 %d\n}" ret in
    let m = Veriopt_ir.Parser.parse_module src in
    ( m,
      List.hd m.Veriopt_ir.Ast.funcs,
      List.hd (Veriopt_ir.Parser.parse_module tgt).Veriopt_ir.Ast.funcs )
  in
  let pairs =
    [
      ("mul-chain-i7", chain_pair 7);
      ("mul-chain-i7-k11", chain_pair ~src_k:11 ~tgt_k:11 7);
      ("mul-chain-i7-k13", chain_pair ~src_k:13 ~tgt_k:13 7);
      ("mul-chain-i7-wrong", chain_pair ~src_k:3 ~tgt_k:4 7);
      ("count-3", count_pair 3 3);
      ("count-3-wrong", count_pair 3 4);
      ("count-100", count_pair 100 100);
    ]
  in
  let cat_name = function
    | Alive.Equivalent -> "equivalent"
    | Alive.Semantic_error -> "semantic_error"
    | Alive.Syntax_error -> "syntax_error"
    | Alive.Inconclusive -> "inconclusive"
  in
  let conclusive = function Alive.Inconclusive -> false | _ -> true in
  let run_leg f =
    Solver.reset_stats ();
    let t0 = Unix.gettimeofday () in
    let verdicts =
      List.map
        (fun (name, (m, src, tgt)) ->
          let t1 = Unix.gettimeofday () in
          let c = f m src tgt in
          (name, c, Unix.gettimeofday () -. t1))
        pairs
    in
    (verdicts, Unix.gettimeofday () -. t0, Solver.stats ())
  in
  let incr_verdicts, incr_secs, incr_sat =
    run_leg (fun m src tgt ->
        (Alive.verify_funcs ~unroll ~max_conflicts ~incremental:true m ~src ~tgt).Alive.category)
  in
  let fresh_verdicts, fresh_secs, fresh_sat =
    run_leg (fun m src tgt ->
        (* the deepening policy without the session: a fresh full solve at
           every depth, stopping exactly where the incremental loop stops *)
        let rec go = function
          | [] -> assert false
          | d :: rest ->
            let v = Alive.verify_funcs ~unroll:d ~max_conflicts ~incremental:false m ~src ~tgt in
            if
              rest = []
              || v.Alive.category = Alive.Semantic_error
              || v.Alive.category = Alive.Inconclusive
            then v.Alive.category
            else go rest
        in
        go schedule)
  in
  let single_verdicts, single_secs, single_sat =
    run_leg (fun m src tgt ->
        (Alive.verify_funcs ~unroll ~max_conflicts ~incremental:false m ~src ~tgt).Alive.category)
  in
  let count_flips name a b =
    List.fold_left2
      (fun n (pair, ca, _) (_, cb, _) ->
        if conclusive ca && conclusive cb && ca <> cb then begin
          Fmt.pf fmt "  ERROR: %s flip on %s: %s vs %s@." name pair (cat_name ca) (cat_name cb);
          n + 1
        end
        else n)
      0 a b
  in
  let flips_single = count_flips "incremental-vs-single-shot" incr_verdicts single_verdicts in
  let flips_fresh = count_flips "incremental-vs-fresh-per-depth" incr_verdicts fresh_verdicts in
  let proc =
    match proc_engine with
    | None ->
      Fmt.pf fmt "  proc leg: fork unavailable or refused; skipping@.";
      None
    | Some e ->
      let verdicts, secs, _ =
        run_leg (fun m src tgt ->
            (Engine.verify_funcs ~unroll ~max_conflicts ~incremental:true e m ~src ~tgt)
              .Alive.category)
      in
      Some (verdicts, secs, count_flips "proc-vs-single-shot" verdicts single_verdicts)
  in
  let leg_line name secs (sat : Solver.stats) =
    Fmt.pf fmt "  %-16s %6.2fs  %8d conflicts, %6d restarts, %d sessions (%d reused checks)@."
      name secs sat.Solver.conflicts sat.Solver.restarts sat.Solver.sessions
      sat.Solver.session_reuse
  in
  Fmt.pf fmt "  %d loop pairs, unroll schedule %a, %d-conflict budget@." (List.length pairs)
    Fmt.(list ~sep:(any " -> ") int)
    schedule max_conflicts;
  leg_line "incremental" incr_secs incr_sat;
  leg_line "fresh-per-depth" fresh_secs fresh_sat;
  leg_line "single-shot" single_secs single_sat;
  (match proc with
  | Some (_, secs, _) -> Fmt.pf fmt "  %-16s %6.2fs  (worker-side counters)@." "proc" secs
  | None -> ());
  List.iter2
    (fun (name, a, ta) (_, b, tb) ->
      Fmt.pf fmt "  %-14s incr: %-13s %6.2fs    fresh: %-13s %6.2fs@." name (cat_name a) ta
        (cat_name b) tb)
    incr_verdicts fresh_verdicts;
  let speedup = fresh_secs /. if incr_secs <= 0. then epsilon_float else incr_secs in
  let flips = flips_single + flips_fresh + match proc with Some (_, _, f) -> f | None -> 0 in
  Fmt.pf fmt "  deepening wall time: %.2fs fresh -> %.2fs incremental (%.2fx); flips: %d@."
    fresh_secs incr_secs speedup flips;
  let leg_json verdicts secs (sat : Solver.stats) =
    let per_query =
      String.concat ", "
        (List.map
           (fun (name, c, t) ->
             Fmt.str {|{ "pair": "%s", "verdict": "%s", "seconds": %.4f }|} name (cat_name c) t)
           verdicts)
    in
    Fmt.str
      {|{ "seconds": %.4f, "conflicts": %d, "restarts": %d, "sessions": %d, "session_reuse": %d, "queries": [ %s ] }|}
      secs sat.Solver.conflicts sat.Solver.restarts sat.Solver.sessions sat.Solver.session_reuse
      per_query
  in
  let proc_json =
    match proc with
    | None -> {|{ "skipped": true }|}
    | Some (verdicts, secs, f) ->
      let per_query =
        String.concat ", "
          (List.map
             (fun (name, c, t) ->
               Fmt.str {|{ "pair": "%s", "verdict": "%s", "seconds": %.4f }|} name (cat_name c) t)
             verdicts)
      in
      Fmt.str {|{ "seconds": %.4f, "flips": %d, "queries": [ %s ] }|} secs f per_query
  in
  let json =
    Fmt.str
      {|{
  "unroll": %d,
  "schedule": [ %a ],
  "max_conflicts": %d,
  "incremental": %s,
  "fresh_per_depth": %s,
  "single_shot": %s,
  "proc": %s,
  "speedup_vs_fresh": %.3f,
  "conclusive_flips": %d
}
|}
      unroll
      Fmt.(list ~sep:comma int)
      schedule max_conflicts
      (leg_json incr_verdicts incr_secs incr_sat)
      (leg_json fresh_verdicts fresh_secs fresh_sat)
      (leg_json single_verdicts single_secs single_sat)
      proc_json speedup flips
  in
  let oc = open_out "BENCH_incr.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf fmt "  wrote BENCH_incr.json@.";
  if speedup < 1.3 then
    Fmt.pf fmt "  WARNING: incremental speedup %.2fx below the 1.3x target@." speedup;
  if flips > 0 then begin
    Fmt.pf fmt "  ERROR: the incremental schedule flipped a conclusive verdict@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* portfolio-bench: diversified SAT portfolio + cube-and-conquer racing.

   The workload is the SMT-hostile shape of this codebase: mul
   commutativity, algebraically trivial and brutal bit-blasted, as flat
   pairs at growing widths plus a mul-chain loop pair, with one deliberately
   wrong pair so the counterexample path races too.  Each pair is verified
   two ways under the same conflict budget:

   - single: today's solver, one in-process [Alive.verify_funcs] call;
   - portfolio: [Engine] with [~portfolio:4 ~cube_k:2] — a 500-conflict
     parent probe, then four racing legs across the fork pool (cube legs
     from the probe's top VSIDS variables, diversified full-query members
     for the rest), first conclusive verdict wins, losers SIGKILLed.

   Conclusive verdicts must agree (flips exit nonzero), no worker may
   outlive the engine (orphans exit nonzero), and the wall-time speedup,
   winner-config histogram, cancellation/wasted-work counters and reap
   promptness land in BENCH_portfolio.json.  Runs before anything spawns a
   domain so the pool can fork. *)

let run_portfolio_bench () =
  header "PORTFOLIO-BENCH (diversified SAT racing + cube-and-conquer)";
  let module Portfolio = Veriopt_smt.Portfolio in
  let module Engine = Veriopt_alive.Engine in
  let module Vproc = Veriopt_vproc.Vproc in
  let portfolio = 4 and cube_k = 2 in
  let unroll = 4 in
  (* large enough that every pair below actually concludes in both legs:
     the speedup is only meaningful when nobody hits the budget *)
  let max_conflicts = 2_000_000 in
  (* fork the racing pools first, while the process is still domain-free:
     one engine for cube-and-conquer, one with cube_k 0 for the
     pure-portfolio cancellation phase *)
  let engine =
    if not (Vproc.available ()) then None
    else begin
      let e = Engine.create ~tier1_samples:0 ~portfolio ~cube_k () in
      if Engine.portfolio e > 1 then
        Some (e, Engine.create ~tier1_samples:0 ~portfolio ~cube_k:0 ())
      else begin
        Engine.shutdown e;
        None
      end
    end
  in
  let mul_pair ?(delta = 0) w =
    let flat op tail =
      Fmt.str "define i%d @f(i%d %%x, i%d %%y) {\nentry:\n  %%r = mul i%d %s\n%s}" w w w w op
        tail
    in
    let src_text = flat "%x, %y" (Fmt.str "  ret i%d %%r\n" w) in
    let tgt_text =
      if delta = 0 then flat "%y, %x" (Fmt.str "  ret i%d %%r\n" w)
      else flat "%y, %x" (Fmt.str "  %%r2 = add i%d %%r, %d\n  ret i%d %%r2\n" w delta w)
    in
    let m = Veriopt_ir.Parser.parse_module src_text in
    ( m,
      List.hd m.Veriopt_ir.Ast.funcs,
      List.hd (Veriopt_ir.Parser.parse_module tgt_text).Veriopt_ir.Ast.funcs )
  in
  (* the incr-bench chain shape: %z iterations of s <- (s * y) + 3, with the
     mul commuted between source and target *)
  let chain_pair w =
    let text mul =
      Fmt.str
        "define i%d @f(i%d %%x, i%d %%y, i%d %%z) {\nentry:\n  br label %%h\nh:\n  %%i = phi \
         i%d [ 0, %%entry ], [ %%i2, %%b ]\n  %%s = phi i%d [ %%x, %%entry ], [ %%s2, %%b ]\n  \
         %%c = icmp eq i%d %%i, %%z\n  br i1 %%c, label %%x, label %%b\nb:\n  %%m = mul i%d \
         %s\n  %%s2 = add i%d %%m, 3\n  %%i2 = add i%d %%i, 1\n  br label %%h\nx:\n  ret i%d \
         %%s\n}"
        w w w w w w w w mul w w w
    in
    let m = Veriopt_ir.Parser.parse_module (text "%s, %y") in
    ( m,
      List.hd m.Veriopt_ir.Ast.funcs,
      List.hd (Veriopt_ir.Parser.parse_module (text "%y, %s")).Veriopt_ir.Ast.funcs )
  in
  (* i9 is the heavyweight (~a minute single-solver on a dev box); i10+
     climbs past two minutes apiece, too slow for a gate bench *)
  let pairs =
    [
      ("mul-comm-i8", mul_pair 8);
      ("mul-comm-i9", mul_pair 9);
      ("mul-comm-i9-wrong", mul_pair ~delta:1 9);
      ("mul-chain-i7", chain_pair 7);
    ]
  in
  let cat_name = function
    | Alive.Equivalent -> "equivalent"
    | Alive.Semantic_error -> "semantic_error"
    | Alive.Syntax_error -> "syntax_error"
    | Alive.Inconclusive -> "inconclusive"
  in
  let conclusive = function Alive.Inconclusive -> false | _ -> true in
  let run_leg f =
    let t0 = Unix.gettimeofday () in
    let verdicts =
      List.map
        (fun (name, (m, src, tgt)) ->
          let t1 = Unix.gettimeofday () in
          let c = f m src tgt in
          (name, c, Unix.gettimeofday () -. t1))
        pairs
    in
    (verdicts, Unix.gettimeofday () -. t0)
  in
  let single_verdicts, single_secs =
    run_leg (fun m src tgt ->
        (Alive.verify_funcs ~unroll ~max_conflicts m ~src ~tgt).Alive.category)
  in
  match engine with
  | None ->
    Fmt.pf fmt "  fork unavailable or refused; portfolio leg skipped@.";
    let oc = open_out "BENCH_portfolio.json" in
    output_string oc {|{ "skipped": true }
|};
    close_out oc;
    Fmt.pf fmt "  wrote BENCH_portfolio.json@."
  | Some (e, e_pure) ->
    Portfolio.reset_stats ();
    Vproc.reset_stats ();
    let race_verdicts, race_secs =
      run_leg (fun m src tgt ->
          (Engine.verify_funcs ~unroll ~max_conflicts e m ~src ~tgt).Alive.category)
    in
    (* cancellation phase: with cube_k 0 the probe's failure spawns one
       whole-query cube leg plus three diversified full-query members; the
       first to conclude wins and the rest are SIGKILLed mid-flight, which
       is what pins loser reaping and the reap-promptness ratio *)
    let pure_t0 = Unix.gettimeofday () in
    let pure_m, pure_src, pure_tgt = mul_pair 8 in
    let pure_v =
      Engine.verify_funcs ~unroll ~max_conflicts e_pure pure_m ~src:pure_src ~tgt:pure_tgt
    in
    let pure_secs = Unix.gettimeofday () -. pure_t0 in
    Engine.shutdown e;
    Engine.shutdown e_pure;
    let orphans = Engine.orphans e + Engine.orphans e_pure in
    let p = Portfolio.stats () in
    let hist = Portfolio.winner_histogram () in
    let flips =
      List.fold_left2
        (fun n (pair, cs, _) (_, cp, _) ->
          if conclusive cs && conclusive cp && cs <> cp then begin
            Fmt.pf fmt "  ERROR: portfolio flip on %s: %s vs %s@." pair (cat_name cs)
              (cat_name cp);
            n + 1
          end
          else n)
        0 single_verdicts race_verdicts
    in
    Fmt.pf fmt "  %d hostile pairs, %d-conflict budget, portfolio %d, cube_k %d@."
      (List.length pairs) max_conflicts portfolio cube_k;
    List.iter2
      (fun (name, cs, ts) (_, cp, tp) ->
        Fmt.pf fmt "  %-20s single: %-14s %6.2fs    portfolio: %-14s %6.2fs@." name
          (cat_name cs) ts (cat_name cp) tp)
      single_verdicts race_verdicts;
    let speedup = single_secs /. if race_secs <= 0. then epsilon_float else race_secs in
    Fmt.pf fmt "  wall time: %.2fs single -> %.2fs portfolio (%.2fx); flips: %d@." single_secs
      race_secs speedup flips;
    Fmt.pf fmt "  pure race (cube_k 0, mul-comm-i8): %s in %.2fs@." (cat_name pure_v.Alive.category)
      pure_secs;
    Fmt.pf fmt
      "  %d races (%d full-member wins, %d cube splits, %d cube cex, %d cube refutations, %d \
       join refutations)@."
      p.Portfolio.races p.Portfolio.race_wins p.Portfolio.cube_splits p.Portfolio.cube_cex
      p.Portfolio.cube_refutations p.Portfolio.join_refutations;
    Fmt.pf fmt
      "  %d losers cancelled, %d conflicts wasted, %d units merged, reap ratio max %.2f, %d \
       orphans@."
      p.Portfolio.losers_cancelled p.Portfolio.wasted_conflicts p.Portfolio.units_merged
      p.Portfolio.reap_ratio_max orphans;
    (match hist with
    | [] -> ()
    | _ ->
      Fmt.pf fmt "  winners: %s@."
        (String.concat ", " (List.map (fun (l, n) -> Fmt.str "%s:%d" l n) hist)));
    let leg_json verdicts secs =
      let per_query =
        String.concat ", "
          (List.map
             (fun (name, c, t) ->
               Fmt.str {|{ "pair": "%s", "verdict": "%s", "seconds": %.4f }|} name (cat_name c)
                 t)
             verdicts)
      in
      Fmt.str {|{ "seconds": %.4f, "queries": [ %s ] }|} secs per_query
    in
    let hist_json =
      String.concat ", " (List.map (fun (l, n) -> Fmt.str {|"%s": %d|} l n) hist)
    in
    let json =
      Fmt.str
        {|{
  "portfolio": %d,
  "cube_k": %d,
  "max_conflicts": %d,
  "single": %s,
  "portfolio_leg": %s,
  "pure_race": { "pair": "mul-comm-i8", "verdict": "%s", "seconds": %.4f },
  "speedup": %.3f,
  "conclusive_flips": %d,
  "races": %d,
  "race_wins": %d,
  "cube_splits": %d,
  "cube_cex": %d,
  "cube_refutations": %d,
  "join_refutations": %d,
  "losers_cancelled": %d,
  "wasted_conflicts": %d,
  "units_merged": %d,
  "reap_ratio_max": %.3f,
  "winner_hist": { %s },
  "orphans": %d
}
|}
        portfolio cube_k max_conflicts
        (leg_json single_verdicts single_secs)
        (leg_json race_verdicts race_secs)
        (cat_name pure_v.Alive.category)
        pure_secs speedup flips p.Portfolio.races p.Portfolio.race_wins p.Portfolio.cube_splits
        p.Portfolio.cube_cex p.Portfolio.cube_refutations p.Portfolio.join_refutations
        p.Portfolio.losers_cancelled p.Portfolio.wasted_conflicts p.Portfolio.units_merged
        p.Portfolio.reap_ratio_max hist_json orphans
    in
    let oc = open_out "BENCH_portfolio.json" in
    output_string oc json;
    close_out oc;
    Fmt.pf fmt "  wrote BENCH_portfolio.json@.";
    if speedup < 1.5 then
      Fmt.pf fmt "  WARNING: portfolio speedup %.2fx below the 1.5x target@." speedup;
    if p.Portfolio.losers_cancelled = 0 then
      Fmt.pf fmt "  WARNING: no race cancelled a loser (every member finished together?)@.";
    if p.Portfolio.reap_ratio_max > 1.5 then
      Fmt.pf fmt "  WARNING: losers outlived a winner %.2fx past its finish (1.5x target)@."
        p.Portfolio.reap_ratio_max;
    if conclusive pure_v.Alive.category && pure_v.Alive.category <> Alive.Equivalent then begin
      Fmt.pf fmt "  ERROR: the pure race flipped mul-comm-i8 to %s@."
        (cat_name pure_v.Alive.category);
      exit 1
    end;
    if orphans > 0 then begin
      Fmt.pf fmt "  ERROR: %d workers outlived the engine shutdown@." orphans;
      exit 1
    end;
    if flips > 0 then begin
      Fmt.pf fmt "  ERROR: the portfolio flipped a conclusive verdict@.";
      exit 1
    end

(* ------------------------------------------------------------------ *)
(* The disk-backed verdict store: cold fill vs warm rerun on a
   repeated-group workload.  Gates: warm >= 3x faster, 100% verdict
   agreement, zero corrupt entries served, zero orphans.
   Emits BENCH_store.json. *)

let run_store_bench () =
  header "STORE-BENCH (disk-backed verdict store, cold fill vs warm rerun)";
  let module Engine = Veriopt_alive.Engine in
  let module Store = Veriopt_store.Store in
  let module Vcache = Veriopt_alive.Vcache in
  let module Workload = Veriopt_serve.Workload in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "veriopt-store-bench-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Unix.mkdir dir 0o755;
  (* a repeated-group stream: each distinct query appears three times, once
     verbatim and twice alpha-renamed — the shape GRPO groups and serve
     replicas actually produce *)
  let n_distinct = 14 in
  let queries =
    List.concat_map
      (fun i ->
        let q = Workload.make ~seed:21 ~index:i in
        [ q; Workload.alpha_variant q; Workload.alpha_variant q ])
      (List.init n_distinct Fun.id)
  in
  let cat_name = function
    | Alive.Equivalent -> "equivalent"
    | Alive.Semantic_error -> "semantic_error"
    | Alive.Syntax_error -> "syntax_error"
    | Alive.Inconclusive -> "inconclusive"
  in
  let run_leg e =
    let t0 = Unix.gettimeofday () in
    let verdicts =
      List.map
        (fun q ->
          (Engine.verify_funcs ?unroll:q.Workload.w_unroll
             ?max_conflicts:q.Workload.w_max_conflicts e q.Workload.w_m
             ~src:q.Workload.w_src ~tgt:q.Workload.w_tgt)
            .Alive.category)
        queries
    in
    (verdicts, Unix.gettimeofday () -. t0)
  in
  let cold_engine = Engine.create ~tier1_samples:0 ~store:dir () in
  let cold_verdicts, cold_secs = run_leg cold_engine in
  let cold_store = Option.get (Engine.store_stats cold_engine) in
  Engine.shutdown cold_engine;
  let warm_engine = Engine.create ~tier1_samples:0 ~store:dir () in
  let warm_verdicts, warm_secs = run_leg warm_engine in
  let warm_cache = Engine.stats warm_engine in
  let warm_store = Option.get (Engine.store_stats warm_engine) in
  Engine.shutdown warm_engine;
  let orphans = Engine.orphans cold_engine + Engine.orphans warm_engine in
  let n = List.length queries in
  let disagreements =
    List.fold_left2 (fun k c w -> if c = w then k else k + 1) 0 cold_verdicts warm_verdicts
  in
  let lookups = warm_store.Store.hits + warm_store.Store.misses in
  let hit_rate =
    if lookups = 0 then 0. else float_of_int warm_store.Store.hits /. float_of_int lookups
  in
  let speedup = cold_secs /. if warm_secs <= 0. then epsilon_float else warm_secs in
  Fmt.pf fmt "  %d queries (%d distinct x3: verbatim + two alpha twins)@." n n_distinct;
  Fmt.pf fmt "  cold: %.2fs (%d entries written)    warm: %.3fs (%.2fx)@." cold_secs
    cold_store.Store.writes warm_secs speedup;
  Fmt.pf fmt "  warm: %d store hits / %d lookups (%.0f%%), %d tier-2 runs, %d rewrites@."
    warm_store.Store.hits lookups (hit_rate *. 100.) warm_cache.Vcache.tier2_runs
    warm_store.Store.writes;
  Fmt.pf fmt "  agreement: %d/%d; corrupt served: %d; stale skips: %d; orphans: %d@."
    (n - disagreements) n warm_store.Store.corrupt_entries
    warm_store.Store.stale_version_skips orphans;
  if disagreements > 0 then
    List.iteri
      (fun i (c, w) ->
        if c <> w then
          Fmt.pf fmt "  ERROR: query %d (%s): cold %s, warm %s@." i
            (List.nth queries i).Workload.w_label (cat_name c) (cat_name w))
      (List.combine cold_verdicts warm_verdicts);
  let json =
    Fmt.str
      {|{
  "queries": %d,
  "distinct": %d,
  "cold_seconds": %.4f,
  "warm_seconds": %.4f,
  "speedup": %.3f,
  "entries_written": %d,
  "warm_store_hits": %d,
  "warm_store_misses": %d,
  "warm_hit_rate": %.4f,
  "warm_tier2_runs": %d,
  "disagreements": %d,
  "corrupt_entries_served": %d,
  "stale_version_skips": %d,
  "orphans": %d
}
|}
      n n_distinct cold_secs warm_secs speedup cold_store.Store.writes warm_store.Store.hits
      warm_store.Store.misses hit_rate warm_cache.Vcache.tier2_runs disagreements
      warm_store.Store.corrupt_entries warm_store.Store.stale_version_skips orphans
  in
  let oc = open_out "BENCH_store.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf fmt "  wrote BENCH_store.json@.";
  let fail msg =
    Fmt.pf fmt "  ERROR: %s@." msg;
    exit 1
  in
  if disagreements > 0 then fail "warm store flipped a verdict";
  if warm_store.Store.corrupt_entries > 0 then
    fail "a corrupt store entry reached the warm run";
  if warm_cache.Vcache.tier2_runs > 0 then fail "warm rerun still paid for solver calls";
  if orphans > 0 then fail "workers outlived the engine shutdown";
  if speedup < 3. then fail (Fmt.str "warm speedup %.2fx below the 3x gate" speedup)

(* ------------------------------------------------------------------ *)
(* The emit-time fold engine vs the reference rescanning driver.

   Three legs, three gates:
   - wall time of Instcombine.run (fold engine) vs Instcombine.run_fixpoint
     (rescan after every rewrite) over the adversarial Cgen stream:
     the fold driver must be >= 1.5x faster;
   - SFT supervision: the (rule, site) traces over the pinned default Cgen
     stream must be bit-identical between drivers, and a verification
     sample of both outputs against the source must show zero conclusive
     verdict flips;
   - the canonical-key quotient: operand-commuted twin queries must
     collide onto one store key (100%) and be served from the Vcache,
     where the pre-canon raw-text keys would all miss.
   Emits BENCH_fold.json. *)

let run_fold_bench () =
  header "FOLD-BENCH (emit-time fold engine vs rescanning fixpoint driver)";
  let module IC = Veriopt_passes.Instcombine in
  let module FE = Veriopt_passes.Fold_engine in
  let module Cgen = Veriopt_data.Cgen in
  let module Lower = Veriopt_data.Lower in
  let module Engine = Veriopt_alive.Engine in
  let module Vcache = Veriopt_alive.Vcache in
  let module Ast = Veriopt_ir.Ast in
  let fail msg =
    Fmt.pf fmt "  ERROR: %s@." msg;
    exit 1
  in
  let stream ?profile n =
    List.init n (fun seed ->
        match profile with
        | None -> Lower.lower (Cgen.generate ~seed ~name:"t" ())
        | Some p -> Lower.lower (Cgen.generate ~profile:p ~seed ~name:"t" ()))
  in
  let n_funcs = 40 and repeats = 5 in
  let adversarial = stream ~profile:Cgen.adversarial_profile n_funcs in
  let default = stream n_funcs in
  let time_leg driver funcs =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to repeats do
      List.iter (fun (m, f) -> ignore (driver m f)) funcs
    done;
    Unix.gettimeofday () -. t0
  in
  (* interleave the legs so allocator / cache warmth cannot favour one *)
  ignore (time_leg IC.run adversarial);
  ignore (time_leg IC.run_fixpoint adversarial);
  let fold_adv = time_leg IC.run adversarial in
  let fix_adv = time_leg IC.run_fixpoint adversarial in
  let fold_def = time_leg IC.run default in
  let fix_def = time_leg IC.run_fixpoint default in
  let speedup_adv = fix_adv /. if fold_adv <= 0. then epsilon_float else fold_adv in
  let speedup_def = fix_def /. if fold_def <= 0. then epsilon_float else fold_def in
  Fmt.pf fmt "  adversarial stream (%d funcs x%d): fold %.3fs, fixpoint %.3fs (%.2fx)@."
    n_funcs repeats fold_adv fix_adv speedup_adv;
  Fmt.pf fmt "  default stream     (%d funcs x%d): fold %.3fs, fixpoint %.3fs (%.2fx)@."
    n_funcs repeats fold_def fix_def speedup_def;
  Fmt.pf fmt "  fold passes: %d, restarts: %d, barrier hits: %d@."
    (Atomic.get FE.passes_total) (Atomic.get FE.restarts_total)
    (Atomic.get FE.barrier_hits_total);
  (* bit-identical SFT traces on the pinned default stream *)
  let trace_digest driver =
    let buf = Buffer.create 65536 in
    List.iter
      (fun (m, f) ->
        let r = driver m f in
        List.iter
          (fun (e : IC.trace_entry) ->
            Buffer.add_string buf e.IC.rule;
            Buffer.add_char buf '@';
            Buffer.add_string buf e.IC.site;
            Buffer.add_char buf '\n')
          r.IC.trace)
      default;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  let fold_traces = trace_digest IC.run in
  let fix_traces = trace_digest IC.run_fixpoint in
  let traces_identical = fold_traces = fix_traces in
  Fmt.pf fmt "  SFT trace digest: fold %s, fixpoint %s (%s)@." fold_traces fix_traces
    (if traces_identical then "identical" else "DIVERGED");
  (* zero conclusive flips: both outputs verify identically vs the source *)
  let verify_engine = Engine.create ~tier1_samples:8 () in
  let flips = ref 0 and conclusive = ref 0 in
  List.iteri
    (fun i (m, f) ->
      if i < 12 then begin
        let a = (IC.run m f).IC.func and b = (IC.run_fixpoint m f).IC.func in
        let va = Engine.verify_funcs verify_engine m ~src:f ~tgt:a in
        let vb = Engine.verify_funcs verify_engine m ~src:f ~tgt:b in
        let concl v =
          v.Alive.category = Alive.Equivalent || v.Alive.category = Alive.Semantic_error
        in
        if concl va || concl vb then incr conclusive;
        if va.Alive.category <> vb.Alive.category then incr flips
      end)
    default;
  Engine.shutdown verify_engine;
  Fmt.pf fmt "  verdicts: %d conclusive, %d flips@." !conclusive !flips;
  (* the canonical-key quotient: commute every commutative op (and mirror
     every icmp) of the source — the key must not move, and the twin query
     must be a Vcache hit *)
  let commute_func (f : Ast.func) =
    let swap ni =
      let instr =
        match ni.Ast.instr with
        | Ast.Binop ({ op; lhs; rhs; _ } as b) when Ast.binop_is_commutative op ->
          Ast.Binop { b with lhs = rhs; rhs = lhs }
        | Ast.Icmp ({ pred; lhs; rhs; _ } as c) ->
          Ast.Icmp { c with pred = Ast.icmp_swap_pred pred; lhs = rhs; rhs = lhs }
        | i -> i
      in
      { ni with Ast.instr }
    in
    {
      f with
      Ast.blocks =
        List.map
          (fun b -> { b with Ast.instrs = List.map swap b.Ast.instrs })
          f.Ast.blocks;
    }
  in
  let twin_engine = Engine.create ~tier1_samples:4 () in
  let twins = ref 0 and key_collisions = ref 0 and twin_hits = ref 0 in
  List.iter
    (fun (m, f) ->
      let tgt = (IC.run m f).IC.func in
      let twin = commute_func f in
      if Veriopt_ir.Printer.func_to_string twin <> Veriopt_ir.Printer.func_to_string f
      then begin
        incr twins;
        if Engine.store_key m ~src:f ~tgt = Engine.store_key m ~src:twin ~tgt then
          incr key_collisions;
        ignore (Engine.verify_funcs twin_engine m ~src:f ~tgt);
        let h0 = (Engine.stats twin_engine).Vcache.hits in
        ignore (Engine.verify_funcs twin_engine m ~src:twin ~tgt);
        if (Engine.stats twin_engine).Vcache.hits > h0 then incr twin_hits
      end)
    default;
  Engine.shutdown twin_engine;
  let hit_rate =
    if !twins = 0 then 0. else float_of_int !twin_hits /. float_of_int !twins
  in
  Fmt.pf fmt
    "  twin battery: %d twins, %d key collisions, %d cache hits (%.0f%% hit-rate gain; \
     raw-text keys would hit 0%%)@."
    !twins !key_collisions !twin_hits (hit_rate *. 100.);
  let json =
    Fmt.str
      {|{
  "funcs": %d,
  "repeats": %d,
  "adversarial_fold_seconds": %.4f,
  "adversarial_fixpoint_seconds": %.4f,
  "adversarial_speedup": %.3f,
  "default_fold_seconds": %.4f,
  "default_fixpoint_seconds": %.4f,
  "default_speedup": %.3f,
  "fold_passes": %d,
  "fold_restarts": %d,
  "barrier_hits": %d,
  "traces_identical": %b,
  "trace_digest": "%s",
  "verdict_sample": 12,
  "verdict_conclusive": %d,
  "verdict_flips": %d,
  "twin_queries": %d,
  "twin_key_collisions": %d,
  "twin_cache_hits": %d,
  "twin_hit_rate_gain": %.4f
}
|}
      n_funcs repeats fold_adv fix_adv speedup_adv fold_def fix_def speedup_def
      (Atomic.get FE.passes_total) (Atomic.get FE.restarts_total)
      (Atomic.get FE.barrier_hits_total) traces_identical fold_traces !conclusive !flips
      !twins !key_collisions !twin_hits hit_rate
  in
  let oc = open_out "BENCH_fold.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf fmt "  wrote BENCH_fold.json@.";
  if not traces_identical then fail "SFT traces diverged between drivers";
  if !flips > 0 then fail "a conclusive verdict flipped between drivers";
  if !twins > 0 && !key_collisions < !twins then
    fail
      (Fmt.str "twin key collisions %d/%d below 100%%" !key_collisions !twins);
  if !twins > 0 && !twin_hits < !twins then
    fail (Fmt.str "twin cache hits %d/%d below 100%%" !twin_hits !twins);
  if speedup_adv < 1.5 then
    fail (Fmt.str "adversarial speedup %.2fx below the 1.5x gate" speedup_adv)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the substrates; one Test.make per kernel. *)

let run_micro () =
  header "MICROBENCHMARKS (bechamel, monotonic clock)";
  (* bind the workload before opening Bechamel (which shadows S) *)
  let sample = S.build ~verify:false ~seed0:123456 ~n:1 () in
  let open Bechamel in
  let s = List.hd sample.Veriopt_data.Suite.samples in
  let src_text = s.Veriopt_data.Suite.src_text in
  let base_model = Veriopt_llm.Capability.base_3b () in
  let args =
    List.map
      (fun (ty, _) -> Veriopt_eval.Interp.vint (Veriopt_ir.Types.width ty) 1L)
      s.Veriopt_data.Suite.src.Veriopt_ir.Ast.params
  in
  let tests =
    [
      Test.make ~name:"parse_func" (Staged.stage (fun () -> Veriopt_ir.Parser.parse_func src_text));
      Test.make ~name:"print_func"
        (Staged.stage (fun () -> Veriopt_ir.Printer.func_to_string s.Veriopt_data.Suite.src));
      Test.make ~name:"validate_func"
        (Staged.stage (fun () -> Veriopt_ir.Validator.validate_func ~module_:s.Veriopt_data.Suite.modul s.Veriopt_data.Suite.src));
      Test.make ~name:"instcombine"
        (Staged.stage (fun () -> Veriopt_passes.Pass_manager.instcombine s.Veriopt_data.Suite.modul s.Veriopt_data.Suite.src));
      Test.make ~name:"interp_run"
        (Staged.stage (fun () ->
             try ignore (Veriopt_eval.Interp.run s.Veriopt_data.Suite.modul s.Veriopt_data.Suite.src args) with _ -> ()));
      Test.make ~name:"alive_verify"
        (Staged.stage (fun () ->
             Veriopt_alive.Alive.verify_funcs ~max_conflicts:60_000 s.Veriopt_data.Suite.modul ~src:s.Veriopt_data.Suite.src
               ~tgt:s.Veriopt_data.Suite.label));
      Test.make ~name:"engine_verify_cached"
        (Staged.stage
           (let engine = Veriopt_alive.Engine.create () in
            fun () ->
              Veriopt_alive.Engine.verify_funcs ~max_conflicts:60_000 engine
                s.Veriopt_data.Suite.modul ~src:s.Veriopt_data.Suite.src
                ~tgt:s.Veriopt_data.Suite.label));
      Test.make ~name:"model_generate_greedy"
        (Staged.stage (fun () ->
             Veriopt_llm.Model.generate base_model ~mode:Prompt.Generic ~rng:None ~sample_id:1
               s.Veriopt_data.Suite.modul s.Veriopt_data.Suite.src));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun t ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"micro" [ t ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Fmt.pf fmt "  %-32s %14.1f ns/run@." name est
          | Some _ | None -> Fmt.pf fmt "  %-32s (no estimate)@." name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let args = List.filter (fun a -> a <> "--full") args in
  let scale = if full then P.full else P.quick in
  let experiments = if args = [] || List.mem "all" args then [ "all" ] else args in
  let wants x = List.mem "all" experiments || List.mem x experiments in
  (* micro and verify-bench are standalone: they build their own workloads
     and must not pay for (or pollute) the full training pipeline *)
  let standalone =
    [
      "micro"; "verify-bench"; "robust-bench"; "sat-bench"; "proc-bench"; "incr-bench";
      "portfolio-bench"; "store-bench"; "fold-bench";
    ]
  in
  let needs_evals =
    List.mem "all" experiments
    || List.exists (fun x -> not (List.mem x standalone)) experiments
  in
  (* proc-bench and incr-bench first: they fork worker pools, which OCaml 5
     only permits before any other leg has spawned a domain *)
  if wants "proc-bench" then run_proc_bench ();
  if wants "incr-bench" then run_incr_bench ();
  if wants "portfolio-bench" then run_portfolio_bench ();
  if wants "store-bench" then run_store_bench ();
  if wants "fold-bench" then run_fold_bench ();
  if needs_evals then begin
    let e = build_evals scale in
    if wants "dataset" then run_dataset e;
    if wants "table1" then run_table1 e;
    if wants "table2" then run_table2 e;
    if wants "table3" then run_table3 e;
    if wants "fig4" then run_fig4 e;
    if wants "fig5" then run_fig5 e;
    if wants "fig6" then run_fig6 e;
    if wants "fig7" then run_fig7 e;
    if wants "figs8to12" then run_figs8to12 e;
    if wants "ablations" then run_ablations e;
    if wants "discussion" then run_discussion e;
    if wants "engine" then run_engine_stats e
  end;
  if wants "verify-bench" then run_verify_bench ();
  if wants "robust-bench" then run_robust_bench ();
  if wants "sat-bench" then run_sat_bench ();
  if wants "micro" then run_micro ();
  Fmt.pf fmt "@.done.@."

.PHONY: all build test bench micro verify-bench chaos-bench check clean

all: build

build:
	dune build

test:
	dune runtest

bench: build
	dune exec bench/main.exe -- all

micro: build
	dune exec bench/main.exe -- micro

# Repeated-group verification throughput: tiered + cached engine vs the
# uncached sequential SMT path.  Writes machine-readable BENCH_verify.json.
verify-bench: build
	dune exec bench/main.exe -- verify-bench

# The resilience layer under chaos: deadline-bounded tail latency, 100%
# injected solver timeouts, circuit breaker, crash-proof reward path.
# Writes machine-readable BENCH_robust.json; exits non-zero if any fault
# flips a conclusive verdict or escapes the reward guards.
chaos-bench: build
	dune exec bench/main.exe -- robust-bench

# The full gate: build, unit tests, chaos smoke.
check: build
	dune runtest
	dune exec bench/main.exe -- robust-bench

clean:
	dune clean

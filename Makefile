.PHONY: all build test bench micro verify-bench clean

all: build

build:
	dune build

test:
	dune runtest

bench: build
	dune exec bench/main.exe -- all

micro: build
	dune exec bench/main.exe -- micro

# Repeated-group verification throughput: tiered + cached engine vs the
# uncached sequential SMT path.  Writes machine-readable BENCH_verify.json.
verify-bench: build
	dune exec bench/main.exe -- verify-bench

clean:
	dune clean

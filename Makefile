.PHONY: all build test bench micro verify-bench chaos-bench sat-bench proc-bench incr-bench portfolio-bench serve-bench store-bench adv-bench fold-bench fuzz check clean

all: build

build:
	dune build

test:
	dune runtest

bench: build
	dune exec bench/main.exe -- all

micro: build
	dune exec bench/main.exe -- micro

# Repeated-group verification throughput: tiered + cached engine vs the
# uncached sequential SMT path.  Writes machine-readable BENCH_verify.json.
verify-bench: build
	dune exec bench/main.exe -- verify-bench

# The resilience layer under chaos: deadline-bounded tail latency, 100%
# injected solver timeouts, circuit breaker, crash-proof reward path.
# Writes machine-readable BENCH_robust.json; exits non-zero if any fault
# flips a conclusive verdict or escapes the reward guards.
chaos-bench: build
	dune exec bench/main.exe -- robust-bench

# Clause-DB reduction on SMT-hostile queries: reduction off vs on, same
# conflict budget.  Writes machine-readable BENCH_sat.json; exits non-zero
# if the knob flips a conclusive verdict.
sat-bench: build
	dune exec bench/main.exe -- sat-bench

# The fork-based isolation backend (--isolate proc): hostile-query kill
# latency under 100% worker_hang injection (SIGKILL at the hard deadline,
# supervisor respawn), then verdict agreement against the in-process
# backend.  Writes machine-readable BENCH_proc.json; exits non-zero on a
# conclusive-verdict flip or a hostile call that escaped degradation.
proc-bench: build
	dune exec bench/main.exe -- proc-bench

# Incremental solver sessions + iterative-deepening unroll: one session
# walking the depth schedule (learned clauses, activities and the
# bit-blast memo retained) vs a fresh solve per depth vs one single-shot
# solve at the full bound, plus the same sweep through the forked proc
# backend.  Writes machine-readable BENCH_incr.json; exits non-zero if any
# leg flips a conclusive verdict.
incr-bench: build
	dune exec bench/main.exe -- incr-bench

# Diversified SAT portfolio + cube-and-conquer racing across the fork
# pool: four configs per hostile query, first conclusive verdict wins,
# losers SIGKILLed, inconclusive probes split into cubes on the top VSIDS
# variables.  Writes machine-readable BENCH_portfolio.json; exits non-zero
# on a conclusive-verdict flip or an orphaned worker.
portfolio-bench: build
	dune exec bench/main.exe -- portfolio-bench

# The serving layer under open-loop overload: calibrate sustainable
# throughput, then replay 2x that rate with chaos faults (worker kills,
# spurious queue-full, client disconnects, stalled dispatchers).  Every
# request must resolve, interactive p99 must stay within 2x its deadline,
# and the drain must leave zero orphaned workers.  Writes machine-readable
# BENCH_serve.json; exits non-zero on any overload-contract violation.
serve-bench: build
	dune exec bench/serve_bench.exe

# The shared disk-backed verdict store: cold fill vs warm rerun on a
# repeated-group workload (verbatim + alpha-renamed twins).  Writes
# machine-readable BENCH_store.json; exits non-zero if the warm rerun is
# below 3x faster, disagrees on any verdict, serves a corrupt entry, or
# leaks a worker.
store-bench: build
	dune exec bench/main.exe -- store-bench

# The emit-time fold engine vs the reference rescanning fixpoint driver:
# instcombine wall time over the adversarial generator stream (>= 1.5x
# gate), bit-identical SFT traces on the pinned default stream, zero
# conclusive verdict flips, and the canonical-key twin battery (100% store
# key collisions + Vcache hits on operand-commuted twins).  Writes
# machine-readable BENCH_fold.json; exits non-zero on any gate violation.
fold-bench: build
	dune exec bench/main.exe -- fold-bench

# The adversarial pain miner end to end: SIGKILL crash-safety of the
# corpus, a fresh-seed budgeted mine (>= 25 distinct minimized cases
# across >= 3 mutator families, zero conclusive-verdict flips through
# minimization), deterministic double replay, and a standing-stress window
# through the serving layer.  Writes machine-readable BENCH_adv.json;
# exits non-zero on any mining-contract violation.
adv-bench: build
	dune exec bench/adv_bench.exe

# Long-run differential fuzz campaign over the SAT core and the bit-vector
# poison paths (the runtest default is 5000 CNF + 1000 round-trip cases).
fuzz: build
	VERIOPT_FUZZ_N=50000 dune exec test/test_main.exe -- test sat-fuzz
	VERIOPT_FUZZ_N=50000 dune exec test/test_main.exe -- test smt

# The full gate: build, unit tests, a longer fuzz pass, chaos smoke, and
# the hostile-query kill sweep through the forked-worker backend.
check: build
	dune runtest
	VERIOPT_FUZZ_N=20000 dune exec test/test_main.exe -- test sat-fuzz
	dune exec bench/main.exe -- robust-bench
	dune exec bench/main.exe -- proc-bench
	dune exec bench/main.exe -- incr-bench
	dune exec bench/main.exe -- portfolio-bench
	dune exec bench/main.exe -- store-bench
	dune exec bench/main.exe -- fold-bench
	dune exec bench/serve_bench.exe
	dune exec bench/adv_bench.exe

clean:
	dune clean

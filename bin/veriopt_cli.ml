(* The veriopt command-line tool.

   veriopt verify   <file.ll>          -- validate the 2nd function against the 1st
   veriopt opt      <file.ll>          -- run the handwritten instcombine pass
   veriopt llm-opt  <file.ll>          -- optimize with the trained model + fallback
   veriopt train                       -- run the four-model pipeline, report accuracy
   veriopt dataset                     -- build & describe a dataset sample
   veriopt cost     <file.ll>          -- report latency/icount/binsize per function
   veriopt serve                       -- run the verification service until SIGTERM
   veriopt replay                      -- open-loop overload replay against the service *)

open Cmdliner
module Alive = Veriopt_alive.Alive
module PM = Veriopt_passes.Pass_manager
module S = Veriopt_data.Suite
module Trainer = Veriopt_rl.Trainer

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_module path = Veriopt_ir.Parser.parse_module (read_file path)

let category_string = function
  | Alive.Equivalent -> "semantically equivalent"
  | Alive.Semantic_error -> "NOT equivalent (semantic error)"
  | Alive.Syntax_error -> "invalid IR (syntax error)"
  | Alive.Inconclusive -> "inconclusive"

let isolate_conv =
  Arg.enum [ ("proc", Veriopt_alive.Engine.Proc); ("domain", Veriopt_alive.Engine.Domains) ]

(* ------------------------------------------------------------------ *)

let verify_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ll") in
  let unroll =
    Arg.(
      value & opt int 4
      & info [ "unroll" ] ~docv:"BOUND"
          ~doc:"Loop unroll bound for bounded equivalence checking of cyclic pairs")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:"Disable the incremental solver session / iterative-deepening unroll for \
                loop-bearing pairs (solve each pair once at the full bound; also \
                selectable via VERIOPT_INCR=0)")
  in
  let no_reduce =
    Arg.(
      value & flag
      & info [ "no-reduce" ]
          ~doc:"Disable learned-clause-DB reduction in the SAT core (affects solver speed, \
                never verdicts)")
  in
  let sat_stats =
    Arg.(
      value & flag
      & info [ "sat-stats" ] ~doc:"Print SAT-core statistics (conflicts, clause DB, LBD) on stderr")
  in
  let isolate =
    Arg.(
      value
      & opt isolate_conv Veriopt_alive.Engine.Domains
      & info [ "isolate" ] ~docv:"BACKEND"
          ~doc:
            "Verification backend: $(b,domain) (in-process, default) or $(b,proc) (a forked \
             worker with hard SIGKILL deadlines and rlimit caps; also selectable via \
             VERIOPT_ISOLATE).  With $(b,proc), --sat-stats counts stay in the worker")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Verification wall-clock budget; past it the verdict is inconclusive (under \
             $(b,--isolate proc) the worker is SIGKILLed if it overruns)")
  in
  let portfolio =
    Arg.(
      value & opt int 1
      & info [ "portfolio" ] ~docv:"N"
          ~doc:
            "Race $(docv) diversified SAT configurations across a forked worker pool \
             (implies $(b,--isolate proc)); the first conclusive member wins and the \
             losers are SIGKILLed.  Affects wall time, never verdicts.  Also selectable \
             via VERIOPT_PORTFOLIO; cube splitting depth via VERIOPT_CUBE_K")
  in
  let sat_seed =
    Arg.(
      value & opt int 0
      & info [ "sat-seed" ] ~docv:"SEED"
          ~doc:
            "Base random seed for the SAT solver's tie-breaking and phase choices (0, the \
             default, is bit-identical to the unseeded solver); portfolio members derive \
             their seeds from it")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Mount the shared disk-backed verdict store at $(docv): warm entries answer \
             without re-verifying, fresh cacheable verdicts are appended for later runs.  \
             Also selectable via VERIOPT_STORE")
  in
  let run file unroll no_incremental no_reduce sat_stats isolate timeout portfolio sat_seed
      store =
    let m = load_module file in
    match m.Veriopt_ir.Ast.funcs with
    | [ src; tgt ] | src :: tgt :: _ ->
      let module Solver = Veriopt_smt.Solver in
      let module Sat = Veriopt_smt.Sat in
      let module Portfolio = Veriopt_smt.Portfolio in
      Solver.reset_stats ();
      let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
      let incremental = not no_incremental && Alive.incremental_default () in
      let sat = { Sat.default_config with Sat.seed = sat_seed } in
      (* the env form must also route through the engine, or the default
         in-process path would silently bypass the store *)
      let store =
        match store with
        | Some _ as s -> s
        | None -> (
          match Sys.getenv_opt "VERIOPT_STORE" with
          | Some d when String.trim d <> "" -> Some d
          | _ -> None)
      in
      let with_engine e f =
        Fun.protect
          ~finally:(fun () ->
            (match Veriopt_alive.Engine.store_stats e with
            | Some st ->
              let module St = Veriopt_store.Store in
              Fmt.epr "store: %d hits, %d misses, %d writes, %d corrupt, %d stale-version@."
                st.St.hits st.St.misses st.St.writes st.St.corrupt_entries
                st.St.stale_version_skips
            | None -> ());
            Veriopt_alive.Engine.shutdown e)
          (fun () -> f e)
      in
      let v =
        if portfolio > 1 then
          (* tier 1 off: every verdict here comes from the racing SMT path *)
          with_engine (Veriopt_alive.Engine.create ~tier1_samples:0 ~portfolio ?store ())
            (fun e ->
              Veriopt_alive.Engine.verify_funcs ~unroll ?deadline ~reduce:(not no_reduce)
                ~incremental ~sat e m ~src ~tgt)
        else
          match (isolate, store) with
          | Veriopt_alive.Engine.Domains, None ->
            Alive.verify_funcs ~unroll ?deadline ~reduce:(not no_reduce) ~incremental ~sat m
              ~src ~tgt
          | iso, store ->
            (* tier 1 off so the verdict comes from the same SMT path as the
               direct call above, just behind the process boundary (and/or
               through the mounted verdict store) *)
            with_engine (Veriopt_alive.Engine.create ~tier1_samples:0 ~isolate:iso ?store ())
              (fun e ->
                Veriopt_alive.Engine.verify_funcs ~unroll ?deadline ~reduce:(not no_reduce)
                  ~incremental ~sat e m ~src ~tgt)
      in
      Fmt.pr "%s@.%s@." (category_string v.Alive.category) v.Alive.message;
      if sat_stats && portfolio > 1 then begin
        let p = Portfolio.stats () in
        Fmt.epr
          "portfolio: %d races (%d full-member wins), %d cube splits, %d cube cex, %d cube \
           refutations, %d join refutations@."
          p.Portfolio.races p.Portfolio.race_wins p.Portfolio.cube_splits p.Portfolio.cube_cex
          p.Portfolio.cube_refutations p.Portfolio.join_refutations;
        Fmt.epr "portfolio: %d losers cancelled, %d wasted conflicts, %d units merged@."
          p.Portfolio.losers_cancelled p.Portfolio.wasted_conflicts p.Portfolio.units_merged;
        List.iter
          (fun (label, n) -> Fmt.epr "portfolio-winner: %s: %d@." label n)
          (Portfolio.winner_histogram ())
      end;
      if sat_stats then begin
        let s = Solver.stats () in
        Fmt.epr "sat: %d checks, %d conflicts, %d decisions, %d propagations, %d restarts@."
          s.Solver.checks s.Solver.conflicts s.Solver.decisions s.Solver.propagations
          s.Solver.restarts;
        Fmt.epr "sat-db: %d learned, %d deleted in %d reductions, peak live DB %d@."
          s.Solver.learned s.Solver.deleted s.Solver.reductions s.Solver.db_peak;
        if s.Solver.sessions > 0 then
          Fmt.epr "sat-sess: %d incremental sessions, %d reused checks@." s.Solver.sessions
            s.Solver.session_reuse;
        if s.Solver.learned > 0 then begin
          Fmt.epr "lbd:";
          Array.iteri
            (fun i n ->
              if i = Array.length s.Solver.lbd_hist - 1 then Fmt.epr " %d+:%d" (i + 1) n
              else Fmt.epr " %d:%d" (i + 1) n)
            s.Solver.lbd_hist;
          Fmt.epr "@."
        end
      end;
      if v.Alive.category = Alive.Equivalent then 0 else 1
    | _ ->
      Fmt.epr "error: FILE.ll must contain two function definitions (source, target)@.";
      2
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check that the second function of FILE.ll refines the first")
    Term.(
      const run $ file $ unroll $ no_incremental $ no_reduce $ sat_stats $ isolate $ timeout
      $ portfolio $ sat_seed $ store)

let opt_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ll") in
  let aggressive =
    Arg.(value & flag & info [ "aggressive" ] ~doc:"Also run mem2reg and simplifycfg")
  in
  let run file aggressive =
    let m = load_module file in
    List.iter
      (fun f ->
        let f', trace =
          if aggressive then PM.aggressive m f else PM.instcombine m f
        in
        Fmt.pr "%s" (Veriopt_ir.Printer.func_to_string f');
        Fmt.epr "; %d rewrites applied to @%s@." (List.length trace) f.Veriopt_ir.Ast.fname)
      m.Veriopt_ir.Ast.funcs;
    0
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Run the handwritten peephole optimizer over every function")
    Term.(const run $ file $ aggressive)

let llm_opt_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ll") in
  let train_n =
    Arg.(value & opt int 120 & info [ "train-samples" ] ~doc:"Training set size")
  in
  let steps = Arg.(value & opt int 150 & info [ "grpo-steps" ] ~doc:"GRPO steps per stage") in
  let run file train_n steps =
    let m = load_module file in
    Fmt.epr "training the pipeline (%d samples, %d GRPO steps per stage)...@." train_n steps;
    let train = (S.training ~n:train_n ()).S.samples in
    let opts = { Trainer.default_options with Trainer.grpo_steps = steps } in
    let result = Trainer.full_pipeline ~opts (Veriopt_llm.Capability.base_3b ()) train in
    let model = result.Trainer.stage3.Trainer.model_latency in
    List.iter
      (fun f ->
        let o = Veriopt.Backend.optimize model m f in
        Fmt.pr "%s" (Veriopt_ir.Printer.func_to_string o.Veriopt.Backend.output);
        Fmt.epr "; @%s: %s%s@." f.Veriopt_ir.Ast.fname
          (category_string o.Veriopt.Backend.verdict.Alive.category)
          (if o.Veriopt.Backend.used_model then "" else " -- fell back to the input"))
      m.Veriopt_ir.Ast.funcs;
    0
  in
  Cmd.v
    (Cmd.info "llm-opt"
       ~doc:"Train Model-Latency, then optimize FILE.ll with verified fallback")
    Term.(const run $ file $ train_n $ steps)

let train_cmd =
  let train_n = Arg.(value & opt int 140 & info [ "train-samples" ] ~doc:"Training set size") in
  let val_n = Arg.(value & opt int 200 & info [ "val-samples" ] ~doc:"Validation set size") in
  let steps = Arg.(value & opt int 160 & info [ "grpo-steps" ] ~doc:"GRPO steps per stage") in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:"Write a per-stage training snapshot into $(docv) every N GRPO steps")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 25
      & info [ "checkpoint-every" ]
          ~doc:"Snapshot period in GRPO steps (0: only at stage end)")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume each stage from its snapshot in --checkpoint-dir; the resumed \
             trajectory is bit-identical to an uninterrupted run")
  in
  let verify_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "verify-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-candidate verification wall-clock budget (verdict: inconclusive)")
  in
  let isolate =
    Arg.(
      value
      & opt (some isolate_conv) None
      & info [ "isolate" ] ~docv:"BACKEND"
          ~doc:
            "Tier-2 verification backend for the reward path: $(b,proc) forks a worker pool \
             with hard SIGKILL deadlines, $(b,domain) runs in-process (default; also \
             selectable via VERIOPT_ISOLATE)")
  in
  let run train_n val_n steps checkpoint_dir checkpoint_every resume verify_timeout isolate =
    if resume && checkpoint_dir = None then begin
      Fmt.epr "error: --resume requires --checkpoint-dir@.";
      exit 2
    end;
    let scale =
      {
        Veriopt.Pipeline.quick with
        Veriopt.Pipeline.n_train = train_n;
        n_validation = val_n;
        opts =
          {
            Trainer.default_options with
            Trainer.grpo_steps = steps;
            verbose = true;
            checkpoint_dir;
            checkpoint_every;
            resume;
            verify_timeout;
            isolate;
          };
      }
    in
    let a = Veriopt.Pipeline.build ~scale ~progress:(Fmt.epr "%s@.") () in
    let ev = Veriopt.Evaluate.run a.Veriopt.Pipeline.pipeline.Trainer.stage3.Trainer.model_latency
        a.Veriopt.Pipeline.validation
    in
    Veriopt.Report.table1 Fmt.stdout ev;
    0
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Run the four-model training pipeline and report accuracy")
    Term.(
      const run $ train_n $ val_n $ steps $ checkpoint_dir $ checkpoint_every $ resume
      $ verify_timeout $ isolate)

let dataset_cmd =
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of samples") in
  let run n =
    let ds = S.validation ~n () in
    Fmt.pr "%a@." S.pp_stats ds.S.stats;
    (match ds.S.samples with
    | s :: _ ->
      Fmt.pr "--- sample -O0 source:@.%s@." s.S.src_text;
      Fmt.pr "--- instcombine label:@.%s@." s.S.label_text
    | [] -> ());
    0
  in
  Cmd.v (Cmd.info "dataset" ~doc:"Build a dataset slice and show one sample") Term.(const run $ n)

let cost_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ll") in
  let run file =
    let m = load_module file in
    Fmt.pr "%-20s %10s %10s %10s@." "function" "latency" "icount" "binsize";
    List.iter
      (fun f ->
        Fmt.pr "%-20s %10d %10d %10d@." f.Veriopt_ir.Ast.fname
          (Veriopt_cost.Latency.of_func f)
          (Veriopt_cost.Icount.of_func f)
          (Veriopt_cost.Binsize.of_func ~modul:m f))
      m.Veriopt_ir.Ast.funcs;
    0
  in
  Cmd.v (Cmd.info "cost" ~doc:"Report the cost-model metrics of every function") Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* Serving: an Engine behind the overload-safe front end *)

module Serve = Veriopt_serve.Serve
module Traffic = Veriopt_serve.Traffic
module Workload = Veriopt_serve.Workload
module Fault = Veriopt_fault.Fault

let serve_args =
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Dispatcher thread count")
  in
  let capacity =
    Arg.(
      value & opt int 256
      & info [ "capacity" ] ~docv:"N" ~doc:"Bounded request-queue capacity (shed past it)")
  in
  let rate =
    Arg.(
      value & opt float 100.
      & info [ "rate" ] ~docv:"RPS" ~doc:"Open-loop arrival rate, requests per second")
  in
  let interactive_share =
    Arg.(
      value & opt float 0.25
      & info [ "interactive-share" ] ~docv:"FRAC"
          ~doc:"Fraction of arrivals in the $(b,interactive) priority class")
  in
  let dup_share =
    Arg.(
      value & opt float 0.3
      & info [ "dup-share" ] ~docv:"FRAC"
          ~doc:
            "Fraction of arrivals replaying a recent query (half verbatim, half \
             alpha-renamed) — exercises in-queue coalescing")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Chaos fault spec (same grammar as VERIOPT_FAULTS), e.g. \
             $(b,seed=5,worker_hang=0.03,queue_full=0.01)")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Mount the shared disk-backed verdict store at $(docv); all dispatchers share \
             its warm entries and append fresh verdicts for later runs")
  in
  (workers, capacity, rate, interactive_share, dup_share, faults, store)

let make_service ~workers ~capacity ?store () =
  let engine =
    Veriopt_alive.Engine.create ~tier1_samples:4 ~isolate:Veriopt_alive.Engine.Proc ?store ()
  in
  let config =
    { Serve.default_config with Serve.queue_capacity = capacity; workers = max 1 workers }
  in
  Serve.create ~config ~engine ()

let traffic_cfg ?(source = Workload.Synthetic) ~rate ~duration_s ~seed ~interactive_share
    ~dup_share (config : Serve.config) =
  {
    Traffic.rate;
    duration_s;
    seed;
    interactive_share;
    interactive_deadline_s = config.Serve.interactive_deadline_s;
    bulk_deadline_s = config.Serve.bulk_deadline_s;
    dup_share;
    source;
  }

let configure_faults = function
  | None -> true
  | Some spec -> (
    match Fault.configure_string spec with
    | Ok () -> true
    | Error e ->
      Fmt.epr "error: bad fault spec: %s@." e;
      false)

let serve_cmd =
  let workers, capacity, rate, interactive_share, dup_share, faults, store = serve_args in
  let run workers capacity rate interactive_share dup_share faults store =
    if not (configure_faults faults) then 2
    else begin
      let sv = make_service ~workers ~capacity ?store () in
      Serve.install_signal_handlers sv;
      Fmt.epr
        "veriopt serve: %d dispatchers, queue capacity %d, self-traffic at %.0f req/s; \
         SIGTERM/SIGINT drains@."
        workers capacity rate;
      (* 1 s traffic windows until a signal asks for drain; each window's
         seed advances so the query stream doesn't repeat *)
      let window = ref 0 in
      while not (Serve.drain_requested sv) do
        incr window;
        let cfg =
          traffic_cfg ~rate ~duration_s:1.0 ~seed:(1000 + !window) ~interactive_share
            ~dup_share (Serve.config sv)
        in
        let s = Traffic.run sv cfg in
        Fmt.epr "window %d: offered %d, answered %d, rejected %d, p99i %.1fms@." !window
          s.Traffic.offered s.Traffic.answered s.Traffic.rejected s.Traffic.p99_interactive_ms
      done;
      Fault.disable ();
      let report = Serve.drain ~timeout:10. sv in
      Fmt.pr "@.drained: %d waiters force-shed, %d orphaned workers@." report.Serve.forced_shed
        report.Serve.drain_orphans;
      Veriopt.Report.serve_stats Fmt.stdout (Serve.stats sv);
      Veriopt.Report.engine_stats Fmt.stdout (Serve.engine sv);
      if report.Serve.drain_orphans = 0 then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification service under open-loop self-traffic until SIGTERM/SIGINT, \
          then drain gracefully")
    Term.(
      const run $ workers $ capacity $ rate $ interactive_share $ dup_share $ faults $ store)

let replay_cmd =
  let workers, capacity, rate, interactive_share, dup_share, faults, store = serve_args in
  let duration =
    Arg.(
      value & opt float 2.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Open-loop generation window")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Replayable arrival schedule seed") in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Also write the summary as flat JSON to $(docv)")
  in
  let run workers capacity rate interactive_share dup_share faults store duration seed json =
    if not (configure_faults faults) then 2
    else begin
      let sv = make_service ~workers ~capacity ?store () in
      let cfg =
        traffic_cfg ~rate ~duration_s:duration ~seed ~interactive_share ~dup_share
          (Serve.config sv)
      in
      Fmt.epr "replaying %.1fs at %.0f req/s (seed %d)...@." duration rate seed;
      let summary = Traffic.run sv cfg in
      Fault.disable ();
      let report = Serve.drain ~timeout:10. sv in
      Traffic.pp_summary Fmt.stdout summary;
      Fmt.pr "drain: %d waiters force-shed, %d orphaned workers@." report.Serve.forced_shed
        report.Serve.drain_orphans;
      (match json with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc
          (Traffic.json_of_summary ~name:"replay"
             ~extra:
               [
                 ("forced_shed_at_drain", string_of_int report.Serve.forced_shed);
                 ("orphans_after_drain", string_of_int report.Serve.drain_orphans);
               ]
             summary);
        close_out oc;
        Fmt.epr "wrote %s@." path);
      if summary.Traffic.answered = summary.Traffic.offered && report.Serve.drain_orphans = 0
      then 0
      else 1
    end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a seeded open-loop traffic mix against the service and report \
          latency/shed/coalesce outcomes")
    Term.(
      const run $ workers $ capacity $ rate $ interactive_share $ dup_share $ faults $ store
      $ duration $ seed $ json)

(* ------------------------------------------------------------------ *)
(* Adversarial mining and standing stress replay *)

module Corpus = Veriopt_adversary.Corpus
module Miner = Veriopt_adversary.Miner

let corpus_arg =
  Arg.(
    value
    & opt string "_corpus"
    & info [ "corpus" ] ~docv:"DIR" ~doc:"Crash-safe corpus directory (created if missing)")

let mine_cmd =
  let budget =
    Arg.(value & opt float 20. & info [ "budget" ] ~docv:"SECONDS" ~doc:"Wall budget for the mine loop")
  in
  let max_cases =
    Arg.(value & opt int 40 & info [ "max-cases" ] ~docv:"N" ~doc:"Stop after committing $(docv) cases")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Miner RNG seed") in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:"Chaos fault spec, e.g. $(b,seed=5,corpus_corrupt=0.05,miner_stall=0.02)")
  in
  let run dir budget max_cases seed faults =
    if not (configure_faults faults) then 2
    else begin
      let corpus = Corpus.load ~dir in
      Fmt.epr "mining into %s (budget %.0fs, seed %d)...@." dir budget seed;
      let cfg =
        { Miner.default_config with Miner.mc_seed = seed; mc_budget_s = budget; mc_max_cases = max_cases }
      in
      let r = Miner.mine ~cfg corpus in
      Fault.disable ();
      Miner.pp_result Fmt.stdout r;
      Fmt.pr "%a@." Corpus.pp_stats corpus;
      if r.Miner.r_committed_flips = 0 then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:
         "Mine pain-guided adversarial verification pairs into a crash-safe corpus \
          (minimized under a concrete-oracle guard)")
    Term.(const run $ corpus_arg $ budget $ max_cases $ seed $ faults)

let stress_cmd =
  let workers, capacity, rate, _interactive_share, _dup_share, faults, store = serve_args in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"SECONDS" ~doc:"Open-loop generation window")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Replayable arrival schedule seed") in
  let mix =
    Arg.(
      value & opt int 100
      & info [ "mix" ] ~docv:"PCT"
          ~doc:"Percent of arrivals drawn from the corpus; the rest use the synthetic generators")
  in
  let run workers capacity rate faults store dir duration seed mix =
    if not (configure_faults faults) then 2
    else begin
      let corpus = Corpus.load ~dir in
      let engine =
        Veriopt_alive.Engine.create ~tier1_samples:4 ~isolate:Veriopt_alive.Engine.Proc ?store ()
      in
      let config =
        { Serve.default_config with Serve.queue_capacity = capacity; workers = max 1 workers }
      in
      Fmt.epr "stress-replaying %s for %.1fs at %.0f req/s (mix %d%%)...@." dir duration rate mix;
      match Miner.stress ~seed ~rate ~duration_s:duration ~mix_pct:mix ~config ~engine corpus with
      | None ->
        Fmt.epr "error: corpus at %s decodes to zero queries@." dir;
        1
      | Some summary ->
        Fault.disable ();
        Traffic.pp_summary Fmt.stdout summary;
        Fmt.pr "%a@." Corpus.pp_stats corpus;
        Veriopt.Report.engine_stats Fmt.stdout engine;
        if summary.Traffic.answered > 0 then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Drive open-loop traffic replaying the mined corpus through the serving layer, \
          then drain gracefully")
    Term.(const run $ workers $ capacity $ rate $ faults $ store $ corpus_arg $ duration $ seed $ mix)

let () =
  let info =
    Cmd.info "veriopt" ~version:"1.0.0"
      ~doc:"Verification-guided reinforcement learning for LLM-based compiler optimization"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            verify_cmd;
            opt_cmd;
            llm_opt_cmd;
            train_cmd;
            dataset_cmd;
            cost_cmd;
            serve_cmd;
            replay_cmd;
            mine_cmd;
            stress_cmd;
          ]))

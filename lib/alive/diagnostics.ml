(** Alive2-style diagnostic messages.

    The texts intentionally mirror the phrasing of real Alive2 output
    ("ERROR: Target is more poisonous than source", value-mismatch examples
    with concrete inputs) because the paper feeds these diagnostics back into
    model training and scores the model's self-diagnoses by BLEU similarity
    against them. *)

module Expr = Veriopt_smt.Expr
module Solver = Veriopt_smt.Solver
open Encode

type kind =
  | Target_ub
  | Target_more_poisonous
  | Value_mismatch
  | Domain_mismatch (* one side returns, the other does not *)
  | Trace_mismatch
  | Memory_mismatch
  | Other

let kind_to_string = function
  | Target_ub -> "Target has undefined behavior where source does not"
  | Target_more_poisonous -> "Target is more poisonous than source"
  | Value_mismatch -> "Value mismatch"
  | Domain_mismatch -> "Source and target don't have the same return domain"
  | Trace_mismatch -> "Mismatch in observable function calls"
  | Memory_mismatch -> "Mismatch in stored memory"
  | Other -> "Target does not refine source"

(* Evaluate a term under a solver model; unmapped variables default to 0 /
   false, which is exactly the solver's own completion of don't-care vars. *)
let eval_env (model : Solver.model) =
  let env_bv name = match model.Solver.bv_value name with Some (_, v) -> v | None -> 0L in
  let env_bool name = Option.value ~default:false (model.Solver.bool_value name) in
  (env_bv, env_bool)

let classify (model : Solver.model) (src : summary) (tgt : summary) : kind =
  let env_bv, env_bool = eval_env model in
  let ev t = Solver.eval_bool env_bv env_bool t in
  if ev tgt.ub then Target_ub
  else if ev src.returns <> ev tgt.returns then Domain_mismatch
  else
    match (src.ret_value, tgt.ret_value) with
    | Some (_, sp), Some (_, tp) when (not (ev sp)) && ev tp -> Target_more_poisonous
    | Some (sv, sp), Some (tv, _) when (not (ev sp)) && Solver.eval_bv env_bv env_bool sv <> Solver.eval_bv env_bv env_bool tv ->
      Value_mismatch
    | _ ->
      (* distinguish trace and memory failures by re-evaluation *)
      let impure s = List.filter (fun c -> not c.pure) s.calls in
      let trace_differs =
        try
          List.exists2
            (fun (c1 : call_event) (c2 : call_event) ->
              ev c1.call_guard <> ev c2.call_guard
              || (ev c1.call_guard
                 && List.exists2
                      (fun a b ->
                        match (a, b) with
                        | SInt x, SInt y ->
                          Solver.eval_bv env_bv env_bool x.term
                          <> Solver.eval_bv env_bv env_bool y.term
                        | _ -> false)
                      c1.args c2.args))
            (impure src) (impure tgt)
        with Invalid_argument _ -> true
      in
      if trace_differs then Trace_mismatch
      else if src.final_mem <> [] || tgt.final_mem <> [] then Memory_mismatch
      else Other

(** Concrete input assignment extracted from a model, as printable pairs. *)
let example_inputs (model : Solver.model) (src : summary) : (string * int64) list =
  let _, env_bool = eval_env model in
  List.concat_map
    (fun name ->
      match model.Solver.bv_value name with
      | Some (_, v) -> if env_bool (name ^ "!p") then [ (name, v); (name ^ "!p", 1L) ] else [ (name, v) ]
      | None -> [ (name, 0L) ])
    src.param_names

let render_counterexample (model : Solver.model) (src : summary) (tgt : summary) : string =
  let env_bv, env_bool = eval_env model in
  let kind = classify model src tgt in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "ERROR: %s\n" (kind_to_string kind));
  Buffer.add_string buf "Example:\n";
  List.iter
    (fun name ->
      let poisoned = env_bool (name ^ "!p") in
      let v = env_bv name in
      Buffer.add_string buf
        (if poisoned then Fmt.str "  %s = poison\n" name else Fmt.str "  %s = %Ld\n" name v))
    src.param_names;
  (match (src.ret_value, tgt.ret_value) with
  | Some (sv, sp), Some (tv, tp) ->
    let show (v, p) =
      if Solver.eval_bool env_bv env_bool p then "poison"
      else Int64.to_string (Solver.eval_bv env_bv env_bool v)
    in
    Buffer.add_string buf (Fmt.str "Source value: %s\n" (show (sv, sp)));
    Buffer.add_string buf (Fmt.str "Target value: %s\n" (show (tv, tp)))
  | _ -> ());
  Buffer.contents buf

(** Alive2-style rendering of a counterexample found by concrete execution
    (the engine's tier 1): same phrasing as {!render_counterexample} so the
    diagnostic classifiers and the BLEU-scored training feedback cannot tell
    which tier produced the verdict. *)
let render_concrete_counterexample (kind : kind) ~(inputs : (string * int64) list)
    ?src_value ?tgt_value () : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "ERROR: %s\n" (kind_to_string kind));
  Buffer.add_string buf "Example:\n";
  List.iter (fun (name, v) -> Buffer.add_string buf (Fmt.str "  %s = %Ld\n" name v)) inputs;
  (match (src_value, tgt_value) with
  | Some s, Some t ->
    Buffer.add_string buf (Fmt.str "Source value: %s\n" s);
    Buffer.add_string buf (Fmt.str "Target value: %s\n" t)
  | _ -> ());
  Buffer.contents buf

let syntax_error_message (detail : string) = Fmt.str "ERROR: invalid IR\n%s" detail

let inconclusive_message (detail : string) =
  Fmt.str "Alive2 could not prove or disprove equivalence (%s)" detail

let equivalent_message ~bounded =
  if bounded then "Transformation seems to be correct (bounded)"
  else "Transformation seems to be correct!"

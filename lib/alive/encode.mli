(** Symbolic execution of an IR function into SMT terms.

    Produces a [summary]: return value + poison bit, the accumulated UB
    condition, the bound-exhaustion condition from loop unrolling, the
    guarded trace of calls, and the observable final memory (bytes reachable
    from pointer parameters and globals).  Inputs are shared between the two
    sides of a verification query by positional naming ([arg0], ...).

    Constructs outside the encodable fragment raise [Unsupported], which the
    verdict layer reports as "inconclusive" — the honest analogue of
    Alive2's incompleteness. *)

open Veriopt_ir
module Expr = Veriopt_smt.Expr

exception Unsupported of string

type pbase = PNull | PAlloca of int | PParam of int | PGlobal of string

type intval = { term : Expr.t; poison : Expr.t }
type ptrval = { base : pbase; offset : Expr.t; ptr_poison : Expr.t }
type sval = SInt of intval | SPtr of ptrval

type cell = { byte : Expr.t; bpoison : Expr.t }
(** Memory is byte-granular: mixed-width access patterns encode uniformly. *)

type call_event = {
  call_guard : Expr.t;
  callee : string;
  args : sval list;
  result : sval option;
  pure : bool;
}

type summary = {
  ub : Expr.t;
  exhausted : Expr.t;
  returns : Expr.t;
  ret_value : (Expr.t * Expr.t) option;  (** (value, poison); None for void *)
  calls : call_event list;  (** topological order *)
  final_mem : ((pbase * int) * cell) list;  (** observable bytes *)
  param_names : string list;
}

val encode : ?unroll_bound:int -> side:string -> Ast.modul -> Ast.func -> summary

val semantics_version : int
(** Bump when the IR→SMT translation changes meaning; registered in the
    verdict store's semantics digest so stale entries are skipped. *)

(** Bounded, generation-swept, mutex-protected verdict memo table. *)

type key = {
  ctx : string;
  src : string;
  tgt : string;
  unroll : int;
  max_conflicts : int;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  entries : int;
  capacity : int;
  tier1_hits : int;
  tier1_misses : int;
  tier2_runs : int;
  tier1_seconds : float;
  tier2_seconds : float;
}

type 'v t = {
  capacity : int;
  mutex : Mutex.t;
  mutable current : (key, 'v) Hashtbl.t;
  mutable old : (key, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable tier1_hits : int;
  mutable tier1_misses : int;
  mutable tier2_runs : int;
  mutable tier1_seconds : float;
  mutable tier2_seconds : float;
}

let create ?(capacity = 4096) () =
  let capacity = max 1 capacity in
  {
    capacity;
    mutex = Mutex.create ();
    current = Hashtbl.create 64;
    old = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    tier1_hits = 0;
    tier1_misses = 0;
    tier2_runs = 0;
    tier1_seconds = 0.;
    tier2_seconds = 0.;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Called with the mutex held.  Swapping generations discards whatever the
   previous sweep left behind — a cheap approximation of LRU: anything
   touched within the last [capacity] insertions survives. *)
let sweep_if_full t =
  if Hashtbl.length t.current >= t.capacity then begin
    t.evictions <- t.evictions + Hashtbl.length t.old;
    t.old <- t.current;
    t.current <- Hashtbl.create 64
  end

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.current key with
      | Some v ->
        t.hits <- t.hits + 1;
        Some v
      | None -> (
        match Hashtbl.find_opt t.old key with
        | Some v ->
          (* promote so a live entry survives the next sweep *)
          t.hits <- t.hits + 1;
          Hashtbl.remove t.old key;
          sweep_if_full t;
          Hashtbl.replace t.current key v;
          Some v
        | None ->
          t.misses <- t.misses + 1;
          None))

let add t key v =
  locked t (fun () ->
      sweep_if_full t;
      Hashtbl.replace t.current key v;
      t.insertions <- t.insertions + 1)

let note_tier1 t ~hit ~seconds =
  locked t (fun () ->
      if hit then t.tier1_hits <- t.tier1_hits + 1 else t.tier1_misses <- t.tier1_misses + 1;
      t.tier1_seconds <- t.tier1_seconds +. seconds)

let note_tier2 t ~seconds =
  locked t (fun () ->
      t.tier2_runs <- t.tier2_runs + 1;
      t.tier2_seconds <- t.tier2_seconds +. seconds)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        insertions = t.insertions;
        evictions = t.evictions;
        entries = Hashtbl.length t.current + Hashtbl.length t.old;
        capacity = t.capacity;
        tier1_hits = t.tier1_hits;
        tier1_misses = t.tier1_misses;
        tier2_runs = t.tier2_runs;
        tier1_seconds = t.tier1_seconds;
        tier2_seconds = t.tier2_seconds;
      })

let reset t =
  locked t (fun () ->
      t.current <- Hashtbl.create 64;
      t.old <- Hashtbl.create 64;
      t.hits <- 0;
      t.misses <- 0;
      t.insertions <- 0;
      t.evictions <- 0;
      t.tier1_hits <- 0;
      t.tier1_misses <- 0;
      t.tier2_runs <- 0;
      t.tier1_seconds <- 0.;
      t.tier2_seconds <- 0.)

(** Bounded, generation-swept, mutex-protected verdict memo table, with an
    optional disk-backed read-through/write-behind tier beneath it
    ({!Veriopt_store.Store}). *)

module Store = Veriopt_store.Store

type key = {
  ctx : string;
  src : string;
  tgt : string;
  unroll : int;
  max_conflicts : int;
  reduce : bool;
  incremental : bool;
  portfolio : int;
  sat : string;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  entries : int;
  capacity : int;
  tier1_hits : int;
  tier1_misses : int;
  tier2_runs : int;
  tier1_seconds : float;
  tier2_seconds : float;
  tier1_ewma_s : float;
  tier2_ewma_s : float;
  breaker_trips : int;
  breaker_skips : int;
  breaker_open : bool;
}

(* EWMA smoothing factor for the per-tier latency estimates: ~the last
   dozen samples dominate, so the estimate tracks load shifts quickly while
   riding out single outliers. *)
let ewma_alpha = 0.15

(* The disk tier: callers hand us their own serialized-payload codec so the
   cache stays polymorphic in 'v. *)
type 'v tap = { tap_store : Store.t; tap_decode : string -> 'v option }

type 'v t = {
  capacity : int;
  mutex : Mutex.t;
  mutable tap : 'v tap option;
  mutable current : (key, 'v) Hashtbl.t;
  mutable old : (key, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable tier1_hits : int;
  mutable tier1_misses : int;
  mutable tier2_runs : int;
  mutable tier1_seconds : float;
  mutable tier2_seconds : float;
  (* rolling per-tier latency EWMAs; 0. until the first sample lands.  The
     serve layer's admission control reads these to price a query before
     letting it into the queue. *)
  mutable tier1_ewma_s : float;
  mutable tier2_ewma_s : float;
  (* circuit-breaker state (engine-driven; lives here so it shares the
     mutex and the stats plumbing with the rest of the counters) *)
  mutable breaker_consec : int; (* consecutive inconclusive tier-2 verdicts *)
  mutable breaker_open_remaining : int; (* > 0: open, skipping tier 2 *)
  mutable breaker_half_open : bool; (* next tier-2 run is the trial *)
  mutable breaker_trips : int;
  mutable breaker_skips : int;
}

let create ?(capacity = 4096) () =
  let capacity = max 1 capacity in
  {
    capacity;
    mutex = Mutex.create ();
    tap = None;
    current = Hashtbl.create 64;
    old = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    tier1_hits = 0;
    tier1_misses = 0;
    tier2_runs = 0;
    tier1_seconds = 0.;
    tier2_seconds = 0.;
    tier1_ewma_s = 0.;
    tier2_ewma_s = 0.;
    breaker_consec = 0;
    breaker_open_remaining = 0;
    breaker_half_open = false;
    breaker_trips = 0;
    breaker_skips = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Called with the mutex held.  Swapping generations discards whatever the
   previous sweep left behind — a cheap approximation of LRU: anything
   touched within the last [capacity] insertions survives. *)
let sweep_if_full t =
  if Hashtbl.length t.current >= t.capacity then begin
    t.evictions <- t.evictions + Hashtbl.length t.old;
    t.old <- t.current;
    t.current <- Hashtbl.create 64
  end

(* First sample seeds the EWMA directly so cold estimates are not dragged
   toward zero. *)
let roll prev sample = if prev = 0. then sample else (ewma_alpha *. sample) +. ((1. -. ewma_alpha) *. prev)

let attach_store t ~store ~decode =
  locked t (fun () -> t.tap <- Some { tap_store = store; tap_decode = decode })

let store t = locked t (fun () -> Option.map (fun tap -> tap.tap_store) t.tap)

let find ?skey t key =
  let mem, tap =
    locked t (fun () ->
        match Hashtbl.find_opt t.current key with
        | Some v ->
          t.hits <- t.hits + 1;
          (Some v, None)
        | None -> (
          match Hashtbl.find_opt t.old key with
          | Some v ->
            (* promote so a live entry survives the next sweep *)
            t.hits <- t.hits + 1;
            Hashtbl.remove t.old key;
            sweep_if_full t;
            Hashtbl.replace t.current key v;
            (Some v, None)
          | None -> (None, t.tap)))
  in
  match mem with
  | Some v -> Some v
  | None -> (
    let miss () =
      locked t (fun () -> t.misses <- t.misses + 1);
      None
    in
    (* read-through: the store lookup runs outside the mutex — a racing
       double-miss recomputes once harmlessly, and slow disk never blocks
       other cache users *)
    match (tap, skey) with
    | Some tap, Some skey -> (
      let t0 = Unix.gettimeofday () in
      match Store.find tap.tap_store ~key:skey with
      | None -> miss ()
      | Some payload -> (
        match tap.tap_decode payload with
        | None ->
          (* CRC passed but the payload failed the caller's decoder:
             count it and degrade to a miss, never a wrong verdict *)
          Store.note_corrupt tap.tap_store;
          miss ()
        | Some v ->
          let dt = Unix.gettimeofday () -. t0 in
          locked t (fun () ->
              t.hits <- t.hits + 1;
              sweep_if_full t;
              Hashtbl.replace t.current key v;
              (* a store hit is an answer served at lookup cost: feed the
                 admission-price EWMAs the near-zero sample so a warm store
                 admits work the cold engine would refuse *)
              t.tier1_ewma_s <- roll t.tier1_ewma_s dt;
              t.tier2_ewma_s <- roll t.tier2_ewma_s dt);
          Some v))
    | _ -> miss ())

let add ?skey ?spayload t key v =
  let tap =
    locked t (fun () ->
        sweep_if_full t;
        Hashtbl.replace t.current key v;
        t.insertions <- t.insertions + 1;
        t.tap)
  in
  (* write-behind: the store buffers and batches its own disk writes *)
  match (tap, skey, spayload) with
  | Some tap, Some skey, Some payload -> Store.add tap.tap_store ~key:skey payload
  | _ -> ()

let note_tier1 t ~hit ~seconds =
  locked t (fun () ->
      if hit then t.tier1_hits <- t.tier1_hits + 1 else t.tier1_misses <- t.tier1_misses + 1;
      t.tier1_seconds <- t.tier1_seconds +. seconds;
      t.tier1_ewma_s <- roll t.tier1_ewma_s seconds)

let note_tier2 t ~seconds =
  locked t (fun () ->
      t.tier2_runs <- t.tier2_runs + 1;
      t.tier2_seconds <- t.tier2_seconds +. seconds;
      t.tier2_ewma_s <- roll t.tier2_ewma_s seconds)

(* ------------------------------------------------------------------ *)
(* Circuit breaker.  Closed -> (k consecutive inconclusive tier-2 verdicts)
   -> open for [cooldown] would-be tier-2 calls (each skipped) -> half-open
   (one trial run) -> closed on a conclusive verdict, re-open on another
   inconclusive one.  The engine drives the transitions; soundness is
   preserved because a skipped tier 2 only ever widens [Inconclusive]. *)

let breaker_skip t =
  locked t (fun () ->
      if t.breaker_open_remaining > 0 then begin
        t.breaker_open_remaining <- t.breaker_open_remaining - 1;
        if t.breaker_open_remaining = 0 then t.breaker_half_open <- true;
        t.breaker_skips <- t.breaker_skips + 1;
        true
      end
      else false)

let breaker_note t ~inconclusive ~k ~cooldown =
  locked t (fun () ->
      if not inconclusive then begin
        t.breaker_consec <- 0;
        t.breaker_half_open <- false
      end
      else if t.breaker_half_open then begin
        (* the half-open trial failed: re-trip immediately *)
        t.breaker_half_open <- false;
        t.breaker_consec <- 0;
        t.breaker_open_remaining <- max 1 cooldown;
        t.breaker_trips <- t.breaker_trips + 1
      end
      else begin
        t.breaker_consec <- t.breaker_consec + 1;
        if k > 0 && t.breaker_consec >= k then begin
          t.breaker_consec <- 0;
          t.breaker_open_remaining <- max 1 cooldown;
          t.breaker_trips <- t.breaker_trips + 1
        end
      end)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        insertions = t.insertions;
        evictions = t.evictions;
        entries = Hashtbl.length t.current + Hashtbl.length t.old;
        capacity = t.capacity;
        tier1_hits = t.tier1_hits;
        tier1_misses = t.tier1_misses;
        tier2_runs = t.tier2_runs;
        tier1_seconds = t.tier1_seconds;
        tier2_seconds = t.tier2_seconds;
        tier1_ewma_s = t.tier1_ewma_s;
        tier2_ewma_s = t.tier2_ewma_s;
        breaker_trips = t.breaker_trips;
        breaker_skips = t.breaker_skips;
        breaker_open = t.breaker_open_remaining > 0;
      })

let reset t =
  locked t (fun () ->
      t.current <- Hashtbl.create 64;
      t.old <- Hashtbl.create 64;
      t.hits <- 0;
      t.misses <- 0;
      t.insertions <- 0;
      t.evictions <- 0;
      t.tier1_hits <- 0;
      t.tier1_misses <- 0;
      t.tier2_runs <- 0;
      t.tier1_seconds <- 0.;
      t.tier2_seconds <- 0.;
      t.tier1_ewma_s <- 0.;
      t.tier2_ewma_s <- 0.;
      t.breaker_consec <- 0;
      t.breaker_open_remaining <- 0;
      t.breaker_half_open <- false;
      t.breaker_trips <- 0;
      t.breaker_skips <- 0)

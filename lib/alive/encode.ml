(** Symbolic execution of an IR function into SMT terms.

    Produces a [summary]: return value + poison bit, an accumulated UB
    condition, the bound-exhaustion condition from loop unrolling, the
    guarded trace of calls, and the observable final memory (cells reachable
    from pointer parameters and globals).  Inputs are shared between the two
    functions of a verification query by positional naming ([arg0], ...),
    so the refinement check quantifies over one common input space.

    Constructs outside the encodable fragment (symbolic addressing,
    pointer/integer casts, mixed-width memory overlap, cross-object pointer
    comparisons) raise [Unsupported], which the verdict layer reports as
    "inconclusive" — the honest analogue of Alive2's incompleteness. *)

open Veriopt_ir
open Ast
module Expr = Veriopt_smt.Expr

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

type pbase = PNull | PAlloca of int | PParam of int | PGlobal of string

type intval = { term : Expr.t; poison : Expr.t }
type ptrval = { base : pbase; offset : Expr.t (* BV 64 *); ptr_poison : Expr.t }

type sval = SInt of intval | SPtr of ptrval

type cell = { byte : Expr.t (* BV8 *); bpoison : Expr.t }

module Mem = Map.Make (struct
  type t = pbase * int

  let compare = compare
end)

type memory = cell Mem.t

type call_event = {
  call_guard : Expr.t;
  callee : string;
  args : sval list;
  result : sval option;
  pure : bool;
}

type summary = {
  ub : Expr.t;
  exhausted : Expr.t;
  returns : Expr.t;
  ret_value : (Expr.t * Expr.t) option; (* (value, poison); None for void *)
  calls : call_event list; (* topological order *)
  final_mem : ((pbase * int) * cell) list; (* observable bytes *)
  param_names : string list; (* positional input var names, for models *)
}

(* ------------------------------------------------------------------ *)
(* sval helpers *)

let sval_poison = function
  | SInt { poison; _ } -> poison
  | SPtr { ptr_poison; _ } -> ptr_poison

let sval_ite c a b =
  match (a, b) with
  | SInt x, SInt y ->
    SInt { term = Expr.bv_ite c x.term y.term; poison = Expr.bool_ite c x.poison y.poison }
  | SPtr x, SPtr y when x.base = y.base ->
    SPtr
      {
        base = x.base;
        offset = Expr.bv_ite c x.offset y.offset;
        ptr_poison = Expr.bool_ite c x.ptr_poison y.ptr_poison;
      }
  | SPtr _, SPtr _ -> unsupported "merge of pointers with distinct provenance"
  | _ -> unsupported "merge of pointer and integer values"

let as_sint what = function
  | SInt x -> x
  | SPtr _ -> unsupported "%s: pointer where integer expected" what

let as_sptr what = function
  | SPtr x -> x
  | SInt _ -> unsupported "%s: integer where pointer expected" what

(* Signed-overflow predicates over terms, mirroring Bits.*_overflow. *)
let term_add_nsw_ov w a b r =
  let zero = Expr.bv_const w 0L in
  Expr.or_
    (Expr.conj [ Expr.sge a zero; Expr.sge b zero; Expr.slt r zero ])
    (Expr.conj [ Expr.slt a zero; Expr.slt b zero; Expr.sge r zero ])

let term_sub_nsw_ov w a b r =
  let zero = Expr.bv_const w 0L in
  Expr.or_
    (Expr.conj [ Expr.sge a zero; Expr.slt b zero; Expr.slt r zero ])
    (Expr.conj [ Expr.slt a zero; Expr.sge b zero; Expr.sge r zero ])

let term_mul_nuw_ov w a b =
  (* overflow iff a <> 0 && b > (2^w - 1) / a *)
  let zero = Expr.bv_const w 0L in
  let ones = Expr.bv_const w (Bits.all_ones w) in
  Expr.and_ (Expr.not_ (Expr.eq a zero)) (Expr.ugt b (Expr.bin Expr.UDiv ones a))

let term_mul_nsw_ov w a b r =
  let zero = Expr.bv_const w 0L in
  let minv = Expr.bv_const w (Bits.min_signed w) in
  let ones = Expr.bv_const w (Bits.all_ones w) in
  Expr.and_
    (Expr.not_ (Expr.eq b zero))
    (Expr.or_
       (Expr.not_ (Expr.eq (Expr.bin Expr.SDiv r b) a))
       (Expr.and_ (Expr.eq a minv) (Expr.eq b ones)))

(* ------------------------------------------------------------------ *)

type side_state = {
  side : string; (* fresh-name prefix, e.g. "src" *)
  modul : modul;
  mutable next_alloca : int;
  alloca_sizes : (int, int) Hashtbl.t;
  mutable fresh_scope : string; (* current block label *)
  fresh_counters : (string * string, int) Hashtbl.t; (* (scope, prefix) -> count *)
  locals : (var, sval) Hashtbl.t;
  mutable ub_acc : Expr.t;
  mutable exhausted_acc : Expr.t;
  mutable rets : (Expr.t * sval option) list; (* guard, value *)
  mutable ret_mems : (Expr.t * memory) list;
  mutable call_events : call_event list; (* reversed *)
}

(* Fresh names are scoped per block rather than drawn from one function-wide
   counter, so the name of each fresh value is a function of (side, block
   label, prefix, index-within-block).  Unrolled copies of a loop keep their
   labels across unroll bounds, which makes the depth-k encoding emit
   *identical* terms for every block shared with depth k-1 — the hash-cons
   table and the bit-blaster memo then reuse the depth-(k-1) circuits
   wholesale during iterative deepening.  (Soundness never depends on this:
   each depth's constraints are asserted under that depth's guard literal,
   so a cross-depth name collision at worst shares a free variable between
   a live formula and a retracted one.) *)
let fresh_bv st prefix w =
  let key = (st.fresh_scope, prefix) in
  let n = (match Hashtbl.find_opt st.fresh_counters key with Some n -> n | None -> 0) + 1 in
  Hashtbl.replace st.fresh_counters key n;
  Expr.bv_var (Fmt.str "%s!%s!%s%d" st.side st.fresh_scope prefix n) w

let add_ub st guard cond = st.ub_acc <- Expr.or_ st.ub_acc (Expr.and_ guard cond)

let lookup_local st v =
  match Hashtbl.find_opt st.locals v with
  | Some sv -> sv
  | None -> unsupported "use of unencoded value %%%s" v

let eval_operand st (ty : Types.t) (op : operand) : sval =
  ignore ty;
  match op with
  | Var v -> lookup_local st v
  | Const (CInt { width; value }) -> SInt { term = Expr.bv_const width value; poison = Expr.ff }
  | Const CNull -> SPtr { base = PNull; offset = Expr.bv_const 64 0L; ptr_poison = Expr.ff }
  | Const (CUndef t) -> (
    (* Approximated as a fresh-but-fixed value (see DESIGN.md). *)
    match t with
    | Types.Int w -> SInt { term = fresh_bv st "undef" w; poison = Expr.ff }
    | _ -> unsupported "undef at non-integer type")
  | Const (CPoison t) -> (
    match t with
    | Types.Int w -> SInt { term = Expr.bv_const w 0L; poison = Expr.tt }
    | _ -> SPtr { base = PNull; offset = Expr.bv_const 64 0L; ptr_poison = Expr.tt })
  | Global g ->
    if find_global st.modul g = None then unsupported "address of unknown global @%s" g
    else SPtr { base = PGlobal g; offset = Expr.bv_const 64 0L; ptr_poison = Expr.ff }

(* ------------------------------------------------------------------ *)
(* Memory

   Byte-granular symbolic memory: each written cell is one byte (a BV8 term
   plus a poison bit), so mixed-width access patterns -- i32 stores read
   back as i64, the paper's own Fig. 8 -- encode uniformly.  Offsets must
   still be compile-time constants; symbolic addressing is Unsupported. *)

(* Size in bytes of the object behind a base, when statically known. *)
let base_size st = function
  | PAlloca id -> Hashtbl.find_opt st.alloca_sizes id
  | PGlobal g -> (
    match find_global st.modul g with
    | Some gl -> Some (Types.size_in_bytes gl.gty)
    | None -> None)
  | PParam _ -> None (* caller-provided buffer, assumed large enough *)
  | PNull -> Some 0

(* The byte a load observes from an unwritten cell: initial memory for
   params/globals (shared between sides via stable names), an uninitialized
   fresh byte for allocas. *)
let initial_byte st (base : pbase) (offset : int) : cell =
  match base with
  | PParam i -> { byte = Expr.bv_var (Fmt.str "mem%d@%d" i offset) 8; bpoison = Expr.ff }
  | PGlobal g -> { byte = Expr.bv_var (Fmt.str "glob!%s@%d" g offset) 8; bpoison = Expr.ff }
  | PAlloca _ -> { byte = fresh_bv st "uninit" 8; bpoison = Expr.ff }
  | PNull -> unsupported "access through null"

let byte_of_mem st mem base offset : cell =
  match Mem.find_opt (base, offset) mem with
  | Some c -> c
  | None -> initial_byte st base offset

let check_bounds st ~guard base offset bytes =
  match base_size st base with
  | Some size when offset < 0 || offset + bytes > size -> add_ub st guard Expr.tt
  | Some _ | None -> if offset < 0 then add_ub st guard Expr.tt

let constant_offset what offset =
  match Expr.const_value offset with
  | Some v -> Int64.to_int v
  | None -> unsupported "%s at symbolic offset" what

let int_width what = function
  | Types.Int w -> w
  | Types.Ptr -> unsupported "%s of pointer-typed value" what
  | _ -> unsupported "%s of aggregate" what

let mem_load st (mem : memory) ~(guard : Expr.t) (p : sval) (ty : Types.t) : memory * sval =
  let { base; offset; ptr_poison } = as_sptr "load" p in
  add_ub st guard ptr_poison;
  let offset = constant_offset "load" offset in
  let width = int_width "load" ty in
  if base = PNull then (
    add_ub st guard Expr.tt;
    (mem, SInt { term = Expr.bv_const width 0L; poison = Expr.ff }))
  else begin
    let bytes = (width + 7) / 8 in
    check_bounds st ~guard base offset bytes;
    (* assemble little-endian; register initial bytes so later loads agree *)
    let mem = ref mem in
    let cells =
      List.init bytes (fun i ->
          let c = byte_of_mem st !mem base (offset + i) in
          mem := Mem.add (base, offset + i) c !mem;
          c)
    in
    let wide = 8 * bytes in
    let term =
      List.fold_left
        (fun (acc, i) c ->
          let b = if wide = 8 then c.byte else Expr.zext wide c.byte in
          let shifted =
            if i = 0 then b else Expr.bin Expr.Shl b (Expr.bv_const wide (Int64.of_int (8 * i)))
          in
          (Expr.bin Expr.Or acc shifted, i + 1))
        (Expr.bv_const wide 0L, 0) cells
      |> fst
    in
    let term = if width = wide then term else Expr.trunc width term in
    let poison = Expr.disj (List.map (fun c -> c.bpoison) cells) in
    (!mem, SInt { term; poison })
  end

let mem_store st (mem : memory) ~(guard : Expr.t) (p : sval) (ty : Types.t) (v : sval) : memory =
  let { base; offset; ptr_poison } = as_sptr "store" p in
  add_ub st guard ptr_poison;
  let offset = constant_offset "store" offset in
  let width = int_width "store" ty in
  if base = PNull then (
    add_ub st guard Expr.tt;
    mem)
  else begin
    let bytes = (width + 7) / 8 in
    check_bounds st ~guard base offset bytes;
    let x = match v with SInt x -> x | SPtr _ -> unsupported "store of pointer value" in
    let wide = 8 * bytes in
    let widened = if width = wide then x.term else Expr.zext wide x.term in
    List.fold_left
      (fun mem i ->
        let b =
          let shifted =
            if i = 0 then widened
            else Expr.bin Expr.LShr widened (Expr.bv_const wide (Int64.of_int (8 * i)))
          in
          if wide = 8 then shifted else Expr.trunc 8 shifted
        in
        Mem.add (base, offset + i) { byte = b; bpoison = x.poison } mem)
      mem
      (List.init bytes (fun i -> i))
  end

(* Merge predecessor memories at a join: per-byte selection by edge
   condition; paths lacking a byte see its initial contents. *)
let merge_memories st (incoming : (Expr.t * memory) list) : memory =
  match incoming with
  | [] -> Mem.empty
  | [ (_, m) ] -> m
  | (_, m0) :: rest ->
    let keys =
      List.fold_left (fun acc (_, m) -> Mem.fold (fun k _ acc -> k :: acc) m acc) [] incoming
      |> List.sort_uniq compare
    in
    List.fold_left
      (fun acc (base, offset) ->
        let cell m = byte_of_mem st m base offset in
        let c0 = cell m0 in
        let merged =
          List.fold_left
            (fun (acc : cell) (g, m) ->
              let c = cell m in
              {
                byte = Expr.bv_ite g c.byte acc.byte;
                bpoison = Expr.bool_ite g c.bpoison acc.bpoison;
              })
            c0 rest
        in
        Mem.add (base, offset) merged acc)
      Mem.empty keys

(* ------------------------------------------------------------------ *)
(* Instructions *)

let encode_binop st ~guard op (flags : flags) w (a : sval) (b : sval) : sval =
  let x = as_sint "binop" a and y = as_sint "binop" b in
  let operand_poison = Expr.or_ x.poison y.poison in
  let at = x.term and bt = y.term in
  let term op' = Expr.bin op' at bt in
  let with_flag_poison r extra = SInt { term = r; poison = Expr.or_ operand_poison extra } in
  let zero = Expr.bv_const w 0L in
  let shift_poison = Expr.uge bt (Expr.bv_const w (Int64.of_int w)) in
  match op with
  | Add ->
    let r = term Expr.Add in
    let p =
      Expr.or_
        (if flags.nsw then term_add_nsw_ov w at bt r else Expr.ff)
        (if flags.nuw then Expr.ult r at else Expr.ff)
    in
    with_flag_poison r p
  | Sub ->
    let r = term Expr.Sub in
    let p =
      Expr.or_
        (if flags.nsw then term_sub_nsw_ov w at bt r else Expr.ff)
        (if flags.nuw then Expr.ult at bt else Expr.ff)
    in
    with_flag_poison r p
  | Mul ->
    let r = term Expr.Mul in
    let p =
      Expr.or_
        (if flags.nsw then term_mul_nsw_ov w at bt r else Expr.ff)
        (if flags.nuw then term_mul_nuw_ov w at bt else Expr.ff)
    in
    with_flag_poison r p
  | UDiv ->
    (* UB: divisor poison or zero; dividend poison makes the result poison *)
    add_ub st guard (Expr.or_ y.poison (Expr.eq bt zero));
    let r = term Expr.UDiv in
    let p = if flags.exact then Expr.not_ (Expr.eq (Expr.bin Expr.URem at bt) zero) else Expr.ff in
    SInt { term = r; poison = Expr.or_ x.poison p }
  | SDiv ->
    let minv = Expr.bv_const w (Bits.min_signed w) in
    let ones = Expr.bv_const w (Bits.all_ones w) in
    add_ub st guard
      (Expr.disj
         [ y.poison; Expr.eq bt zero; Expr.and_ (Expr.eq at minv) (Expr.eq bt ones) ]);
    let r = term Expr.SDiv in
    let p = if flags.exact then Expr.not_ (Expr.eq (Expr.bin Expr.SRem at bt) zero) else Expr.ff in
    SInt { term = r; poison = Expr.or_ x.poison p }
  | URem ->
    add_ub st guard (Expr.or_ y.poison (Expr.eq bt zero));
    SInt { term = term Expr.URem; poison = x.poison }
  | SRem ->
    let minv = Expr.bv_const w (Bits.min_signed w) in
    let ones = Expr.bv_const w (Bits.all_ones w) in
    add_ub st guard
      (Expr.disj
         [ y.poison; Expr.eq bt zero; Expr.and_ (Expr.eq at minv) (Expr.eq bt ones) ]);
    SInt { term = term Expr.SRem; poison = x.poison }
  | Shl ->
    let r = term Expr.Shl in
    let p =
      Expr.disj
        [
          shift_poison;
          (if flags.nuw then Expr.not_ (Expr.eq (Expr.bin Expr.LShr r bt) at) else Expr.ff);
          (if flags.nsw then Expr.not_ (Expr.eq (Expr.bin Expr.AShr r bt) at) else Expr.ff);
        ]
    in
    with_flag_poison r p
  | LShr ->
    let r = term Expr.LShr in
    let p =
      Expr.or_ shift_poison
        (if flags.exact then Expr.not_ (Expr.eq (Expr.bin Expr.Shl r bt) at) else Expr.ff)
    in
    with_flag_poison r p
  | AShr ->
    let r = term Expr.AShr in
    let p =
      Expr.or_ shift_poison
        (if flags.exact then Expr.not_ (Expr.eq (Expr.bin Expr.Shl r bt) at) else Expr.ff)
    in
    with_flag_poison r p
  | And -> with_flag_poison (term Expr.And) Expr.ff
  | Or -> with_flag_poison (term Expr.Or) Expr.ff
  | Xor -> with_flag_poison (term Expr.Xor) Expr.ff

let encode_icmp pred (a : sval) (b : sval) : sval =
  let bool_result cond poison =
    SInt { term = Expr.bool_to_bv1 cond; poison }
  in
  match (a, b) with
  | SInt x, SInt y ->
    let cond =
      match pred with
      | Eq -> Expr.eq x.term y.term
      | Ne -> Expr.not_ (Expr.eq x.term y.term)
      | Ugt -> Expr.ugt x.term y.term
      | Uge -> Expr.uge x.term y.term
      | Ult -> Expr.ult x.term y.term
      | Ule -> Expr.ule x.term y.term
      | Sgt -> Expr.sgt x.term y.term
      | Sge -> Expr.sge x.term y.term
      | Slt -> Expr.slt x.term y.term
      | Sle -> Expr.sle x.term y.term
    in
    bool_result cond (Expr.or_ x.poison y.poison)
  | SPtr x, SPtr y -> (
    let poison = Expr.or_ x.ptr_poison y.ptr_poison in
    let same_base = x.base = y.base in
    match pred with
    | Eq when same_base -> bool_result (Expr.eq x.offset y.offset) poison
    | Ne when same_base -> bool_result (Expr.not_ (Expr.eq x.offset y.offset)) poison
    | Eq when x.base = PNull || y.base = PNull -> (
      (* allocas and globals are non-null; parameter pointers may be null *)
      match (x.base, y.base) with
      | (PAlloca _ | PGlobal _), _ | _, (PAlloca _ | PGlobal _) -> bool_result Expr.ff poison
      | _ -> unsupported "comparison of parameter pointer with null")
    | Ne when x.base = PNull || y.base = PNull -> (
      match (x.base, y.base) with
      | (PAlloca _ | PGlobal _), _ | _, (PAlloca _ | PGlobal _) -> bool_result Expr.tt poison
      | _ -> unsupported "comparison of parameter pointer with null")
    | _ -> unsupported "cross-object pointer comparison")
  | _ -> unsupported "comparison of pointer and integer"

(* ------------------------------------------------------------------ *)
(* Whole-function encoding *)

let encode ?(unroll_bound = 4) ~(side : string) (modul : modul) (f : func) : summary =
  let f = Unroll.unroll unroll_bound f in
  let cfg = Cfg.of_func f in
  let st =
    {
      side;
      modul;
      next_alloca = 0;
      alloca_sizes = Hashtbl.create 8;
      fresh_scope = (entry_block f).label;
      fresh_counters = Hashtbl.create 16;
      locals = Hashtbl.create 64;
      ub_acc = Expr.ff;
      exhausted_acc = Expr.ff;
      rets = [];
      ret_mems = [];
      call_events = [];
    }
  in
  (* Shared positional input variables. *)
  let param_names = ref [] in
  List.iteri
    (fun i (ty, v) ->
      match ty with
      | Types.Int w ->
        let name = Fmt.str "arg%d" i in
        param_names := name :: !param_names;
        Hashtbl.replace st.locals v
          (SInt { term = Expr.bv_var name w; poison = Expr.bool_var (name ^ "!p") })
      | Types.Ptr ->
        Hashtbl.replace st.locals v
          (SPtr { base = PParam i; offset = Expr.bv_const 64 0L; ptr_poison = Expr.ff })
      | _ -> unsupported "aggregate parameter")
    f.params;
  (* Guards and exit memories, filled in RPO. *)
  let guards : (label, Expr.t) Hashtbl.t = Hashtbl.create 16 in
  let edge_conds : (label * label, Expr.t) Hashtbl.t = Hashtbl.create 16 in
  let exit_mems : (label, memory) Hashtbl.t = Hashtbl.create 16 in
  let edge_cond from to_ =
    match Hashtbl.find_opt edge_conds (from, to_) with Some g -> g | None -> Expr.ff
  in
  let blocks = Cfg.blocks_rpo cfg in
  List.iter
    (fun (b : block) ->
      st.fresh_scope <- b.label;
      let guard =
        if b.label = (entry_block f).label then Expr.tt
        else
          Cfg.predecessors cfg b.label
          |> List.sort_uniq compare
          |> List.fold_left (fun acc p -> Expr.or_ acc (edge_cond p b.label)) Expr.ff
      in
      Hashtbl.replace guards b.label guard;
      if b.label = Unroll.exhausted_label then begin
        st.exhausted_acc <- Expr.or_ st.exhausted_acc guard
      end
      else begin
        let incoming_mems =
          Cfg.predecessors cfg b.label
          |> List.sort_uniq compare
          |> List.filter_map (fun p ->
                 match Hashtbl.find_opt exit_mems p with
                 | Some m -> Some (edge_cond p b.label, m)
                 | None -> None)
        in
        let mem = ref (merge_memories st incoming_mems) in
        (* Instructions *)
        List.iter
          (fun { name; instr } ->
            let define v sv = Hashtbl.replace st.locals v sv in
            match instr with
            | Phi { ty; incoming } ->
              let contributions =
                List.filter_map
                  (fun (op, from) ->
                    let g = edge_cond from b.label in
                    if g.Expr.node = Expr.False then None else Some (g, eval_operand st ty op))
                  incoming
              in
              let v =
                match contributions with
                | [] ->
                  (* unreachable phi: arbitrary value *)
                  (match ty with
                  | Types.Int w -> SInt { term = fresh_bv st "deadphi" w; poison = Expr.ff }
                  | _ -> SPtr { base = PNull; offset = Expr.bv_const 64 0L; ptr_poison = Expr.ff })
                | (_, v0) :: rest ->
                  List.fold_left (fun acc (g, v) -> sval_ite g v acc) v0 rest
              in
              define (Option.get name) v
            | Binop { op; flags; ty; lhs; rhs } ->
              let w = Types.width ty in
              let a = eval_operand st ty lhs and bb = eval_operand st ty rhs in
              define (Option.get name) (encode_binop st ~guard op flags w a bb)
            | Icmp { pred; ty; lhs; rhs } ->
              let a = eval_operand st ty lhs and bb = eval_operand st ty rhs in
              define (Option.get name) (encode_icmp pred a bb)
            | Select { ty; cond; if_true; if_false } ->
              let c = as_sint "select" (eval_operand st Types.i1 cond) in
              let a = eval_operand st ty if_true and bb = eval_operand st ty if_false in
              let choose = Expr.bv1_to_bool c.term in
              let v = sval_ite choose a bb in
              let v =
                match v with
                | SInt x -> SInt { x with poison = Expr.or_ c.poison x.poison }
                | SPtr x -> SPtr { x with ptr_poison = Expr.or_ c.poison x.ptr_poison }
              in
              define (Option.get name) v
            | Cast { op; src_ty; value; dst_ty } -> (
              let v = eval_operand st src_ty value in
              match op with
              | Trunc ->
                let x = as_sint "trunc" v in
                define (Option.get name)
                  (SInt { term = Expr.trunc (Types.width dst_ty) x.term; poison = x.poison })
              | ZExt ->
                let x = as_sint "zext" v in
                define (Option.get name)
                  (SInt { term = Expr.zext (Types.width dst_ty) x.term; poison = x.poison })
              | SExt ->
                let x = as_sint "sext" v in
                define (Option.get name)
                  (SInt { term = Expr.sext (Types.width dst_ty) x.term; poison = x.poison })
              | Bitcast when Types.equal src_ty dst_ty -> define (Option.get name) v
              | Bitcast -> define (Option.get name) v (* int<->int of equal width *)
              | PtrToInt | IntToPtr -> unsupported "pointer/integer cast")
            | Alloca { ty; _ } ->
              let id = st.next_alloca in
              st.next_alloca <- id + 1;
              Hashtbl.replace st.alloca_sizes id (Types.size_in_bytes ty);
              define (Option.get name)
                (SPtr { base = PAlloca id; offset = Expr.bv_const 64 0L; ptr_poison = Expr.ff })
            | Load { ty; ptr; _ } ->
              let p = eval_operand st Types.Ptr ptr in
              let mem', v = mem_load st !mem ~guard p ty in
              mem := mem';
              define (Option.get name) v
            | Store { ty; value; ptr; _ } ->
              let p = eval_operand st Types.Ptr ptr in
              let v = eval_operand st ty value in
              mem := mem_store st !mem ~guard p ty v
            | Gep { base_ty; ptr; indices; inbounds } ->
              let p = as_sptr "gep" (eval_operand st Types.Ptr ptr) in
              let eval_index (ity, op) =
                let idx = as_sint "gep index" (eval_operand st ity op) in
                let idx64 =
                  let w = Expr.width idx.term in
                  if w = 64 then idx.term else Expr.sext 64 idx.term
                in
                (idx64, idx.poison)
              in
              (* The first index scales by the whole pointee type; the rest
                 descend into it (LLVM gep semantics). *)
              let rec descend ty indices (delta : Expr.t) (poison : Expr.t) =
                match indices with
                | [] -> (delta, poison)
                | (ity, op) :: rest -> (
                  let idx64, ip = eval_index (ity, op) in
                  let poison = Expr.or_ poison ip in
                  match ty with
                  | Types.Struct ts -> (
                    match Expr.const_value idx64 with
                    | Some fi ->
                      let fi = Int64.to_int fi in
                      if fi < 0 || fi >= List.length ts then unsupported "gep struct index"
                      else
                        descend (List.nth ts fi) rest
                          (Expr.bin Expr.Add delta
                             (Expr.bv_const 64 (Int64.of_int (Types.struct_field_offset ts fi))))
                          poison
                    | None -> unsupported "symbolic struct gep index")
                  | Types.Array (_, elt) ->
                    descend elt rest
                      (Expr.bin Expr.Add delta
                         (Expr.bin Expr.Mul idx64
                            (Expr.bv_const 64 (Int64.of_int (Types.size_in_bytes elt)))))
                      poison
                  | _ -> unsupported "gep into scalar type")
              in
              let delta, idx_poison =
                match indices with
                | [] -> (Expr.bv_const 64 0L, Expr.ff)
                | first :: rest ->
                  let idx64, ip = eval_index first in
                  let delta0 =
                    Expr.bin Expr.Mul idx64
                      (Expr.bv_const 64 (Int64.of_int (Types.size_in_bytes base_ty)))
                  in
                  descend base_ty rest delta0 ip
              in
              let offset = Expr.bin Expr.Add p.offset delta in
              let oob_poison =
                if not inbounds then Expr.ff
                else
                  match (Expr.const_value offset, base_size st p.base) with
                  | Some o, Some size ->
                    Expr.of_bool (Int64.to_int o < 0 || Int64.to_int o > size)
                  | _ -> Expr.ff
              in
              define (Option.get name)
                (SPtr
                   {
                     base = p.base;
                     offset;
                     ptr_poison = Expr.disj [ p.ptr_poison; idx_poison; oob_poison ];
                   })
            | Call { ret_ty; callee; args } ->
              let argv = List.map (fun (ty, o) -> eval_operand st ty o) args in
              List.iter (fun a -> add_ub st guard (sval_poison a)) argv;
              let pure =
                match find_decl st.modul callee with Some d -> d.pure | None -> false
              in
              let result =
                match ret_ty with
                | Types.Void -> None
                | Types.Int w ->
                  Some (SInt { term = fresh_bv st ("call_" ^ callee) w; poison = Expr.ff })
                | _ -> unsupported "call returning pointer"
              in
              st.call_events <-
                { call_guard = guard; callee; args = argv; result; pure } :: st.call_events;
              (match (name, result) with
              | Some n, Some r -> Hashtbl.replace st.locals n r
              | Some _, None -> unsupported "named void call"
              | None, _ -> ())
            | Freeze { ty; value } -> (
              let v = eval_operand st ty value in
              match v with
              | SInt x ->
                let w = Expr.width x.term in
                define (Option.get name)
                  (SInt
                     { term = Expr.bv_ite x.poison (fresh_bv st "freeze" w) x.term; poison = Expr.ff })
              | SPtr x -> define (Option.get name) (SPtr { x with ptr_poison = Expr.ff })))
          b.instrs;
        Hashtbl.replace exit_mems b.label !mem;
        (* Terminator: edge conditions and effects *)
        match b.term with
        | Ret v ->
          let value =
            Option.map
              (fun (ty, op) ->
                match eval_operand st ty op with
                | SInt _ as sv -> sv
                | SPtr _ -> unsupported "pointer return value")
              v
          in
          st.rets <- (guard, value) :: st.rets;
          st.ret_mems <- (guard, !mem) :: st.ret_mems
        | Br l -> Hashtbl.replace edge_conds (b.label, l) guard
        | CondBr { cond; if_true; if_false } ->
          let c = as_sint "condbr" (eval_operand st Types.i1 cond) in
          add_ub st guard c.poison;
          let ct = Expr.bv1_to_bool c.term in
          let set l g =
            let prev = edge_cond b.label l in
            Hashtbl.replace edge_conds (b.label, l) (Expr.or_ prev g)
          in
          set if_true (Expr.and_ guard ct);
          set if_false (Expr.and_ guard (Expr.not_ ct))
        | Switch { ty; value; default; cases } ->
          let x = as_sint "switch" (eval_operand st ty value) in
          add_ub st guard x.poison;
          let w = Types.width ty in
          let not_any_case =
            List.fold_left
              (fun acc (v, _) -> Expr.and_ acc (Expr.not_ (Expr.eq x.term (Expr.bv_const w v))))
              Expr.tt cases
          in
          let set l g =
            let prev = edge_cond b.label l in
            Hashtbl.replace edge_conds (b.label, l) (Expr.or_ prev g)
          in
          List.iter (fun (v, l) -> set l (Expr.and_ guard (Expr.eq x.term (Expr.bv_const w v)))) cases;
          set default (Expr.and_ guard not_any_case)
        | Unreachable -> add_ub st guard Expr.tt
      end)
    blocks;
  (* Merge returns. *)
  let returns = List.fold_left (fun acc (g, _) -> Expr.or_ acc g) Expr.ff st.rets in
  let ret_value =
    match st.rets with
    | [] -> None
    | (_, None) :: _ -> None
    | (g0, Some v0) :: rest ->
      ignore g0;
      let merged =
        List.fold_left
          (fun acc (g, v) ->
            match v with Some v -> sval_ite g v acc | None -> acc)
          v0 rest
      in
      let x = as_sint "return" merged in
      Some (x.term, x.poison)
  in
  (* Merge final observable memory across return points. *)
  st.fresh_scope <- "__final";
  let final_mem_map = merge_memories st st.ret_mems in
  let final_mem =
    Mem.fold
      (fun (base, offset) c acc ->
        match base with
        | PParam _ | PGlobal _ -> ((base, offset), c) :: acc
        | PAlloca _ | PNull -> acc)
      final_mem_map []
    |> List.sort compare
  in
  {
    ub = st.ub_acc;
    exhausted = st.exhausted_acc;
    returns;
    ret_value;
    calls = List.rev st.call_events;
    final_mem;
    param_names = List.rev !param_names;
  }

(* Bump when the translation from IR to SMT summaries changes meaning (new
   poison rules, different memory model, changed unrolling frames): the
   disk-backed verdict store keys entry freshness on this. *)
let semantics_version = 1

(** The translation validator's public verdict API.

    Verdicts use the paper's four categories (its Tables I/II).  A solver
    counterexample is re-executed in the concrete interpreter before
    committing to "semantic error": if concrete execution does not confirm
    the mismatch (an artifact of the encoding's approximations), the verdict
    degrades to "inconclusive", keeping counterexamples — and the training
    diagnostics built from them — trustworthy. *)

type category = Equivalent | Semantic_error | Syntax_error | Inconclusive

type verdict = {
  category : category;
  message : string;  (** Alive2-style diagnostic *)
  example : (string * int64) list;  (** counterexample inputs, when any *)
  bounded : bool;  (** loops were unrolled: bounded validation *)
  copy_of_input : bool;  (** target is alpha-equal to source *)
}

val signature_matches : Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func -> bool
(** Same return type and positionally equal parameter types. *)

val incremental_default : unit -> bool
(** The default for [?incremental]: true unless [VERIOPT_INCR] is set to
    [0]/[false]/[off]/[no]. *)

val unroll_schedule : int -> int list
(** The iterative-deepening schedule for a bound: doubling depths ending
    exactly at the bound ([4 -> [1; 2; 4]], [6 -> [1; 2; 4; 6]]). *)

val verify_funcs :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?incremental:bool ->
  ?sat:Veriopt_smt.Sat.config ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  verdict
(** Does [tgt] refine [src]?  Both functions must already be well-formed;
    route untrusted text through {!verify_text}.  [unroll] bounds loop
    unrolling (default 4); [max_conflicts] is the solver budget; [deadline]
    is an absolute wall-clock instant — past it the solver reports
    [Inconclusive] instead of continuing.  [reduce] (default on) is the
    SAT core's learned-clause-DB reduction knob; it affects solver speed,
    never verdicts.

    [incremental] (default {!incremental_default}) makes loop-bearing pairs
    run an iterative-deepening unroll schedule (see {!unroll_schedule}) over
    one persistent solver session, stopping early on a conclusive verdict;
    the [max_conflicts] and [deadline] budgets are amortized across the
    whole schedule.  Verdicts agree with the single-shot path: only the
    final bound's "no mismatch" proves equivalence, counterexamples are
    depth-independent (and still concretely re-validated), and resource
    exhaustion anywhere is inconclusive.

    [sat] diversifies the underlying SAT solver's search trajectory
    (portfolio members); it affects solver speed, never verdicts. *)

val verify_text :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?incremental:bool ->
  ?sat:Veriopt_smt.Sat.config ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt_text:string ->
  verdict
(** Verify model-produced IR text: parse and validation failures map to
    [Syntax_error], as in the paper's tables. *)

(** {1 Cube-and-conquer}

    The engine's portfolio tier-2 path.  The parent runs {!cube_probe} on a
    small conflict budget; a conclusive probe is a verdict outright, an
    inconclusive one yields a plan whose [2^k] cubes are raced across
    worker processes, each running {!verify_funcs_cube}.  Every worker
    re-encodes the same pair at the same single-shot full bound, so the raw
    SAT literals in the cubes name the same variables in every process
    (structural blast order).  At the join, {!probe_join} merges the
    workers' learned unit clauses back into the probe solver. *)

type cube_outcome =
  | Cube_refines  (** no mismatch within this cube (and bound) *)
  | Cube_cex of verdict
      (** a concretely-confirmed counterexample — decides the whole query *)
  | Cube_unknown  (** budget/deadline/unsupported within this cube *)

val verify_funcs_cube :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?sat:Veriopt_smt.Sat.config ->
  cube:int list ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  cube_outcome * int list
(** Solve one cube of the pair's refinement query (worker side); also
    returns the level-0 unit literals learned, for {!probe_join}.  Solver
    counterexamples are concretely re-validated {e here} — only a confirmed
    [Semantic_error] becomes [Cube_cex]; an encoding artifact degrades to
    [Cube_unknown], exactly like {!verify_funcs}'s policy.  The result is
    closure-free and crosses process boundaries. *)

type cube_plan = {
  plan_probe : Veriopt_smt.Solver.probe;
  cubes : int list list;  (** the [2^k] assumption lists, a partition *)
  plan_m : Veriopt_ir.Ast.modul;
  plan_src : Veriopt_ir.Ast.func;
  plan_tgt : Veriopt_ir.Ast.func;
  plan_s_sum : Encode.summary;
  plan_t_sum : Encode.summary;
  plan_bounded : bool;
  plan_copy : bool;
}

val cube_probe :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?sat:Veriopt_smt.Sat.config ->
  k:int ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  [ `Verdict of verdict | `Split of cube_plan ]
(** Probe the pair on a small budget (default 500 conflicts, single-shot at
    the full [unroll] bound).  Conclusive probes — including signature
    mismatches and unsupported encodings — return [`Verdict]; an
    inconclusive probe returns a [`Split] over the probe's top-[k] VSIDS
    variables. *)

val probe_join : ?max_conflicts:int -> ?deadline:float -> cube_plan -> units:int list -> verdict option
(** Merge cube workers' unit literals into the probe and re-solve on a
    small budget (default 10k conflicts).  [Some v] if jointly conclusive;
    [None] means the units didn't close the query. *)

val semantics_version : int
(** Bump when the verdict taxonomy or concrete re-validation changes
    meaning; registered in the verdict store's semantics digest so stale
    entries are skipped. *)

(** The translation validator's public verdict API.

    Verdicts use the paper's four categories (its Tables I/II).  A solver
    counterexample is re-executed in the concrete interpreter before
    committing to "semantic error": if concrete execution does not confirm
    the mismatch (an artifact of the encoding's approximations), the verdict
    degrades to "inconclusive", keeping counterexamples — and the training
    diagnostics built from them — trustworthy. *)

type category = Equivalent | Semantic_error | Syntax_error | Inconclusive

type verdict = {
  category : category;
  message : string;  (** Alive2-style diagnostic *)
  example : (string * int64) list;  (** counterexample inputs, when any *)
  bounded : bool;  (** loops were unrolled: bounded validation *)
  copy_of_input : bool;  (** target is alpha-equal to source *)
}

val signature_matches : Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func -> bool
(** Same return type and positionally equal parameter types. *)

val incremental_default : unit -> bool
(** The default for [?incremental]: true unless [VERIOPT_INCR] is set to
    [0]/[false]/[off]/[no]. *)

val unroll_schedule : int -> int list
(** The iterative-deepening schedule for a bound: doubling depths ending
    exactly at the bound ([4 -> [1; 2; 4]], [6 -> [1; 2; 4; 6]]). *)

val verify_funcs :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?incremental:bool ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  verdict
(** Does [tgt] refine [src]?  Both functions must already be well-formed;
    route untrusted text through {!verify_text}.  [unroll] bounds loop
    unrolling (default 4); [max_conflicts] is the solver budget; [deadline]
    is an absolute wall-clock instant — past it the solver reports
    [Inconclusive] instead of continuing.  [reduce] (default on) is the
    SAT core's learned-clause-DB reduction knob; it affects solver speed,
    never verdicts.

    [incremental] (default {!incremental_default}) makes loop-bearing pairs
    run an iterative-deepening unroll schedule (see {!unroll_schedule}) over
    one persistent solver session, stopping early on a conclusive verdict;
    the [max_conflicts] and [deadline] budgets are amortized across the
    whole schedule.  Verdicts agree with the single-shot path: only the
    final bound's "no mismatch" proves equivalence, counterexamples are
    depth-independent (and still concretely re-validated), and resource
    exhaustion anywhere is inconclusive. *)

val verify_text :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?incremental:bool ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt_text:string ->
  verdict
(** Verify model-produced IR text: parse and validation failures map to
    [Syntax_error], as in the paper's tables. *)

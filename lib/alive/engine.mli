(** The tiered, cached verification engine — the GRPO reward hot path.

    Verification proceeds through three tiers, cheapest first:

    - {b Tier 0} (always): parse / validation / signature checks and
      alpha-equality copy detection — the existing front half of
      {!Alive.verify_text}.
    - {b Tier 1}: a concrete counterexample hunt with the I/O oracle
      ({!Veriopt_eval.Exec_oracle}).  A confirmed concrete mismatch yields
      [Semantic_error] immediately, with the distinguishing input as the
      diagnostic, skipping bit-blasting entirely.  Concrete counterexamples
      are trusted by construction — unlike the solver's, which must be
      re-executed concretely anyway before the verdict layer believes them.
    - {b Tier 2}: the full SMT path ({!Alive.verify_funcs}).

    Tier-1 results for misses and all tier-2 verdicts are memoized in a
    bounded {!Vcache} keyed by the canonical query text, so GRPO groups full
    of duplicate or copied completions pay for each distinct candidate once.

    Invariant: tiers never {e flip} a verdict.  Tier 1 only ever reports
    mismatches that concrete execution witnessed, so it can only refine a
    would-be [Inconclusive] (solver budget exhaustion) into the
    [Semantic_error] the solver was hunting for; [Equivalent] and
    [Syntax_error] outcomes are untouched. *)

type t

type isolate =
  | Domains  (** tier 2 runs in-process (the default; deadlines are cooperative) *)
  | Proc
      (** tier 2 runs in a forked {!Veriopt_vproc.Vproc} worker: hard SIGKILL
          deadlines, [setrlimit] memory/CPU caps, automatic respawn.  A dead
          worker degrades to an {e uncached} [Inconclusive] verdict with a
          distinct reason — never an exception in the reward path. *)

val isolate_of_env : unit -> isolate
(** The backend [VERIOPT_ISOLATE] selects: ["proc"] → [Proc], ["domain"],
    empty or unset → [Domains]; anything else warns once and falls back to
    [Domains]. *)

val create :
  ?capacity:int ->
  ?tier1_samples:int ->
  ?breaker_k:int ->
  ?breaker_cooldown:int ->
  ?isolate:isolate ->
  unit ->
  t
(** [capacity] bounds the verdict cache (default 8192 per generation);
    [tier1_samples] is the concrete-oracle battery size (default 16;
    [0] disables tier 1).

    [breaker_k] (default 0 = disabled) arms the circuit breaker: after
    [breaker_k] consecutive inconclusive tier-2 verdicts the SMT tier is
    skipped for the next [breaker_cooldown] (default 16) would-be runs,
    answering [Inconclusive] immediately — degraded mode only ever widens
    [Inconclusive], never flips a conclusive verdict.  Trip and skip counts
    surface in {!Vcache.stats}.

    [isolate] (default {!isolate_of_env}) picks the tier-2 backend.  [Proc]
    forks its worker pool eagerly here — the safest moment for a multicore
    runtime, before reward traffic spins up the Par domains — and silently
    degrades to [Domains] when fork is unavailable (non-Unix, or
    [VERIOPT_NO_FORK] set), with a one-time warning. *)

val isolate : t -> isolate
(** The backend this engine actually runs (after any fallback). *)

val shared : unit -> t
(** The process-wide engine, created on first use: training, evaluation and
    the bench harness all share its cache and counters. *)

val verify_funcs :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?incremental:bool ->
  t ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  Alive.verdict
(** Tiered + cached equivalent of {!Alive.verify_funcs} (same defaults).
    [deadline] is an absolute [Unix.gettimeofday] instant: past it the SMT
    tier answers [Inconclusive] instead of continuing.  Deadline-expired and
    breaker-skipped verdicts are transient and never cached.  [reduce]
    (default on) is the SAT core's clause-DB reduction knob; like
    [max_conflicts] it is part of the cache key.  [incremental] (default
    {!Alive.incremental_default}) selects iterative-deepening unroll for
    loop-bearing pairs; the resolved flag also enters the cache key and the
    marshalled [Proc] request, so both backends and the cache agree on the
    schedule. *)

val verify_text :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?incremental:bool ->
  t ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt_text:string ->
  Alive.verdict
(** Tiered + cached equivalent of {!Alive.verify_text}.  Parse and
    validation failures ([Syntax_error]) are cheap and never cached. *)

val stats : t -> Vcache.stats
val reset_stats : t -> unit
(** Clear the cache and zero every counter (between bench phases). *)

(** The tiered, cached verification engine — the GRPO reward hot path.

    Verification proceeds through three tiers, cheapest first:

    - {b Tier 0} (always): parse / validation / signature checks and
      alpha-equality copy detection — the existing front half of
      {!Alive.verify_text}.
    - {b Tier 1}: a concrete counterexample hunt with the I/O oracle
      ({!Veriopt_eval.Exec_oracle}).  A confirmed concrete mismatch yields
      [Semantic_error] immediately, with the distinguishing input as the
      diagnostic, skipping bit-blasting entirely.  Concrete counterexamples
      are trusted by construction — unlike the solver's, which must be
      re-executed concretely anyway before the verdict layer believes them.
    - {b Tier 2}: the full SMT path ({!Alive.verify_funcs}).

    Tier-1 results for misses and all tier-2 verdicts are memoized in a
    bounded {!Vcache} keyed by the canonical query text, so GRPO groups full
    of duplicate or copied completions pay for each distinct candidate once.

    Invariant: tiers never {e flip} a verdict.  Tier 1 only ever reports
    mismatches that concrete execution witnessed, so it can only refine a
    would-be [Inconclusive] (solver budget exhaustion) into the
    [Semantic_error] the solver was hunting for; [Equivalent] and
    [Syntax_error] outcomes are untouched. *)

type t

type isolate =
  | Domains  (** tier 2 runs in-process (the default; deadlines are cooperative) *)
  | Proc
      (** tier 2 runs in a forked {!Veriopt_vproc.Vproc} worker: hard SIGKILL
          deadlines, [setrlimit] memory/CPU caps, automatic respawn.  A dead
          worker degrades to an {e uncached} [Inconclusive] verdict with a
          distinct reason — never an exception in the reward path. *)

val isolate_of_env : unit -> isolate
(** The backend [VERIOPT_ISOLATE] selects: ["proc"] → [Proc], ["domain"],
    empty or unset → [Domains]; anything else warns once and falls back to
    [Domains]. *)

val create :
  ?capacity:int ->
  ?tier1_samples:int ->
  ?tier1_fuel:int ->
  ?breaker_k:int ->
  ?breaker_cooldown:int ->
  ?isolate:isolate ->
  ?portfolio:int ->
  ?cube_k:int ->
  ?store:string ->
  unit ->
  t
(** [capacity] bounds the verdict cache (default 8192 per generation);
    [tier1_samples] is the concrete-oracle battery size (default 16;
    [0] disables tier 1); [tier1_fuel] bounds each concrete run (default
    200k steps — the miner lowers it so loopy mutants cannot stall the
    battery; an exhausted run never distinguishes, so a small budget only
    weakens tier 1, it cannot make it wrong).

    [breaker_k] (default 0 = disabled) arms the circuit breaker: after
    [breaker_k] consecutive inconclusive tier-2 verdicts the SMT tier is
    skipped for the next [breaker_cooldown] (default 16) would-be runs,
    answering [Inconclusive] immediately — degraded mode only ever widens
    [Inconclusive], never flips a conclusive verdict.  Trip and skip counts
    surface in {!Vcache.stats}.

    [isolate] (default {!isolate_of_env}) picks the tier-2 backend.  [Proc]
    forks its worker pool eagerly here — the safest moment for a multicore
    runtime, before reward traffic spins up the Par domains — and silently
    degrades to [Domains] when fork is unavailable (non-Unix, or
    [VERIOPT_NO_FORK] set), with a one-time warning.

    [portfolio] (default [VERIOPT_PORTFOLIO] or 1) > 1 turns tier 2 into a
    race of that many diversified SAT configurations across the fork pool
    (implying [Proc]; the pool is sized to fit a whole race).  The parent
    first probes each query on a tiny conflict budget; inconclusive probes
    split into [2^cube_k] cube legs (cube-and-conquer on the probe's top
    VSIDS variables; [cube_k] defaults to [VERIOPT_CUBE_K] or 2) plus
    diversified full-query legs.  The first conclusive leg wins and the
    losers are promptly SIGKILLed; racing affects wall time, never
    verdicts.  When fork is unavailable the portfolio silently degrades to
    a single solver.

    [store] (default [VERIOPT_STORE] or none) mounts the shared disk-backed
    verdict store ({!Veriopt_store.Store}) at that directory as a
    read-through/write-behind tier beneath the in-memory cache: memory
    misses consult it (keyed on {!store_key}; a hit counts as a cache hit
    and feeds the admission EWMAs its near-zero latency), cacheable fresh
    verdicts are appended to it, forked [Proc] workers read it, and
    {!shutdown} flushes and closes it.  An unopenable store warns once and
    the engine runs without it. *)

val isolate : t -> isolate
(** The backend this engine actually runs (after any fallback). *)

val portfolio : t -> int
(** The portfolio width this engine actually races (1 after fallback). *)

val shutdown : t -> unit
(** Kill and reap the fork pool (no-op for the [Domains] backend) and
    flush + close the verdict store, if mounted.  Must not race in-flight
    verifications. *)

val orphans : t -> int
(** Workers still alive after {!shutdown} — a bench smoke check that racing
    leaked no processes (always [0] after a clean shutdown). *)

val shared : unit -> t
(** The process-wide engine, created on first use: training, evaluation and
    the bench harness all share its cache and counters. *)

val verify_funcs :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?incremental:bool ->
  ?sat:Veriopt_smt.Sat.config ->
  t ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  Alive.verdict
(** Tiered + cached equivalent of {!Alive.verify_funcs} (same defaults).
    [deadline] is an absolute [Unix.gettimeofday] instant: past it the SMT
    tier answers [Inconclusive] instead of continuing.  Deadline-expired and
    breaker-skipped verdicts are transient and never cached.  [reduce]
    (default on) is the SAT core's clause-DB reduction knob; like
    [max_conflicts] it is part of the cache key.  [incremental] (default
    {!Alive.incremental_default}) selects iterative-deepening unroll for
    loop-bearing pairs; the resolved flag also enters the cache key and the
    marshalled [Proc] request, so both backends and the cache agree on the
    schedule.  [sat] is the base SAT configuration: the single solver's
    config when [portfolio = 1], and the seed/config of member 0 of a race
    (its canonical description enters the cache key, as does the portfolio
    width). *)

val verify_text :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?incremental:bool ->
  ?sat:Veriopt_smt.Sat.config ->
  t ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt_text:string ->
  Alive.verdict
(** Tiered + cached equivalent of {!Alive.verify_text}.  Parse and
    validation failures ([Syntax_error]) are cheap and never cached. *)

val stats : t -> Vcache.stats
val reset_stats : t -> unit
(** Clear the cache and zero every counter (between bench phases). *)

(** {1 Pain probes}

    The adversarial miner's measurement channel: one timed,
    deadline-bounded verification plus the deltas of every misbehaviour
    counter the resilience layer keeps. *)

type pain = {
  p_verdict : Alive.verdict;
  p_wall_s : float;  (** wall time of this probe *)
  p_deadline_frac : float;  (** wall / budget; >= 1. when the deadline expired *)
  p_conflicts : int;
      (** SAT conflicts this probe burned.  Read from the process-global
          solver counters, so only meaningful for single-threaded probing on
          the in-process (Domains) backend. *)
  p_breaker_trips : int;  (** circuit-breaker opens during the probe *)
  p_worker_kills : int;  (** vproc hard-deadline SIGKILLs (process-global) *)
  p_worker_crashes : int;  (** vproc workers that died on their own *)
  p_tier2_runs : int;  (** SMT-tier entries (0 = settled by tier 0/1) *)
  p_cached : bool;  (** answered from cache/store: no fresh work measured *)
}

type pain_stats = {
  probes : int;
  probe_inconclusive : int;
  probe_deadline_expired : int;
  probe_wall_s : float;
  probe_max_wall_s : float;
}

val verify_pain :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?budget_s:float ->
  ?reduce:bool ->
  ?incremental:bool ->
  ?sat:Veriopt_smt.Sat.config ->
  t ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  pain
(** {!verify_funcs} under a relative deadline of [budget_s] seconds from now
    (default 0.05), returning the verdict together with the probe's cost
    deltas.  A cache or store hit sets [p_cached] — the probe measured
    nothing fresh and the miner should discard it (mine with a small or
    reset cache). *)

val pain_stats : t -> pain_stats
(** Cumulative {!verify_pain} totals for this engine (report surface). *)

(** {1 The disk-backed verdict store} *)

val store : t -> Veriopt_store.Store.t option
(** The mounted store, if any. *)

val store_stats : t -> Veriopt_store.Store.stats option
(** Hit/miss/write/corrupt/stale counters of the mounted store. *)

val semantics_digest : unit -> string
(** The engine-semantics version hash every store record carries: a digest
    of the registered [semantics_version]s of Encode, Refine, Alive, Sat
    and Canon — the key-level canonical form is part of the key semantics
    (plus the runtime lineage).  Bumping any of them invalidates all prior
    store entries. *)

val store_key :
  ?unroll:int ->
  ?max_conflicts:int ->
  ?reduce:bool ->
  ?incremental:bool ->
  ?portfolio:int ->
  ?sat:Veriopt_smt.Sat.config ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  string
(** The store's content address for a query (defaults mirror
    {!verify_funcs} with [portfolio = 1]): raw canonical module text,
    {e alpha-canonical} source/target texts — renamed-but-identical pairs,
    and operand-commuted / constant-renormalized twins (the key-level
    {!Veriopt_ir.Canon} quotient), collide onto one entry, soundly,
    because renumbering and canonicalization preserve semantics — plus
    every verdict-relevant knob.  Exposed for the key-soundness fuzz
    harness. *)

val store_encode : tier:int -> delta:Veriopt_smt.Solver.stats -> Alive.verdict -> string
(** Serialize a store payload: the verdict, the tier that produced it and
    the solver-stats delta the original miss paid. *)

val store_decode : string -> (Alive.verdict * int * Veriopt_smt.Solver.stats) option
(** Inverse of {!store_encode}; [None] (never an exception) on any payload
    that does not decode, which the cache counts as a corrupt entry. *)

val breaker_open : t -> bool
(** Snapshot of the circuit breaker: [true] while tier 2 is being skipped.
    The serve layer's admission control consults this to refuse bulk work
    that would only widen the inconclusive streak. *)

val coalesce_key :
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  string
(** Alpha-canonical text of a query: equal for identical {e and}
    alpha-renamed copies of the same (module, src, tgt) triple.  Backed by
    the engine's canonical-text memo (a second physical-identity ring, since
    alpha-renamed text differs from the raw cache-key text), so repeated
    submissions of the same AST values cost one print.  The serve layer keys
    its in-queue coalescing on this plus the budget knobs. *)

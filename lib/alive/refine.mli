(** The refinement check: does the target summary refine the source?

    [Unsat] on the mismatch formula proves refinement within the unrolling
    bound; a model is a candidate counterexample (re-validated concretely by
    the verdict layer).  Pure calls are related by Ackermann constraints;
    impure calls must match positionally or the query is rejected as
    unsupported rather than risking an unsound "not equivalent". *)

type outcome =
  | Refines
  | Counterexample of Veriopt_smt.Solver.model
  | Unknown

val check :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?sat:Veriopt_smt.Sat.config ->
  Encode.summary ->
  Encode.summary ->
  outcome
(** [deadline] is an absolute wall-clock instant forwarded to the solver;
    [reduce] is the learned-clause-DB reduction knob (default on); [sat]
    diversifies the underlying SAT solver (portfolio members). *)

(** {1 Cube-and-conquer}

    The parent probes the refinement query on a small budget; on [Unknown]
    its VSIDS order names the split variables, each cube is solved by
    {!check_cube} in a separate process, and unit clauses learned by the
    cube workers are merged back at {!probe_join}.  Raw SAT literals travel
    between planner and workers, which is sound because both sides blast
    the {e same} deterministic query assertion list in a fresh context —
    variable numbering is structural, independent of solver config. *)

val probe :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?sat:Veriopt_smt.Sat.config ->
  Encode.summary ->
  Encode.summary ->
  Veriopt_smt.Solver.probe * outcome
(** Budget-limited check (default 500 conflicts) whose solver context stays
    alive for splitting and joining. *)

val probe_top_vars : Veriopt_smt.Solver.probe -> int -> int list
(** The probe's top-[k] split variables, most-active first. *)

val probe_join :
  ?max_conflicts:int ->
  ?deadline:float ->
  Veriopt_smt.Solver.probe ->
  units:int list ->
  outcome
(** Merge cube workers' level-0 unit literals into the probe and re-solve
    on a small budget: units from different cubes may be jointly
    conclusive. *)

val check_cube :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?sat:Veriopt_smt.Sat.config ->
  cube:int list ->
  Encode.summary ->
  Encode.summary ->
  outcome * int list
(** Decide the refinement query under a cube of raw assumption literals;
    also returns the level-0 units learned (safe to {!probe_join}).
    [Refines] means "no mismatch within this cube" only. *)

(** {1 Incremental deepening}

    One persistent solver session shared across an iterative-deepening
    unroll schedule.  Each depth's query is asserted under a fresh guard
    literal and checked with that guard assumed; deepening retracts the old
    depth by asserting the guard's negation, so the clause set only ever
    grows and learned clauses stay sound across depths. *)

type session

val session_create : ?sat:Veriopt_smt.Sat.config -> unit -> session
val session_release : session -> unit

val session_conflicts : session -> int
(** Conflicts spent so far, for amortizing one budget over the schedule. *)

val check_incremental :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  session ->
  depth:int ->
  Encode.summary ->
  Encode.summary ->
  outcome
(** Assert the depth-[depth] refinement query (guarded) and check it under
    its guard.  [Refines] means "no mismatch within this bound" — only the
    final scheduled depth's [Refines] is a verdict.  May raise
    [Encode.Unsupported] (before touching the session state). *)

val retract : session -> depth:int -> unit
(** Permanently disable the depth-[depth] query before deepening. *)

val semantics_version : int
(** Bump when the refinement obligation changes meaning; registered in the
    verdict store's semantics digest so stale entries are skipped. *)

(** The refinement check: does the target summary refine the source?

    [Unsat] on the mismatch formula proves refinement within the unrolling
    bound; a model is a candidate counterexample (re-validated concretely by
    the verdict layer).  Pure calls are related by Ackermann constraints;
    impure calls must match positionally or the query is rejected as
    unsupported rather than risking an unsound "not equivalent". *)

type outcome =
  | Refines
  | Counterexample of Veriopt_smt.Solver.model
  | Unknown

val check :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  Encode.summary ->
  Encode.summary ->
  outcome
(** [deadline] is an absolute wall-clock instant forwarded to the solver;
    [reduce] is the learned-clause-DB reduction knob (default on). *)

(** {1 Incremental deepening}

    One persistent solver session shared across an iterative-deepening
    unroll schedule.  Each depth's query is asserted under a fresh guard
    literal and checked with that guard assumed; deepening retracts the old
    depth by asserting the guard's negation, so the clause set only ever
    grows and learned clauses stay sound across depths. *)

type session

val session_create : unit -> session
val session_release : session -> unit

val session_conflicts : session -> int
(** Conflicts spent so far, for amortizing one budget over the schedule. *)

val check_incremental :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  session ->
  depth:int ->
  Encode.summary ->
  Encode.summary ->
  outcome
(** Assert the depth-[depth] refinement query (guarded) and check it under
    its guard.  [Refines] means "no mismatch within this bound" — only the
    final scheduled depth's [Refines] is a verdict.  May raise
    [Encode.Unsupported] (before touching the session state). *)

val retract : session -> depth:int -> unit
(** Permanently disable the depth-[depth] query before deepening. *)

(** The refinement check: does the target summary refine the source?

    [Unsat] on the mismatch formula proves refinement within the unrolling
    bound; a model is a candidate counterexample (re-validated concretely by
    the verdict layer).  Pure calls are related by Ackermann constraints;
    impure calls must match positionally or the query is rejected as
    unsupported rather than risking an unsound "not equivalent". *)

type outcome =
  | Refines
  | Counterexample of Veriopt_smt.Solver.model
  | Unknown

val check :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  Encode.summary ->
  Encode.summary ->
  outcome
(** [deadline] is an absolute wall-clock instant forwarded to the solver;
    [reduce] is the learned-clause-DB reduction knob (default on). *)

(** Public verdict API of the translation validator.

    Verdicts use the paper's four categories (Table I/II): syntactic error,
    semantic error, inconclusive, semantically equivalent.  A solver
    counterexample is re-executed in the concrete interpreter before we
    commit to "semantic error": if the concrete run does not confirm the
    mismatch (an artifact of the encoding's approximations), the verdict
    degrades to "inconclusive".  This keeps NotEquivalent verdicts — and the
    diagnostics fed back into training — trustworthy. *)

open Veriopt_ir
module Interp = Veriopt_eval.Interp
module Solver = Veriopt_smt.Solver

type category = Equivalent | Semantic_error | Syntax_error | Inconclusive

type verdict = {
  category : category;
  message : string;
  example : (string * int64) list; (* counterexample inputs, when any *)
  bounded : bool; (* true when loops were unrolled: bounded validation *)
  copy_of_input : bool; (* target is alpha-equal to source *)
}

let verdict ?(example = []) ?(bounded = false) ?(copy = false) category message =
  { category; message; example; bounded; copy_of_input = copy }

let signature_matches (a : Ast.func) (b : Ast.func) =
  Types.equal a.ret_ty b.ret_ty
  && List.length a.params = List.length b.params
  && List.for_all2 (fun (t1, _) (t2, _) -> Types.equal t1 t2) a.params b.params

(* ------------------------------------------------------------------ *)
(* Concrete validation of solver counterexamples *)

let interp_args_of_model (model : Solver.model) (f : Ast.func) : Interp.value list option =
  let ok = ref true in
  let args =
    List.mapi
      (fun i (ty, _) ->
        match ty with
        | Types.Int w ->
          let name = Fmt.str "arg%d" i in
          let poisoned = Option.value ~default:false (model.Solver.bool_value (name ^ "!p")) in
          if poisoned then Interp.VPoison
          else
            let v = match model.Solver.bv_value name with Some (_, v) -> v | None -> 0L in
            Interp.vint w v
        | _ ->
          ok := false;
          Interp.VPoison)
      f.params
  in
  if !ok then Some args else None

(* Rewrite global initializers to the model's initial-memory values so the
   interpreter executes the same world the solver chose. *)
let module_with_model_globals (model : Solver.model) (m : Ast.modul) : Ast.modul =
  let globals =
    List.map
      (fun (g : Ast.global) ->
        match g.gty with
        | Types.Int w ->
          (* initial global memory is encoded as one variable per byte *)
          let bytes = (w + 7) / 8 in
          let any = ref false in
          let v = ref 0L in
          for i = bytes - 1 downto 0 do
            let b =
              match model.Solver.bv_value (Fmt.str "glob!%s@%d" g.gname i) with
              | Some (_, b) ->
                any := true;
                b
              | None -> Int64.logand (Int64.shift_right_logical g.init (8 * i)) 0xffL
            in
            v := Int64.logor (Int64.shift_left !v 8) b
          done;
          if !any then { g with init = !v } else g
        | _ -> g)
      m.globals
  in
  { m with globals }

type concrete_outcome = Confirms | Rejects | Cannot_tell

(* Does the concrete run confirm that tgt fails to refine src on this input? *)
let concrete_check (model : Solver.model) (m : Ast.modul) (src : Ast.func) (tgt : Ast.func) :
    concrete_outcome =
  match interp_args_of_model model src with
  | None -> Cannot_tell
  | Some args -> (
    let m = module_with_model_globals model m in
    let run f =
      match Interp.run ~fuel:200_000 m f args with
      | outcome -> Ok outcome
      | exception Interp.Undefined_behavior msg -> Error (`Ub msg)
      | exception Interp.Out_of_fuel -> Error `Fuel
    in
    match (run src, run tgt) with
    | Error (`Ub _), _ -> Rejects (* source UB: any target behavior refines *)
    | Error `Fuel, _ | _, Error `Fuel -> Cannot_tell
    | Ok _, Error (`Ub _) -> Confirms
    | Ok s, Ok t ->
      let values_refine (sv : Interp.value option) (tv : Interp.value option) =
        match (sv, tv) with
        | None, None -> true
        | Some Interp.VPoison, Some _ -> true
        | Some sv, Some tv -> sv = tv
        | _ -> false
      in
      let globals_refine =
        List.for_all2
          (fun (_, sv) (_, tv) -> values_refine (Some sv) (Some tv))
          s.Interp.globals_final t.Interp.globals_final
      in
      if
        values_refine s.Interp.ret t.Interp.ret
        && s.Interp.call_trace = t.Interp.call_trace
        && globals_refine
      then Rejects
      else Confirms)

(* ------------------------------------------------------------------ *)

(* Incremental iterative deepening is the default for loop-bearing pairs;
   VERIOPT_INCR=0 (or an explicit [?incremental:false]) restores the
   single-shot encode-at-the-full-bound path. *)
let incremental_default () =
  match Sys.getenv_opt "VERIOPT_INCR" with
  | Some ("0" | "false" | "off" | "no") -> false
  | _ -> true

(* Doubling depth schedule, always ending exactly at [bound]:
   4 -> [1; 2; 4], 3 -> [1; 2; 3], 6 -> [1; 2; 4; 6], 1 -> [1]. *)
let unroll_schedule bound =
  let bound = max 1 bound in
  let rec go d acc = if d >= bound then List.rev (bound :: acc) else go (2 * d) (d :: acc) in
  go 1 []

let counterexample_verdict ~bounded ~copy (model : Solver.model) m src tgt s_sum t_sum :
    verdict =
  let message = Diagnostics.render_counterexample model s_sum t_sum in
  let example = Diagnostics.example_inputs model s_sum in
  match concrete_check model m src tgt with
  | Confirms | Cannot_tell -> verdict ~example ~bounded ~copy Semantic_error message
  | Rejects ->
    (* encoding artifact: be honest and refuse to conclude *)
    verdict ~bounded ~copy Inconclusive
      (Diagnostics.inconclusive_message "solver counterexample failed concrete validation")

(** Verify that [tgt] refines [src] within [m].  Both functions must already
    be well-formed (callers should route model-produced text through
    {!verify_text}). *)
let verify_funcs ?(unroll = 4) ?(max_conflicts = 200_000) ?deadline ?reduce ?incremental ?sat
    (m : Ast.modul) ~(src : Ast.func) ~(tgt : Ast.func) : verdict =
  let copy = Builder.alpha_equal src tgt in
  if not (signature_matches src tgt) then
    verdict Syntax_error
      (Diagnostics.syntax_error_message "function signature does not match the source")
  else
    let bounded =
      Cfg.has_loop (Cfg.of_func src) || Cfg.has_loop (Cfg.of_func tgt)
    in
    let incremental =
      match incremental with Some b -> b | None -> incremental_default ()
    in
    if not (bounded && incremental && unroll > 1) then begin
      (* Single-shot: encode both sides at the full bound, one fresh solve.
         Acyclic pairs always come here — unrolling is the identity on them,
         so a depth schedule would re-solve the same query. *)
      match
        let s_sum = Encode.encode ~unroll_bound:unroll ~side:"src" m src in
        let t_sum = Encode.encode ~unroll_bound:unroll ~side:"tgt" m tgt in
        (s_sum, t_sum)
      with
      | exception Encode.Unsupported reason ->
        verdict ~bounded ~copy Inconclusive (Diagnostics.inconclusive_message reason)
      | s_sum, t_sum -> (
        match Refine.check ~max_conflicts ?deadline ?reduce ?sat s_sum t_sum with
        | exception Encode.Unsupported reason ->
          verdict ~bounded ~copy Inconclusive (Diagnostics.inconclusive_message reason)
        | Refine.Refines ->
          verdict ~bounded ~copy Equivalent (Diagnostics.equivalent_message ~bounded)
        | Refine.Unknown ->
          verdict ~bounded ~copy Inconclusive
            (Diagnostics.inconclusive_message "solver resource limit reached")
        | Refine.Counterexample model ->
          counterexample_verdict ~bounded ~copy model m src tgt s_sum t_sum)
    end
    else begin
      (* Iterative deepening over one incremental session.  Verdict policy,
         chosen so the schedule can never flip a single-shot verdict:
         - a counterexample at any depth is a terminating execution that
           also exists at every deeper bound, so it is final (and still
           concretely re-validated before "semantic error");
         - Unsat at a non-final depth proves nothing about deeper bounds:
           retract the depth's guard and deepen — only the final bound's
           Unsat is "equivalent";
         - Unknown (budget or deadline) anywhere ends the schedule as
           inconclusive, exactly like the single-shot path;
         - Unsupported at a non-final depth is skipped (a pair can be
           positionally matchable at the full bound but not at a shallow
           one); the final depth's answer is authoritative.
         The conflict budget is shared by the whole schedule: each check
         gets what the earlier depths left over. *)
      let sess = Refine.session_create ?sat () in
      Fun.protect ~finally:(fun () -> Refine.session_release sess) @@ fun () ->
      let rec deepen = function
        | [] -> assert false
        | depth :: rest -> (
          let final = rest = [] in
          let skip_or_fail reason =
            if final then
              verdict ~bounded ~copy Inconclusive (Diagnostics.inconclusive_message reason)
            else deepen rest
          in
          match
            let s_sum = Encode.encode ~unroll_bound:depth ~side:"src" m src in
            let t_sum = Encode.encode ~unroll_bound:depth ~side:"tgt" m tgt in
            (s_sum, t_sum)
          with
          | exception Encode.Unsupported reason -> skip_or_fail reason
          | s_sum, t_sum -> (
            let remaining = max_conflicts - Refine.session_conflicts sess in
            if remaining <= 0 then
              verdict ~bounded ~copy Inconclusive
                (Diagnostics.inconclusive_message "solver resource limit reached")
            else
              match
                Refine.check_incremental ~max_conflicts:remaining ?deadline ?reduce sess
                  ~depth s_sum t_sum
              with
              | exception Encode.Unsupported reason -> skip_or_fail reason
              | Refine.Refines ->
                if final then
                  verdict ~bounded ~copy Equivalent (Diagnostics.equivalent_message ~bounded)
                else begin
                  Refine.retract sess ~depth;
                  deepen rest
                end
              | Refine.Unknown ->
                verdict ~bounded ~copy Inconclusive
                  (Diagnostics.inconclusive_message "solver resource limit reached")
              | Refine.Counterexample model ->
                counterexample_verdict ~bounded ~copy model m src tgt s_sum t_sum))
      in
      deepen (unroll_schedule unroll)
    end

(* ------------------------------------------------------------------ *)
(* Cube-and-conquer entry points (the engine's portfolio tier-2 path).

   The parent runs [cube_probe] on a small conflict budget; a conclusive
   probe is a verdict outright, an inconclusive one yields a plan whose
   cubes are raced across worker processes, each running
   [verify_funcs_cube].  Every worker re-encodes the same pair at the same
   single-shot full bound, so the raw SAT literals in the cubes mean the
   same variables in every process (structural blast order). *)

type cube_outcome = Cube_refines | Cube_cex of verdict | Cube_unknown

let verify_funcs_cube ?(unroll = 4) ?(max_conflicts = 200_000) ?deadline ?reduce ?sat ~cube
    (m : Ast.modul) ~(src : Ast.func) ~(tgt : Ast.func) : cube_outcome * int list =
  let copy = Builder.alpha_equal src tgt in
  if not (signature_matches src tgt) then (Cube_unknown, [])
  else
    let bounded = Cfg.has_loop (Cfg.of_func src) || Cfg.has_loop (Cfg.of_func tgt) in
    match
      let s_sum = Encode.encode ~unroll_bound:unroll ~side:"src" m src in
      let t_sum = Encode.encode ~unroll_bound:unroll ~side:"tgt" m tgt in
      (s_sum, t_sum)
    with
    | exception Encode.Unsupported _ -> (Cube_unknown, [])
    | s_sum, t_sum -> (
      match Refine.check_cube ~max_conflicts ?deadline ?reduce ?sat ~cube s_sum t_sum with
      | exception Encode.Unsupported _ -> (Cube_unknown, [])
      | Refine.Refines, units -> (Cube_refines, units)
      | Refine.Unknown, units -> (Cube_unknown, units)
      | Refine.Counterexample model, units ->
        (* concrete re-validation happens here in the worker, where the live
           model closures exist; only plain data crosses back to the parent *)
        let v = counterexample_verdict ~bounded ~copy model m src tgt s_sum t_sum in
        ((match v.category with Semantic_error -> Cube_cex v | _ -> Cube_unknown), units))

type cube_plan = {
  plan_probe : Solver.probe;
  cubes : int list list;  (** the 2^k assumption lists, a partition *)
  plan_m : Ast.modul;
  plan_src : Ast.func;
  plan_tgt : Ast.func;
  plan_s_sum : Encode.summary;
  plan_t_sum : Encode.summary;
  plan_bounded : bool;
  plan_copy : bool;
}

let cube_probe ?(unroll = 4) ?(max_conflicts = 500) ?deadline ?reduce ?sat ~k (m : Ast.modul)
    ~(src : Ast.func) ~(tgt : Ast.func) : [ `Verdict of verdict | `Split of cube_plan ] =
  let copy = Builder.alpha_equal src tgt in
  if not (signature_matches src tgt) then
    `Verdict
      (verdict Syntax_error
         (Diagnostics.syntax_error_message "function signature does not match the source"))
  else
    let bounded = Cfg.has_loop (Cfg.of_func src) || Cfg.has_loop (Cfg.of_func tgt) in
    let inconclusive reason =
      `Verdict (verdict ~bounded ~copy Inconclusive (Diagnostics.inconclusive_message reason))
    in
    match
      let s_sum = Encode.encode ~unroll_bound:unroll ~side:"src" m src in
      let t_sum = Encode.encode ~unroll_bound:unroll ~side:"tgt" m tgt in
      (s_sum, t_sum)
    with
    | exception Encode.Unsupported reason -> inconclusive reason
    | s_sum, t_sum -> (
      match Refine.probe ~max_conflicts ?deadline ?reduce ?sat s_sum t_sum with
      | exception Encode.Unsupported reason -> inconclusive reason
      | _, Refine.Refines ->
        `Verdict (verdict ~bounded ~copy Equivalent (Diagnostics.equivalent_message ~bounded))
      | _, Refine.Counterexample model ->
        `Verdict (counterexample_verdict ~bounded ~copy model m src tgt s_sum t_sum)
      | probe, Refine.Unknown ->
        let vars = Refine.probe_top_vars probe k in
        `Split
          {
            plan_probe = probe;
            cubes = Veriopt_smt.Portfolio.cube_lits ~vars;
            plan_m = m;
            plan_src = src;
            plan_tgt = tgt;
            plan_s_sum = s_sum;
            plan_t_sum = t_sum;
            plan_bounded = bounded;
            plan_copy = copy;
          })

let probe_join ?(max_conflicts = 10_000) ?deadline (plan : cube_plan) ~(units : int list) :
    verdict option =
  match Refine.probe_join ~max_conflicts ?deadline plan.plan_probe ~units with
  | Refine.Refines ->
    Some
      (verdict ~bounded:plan.plan_bounded ~copy:plan.plan_copy Equivalent
         (Diagnostics.equivalent_message ~bounded:plan.plan_bounded))
  | Refine.Counterexample model ->
    Some
      (counterexample_verdict ~bounded:plan.plan_bounded ~copy:plan.plan_copy model plan.plan_m
         plan.plan_src plan.plan_tgt plan.plan_s_sum plan.plan_t_sum)
  | Refine.Unknown -> None

(** Verify model-produced IR text against a source function: parse errors and
    malformed IR map to [Syntax_error], as in the paper's Tables I/II. *)
let verify_text ?unroll ?max_conflicts ?deadline ?reduce ?incremental ?sat (m : Ast.modul)
    ~(src : Ast.func) ~(tgt_text : string) : verdict =
  match Parser.parse_func_result tgt_text with
  | Error msg -> verdict Syntax_error (Diagnostics.syntax_error_message msg)
  | Ok tgt -> (
    match Validator.validate_func ~module_:m tgt with
    | Error errors ->
      verdict Syntax_error (Diagnostics.syntax_error_message (String.concat "\n" errors))
    | Ok () -> verify_funcs ?unroll ?max_conflicts ?deadline ?reduce ?incremental ?sat m ~src ~tgt)

(* Bump when the verdict taxonomy or the tier-1 concrete re-validation
   changes meaning: the disk-backed verdict store keys entry freshness on
   this. *)
let semantics_version = 1

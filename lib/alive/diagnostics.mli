(** Alive2-style diagnostic messages: the verdict texts and counterexample
    renderings that double as training feedback. *)

type kind =
  | Target_ub
  | Target_more_poisonous
  | Value_mismatch
  | Domain_mismatch
  | Trace_mismatch
  | Memory_mismatch
  | Other

val kind_to_string : kind -> string

val classify : Veriopt_smt.Solver.model -> Encode.summary -> Encode.summary -> kind

val example_inputs : Veriopt_smt.Solver.model -> Encode.summary -> (string * int64) list

val render_counterexample :
  Veriopt_smt.Solver.model -> Encode.summary -> Encode.summary -> string

val render_concrete_counterexample :
  kind -> inputs:(string * int64) list -> ?src_value:string -> ?tgt_value:string -> unit -> string
(** Same phrasing as {!render_counterexample}, for counterexamples found by
    concrete execution (the tiered engine's tier 1). *)

val syntax_error_message : string -> string
val inconclusive_message : string -> string
val equivalent_message : bounded:bool -> string

(** Bounded verdict memo table for the tiered verification engine.

    Keys are the full semantic context of a verification query: canonical
    (printed) module, source and target texts plus the unroll bound and the
    solver budget — two queries with equal keys must produce equal verdicts,
    which is what makes memoization sound.

    The table is generation-swept: when the current generation fills up, it
    becomes the old generation and a fresh one starts; entries only ever
    survive one sweep unless re-touched, bounding memory at roughly
    [2 * capacity] entries.  All operations are mutex-protected so the Par
    pool's worker domains can share one cache.

    The cache doubles as the engine's statistics hub: alongside hit/miss/
    eviction counts it accumulates per-tier run counters and wall-clock
    timings (fed by the engine via [note_tier1]/[note_tier2]).

    An optional disk-backed tier ({!Veriopt_store.Store}, attached via
    {!attach_store}) turns the memo into a read-through/write-behind cache:
    a memory miss with a store key consults the shared on-disk store (a hit
    is promoted into the current generation, counted as a cache hit, and
    rolls the admission-price EWMAs with its near-zero lookup latency), and
    an insert with a serialized payload is buffered for append.  A store
    entry whose payload fails the attached decoder is counted corrupt and
    degrades to a miss. *)

type key = {
  ctx : string;  (** canonical module text (globals + declarations) *)
  src : string;  (** canonical source function text *)
  tgt : string;  (** canonical target function text *)
  unroll : int;
  max_conflicts : int;
  reduce : bool;  (** clause-DB reduction knob — a budget parameter, so part
                      of the key: [Unknown] verdicts depend on it *)
  incremental : bool;
      (** iterative-deepening knob — like [reduce], a budget/trajectory
          parameter: resource-exhaustion verdicts depend on it *)
  portfolio : int;
      (** portfolio width — a trajectory parameter: which member concludes
          (and whether anyone does within budget) depends on it *)
  sat : string;
      (** canonical description of the base SAT config
          ({!Veriopt_smt.Sat.describe_config}): seed and schedule changes
          must not alias cache entries *)
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;  (** entries discarded by generation sweeps *)
  entries : int;  (** live entries right now (both generations) *)
  capacity : int;
  tier1_hits : int;  (** concrete counterexample short-circuited the SMT tier *)
  tier1_misses : int;  (** tier 1 ran but found no distinguishing input *)
  tier2_runs : int;  (** full SMT verifications *)
  tier1_seconds : float;
  tier2_seconds : float;
  tier1_ewma_s : float;
      (** rolling EWMA of per-run tier-1 latency ([0.] until the first
          sample) — the serve layer's admission-control price signal *)
  tier2_ewma_s : float;  (** rolling EWMA of per-run tier-2 latency *)
  breaker_trips : int;  (** circuit-breaker open transitions *)
  breaker_skips : int;  (** tier-2 runs skipped while the breaker was open *)
  breaker_open : bool;  (** snapshot: the breaker is currently open *)
}

type 'v t

val create : ?capacity:int -> unit -> 'v t
(** [capacity] bounds one generation (default 4096). *)

val attach_store :
  'v t -> store:Veriopt_store.Store.t -> decode:(string -> 'v option) -> unit
(** Mount a disk-backed tier beneath the memo.  [decode] turns a stored
    payload back into a value; returning [None] marks the entry corrupt
    (counted on the store) and the lookup degrades to a miss. *)

val store : 'v t -> Veriopt_store.Store.t option
(** The attached disk tier, if any (for stats and shutdown flushing). *)

val find : ?skey:string -> 'v t -> key -> 'v option
(** A hit in the old generation re-inserts the entry into the current one.
    On a memory miss, [skey] (the caller's content-addressed store key)
    consults the attached store; a decodable store hit counts as a cache
    hit. *)

val add : ?skey:string -> ?spayload:string -> 'v t -> key -> 'v -> unit
(** Insert into the current generation; when a store is attached and both
    [skey] and [spayload] are given, also buffer the serialized entry for
    write-behind append. *)

val note_tier1 : 'v t -> hit:bool -> seconds:float -> unit
val note_tier2 : 'v t -> seconds:float -> unit

(** {1 Circuit breaker}

    State machine driven by the engine: closed — [k] consecutive
    inconclusive tier-2 verdicts trip it open — open for [cooldown]
    would-be tier-2 calls (each skipped and counted) — half-open (one trial
    tier-2 run) — closed again on a conclusive verdict, re-opened on an
    inconclusive one.  Lives in the cache so it shares the mutex and the
    stats plumbing. *)

val breaker_skip : 'v t -> bool
(** Ask before a tier-2 run: [true] means the breaker is open and this run
    must be skipped (counted in [breaker_skips]). *)

val breaker_note : 'v t -> inconclusive:bool -> k:int -> cooldown:int -> unit
(** Report a completed tier-2 verdict; may trip or close the breaker. *)

val stats : 'v t -> stats
val reset : 'v t -> unit
(** Drop every entry and zero all counters. *)

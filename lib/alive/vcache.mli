(** Bounded verdict memo table for the tiered verification engine.

    Keys are the full semantic context of a verification query: canonical
    (printed) module, source and target texts plus the unroll bound and the
    solver budget — two queries with equal keys must produce equal verdicts,
    which is what makes memoization sound.

    The table is generation-swept: when the current generation fills up, it
    becomes the old generation and a fresh one starts; entries only ever
    survive one sweep unless re-touched, bounding memory at roughly
    [2 * capacity] entries.  All operations are mutex-protected so the Par
    pool's worker domains can share one cache.

    The cache doubles as the engine's statistics hub: alongside hit/miss/
    eviction counts it accumulates per-tier run counters and wall-clock
    timings (fed by the engine via [note_tier1]/[note_tier2]). *)

type key = {
  ctx : string;  (** canonical module text (globals + declarations) *)
  src : string;  (** canonical source function text *)
  tgt : string;  (** canonical target function text *)
  unroll : int;
  max_conflicts : int;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;  (** entries discarded by generation sweeps *)
  entries : int;  (** live entries right now (both generations) *)
  capacity : int;
  tier1_hits : int;  (** concrete counterexample short-circuited the SMT tier *)
  tier1_misses : int;  (** tier 1 ran but found no distinguishing input *)
  tier2_runs : int;  (** full SMT verifications *)
  tier1_seconds : float;
  tier2_seconds : float;
}

type 'v t

val create : ?capacity:int -> unit -> 'v t
(** [capacity] bounds one generation (default 4096). *)

val find : 'v t -> key -> 'v option
(** A hit in the old generation re-inserts the entry into the current one. *)

val add : 'v t -> key -> 'v -> unit
val note_tier1 : 'v t -> hit:bool -> seconds:float -> unit
val note_tier2 : 'v t -> seconds:float -> unit
val stats : 'v t -> stats
val reset : 'v t -> unit
(** Drop every entry and zero all counters. *)

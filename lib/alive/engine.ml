(** Tiered (concrete-then-symbolic), cached verification engine. *)

open Veriopt_ir
module Interp = Veriopt_eval.Interp
module Exec_oracle = Veriopt_eval.Exec_oracle
module Fault = Veriopt_fault.Fault
module Vproc = Veriopt_vproc.Vproc

type isolate = Domains | Proc

(* The tier-2 query shipped to a forked worker: plain AST values and knobs,
   no closures (Marshal requirement).  The incremental flag rides along so
   the iterative-deepening loop — self-contained below this boundary — runs
   identically inside the worker. *)
type proc_request = Ast.modul * Ast.func * Ast.func * int * int * bool * bool * float option

let proc_handler
    ((m, src, tgt, unroll, max_conflicts, reduce, incremental, deadline) : proc_request) :
    Alive.verdict =
  Alive.verify_funcs ~unroll ~max_conflicts ?deadline ~reduce ~incremental m ~src ~tgt

type t = {
  cache : Alive.verdict Vcache.t;
  tier1_samples : int;
  breaker_k : int; (* 0 disables the circuit breaker *)
  breaker_cooldown : int;
  isolate : isolate;
  pool : (proc_request, Alive.verdict) Vproc.t option; (* Some iff isolate = Proc *)
}

let warned_env = Atomic.make false
let warned_fallback = Atomic.make false

let warn_once flag msg =
  if not (Atomic.exchange flag true) then Printf.eprintf "veriopt: %s\n%!" msg

let isolate_of_env () =
  match Sys.getenv_opt "VERIOPT_ISOLATE" with
  | None | Some "" | Some "domain" -> Domains
  | Some "proc" -> Proc
  | Some other ->
    warn_once warned_env
      (Printf.sprintf "ignoring invalid VERIOPT_ISOLATE=%S (want proc|domain)" other);
    Domains

let create ?(capacity = 8192) ?(tier1_samples = 16) ?(breaker_k = 0) ?(breaker_cooldown = 16)
    ?isolate () =
  let isolate =
    match Option.value isolate ~default:(isolate_of_env ()) with
    | Proc when not (Vproc.available ()) ->
      (* graceful degradation: no fork here means the in-process backend,
         not a broken engine *)
      warn_once warned_fallback
        "process isolation unavailable (no fork); falling back to the domain backend";
      Domains
    | i -> i
  in
  let isolate, pool =
    match isolate with
    | Domains -> (Domains, None)
    | Proc ->
      (* fork eagerly, at engine creation: the only legal moment for a
         multicore runtime, before reward traffic spins up the Par domains *)
      let p = Vproc.create ~handler:proc_handler () in
      if Vproc.slots_available p > 0 then (Proc, Some p)
      else begin
        (* fork refused (domains already exist): a dead pool would turn
           every verdict Inconclusive, so degrade to the in-process backend *)
        Vproc.shutdown p;
        warn_once warned_fallback
          "process isolation unavailable (fork refused — domains already running); falling \
           back to the domain backend";
        (Domains, None)
      end
  in
  {
    cache = Vcache.create ~capacity ();
    tier1_samples = max 0 tier1_samples;
    breaker_k = max 0 breaker_k;
    breaker_cooldown = max 1 breaker_cooldown;
    isolate;
    pool;
  }

let isolate t = t.isolate
let shared_engine = lazy (create ())
let shared () = Lazy.force shared_engine

let stats t = Vcache.stats t.cache
let reset_stats t = Vcache.reset t.cache

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Canonical-text memoization (cheaper cache keys).

   Building a Vcache.key used to re-print the module and both functions on
   every engine call (~50us — more than an easy SMT query).  Within a GRPO
   group / bench round the module and source function are physically the
   same values over and over, so a tiny physical-equality-keyed ring buffer
   recovers almost all of that cost without hashing the AST.  (Freshly
   parsed targets still print once each, as they must.) *)

let canon_slots = 32

type canon_entry = { cobj : Obj.t; ctext : string }

let canon_tbl : canon_entry option array = Array.make canon_slots None
let canon_next = ref 0
let canon_mutex = Mutex.create ()

let canon (print : 'a -> string) (x : 'a) : string =
  let r = Obj.repr x in
  Mutex.lock canon_mutex;
  let found = ref None in
  Array.iter
    (function Some e when e.cobj == r -> found := Some e.ctext | _ -> ())
    canon_tbl;
  match !found with
  | Some text ->
    Mutex.unlock canon_mutex;
    text
  | None ->
    (* print outside the lock: concurrent duplicate work is rare and
       harmless, serializing every print would not be *)
    Mutex.unlock canon_mutex;
    let text = print x in
    Mutex.lock canon_mutex;
    canon_tbl.(!canon_next) <- Some { cobj = r; ctext = text };
    canon_next := (!canon_next + 1) mod canon_slots;
    Mutex.unlock canon_mutex;
    text

(* ------------------------------------------------------------------ *)
(* Tier 1: concrete counterexample hunt *)

let value_int64 = function Interp.VInt { v; _ } -> v | _ -> 0L

let show_value = function
  | Some (Interp.VInt { v; _ }) -> Some (Int64.to_string v)
  | Some Interp.VPoison -> Some "poison"
  | Some (Interp.VPtr _) -> Some "ptr"
  | None -> None

(* Build the Semantic_error verdict for a distinguishing input the oracle
   found.  Both sides are re-run once on that input to classify the mismatch
   (value / trace / memory / target UB) so the diagnostic reads exactly like
   a solver counterexample. *)
let tier1_verdict (m : Ast.modul) (src : Ast.func) (tgt : Ast.func) ~bounded
    (args : Interp.value list) : Alive.verdict =
  let inputs = List.mapi (fun i v -> (Fmt.str "arg%d" i, value_int64 v)) args in
  let run f =
    match Interp.run ~fuel:200_000 m f args with
    | o -> `Ok o
    | exception Interp.Undefined_behavior _ -> `Ub
    | exception Interp.Out_of_fuel -> `Fuel
  in
  let kind, src_value, tgt_value =
    match (run src, run tgt) with
    | `Ok _, `Ub -> (Diagnostics.Target_ub, None, None)
    | `Ok s, `Ok tg ->
      if s.Interp.call_trace <> tg.Interp.call_trace then (Diagnostics.Trace_mismatch, None, None)
      else if
        (* mirror the oracle's poison-blind agreement so the classification
           names the observation that actually distinguished the runs *)
        match (s.Interp.ret, tg.Interp.ret) with
        | Some Interp.VPoison, _ | _, Some Interp.VPoison -> false
        | Some a, Some b -> a <> b
        | _ -> false
      then (Diagnostics.Value_mismatch, show_value s.Interp.ret, show_value tg.Interp.ret)
      else if s.Interp.globals_final <> tg.Interp.globals_final then
        (Diagnostics.Memory_mismatch, None, None)
      else (Diagnostics.Other, None, None)
    | _ -> (Diagnostics.Other, None, None)
  in
  let message =
    Diagnostics.render_concrete_counterexample kind ~inputs ?src_value ?tgt_value ()
  in
  {
    Alive.category = Alive.Semantic_error;
    message;
    example = inputs;
    bounded;
    copy_of_input = false;
  }

(* ------------------------------------------------------------------ *)

let verify_funcs ?(unroll = 4) ?(max_conflicts = 200_000) ?deadline ?(reduce = true)
    ?incremental (t : t) (m : Ast.modul) ~(src : Ast.func) ~(tgt : Ast.func) : Alive.verdict =
  (* resolve the env-dependent default up front: the concrete bool enters
     the cache key, so a later VERIOPT_INCR change cannot alias entries *)
  let incremental =
    match incremental with Some b -> b | None -> Alive.incremental_default ()
  in
  if not (Alive.signature_matches src tgt) then
    (* tier 0, mirror of Alive.verify_funcs: cheap, never cached *)
    {
      Alive.category = Alive.Syntax_error;
      message = Diagnostics.syntax_error_message "function signature does not match the source";
      example = [];
      bounded = false;
      copy_of_input = false;
    }
  else
    let key =
      {
        Vcache.ctx = canon Printer.module_to_string m;
        src = canon Printer.func_to_string src;
        tgt = canon Printer.func_to_string tgt;
        unroll;
        max_conflicts;
        reduce;
        incremental;
      }
    in
    match Vcache.find t.cache key with
    | Some v -> v
    | None ->
      (* fault site: artificial verification latency *)
      if Fault.fire Fault.Verify_delay then
        Unix.sleepf (Float.max 0. (Fault.param Fault.Verify_delay));
      let bounded =
        lazy (Cfg.has_loop (Cfg.of_func src) || Cfg.has_loop (Cfg.of_func tgt))
      in
      (* Transient verdicts — a tripped breaker or an expired deadline —
         describe this call's budget, not the query; caching them would
         poison every later, better-funded retry. *)
      let cacheable = ref true in
      let tier2 () =
        if t.breaker_k > 0 && Vcache.breaker_skip t.cache then begin
          cacheable := false;
          {
            Alive.category = Alive.Inconclusive;
            message =
              Diagnostics.inconclusive_message
                "circuit breaker open: SMT tier skipped (degraded mode)";
            example = [];
            bounded = Lazy.force bounded;
            copy_of_input = false;
          }
        end
        else begin
          let t0 = now () in
          let v =
            match t.pool with
            | None ->
              Alive.verify_funcs ~unroll ~max_conflicts ?deadline ~reduce ~incremental m ~src
                ~tgt
            | Some pool -> (
              (* the child still gets the cooperative deadline; the hard
                 SIGKILL fires only once it has overrun by half a budget *)
              let kill_at =
                Option.map (fun d -> d +. Float.max 0.01 (0.5 *. (d -. t0))) deadline
              in
              match
                Vproc.call ?kill_at pool
                  (m, src, tgt, unroll, max_conflicts, reduce, incremental, deadline)
              with
              | Ok v -> v
              | Error f ->
                (* a dead worker describes this call's sandbox, not the
                   query: degrade to an uncached Inconclusive *)
                cacheable := false;
                {
                  Alive.category = Alive.Inconclusive;
                  message =
                    Diagnostics.inconclusive_message
                      ("verification " ^ Vproc.failure_message f ^ " (proc isolate)");
                  example = [];
                  bounded = Lazy.force bounded;
                  copy_of_input = false;
                })
          in
          Vcache.note_tier2 t.cache ~seconds:(now () -. t0);
          if t.breaker_k > 0 then
            Vcache.breaker_note t.cache
              ~inconclusive:(v.Alive.category = Alive.Inconclusive)
              ~k:t.breaker_k ~cooldown:t.breaker_cooldown;
          (match deadline with
          | Some d when v.Alive.category = Alive.Inconclusive && now () > d ->
            cacheable := false
          | _ -> ());
          v
        end
      in
      let verdict =
        (* an alpha-equal copy cannot have a concrete counterexample; skip
           straight to the SMT tier, which also sets [copy_of_input] *)
        if t.tier1_samples = 0 || Builder.alpha_equal src tgt then tier2 ()
        else begin
          let t0 = now () in
          let hunt = Exec_oracle.equivalent ~samples:t.tier1_samples m ~src ~tgt in
          let dt = now () -. t0 in
          match hunt with
          | Exec_oracle.Io_different args ->
            Vcache.note_tier1 t.cache ~hit:true ~seconds:dt;
            tier1_verdict m src tgt ~bounded:(Lazy.force bounded) args
          | Exec_oracle.Io_equivalent _ | Exec_oracle.Io_unsupported _ ->
            Vcache.note_tier1 t.cache ~hit:false ~seconds:dt;
            tier2 ()
        end
      in
      if !cacheable then Vcache.add t.cache key verdict;
      verdict

let verify_text ?unroll ?max_conflicts ?deadline ?reduce ?incremental (t : t) (m : Ast.modul)
    ~(src : Ast.func) ~(tgt_text : string) : Alive.verdict =
  (* fault site: a crashing (not merely failing) parse; the crash-proof
     reward path converts the exception into a counted engine failure *)
  Fault.inject Fault.Parse_corrupt ~site:"engine.parse";
  match Parser.parse_func_result tgt_text with
  | Error msg ->
    {
      Alive.category = Alive.Syntax_error;
      message = Diagnostics.syntax_error_message msg;
      example = [];
      bounded = false;
      copy_of_input = false;
    }
  | Ok tgt -> (
    match Validator.validate_func ~module_:m tgt with
    | Error errors ->
      {
        Alive.category = Alive.Syntax_error;
        message = Diagnostics.syntax_error_message (String.concat "\n" errors);
        example = [];
        bounded = false;
        copy_of_input = false;
      }
    | Ok () -> verify_funcs ?unroll ?max_conflicts ?deadline ?reduce ?incremental t m ~src ~tgt)

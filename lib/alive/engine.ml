(** Tiered (concrete-then-symbolic), cached verification engine. *)

open Veriopt_ir
module Interp = Veriopt_eval.Interp
module Exec_oracle = Veriopt_eval.Exec_oracle
module Fault = Veriopt_fault.Fault
module Vproc = Veriopt_vproc.Vproc
module Sat = Veriopt_smt.Sat
module Solver = Veriopt_smt.Solver
module Portfolio = Veriopt_smt.Portfolio
module Store = Veriopt_store.Store

type isolate = Domains | Proc

(* ------------------------------------------------------------------ *)
(* Canonical-text memoization (cheaper cache keys).

   Building a Vcache.key used to re-print the module and both functions on
   every engine call (~50us — more than an easy SMT query).  Within a GRPO
   group / bench round the module and source function are physically the
   same values over and over, so a tiny physical-equality-keyed ring buffer
   recovers almost all of that cost without hashing the AST.  (Freshly
   parsed targets still print once each, as they must.) *)

let canon_slots = 32

type canon_entry = { cobj : Obj.t; ctext : string }

(* One ring per printing discipline: entries are keyed purely by physical
   identity, so raw-text and alpha-renamed-text memos must not share a ring
   (the same func object has different texts under the two printers). *)
type canon_ring = {
  ctbl : canon_entry option array;
  mutable cnext : int;
  cmutex : Mutex.t;
}

let make_ring () =
  { ctbl = Array.make canon_slots None; cnext = 0; cmutex = Mutex.create () }

let raw_ring = make_ring ()
let alpha_ring = make_ring ()

let canon_in (ring : canon_ring) (print : 'a -> string) (x : 'a) : string =
  let r = Obj.repr x in
  Mutex.lock ring.cmutex;
  let found = ref None in
  Array.iter
    (function Some e when e.cobj == r -> found := Some e.ctext | _ -> ())
    ring.ctbl;
  match !found with
  | Some text ->
    Mutex.unlock ring.cmutex;
    text
  | None ->
    (* print outside the lock: concurrent duplicate work is rare and
       harmless, serializing every print would not be *)
    Mutex.unlock ring.cmutex;
    let text = print x in
    Mutex.lock ring.cmutex;
    ring.ctbl.(ring.cnext) <- Some { cobj = r; ctext = text };
    ring.cnext <- (ring.cnext + 1) mod canon_slots;
    Mutex.unlock ring.cmutex;
    text

let canon print x = canon_in raw_ring print x

(* Alpha-canonical text: identical for alpha-equivalent functions — and,
   via the key-level canonicalizer, for operand-commuted and
   constant-renormalized twins — so the serve layer can coalesce them onto
   one engine call and the cache/store tiers share one verdict per canon
   class.  Renumber first (name assignment is operand-order-invariant),
   then quotient the operand order.  Memoized by the original object's
   identity — the renumbered copy itself is fresh every time and useless
   as a memo key. *)
let alpha_canon (f : Ast.func) : string =
  canon_in alpha_ring
    (fun f -> Printer.func_to_string (Canon.canon_func_for_key (Builder.renumber f)))
    f

let coalesce_key (m : Ast.modul) ~(src : Ast.func) ~(tgt : Ast.func) : string =
  String.concat "\x00" [ canon Printer.module_to_string m; alpha_canon src; alpha_canon tgt ]

(* ------------------------------------------------------------------ *)
(* The disk-backed verdict store tier.

   Keys are content-addressed: the raw canonical module text, the
   alpha-canonical source/target texts (renamed-but-identical pairs share
   one entry — renumbering preserves semantics, boundedness and
   copy-of-input, so one verdict is sound for the whole alpha class), and
   every knob that can change a verdict or its budget semantics: unroll,
   conflict budget, clause-DB reduction, incrementality, portfolio width
   and the base SAT config.  Freshness across code changes is carried by
   the semantics digest: bump any registered [semantics_version] and every
   prior entry is skipped as stale. *)

let semantics_digest_lazy =
  lazy
    (Store.version_digest
       [
         ("encode", Encode.semantics_version);
         ("refine", Refine.semantics_version);
         ("alive", Alive.semantics_version);
         ("sat", Sat.semantics_version);
         (* the key-level canonical form: store keys collide canon twins,
            so a canonicalizer change must invalidate old entries *)
         ("canon", Canon.semantics_version);
         (* marshalled payloads are only trusted from the same compiler
            lineage; fold the runtime version in rather than risk a decode
            of a foreign layout *)
         ("ocaml", Hashtbl.hash Sys.ocaml_version land 0xFFFFFF);
       ])

let semantics_digest () = Lazy.force semantics_digest_lazy

let store_key ?(unroll = 4) ?(max_conflicts = 200_000) ?(reduce = true) ?incremental
    ?(portfolio = 1) ?sat (m : Ast.modul) ~(src : Ast.func) ~(tgt : Ast.func) : string =
  let incremental =
    match incremental with Some b -> b | None -> Alive.incremental_default ()
  in
  String.concat "\x00"
    [
      canon Printer.module_to_string m;
      alpha_canon src;
      alpha_canon tgt;
      Printf.sprintf "u=%d;c=%d;r=%b;i=%b;p=%d" unroll max_conflicts reduce incremental
        portfolio;
      Sat.describe_config (Option.value sat ~default:Sat.default_config);
    ]

(* The stored value: the verdict plus which tier produced it and the
   solver-stats delta the original miss paid — so a warm hit can report
   what it saved. *)
type stored = { s_verdict : Alive.verdict; s_tier : int; s_delta : Solver.stats }

let store_encode ~tier ~delta (v : Alive.verdict) : string =
  Marshal.to_string { s_verdict = v; s_tier = tier; s_delta = delta } []

(* Decode never trusts the payload: any Marshal failure is a counted
   corrupt entry upstream, degrading to a miss. *)
let store_decode (payload : string) : (Alive.verdict * int * Solver.stats) option =
  match (Marshal.from_string payload 0 : stored) with
  | s -> Some (s.s_verdict, s.s_tier, s.s_delta)
  | exception _ -> None

(* Forked workers open their own read-only handle per store directory
   (lazily, inside the child): the pool shares one warm store without
   inheriting parent file descriptors or write buffers. *)
let worker_stores : (string, Store.t option) Hashtbl.t = Hashtbl.create 4

let worker_store (dir : string) : Store.t option =
  match Hashtbl.find_opt worker_stores dir with
  | Some s -> s
  | None ->
    let s =
      match Store.open_ ~read_only:true ~dir ~semantics:(semantics_digest ()) () with
      | s -> Some s
      | exception _ -> None
    in
    Hashtbl.replace worker_stores dir s;
    s

(* The tier-2 query shipped to a forked worker: plain AST values and knobs,
   no closures (Marshal requirement).  The incremental flag rides along so
   the iterative-deepening loop — self-contained below this boundary — runs
   identically inside the worker.  [pr_sat] diversifies the worker's SAT
   solver (portfolio member); [pr_cube] switches the worker to solving one
   cube of the query as raw assumption literals. *)
type proc_request = {
  pr_m : Ast.modul;
  pr_src : Ast.func;
  pr_tgt : Ast.func;
  pr_unroll : int;
  pr_max_conflicts : int;
  pr_reduce : bool;
  pr_incremental : bool;
  pr_deadline : float option;
  pr_sat : Sat.config option;
  pr_cube : int list option;
  pr_store : string option;
      (** verdict-store directory: the worker consults its own read-only
          handle before solving, so a pool shares one warm store *)
}

(* Every response ships the worker's solver-stats delta for this one call,
   so the parent can aggregate portfolio members' work — losers included —
   into its own process-wide counters. *)
type proc_response =
  | P_verdict of Alive.verdict * Solver.stats
  | P_cube of Alive.cube_outcome * int list * Solver.stats

let proc_handler (r : proc_request) : proc_response =
  let before = Solver.stats () in
  match r.pr_cube with
  | None -> (
    (* warm-store short circuit: a full-query worker checks the shared
       disk store (its own refresh may see entries newer than the
       parent's) before paying for a solve.  Race legs ship no store —
       their diversified member keys cannot match parent-written entries. *)
    let stored_hit =
      match Option.map worker_store r.pr_store with
      | Some (Some st) -> (
        let key =
          store_key ~unroll:r.pr_unroll ~max_conflicts:r.pr_max_conflicts
            ~reduce:r.pr_reduce ~incremental:r.pr_incremental ~portfolio:1 ?sat:r.pr_sat
            r.pr_m ~src:r.pr_src ~tgt:r.pr_tgt
        in
        match Store.find st ~key with
        | None -> None
        | Some payload -> (
          match store_decode payload with
          | Some (v, _, _) -> Some v
          | None ->
            Store.note_corrupt st;
            None))
      | _ -> None
    in
    match stored_hit with
    | Some v -> P_verdict (v, Solver.diff before before)
    | None ->
      let v =
        Alive.verify_funcs ~unroll:r.pr_unroll ~max_conflicts:r.pr_max_conflicts
          ?deadline:r.pr_deadline ~reduce:r.pr_reduce ~incremental:r.pr_incremental
          ?sat:r.pr_sat r.pr_m ~src:r.pr_src ~tgt:r.pr_tgt
      in
      P_verdict (v, Solver.diff (Solver.stats ()) before))
  | Some cube ->
    let o, units =
      Alive.verify_funcs_cube ~unroll:r.pr_unroll ~max_conflicts:r.pr_max_conflicts
        ?deadline:r.pr_deadline ~reduce:r.pr_reduce ?sat:r.pr_sat ~cube r.pr_m ~src:r.pr_src
        ~tgt:r.pr_tgt
    in
    P_cube (o, units, Solver.diff (Solver.stats ()) before)

(* Cumulative pain-probe counters (see [verify_pain]): one cell per engine,
   mutex-guarded because probes may run from any domain. *)
type pain_cell = {
  mutable pc_probes : int;
  mutable pc_inconclusive : int;
  mutable pc_deadline_expired : int;
  mutable pc_wall_s : float;
  mutable pc_max_wall_s : float;
  pc_mu : Mutex.t;
}

type t = {
  cache : Alive.verdict Vcache.t;
  tier1_samples : int;
  tier1_fuel : int;
  breaker_k : int; (* 0 disables the circuit breaker *)
  breaker_cooldown : int;
  isolate : isolate;
  portfolio : int; (* 1 = single-solver tier 2; > 1 races diversified members *)
  cube_k : int; (* split on the top-k VSIDS vars: 2^k cubes *)
  pool : (proc_request, proc_response) Vproc.t option; (* Some iff isolate = Proc *)
  store : Store.t option; (* the shared disk-backed verdict tier *)
  pain : pain_cell; (* the adversarial miner's measurement channel *)
}

let warned_env = Atomic.make false
let warned_fallback = Atomic.make false

let warn_once flag msg =
  if not (Atomic.exchange flag true) then Printf.eprintf "veriopt: %s\n%!" msg

let isolate_of_env () =
  match Sys.getenv_opt "VERIOPT_ISOLATE" with
  | None | Some "" | Some "domain" -> Domains
  | Some "proc" -> Proc
  | Some other ->
    warn_once warned_env
      (Printf.sprintf "ignoring invalid VERIOPT_ISOLATE=%S (want proc|domain)" other);
    Domains

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some v -> v | None -> default)
  | None -> default

let portfolio_of_env () = max 1 (env_int "VERIOPT_PORTFOLIO" 1)
let cube_k_of_env () = max 0 (min 6 (env_int "VERIOPT_CUBE_K" 2))

let warned_store = Atomic.make false

let store_dir_of_env () =
  match Sys.getenv_opt "VERIOPT_STORE" with None | Some "" -> None | Some d -> Some d

let create ?(capacity = 8192) ?(tier1_samples = 16) ?(tier1_fuel = 200_000) ?(breaker_k = 0)
    ?(breaker_cooldown = 16) ?isolate ?portfolio ?cube_k ?store () =
  let portfolio = max 1 (match portfolio with Some p -> p | None -> portfolio_of_env ()) in
  let cube_k = max 0 (min 6 (match cube_k with Some k -> k | None -> cube_k_of_env ())) in
  let isolate =
    match isolate with
    | Some i -> i
    (* a portfolio IS the fork pool: racing needs process members *)
    | None -> if portfolio > 1 then Proc else isolate_of_env ()
  in
  let isolate =
    match isolate with
    | Proc when not (Vproc.available ()) ->
      (* graceful degradation: no fork here means the in-process backend,
         not a broken engine *)
      warn_once warned_fallback
        "process isolation unavailable (no fork); falling back to the domain backend";
      Domains
    | i -> i
  in
  let isolate, pool =
    match isolate with
    | Domains -> (Domains, None)
    | Proc ->
      (* fork eagerly, at engine creation: the only legal moment for a
         multicore runtime, before reward traffic spins up the Par domains.
         The pool is sized to the portfolio so a whole race fits at once. *)
      let jobs = max portfolio (max 1 (env_int "VERIOPT_PROC_JOBS" 2)) in
      let p = Vproc.create ~jobs ~handler:proc_handler () in
      if Vproc.slots_available p > 0 then (Proc, Some p)
      else begin
        (* fork refused (domains already exist): a dead pool would turn
           every verdict Inconclusive, so degrade to the in-process backend *)
        Vproc.shutdown p;
        warn_once warned_fallback
          "process isolation unavailable (fork refused — domains already running); falling \
           back to the domain backend";
        (Domains, None)
      end
  in
  let portfolio =
    if portfolio > 1 && pool = None then begin
      warn_once warned_fallback
        "portfolio racing needs the proc backend; running a single solver";
      1
    end
    else portfolio
  in
  (* open the store after the pool forks: workers open their own read-only
     handles by path and must not inherit the writer's descriptor/buffer *)
  let store =
    match (match store with Some d -> Some d | None -> store_dir_of_env ()) with
    | None -> None
    | Some dir -> (
      match Store.open_ ~dir ~semantics:(semantics_digest ()) () with
      | s -> Some s
      | exception e ->
        warn_once warned_store
          (Printf.sprintf "verdict store %s unavailable (%s); running without it" dir
             (Printexc.to_string e));
        None)
  in
  let cache = Vcache.create ~capacity () in
  Option.iter
    (fun s ->
      Vcache.attach_store cache ~store:s
        ~decode:(fun payload -> Option.map (fun (v, _, _) -> v) (store_decode payload)))
    store;
  {
    cache;
    tier1_samples = max 0 tier1_samples;
    tier1_fuel = max 1 tier1_fuel;
    breaker_k = max 0 breaker_k;
    breaker_cooldown = max 1 breaker_cooldown;
    isolate;
    portfolio;
    cube_k;
    pool;
    store;
    pain =
      {
        pc_probes = 0;
        pc_inconclusive = 0;
        pc_deadline_expired = 0;
        pc_wall_s = 0.;
        pc_max_wall_s = 0.;
        pc_mu = Mutex.create ();
      };
  }

let isolate t = t.isolate
let portfolio t = t.portfolio

let shutdown t =
  (match t.pool with Some p -> Vproc.shutdown p | None -> ());
  (* flush the write-behind buffer and release the segment *)
  match t.store with Some s -> Store.close s | None -> ()

let orphans t = match t.pool with Some p -> Vproc.orphans p | None -> 0

let shared_engine = lazy (create ())
let shared () = Lazy.force shared_engine

let stats t = Vcache.stats t.cache
let store_stats t = Option.map Store.stats t.store
let store t = t.store
let reset_stats t = Vcache.reset t.cache
let breaker_open t = (Vcache.stats t.cache).breaker_open

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Tier 1: concrete counterexample hunt *)

let value_int64 = function Interp.VInt { v; _ } -> v | _ -> 0L

let show_value = function
  | Some (Interp.VInt { v; _ }) -> Some (Int64.to_string v)
  | Some Interp.VPoison -> Some "poison"
  | Some (Interp.VPtr _) -> Some "ptr"
  | None -> None

(* Build the Semantic_error verdict for a distinguishing input the oracle
   found.  Both sides are re-run once on that input to classify the mismatch
   (value / trace / memory / target UB) so the diagnostic reads exactly like
   a solver counterexample. *)
let tier1_verdict (m : Ast.modul) (src : Ast.func) (tgt : Ast.func) ~bounded
    (args : Interp.value list) : Alive.verdict =
  let inputs = List.mapi (fun i v -> (Fmt.str "arg%d" i, value_int64 v)) args in
  let run f =
    match Interp.run ~fuel:200_000 m f args with
    | o -> `Ok o
    | exception Interp.Undefined_behavior _ -> `Ub
    | exception Interp.Out_of_fuel -> `Fuel
  in
  let kind, src_value, tgt_value =
    match (run src, run tgt) with
    | `Ok _, `Ub -> (Diagnostics.Target_ub, None, None)
    | `Ok s, `Ok tg ->
      if s.Interp.call_trace <> tg.Interp.call_trace then (Diagnostics.Trace_mismatch, None, None)
      else if
        (* mirror the oracle's poison-blind agreement so the classification
           names the observation that actually distinguished the runs *)
        match (s.Interp.ret, tg.Interp.ret) with
        | Some Interp.VPoison, _ | _, Some Interp.VPoison -> false
        | Some a, Some b -> a <> b
        | _ -> false
      then (Diagnostics.Value_mismatch, show_value s.Interp.ret, show_value tg.Interp.ret)
      else if s.Interp.globals_final <> tg.Interp.globals_final then
        (Diagnostics.Memory_mismatch, None, None)
      else (Diagnostics.Other, None, None)
    | _ -> (Diagnostics.Other, None, None)
  in
  let message =
    Diagnostics.render_concrete_counterexample kind ~inputs ?src_value ?tgt_value ()
  in
  {
    Alive.category = Alive.Semantic_error;
    message;
    example = inputs;
    bounded;
    copy_of_input = false;
  }

(* ------------------------------------------------------------------ *)
(* Tier 2, portfolio mode.

   The parent probes the query on a tiny conflict budget (in-process, on
   the live probe solver).  A conclusive probe needs no fan-out.  An
   inconclusive one splits on the probe's top-k VSIDS variables into 2^k
   cubes and races, across the fork pool: one cube leg per cube (each a
   different member config) plus — when the portfolio is wider than the
   cube set — diversified full-query legs.  First conclusive leg wins and
   the losers are SIGKILLed; if nobody wins outright, all-cubes-refine is a
   refutation by partition, and otherwise the cube workers' learned unit
   clauses are merged back into the probe for one last cheap solve. *)

let inconclusive_verdict ~bounded ~copy msg =
  {
    Alive.category = Alive.Inconclusive;
    message = Diagnostics.inconclusive_message msg;
    example = [];
    bounded;
    copy_of_input = copy;
  }

let rec floor_log2 n = if n <= 1 then 0 else 1 + floor_log2 (n / 2)

type race_leg = { leg_cube : int list option; leg_member : Portfolio.member }

let tier2_race (t : t) pool ~unroll ~max_conflicts ?deadline ~reduce
    ~(sat : Sat.config option) ~bounded (m : Ast.modul) ~(src : Ast.func) ~(tgt : Ast.func) :
    Alive.verdict * bool (* cacheable *) =
  Portfolio.note_race ();
  let t0 = now () in
  let base_seed = match sat with Some c -> c.Sat.seed | None -> 0 in
  let k = min t.cube_k (floor_log2 (Vproc.jobs pool)) in
  match
    Alive.cube_probe ~unroll ~max_conflicts:(min 500 max_conflicts) ?deadline ~reduce ?sat ~k
      m ~src ~tgt
  with
  | `Verdict v -> (v, true) (* conclusive before any fan-out *)
  | `Split plan -> (
    Portfolio.note_cube_split ();
    let n_cubes = List.length plan.Alive.cubes in
    let total = max t.portfolio n_cubes in
    let mems = Array.of_list (Portfolio.members ~base_seed total) in
    let legs =
      Array.init total (fun i ->
          {
            leg_cube = (if i < n_cubes then Some (List.nth plan.Alive.cubes i) else None);
            leg_member = mems.(i);
          })
    in
    let reqs =
      Array.to_list
        (Array.map
           (fun leg ->
             {
               pr_m = m;
               pr_src = src;
               pr_tgt = tgt;
               pr_unroll = unroll;
               pr_max_conflicts = max_conflicts;
               pr_reduce = reduce;
               pr_incremental = false; (* cube legs are single-shot by design *)
               pr_deadline = deadline;
               pr_sat = Some leg.leg_member.Portfolio.config;
               pr_cube = leg.leg_cube;
               (* race legs skip the store: a diversified member's key can
                  never match a parent-written entry, and the parent already
                  missed before fanning out *)
               pr_store = None;
             })
           legs)
    in
    let kill_at = Option.map (fun d -> d +. Float.max 0.01 (0.5 *. (d -. t0))) deadline in
    let decide _i (resp : proc_response) =
      match resp with
      | P_verdict (v, _) when v.Alive.category <> Alive.Inconclusive -> `Win
      | P_cube (Alive.Cube_cex _, _, _) -> `Win
      | _ -> `Continue
    in
    match Vproc.call_race ?kill_at ~decide pool reqs with
    | Error f ->
      ( inconclusive_verdict ~bounded ~copy:plan.Alive.plan_copy
          ("verification " ^ Vproc.failure_message f ^ " (portfolio)"),
        false )
    | Ok members ->
      let wall = now () -. t0 in
      let winner = ref (-1) in
      let cancelled = ref 0 in
      let wasted = ref 0 in
      Array.iteri
        (fun i (mr : proc_response Vproc.race_member) ->
          match mr with
          | Vproc.Race_done (resp, _) ->
            let d = match resp with P_verdict (_, d) | P_cube (_, _, d) -> d in
            Solver.absorb d;
            let wins =
              match resp with
              | P_verdict (v, _) -> v.Alive.category <> Alive.Inconclusive
              | P_cube (Alive.Cube_cex _, _, _) -> true
              | P_cube _ -> false
            in
            if wins && !winner < 0 then winner := i
            else wasted := !wasted + d.Solver.conflicts
          | Vproc.Race_cancelled _ -> incr cancelled
          | Vproc.Race_failed _ -> ())
        members;
      Portfolio.note_cancelled !cancelled;
      Portfolio.note_wasted ~conflicts:!wasted;
      if !winner >= 0 then begin
        let i = !winner in
        Portfolio.note_win ~label:legs.(i).leg_member.Portfolio.label;
        (match members.(i) with
        | Vproc.Race_done (_, elapsed) when elapsed > 0. ->
          Portfolio.note_reap_ratio (wall /. elapsed)
        | _ -> ());
        match members.(i) with
        | Vproc.Race_done (P_verdict (v, _), _) -> (v, true)
        | Vproc.Race_done (P_cube (Alive.Cube_cex v, _, _), _) ->
          Portfolio.note_cube_cex ();
          (v, true)
        | _ -> assert false
      end
      else begin
        (* no single leg was conclusive: conclude at the join if we can *)
        let cube_done =
          List.filteri (fun i _ -> i < n_cubes)
            (Array.to_list
               (Array.map
                  (function
                    | Vproc.Race_done (P_cube (o, units, _), _) -> Some (o, units)
                    | _ -> None)
                  members))
        in
        let all_refine =
          n_cubes > 0
          && List.for_all
               (function Some (Alive.Cube_refines, _) -> true | _ -> false)
               cube_done
        in
        if all_refine then begin
          (* the cubes partition the space: no mismatch in any cube is no
             mismatch anywhere (within the unroll bound) *)
          Portfolio.note_cube_refutation ();
          ( {
              Alive.category = Alive.Equivalent;
              message = Diagnostics.equivalent_message ~bounded;
              example = [];
              bounded;
              copy_of_input = plan.Alive.plan_copy;
            },
            true )
        end
        else begin
          let units =
            List.concat_map (function Some (_, units) -> units | None -> []) cube_done
            |> List.sort_uniq compare
          in
          Portfolio.note_units (List.length units);
          match Alive.probe_join plan ~units with
          | Some v ->
            Portfolio.note_join_refutation ();
            (v, true)
          | None ->
            ( inconclusive_verdict ~bounded ~copy:plan.Alive.plan_copy
                "solver resource limit reached (portfolio)",
              true )
        end
      end)

(* ------------------------------------------------------------------ *)

let verify_funcs ?(unroll = 4) ?(max_conflicts = 200_000) ?deadline ?(reduce = true)
    ?incremental ?sat (t : t) (m : Ast.modul) ~(src : Ast.func) ~(tgt : Ast.func) :
    Alive.verdict =
  (* resolve the env-dependent default up front: the concrete bool enters
     the cache key, so a later VERIOPT_INCR change cannot alias entries *)
  let incremental =
    match incremental with Some b -> b | None -> Alive.incremental_default ()
  in
  if not (Alive.signature_matches src tgt) then
    (* tier 0, mirror of Alive.verify_funcs: cheap, never cached *)
    {
      Alive.category = Alive.Syntax_error;
      message = Diagnostics.syntax_error_message "function signature does not match the source";
      example = [];
      bounded = false;
      copy_of_input = false;
    }
  else
    let key =
      {
        Vcache.ctx = canon Printer.module_to_string m;
        (* alpha-canonical: commuted/renormalized twins hit one entry *)
        src = alpha_canon src;
        tgt = alpha_canon tgt;
        unroll;
        max_conflicts;
        reduce;
        incremental;
        portfolio = t.portfolio;
        sat = Sat.describe_config (Option.value sat ~default:Sat.default_config);
      }
    in
    (* the disk tier's content address: alpha-canonical pair text + every
       budget knob (the semantics digest rides inside each store record) *)
    let skey =
      match t.store with
      | None -> None
      | Some _ ->
        Some
          (store_key ~unroll ~max_conflicts ~reduce ~incremental ~portfolio:t.portfolio ?sat m
             ~src ~tgt)
    in
    match Vcache.find ?skey t.cache key with
    | Some v -> v
    | None ->
      (* fault site: artificial verification latency *)
      if Fault.fire Fault.Verify_delay then
        Unix.sleepf (Float.max 0. (Fault.param Fault.Verify_delay));
      let solver_before = Solver.stats () in
      let tier = ref 2 in
      let bounded =
        lazy (Cfg.has_loop (Cfg.of_func src) || Cfg.has_loop (Cfg.of_func tgt))
      in
      (* Transient verdicts — a tripped breaker or an expired deadline —
         describe this call's budget, not the query; caching them would
         poison every later, better-funded retry. *)
      let cacheable = ref true in
      let tier2 () =
        if t.breaker_k > 0 && Vcache.breaker_skip t.cache then begin
          cacheable := false;
          {
            Alive.category = Alive.Inconclusive;
            message =
              Diagnostics.inconclusive_message
                "circuit breaker open: SMT tier skipped (degraded mode)";
            example = [];
            bounded = Lazy.force bounded;
            copy_of_input = false;
          }
        end
        else begin
          let t0 = now () in
          let v =
            match t.pool with
            | None ->
              Alive.verify_funcs ~unroll ~max_conflicts ?deadline ~reduce ~incremental ?sat m
                ~src ~tgt
            | Some pool when t.portfolio > 1 ->
              let v, c =
                tier2_race t pool ~unroll ~max_conflicts ?deadline ~reduce ~sat
                  ~bounded:(Lazy.force bounded) m ~src ~tgt
              in
              if not c then cacheable := false;
              v
            | Some pool -> (
              (* the child still gets the cooperative deadline; the hard
                 SIGKILL fires only once it has overrun by half a budget *)
              let kill_at =
                Option.map (fun d -> d +. Float.max 0.01 (0.5 *. (d -. t0))) deadline
              in
              match
                Vproc.call ?kill_at pool
                  {
                    pr_m = m;
                    pr_src = src;
                    pr_tgt = tgt;
                    pr_unroll = unroll;
                    pr_max_conflicts = max_conflicts;
                    pr_reduce = reduce;
                    pr_incremental = incremental;
                    pr_deadline = deadline;
                    pr_sat = sat;
                    pr_cube = None;
                    pr_store = Option.map Store.dir t.store;
                  }
              with
              | Ok (P_verdict (v, d)) ->
                Solver.absorb d;
                v
              | Ok (P_cube _) ->
                (* protocol mismatch; cannot happen for a full-query request *)
                cacheable := false;
                inconclusive_verdict ~bounded:(Lazy.force bounded) ~copy:false
                  "worker protocol mismatch (proc isolate)"
              | Error f ->
                (* a dead worker describes this call's sandbox, not the
                   query: degrade to an uncached Inconclusive *)
                cacheable := false;
                {
                  Alive.category = Alive.Inconclusive;
                  message =
                    Diagnostics.inconclusive_message
                      ("verification " ^ Vproc.failure_message f ^ " (proc isolate)");
                  example = [];
                  bounded = Lazy.force bounded;
                  copy_of_input = false;
                })
          in
          Vcache.note_tier2 t.cache ~seconds:(now () -. t0);
          if t.breaker_k > 0 then
            Vcache.breaker_note t.cache
              ~inconclusive:(v.Alive.category = Alive.Inconclusive)
              ~k:t.breaker_k ~cooldown:t.breaker_cooldown;
          (match deadline with
          | Some d when v.Alive.category = Alive.Inconclusive && now () > d ->
            cacheable := false
          | _ -> ());
          v
        end
      in
      let verdict =
        (* an alpha-equal copy cannot have a concrete counterexample; skip
           straight to the SMT tier, which also sets [copy_of_input] *)
        if t.tier1_samples = 0 || Builder.alpha_equal src tgt then tier2 ()
        else begin
          let t0 = now () in
          let hunt =
            Exec_oracle.equivalent ~samples:t.tier1_samples ~fuel:t.tier1_fuel m ~src ~tgt
          in
          let dt = now () -. t0 in
          match hunt with
          | Exec_oracle.Io_different args ->
            Vcache.note_tier1 t.cache ~hit:true ~seconds:dt;
            tier := 1;
            tier1_verdict m src tgt ~bounded:(Lazy.force bounded) args
          | Exec_oracle.Io_equivalent _ | Exec_oracle.Io_unsupported _ ->
            Vcache.note_tier1 t.cache ~hit:false ~seconds:dt;
            tier2 ()
        end
      in
      if !cacheable then
        Vcache.add ?skey
          ?spayload:
            (Option.map
               (fun _ ->
                 store_encode ~tier:!tier
                   ~delta:(Solver.diff (Solver.stats ()) solver_before)
                   verdict)
               skey)
          t.cache key verdict;
      verdict

let verify_text ?unroll ?max_conflicts ?deadline ?reduce ?incremental ?sat (t : t)
    (m : Ast.modul) ~(src : Ast.func) ~(tgt_text : string) : Alive.verdict =
  (* fault site: a crashing (not merely failing) parse; the crash-proof
     reward path converts the exception into a counted engine failure *)
  Fault.inject Fault.Parse_corrupt ~site:"engine.parse";
  match Parser.parse_func_result tgt_text with
  | Error msg ->
    {
      Alive.category = Alive.Syntax_error;
      message = Diagnostics.syntax_error_message msg;
      example = [];
      bounded = false;
      copy_of_input = false;
    }
  | Ok tgt -> (
    match Validator.validate_func ~module_:m tgt with
    | Error errors ->
      {
        Alive.category = Alive.Syntax_error;
        message = Diagnostics.syntax_error_message (String.concat "\n" errors);
        example = [];
        bounded = false;
        copy_of_input = false;
      }
    | Ok () ->
      verify_funcs ?unroll ?max_conflicts ?deadline ?reduce ?incremental ?sat t m ~src ~tgt)

(* ------------------------------------------------------------------ *)
(* Pain probes: one timed, deadline-bounded verification plus the deltas of
   every misbehaviour counter the resilience layer keeps.  The adversarial
   miner scores candidates on this record. *)

type pain = {
  p_verdict : Alive.verdict;
  p_wall_s : float; (* wall time of this probe *)
  p_deadline_frac : float; (* wall / budget, >= 1. when the deadline expired *)
  p_conflicts : int; (* SAT conflicts this probe burned (in-process tiers) *)
  p_breaker_trips : int; (* circuit-breaker opens during the probe *)
  p_worker_kills : int; (* vproc hard-deadline SIGKILLs (process-global) *)
  p_worker_crashes : int; (* vproc workers that died on their own *)
  p_tier2_runs : int; (* SMT-tier entries (0 = settled by tier 0/1) *)
  p_cached : bool; (* answered from cache/store: no fresh work measured *)
}

type pain_stats = {
  probes : int;
  probe_inconclusive : int;
  probe_deadline_expired : int;
  probe_wall_s : float;
  probe_max_wall_s : float;
}

let pain_stats t =
  let c = t.pain in
  Mutex.lock c.pc_mu;
  let s =
    {
      probes = c.pc_probes;
      probe_inconclusive = c.pc_inconclusive;
      probe_deadline_expired = c.pc_deadline_expired;
      probe_wall_s = c.pc_wall_s;
      probe_max_wall_s = c.pc_max_wall_s;
    }
  in
  Mutex.unlock c.pc_mu;
  s

let verify_pain ?unroll ?max_conflicts ?(budget_s = 0.05) ?reduce ?incremental ?sat (t : t)
    (m : Ast.modul) ~(src : Ast.func) ~(tgt : Ast.func) : pain =
  let vs0 = Vcache.stats t.cache in
  let ss0 = Solver.stats () in
  let ps0 = Vproc.stats () in
  let t0 = now () in
  let budget_s = Float.max 0.001 budget_s in
  let v =
    verify_funcs ?unroll ?max_conflicts ~deadline:(t0 +. budget_s) ?reduce ?incremental ?sat
      t m ~src ~tgt
  in
  let wall = now () -. t0 in
  let vs1 = Vcache.stats t.cache in
  let ss1 = Solver.stats () in
  let ps1 = Vproc.stats () in
  let sdelta = Solver.diff ss1 ss0 in
  let expired = v.Alive.category = Alive.Inconclusive && wall >= budget_s in
  let c = t.pain in
  Mutex.lock c.pc_mu;
  c.pc_probes <- c.pc_probes + 1;
  if v.Alive.category = Alive.Inconclusive then c.pc_inconclusive <- c.pc_inconclusive + 1;
  if expired then c.pc_deadline_expired <- c.pc_deadline_expired + 1;
  c.pc_wall_s <- c.pc_wall_s +. wall;
  c.pc_max_wall_s <- Float.max c.pc_max_wall_s wall;
  Mutex.unlock c.pc_mu;
  {
    p_verdict = v;
    p_wall_s = wall;
    p_deadline_frac = wall /. budget_s;
    p_conflicts = sdelta.Solver.conflicts;
    p_breaker_trips = vs1.Vcache.breaker_trips - vs0.Vcache.breaker_trips;
    p_worker_kills = ps1.Vproc.killed - ps0.Vproc.killed;
    p_worker_crashes = ps1.Vproc.crashed - ps0.Vproc.crashed;
    p_tier2_runs = vs1.Vcache.tier2_runs - vs0.Vcache.tier2_runs;
    p_cached = vs1.Vcache.hits > vs0.Vcache.hits;
  }

(** The refinement check: does the target function refine the source?

    Builds the mismatch formula

    {v ~src.ub /\ ~src.exhausted /\ ~tgt.exhausted /\
      (tgt.ub \/ return-mismatch \/ call-trace-mismatch \/ memory-mismatch) v}

    and asks the solver for a model.  [Unsat] proves refinement (within the
    unrolling bound); a model is a candidate counterexample.  Pure calls are
    related by Ackermann constraints; impure calls must match positionally
    (same callee sequence), otherwise the query is rejected as unsupported
    rather than risking an unsound "not equivalent". *)

module Expr = Veriopt_smt.Expr
module Solver = Veriopt_smt.Solver
open Encode

type outcome =
  | Refines
  | Counterexample of Solver.model
  | Unknown

let args_equal (a : sval list) (b : sval list) : Expr.t =
  if List.length a <> List.length b then raise (Unsupported "call arity mismatch")
  else
    List.fold_left2
      (fun acc x y ->
        match (x, y) with
        | SInt xi, SInt yi when Expr.width xi.term = Expr.width yi.term ->
          Expr.and_ acc (Expr.eq xi.term yi.term)
        | _ -> raise (Unsupported "non-integer or mismatched call arguments"))
      Expr.tt a b

(* Ackermann constraints: any two pure calls of the same callee with equal
   arguments return equal results — within a side and across sides. *)
let ackermann_constraints (all_calls : call_event list) : Expr.t list =
  let pure = List.filter (fun c -> c.pure) all_calls in
  let rec pairs = function
    | [] -> []
    | c :: rest -> List.map (fun c' -> (c, c')) rest @ pairs rest
  in
  List.filter_map
    (fun (c1, c2) ->
      if c1.callee <> c2.callee || List.length c1.args <> List.length c2.args then None
      else
        match (c1.result, c2.result) with
        | Some (SInt r1), Some (SInt r2) when Expr.width r1.term = Expr.width r2.term ->
          Some (Expr.implies (args_equal c1.args c2.args) (Expr.eq r1.term r2.term))
        | _ -> None)
    (pairs pure)

(* Impure calls are observable events: both sides must run the same callee
   sequence with the same arguments.  We relate sites positionally, which is
   exact when both sides have the same number of impure sites; a site-count
   mismatch is reported as unsupported (inconclusive), never as a
   counterexample. *)
let impure_trace (src : summary) (tgt : summary) : Expr.t (* mismatch *) * Expr.t list (* constraints *)
    =
  let impure s = List.filter (fun c -> not c.pure) s.calls in
  let sc = impure src and tc = impure tgt in
  if List.length sc <> List.length tc then
    raise (Unsupported "different number of observable call sites")
  else begin
    let mismatches, constraints =
      List.fold_left2
        (fun (mis, cons) (c1 : call_event) (c2 : call_event) ->
          if c1.callee <> c2.callee then raise (Unsupported "observable callee mismatch");
          let both = Expr.and_ c1.call_guard c2.call_guard in
          let eq_args = args_equal c1.args c2.args in
          let mis =
            Expr.or_ mis
              (Expr.or_
                 (Expr.xor_ c1.call_guard c2.call_guard)
                 (Expr.and_ both (Expr.not_ eq_args)))
          in
          let cons =
            match (c1.result, c2.result) with
            | Some (SInt r1), Some (SInt r2) when Expr.width r1.term = Expr.width r2.term ->
              Expr.implies (Expr.and_ both eq_args) (Expr.eq r1.term r2.term) :: cons
            | _ -> cons
          in
          (mis, cons))
        (Expr.ff, []) sc tc
    in
    (mismatches, constraints)
  end

(* Observable memory: every param/global byte finally written by either side
   must agree (modulo poison refinement).  A byte missing on one side holds
   its initial contents, which are shared by construction. *)
let memory_mismatch (src : summary) (tgt : summary) : Expr.t =
  let keys =
    List.sort_uniq compare (List.map fst src.final_mem @ List.map fst tgt.final_mem)
  in
  List.fold_left
    (fun acc key ->
      let initial (base, offset) : cell =
        match base with
        | PParam i -> { byte = Expr.bv_var (Fmt.str "mem%d@%d" i offset) 8; bpoison = Expr.ff }
        | PGlobal g -> { byte = Expr.bv_var (Fmt.str "glob!%s@%d" g offset) 8; bpoison = Expr.ff }
        | PAlloca _ | PNull -> raise (Unsupported "non-observable cell in final memory")
      in
      let value s = match List.assoc_opt key s.final_mem with Some c -> c | None -> initial key in
      let sv = value src and tv = value tgt in
      Expr.or_ acc
        (Expr.and_ (Expr.not_ sv.bpoison)
           (Expr.or_ tv.bpoison (Expr.not_ (Expr.eq sv.byte tv.byte)))))
    Expr.ff keys

let return_mismatch (src : summary) (tgt : summary) : Expr.t =
  let domain = Expr.xor_ src.returns tgt.returns in
  match (src.ret_value, tgt.ret_value) with
  | None, None -> domain
  | Some (sv, sp), Some (tv, tp) ->
    if Expr.width sv <> Expr.width tv then raise (Unsupported "return width mismatch")
    else
      Expr.or_ domain
        (Expr.conj
           [
             src.returns;
             tgt.returns;
             Expr.not_ sp;
             Expr.or_ tp (Expr.not_ (Expr.eq sv tv));
           ])
  | _ -> raise (Unsupported "return shape mismatch")

(* The full refinement query for one pair of summaries: the mismatch formula
   plus its side constraints (impure-trace result equalities and Ackermann
   constraints).  Raises [Unsupported] before anything touches a solver. *)
let query (src : summary) (tgt : summary) : Expr.t list =
  let trace_mis, trace_cons = impure_trace src tgt in
  let ack = ackermann_constraints (src.calls @ tgt.calls) in
  let mismatch =
    Expr.conj
      [
        Expr.not_ src.ub;
        Expr.not_ src.exhausted;
        Expr.not_ tgt.exhausted;
        Expr.disj [ tgt.ub; return_mismatch src tgt; trace_mis; memory_mismatch src tgt ];
      ]
  in
  mismatch :: (trace_cons @ ack)

let outcome_of = function
  | Solver.Unsat -> Refines
  | Solver.Sat model -> Counterexample model
  | Solver.Unknown -> Unknown

(** Check whether [tgt] refines [src].  [sat] diversifies the underlying
    SAT solver (portfolio members). *)
let check ?(max_conflicts = 200_000) ?deadline ?reduce ?sat (src : summary) (tgt : summary) :
    outcome =
  outcome_of (Solver.check ~max_conflicts ?deadline ?reduce ?config:sat (query src tgt))

(* ------------------------------------------------------------------ *)
(* Cube-and-conquer entry points.

   The parent probes the refinement query on a small budget; if that is
   inconclusive, its VSIDS order names the split variables and each cube is
   solved by [check_cube] in a separate process.  Raw SAT literals travel
   between planner and workers, which is sound because both sides blast the
   {e same} deterministic [query src tgt] assertion list in a fresh context
   — variable numbering is structural, independent of solver config. *)

let probe ?(max_conflicts = 500) ?deadline ?reduce ?sat (src : summary) (tgt : summary) :
    Solver.probe * outcome =
  let p, o = Solver.probe_check ~max_conflicts ?deadline ?reduce ?config:sat (query src tgt) in
  (p, outcome_of o)

let probe_top_vars = Solver.probe_top_vars

let probe_join ?max_conflicts ?deadline p ~units =
  Solver.probe_add_units p units;
  outcome_of (Solver.probe_resolve ?max_conflicts ?deadline p)

let check_cube ?(max_conflicts = 200_000) ?deadline ?reduce ?sat ~cube (src : summary)
    (tgt : summary) : outcome * int list =
  let o, units =
    Solver.check_cube ~max_conflicts ?deadline ?reduce ?config:sat ~cube (query src tgt)
  in
  (outcome_of o, units)

(* ------------------------------------------------------------------ *)
(* Incremental sessions for iterative-deepening unroll.

   One [Solver.Session] is shared across the whole depth schedule.  The
   depth-d query is asserted as a single guarded implication

     g_d => (mismatch_d /\ trace_cons_d /\ ack_d)

   where [g_d] is a fresh boolean guard, and checked under the assumption
   [g_d].  [Unsat] then means "no mismatch within bound d"; deepening
   retracts the whole depth-d query by permanently asserting [~g_d] (every
   depth-d clause is satisfied once its guard is false) and asserts the
   depth-(d+1) implication.  Because the session's clause set only ever
   grows, learned clauses, variable activities and saved phases carry over
   — that, plus the bit-blaster reusing the circuits of every block shared
   between consecutive unrollings (see [Encode.fresh_bv]), is where the
   deepening loop wins over fresh solves. *)

type session = { s : Solver.Session.t; mutable asserted_depths : int list }

let session_create ?sat () = { s = Solver.Session.create ?config:sat (); asserted_depths = [] }
let session_release t = Solver.Session.release t.s
let session_conflicts t = Solver.Session.conflicts t.s

let guard_var depth = Expr.bool_var (Fmt.str "!unroll!guard!%d" depth)

(** One step of the deepening schedule: assert the depth-[depth] query
    (guarded) and check it under its guard assumption. *)
let check_incremental ?(max_conflicts = 200_000) ?deadline ?reduce (t : session)
    ~(depth : int) (src : summary) (tgt : summary) : outcome =
  let q = query src tgt in
  let g = guard_var depth in
  Solver.Session.assert_ t.s (Expr.implies g (Expr.conj q));
  t.asserted_depths <- depth :: t.asserted_depths;
  match Solver.Session.check ~max_conflicts ?deadline ?reduce ~assumptions:[ g ] t.s with
  | Solver.Unsat -> Refines
  | Solver.Sat model -> Counterexample model
  | Solver.Unknown -> Unknown

(** Retract the depth-[depth] query before deepening: [~g_d] permanently
    satisfies every clause of the depth-[depth] implication. *)
let retract (t : session) ~(depth : int) =
  Solver.Session.assert_ t.s (Expr.not_ (guard_var depth))

(* Bump when the refinement obligation itself changes meaning (what
   counts as refines/counterexample/inconclusive): the disk-backed verdict
   store keys entry freshness on this. *)
let semantics_version = 1

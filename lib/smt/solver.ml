(** Top-level SMT interface: assert a set of boolean terms, decide
    satisfiability, and extract models (the verifier's counterexamples). *)

type model = {
  bv_value : string -> (int * int64) option; (* width, canonical value *)
  bool_value : string -> bool option;
}

type outcome = Sat of model | Unsat | Unknown

(* ------------------------------------------------------------------ *)
(* Aggregate SAT statistics across [check] calls.  Counters are atomic so
   the Par pool's worker domains can solve concurrently; [reset_stats] lets
   the bench harness attribute solver work to a measurement window. *)

type stats = {
  checks : int;
  sat : int;
  unsat : int;
  unknown : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned : int;
  deleted : int;
  reductions : int;
  db_peak : int;
  sessions : int;
  session_reuse : int;
  lbd_hist : int array;
}

let s_checks = Atomic.make 0
let s_sat = Atomic.make 0
let s_unsat = Atomic.make 0
let s_unknown = Atomic.make 0
let s_conflicts = Atomic.make 0
let s_decisions = Atomic.make 0
let s_propagations = Atomic.make 0
let s_restarts = Atomic.make 0
let s_learned = Atomic.make 0
let s_deleted = Atomic.make 0
let s_reductions = Atomic.make 0
let s_db_peak = Atomic.make 0
let s_sessions = Atomic.make 0
let s_session_reuse = Atomic.make 0
let s_lbd_hist = Array.init Sat.lbd_buckets (fun _ -> Atomic.make 0)

let stats () =
  {
    checks = Atomic.get s_checks;
    sat = Atomic.get s_sat;
    unsat = Atomic.get s_unsat;
    unknown = Atomic.get s_unknown;
    conflicts = Atomic.get s_conflicts;
    decisions = Atomic.get s_decisions;
    propagations = Atomic.get s_propagations;
    restarts = Atomic.get s_restarts;
    learned = Atomic.get s_learned;
    deleted = Atomic.get s_deleted;
    reductions = Atomic.get s_reductions;
    db_peak = Atomic.get s_db_peak;
    sessions = Atomic.get s_sessions;
    session_reuse = Atomic.get s_session_reuse;
    lbd_hist = Array.map Atomic.get s_lbd_hist;
  }

let reset_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    ([
       s_checks; s_sat; s_unsat; s_unknown; s_conflicts; s_decisions; s_propagations;
       s_restarts; s_learned; s_deleted; s_reductions; s_db_peak; s_sessions;
       s_session_reuse;
     ]
    @ Array.to_list s_lbd_hist)

let bump counter n = ignore (Atomic.fetch_and_add counter n)

let rec bump_max counter n =
  let cur = Atomic.get counter in
  if n > cur && not (Atomic.compare_and_set counter cur n) then bump_max counter n

(* Worker-side aggregation: a forked verification worker accumulates its SAT
   work in its own copy of these atomics, invisible to the parent.  The
   worker ships [diff after before] back in the response frame and the
   parent [absorb]s it, so Report and the bench JSON see portfolio members'
   counters — losers included — not just the parent's own solves. *)

let diff (a : stats) (b : stats) : stats =
  {
    checks = a.checks - b.checks;
    sat = a.sat - b.sat;
    unsat = a.unsat - b.unsat;
    unknown = a.unknown - b.unknown;
    conflicts = a.conflicts - b.conflicts;
    decisions = a.decisions - b.decisions;
    propagations = a.propagations - b.propagations;
    restarts = a.restarts - b.restarts;
    learned = a.learned - b.learned;
    deleted = a.deleted - b.deleted;
    reductions = a.reductions - b.reductions;
    db_peak = a.db_peak (* peak is a maximum, not a sum: keep the worker's *);
    sessions = a.sessions - b.sessions;
    session_reuse = a.session_reuse - b.session_reuse;
    lbd_hist = Array.init Sat.lbd_buckets (fun i -> a.lbd_hist.(i) - b.lbd_hist.(i));
  }

let absorb (d : stats) =
  bump s_checks d.checks;
  bump s_sat d.sat;
  bump s_unsat d.unsat;
  bump s_unknown d.unknown;
  bump s_conflicts d.conflicts;
  bump s_decisions d.decisions;
  bump s_propagations d.propagations;
  bump s_restarts d.restarts;
  bump s_learned d.learned;
  bump s_deleted d.deleted;
  bump s_reductions d.reductions;
  bump_max s_db_peak d.db_peak;
  bump s_sessions d.sessions;
  bump s_session_reuse d.session_reuse;
  Array.iteri (fun i n -> bump s_lbd_hist.(i) n) d.lbd_hist

module Fault = Veriopt_fault.Fault

(* One accounted solve over a live bit-blast context: runs {!Sat.solve},
   folds the per-call counter deltas into the process-wide atomics, and
   wraps a [Sat] result in model closures over the context.  [assumptions]
   are raw SAT literals (already blasted). *)
let solve_ctx ~max_conflicts ?deadline ~reduce ?(assumptions = []) (ctx : Bitblast.ctx) :
    outcome =
  let sat = ctx.Bitblast.sat in
  let c0, d0, p0 = Sat.stats sat in
  let r0 = Sat.restarts sat in
  let db0 = Sat.db_stats sat in
  let result = Sat.solve ~max_conflicts ?deadline ~reduce ~assumptions sat in
  let c1, d1, p1 = Sat.stats sat in
  let db1 = Sat.db_stats sat in
  bump s_checks 1;
  bump s_conflicts (c1 - c0);
  bump s_decisions (d1 - d0);
  bump s_propagations (p1 - p0);
  bump s_restarts (Sat.restarts sat - r0);
  bump s_learned (db1.Sat.learned - db0.Sat.learned);
  bump s_deleted (db1.Sat.deleted - db0.Sat.deleted);
  bump s_reductions (db1.Sat.reductions - db0.Sat.reductions);
  bump_max s_db_peak db1.Sat.peak;
  Array.iteri (fun i n -> bump s_lbd_hist.(i) (n - db0.Sat.lbd_hist.(i))) db1.Sat.lbd_hist;
  match result with
  | Sat.Sat ->
    bump s_sat 1;
    Sat
      {
        bv_value = (fun name -> Bitblast.bv_model_value ctx name);
        bool_value = (fun name -> Bitblast.bool_model_value ctx name);
      }
  | Sat.Unsat ->
    bump s_unsat 1;
    Unsat
  | Sat.Unknown ->
    bump s_unknown 1;
    Unknown

(** Decide [/\ assertions].  [max_conflicts] is the conflict-count budget;
    [deadline] is an absolute wall-clock instant checked in the SAT loop
    alongside it.  Exhausting either yields [Unknown].  [reduce] (default
    on) is the learned-clause-DB reduction knob, forwarded to {!Sat.solve}
    so differential harnesses can diff the two trajectories.  [config]
    diversifies the underlying solver (portfolio members). *)
let check ?(max_conflicts = 200_000) ?deadline ?(reduce = true) ?config
    (assertions : Expr.t list) : outcome =
  let expired () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () > d
  in
  (* fault site: a hostile query exhausting the whole solver budget *)
  if Fault.fire Fault.Solver_timeout || expired () then begin
    bump s_checks 1;
    bump s_unknown 1;
    Unknown
  end
  (* Fast path: constant-folded assertions. *)
  else if List.exists (fun (t : Expr.t) -> t.Expr.node = Expr.False) assertions then begin
    bump s_checks 1;
    bump s_unsat 1;
    Unsat
  end
  else begin
    let ctx = Bitblast.create ?config () in
    List.iter (Bitblast.assert_term ctx) assertions;
    solve_ctx ~max_conflicts ?deadline ~reduce ctx
  end

(* ------------------------------------------------------------------ *)
(* Probes and cubes (cube-and-conquer support).

   A probe is a budget-limited solve whose context stays alive afterwards:
   when it comes back [Unknown], its VSIDS activity order names the top
   split variables, and its solver is the join point where unit clauses
   learned by cube workers are merged and cheaply re-propagated.

   Soundness of shipping raw literals across processes: bit-blasting a
   fixed assertion list in a fresh context allocates SAT variables in
   deterministic (structural traversal) order, so two processes blasting
   the same query agree on every variable index. *)

type probe = { pctx : Bitblast.ctx }

let probe_check ?(max_conflicts = 200_000) ?deadline ?(reduce = true) ?config
    (assertions : Expr.t list) : probe * outcome =
  let ctx = Bitblast.create ?config () in
  List.iter (Bitblast.assert_term ctx) assertions;
  let o = solve_ctx ~max_conflicts ?deadline ~reduce ctx in
  ({ pctx = ctx }, o)

let probe_top_vars (p : probe) k = Sat.top_vars p.pctx.Bitblast.sat k

let probe_add_units (p : probe) (units : int list) =
  List.iter (fun l -> Sat.add_clause p.pctx.Bitblast.sat [ l ]) units

let probe_resolve ?(max_conflicts = 10_000) ?deadline (p : probe) : outcome =
  solve_ctx ~max_conflicts ?deadline ~reduce:true p.pctx

(** Decide [/\ assertions] under a cube of raw assumption literals, and
    return the level-0 unit literals learned along the way (global
    consequences of the clause DB, safe to merge at the join).  Out-of-range
    cube literals — a blast mismatch between planner and worker — degrade to
    [Unknown] rather than crash. *)
let check_cube ?(max_conflicts = 200_000) ?deadline ?(reduce = true) ?config ~(cube : int list)
    (assertions : Expr.t list) : outcome * int list =
  let expired () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () > d
  in
  if Fault.fire Fault.Solver_timeout || expired () then begin
    bump s_checks 1;
    bump s_unknown 1;
    (Unknown, [])
  end
  else if List.exists (fun (t : Expr.t) -> t.Expr.node = Expr.False) assertions then begin
    bump s_checks 1;
    bump s_unsat 1;
    (Unsat, [])
  end
  else begin
    let ctx = Bitblast.create ?config () in
    List.iter (Bitblast.assert_term ctx) assertions;
    let sat = ctx.Bitblast.sat in
    if List.exists (fun l -> Sat.var_of_lit l >= Sat.num_vars sat) cube then begin
      bump s_checks 1;
      bump s_unknown 1;
      (Unknown, [])
    end
    else
      let o = solve_ctx ~max_conflicts ?deadline ~reduce ~assumptions:cube ctx in
      (o, Sat.implied_units sat)
  end

(* ------------------------------------------------------------------ *)
(* Persistent incremental sessions: one bit-blasting context and one SAT
   solver shared across a sequence of [assert_]/[check] calls.  Assertions
   are permanent (the instance only ever strengthens, so learned clauses,
   variable activities and saved phases stay sound and warm across checks);
   per-check conditions go through [~assumptions].  This is the engine room
   of iterative-deepening unroll: depth k+1 re-asserts only its tail and
   the solver resumes where depth k left off. *)

module Session = struct
  type t = {
    ctx : Bitblast.ctx;
    asserted : (int, unit) Hashtbl.t; (* Expr ids already asserted *)
    mutable checks : int;
    mutable conflicts_used : int; (* sum of per-check conflict deltas *)
    mutable released : bool;
  }

  let create ?config () =
    bump s_sessions 1;
    {
      ctx = Bitblast.create ?config ();
      asserted = Hashtbl.create 64;
      checks = 0;
      conflicts_used = 0;
      released = false;
    }

  let alive t = if t.released then invalid_arg "Solver.Session: released"

  let assert_ t (e : Expr.t) =
    alive t;
    if not (Hashtbl.mem t.asserted e.Expr.id) then begin
      Hashtbl.replace t.asserted e.Expr.id ();
      Bitblast.assert_term t.ctx e
    end

  let check ?(max_conflicts = 200_000) ?deadline ?(reduce = true)
      ?(assumptions : Expr.t list = []) t : outcome =
    alive t;
    let expired () =
      match deadline with None -> false | Some d -> Unix.gettimeofday () > d
    in
    bump s_checks 1;
    if t.checks > 0 then bump s_session_reuse 1;
    t.checks <- t.checks + 1;
    (* fault site: shares the one-shot path's injected solver timeouts *)
    if Fault.fire Fault.Solver_timeout || expired () then begin
      bump s_unknown 1;
      Unknown
    end
    else begin
      let sat = t.ctx.Bitblast.sat in
      let c0, d0, p0 = Sat.stats sat in
      let r0 = Sat.restarts sat in
      let db0 = Sat.db_stats sat in
      (* Blasting the assumption terms may add definitional clauses — that
         is fine, Tseitin definitions are satisfiable extensions. *)
      let assumption_lits = List.map (Bitblast.blast_bool t.ctx) assumptions in
      let result =
        Sat.solve ~max_conflicts ?deadline ~reduce ~assumptions:assumption_lits sat
      in
      let c1, d1, p1 = Sat.stats sat in
      let db1 = Sat.db_stats sat in
      t.conflicts_used <- t.conflicts_used + (c1 - c0);
      bump s_conflicts (c1 - c0);
      bump s_decisions (d1 - d0);
      bump s_propagations (p1 - p0);
      bump s_restarts (Sat.restarts sat - r0);
      bump s_learned (db1.Sat.learned - db0.Sat.learned);
      bump s_deleted (db1.Sat.deleted - db0.Sat.deleted);
      bump s_reductions (db1.Sat.reductions - db0.Sat.reductions);
      bump_max s_db_peak db1.Sat.peak;
      Array.iteri
        (fun i n -> bump s_lbd_hist.(i) (n - db0.Sat.lbd_hist.(i)))
        db1.Sat.lbd_hist;
      match result with
      | Sat.Sat ->
        bump s_sat 1;
        (* The closures read live solver state: valid until the next
           operation on this session. The deepening loop stops on Sat, so
           its counterexample models are never invalidated. *)
        Sat
          {
            bv_value = (fun name -> Bitblast.bv_model_value t.ctx name);
            bool_value = (fun name -> Bitblast.bool_model_value t.ctx name);
          }
      | Sat.Unsat ->
        bump s_unsat 1;
        Unsat
      | Sat.Unknown ->
        bump s_unknown 1;
        Unknown
    end

  let conflicts t = t.conflicts_used
  let checks t = t.checks
  let release t = t.released <- true
end

(** [valid t] checks that [t] is true under all assignments; on failure the
    model witnesses the violation. *)
let valid ?max_conflicts ?deadline ?reduce (t : Expr.t) : outcome =
  match check ?max_conflicts ?deadline ?reduce [ Expr.not_ t ] with
  | Sat m -> Sat m (* counterexample *)
  | Unsat -> Unsat (* valid *)
  | Unknown -> Unknown

(** Concrete evaluation of a closed term under an assignment, used for
    differential testing of the bit-blaster. *)
let rec eval_bool (env_bv : string -> int64) (env_bool : string -> bool) (t : Expr.t) : bool =
  match t.Expr.node with
  | Expr.True -> true
  | Expr.False -> false
  | Expr.BoolVar s -> env_bool s
  | Expr.Not a -> not (eval_bool env_bv env_bool a)
  | Expr.BAnd (a, b) -> eval_bool env_bv env_bool a && eval_bool env_bv env_bool b
  | Expr.BOr (a, b) -> eval_bool env_bv env_bool a || eval_bool env_bv env_bool b
  | Expr.BXor (a, b) -> eval_bool env_bv env_bool a <> eval_bool env_bv env_bool b
  | Expr.BIte (c, a, b) ->
    if eval_bool env_bv env_bool c then eval_bool env_bv env_bool a
    else eval_bool env_bv env_bool b
  | Expr.Eq (a, b) -> eval_bv env_bv env_bool a = eval_bv env_bv env_bool b
  | Expr.Ult (a, b) ->
    Veriopt_ir.Bits.ult (Expr.width a) (eval_bv env_bv env_bool a) (eval_bv env_bv env_bool b)
  | Expr.Slt (a, b) ->
    Veriopt_ir.Bits.slt (Expr.width a) (eval_bv env_bv env_bool a) (eval_bv env_bv env_bool b)
  | _ -> invalid_arg "Solver.eval_bool: bitvector-sorted term"

and eval_bv (env_bv : string -> int64) (env_bool : string -> bool) (t : Expr.t) : int64 =
  let open Veriopt_ir.Bits in
  let w = Expr.width t in
  match t.Expr.node with
  | Expr.BvConst { value; _ } -> value
  | Expr.BvVar { name; _ } -> mask w (env_bv name)
  | Expr.BvBin (op, a, b) -> (
    let x = eval_bv env_bv env_bool a and y = eval_bv env_bv env_bool b in
    match op with
    | Expr.Add -> add w x y
    | Expr.Sub -> sub w x y
    | Expr.Mul -> mul w x y
    | Expr.UDiv -> if y = 0L then all_ones w else udiv w x y
    | Expr.URem -> if y = 0L then x else urem w x y
    | Expr.SDiv ->
      if y = 0L then if slt w x 0L then 1L else all_ones w
      else if x = min_signed w && y = all_ones w then min_signed w
      else sdiv w x y
    | Expr.SRem ->
      if y = 0L then x else if x = min_signed w && y = all_ones w then 0L else srem w x y
    | Expr.Shl -> if shift_amount_poison w y then 0L else shl w x y
    | Expr.LShr -> if shift_amount_poison w y then 0L else lshr w x y
    | Expr.AShr ->
      if shift_amount_poison w y then if slt w x 0L then all_ones w else 0L else ashr w x y
    | Expr.And -> logand w x y
    | Expr.Or -> logor w x y
    | Expr.Xor -> logxor w x y)
  | Expr.BvNot a -> lognot w (eval_bv env_bv env_bool a)
  | Expr.BvNeg a -> neg w (eval_bv env_bv env_bool a)
  | Expr.BvIte (c, a, b) ->
    if eval_bool env_bv env_bool c then eval_bv env_bv env_bool a else eval_bv env_bv env_bool b
  | Expr.BvZext (_, a) -> zext (Expr.width a) w (eval_bv env_bv env_bool a)
  | Expr.BvSext (_, a) -> sext (Expr.width a) w (eval_bv env_bv env_bool a)
  | Expr.BvTrunc (_, a) -> trunc (Expr.width a) w (eval_bv env_bv env_bool a)
  | _ -> invalid_arg "Solver.eval_bv: boolean-sorted term"

(** Indexed max-heap over variable activities: the VSIDS decision order.

    Elements are variable indices; priority is read through a callback into
    the solver's activity array so bumps only need [decrease]/[increase]
    notifications for elements currently in the heap. *)

type t = {
  mutable heap : int array; (* heap of variable indices *)
  mutable size : int;
  mutable pos : int array; (* position of each var in [heap]; -1 if absent *)
  score : int -> float;
}

let create ~capacity ~score =
  { heap = Array.make (max 1 capacity) 0; size = 0; pos = Array.make (max 1 capacity) (-1); score }

let ensure t n =
  if n > Array.length t.pos then (
    let pos = Array.make (2 * n) (-1) in
    Array.blit t.pos 0 pos 0 (Array.length t.pos);
    t.pos <- pos;
    let heap = Array.make (2 * n) 0 in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap)

let in_heap t v = v < Array.length t.pos && t.pos.(v) >= 0
let is_empty t = t.size = 0

let swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.pos.(b) <- i;
  t.pos.(a) <- j

let rec sift_up t i =
  if i > 0 then (
    let parent = (i - 1) / 2 in
    if t.score t.heap.(i) > t.score t.heap.(parent) then (
      swap t i parent;
      sift_up t parent))

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.size && t.score t.heap.(l) > t.score t.heap.(!largest) then largest := l;
  if r < t.size && t.score t.heap.(r) > t.score t.heap.(!largest) then largest := r;
  if !largest <> i then (
    swap t i !largest;
    sift_down t !largest)

let insert t v =
  ensure t (v + 1);
  if not (in_heap t v) then (
    t.heap.(t.size) <- v;
    t.pos.(v) <- t.size;
    t.size <- t.size + 1;
    sift_up t (t.size - 1))

let size t = t.size

(** The element at heap-array position [i] (0 <= i < size); position is an
    implementation detail, so this is only useful for sampling a uniformly
    random in-heap element. *)
let choose t i = t.heap.(i)

(** Remove an arbitrary element, restoring heap order around the hole. *)
let remove t v =
  if in_heap t v then (
    let i = t.pos.(v) in
    t.size <- t.size - 1;
    t.pos.(v) <- -1;
    if i < t.size then (
      let moved = t.heap.(t.size) in
      t.heap.(i) <- moved;
      t.pos.(moved) <- i;
      sift_up t i;
      sift_down t i))

let pop_max t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.pos.(top) <- -1;
  if t.size > 0 then (
    t.heap.(0) <- t.heap.(t.size);
    t.pos.(t.heap.(0)) <- 0;
    sift_down t 0);
  top

(** The activity of [v] increased; restore heap order. *)
let notify_increase t v = if in_heap t v then sift_up t t.pos.(v)

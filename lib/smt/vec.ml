(** Growable int arrays, the workhorse container of the SAT solver. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; len = 0 }

let length v = v.len

let get v i = Array.unsafe_get v.data i
let set v i x = Array.unsafe_set v.data i x

let push v x =
  if v.len = Array.length v.data then (
    let data = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let clear v = v.len <- 0
let shrink v n = v.len <- n

(* Order-destroying removals: the watch lists and the learnt-clause index
   don't care about order, so removal is a swap with the last element. *)

let swap_remove v i =
  v.len <- v.len - 1;
  Array.unsafe_set v.data i (Array.unsafe_get v.data v.len)

let remove v x =
  let i = ref 0 in
  let found = ref false in
  while (not !found) && !i < v.len do
    if Array.unsafe_get v.data !i = x then (
      swap_remove v !i;
      found := true)
    else incr i
  done;
  !found

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = Array.unsafe_get v.data i in
    if p x then (
      Array.unsafe_set v.data !j x;
      incr j)
  done;
  v.len <- !j

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let to_list v = List.init v.len (fun i -> v.data.(i))

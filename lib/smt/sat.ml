(** A CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning, VSIDS decision heuristic with phase saving and Luby restarts,
    and Glucose-style learned-clause management (LBD scoring, clause
    activities, periodic clause-DB reduction).  A conflict budget turns hard
    instances into [Unknown], which the verifier reports as "inconclusive"
    — mirroring Alive2's solver timeouts.

    Literal encoding: variable [v >= 0]; positive literal [2v], negative
    [2v+1]. *)

type result = Sat | Unsat | Unknown

(* ------------------------------------------------------------------ *)
(* Diversification knobs.  A portfolio races several solvers over the same
   instance; what makes the race worth running is that the members explore
   *different* trajectories.  Every knob below changes the trajectory only,
   never the verdict, and every knob is deterministic: the same config on
   the same instance replays the same search bit for bit.  [default] is
   pinned to the historical behavior of this solver — seed 0, Luby restarts
   with base 100, all-false initial phases, no random decisions — so a
   1-member portfolio is indistinguishable from the pre-portfolio solver. *)

type restart_schedule = Luby | Geometric

type init_phase = Phase_false | Phase_true | Phase_random

type config = {
  seed : int;
      (* seeds the per-solver PRNG (VSIDS tie-breaking noise, random phases
         and random decisions); 0 = no activity noise, the legacy order *)
  restarts : restart_schedule;
  restart_base : int; (* conflicts before the first restart *)
  restart_growth : float; (* Geometric only: interval multiplier *)
  init_phase : init_phase;
  random_var_freq : float; (* fraction of decisions picking a random var *)
  reduce_first : int; (* learned-DB size triggering the first reduction *)
}

let default_config =
  {
    seed = 0;
    restarts = Luby;
    restart_base = 100;
    restart_growth = 1.5;
    init_phase = Phase_false;
    random_var_freq = 0.;
    reduce_first = 2000;
  }

(* Compact label for winner histograms and cache keys. *)
let describe_config c =
  let r =
    match c.restarts with
    | Luby -> Printf.sprintf "luby%d" c.restart_base
    | Geometric -> Printf.sprintf "geo%d x%.2g" c.restart_base c.restart_growth
  in
  let p =
    match c.init_phase with Phase_false -> "pF" | Phase_true -> "pT" | Phase_random -> "pR"
  in
  let rv = if c.random_var_freq > 0. then Printf.sprintf ":rv%.2g" c.random_var_freq else "" in
  let rf = if c.reduce_first <> 2000 then Printf.sprintf ":rf%d" c.reduce_first else "" in
  Printf.sprintf "s%d:%s:%s%s%s" c.seed r p rv rf

let lit_of_var ?(sign = true) v = if sign then 2 * v else (2 * v) + 1
let var_of_lit l = l lsr 1
let lit_neg l = l lxor 1
let lit_sign l = l land 1 = 0 (* true = positive *)

type clause = {
  mutable lits : int array; (* [||] once deleted *)
  learned : bool;
  mutable lbd : int; (* literal-block distance; 0 for problem clauses *)
  mutable act : float; (* clause activity (bumped when used in analysis) *)
  mutable deleted : bool;
}

(* The LBD histogram exported by [db_stats]: bucket [i] counts learned
   clauses whose LBD at learning time was [i + 1]; the last bucket pools
   everything >= [lbd_buckets]. *)
let lbd_buckets = 8

type db_stats = {
  learned : int; (* learned clauses ever stored *)
  deleted : int; (* learned clauses deleted by reductions *)
  live : int; (* current learned-DB size *)
  peak : int; (* largest learned-DB size ever *)
  reductions : int; (* clause-DB reduction passes *)
  lbd_hist : int array; (* length [lbd_buckets]; see above *)
}

type t = {
  config : config;
  mutable rng : int64; (* splitmix64 state, seeded from [config.seed] *)
  mutable nvars : int;
  mutable clauses : clause array; (* growable *)
  mutable nclauses : int;
  mutable watches : Vec.t array; (* literal -> indices of clauses watching it *)
  mutable assign : int array; (* var -> -1 unassigned / 0 false / 1 true *)
  mutable level : int array; (* var -> decision level *)
  mutable reason : int array; (* var -> clause index or -1 *)
  mutable phase : bool array; (* saved phases *)
  activity : float array ref;
  mutable var_inc : float;
  trail : Vec.t; (* assigned literals in order *)
  trail_lim : Vec.t; (* trail indices at decision points *)
  mutable qhead : int;
  order : Heap.t;
  mutable unsat : bool;
  mutable conflicts : int;
  mutable propagations : int;
  mutable decisions : int;
  mutable n_restarts : int;
  mutable seen : bool array; (* scratch for conflict analysis *)
  (* learned-clause management *)
  learnts : Vec.t; (* indices of live learned clauses *)
  mutable cla_inc : float; (* clause-activity increment *)
  mutable lbd_stamp : int array; (* level -> stamp, scratch for LBD *)
  mutable stamp : int;
  mutable n_learned : int;
  mutable n_deleted : int;
  mutable n_reductions : int;
  mutable max_db : int;
  lbd_hist : int array;
}

let create ?(config = default_config) () =
  let activity = ref (Array.make 8 0.) in
  {
    config;
    rng = Int64.of_int config.seed;
    nvars = 0;
    clauses =
      Array.make 64 { lits = [||]; learned = false; lbd = 0; act = 0.; deleted = false };
    nclauses = 0;
    watches = Array.init 16 (fun _ -> Vec.create ~capacity:4 ());
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    phase = Array.make 8 false;
    activity;
    var_inc = 1.0;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    order = Heap.create ~capacity:8 ~score:(fun v -> !activity.(v));
    unsat = false;
    conflicts = 0;
    propagations = 0;
    decisions = 0;
    n_restarts = 0;
    seen = Array.make 8 false;
    learnts = Vec.create ();
    cla_inc = 1.0;
    lbd_stamp = Array.make 9 0;
    stamp = 0;
    n_learned = 0;
    n_deleted = 0;
    n_reductions = 0;
    max_db = 0;
    lbd_hist = Array.make lbd_buckets 0;
  }

let config t = t.config

(* Splitmix64: a tiny deterministic PRNG private to each solver instance, so
   seeded trajectories replay exactly regardless of what any other solver in
   the process (or the global [Random] state) is doing. *)
let rng_next t =
  t.rng <- Int64.add t.rng 0x9E3779B97F4A7C15L;
  let z = t.rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rng_bool t = Int64.logand (rng_next t) 1L = 1L

let rng_float t =
  (* 30 uniform bits in [0, 1) *)
  float_of_int (Int64.to_int (Int64.logand (rng_next t) 0x3FFFFFFFL)) /. 1073741824.

let rng_below t n = Int64.to_int (Int64.rem (Int64.logand (rng_next t) Int64.max_int) (Int64.of_int n))

let grow_arrays t n =
  let old = Array.length t.assign in
  if n > old then (
    let size = max n (2 * old) in
    let extend a fill =
      let b = Array.make size fill in
      Array.blit a 0 b 0 old;
      b
    in
    t.assign <- extend t.assign (-1);
    t.level <- extend t.level 0;
    t.reason <- extend t.reason (-1);
    t.phase <- extend t.phase false;
    t.seen <- extend t.seen false;
    (* decision levels range over 0..nvars inclusive *)
    (let b = Array.make (size + 1) 0 in
     Array.blit t.lbd_stamp 0 b 0 (Array.length t.lbd_stamp);
     t.lbd_stamp <- b);
    t.activity := extend !(t.activity) 0.)

let grow_watches t nlit =
  let old = Array.length t.watches in
  if nlit > old then (
    let size = max nlit (2 * old) in
    let w = Array.init size (fun i -> if i < old then t.watches.(i) else Vec.create ~capacity:4 ()) in
    t.watches <- w)

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  grow_arrays t (v + 1);
  grow_watches t (2 * (v + 1));
  Heap.insert t.order v;
  (match t.config.init_phase with
  | Phase_false -> ()
  | Phase_true -> t.phase.(v) <- true
  | Phase_random -> t.phase.(v) <- rng_bool t);
  (* Seeded VSIDS tie-breaking: a sub-bump activity perturbation makes the
     all-zeros start order a deterministic function of the seed instead of
     pure insertion order.  Seed 0 keeps the legacy order untouched. *)
  if t.config.seed <> 0 then begin
    !(t.activity).(v) <- rng_float t *. 1e-9;
    Heap.notify_increase t.order v
  end;
  v

let value_lit t l =
  let a = t.assign.(var_of_lit l) in
  if a < 0 then -1 else if lit_sign l then a else 1 - a

let enqueue t l reason =
  let v = var_of_lit l in
  t.assign.(v) <- (if lit_sign l then 1 else 0);
  t.level.(v) <- Vec.length t.trail_lim;
  t.reason.(v) <- reason;
  t.phase.(v) <- lit_sign l;
  Vec.push t.trail l

let push_clause t c =
  if t.nclauses = Array.length t.clauses then (
    let bigger = Array.make (2 * t.nclauses) c in
    Array.blit t.clauses 0 bigger 0 t.nclauses;
    t.clauses <- bigger);
  t.clauses.(t.nclauses) <- c;
  t.nclauses <- t.nclauses + 1;
  t.nclauses - 1

let watch_clause t idx =
  let lits = t.clauses.(idx).lits in
  Vec.push t.watches.(lit_neg lits.(0)) idx;
  Vec.push t.watches.(lit_neg lits.(1)) idx

let backtrack t lvl =
  if Vec.length t.trail_lim > lvl then (
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.length t.trail - 1 downto bound do
      let v = var_of_lit (Vec.get t.trail i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- -1;
      Heap.insert t.order v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- bound)

(** Add a clause.  Restores decision level 0 first, so clauses may be added
    between incremental [solve] calls: the satisfied/falsified-literal
    simplification below is only sound against level-0 assignments. *)
let add_clause t (lits : int list) =
  if not t.unsat then (
    backtrack t 0;
    let lits = List.sort_uniq compare lits in
    let tautology = List.exists (fun l -> List.mem (lit_neg l) lits) lits in
    if not tautology then
      if List.exists (fun l -> value_lit t l = 1) lits then ()
      else
        let lits = List.filter (fun l -> value_lit t l <> 0) lits in
        match lits with
        | [] -> t.unsat <- true
        | [ l ] -> enqueue t l (-1)
        | _ ->
          let arr = Array.of_list lits in
          let idx =
            push_clause t { lits = arr; learned = false; lbd = 0; act = 0.; deleted = false }
          in
          watch_clause t idx)

(* Propagate all enqueued assignments; returns a conflicting clause index or
   -1.  Standard MiniSat-style watched-literal loop. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < Vec.length t.trail do
    let l = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let ws = t.watches.(l) in
    let n = Vec.length ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = Vec.get ws !i in
      incr i;
      let lits = t.clauses.(ci).lits in
      let falsified = lit_neg l in
      if lits.(0) = falsified then (
        lits.(0) <- lits.(1);
        lits.(1) <- falsified);
      if value_lit t lits.(0) = 1 then (
        Vec.set ws !j ci;
        incr j)
      else begin
        let len = Array.length lits in
        let k = ref 2 in
        let found = ref false in
        while (not !found) && !k < len do
          if value_lit t lits.(!k) <> 0 then (
            let tmp = lits.(1) in
            lits.(1) <- lits.(!k);
            lits.(!k) <- tmp;
            Vec.push t.watches.(lit_neg lits.(1)) ci;
            found := true)
          else incr k
        done;
        if not !found then
          if value_lit t lits.(0) = 0 then (
            (* conflict: keep this and all remaining watches, then stop *)
            Vec.set ws !j ci;
            incr j;
            while !i < n do
              Vec.set ws !j (Vec.get ws !i);
              incr i;
              incr j
            done;
            conflict := ci)
          else (
            Vec.set ws !j ci;
            incr j;
            enqueue t lits.(0) ci)
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

let var_bump t v =
  let a = !(t.activity) in
  a.(v) <- a.(v) +. t.var_inc;
  if a.(v) > 1e100 then (
    for i = 0 to t.nvars - 1 do
      a.(i) <- a.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100);
  Heap.notify_increase t.order v

let var_decay t = t.var_inc <- t.var_inc /. 0.95

(* ------------------------------------------------------------------ *)
(* Learned-clause management: LBD scoring and clause activities *)

(* Literal-block distance: the number of distinct decision levels among the
   clause's literals (Glucose's quality measure — a clause touching few
   levels "glues" blocks of the search together and keeps propagating after
   restarts).  Level-0 literals are permanently falsified and don't count. *)
let compute_lbd t (lits : int array) =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let n = ref 0 in
  Array.iter
    (fun l ->
      let lv = t.level.(var_of_lit l) in
      if lv > 0 && t.lbd_stamp.(lv) <> stamp then (
        t.lbd_stamp.(lv) <- stamp;
        incr n))
    lits;
  max 1 !n

let cla_bump t (c : clause) =
  c.act <- c.act +. t.cla_inc;
  if c.act > 1e20 then (
    Vec.iter
      (fun ci ->
        let c = t.clauses.(ci) in
        c.act <- c.act *. 1e-20)
      t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20)

let cla_decay t = t.cla_inc <- t.cla_inc /. 0.999

(* A clause is locked while it is the reason of an assigned variable; the
   watched-literal invariant keeps the implied literal at position 0 for as
   long as the assignment stands, so one lookup suffices. *)
let locked t ci =
  let c = t.clauses.(ci) in
  Array.length c.lits > 0
  && value_lit t c.lits.(0) = 1
  && t.reason.(var_of_lit c.lits.(0)) = ci

(* Reduce the learned-clause DB: delete the worse half, where "worse" is
   higher LBD then lower activity.  Kept unconditionally: glue clauses
   (LBD <= 2), binary clauses (cheap to keep, expensive to relearn), and
   locked clauses (deleting a reason would corrupt conflict analysis). *)
let reduce_db t =
  t.n_reductions <- t.n_reductions + 1;
  let n = Vec.length t.learnts in
  let idxs = Array.init n (Vec.get t.learnts) in
  (* worst first: highest LBD, ties broken toward lowest activity *)
  Array.sort
    (fun a b ->
      let ca = t.clauses.(a) and cb = t.clauses.(b) in
      if ca.lbd <> cb.lbd then compare cb.lbd ca.lbd else compare ca.act cb.act)
    idxs;
  let target = n / 2 in
  let deleted = ref 0 in
  Array.iter
    (fun ci ->
      let c = t.clauses.(ci) in
      if
        !deleted < target && c.lbd > 2
        && Array.length c.lits > 2
        && not (locked t ci)
      then (
        ignore (Vec.remove t.watches.(lit_neg c.lits.(0)) ci);
        ignore (Vec.remove t.watches.(lit_neg c.lits.(1)) ci);
        c.deleted <- true;
        c.lits <- [||];
        incr deleted))
    idxs;
  Vec.filter_in_place (fun ci -> not t.clauses.(ci).deleted) t.learnts;
  t.n_deleted <- t.n_deleted + !deleted;
  (* defensive: no assigned variable may be left with a deleted reason *)
  Vec.iter
    (fun l ->
      let r = t.reason.(var_of_lit l) in
      if r >= 0 && t.clauses.(r).deleted then
        failwith "Sat.reduce_db: deleted a locked clause")
    t.trail

(* ------------------------------------------------------------------ *)

(* First-UIP conflict analysis: walk the implication graph backwards from the
   conflict, resolving on current-level literals until a single one (the UIP)
   remains.  Returns the learned clause (asserting literal first) and the
   backtrack level.  Every learned clause met along the walk gets its
   activity bumped and its LBD refreshed (it can only shrink). *)
let analyze t conflict_idx =
  let seen = t.seen in
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref conflict_idx in
  let trail_pos = ref (Vec.length t.trail - 1) in
  let current_level = Vec.length t.trail_lim in
  let uip = ref 0 in
  let continue_loop = ref true in
  while !continue_loop do
    let c = t.clauses.(!confl) in
    if c.learned then begin
      cla_bump t c;
      let l = compute_lbd t c.lits in
      if l < c.lbd then c.lbd <- l
    end;
    Array.iter
      (fun q ->
        if q <> !p then
          let v = var_of_lit q in
          if (not seen.(v)) && t.level.(v) > 0 then (
            seen.(v) <- true;
            var_bump t v;
            if t.level.(v) >= current_level then incr counter else learned := q :: !learned))
      c.lits;
    let rec find () =
      let l = Vec.get t.trail !trail_pos in
      decr trail_pos;
      if seen.(var_of_lit l) then l else find ()
    in
    let l = find () in
    p := l;
    seen.(var_of_lit l) <- false;
    decr counter;
    if !counter = 0 then (
      uip := lit_neg !p;
      continue_loop := false)
    else confl := t.reason.(var_of_lit l)
  done;
  let rest = !learned in
  List.iter (fun q -> seen.(var_of_lit q) <- false) rest;
  let blevel = List.fold_left (fun acc q -> max acc t.level.(var_of_lit q)) 0 rest in
  (!uip :: rest, blevel)

let record_learned t lits =
  match lits with
  | [] -> t.unsat <- true
  | [ l ] -> if value_lit t l = 0 then t.unsat <- true else if value_lit t l = -1 then enqueue t l (-1)
  | l0 :: _ ->
    let arr = Array.of_list lits in
    (* position 1 must hold a literal from the backtrack level *)
    let best = ref 1 in
    for i = 1 to Array.length arr - 1 do
      if t.level.(var_of_lit arr.(i)) > t.level.(var_of_lit arr.(!best)) then best := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    let lbd = compute_lbd t arr in
    let idx =
      push_clause t { lits = arr; learned = true; lbd; act = t.cla_inc; deleted = false }
    in
    watch_clause t idx;
    Vec.push t.learnts idx;
    t.n_learned <- t.n_learned + 1;
    let bucket = min lbd lbd_buckets - 1 in
    t.lbd_hist.(bucket) <- t.lbd_hist.(bucket) + 1;
    if Vec.length t.learnts > t.max_db then t.max_db <- Vec.length t.learnts;
    enqueue t l0 idx

let decide t =
  let rec pick () =
    if Heap.is_empty t.order then -1
    else
      let v = Heap.pop_max t.order in
      if t.assign.(v) < 0 then v else pick ()
  in
  (* Diversification: occasionally decide on a random heap element instead
     of the activity maximum (MiniSat's random_var_freq). *)
  let random_pick () =
    if t.config.random_var_freq <= 0. || Heap.is_empty t.order then -1
    else if rng_float t >= t.config.random_var_freq then -1
    else
      let v = Heap.choose t.order (rng_below t (Heap.size t.order)) in
      if t.assign.(v) < 0 then (
        Heap.remove t.order v;
        v)
      else -1
  in
  let v = match random_pick () with -1 -> pick () | v -> v in
  if v < 0 then false
  else (
    t.decisions <- t.decisions + 1;
    Vec.push t.trail_lim (Vec.length t.trail);
    enqueue t (lit_of_var ~sign:t.phase.(v) v) (-1);
    true)

(* MiniSat's reluctant-doubling (Luby) restart sequence. *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  float_of_int (1 lsl !seq)

(* Incremental solving: [solve] restores decision level 0 on entry (undoing
   any assignments left by a previous call), and [~assumptions] are decided —
   in order, each at its own decision level — before any heuristic decision.
   MiniSat's scheme: an assumption already true under the current prefix gets
   an empty "dummy" level; one already false means the instance is Unsat
   *under these assumptions* (the clause DB itself may stay satisfiable, and
   [t.unsat] is not set).  Restarts backtrack to level 0 and re-decide the
   assumptions, so learned clauses are always consequences of the clause DB
   alone and remain sound for later calls with different assumptions.  The
   conflict budget is per-call (a delta against the entry count), not
   cumulative over the solver's lifetime. *)
(* Restart interval for restart number [k], per the config's schedule.  The
   default (Luby, base 100) is the historical hardcoded behavior. *)
let restart_interval t k =
  match t.config.restarts with
  | Luby -> int_of_float (float_of_int t.config.restart_base *. luby k)
  | Geometric ->
    int_of_float (float_of_int t.config.restart_base *. (t.config.restart_growth ** float_of_int k))

let solve ?(max_conflicts = 200_000) ?deadline ?(reduce = true) ?reduce_first
    ?(assumptions = []) t =
  if t.unsat then Unsat
  else begin
    backtrack t 0;
    let reduce_first =
      match reduce_first with Some r -> r | None -> t.config.reduce_first
    in
    let assumptions = Array.of_list assumptions in
    let n_assumptions = Array.length assumptions in
    let conflicts0 = t.conflicts in
    let result = ref None in
    let restart_count = ref 0 in
    let until_restart = ref (restart_interval t 0) in
    (* Geometric reduction schedule: when the live learned DB reaches the
       threshold, delete the worse half and grow the threshold by 3/2 —
       interleaved with the Luby restarts, which periodically unlock
       reason clauses so no clause is pinned forever. *)
    let max_learnts = ref (max 4 reduce_first) in
    (* Wall-clock deadline, checked alongside the conflict budget.  The
       clock read is amortized over 128 loop iterations so the common
       (no-deadline or far-from-deadline) case stays in the noise. *)
    let deadline_countdown = ref 0 in
    let past_deadline () =
      match deadline with
      | None -> false
      | Some d ->
        decr deadline_countdown;
        if !deadline_countdown > 0 then false
        else begin
          deadline_countdown := 128;
          Unix.gettimeofday () > d
        end
    in
    while !result = None do
      if past_deadline () then result := Some Unknown
      else begin
      let confl = propagate t in
      if confl >= 0 then begin
        t.conflicts <- t.conflicts + 1;
        if t.conflicts - conflicts0 > max_conflicts then result := Some Unknown
        else if Vec.length t.trail_lim = 0 then begin
          (* A conflict with no decisions on the stack — assumptions included,
             since each occupies its own level — refutes the clause DB itself.
             Latching [unsat] here matters for incremental reuse: the conflict
             has already been consumed from the propagation queue, so a later
             call would otherwise resume past it and "complete" a bogus model. *)
          t.unsat <- true;
          result := Some Unsat
        end
        else begin
          let learned, blevel = analyze t confl in
          backtrack t blevel;
          record_learned t learned;
          if t.unsat then result := Some Unsat;
          var_decay t;
          cla_decay t;
          if reduce && Vec.length t.learnts >= !max_learnts then begin
            reduce_db t;
            max_learnts := !max_learnts * 3 / 2
          end;
          decr until_restart
        end
      end
      else if !until_restart <= 0 then begin
        incr restart_count;
        t.n_restarts <- t.n_restarts + 1;
        until_restart := restart_interval t !restart_count;
        backtrack t 0
      end
      else if Vec.length t.trail_lim < n_assumptions then begin
        (* next assumption becomes the next decision *)
        let l = assumptions.(Vec.length t.trail_lim) in
        match value_lit t l with
        | 1 -> Vec.push t.trail_lim (Vec.length t.trail) (* dummy level *)
        | 0 -> result := Some Unsat (* conflicts with the prefix *)
        | _ ->
          Vec.push t.trail_lim (Vec.length t.trail);
          enqueue t l (-1)
      end
      else if not (decide t) then result := Some Sat
      end
    done;
    match !result with Some r -> r | None -> assert false
  end

(** Model access after [Sat]. *)
let model_value t v = t.assign.(v) = 1

let stats t = (t.conflicts, t.decisions, t.propagations)
let restarts t = t.n_restarts

(* ------------------------------------------------------------------ *)
(* Cube-and-conquer support *)

(** The [k] highest-activity variables not fixed at level 0 — the natural
    split variables after a budget-limited probe has shaped the VSIDS
    order.  Ties break toward the lower index, so the pick is deterministic
    for a given trajectory. *)
let top_vars t k =
  let candidates = ref [] in
  for v = t.nvars - 1 downto 0 do
    if not (t.assign.(v) >= 0 && t.level.(v) = 0) then candidates := v :: !candidates
  done;
  let a = !(t.activity) in
  let sorted =
    List.stable_sort (fun v w -> compare a.(w) a.(v)) !candidates
  in
  List.filteri (fun i _ -> i < k) sorted

(** Level-0 trail literals: unit consequences of the clause DB alone (every
    assumption occupies its own decision level >= 1, so nothing here depends
    on assumptions).  Sound to conjoin to any solver over the same DB —
    this is what cube workers ship back for the merge at join. *)
let implied_units t =
  let acc = ref [] in
  Vec.iter (fun l -> if t.level.(var_of_lit l) = 0 then acc := l :: !acc) t.trail;
  List.rev !acc

let db_stats t =
  {
    learned = t.n_learned;
    deleted = t.n_deleted;
    live = Vec.length t.learnts;
    peak = t.max_db;
    reductions = t.n_reductions;
    lbd_hist = Array.copy t.lbd_hist;
  }

let num_vars t = t.nvars
let num_clauses t = t.nclauses

(* ------------------------------------------------------------------ *)
(* Structural invariants of the clause DB, for the fuzz harness.  Raises
   [Failure] on violation. *)
let check_invariants t =
  let fail fmt = Printf.ksprintf failwith ("Sat.check_invariants: " ^^ fmt) in
  (* no deleted clause may be a reason or sit in a watch list *)
  for v = 0 to t.nvars - 1 do
    let r = t.reason.(v) in
    if t.assign.(v) >= 0 && r >= 0 && t.clauses.(r).deleted then
      fail "deleted clause %d is the reason of var %d" r v
  done;
  Array.iter
    (fun ws ->
      Vec.iter
        (fun ci -> if t.clauses.(ci).deleted then fail "deleted clause %d still watched" ci)
        ws)
    t.watches;
  (* the learnt index tracks exactly the live learned clauses *)
  Vec.iter
    (fun ci ->
      let c = t.clauses.(ci) in
      if not c.learned then fail "problem clause %d in the learnt index" ci;
      if c.deleted then fail "deleted clause %d in the learnt index" ci)
    t.learnts;
  if Vec.length t.learnts <> t.n_learned - t.n_deleted then
    fail "live count %d <> learned %d - deleted %d" (Vec.length t.learnts) t.n_learned
      t.n_deleted;
  if t.max_db < Vec.length t.learnts then
    fail "peak %d below live %d" t.max_db (Vec.length t.learnts)

(* Bump when solver behavior changes what a verdict *means* (not mere
   search-order heuristics): the disk-backed verdict store keys entry
   freshness on this. *)
let semantics_version = 1

(** Top-level SMT interface: assert boolean terms, decide satisfiability,
    extract models (the verifier's counterexamples). *)

type model = {
  bv_value : string -> (int * int64) option;  (** width, canonical value *)
  bool_value : string -> bool option;
}

type outcome = Sat of model | Unsat | Unknown

type stats = {
  checks : int;  (** [check] invocations *)
  sat : int;
  unsat : int;
  unknown : int;  (** conflict budget exhausted *)
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;  (** Luby restarts across all checks *)
  learned : int;  (** learned clauses stored across all checks *)
  deleted : int;  (** learned clauses deleted by DB reductions *)
  reductions : int;  (** clause-DB reduction passes *)
  db_peak : int;  (** largest live learned-DB of any single check *)
  sessions : int;  (** incremental sessions created *)
  session_reuse : int;  (** session checks beyond each session's first *)
  lbd_hist : int array;
      (** learned clauses by LBD at learning time; bucket [i] is LBD
          [i + 1], the last bucket pools LBD >= {!Sat.lbd_buckets} *)
}
(** Aggregate CDCL work across all [check] calls since the last
    {!reset_stats}; domain-safe (atomic counters). *)

val stats : unit -> stats
val reset_stats : unit -> unit

val diff : stats -> stats -> stats
(** [diff after before]: per-field difference ([db_peak] keeps [after]'s
    value — it is a maximum, not a sum).  A forked worker snapshots around a
    call and ships the delta home. *)

val absorb : stats -> unit
(** Fold a worker-shipped delta into this process's counters, so Report and
    bench JSON aggregate portfolio members' work — losers included — not
    just the parent's own solves. *)

val check :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?config:Sat.config ->
  Expr.t list ->
  outcome
(** Decide the conjunction of the assertions.  [max_conflicts] is the
    conflict-count resource budget; [deadline] is an absolute
    [Unix.gettimeofday] instant checked in the SAT loop alongside it.
    Exceeding either yields [Unknown], so a hostile query can exhaust at
    most its budget — it can never hang the caller.  [reduce] (default on)
    enables learned-clause-DB reduction in the SAT core; it trades search
    trajectory, never soundness.  [config] diversifies the underlying SAT
    solver (portfolio members); omitted means {!Sat.default_config}. *)

(** {1 Probes and cubes}

    Cube-and-conquer support.  A {e probe} is a budget-limited solve whose
    context stays alive: on [Unknown] its VSIDS activity order names the
    top split variables, and its solver is the join point where unit
    clauses learned by cube workers are merged and re-propagated.  Raw SAT
    literals are meaningful across processes because bit-blasting a fixed
    assertion list in a fresh context allocates variables in deterministic
    structural order. *)

type probe

val probe_check :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?config:Sat.config ->
  Expr.t list ->
  probe * outcome
(** Like {!check}, but keeps the context alive for splitting and joining.
    A [Sat] model's closures read live probe state and stay valid until the
    next operation on this probe. *)

val probe_top_vars : probe -> int -> int list
(** The probe solver's top-[k] split variables (see {!Sat.top_vars}). *)

val probe_add_units : probe -> int list -> unit
(** Conjoin unit literals learned by cube workers.  Only sound for level-0
    units over the {e same} query ({!Sat.implied_units} of a worker that
    blasted the identical assertion list). *)

val probe_resolve : ?max_conflicts:int -> ?deadline:float -> probe -> outcome
(** Re-solve after the merge, on a small budget (default 10k conflicts):
    units from different cubes may be jointly conclusive. *)

val check_cube :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?config:Sat.config ->
  cube:int list ->
  Expr.t list ->
  outcome * int list
(** Decide [/\ assertions] under a cube of raw assumption literals; also
    returns the level-0 unit literals learned (consequences of the clause
    DB alone, safe to {!probe_add_units} at the join).  [Unsat] means
    "unsatisfiable within this cube" only.  Out-of-range cube literals — a
    blast mismatch between planner and worker — degrade to [Unknown]. *)

val valid : ?max_conflicts:int -> ?deadline:float -> ?reduce:bool -> Expr.t -> outcome
(** [valid t]: [Unsat] means [t] holds under all assignments; [Sat m] is a
    counterexample. *)

(** {1 Incremental sessions}

    A persistent solver instance shared across a sequence of checks.
    Assertions are permanent — the instance only ever strengthens, so
    learned clauses, variable activities and saved phases carry over and
    stay sound — while per-check conditions are passed as [~assumptions]
    (MiniSat-style assumption literals, in force for one check only).
    Not domain-safe: use one session per domain. *)

module Session : sig
  type t

  val create : ?config:Sat.config -> unit -> t
  (** [config] diversifies the session's SAT solver (see {!Sat.config}). *)

  val assert_ : t -> Expr.t -> unit
  (** Permanently conjoin a term.  Terms already asserted in this session
      (by physical hash-consed identity) are skipped. *)

  val check :
    ?max_conflicts:int ->
    ?deadline:float ->
    ?reduce:bool ->
    ?assumptions:Expr.t list ->
    t ->
    outcome
  (** Decide the conjunction of everything asserted so far, under
      [assumptions].  [Unsat] means unsatisfiable {e under these
      assumptions}; the session stays usable afterwards.  The conflict
      budget is per-call.  A [Sat] model's closures read live solver state
      and are invalidated by the next operation on this session. *)

  val conflicts : t -> int
  (** Total conflicts spent by this session's checks, for amortizing one
      [max_conflicts] budget across a deepening schedule. *)

  val checks : t -> int

  val release : t -> unit
  (** Mark the session dead: later operations raise [Invalid_argument].
      Memory is reclaimed by the GC as usual. *)
end

(** {1 Concrete evaluation}

    Reference semantics of the term language, used for differential testing
    of the bit-blaster and for evaluating terms under solver models. *)

val eval_bool : (string -> int64) -> (string -> bool) -> Expr.t -> bool
val eval_bv : (string -> int64) -> (string -> bool) -> Expr.t -> int64

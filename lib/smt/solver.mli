(** Top-level SMT interface: assert boolean terms, decide satisfiability,
    extract models (the verifier's counterexamples). *)

type model = {
  bv_value : string -> (int * int64) option;  (** width, canonical value *)
  bool_value : string -> bool option;
}

type outcome = Sat of model | Unsat | Unknown

type stats = {
  checks : int;  (** [check] invocations *)
  sat : int;
  unsat : int;
  unknown : int;  (** conflict budget exhausted *)
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;  (** learned clauses stored across all checks *)
  deleted : int;  (** learned clauses deleted by DB reductions *)
  reductions : int;  (** clause-DB reduction passes *)
  db_peak : int;  (** largest live learned-DB of any single check *)
  lbd_hist : int array;
      (** learned clauses by LBD at learning time; bucket [i] is LBD
          [i + 1], the last bucket pools LBD >= {!Sat.lbd_buckets} *)
}
(** Aggregate CDCL work across all [check] calls since the last
    {!reset_stats}; domain-safe (atomic counters). *)

val stats : unit -> stats
val reset_stats : unit -> unit

val check : ?max_conflicts:int -> ?deadline:float -> ?reduce:bool -> Expr.t list -> outcome
(** Decide the conjunction of the assertions.  [max_conflicts] is the
    conflict-count resource budget; [deadline] is an absolute
    [Unix.gettimeofday] instant checked in the SAT loop alongside it.
    Exceeding either yields [Unknown], so a hostile query can exhaust at
    most its budget — it can never hang the caller.  [reduce] (default on)
    enables learned-clause-DB reduction in the SAT core; it trades search
    trajectory, never soundness. *)

val valid : ?max_conflicts:int -> ?deadline:float -> ?reduce:bool -> Expr.t -> outcome
(** [valid t]: [Unsat] means [t] holds under all assignments; [Sat m] is a
    counterexample. *)

(** {1 Concrete evaluation}

    Reference semantics of the term language, used for differential testing
    of the bit-blaster and for evaluating terms under solver models. *)

val eval_bool : (string -> int64) -> (string -> bool) -> Expr.t -> bool
val eval_bv : (string -> int64) -> (string -> bool) -> Expr.t -> int64

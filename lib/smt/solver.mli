(** Top-level SMT interface: assert boolean terms, decide satisfiability,
    extract models (the verifier's counterexamples). *)

type model = {
  bv_value : string -> (int * int64) option;  (** width, canonical value *)
  bool_value : string -> bool option;
}

type outcome = Sat of model | Unsat | Unknown

type stats = {
  checks : int;  (** [check] invocations *)
  sat : int;
  unsat : int;
  unknown : int;  (** conflict budget exhausted *)
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;  (** Luby restarts across all checks *)
  learned : int;  (** learned clauses stored across all checks *)
  deleted : int;  (** learned clauses deleted by DB reductions *)
  reductions : int;  (** clause-DB reduction passes *)
  db_peak : int;  (** largest live learned-DB of any single check *)
  sessions : int;  (** incremental sessions created *)
  session_reuse : int;  (** session checks beyond each session's first *)
  lbd_hist : int array;
      (** learned clauses by LBD at learning time; bucket [i] is LBD
          [i + 1], the last bucket pools LBD >= {!Sat.lbd_buckets} *)
}
(** Aggregate CDCL work across all [check] calls since the last
    {!reset_stats}; domain-safe (atomic counters). *)

val stats : unit -> stats
val reset_stats : unit -> unit

val check : ?max_conflicts:int -> ?deadline:float -> ?reduce:bool -> Expr.t list -> outcome
(** Decide the conjunction of the assertions.  [max_conflicts] is the
    conflict-count resource budget; [deadline] is an absolute
    [Unix.gettimeofday] instant checked in the SAT loop alongside it.
    Exceeding either yields [Unknown], so a hostile query can exhaust at
    most its budget — it can never hang the caller.  [reduce] (default on)
    enables learned-clause-DB reduction in the SAT core; it trades search
    trajectory, never soundness. *)

val valid : ?max_conflicts:int -> ?deadline:float -> ?reduce:bool -> Expr.t -> outcome
(** [valid t]: [Unsat] means [t] holds under all assignments; [Sat m] is a
    counterexample. *)

(** {1 Incremental sessions}

    A persistent solver instance shared across a sequence of checks.
    Assertions are permanent — the instance only ever strengthens, so
    learned clauses, variable activities and saved phases carry over and
    stay sound — while per-check conditions are passed as [~assumptions]
    (MiniSat-style assumption literals, in force for one check only).
    Not domain-safe: use one session per domain. *)

module Session : sig
  type t

  val create : unit -> t

  val assert_ : t -> Expr.t -> unit
  (** Permanently conjoin a term.  Terms already asserted in this session
      (by physical hash-consed identity) are skipped. *)

  val check :
    ?max_conflicts:int ->
    ?deadline:float ->
    ?reduce:bool ->
    ?assumptions:Expr.t list ->
    t ->
    outcome
  (** Decide the conjunction of everything asserted so far, under
      [assumptions].  [Unsat] means unsatisfiable {e under these
      assumptions}; the session stays usable afterwards.  The conflict
      budget is per-call.  A [Sat] model's closures read live solver state
      and are invalidated by the next operation on this session. *)

  val conflicts : t -> int
  (** Total conflicts spent by this session's checks, for amortizing one
      [max_conflicts] budget across a deepening schedule. *)

  val checks : t -> int

  val release : t -> unit
  (** Mark the session dead: later operations raise [Invalid_argument].
      Memory is reclaimed by the GC as usual. *)
end

(** {1 Concrete evaluation}

    Reference semantics of the term language, used for differential testing
    of the bit-blaster and for evaluating terms under solver models. *)

val eval_bool : (string -> int64) -> (string -> bool) -> Expr.t -> bool
val eval_bv : (string -> int64) -> (string -> bool) -> Expr.t -> int64

(** Bit-blasting of {!Expr} terms to CNF over the {!Sat} solver.

    Bitvectors become little-endian literal arrays; every gate is emitted via
    the Tseitin transformation.  Arithmetic uses ripple-carry adders, a
    shift-add multiplier, barrel shifters and a restoring divider — all
    quadratic in width, which is fine at the widths (<= 64) and term sizes
    produced by peephole-scale functions.

    Division-by-zero follows SMT-LIB ([bvudiv x 0 = ~0], [bvurem x 0 = x]);
    the IR encoder guards those cases with explicit UB conditions. *)

type ctx = {
  sat : Sat.t;
  true_lit : int;
  bool_memo : (int, int) Hashtbl.t; (* expr id -> literal *)
  bv_memo : (int, int array) Hashtbl.t; (* expr id -> literals, LSB first *)
  bv_vars : (string, int array) Hashtbl.t;
  bool_vars : (string, int) Hashtbl.t;
}

let create ?config () =
  let sat = Sat.create ?config () in
  let tv = Sat.new_var sat in
  let true_lit = Sat.lit_of_var tv in
  Sat.add_clause sat [ true_lit ];
  {
    sat;
    true_lit;
    bool_memo = Hashtbl.create 1024;
    bv_memo = Hashtbl.create 1024;
    bv_vars = Hashtbl.create 64;
    bool_vars = Hashtbl.create 64;
  }

let fresh ctx = Sat.lit_of_var (Sat.new_var ctx.sat)
let lfalse ctx = Sat.lit_neg ctx.true_lit
let lit_of_bool ctx b = if b then ctx.true_lit else lfalse ctx

(* ------------------------------------------------------------------ *)
(* Gates *)

let g_and ctx a b =
  if a = lfalse ctx || b = lfalse ctx then lfalse ctx
  else if a = ctx.true_lit then b
  else if b = ctx.true_lit then a
  else if a = b then a
  else if a = Sat.lit_neg b then lfalse ctx
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ Sat.lit_neg o; a ];
    Sat.add_clause ctx.sat [ Sat.lit_neg o; b ];
    Sat.add_clause ctx.sat [ o; Sat.lit_neg a; Sat.lit_neg b ];
    o
  end

let g_or ctx a b = Sat.lit_neg (g_and ctx (Sat.lit_neg a) (Sat.lit_neg b))

let g_xor ctx a b =
  if a = lfalse ctx then b
  else if b = lfalse ctx then a
  else if a = ctx.true_lit then Sat.lit_neg b
  else if b = ctx.true_lit then Sat.lit_neg a
  else if a = b then lfalse ctx
  else if a = Sat.lit_neg b then ctx.true_lit
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ Sat.lit_neg o; a; b ];
    Sat.add_clause ctx.sat [ Sat.lit_neg o; Sat.lit_neg a; Sat.lit_neg b ];
    Sat.add_clause ctx.sat [ o; Sat.lit_neg a; b ];
    Sat.add_clause ctx.sat [ o; a; Sat.lit_neg b ];
    o
  end

let g_ite ctx c a b =
  if c = ctx.true_lit then a
  else if c = lfalse ctx then b
  else if a = b then a
  else if a = ctx.true_lit && b = lfalse ctx then c
  else if a = lfalse ctx && b = ctx.true_lit then Sat.lit_neg c
  else begin
    let o = fresh ctx in
    Sat.add_clause ctx.sat [ Sat.lit_neg c; Sat.lit_neg a; o ];
    Sat.add_clause ctx.sat [ Sat.lit_neg c; a; Sat.lit_neg o ];
    Sat.add_clause ctx.sat [ c; Sat.lit_neg b; o ];
    Sat.add_clause ctx.sat [ c; b; Sat.lit_neg o ];
    o
  end

let g_iff ctx a b = Sat.lit_neg (g_xor ctx a b)

(* ------------------------------------------------------------------ *)
(* Word-level circuits (little-endian literal arrays) *)

let bv_of_const ctx w v =
  Array.init w (fun i -> lit_of_bool ctx (Veriopt_ir.Bits.bit w v i))

(* a + b + carry_in; returns (sum, carry_out) *)
let adder ctx a b cin =
  let w = Array.length a in
  let sum = Array.make w (lfalse ctx) in
  let c = ref cin in
  for i = 0 to w - 1 do
    let axb = g_xor ctx a.(i) b.(i) in
    sum.(i) <- g_xor ctx axb !c;
    c := g_or ctx (g_and ctx a.(i) b.(i)) (g_and ctx axb !c)
  done;
  (sum, !c)

let bv_add ctx a b = fst (adder ctx a b (lfalse ctx))
let bv_not_bits a = Array.map Sat.lit_neg a
let bv_sub ctx a b = fst (adder ctx a (bv_not_bits b) ctx.true_lit)

(* carry-out of a + ~b + 1 is 1 iff a >= b (unsigned) *)
let bv_uge_lit ctx a b = snd (adder ctx a (bv_not_bits b) ctx.true_lit)
let bv_ult_lit ctx a b = Sat.lit_neg (bv_uge_lit ctx a b)

let bv_slt_lit ctx a b =
  let w = Array.length a in
  let sa = a.(w - 1) and sb = b.(w - 1) in
  g_ite ctx (g_xor ctx sa sb) sa (bv_ult_lit ctx a b)

let bv_eq_lit ctx a b =
  let acc = ref ctx.true_lit in
  Array.iteri (fun i ai -> acc := g_and ctx !acc (g_iff ctx ai b.(i))) a;
  !acc

let bv_ite ctx c a b = Array.init (Array.length a) (fun i -> g_ite ctx c a.(i) b.(i))

let bv_neg ctx a = fst (adder ctx (bv_not_bits a) (bv_of_const ctx (Array.length a) 0L) ctx.true_lit)

let bv_mul ctx a b =
  let w = Array.length a in
  let acc = ref (bv_of_const ctx w 0L) in
  for i = 0 to w - 1 do
    (* (a << i) & replicate b.(i), added into acc *)
    let row =
      Array.init w (fun j -> if j < i then lfalse ctx else g_and ctx a.(j - i) b.(i))
    in
    acc := bv_add ctx !acc row
  done;
  !acc

(* Barrel shifter.  [step k bits] shifts by 2^k; amounts >= w force the
   default (0, or the sign bit for arithmetic shifts). *)
let bv_shift ctx ~kind a amount =
  let w = Array.length a in
  let default =
    match kind with
    | `Shl | `LShr -> Array.make w (lfalse ctx)
    | `AShr -> Array.make w a.(w - 1)
  in
  let shift_by_const bits k =
    Array.init w (fun i ->
        match kind with
        | `Shl -> if i >= k then bits.(i - k) else lfalse ctx
        | `LShr -> if i + k < w then bits.(i + k) else lfalse ctx
        | `AShr -> if i + k < w then bits.(i + k) else a.(w - 1))
  in
  let result = ref a in
  for k = 0 to Array.length amount - 1 do
    let bit = amount.(k) in
    if bit <> lfalse ctx then
      if k >= 6 || 1 lsl k >= w then result := bv_ite ctx bit default !result
      else result := bv_ite ctx bit (shift_by_const !result (1 lsl k)) !result
  done;
  !result

(* Restoring division: processes dividend bits MSB-down, keeping a remainder
   register.  For b = 0 this yields quotient ~0 and remainder a (SMT-LIB). *)
let bv_udivrem ctx a b =
  let w = Array.length a in
  let r = ref (bv_of_const ctx w 0L) in
  let q = Array.make w (lfalse ctx) in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a[i] *)
    let shifted = Array.init w (fun j -> if j = 0 then a.(i) else !r.(j - 1)) in
    (* For b = 0, geq is always true, so q = ~0 and r ends as a: exactly the
       SMT-LIB convention, with no special case needed. *)
    let geq = bv_uge_lit ctx shifted b in
    q.(i) <- geq;
    let diff = bv_sub ctx shifted b in
    r := bv_ite ctx geq diff shifted
  done;
  (q, !r)

let bv_abs ctx a =
  let w = Array.length a in
  bv_ite ctx a.(w - 1) (bv_neg ctx a) a

let bv_sdiv ctx a b =
  let w = Array.length a in
  let q, _ = bv_udivrem ctx (bv_abs ctx a) (bv_abs ctx b) in
  let opposite = g_xor ctx a.(w - 1) b.(w - 1) in
  bv_ite ctx opposite (bv_neg ctx q) q

let bv_srem ctx a b =
  let w = Array.length a in
  let _, r = bv_udivrem ctx (bv_abs ctx a) (bv_abs ctx b) in
  bv_ite ctx a.(w - 1) (bv_neg ctx r) r

(* ------------------------------------------------------------------ *)
(* Term translation *)

let rec blast_bool ctx (t : Expr.t) : int =
  match Hashtbl.find_opt ctx.bool_memo t.id with
  | Some l -> l
  | None ->
    let l =
      match t.node with
      | Expr.True -> ctx.true_lit
      | Expr.False -> lfalse ctx
      | Expr.BoolVar name -> (
        match Hashtbl.find_opt ctx.bool_vars name with
        | Some l -> l
        | None ->
          let l = fresh ctx in
          Hashtbl.replace ctx.bool_vars name l;
          l)
      | Expr.Not a -> Sat.lit_neg (blast_bool ctx a)
      | Expr.BAnd (a, b) -> g_and ctx (blast_bool ctx a) (blast_bool ctx b)
      | Expr.BOr (a, b) -> g_or ctx (blast_bool ctx a) (blast_bool ctx b)
      | Expr.BXor (a, b) -> g_xor ctx (blast_bool ctx a) (blast_bool ctx b)
      | Expr.BIte (c, a, b) ->
        g_ite ctx (blast_bool ctx c) (blast_bool ctx a) (blast_bool ctx b)
      | Expr.Eq (a, b) -> bv_eq_lit ctx (blast_bv ctx a) (blast_bv ctx b)
      | Expr.Ult (a, b) -> bv_ult_lit ctx (blast_bv ctx a) (blast_bv ctx b)
      | Expr.Slt (a, b) -> bv_slt_lit ctx (blast_bv ctx a) (blast_bv ctx b)
      | _ -> invalid_arg "Bitblast.blast_bool: bitvector-sorted term"
    in
    Hashtbl.replace ctx.bool_memo t.id l;
    l

and blast_bv ctx (t : Expr.t) : int array =
  match Hashtbl.find_opt ctx.bv_memo t.id with
  | Some bits -> bits
  | None ->
    let bits =
      match t.node with
      | Expr.BvConst { width; value } -> bv_of_const ctx width value
      | Expr.BvVar { name; width } -> (
        match Hashtbl.find_opt ctx.bv_vars name with
        | Some bits -> bits
        | None ->
          let bits = Array.init width (fun _ -> fresh ctx) in
          Hashtbl.replace ctx.bv_vars name bits;
          bits)
      | Expr.BvBin (op, a, b) -> (
        let av = blast_bv ctx a and bv = blast_bv ctx b in
        match op with
        | Expr.Add -> bv_add ctx av bv
        | Expr.Sub -> bv_sub ctx av bv
        | Expr.Mul -> bv_mul ctx av bv
        | Expr.UDiv -> fst (bv_udivrem ctx av bv)
        | Expr.URem -> snd (bv_udivrem ctx av bv)
        | Expr.SDiv -> bv_sdiv ctx av bv
        | Expr.SRem -> bv_srem ctx av bv
        | Expr.Shl -> bv_shift ctx ~kind:`Shl av bv
        | Expr.LShr -> bv_shift ctx ~kind:`LShr av bv
        | Expr.AShr -> bv_shift ctx ~kind:`AShr av bv
        | Expr.And -> Array.init (Array.length av) (fun i -> g_and ctx av.(i) bv.(i))
        | Expr.Or -> Array.init (Array.length av) (fun i -> g_or ctx av.(i) bv.(i))
        | Expr.Xor -> Array.init (Array.length av) (fun i -> g_xor ctx av.(i) bv.(i)))
      | Expr.BvNot a -> bv_not_bits (blast_bv ctx a)
      | Expr.BvNeg a -> bv_neg ctx (blast_bv ctx a)
      | Expr.BvIte (c, a, b) -> bv_ite ctx (blast_bool ctx c) (blast_bv ctx a) (blast_bv ctx b)
      | Expr.BvZext (w, a) ->
        let av = blast_bv ctx a in
        Array.init w (fun i -> if i < Array.length av then av.(i) else lfalse ctx)
      | Expr.BvSext (w, a) ->
        let av = blast_bv ctx a in
        let sign = av.(Array.length av - 1) in
        Array.init w (fun i -> if i < Array.length av then av.(i) else sign)
      | Expr.BvTrunc (w, a) ->
        let av = blast_bv ctx a in
        Array.sub av 0 w
      | _ -> invalid_arg "Bitblast.blast_bv: boolean-sorted term"
    in
    Hashtbl.replace ctx.bv_memo t.id bits;
    bits

(** Assert a boolean term. *)
let assert_term ctx t = Sat.add_clause ctx.sat [ blast_bool ctx t ]

let lit_value ctx l =
  let v = Sat.model_value ctx.sat (Sat.var_of_lit l) in
  if Sat.lit_sign l then v else not v

(** After [Sat], read back a bitvector variable's value. *)
let bv_model_value ctx name =
  match Hashtbl.find_opt ctx.bv_vars name with
  | None -> None
  | Some bits ->
    let v = ref 0L in
    for i = Array.length bits - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 1) (if lit_value ctx bits.(i) then 1L else 0L)
    done;
    Some (Array.length bits, !v)

let bool_model_value ctx name =
  Option.map (lit_value ctx) (Hashtbl.find_opt ctx.bool_vars name)

(** Indexed max-heap over variable activities: the VSIDS decision order. *)

type t

val create : capacity:int -> score:(int -> float) -> t
val in_heap : t -> int -> bool
val is_empty : t -> bool
val size : t -> int
val insert : t -> int -> unit
val pop_max : t -> int

val choose : t -> int -> int
(** The element at heap-array position [i] (0 <= i < {!size}); positions are
    an implementation detail, so this is only useful for sampling a random
    in-heap element. *)

val remove : t -> int -> unit
(** Remove an arbitrary element (no-op if absent), restoring heap order. *)

val notify_increase : t -> int -> unit

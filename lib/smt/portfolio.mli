(** Portfolio + cube-and-conquer planning: diversified member configs, cube
    enumeration, verdict merging, and process-wide stats.

    Process-local and solver-level by design — the actual fan-out over the
    fork pool (dispatch, first-conclusive-wins, loser SIGKILL) lives in
    [Veriopt_vproc.Vproc.call_race] and the engine glue.  What lives here
    must agree between the racing processes: which configs run, which cubes
    partition the space, how the legs' answers merge. *)

type member = { label : string; config : Sat.config }

val members : ?base_seed:int -> int -> member list
(** [n] diversified members.  Member 0 is always the baseline
    [{Sat.default_config with seed = base_seed}] — a 1-member portfolio
    replays today's single solver bit for bit (exactly, when [base_seed] is
    0).  Members 1.. cycle through restart-schedule / initial-phase /
    decision-noise / reduction-cadence variations, each under its own
    seed. *)

val cube_lits : vars:int list -> int list list
(** All [2^k] sign assignments over the split variables, as assumption
    lists.  The cubes partition the assignment space: every total
    assignment satisfies exactly one cube.  [vars = []] yields the single
    empty cube. *)

val merge : Sat.result list -> Sat.result
(** Merge cube-leg results: any [Sat] leg witnesses the whole instance;
    [Unsat] on every leg refutes it (cubes are exhaustive); else
    [Unknown]. *)

(** {1 Stats} *)

type stats = {
  races : int;  (** portfolio races run *)
  race_wins : int;  (** races decided by a conclusive full-query member *)
  cube_splits : int;  (** races that went to cube-and-conquer *)
  cube_cex : int;  (** cube races decided by a counterexample leg *)
  cube_refutations : int;  (** cube races where every cube came back Unsat *)
  join_refutations : int;  (** joins closed by merged learned units *)
  losers_cancelled : int;  (** members SIGKILLed after a winner *)
  wasted_conflicts : int;  (** conflicts burned by completed non-winners *)
  units_merged : int;  (** learned unit clauses merged at joins *)
  reap_ratio_max : float;
      (** max over races of (race wall / winner wall): how promptly losers
          were reaped after the winner finished *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

val note_race : unit -> unit
val note_win : label:string -> unit
val note_cube_split : unit -> unit
val note_cube_cex : unit -> unit
val note_cube_refutation : unit -> unit
val note_join_refutation : unit -> unit
val note_cancelled : int -> unit
val note_wasted : conflicts:int -> unit
val note_units : int -> unit
val note_reap_ratio : float -> unit

val winner_histogram : unit -> (string * int) list
(** Winner-config counts, most frequent first. *)

(** A CDCL SAT solver: two-watched-literal propagation, first-UIP learning,
    VSIDS with phase saving, Luby restarts, and Glucose-style learned-clause
    management (LBD scoring, clause activities, periodic DB reduction).  A
    conflict budget turns hard instances into [Unknown] (the verifier's
    "inconclusive").

    Literals: variable [v >= 0]; positive literal [2v], negative [2v+1]. *)

type result = Sat | Unsat | Unknown

(** {1 Diversification}

    Portfolio members race the same instance under different trajectories.
    Every knob changes the search path only — never the verdict — and every
    knob is deterministic: the same config replays the same search bit for
    bit.  {!default_config} (seed 0, Luby base 100, all-false phases, no
    random decisions) reproduces the pre-portfolio solver exactly. *)

type restart_schedule = Luby | Geometric

type init_phase = Phase_false | Phase_true | Phase_random

type config = {
  seed : int;
      (** seeds the per-solver PRNG (VSIDS tie-breaking noise, random phases
          and random decisions); [0] disables the activity perturbation,
          keeping the legacy tie order *)
  restarts : restart_schedule;
  restart_base : int;  (** conflicts before the first restart *)
  restart_growth : float;  (** [Geometric] only: interval multiplier *)
  init_phase : init_phase;
  random_var_freq : float;  (** fraction of decisions picking a random var *)
  reduce_first : int;  (** learned-DB size triggering the first reduction *)
}

val default_config : config

val describe_config : config -> string
(** Compact stable label ("s0:luby100:pF"), for winner histograms and cache
    keys. *)

val lit_of_var : ?sign:bool -> int -> int
val var_of_lit : int -> int
val lit_neg : int -> int
val lit_sign : int -> bool

type t

val create : ?config:config -> unit -> t
val config : t -> config
val new_var : t -> int

val add_clause : t -> int list -> unit
(** Add a problem clause.  May be called between [solve] calls: the solver
    first backtracks to decision level 0, where the clause simplification is
    sound.  Adding clauses only ever strengthens the instance, so learned
    clauses from earlier calls remain valid. *)

val solve :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?reduce_first:int ->
  ?assumptions:int list ->
  t ->
  result
(** [deadline] is an absolute [Unix.gettimeofday] instant; exceeding either
    the conflict budget or the deadline yields [Unknown].  The conflict
    budget is per-call, so a long-lived solver can be re-queried with a fresh
    budget each time.

    [assumptions] are literals decided (in order, before any heuristic
    decision) for the duration of this call only — MiniSat-style incremental
    solving.  [Unsat] then means "unsatisfiable under these assumptions";
    the solver itself stays usable, learned clauses are consequences of the
    clause DB alone, and later calls may pass different assumptions.

    [reduce] (default [true]) enables learned-clause-DB reduction: when the
    live learned-clause count reaches [reduce_first] (default 2000) the
    worse half — highest LBD, then lowest activity — is deleted and the
    threshold grows geometrically (x3/2).  Glue clauses (LBD <= 2), binary
    clauses and locked reason clauses are never deleted.  Reduction changes
    the search trajectory but never the verdict; [?reduce:false] exists so
    differential harnesses can check exactly that.  [reduce_first] defaults
    to the instance config's [reduce_first]. *)

val model_value : t -> int -> bool
(** Variable assignment after [Sat]. *)

val stats : t -> int * int * int
(** (conflicts, decisions, propagations). *)

val restarts : t -> int
(** Luby restarts performed over the solver's lifetime. *)

val lbd_buckets : int
(** Length of [db_stats.lbd_hist]. *)

type db_stats = {
  learned : int;  (** learned clauses ever stored *)
  deleted : int;  (** learned clauses deleted by reductions *)
  live : int;  (** current learned-DB size ([learned - deleted]) *)
  peak : int;  (** largest learned-DB size ever *)
  reductions : int;  (** clause-DB reduction passes *)
  lbd_hist : int array;
      (** bucket [i]: learned clauses with LBD [i + 1] at learning time;
          the last bucket pools LBD >= [lbd_buckets] *)
}

val db_stats : t -> db_stats

val num_vars : t -> int
val num_clauses : t -> int

(** {1 Cube-and-conquer support} *)

val top_vars : t -> int -> int list
(** The [k] highest-activity variables not fixed at level 0 — the natural
    split variables after a budget-limited probe has shaped the VSIDS
    order.  Deterministic for a given trajectory (ties break toward the
    lower index). *)

val implied_units : t -> int list
(** Level-0 trail literals: unit consequences of the clause DB alone (never
    of any assumption, which each occupy a decision level >= 1).  Sound to
    conjoin to any solver over the same clause DB — what cube workers ship
    back for the merge at join. *)

val check_invariants : t -> unit
(** Structural invariants of the clause DB — no deleted clause is watched,
    is a reason, or lingers in the learnt index; counters are consistent.
    Raises [Failure] on violation.  Test hook for the fuzz harness. *)

val semantics_version : int
(** Bump when a change affects what Sat/Unsat/Unknown mean (budget
    semantics, soundness fixes) rather than just the search path;
    registered in the verdict store's semantics digest. *)

(** A CDCL SAT solver: two-watched-literal propagation, first-UIP learning,
    VSIDS with phase saving, Luby restarts, and Glucose-style learned-clause
    management (LBD scoring, clause activities, periodic DB reduction).  A
    conflict budget turns hard instances into [Unknown] (the verifier's
    "inconclusive").

    Literals: variable [v >= 0]; positive literal [2v], negative [2v+1]. *)

type result = Sat | Unsat | Unknown

val lit_of_var : ?sign:bool -> int -> int
val var_of_lit : int -> int
val lit_neg : int -> int
val lit_sign : int -> bool

type t

val create : unit -> t
val new_var : t -> int

val add_clause : t -> int list -> unit
(** Must be called before solving (at decision level 0). *)

val solve :
  ?max_conflicts:int -> ?deadline:float -> ?reduce:bool -> ?reduce_first:int -> t -> result
(** [deadline] is an absolute [Unix.gettimeofday] instant; exceeding either
    the conflict budget or the deadline yields [Unknown].

    [reduce] (default [true]) enables learned-clause-DB reduction: when the
    live learned-clause count reaches [reduce_first] (default 2000) the
    worse half — highest LBD, then lowest activity — is deleted and the
    threshold grows geometrically (x3/2).  Glue clauses (LBD <= 2), binary
    clauses and locked reason clauses are never deleted.  Reduction changes
    the search trajectory but never the verdict; [?reduce:false] exists so
    differential harnesses can check exactly that. *)

val model_value : t -> int -> bool
(** Variable assignment after [Sat]. *)

val stats : t -> int * int * int
(** (conflicts, decisions, propagations). *)

val lbd_buckets : int
(** Length of [db_stats.lbd_hist]. *)

type db_stats = {
  learned : int;  (** learned clauses ever stored *)
  deleted : int;  (** learned clauses deleted by reductions *)
  live : int;  (** current learned-DB size ([learned - deleted]) *)
  peak : int;  (** largest learned-DB size ever *)
  reductions : int;  (** clause-DB reduction passes *)
  lbd_hist : int array;
      (** bucket [i]: learned clauses with LBD [i + 1] at learning time;
          the last bucket pools LBD >= [lbd_buckets] *)
}

val db_stats : t -> db_stats

val num_vars : t -> int
val num_clauses : t -> int

val check_invariants : t -> unit
(** Structural invariants of the clause DB — no deleted clause is watched,
    is a reason, or lingers in the learnt index; counters are consistent.
    Raises [Failure] on violation.  Test hook for the fuzz harness. *)

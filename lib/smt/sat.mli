(** A CDCL SAT solver: two-watched-literal propagation, first-UIP learning,
    VSIDS with phase saving, Luby restarts, and Glucose-style learned-clause
    management (LBD scoring, clause activities, periodic DB reduction).  A
    conflict budget turns hard instances into [Unknown] (the verifier's
    "inconclusive").

    Literals: variable [v >= 0]; positive literal [2v], negative [2v+1]. *)

type result = Sat | Unsat | Unknown

val lit_of_var : ?sign:bool -> int -> int
val var_of_lit : int -> int
val lit_neg : int -> int
val lit_sign : int -> bool

type t

val create : unit -> t
val new_var : t -> int

val add_clause : t -> int list -> unit
(** Add a problem clause.  May be called between [solve] calls: the solver
    first backtracks to decision level 0, where the clause simplification is
    sound.  Adding clauses only ever strengthens the instance, so learned
    clauses from earlier calls remain valid. *)

val solve :
  ?max_conflicts:int ->
  ?deadline:float ->
  ?reduce:bool ->
  ?reduce_first:int ->
  ?assumptions:int list ->
  t ->
  result
(** [deadline] is an absolute [Unix.gettimeofday] instant; exceeding either
    the conflict budget or the deadline yields [Unknown].  The conflict
    budget is per-call, so a long-lived solver can be re-queried with a fresh
    budget each time.

    [assumptions] are literals decided (in order, before any heuristic
    decision) for the duration of this call only — MiniSat-style incremental
    solving.  [Unsat] then means "unsatisfiable under these assumptions";
    the solver itself stays usable, learned clauses are consequences of the
    clause DB alone, and later calls may pass different assumptions.

    [reduce] (default [true]) enables learned-clause-DB reduction: when the
    live learned-clause count reaches [reduce_first] (default 2000) the
    worse half — highest LBD, then lowest activity — is deleted and the
    threshold grows geometrically (x3/2).  Glue clauses (LBD <= 2), binary
    clauses and locked reason clauses are never deleted.  Reduction changes
    the search trajectory but never the verdict; [?reduce:false] exists so
    differential harnesses can check exactly that. *)

val model_value : t -> int -> bool
(** Variable assignment after [Sat]. *)

val stats : t -> int * int * int
(** (conflicts, decisions, propagations). *)

val restarts : t -> int
(** Luby restarts performed over the solver's lifetime. *)

val lbd_buckets : int
(** Length of [db_stats.lbd_hist]. *)

type db_stats = {
  learned : int;  (** learned clauses ever stored *)
  deleted : int;  (** learned clauses deleted by reductions *)
  live : int;  (** current learned-DB size ([learned - deleted]) *)
  peak : int;  (** largest learned-DB size ever *)
  reductions : int;  (** clause-DB reduction passes *)
  lbd_hist : int array;
      (** bucket [i]: learned clauses with LBD [i + 1] at learning time;
          the last bucket pools LBD >= [lbd_buckets] *)
}

val db_stats : t -> db_stats

val num_vars : t -> int
val num_clauses : t -> int

val check_invariants : t -> unit
(** Structural invariants of the clause DB — no deleted clause is watched,
    is a reason, or lingers in the learnt index; counters are consistent.
    Raises [Failure] on violation.  Test hook for the fuzz harness. *)

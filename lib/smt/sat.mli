(** A CDCL SAT solver: two-watched-literal propagation, first-UIP learning,
    VSIDS with phase saving, Luby restarts.  A conflict budget turns hard
    instances into [Unknown] (the verifier's "inconclusive").

    Literals: variable [v >= 0]; positive literal [2v], negative [2v+1]. *)

type result = Sat | Unsat | Unknown

val lit_of_var : ?sign:bool -> int -> int
val var_of_lit : int -> int
val lit_neg : int -> int
val lit_sign : int -> bool

type t

val create : unit -> t
val new_var : t -> int

val add_clause : t -> int list -> unit
(** Must be called before solving (at decision level 0). *)

val solve : ?max_conflicts:int -> ?deadline:float -> t -> result
(** [deadline] is an absolute [Unix.gettimeofday] instant; exceeding either
    the conflict budget or the deadline yields [Unknown]. *)

val model_value : t -> int -> bool
(** Variable assignment after [Sat]. *)

val stats : t -> int * int * int
(** (conflicts, decisions, propagations). *)

val num_vars : t -> int
val num_clauses : t -> int

(** Portfolio + cube-and-conquer planning: diversified member configs, cube
    enumeration over split variables, verdict merging, and process-wide
    stats.

    This module is deliberately process-local and solver-level — it knows
    nothing about worker pools.  The fan-out over the [Vproc] fork pool
    (dispatch, first-conclusive-wins, loser cancellation) lives in
    [Veriopt_vproc.Vproc.call_race] and the engine glue; what lives here is
    everything that must agree between the racing processes: which configs
    to run, which cubes partition the search space, and how to merge the
    legs' answers. *)

(* ------------------------------------------------------------------ *)
(* Diversified members *)

type member = { label : string; config : Sat.config }

(* Member 0 is the baseline: the default config (seed = [base_seed]), so a
   1-member portfolio replays today's single solver bit for bit.  Members
   1.. cycle through hand-picked trajectory variations — restart schedule,
   initial phase, decision noise, reduction cadence — each under its own
   seed so no two members ever tie-break identically. *)
let templates : (int -> Sat.config) array =
  let d = Sat.default_config in
  [|
    (fun s -> { d with seed = s; restarts = Sat.Geometric });
    (fun s -> { d with seed = s; init_phase = Sat.Phase_true });
    (fun s -> { d with seed = s; init_phase = Sat.Phase_random; random_var_freq = 0.02 });
    (fun s ->
      {
        d with
        seed = s;
        restarts = Sat.Geometric;
        restart_base = 200;
        restart_growth = 2.0;
        init_phase = Sat.Phase_random;
      });
    (fun s -> { d with seed = s; restart_base = 50; random_var_freq = 0.05; reduce_first = 1000 });
    (fun s ->
      {
        d with
        seed = s;
        restarts = Sat.Geometric;
        restart_base = 300;
        restart_growth = 1.3;
        init_phase = Sat.Phase_true;
        reduce_first = 4000;
      });
  |]

let members ?(base_seed = 0) n =
  List.init (max 1 n) (fun i ->
      let config =
        if i = 0 then { Sat.default_config with seed = base_seed }
        else templates.((i - 1) mod Array.length templates) (base_seed + i)
      in
      { label = Sat.describe_config config; config })

(* ------------------------------------------------------------------ *)
(* Cubes *)

(** All [2^k] sign assignments over the split variables, as assumption
    lists.  By construction the cubes partition the assignment space: every
    total assignment satisfies exactly one cube.  [vars = []] yields the
    single empty cube (the whole space). *)
let cube_lits ~(vars : int list) : int list list =
  List.fold_left
    (fun cubes v ->
      List.concat_map
        (fun cube -> [ Sat.lit_of_var ~sign:true v :: cube; Sat.lit_of_var ~sign:false v :: cube ])
        cubes)
    [ [] ] vars
  |> List.map List.rev

(** Merge cube-leg results: any [Sat] leg witnesses satisfiability of the
    whole instance (the cube literals were mere assumptions); [Unsat] on
    {e every} leg refutes it (the cubes are exhaustive); anything less is
    [Unknown]. *)
let merge (results : Sat.result list) : Sat.result =
  if List.exists (fun r -> r = Sat.Sat) results then Sat.Sat
  else if results <> [] && List.for_all (fun r -> r = Sat.Unsat) results then Sat.Unsat
  else Sat.Unknown

(* ------------------------------------------------------------------ *)
(* Stats (Solver.stats idiom: process-wide atomics; the winner histogram is
   a mutex-protected table since labels are strings). *)

type stats = {
  races : int;  (** portfolio races run *)
  race_wins : int;  (** races decided by a conclusive full-query member *)
  cube_splits : int;  (** races that went to cube-and-conquer *)
  cube_cex : int;  (** cube races decided by a counterexample leg *)
  cube_refutations : int;  (** cube races where every cube came back Unsat *)
  join_refutations : int;  (** joins closed by merged learned units *)
  losers_cancelled : int;  (** members SIGKILLed after a winner *)
  wasted_conflicts : int;  (** conflicts burned by completed non-winners *)
  units_merged : int;  (** learned unit clauses merged at joins *)
  reap_ratio_max : float;
      (** max over races of (race wall time / winner wall time): how
          promptly losers were reaped after the winner finished *)
}

let races_c = Atomic.make 0
let race_wins_c = Atomic.make 0
let cube_splits_c = Atomic.make 0
let cube_cex_c = Atomic.make 0
let cube_refutations_c = Atomic.make 0
let join_refutations_c = Atomic.make 0
let losers_cancelled_c = Atomic.make 0
let wasted_conflicts_c = Atomic.make 0
let units_merged_c = Atomic.make 0
let reap_ratio_pm = Atomic.make 0 (* per-mille, so it fits an int atomic *)

let hist : (string, int) Hashtbl.t = Hashtbl.create 16
let hist_mutex = Mutex.create ()

let bump c n = ignore (Atomic.fetch_and_add c n)

let rec bump_max c n =
  let cur = Atomic.get c in
  if n > cur && not (Atomic.compare_and_set c cur n) then bump_max c n

let note_race () = bump races_c 1

let note_win ~label =
  bump race_wins_c 1;
  Mutex.lock hist_mutex;
  Hashtbl.replace hist label (1 + Option.value ~default:0 (Hashtbl.find_opt hist label));
  Mutex.unlock hist_mutex

let note_cube_split () = bump cube_splits_c 1
let note_cube_cex () = bump cube_cex_c 1
let note_cube_refutation () = bump cube_refutations_c 1
let note_join_refutation () = bump join_refutations_c 1
let note_cancelled n = bump losers_cancelled_c n
let note_wasted ~conflicts = bump wasted_conflicts_c conflicts
let note_units n = bump units_merged_c n

let note_reap_ratio r =
  if Float.is_finite r && r > 0. then bump_max reap_ratio_pm (int_of_float (r *. 1000.))

let stats () =
  {
    races = Atomic.get races_c;
    race_wins = Atomic.get race_wins_c;
    cube_splits = Atomic.get cube_splits_c;
    cube_cex = Atomic.get cube_cex_c;
    cube_refutations = Atomic.get cube_refutations_c;
    join_refutations = Atomic.get join_refutations_c;
    losers_cancelled = Atomic.get losers_cancelled_c;
    wasted_conflicts = Atomic.get wasted_conflicts_c;
    units_merged = Atomic.get units_merged_c;
    reap_ratio_max = float_of_int (Atomic.get reap_ratio_pm) /. 1000.;
  }

let winner_histogram () =
  Mutex.lock hist_mutex;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist [] in
  Mutex.unlock hist_mutex;
  List.sort (fun (ka, a) (kb, b) -> if a <> b then compare b a else compare ka kb) l

let reset_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      races_c; race_wins_c; cube_splits_c; cube_cex_c; cube_refutations_c; join_refutations_c;
      losers_cancelled_c; wasted_conflicts_c; units_merged_c; reap_ratio_pm;
    ];
  Mutex.lock hist_mutex;
  Hashtbl.reset hist;
  Mutex.unlock hist_mutex

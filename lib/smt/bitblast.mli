(** Bit-blasting of {!Expr} terms to CNF over the {!Sat} solver: bitvectors
    become little-endian literal arrays; gates go through Tseitin.
    Arithmetic uses ripple-carry adders, a shift-add multiplier, barrel
    shifters and a restoring divider. *)

type ctx = {
  sat : Sat.t;
  true_lit : int;
  bool_memo : (int, int) Hashtbl.t;
  bv_memo : (int, int array) Hashtbl.t;
  bv_vars : (string, int array) Hashtbl.t;
  bool_vars : (string, int) Hashtbl.t;
}

val create : ?config:Sat.config -> unit -> ctx
(** [config] diversifies the underlying SAT solver (see {!Sat.config});
    omitted means {!Sat.default_config}. *)

val blast_bool : ctx -> Expr.t -> int
val blast_bv : ctx -> Expr.t -> int array

val assert_term : ctx -> Expr.t -> unit

val bv_model_value : ctx -> string -> (int * int64) option
val bool_model_value : ctx -> string -> bool option

(** Growable int arrays: the SAT solver's workhorse container. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val pop : t -> int
val clear : t -> unit
val shrink : t -> int -> unit

val swap_remove : t -> int -> unit
(** Remove the element at an index by swapping the last element into its
    place: O(1), does not preserve order. *)

val remove : t -> int -> bool
(** Remove the first occurrence of a value (swap-with-last, order not
    preserved); [false] if absent. *)

val filter_in_place : (int -> bool) -> t -> unit
(** Keep only the elements satisfying the predicate, preserving order. *)

val iter : (int -> unit) -> t -> unit
val to_list : t -> int list

(** Hash-consed SMT terms over booleans and fixed-width bitvectors (1..64).

    Smart constructors perform light constant folding and local
    simplification so the circuits handed to the bit-blaster stay small.
    Hash-consing gives each structurally distinct term a unique id, which the
    bit-blaster uses for memoization. *)

type sort = Bool | BV of int

type bv_binop =
  | Add
  | Sub
  | Mul
  | UDiv
  | URem
  | SDiv
  | SRem
  | Shl
  | LShr
  | AShr
  | And
  | Or
  | Xor

type t = { id : int; node : node; sort : sort }

and node =
  | True
  | False
  | BoolVar of string
  | Not of t
  | BAnd of t * t
  | BOr of t * t
  | BXor of t * t
  | BIte of t * t * t (* boolean-sorted ite *)
  | Eq of t * t (* over BV *)
  | Ult of t * t
  | Slt of t * t
  | BvConst of { width : int; value : int64 } (* canonical: masked *)
  | BvVar of { name : string; width : int }
  | BvBin of bv_binop * t * t
  | BvNot of t
  | BvNeg of t
  | BvIte of t * t * t
  | BvZext of int * t (* target width *)
  | BvSext of int * t
  | BvTrunc of int * t

(* Structural key for hash-consing: node with child ids. *)
module Key = struct
  type k =
    | KTrue
    | KFalse
    | KBoolVar of string
    | KNot of int
    | KBAnd of int * int
    | KBOr of int * int
    | KBXor of int * int
    | KBIte of int * int * int
    | KEq of int * int
    | KUlt of int * int
    | KSlt of int * int
    | KBvConst of int * int64
    | KBvVar of string * int
    | KBvBin of bv_binop * int * int
    | KBvNot of int
    | KBvNeg of int
    | KBvIte of int * int * int
    | KBvZext of int * int
    | KBvSext of int * int
    | KBvTrunc of int * int

  let of_node = function
    | True -> KTrue
    | False -> KFalse
    | BoolVar s -> KBoolVar s
    | Not a -> KNot a.id
    | BAnd (a, b) -> KBAnd (a.id, b.id)
    | BOr (a, b) -> KBOr (a.id, b.id)
    | BXor (a, b) -> KBXor (a.id, b.id)
    | BIte (c, a, b) -> KBIte (c.id, a.id, b.id)
    | Eq (a, b) -> KEq (a.id, b.id)
    | Ult (a, b) -> KUlt (a.id, b.id)
    | Slt (a, b) -> KSlt (a.id, b.id)
    | BvConst { width; value } -> KBvConst (width, value)
    | BvVar { name; width } -> KBvVar (name, width)
    | BvBin (op, a, b) -> KBvBin (op, a.id, b.id)
    | BvNot a -> KBvNot a.id
    | BvNeg a -> KBvNeg a.id
    | BvIte (c, a, b) -> KBvIte (c.id, a.id, b.id)
    | BvZext (w, a) -> KBvZext (w, a.id)
    | BvSext (w, a) -> KBvSext (w, a.id)
    | BvTrunc (w, a) -> KBvTrunc (w, a.id)
end

(* Hash-consing must stay correct when verification runs on several domains
   (the Par pool): the intern table is domain-local, so interning is
   lock-free, while ids come from one atomic counter so no two terms — even
   in different domains — ever share an id.  Cross-domain sharing is thereby
   lost (only [tt]/[ff] actually cross domains), which costs a little
   structural duplication but can never confuse id-based equality. *)
let table_key : (Key.k, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let next_id = Atomic.make 0

let intern sort node =
  let table = Domain.DLS.get table_key in
  let key = Key.of_node node in
  match Hashtbl.find_opt table key with
  | Some t -> t
  | None ->
    let t = { id = Atomic.fetch_and_add next_id 1; node; sort } in
    Hashtbl.add table key t;
    t

let width t = match t.sort with BV w -> w | Bool -> invalid_arg "Expr.width: boolean term"

(* ------------------------------------------------------------------ *)
(* Boolean constructors *)

let tt = intern Bool True
let ff = intern Bool False
let bool_var name = intern Bool (BoolVar name)
let of_bool b = if b then tt else ff

let not_ a =
  match a.node with
  | True -> ff
  | False -> tt
  | Not b -> b
  | _ -> intern Bool (Not a)

let and_ a b =
  match (a.node, b.node) with
  | True, _ -> b
  | _, True -> a
  | False, _ | _, False -> ff
  | _ when a.id = b.id -> a
  | Not x, _ when x.id = b.id -> ff
  | _, Not x when x.id = a.id -> ff
  | _ -> if a.id <= b.id then intern Bool (BAnd (a, b)) else intern Bool (BAnd (b, a))

let or_ a b =
  match (a.node, b.node) with
  | False, _ -> b
  | _, False -> a
  | True, _ | _, True -> tt
  | _ when a.id = b.id -> a
  | Not x, _ when x.id = b.id -> tt
  | _, Not x when x.id = a.id -> tt
  | _ -> if a.id <= b.id then intern Bool (BOr (a, b)) else intern Bool (BOr (b, a))

let xor_ a b =
  match (a.node, b.node) with
  | True, _ -> not_ b
  | _, True -> not_ a
  | False, _ -> b
  | _, False -> a
  | _ when a.id = b.id -> ff
  | _ -> if a.id <= b.id then intern Bool (BXor (a, b)) else intern Bool (BXor (b, a))

let implies a b = or_ (not_ a) b

let bool_ite c a b =
  match c.node with
  | True -> a
  | False -> b
  | _ -> if a.id = b.id then a else intern Bool (BIte (c, a, b))

let conj = List.fold_left and_ tt
let disj = List.fold_left or_ ff

(* ------------------------------------------------------------------ *)
(* Bitvector constructors *)

let bv_const width value =
  intern (BV width) (BvConst { width; value = Veriopt_ir.Bits.mask width value })

let bv_var name width = intern (BV width) (BvVar { name; width })

let const_value t = match t.node with BvConst { value; _ } -> Some value | _ -> None

let is_const_of t v = match t.node with BvConst { value; _ } -> value = v | _ -> false

let bin op a b =
  let w = width a in
  assert (width b = w);
  let open Veriopt_ir.Bits in
  match (const_value a, const_value b) with
  | Some x, Some y -> (
    match op with
    | Add -> bv_const w (add w x y)
    | Sub -> bv_const w (sub w x y)
    | Mul -> bv_const w (mul w x y)
    | UDiv -> bv_const w (if y = 0L then all_ones w else udiv w x y)
    | URem -> bv_const w (if y = 0L then x else urem w x y)
    | SDiv ->
      (* SMT-LIB semantics for the guarded-out cases *)
      bv_const w
        (if y = 0L then if slt w x 0L then 1L else all_ones w
         else if x = min_signed w && y = all_ones w then min_signed w
         else sdiv w x y)
    | SRem ->
      bv_const w
        (if y = 0L then x else if x = min_signed w && y = all_ones w then 0L else srem w x y)
    | Shl -> bv_const w (if shift_amount_poison w y then 0L else shl w x y)
    | LShr -> bv_const w (if shift_amount_poison w y then 0L else lshr w x y)
    | AShr ->
      bv_const w
        (if shift_amount_poison w y then if slt w x 0L then all_ones w else 0L else ashr w x y)
    | And -> bv_const w (logand w x y)
    | Or -> bv_const w (logor w x y)
    | Xor -> bv_const w (logxor w x y))
  | _ -> (
    (* light algebraic simplification *)
    match op with
    | Add when is_const_of b 0L -> a
    | Add when is_const_of a 0L -> b
    | Sub when is_const_of b 0L -> a
    | Sub when a.id = b.id -> bv_const w 0L
    | Mul when is_const_of b 1L -> a
    | Mul when is_const_of a 1L -> b
    | Mul when is_const_of a 0L || is_const_of b 0L -> bv_const w 0L
    | And when a.id = b.id -> a
    | And when is_const_of a 0L || is_const_of b 0L -> bv_const w 0L
    | And when is_const_of b (Veriopt_ir.Bits.all_ones w) -> a
    | And when is_const_of a (Veriopt_ir.Bits.all_ones w) -> b
    | Or when a.id = b.id -> a
    | Or when is_const_of b 0L -> a
    | Or when is_const_of a 0L -> b
    | Xor when a.id = b.id -> bv_const w 0L
    | Xor when is_const_of b 0L -> a
    | Xor when is_const_of a 0L -> b
    | Shl when is_const_of b 0L -> a
    | LShr when is_const_of b 0L -> a
    | AShr when is_const_of b 0L -> a
    | _ -> intern (BV w) (BvBin (op, a, b)))

let bv_not a =
  match a.node with
  | BvConst { width = w; value } -> bv_const w (Veriopt_ir.Bits.lognot w value)
  | BvNot b -> b
  | _ -> intern a.sort (BvNot a)

let bv_neg a =
  match a.node with
  | BvConst { width = w; value } -> bv_const w (Veriopt_ir.Bits.neg w value)
  | BvNeg b -> b
  | _ -> intern a.sort (BvNeg a)

let eq a b =
  assert (width a = width b);
  if a.id = b.id then tt
  else
    match (const_value a, const_value b) with
    | Some x, Some y -> of_bool (x = y)
    | _ -> if a.id <= b.id then intern Bool (Eq (a, b)) else intern Bool (Eq (b, a))

let ult a b =
  match (const_value a, const_value b) with
  | Some x, Some y -> of_bool (Veriopt_ir.Bits.ult (width a) x y)
  | _ -> if a.id = b.id then ff else intern Bool (Ult (a, b))

let slt a b =
  match (const_value a, const_value b) with
  | Some x, Some y -> of_bool (Veriopt_ir.Bits.slt (width a) x y)
  | _ -> if a.id = b.id then ff else intern Bool (Slt (a, b))

let ule a b = not_ (ult b a)
let sle a b = not_ (slt b a)
let ugt a b = ult b a
let sgt a b = slt b a
let uge a b = ule b a
let sge a b = sle b a

let bv_ite c a b =
  assert (width a = width b);
  match c.node with
  | True -> a
  | False -> b
  | _ -> if a.id = b.id then a else intern a.sort (BvIte (c, a, b))

let zext w a =
  let aw = width a in
  if w = aw then a
  else (
    assert (w > aw);
    match const_value a with
    | Some v -> bv_const w (Veriopt_ir.Bits.zext aw w v)
    | None -> intern (BV w) (BvZext (w, a)))

let sext w a =
  let aw = width a in
  if w = aw then a
  else (
    assert (w > aw);
    match const_value a with
    | Some v -> bv_const w (Veriopt_ir.Bits.sext aw w v)
    | None -> intern (BV w) (BvSext (w, a)))

let trunc w a =
  let aw = width a in
  if w = aw then a
  else (
    assert (w < aw);
    match const_value a with
    | Some v -> bv_const w (Veriopt_ir.Bits.trunc aw w v)
    | None -> intern (BV w) (BvTrunc (w, a)))

(** i1 <-> Bool conversions (LLVM's i1 maps to our Bool at the edges). *)
let bool_to_bv1 c = bv_ite c (bv_const 1 1L) (bv_const 1 0L)

let bv1_to_bool t = eq t (bv_const 1 1L)

let rec pp ppf t =
  match t.node with
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | BoolVar s -> Fmt.string ppf s
  | Not a -> Fmt.pf ppf "(not %a)" pp a
  | BAnd (a, b) -> Fmt.pf ppf "(and %a %a)" pp a pp b
  | BOr (a, b) -> Fmt.pf ppf "(or %a %a)" pp a pp b
  | BXor (a, b) -> Fmt.pf ppf "(xor %a %a)" pp a pp b
  | BIte (c, a, b) | BvIte (c, a, b) -> Fmt.pf ppf "(ite %a %a %a)" pp c pp a pp b
  | Eq (a, b) -> Fmt.pf ppf "(= %a %a)" pp a pp b
  | Ult (a, b) -> Fmt.pf ppf "(bvult %a %a)" pp a pp b
  | Slt (a, b) -> Fmt.pf ppf "(bvslt %a %a)" pp a pp b
  | BvConst { width; value } -> Fmt.pf ppf "#x%Lx[%d]" value width
  | BvVar { name; _ } -> Fmt.string ppf name
  | BvBin (op, a, b) ->
    let s =
      match op with
      | Add -> "bvadd"
      | Sub -> "bvsub"
      | Mul -> "bvmul"
      | UDiv -> "bvudiv"
      | URem -> "bvurem"
      | SDiv -> "bvsdiv"
      | SRem -> "bvsrem"
      | Shl -> "bvshl"
      | LShr -> "bvlshr"
      | AShr -> "bvashr"
      | And -> "bvand"
      | Or -> "bvor"
      | Xor -> "bvxor"
    in
    Fmt.pf ppf "(%s %a %a)" s pp a pp b
  | BvNot a -> Fmt.pf ppf "(bvnot %a)" pp a
  | BvNeg a -> Fmt.pf ppf "(bvneg %a)" pp a
  | BvZext (w, a) -> Fmt.pf ppf "(zext[%d] %a)" w pp a
  | BvSext (w, a) -> Fmt.pf ppf "(sext[%d] %a)" w pp a
  | BvTrunc (w, a) -> Fmt.pf ppf "(trunc[%d] %a)" w pp a

let to_string t = Fmt.str "%a" pp t

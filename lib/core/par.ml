(** Fixed-size [Domain] work pool with deterministic-order [map]. *)

module Fault = Veriopt_fault.Fault

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Workers flag themselves so a nested [map] degrades to [List.map] instead
   of blocking on a queue its own domain is supposed to drain. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let rec worker_loop (p : t) =
  Mutex.lock p.mutex;
  while Queue.is_empty p.queue && not p.stop do
    Condition.wait p.has_work p.mutex
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.mutex (* stop requested *)
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.mutex;
    task ();
    worker_loop p
  end

let create ~jobs =
  let jobs = max 1 jobs in
  let p =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      stop = false;
      workers = [];
    }
  in
  p.workers <-
    List.init (jobs - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker true;
            worker_loop p));
  p

let shutdown (p : t) =
  Mutex.lock p.mutex;
  p.stop <- true;
  Condition.broadcast p.has_work;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.workers;
  p.workers <- []

let size (p : t) = p.jobs

let map (p : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when p.jobs <= 1 || p.stop || Domain.DLS.get in_worker -> List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results : ('b, exn * Printexc.raw_backtrace) result option array = Array.make n None in
    let remaining = Atomic.make n in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let task i () =
      let r =
        try
          (* fault site: a worker task dying mid-flight; [map]'s existing
             collect-then-reraise path must deliver it to the caller *)
          Fault.inject Fault.Worker_exn ~site:"par.task";
          Ok (f arr.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_mutex;
        Condition.signal done_cond;
        Mutex.unlock done_mutex
      end
    in
    Mutex.lock p.mutex;
    for i = 0 to n - 1 do
      Queue.push (task i) p.queue
    done;
    Condition.broadcast p.has_work;
    Mutex.unlock p.mutex;
    (* the caller drains the queue alongside the workers *)
    let rec help () =
      Mutex.lock p.mutex;
      if Queue.is_empty p.queue then Mutex.unlock p.mutex
      else begin
        let task = Queue.pop p.queue in
        Mutex.unlock p.mutex;
        task ();
        help ()
      end
    in
    help ();
    Mutex.lock done_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    let out =
      Array.map
        (function
          | Some r -> r
          | None -> assert false (* remaining = 0 implies every slot is set *))
        results
    in
    Array.iter
      (function Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
      out;
    Array.to_list (Array.map (function Ok v -> v | Error _ -> assert false) out)

(* ------------------------------------------------------------------ *)
(* The process-wide shared pool. *)

let warned_bad_jobs = ref false

let default_jobs () =
  let recommended () = min 8 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "VERIOPT_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | _ ->
      (* an unparseable or non-positive setting used to silently force
         jobs=1 — fall back to the recommended size and say so once *)
      if not !warned_bad_jobs then begin
        warned_bad_jobs := true;
        Printf.eprintf "veriopt: ignoring invalid VERIOPT_JOBS=%S (want an integer >= 1)\n%!" s
      end;
      recommended ())
  | None -> recommended ()

let shared_pool : t option ref = ref None
let shared_mutex = Mutex.create ()

let shared () =
  Mutex.lock shared_mutex;
  let p =
    match !shared_pool with
    | Some p -> p
    | None ->
      let p = create ~jobs:(default_jobs ()) in
      shared_pool := Some p;
      if p.jobs > 1 then at_exit (fun () -> shutdown p);
      p
  in
  Mutex.unlock shared_mutex;
  p

let shared_jobs () = size (shared ())
let run f xs = map (shared ()) f xs

(** Evaluation harness: greedy-decode a model over a validation set, verify
    every output with Alive, and aggregate the paper's metrics under the
    verify-or-fallback deployment rule. *)

module Model = Veriopt_llm.Model
module Prompt = Veriopt_llm.Prompt
module Suite = Veriopt_data.Suite

type category = Correct_copy | Correct_different | Semantic_error | Syntax_error | Inconclusive

type metrics = { latency : int; icount : int; binsize : int }

val metrics_of : ?modul:Veriopt_ir.Ast.modul -> Veriopt_ir.Ast.func -> metrics

type row = {
  sample : Suite.sample;
  category : category;
  verdict_message : string;
  output : Veriopt_ir.Ast.func;  (** after fallback *)
  m_src : metrics;
  m_label : metrics;
  m_out : metrics;
  raw_out : Veriopt_ir.Ast.func option;
}

type counts = {
  total : int;
  correct : int;  (** Alive-verified, copies included *)
  copies : int;
  semantic : int;
  syntax : int;
  inconclusive : int;
}

type result = { model_name : string; rows : row list; counts : counts }

val evaluate_sample :
  ?mode:Prompt.mode ->
  ?max_conflicts:int ->
  ?engine:Veriopt_alive.Engine.t ->
  Model.t ->
  Suite.sample ->
  row

val count_rows : row list -> counts

val run :
  ?mode:Prompt.mode ->
  ?max_conflicts:int ->
  ?engine:Veriopt_alive.Engine.t ->
  Model.t ->
  Suite.sample list ->
  result
(** Decoding is sequential; verification fans out on the shared Par pool
    through the tiered + cached engine. *)

(** {1 Aggregates} *)

type comparison = { better : int; worse : int; tie : int; mean_delta : float }

val compare_metric :
  row list -> metric:(metrics -> int) -> out:(row -> metrics) -> base:(row -> metrics) -> comparison

val geomean_speedup :
  row list -> metric:(metrics -> int) -> out:(row -> metrics) -> base:(row -> metrics) -> float
(** Geometric-mean improvement factor base/out (> 1: [out] is better). *)

val out_metrics : row -> metrics
val src_metrics : row -> metrics
val label_metrics : row -> metrics

val best_of_both : row -> metrics
(** The fallback-to-instcombine deployment (the paper's "net" numbers). *)

val different_correct_rate : result -> float

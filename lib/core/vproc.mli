(** Fork-based verification worker pool: hard kill, rlimits, respawn.

    The in-process verification path can only honor a deadline
    cooperatively — a pathological allocation, a runaway C-speed loop, or a
    bug anywhere below the amortized check stalls the trainer itself.  A
    [Vproc] pool puts that work behind a process boundary the parent fully
    controls:

    - each worker is a {e forked child} running [handler] in a loop over
      framed [Marshal] messages on a pipe pair ("VPRC" magic, type byte,
      big-endian length, payload).  Fork inherits the address space, so the
      handler closure never crosses a pipe; only requests and responses do
      (they must be closure-free values);
    - the parent enforces a {b hard wall-clock deadline}: past [kill_at] the
      worker is [SIGKILL]ed — no cooperation needed — and the call returns
      [Error (Killed _)];
    - workers cap themselves with [setrlimit] (address-space headroom over
      the inherited image, CPU seconds), so an allocation bomb dies in the
      worker, not in the trainer;
    - a killed, crashed, or OOMed worker is {b respawned automatically}
      with exponential backoff; the pool degrades, it never breaks.

    {b Respawn survives the trainer's domains.}  OCaml 5 forbids
    [Unix.fork] in any process that has ever created a domain, so the
    parent could never refork a worker mid-training.  Instead each slot
    gets a single-threaded {e supervisor} process, forked once at pool
    creation: it forks the worker, [waitpid]s it, and forks a replacement
    whenever the worker is killed or crashes (backing off exponentially
    while replacements die young).  Every fresh worker announces its pid on
    the response pipe, which is how the parent tracks its SIGKILL target
    and counts spawns/respawns.  Create pools {e before} spawning domains:
    a pool created afterwards has no slots and every [call] returns
    [Error (Unavailable _)].

    A dead worker is a {e value}, never an exception: [call] returns
    [Error] carrying which way the worker died, and the caller decides what
    verdict that maps to.  Counters ([spawned]/[killed]/[crashed]/
    [respawned]/[frames]) are process-wide atomics in the style of
    [Solver.stats].

    Fault injection: the [worker_hang] and [worker_oom] kinds of
    {!Veriopt_fault.Fault} are checked {e inside the forked worker}, one coin
    per frame — the active fault config rides along in the request envelope,
    so chaos specs configured after the fork still reach the worker.

    Env knobs: [VERIOPT_PROC_JOBS], [VERIOPT_PROC_MEM_MB] (address-space
    headroom, [0] = off), [VERIOPT_PROC_CPU_S] ([0] = off),
    [VERIOPT_NO_FORK] (non-empty: pretend fork is unavailable). *)

type ('req, 'resp) t

type failure =
  | Killed of float
      (** the hard deadline passed; the worker was SIGKILLed after running
          this many seconds *)
  | Crashed of string  (** the worker died on its own: OOM, signal, exit *)
  | Handler_raised of string
      (** [handler] raised in the child; the worker itself survived *)
  | Unavailable of string  (** fork failed, no live slot, or pool closed *)

val failure_message : failure -> string

val available : unit -> bool
(** [fork] can be used here ([false] on non-Unix, or when [VERIOPT_NO_FORK]
    is set non-empty — the graceful-degradation escape hatch).  Note this
    cannot see whether the process has already created domains; a pool
    created after that point still degrades to [Unavailable] calls. *)

val create :
  ?jobs:int ->
  ?mem_headroom_mb:int ->
  ?cpu_limit_s:int ->
  ?backoff_base:float ->
  ?backoff_max:float ->
  ?max_call_s:float ->
  handler:('req -> 'resp) ->
  unit ->
  ('req, 'resp) t
(** Fork [jobs] supervisor+worker pairs (default [VERIOPT_PROC_JOBS] or 2)
    eagerly, each worker running [handler] over request frames.
    [mem_headroom_mb] (default [VERIOPT_PROC_MEM_MB] or 512) caps each
    worker's address space at the inherited image plus this many MB;
    [cpu_limit_s] (default [VERIOPT_PROC_CPU_S] or 300) caps CPU seconds;
    [0] disables either cap.  Backoff grows from [backoff_base] (default
    0.02s) doubling to [backoff_max] (default 0.5s): the supervisor paces
    reforks of short-lived workers, and the parent delays dispatch to a
    slot after each failed call, resetting on any completed frame.
    [max_call_s] (default 300) is the hard-kill backstop for calls with no
    explicit [kill_at]; [0.] waits forever. *)

val call : ?kill_at:float -> ('req, 'resp) t -> 'req -> ('resp, failure) result
(** Run one request on a worker (blocking; thread/domain-safe — callers
    queue on free slots).  [kill_at] is an absolute [Unix.gettimeofday]
    instant: past it the worker is SIGKILLed and the call returns
    [Error (Killed _)].  Every failure mode is a value; [call] itself never
    raises on a dead worker. *)

(** {1 Portfolio racing} *)

type 'resp race_member =
  | Race_done of 'resp * float
      (** the member answered, this many seconds into the race *)
  | Race_cancelled of float
      (** SIGKILLed as a loser this many seconds in, after another member
          won — cancellation is policy, not failure, so the slot takes no
          backoff penalty (the supervisor respawns the worker as usual) *)
  | Race_failed of failure

val call_race :
  ?kill_at:float ->
  decide:(int -> 'resp -> [ `Win | `Continue ]) ->
  ('req, 'resp) t ->
  'req list ->
  ('resp race_member array, failure) result
(** Race one request per member across distinct workers simultaneously.
    All slots are acquired atomically (all-or-nothing, so two concurrent
    races can never deadlock each other holding partial sets), every
    request is dispatched before any response is read, and responses are
    consumed as they land.  [decide i resp] inspects member [i]'s response:
    [`Win] declares it the winner and every still-running member is
    promptly SIGKILLed ([Race_cancelled]); [`Continue] keeps waiting (an
    inconclusive leg, or a cube leg that only counts toward a join).  The
    result array is indexed like the request list.  Past [kill_at] all
    still-running members become [Race_failed (Killed _)].  Members beyond
    the pool's slot count fail with [Unavailable] rather than queue — size
    the pool to the portfolio.  The top-level [Error] only reports a closed
    pool. *)

val orphans : _ t -> int
(** Workers still alive according to this pool's pid notices — a
    post-{!shutdown} smoke check that racing left no orphaned processes
    behind (always [0] after a clean shutdown). *)

val jobs : _ t -> int

val slots_available : _ t -> int
(** Slots whose supervisor came up and is still believed alive.  [0] means
    every call will return [Error (Unavailable _)] — e.g. the pool was
    created after this process had already spawned domains. *)

val shutdown : _ t -> unit
(** Kill and reap every worker and supervisor.  Closes admission first, then
    blocks until every in-flight [call]/[call_race] has finished (in-flight
    work is deadline-bounded, so this terminates) before tearing slots down —
    a concurrent racer's cancellation/reap path therefore always completes
    before teardown, and a post-shutdown {!orphans} audit is well-ordered. *)

type stats = {
  spawned : int;  (** worker forks observed, initial and respawn *)
  killed : int;  (** hard-deadline SIGKILLs *)
  crashed : int;  (** workers that died on their own (OOM, signal, exit) *)
  respawned : int;  (** forks replacing a killed/crashed worker *)
  frames : int;  (** completed request/response round trips *)
  cancelled : int;  (** race losers SIGKILLed after a winner (no backoff) *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

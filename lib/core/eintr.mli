(** EINTR-safe wrappers around the blocking syscalls {!Vproc} lives on.

    Any signal delivered to the trainer — a profiler's SIGPROF, a terminal
    resize, the interval timer of a test harness — interrupts a blocking
    [read]/[write]/[waitpid]/[select] with [EINTR].  Raw [Unix] calls
    surface that as an exception, which the worker-pool plumbing would
    misread as a dead worker.  These wrappers retry instead; an interrupted
    syscall is never an error, and a genuinely failed one still raises.

    [retries ()] counts how many times any wrapper retried after [EINTR]
    (process-wide), for observability in tests and reports. *)

val read : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read], retried on [EINTR]. *)

val write : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.write], retried on [EINTR]. *)

val read_fully : Unix.file_descr -> bytes -> int -> int -> bool
(** Read exactly [len] bytes, looping over short reads; [false] means EOF
    arrived first (the peer closed), [true] means the buffer is full. *)

val write_fully : Unix.file_descr -> bytes -> int -> int -> unit
(** Write exactly [len] bytes, looping over short writes.  Raises
    [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone. *)

val waitpid : ?flags:Unix.wait_flag list -> int -> int * Unix.process_status
(** [Unix.waitpid], retried on [EINTR]. *)

val wait_readable : Unix.file_descr -> deadline:float option -> [ `Ready | `Timeout ]
(** Block until [fd] is readable or the absolute [deadline]
    ([Unix.gettimeofday] clock) passes; [None] waits forever.  [EINTR]
    restarts the wait with the remaining time recomputed, so signals can
    never shorten (or extend) the window. *)

val retries : unit -> int
val reset_retries : unit -> unit

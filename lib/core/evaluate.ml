(** Evaluation harness: greedy-decode a model over a validation set, verify
    every output with Alive, and aggregate the paper's metrics.

    All efficiency metrics apply the paper's deployment rule: when
    verification fails, fall back to the -O0 input (§V-B), so an unverified
    model can never make the binary worse. *)

open Veriopt_ir
module Model = Veriopt_llm.Model
module Prompt = Veriopt_llm.Prompt
module Alive = Veriopt_alive.Alive
module Suite = Veriopt_data.Suite
module Latency = Veriopt_cost.Latency
module Icount = Veriopt_cost.Icount
module Binsize = Veriopt_cost.Binsize
module Reward = Veriopt_rl.Reward
module Engine = Veriopt_alive.Engine
module Par = Veriopt_par.Par

type category = Correct_copy | Correct_different | Semantic_error | Syntax_error | Inconclusive

type metrics = { latency : int; icount : int; binsize : int }

let metrics_of ?modul (f : Ast.func) : metrics =
  {
    latency = Latency.of_func f;
    icount = Icount.of_func f;
    binsize = Binsize.of_func ?modul f;
  }

type row = {
  sample : Suite.sample;
  category : category;
  verdict_message : string;
  output : Ast.func; (* after the verify-or-fallback rule *)
  m_src : metrics; (* -O0 *)
  m_label : metrics; (* -instcombine *)
  m_out : metrics; (* the deployed output *)
  raw_out : Ast.func option; (* the model's parsed answer, pre-fallback *)
}

type counts = {
  total : int;
  correct : int; (* Alive-verified, including copies *)
  copies : int;
  semantic : int;
  syntax : int;
  inconclusive : int;
}

type result = { model_name : string; rows : row list; counts : counts }

let categorize (vc : Reward.verified_candidate) : category =
  match vc.Reward.verdict.Alive.category with
  | Alive.Equivalent ->
    if vc.Reward.verdict.Alive.copy_of_input then Correct_copy else Correct_different
  | Alive.Semantic_error -> Semantic_error
  | Alive.Syntax_error -> Syntax_error
  | Alive.Inconclusive -> Inconclusive

(* Verification half of a sample evaluation: pure, so the Par pool can fan
   it out once the completion is in hand. *)
let row_of_completion ?(max_conflicts = 60_000) ?engine (s : Suite.sample) (completion : string)
    : row =
  let vc =
    Reward.verify_completion
      ~cfg:{ Reward.default_config with Reward.max_conflicts }
      ?engine s.Suite.modul ~src:s.Suite.src completion
  in
  let category = categorize vc in
  let output =
    match (category, vc.Reward.parsed) with
    | (Correct_copy | Correct_different), Some f -> f
    | _ -> s.Suite.src (* fallback to -O0 *)
  in
  {
    sample = s;
    category;
    verdict_message = vc.Reward.verdict.Alive.message;
    output;
    m_src = metrics_of ~modul:s.Suite.modul s.Suite.src;
    m_label = metrics_of ~modul:s.Suite.modul s.Suite.label;
    m_out = metrics_of ~modul:s.Suite.modul output;
    raw_out = vc.Reward.parsed;
  }

(** Evaluate one sample under greedy decoding. *)
let evaluate_sample ?(mode = Prompt.Generic) ?max_conflicts ?engine (model : Model.t)
    (s : Suite.sample) : row =
  let g = Model.generate model ~mode ~rng:None ~sample_id:s.Suite.id s.Suite.modul s.Suite.src in
  row_of_completion ?max_conflicts ?engine s g.Model.completion

let count_rows (rows : row list) : counts =
  List.fold_left
    (fun c r ->
      match r.category with
      | Correct_copy -> { c with correct = c.correct + 1; copies = c.copies + 1 }
      | Correct_different -> { c with correct = c.correct + 1 }
      | Semantic_error -> { c with semantic = c.semantic + 1 }
      | Syntax_error -> { c with syntax = c.syntax + 1 }
      | Inconclusive -> { c with inconclusive = c.inconclusive + 1 })
    { total = List.length rows; correct = 0; copies = 0; semantic = 0; syntax = 0; inconclusive = 0 }
    rows

let run ?(mode = Prompt.Generic) ?max_conflicts ?engine (model : Model.t)
    (validation : Suite.sample list) : result =
  (* two phases: decoding touches the model's parameter table and stays
     sequential; verification — the dominant cost — fans out on the pool *)
  let completions =
    List.map
      (fun (s : Suite.sample) ->
        let g =
          Model.generate model ~mode ~rng:None ~sample_id:s.Suite.id s.Suite.modul s.Suite.src
        in
        (s, g.Model.completion))
      validation
  in
  let rows =
    Par.run (fun (s, completion) -> row_of_completion ?max_conflicts ?engine s completion)
      completions
  in
  { model_name = model.Model.name; rows; counts = count_rows rows }

(* ------------------------------------------------------------------ *)
(* Aggregates *)

type comparison = { better : int; worse : int; tie : int; mean_delta : float }

(** Per-sample outcomes of [select_out] against [select_base] (smaller is
    better), plus the mean relative change. *)
let compare_metric (rows : row list) ~(metric : metrics -> int) ~(out : row -> metrics)
    ~(base : row -> metrics) : comparison =
  let better = ref 0 and worse = ref 0 and tie = ref 0 and delta = ref 0. in
  List.iter
    (fun r ->
      let o = metric (out r) and b = metric (base r) in
      if o < b then incr better else if o > b then incr worse else incr tie;
      delta := !delta +. ((float_of_int o -. float_of_int b) /. float_of_int (max 1 b)))
    rows;
  {
    better = !better;
    worse = !worse;
    tie = !tie;
    mean_delta = !delta /. float_of_int (max 1 (List.length rows));
  }

(** Geometric-mean improvement factor base/out (> 1 means [out] is better). *)
let geomean_speedup (rows : row list) ~(metric : metrics -> int) ~(out : row -> metrics)
    ~(base : row -> metrics) : float =
  let log_sum =
    List.fold_left
      (fun acc r ->
        acc +. log (float_of_int (max 1 (metric (base r))) /. float_of_int (max 1 (metric (out r)))))
      0. rows
  in
  exp (log_sum /. float_of_int (max 1 (List.length rows)))

let out_metrics r = r.m_out
let src_metrics r = r.m_src
let label_metrics r = r.m_label

(** Deployment with an -instcombine fallback: use the model output only when
    it beats the handwritten pass (the paper's "net" configuration). *)
let best_of_both r = if r.m_out.latency < r.m_label.latency then r.m_out else r.m_label

(** Fraction of rows where the model output is different-and-correct. *)
let different_correct_rate (res : result) : float =
  float_of_int
    (List.length (List.filter (fun r -> r.category = Correct_different) res.rows))
  /. float_of_int (max 1 res.counts.total)

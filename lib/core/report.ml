(** Rendering of every table and figure the paper reports, from evaluation
    results.  Each function prints the same rows/series as the corresponding
    paper artifact so EXPERIMENTS.md can record paper-vs-measured shapes. *)

open Evaluate
module Model = Veriopt_llm.Model
module Suite = Veriopt_data.Suite
module Trainer = Veriopt_rl.Trainer

let pct n total = 100. *. float_of_int n /. float_of_int (max 1 total)

(* ------------------------------------------------------------------ *)
(* Tables I and II: Alive verification categories *)

let pp_verdict_table ppf (res : result) =
  let c = res.counts in
  Fmt.pf ppf "%-34s %8s %10s@." "Category" "Count" "Prop. (%)";
  Fmt.pf ppf "%-34s %8d %10.1f@." "Correct (Alive verified)" c.correct (pct c.correct c.total);
  Fmt.pf ppf "%-34s %8d %10.1f@." "- Copy of input (no optimization)" c.copies (pct c.copies c.total);
  Fmt.pf ppf "%-34s %8d %10.1f@." "Semantic Error (Not Equivalent)" c.semantic (pct c.semantic c.total);
  Fmt.pf ppf "%-34s %8d %10.1f@." "Syntax Error (Invalid IR)" c.syntax (pct c.syntax c.total);
  Fmt.pf ppf "%-34s %8d %10.1f@." "Inconclusive" c.inconclusive (pct c.inconclusive c.total)

let table1 ppf (base_eval : result) =
  Fmt.pf ppf "TABLE I: Alive verification results of baseline %s@." base_eval.model_name;
  pp_verdict_table ppf base_eval;
  Fmt.pf ppf "different-correct rate: %.1f%%@."
    (100. *. different_correct_rate base_eval)

let table2 ppf ~(correctness : result) ~(latency : result) =
  Fmt.pf ppf "TABLE II: Alive verification results of the LLM-VeriOpt models@.";
  Fmt.pf ppf "-- Model-Correctness --@.";
  pp_verdict_table ppf correctness;
  Fmt.pf ppf "different-correct rate: %.1f%%@." (100. *. different_correct_rate correctness);
  Fmt.pf ppf "-- Model-Latency --@.";
  pp_verdict_table ppf latency;
  Fmt.pf ppf "different-correct rate: %.1f%%@." (100. *. different_correct_rate latency)

(* ------------------------------------------------------------------ *)
(* Table III: per-sample outcomes vs -O0 *)

let metric_selectors = [ ("Latency", fun m -> m.latency); ("Size", fun m -> m.binsize); ("ICount", fun m -> m.icount) ]

let table3 ppf (models : (string * result) list) =
  Fmt.pf ppf
    "TABLE III: per-sample outcomes vs LLVM -O0 (verify-or-fallback; smaller = better)@.";
  Fmt.pf ppf "%-8s %-14s %7s %7s %7s %7s %12s@." "Metric" "Model" "Better" "Worse" "Tie" "Total"
    "MeanD vs O0";
  List.iter
    (fun (metric_name, metric) ->
      List.iter
        (fun (name, res) ->
          let c = compare_metric res.rows ~metric ~out:out_metrics ~base:src_metrics in
          Fmt.pf ppf "%-8s %-14s %7d %7d %7d %7d %11.2f%%@." metric_name name c.better c.worse
            c.tie res.counts.total (100. *. c.mean_delta))
        models)
    metric_selectors

(* ------------------------------------------------------------------ *)
(* Fig. 4: training dynamics *)

let fig4 ppf ~(which : string) (log : Trainer.stage_log) =
  Fmt.pf ppf "FIG 4%s: training reward (step, raw, EMA-0.95)@." which;
  let raw = Array.of_list log.Trainer.raw_rewards in
  let ema = Array.of_list log.Trainer.ema_rewards in
  let n = Array.length raw in
  let stride = max 1 (n / 20) in
  let i = ref 0 in
  while !i < n do
    Fmt.pf ppf "  step %4d  raw %6.3f  ema %6.3f@." (!i + 1) raw.(!i) ema.(!i);
    i := !i + stride
  done;
  if n > 0 then Fmt.pf ppf "  step %4d  raw %6.3f  ema %6.3f@." n raw.(n - 1) ema.(n - 1)

(* ------------------------------------------------------------------ *)
(* Fig. 5: baselines in parameter-size order *)

let fig5 ppf (models : (string * result) list) =
  Fmt.pf ppf "FIG 5: LLM baselines (parameter-size order) vs Model-Latency@.";
  Fmt.pf ppf "%-18s %12s %12s %12s %12s@." "Model" "Latency x" "Correct %" "ICount ratio"
    "Size ratio";
  List.iter
    (fun (name, res) ->
      let lat = geomean_speedup res.rows ~metric:(fun m -> m.latency) ~out:out_metrics ~base:src_metrics in
      let ic =
        1. /. geomean_speedup res.rows ~metric:(fun m -> m.icount) ~out:out_metrics ~base:src_metrics
      in
      let bs =
        1. /. geomean_speedup res.rows ~metric:(fun m -> m.binsize) ~out:out_metrics ~base:src_metrics
      in
      let correct = pct res.counts.correct res.counts.total in
      Fmt.pf ppf "%-18s %12.2f %12.1f %12.3f %12.3f@." name lat correct ic bs)
    models

(* ------------------------------------------------------------------ *)
(* Fig. 6: pairwise distributions and the headline speedups *)

let pairwise ppf ~(name : string) (rows : row list) ~out ~base =
  List.iter
    (fun (metric_name, metric) ->
      let c = compare_metric rows ~metric ~out ~base in
      Fmt.pf ppf "  %-22s %-8s better %5.1f%%  worse %5.1f%%  tie %5.1f%%@." name metric_name
        (pct c.better (List.length rows))
        (pct c.worse (List.length rows))
        (pct c.tie (List.length rows)))
    metric_selectors

let fig6 ppf ~(latency_model : result) =
  Fmt.pf ppf "FIG 6: pairwise distributions of optimized IR@.";
  Fmt.pf ppf "(a) VeriOpt vs -O0:@.";
  pairwise ppf ~name:"VeriOpt vs O0" latency_model.rows ~out:out_metrics ~base:src_metrics;
  Fmt.pf ppf "(b) instcombine vs -O0:@.";
  pairwise ppf ~name:"instcombine vs O0" latency_model.rows ~out:label_metrics ~base:src_metrics;
  Fmt.pf ppf "(c) VeriOpt vs instcombine:@.";
  pairwise ppf ~name:"VeriOpt vs IC" latency_model.rows ~out:out_metrics ~base:label_metrics;
  let geo metric out base =
    geomean_speedup latency_model.rows ~metric ~out ~base
  in
  Fmt.pf ppf "geomean speedup vs O0: VeriOpt %.2fx, instcombine %.2fx@."
    (geo (fun m -> m.latency) out_metrics src_metrics)
    (geo (fun m -> m.latency) label_metrics src_metrics);
  let net_rows = latency_model.rows in
  let net =
    geomean_speedup net_rows ~metric:(fun m -> m.latency)
      ~out:(fun r -> best_of_both r)
      ~base:label_metrics
  in
  let net_ic =
    geomean_speedup net_rows ~metric:(fun m -> m.icount)
      ~out:(fun r -> if (best_of_both r).latency = r.m_out.latency then r.m_out else r.m_label)
      ~base:label_metrics
  in
  let net_bs =
    geomean_speedup net_rows ~metric:(fun m -> m.binsize)
      ~out:(fun r -> if (best_of_both r).latency = r.m_out.latency then r.m_out else r.m_label)
      ~base:label_metrics
  in
  Fmt.pf ppf
    "with fallback to instcombine: net latency gain %.1f%%, icount %.1f%%, binsize %.1f%%@."
    (100. *. (net -. 1.))
    (100. *. (net_ic -. 1.))
    (100. *. (net_bs -. 1.))

(* ------------------------------------------------------------------ *)
(* Fig. 7: ablation over the four-model hierarchy *)

let fig7 ppf (models : (string * result) list) =
  Fmt.pf ppf "FIG 7: ablation over the training hierarchy@.";
  Fmt.pf ppf "%-20s %12s %12s %12s %12s@." "Variant" "Latency x" "ICount x" "Size x" "Correct %";
  List.iter
    (fun (name, res) ->
      let g metric = geomean_speedup res.rows ~metric ~out:out_metrics ~base:src_metrics in
      Fmt.pf ppf "%-20s %12.2f %12.2f %12.2f %12.1f@." name
        (g (fun m -> m.latency))
        (g (fun m -> m.icount))
        (g (fun m -> m.binsize))
        (pct res.counts.correct res.counts.total))
    models

(* ------------------------------------------------------------------ *)
(* Figs. 8-12: code-example case studies *)

let print_pair ppf title (r : row) =
  Fmt.pf ppf "--- %s (sample f%d) ---@." title r.sample.Suite.id;
  Fmt.pf ppf "InstCombine:@.%s@." (Veriopt_ir.Printer.func_to_string r.sample.Suite.label);
  Fmt.pf ppf "LLM-VeriOpt:@.%s@." (Veriopt_ir.Printer.func_to_string r.output)

let figs8to12 ppf (latency_model : result) =
  Fmt.pf ppf "FIGS 8-12: case studies mined from the validation set@.";
  let rows = latency_model.rows in
  let is_const_ret (f : Veriopt_ir.Ast.func) =
    match f.Veriopt_ir.Ast.blocks with
    | [ { instrs = []; term = Veriopt_ir.Ast.Ret _; _ } ] -> true
    | _ -> false
  in
  (* Fig 8-style: the model simplifies a function to a constant return where
     instcombine does not *)
  (match
     List.find_opt
       (fun r ->
         r.category = Correct_different && is_const_ret r.output
         && not (is_const_ret r.sample.Suite.label))
       rows
   with
  | Some r -> print_pair ppf "Fig 8-style: simplification to a constant" r
  | None -> Fmt.pf ppf "(no fig-8-style example found at this scale)@.");
  (* Fig 9/10-style: emergent win over instcombine (alloca/phi removal) *)
  (match
     List.find_opt
       (fun r -> r.category = Correct_different && r.m_out.latency < r.m_label.latency)
       rows
   with
  | Some r -> print_pair ppf "Fig 9/10-style: emergent win over instcombine" r
  | None -> Fmt.pf ppf "(no emergent-win example found at this scale)@.");
  (* Fig 11/12-style: instcombine superiority *)
  (match
     List.find_opt
       (fun r -> r.category = Correct_different && r.m_out.latency > r.m_label.latency)
       rows
   with
  | Some r -> print_pair ppf "Fig 11/12-style: instcombine finds more" r
  | None -> Fmt.pf ppf "(no instcombine-superior example found at this scale)@.")

(* ------------------------------------------------------------------ *)

let dataset_stats ppf ~(train : Suite.stats) ~(validation : Suite.stats) =
  Fmt.pf ppf "DATASET (SIV-A methodology):@.";
  Fmt.pf ppf "  train:      %a@." Suite.pp_stats train;
  Fmt.pf ppf "  validation: %a@." Suite.pp_stats validation

(* ------------------------------------------------------------------ *)

(** Tier / cache / SAT statistics of the verification engine: where the
    reward hot path's time went and how much work the tiers avoided. *)
let engine_stats ppf (engine : Veriopt_alive.Engine.t) =
  let s = Veriopt_alive.Engine.stats engine in
  let sat = Veriopt_smt.Solver.stats () in
  let lookups = s.Veriopt_alive.Vcache.hits + s.Veriopt_alive.Vcache.misses in
  Fmt.pf ppf "VERIFICATION ENGINE:@.";
  Fmt.pf ppf "  cache:  %d lookups, %d hits (%.1f%%), %d entries, %d evictions@." lookups
    s.Veriopt_alive.Vcache.hits
    (pct s.Veriopt_alive.Vcache.hits lookups)
    s.Veriopt_alive.Vcache.entries s.Veriopt_alive.Vcache.evictions;
  Fmt.pf ppf
    "  tiers:  %d concrete counterexamples (%.2fs in tier 1), %d SMT runs (%.2fs in tier 2)@."
    s.Veriopt_alive.Vcache.tier1_hits s.Veriopt_alive.Vcache.tier1_seconds
    s.Veriopt_alive.Vcache.tier2_runs s.Veriopt_alive.Vcache.tier2_seconds;
  if s.Veriopt_alive.Vcache.tier1_ewma_s > 0. || s.Veriopt_alive.Vcache.tier2_ewma_s > 0. then
    Fmt.pf ppf "  ewma:   tier-1 %.2fms, tier-2 %.2fms per run (admission price signal)@."
      (s.Veriopt_alive.Vcache.tier1_ewma_s *. 1e3)
      (s.Veriopt_alive.Vcache.tier2_ewma_s *. 1e3);
  Fmt.pf ppf "  sat:    %d checks, %d conflicts, %d decisions, %d propagations, %d restarts@."
    sat.Veriopt_smt.Solver.checks sat.Veriopt_smt.Solver.conflicts
    sat.Veriopt_smt.Solver.decisions sat.Veriopt_smt.Solver.propagations
    sat.Veriopt_smt.Solver.restarts;
  Fmt.pf ppf "  sat-db: %d learned, %d deleted in %d reductions, peak live DB %d@."
    sat.Veriopt_smt.Solver.learned sat.Veriopt_smt.Solver.deleted
    sat.Veriopt_smt.Solver.reductions sat.Veriopt_smt.Solver.db_peak;
  if sat.Veriopt_smt.Solver.sessions > 0 then
    Fmt.pf ppf "  sat-sess: %d incremental sessions, %d reused checks@."
      sat.Veriopt_smt.Solver.sessions sat.Veriopt_smt.Solver.session_reuse;
  if sat.Veriopt_smt.Solver.learned > 0 then begin
    Fmt.pf ppf "  lbd:    ";
    Array.iteri
      (fun i n ->
        let label =
          if i = Array.length sat.Veriopt_smt.Solver.lbd_hist - 1 then Fmt.str "%d+" (i + 1)
          else string_of_int (i + 1)
        in
        Fmt.pf ppf "%s:%d " label n)
      sat.Veriopt_smt.Solver.lbd_hist;
    Fmt.pf ppf "@."
  end;
  if s.Veriopt_alive.Vcache.breaker_trips > 0 || s.Veriopt_alive.Vcache.breaker_skips > 0 then
    Fmt.pf ppf "  breaker: %d trips, %d tier-2 runs skipped while open@."
      s.Veriopt_alive.Vcache.breaker_trips s.Veriopt_alive.Vcache.breaker_skips;
  (let ic_runs = Atomic.get Veriopt_passes.Instcombine.runs_total in
   if ic_runs > 0 then
     Fmt.pf ppf
       "  passes: %d instcombine runs, %d rewrites, %d fuel-exhausted; fold engine %d passes, \
        %d restarts, %d phi-barrier hits@."
       ic_runs
       (Atomic.get Veriopt_passes.Instcombine.rewrites_total)
       (Atomic.get Veriopt_passes.Instcombine.fuel_exhausted_total)
       (Atomic.get Veriopt_passes.Fold_engine.passes_total)
       (Atomic.get Veriopt_passes.Fold_engine.restarts_total)
       (Atomic.get Veriopt_passes.Fold_engine.barrier_hits_total));
  (let p = Veriopt_alive.Engine.pain_stats engine in
   if p.Veriopt_alive.Engine.probes > 0 then
     Fmt.pf ppf
       "  pain:   %d probes, %d inconclusive, %d deadline-expired, %.2fs wall (max %.0fms)@."
       p.Veriopt_alive.Engine.probes p.Veriopt_alive.Engine.probe_inconclusive
       p.Veriopt_alive.Engine.probe_deadline_expired p.Veriopt_alive.Engine.probe_wall_s
       (p.Veriopt_alive.Engine.probe_max_wall_s *. 1e3));
  (match Veriopt_alive.Engine.store_stats engine with
  | None -> ()
  | Some st ->
    Fmt.pf ppf
      "  store:  %d hits, %d misses, %d writes, %d corrupt entries skipped, %d stale-version \
       skips (%d entries, %d segments%s)@."
      st.Veriopt_store.Store.hits st.Veriopt_store.Store.misses st.Veriopt_store.Store.writes
      st.Veriopt_store.Store.corrupt_entries st.Veriopt_store.Store.stale_version_skips
      st.Veriopt_store.Store.entries st.Veriopt_store.Store.segments
      (if st.Veriopt_store.Store.read_only then ", read-only" else ""));
  (let ef = Veriopt_rl.Reward.engine_failures () in
   if ef > 0 then Fmt.pf ppf "  reward: %d engine failures absorbed as inconclusive@." ef);
  (let vp = Veriopt_vproc.Vproc.stats () in
   if vp.Veriopt_vproc.Vproc.spawned > 0 then
     Fmt.pf ppf
       "  vproc:  %d workers spawned (%d respawns), %d killed, %d crashed, %d frames, %d race \
        losers cancelled@."
       vp.Veriopt_vproc.Vproc.spawned vp.Veriopt_vproc.Vproc.respawned
       vp.Veriopt_vproc.Vproc.killed vp.Veriopt_vproc.Vproc.crashed
       vp.Veriopt_vproc.Vproc.frames vp.Veriopt_vproc.Vproc.cancelled);
  (let p = Veriopt_smt.Portfolio.stats () in
   if p.Veriopt_smt.Portfolio.races > 0 then begin
     Fmt.pf ppf
       "  portfolio: %d races (%d full-member wins), %d cube splits, %d cube cex, %d cube \
        refutations, %d join refutations@."
       p.Veriopt_smt.Portfolio.races p.Veriopt_smt.Portfolio.race_wins
       p.Veriopt_smt.Portfolio.cube_splits p.Veriopt_smt.Portfolio.cube_cex
       p.Veriopt_smt.Portfolio.cube_refutations p.Veriopt_smt.Portfolio.join_refutations;
     Fmt.pf ppf
       "  portfolio: %d losers cancelled, %d wasted conflicts, %d units merged, reap ratio \
        max %.2f@."
       p.Veriopt_smt.Portfolio.losers_cancelled p.Veriopt_smt.Portfolio.wasted_conflicts
       p.Veriopt_smt.Portfolio.units_merged p.Veriopt_smt.Portfolio.reap_ratio_max;
     match Veriopt_smt.Portfolio.winner_histogram () with
     | [] -> ()
     | hist ->
       Fmt.pf ppf "  portfolio-winners: %a@."
         (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (label, n) -> Fmt.pf ppf "%s:%d" label n))
         hist
   end);
  Fmt.pf ppf "  pool:   VERIOPT_JOBS=%d@." (Veriopt_par.Par.shared_jobs ())

(* ------------------------------------------------------------------ *)

(** Serving-layer counters: queue depths, shed/coalesce/admission behavior
    and per-priority service latency — how overload was absorbed. *)
let serve_stats ppf (s : Veriopt_serve.Serve.stats) =
  let module S = Veriopt_serve.Serve in
  Fmt.pf ppf "SERVING LAYER:@.";
  Fmt.pf ppf "  submitted: %d interactive, %d bulk; %d waiters completed, %d engine calls@."
    s.S.submitted_interactive s.S.submitted_bulk s.S.completed s.S.engine_calls;
  Fmt.pf ppf "  coalesce:  %d waiters shared an in-queue entry@." s.S.coalesced;
  Fmt.pf ppf "  admission: %d refused on deadline, %d refused on open breaker@."
    s.S.admission_refused s.S.breaker_refused;
  Fmt.pf ppf "  shed:      %d queue-full, %d displaced, %d expired in queue, %d at drain@."
    s.S.shed_queue_full s.S.shed_displaced s.S.shed_expired s.S.shed_drain;
  Fmt.pf ppf "  queue:     depth %d interactive / %d bulk (max %d), %d in flight@."
    s.S.depth_interactive s.S.depth_bulk s.S.depth_max s.S.inflight;
  if s.S.rejected_draining > 0 || s.S.client_disconnects > 0 then
    Fmt.pf ppf "  drain:     %d refused while draining, %d client disconnects@."
      s.S.rejected_draining s.S.client_disconnects;
  Fmt.pf ppf "  service:   ewma %.2fms interactive, %.2fms bulk@."
    (s.S.service_ewma_interactive_s *. 1e3)
    (s.S.service_ewma_bulk_s *. 1e3);
  if s.S.store_hits > 0 || s.S.store_misses > 0 then
    Fmt.pf ppf "  store:     %d hits, %d misses served through the disk tier@." s.S.store_hits
      s.S.store_misses

/* setrlimit for the forked verification workers.  The OCaml Unix library
   exposes getrlimit/setrlimit on neither 4.x nor 5.x, so the two resources
   the sandbox needs (address space, CPU seconds) go through this stub.

   veriopt_vproc_setrlimit(which, limit):
     which = 0 -> RLIMIT_AS   (bytes)
     which = 1 -> RLIMIT_CPU  (seconds)
   Sets both the soft and the hard limit (the child only ever lowers them,
   which never needs privilege).  Returns 0 on success, -1 on failure —
   callers treat failure as "run unlimited", never as fatal. */

#include <caml/mlvalues.h>
#include <sys/resource.h>

CAMLprim value veriopt_vproc_setrlimit(value v_which, value v_limit)
{
  struct rlimit rl;
  int resource;
  switch (Int_val(v_which)) {
  case 0:
    resource = RLIMIT_AS;
    break;
  case 1:
    resource = RLIMIT_CPU;
    break;
  default:
    return Val_int(-1);
  }
  rl.rlim_cur = (rlim_t)Long_val(v_limit);
  rl.rlim_max = (rlim_t)Long_val(v_limit);
  return Val_int(setrlimit(resource, &rl));
}

(** Deterministic fault injection for the resilience layer.

    Faults are configured either through the [VERIOPT_FAULTS] environment
    variable or the {!configure} API, and fire deterministically: the n-th
    check of a given kind fires iff a hash of (seed, kind, n) falls under the
    configured rate.  Runs with the same spec and the same call sequence see
    the same faults, which is what makes chaos tests reproducible.

    Spec grammar (comma-separated clauses):

    {v
      spec    ::= clause ("," clause)*
      clause  ::= "seed=" INT
                | KIND "=" RATE (":" PARAM)?
      KIND    ::= solver_timeout | parse_corrupt | verify_delay
                | worker_exn | oracle_exn | trainer_abort
                | worker_hang | worker_oom
                | queue_full | slow_drain | client_disconnect
                | store_corrupt | store_stale
                | corpus_corrupt | miner_stall
      RATE    ::= float in [0, 1]
      PARAM   ::= float (kind-specific: seconds for verify_delay,
                  last completed step for trainer_abort)
    v}

    e.g. [VERIOPT_FAULTS="seed=7,solver_timeout=1.0,verify_delay=0.25:0.002"]. *)

type kind =
  | Solver_timeout  (** the SAT budget is reported exhausted without solving *)
  | Parse_corrupt  (** the engine's parse site raises [Injected] *)
  | Verify_delay  (** the engine sleeps [param] seconds before verifying *)
  | Worker_exn  (** a Par pool task raises [Injected] *)
  | Oracle_exn  (** the concrete I/O oracle raises [Injected] *)
  | Trainer_abort  (** the trainer aborts after step [param] (kill simulation) *)
  | Worker_hang  (** the vproc child busy-spins, forcing the hard-kill path *)
  | Worker_oom  (** the vproc child allocation-bombs into its rlimit *)
  | Queue_full  (** the serve queue reports itself full, forcing a shed *)
  | Slow_drain  (** a serve worker stalls [param] seconds before its call *)
  | Client_disconnect  (** the client vanishes before its result is ready *)
  | Store_corrupt  (** the verdict store treats a present entry as CRC-damaged *)
  | Store_stale  (** the verdict store treats a present entry as version-stale *)
  | Corpus_corrupt  (** the adversarial corpus scan treats a case as damaged *)
  | Miner_stall  (** the miner loop stalls [param] seconds on a candidate *)

exception Injected of string

let all_kinds =
  [
    Solver_timeout;
    Parse_corrupt;
    Verify_delay;
    Worker_exn;
    Oracle_exn;
    Trainer_abort;
    Worker_hang;
    Worker_oom;
    Queue_full;
    Slow_drain;
    Client_disconnect;
    Store_corrupt;
    Store_stale;
    Corpus_corrupt;
    Miner_stall;
  ]

let nkinds = List.length all_kinds

let index = function
  | Solver_timeout -> 0
  | Parse_corrupt -> 1
  | Verify_delay -> 2
  | Worker_exn -> 3
  | Oracle_exn -> 4
  | Trainer_abort -> 5
  | Worker_hang -> 6
  | Worker_oom -> 7
  | Queue_full -> 8
  | Slow_drain -> 9
  | Client_disconnect -> 10
  | Store_corrupt -> 11
  | Store_stale -> 12
  | Corpus_corrupt -> 13
  | Miner_stall -> 14

let kind_name = function
  | Solver_timeout -> "solver_timeout"
  | Parse_corrupt -> "parse_corrupt"
  | Verify_delay -> "verify_delay"
  | Worker_exn -> "worker_exn"
  | Oracle_exn -> "oracle_exn"
  | Trainer_abort -> "trainer_abort"
  | Worker_hang -> "worker_hang"
  | Worker_oom -> "worker_oom"
  | Queue_full -> "queue_full"
  | Slow_drain -> "slow_drain"
  | Client_disconnect -> "client_disconnect"
  | Store_corrupt -> "store_corrupt"
  | Store_stale -> "store_stale"
  | Corpus_corrupt -> "corpus_corrupt"
  | Miner_stall -> "miner_stall"

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

type spec = { rate : float; param : float }
type config = { seed : int; specs : spec option array (* indexed by {!index} *) }

let empty_config () = { seed = 0; specs = Array.make nkinds None }

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let parse (s : string) : (config, string) result =
  let clauses =
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun c -> c <> "")
  in
  let cfg = empty_config () in
  let seed = ref 0 in
  let rec go = function
    | [] -> Ok { cfg with seed = !seed }
    | clause :: rest -> (
      match String.index_opt clause '=' with
      | None -> Error (Printf.sprintf "fault clause %S: expected key=value" clause)
      | Some i -> (
        let key = String.trim (String.sub clause 0 i) in
        let value = String.trim (String.sub clause (i + 1) (String.length clause - i - 1)) in
        if key = "seed" then
          match int_of_string_opt value with
          | Some n ->
            seed := n;
            go rest
          | None -> Error (Printf.sprintf "fault seed %S: expected an integer" value)
        else
          match kind_of_name key with
          | None -> Error (Printf.sprintf "unknown fault kind %S" key)
          | Some k -> (
            let rate_s, param_s =
              match String.index_opt value ':' with
              | None -> (value, None)
              | Some j ->
                ( String.sub value 0 j,
                  Some (String.sub value (j + 1) (String.length value - j - 1)) )
            in
            match (float_of_string_opt rate_s, Option.map float_of_string_opt param_s) with
            | None, _ -> Error (Printf.sprintf "fault rate %S: expected a float" rate_s)
            | _, Some None ->
              Error
                (Printf.sprintf "fault param %S: expected a float"
                   (Option.value ~default:"" param_s))
            | Some rate, param ->
              if rate < 0. || rate > 1. then
                Error (Printf.sprintf "fault rate %g out of [0, 1]" rate)
              else begin
                cfg.specs.(index k) <-
                  Some { rate; param = Option.value ~default:0. (Option.join param) };
                go rest
              end)))
  in
  go clauses

(* ------------------------------------------------------------------ *)
(* Global state.  The active config is an immutable record behind an Atomic
   so the hot-path check is one load; counters are per-kind atomics. *)

let current : config option Atomic.t = Atomic.make None
let initialized = Atomic.make false
let checked = Array.init nkinds (fun _ -> Atomic.make 0)
let fired = Array.init nkinds (fun _ -> Atomic.make 0)

let reset_stats () =
  Array.iter (fun c -> Atomic.set c 0) checked;
  Array.iter (fun c -> Atomic.set c 0) fired

let configure (cfg : config) =
  Atomic.set initialized true;
  Atomic.set current (Some cfg)

let configure_string (s : string) : (unit, string) result =
  match parse s with
  | Ok cfg ->
    configure cfg;
    Ok ()
  | Error e -> Error e

let disable () =
  Atomic.set initialized true;
  Atomic.set current None

let init_from_env () =
  if not (Atomic.get initialized) then begin
    Atomic.set initialized true;
    match Sys.getenv_opt "VERIOPT_FAULTS" with
    | None | Some "" -> ()
    | Some s -> (
      match parse s with
      | Ok cfg -> Atomic.set current (Some cfg)
      | Error e -> Printf.eprintf "veriopt: ignoring invalid VERIOPT_FAULTS: %s\n%!" e)
  end

let config () =
  init_from_env ();
  Atomic.get current

let enabled () = config () <> None

let spec_of (k : kind) : spec option =
  match config () with None -> None | Some c -> c.specs.(index k)

(* ------------------------------------------------------------------ *)
(* Firing *)

let coin ~seed ~kind_idx ~n ~rate =
  if rate >= 1.0 then true
  else if rate <= 0.0 then false
  else
    let h = Hashtbl.hash (seed, kind_idx, n, "veriopt-fault") in
    float_of_int (h land 0xFFFFFF) /. 16777216.0 < rate

let fire (k : kind) : bool =
  match config () with
  | None -> false
  | Some c -> (
    let i = index k in
    match c.specs.(i) with
    | None -> false
    | Some s ->
      let n = Atomic.fetch_and_add checked.(i) 1 in
      let hit = coin ~seed:c.seed ~kind_idx:i ~n ~rate:s.rate in
      if hit then ignore (Atomic.fetch_and_add fired.(i) 1);
      hit)

let param (k : kind) : float =
  match spec_of k with None -> 0. | Some s -> s.param

let inject (k : kind) ~(site : string) : unit =
  if fire k then raise (Injected (Printf.sprintf "injected %s at %s" (kind_name k) site))

let abort_after () : int option =
  match spec_of Trainer_abort with None -> None | Some s -> Some (int_of_float s.param)

type counters = { kind : kind; checks : int; fires : int }

let stats () : counters list =
  List.map
    (fun k ->
      let i = index k in
      { kind = k; checks = Atomic.get checked.(i); fires = Atomic.get fired.(i) })
    all_kinds

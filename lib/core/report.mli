(** Rendering of every table and figure the paper reports, from evaluation
    results, so EXPERIMENTS.md can record paper-vs-measured shapes. *)

open Evaluate
module Suite = Veriopt_data.Suite
module Trainer = Veriopt_rl.Trainer

val pct : int -> int -> float

val table1 : Format.formatter -> result -> unit
val table2 : Format.formatter -> correctness:result -> latency:result -> unit
val table3 : Format.formatter -> (string * result) list -> unit
val fig4 : Format.formatter -> which:string -> Trainer.stage_log -> unit
val fig5 : Format.formatter -> (string * result) list -> unit
val fig6 : Format.formatter -> latency_model:result -> unit
val fig7 : Format.formatter -> (string * result) list -> unit
val figs8to12 : Format.formatter -> result -> unit
val dataset_stats : Format.formatter -> train:Suite.stats -> validation:Suite.stats -> unit

val engine_stats : Format.formatter -> Veriopt_alive.Engine.t -> unit
(** Tier / cache / SAT counters of the verification engine, including the
    rolling per-tier latency EWMAs that price serve-layer admission. *)

val serve_stats : Format.formatter -> Veriopt_serve.Serve.stats -> unit
(** Serving-layer queue/shed/coalesce/admission counters. *)

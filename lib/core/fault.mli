(** Deterministic, seeded fault injection for the resilience layer.

    Configure with the [VERIOPT_FAULTS] environment variable (read once, on
    first query) or programmatically via {!configure}/{!configure_string}.
    Sites in the engine, the Par pool, the oracle, the solver, and the
    trainer ask {!fire}/{!inject} whether to misbehave; with no configuration
    the checks cost one atomic load.

    Spec grammar (comma-separated):
    [seed=INT] and [KIND=RATE[:PARAM]] clauses, where [KIND] is one of
    [solver_timeout], [parse_corrupt], [verify_delay], [worker_exn],
    [oracle_exn], [trainer_abort], [worker_hang], [worker_oom],
    [queue_full], [slow_drain], [client_disconnect],
    [store_corrupt], [store_stale], [corpus_corrupt], [miner_stall];
    [RATE] is in [0, 1]; [PARAM] is
    kind-specific (seconds for [verify_delay] and [slow_drain], the last
    completed step for [trainer_abort]).

    Determinism: the n-th check of a kind fires iff a hash of
    (seed, kind, n) falls under the rate, so identical specs and call
    sequences see identical faults. *)

type kind =
  | Solver_timeout  (** the SAT budget is reported exhausted without solving *)
  | Parse_corrupt  (** the engine's parse site raises {!Injected} *)
  | Verify_delay  (** the engine sleeps [param] seconds before verifying *)
  | Worker_exn  (** a Par pool task raises {!Injected} *)
  | Oracle_exn  (** the concrete I/O oracle raises {!Injected} *)
  | Trainer_abort  (** the trainer aborts after step [param] (kill simulation) *)
  | Worker_hang
      (** the vproc child busy-spins on a frame, exercising the parent's
          SIGKILL hard-deadline path *)
  | Worker_oom
      (** the vproc child allocation-bombs into its [setrlimit] address-space
          cap, exercising the crash/respawn path *)
  | Queue_full
      (** the serve layer's bounded queue reports itself full even when it is
          not, exercising the shed/reject path under admission pressure *)
  | Slow_drain
      (** a serve worker thread stalls [param] seconds before dispatching its
          dequeued request, backing the queue up and exercising in-queue
          deadline expiry and drain timeouts *)
  | Client_disconnect
      (** the submitting client vanishes while its request is queued; the
          serve layer must drop the work instead of verifying for nobody *)
  | Store_corrupt
      (** the verdict store treats a present entry as CRC-damaged: a counted
          miss, forcing a fresh verification — never a wrong verdict *)
  | Store_stale
      (** the verdict store treats a present entry as written under a
          foreign semantics version: a counted, skipped miss *)
  | Corpus_corrupt
      (** the adversarial corpus scan treats a present case as damaged: a
          counted skipped case, never a crash or a wrong replay *)
  | Miner_stall
      (** the miner loop stalls [param] seconds on a candidate, exercising
          the mining budget's overrun accounting *)

exception Injected of string
(** The exception every exception-kind site raises; the crash-proof reward
    path must convert it (like any other exception) into a counted
    engine-failure verdict. *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

type spec = { rate : float; param : float }
type config = { seed : int; specs : spec option array }

val parse : string -> (config, string) result
(** Parse a fault spec string (the [VERIOPT_FAULTS] grammar). *)

val configure : config -> unit
val configure_string : string -> (unit, string) result
val disable : unit -> unit
(** Turn all injection off (and stop consulting the environment). *)

val config : unit -> config option
(** The active configuration, if any (reading [VERIOPT_FAULTS] on first
    query).  Lets the vproc pool ship the parent's live spec to forked
    workers inside each request envelope. *)

val enabled : unit -> bool

val fire : kind -> bool
(** Deterministic coin for one site visit; counts the check and (when true)
    the fire.  Always [false] when the kind is unconfigured. *)

val param : kind -> float
(** The configured kind parameter, [0.] when unset. *)

val inject : kind -> site:string -> unit
(** [fire] and raise {!Injected} naming the site. *)

val abort_after : unit -> int option
(** The [trainer_abort] step parameter, when configured. *)

type counters = { kind : kind; checks : int; fires : int }

val stats : unit -> counters list
val reset_stats : unit -> unit

(** EINTR-safe wrappers around the blocking syscalls {!Vproc} lives on. *)

let retry_count = Atomic.make 0

let retries () = Atomic.get retry_count
let reset_retries () = Atomic.set retry_count 0

let rec read fd buf pos len =
  try Unix.read fd buf pos len
  with Unix.Unix_error (Unix.EINTR, _, _) ->
    Atomic.incr retry_count;
    read fd buf pos len

let rec write fd buf pos len =
  try Unix.write fd buf pos len
  with Unix.Unix_error (Unix.EINTR, _, _) ->
    Atomic.incr retry_count;
    write fd buf pos len

let rec read_fully fd buf pos len =
  if len = 0 then true
  else
    match read fd buf pos len with
    | 0 -> false (* EOF before the frame was complete *)
    | n -> read_fully fd buf (pos + n) (len - n)

let rec write_fully fd buf pos len =
  if len > 0 then begin
    let n = write fd buf pos len in
    write_fully fd buf (pos + n) (len - n)
  end

let rec waitpid ?(flags = []) pid =
  try Unix.waitpid flags pid
  with Unix.Unix_error (Unix.EINTR, _, _) ->
    Atomic.incr retry_count;
    waitpid ~flags pid

(* [select] needs more than a bare retry: the timeout must be recomputed
   from the absolute deadline, or a stream of signals could stretch the
   wait indefinitely. *)
let rec wait_readable fd ~deadline =
  let timeout =
    match deadline with
    | None -> -1. (* negative = wait forever *)
    | Some d -> Float.max 0. (d -. Unix.gettimeofday ())
  in
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> `Timeout (* only reachable with a finite timeout *)
  | _ :: _, _, _ -> `Ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    Atomic.incr retry_count;
    wait_readable fd ~deadline

(** A fixed-size [Domain]-based work pool.

    [map] distributes list elements over the pool's worker domains and
    returns results in input order, so parallel evaluation is observationally
    identical to [List.map] whenever [f] is pure — the property the GRPO
    reward hot path relies on.

    The shared pool's size comes from [VERIOPT_JOBS] (default: the runtime's
    recommended domain count, capped at 8).  [VERIOPT_JOBS=1] disables
    parallelism entirely: no domains are spawned and [map = List.map].
    Nested [map] calls from inside a worker run sequentially rather than
    deadlocking on the pool's own queue. *)

type t

val create : jobs:int -> t
(** A pool of [jobs - 1] worker domains (the caller of {!map} participates,
    so [jobs] is the total parallelism).  [jobs <= 1] spawns nothing. *)

val shutdown : t -> unit
(** Stop and join the workers.  Subsequent [map] calls run sequentially. *)

val size : t -> int
(** The [jobs] the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] = [List.map f xs], computed on the pool.  Result order
    is deterministic (by input index).  If any [f x] raises, the first
    exception (in input order) is re-raised after all tasks settle. *)

val default_jobs : unit -> int
(** The shared pool's sizing rule: [VERIOPT_JOBS] when it parses as an
    integer [>= 1]; otherwise the runtime's recommended domain count capped
    at 8.  An invalid setting is reported once on stderr rather than
    silently degrading to sequential execution. *)

val shared : unit -> t
(** The process-wide pool, created on first use and sized by
    [VERIOPT_JOBS]; shut down automatically at exit. *)

val shared_jobs : unit -> int
(** Effective parallelism of the shared pool. *)

val run : ('a -> 'b) -> 'a list -> 'b list
(** [map (shared ()) f xs]. *)

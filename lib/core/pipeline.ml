(** End-to-end experiment pipeline: dataset, baselines, four-model training.

    The [quick] scale is sized so the whole reproduction (all tables and
    figures) runs in minutes on a laptop CPU; [full] approaches the paper's
    sample counts.  Everything is seeded and deterministic. *)

module Model = Veriopt_llm.Model
module Capability = Veriopt_llm.Capability
module Suite = Veriopt_data.Suite
module Trainer = Veriopt_rl.Trainer
module Engine = Veriopt_alive.Engine

type scale = {
  n_train : int;
  n_validation : int;
  opts : Trainer.options;
  verify_dataset : bool;
}

let quick =
  {
    n_train = 140;
    n_validation = 200;
    opts = { Trainer.default_options with Trainer.grpo_steps = 160; sft_epochs = 5 };
    verify_dataset = true;
  }

let full =
  {
    n_train = 2000;
    n_validation = 4386;
    opts = { Trainer.default_options with Trainer.grpo_steps = 1200; sft_epochs = 8 };
    verify_dataset = true;
  }

type artifacts = {
  scale : scale;
  train : Suite.sample list;
  validation : Suite.sample list;
  train_stats : Suite.stats;
  validation_stats : Suite.stats;
  base : Model.t; (* pretrained Qwen-3B surrogate *)
  zoo_sft : (string * Model.t) list; (* SFT baselines, parameter-size order *)
  llm_compiler : Model.t; (* no task-specific fine-tuning *)
  pipeline : Trainer.pipeline_result;
  u_max : float;
  engine : Engine.t; (* the verification engine every stage shared *)
}

(** Build every model the evaluation needs.  [progress] is called with a
    stage name as work proceeds.  One tiered + cached verification [engine]
    backs every GRPO reward call here and is carried in the artifacts so
    evaluation and the bench harness keep hitting the same cache. *)
let build ?(scale = quick) ?(progress = fun (_ : string) -> ()) ?engine () : artifacts =
  let engine =
    match (engine, scale.opts.Trainer.isolate) with
    | Some e, _ -> e
    | None, Some i -> Engine.create ~isolate:i ()
    | None, None -> Engine.shared ()
  in
  progress "building training set";
  let train_ds = Suite.training ~verify:scale.verify_dataset ~n:scale.n_train () in
  progress "building validation set";
  let val_ds = Suite.validation ~verify:scale.verify_dataset ~n:scale.n_validation () in
  let train = train_ds.Suite.samples and validation = val_ds.Suite.samples in
  let base = Capability.base_3b () in
  progress "SFT baselines";
  let zoo_sft =
    List.filter_map
      (fun (name, _) ->
        if name = "LLM-Compiler-7B" then None
        else
          let m = Capability.of_zoo name in
          Some (name, Trainer.sft_baseline ~opts:scale.opts m train))
      Capability.zoo
  in
  let llm_compiler = Capability.llm_compiler_7b () in
  progress "stage 1: Model-Zero (GRPO, generic prompts)";
  let stage1 = Trainer.train_model_zero ~opts:scale.opts ~engine base train in
  progress "stage 2a: Warm-up (SFT on diagnostic-augmented samples)";
  let warm = Trainer.warm_up ~opts:scale.opts base train stage1.Trainer.failures in
  progress "stage 2b: Model-Correctness (GRPO, augmented prompts)";
  let stage2 = Trainer.train_correctness ~opts:scale.opts ~engine warm train in
  progress "stage 3: Model-Latency (GRPO, latency reward)";
  let stage3 =
    Trainer.train_latency ~opts:scale.opts ~engine stage2.Trainer.model_correctness train
  in
  {
    scale;
    train;
    validation;
    train_stats = train_ds.Suite.stats;
    validation_stats = val_ds.Suite.stats;
    base;
    zoo_sft;
    llm_compiler;
    pipeline = { Trainer.base; stage1; warm; stage2; stage3 };
    u_max = Veriopt_rl.Reward.u_max_of_samples train;
    engine;
  }

(** Fork-based verification worker pool: hard kill, rlimits, respawn. *)

module Fault = Veriopt_fault.Fault

external setrlimit_raw : int -> int -> int = "veriopt_vproc_setrlimit"

type failure =
  | Killed of float
  | Crashed of string
  | Handler_raised of string
  | Unavailable of string

let failure_message = function
  | Killed s -> Printf.sprintf "worker SIGKILLed at hard deadline after %.0fms" (1000. *. s)
  | Crashed reason -> "worker crashed: " ^ reason
  | Handler_raised msg -> "worker handler raised: " ^ msg
  | Unavailable reason -> "worker unavailable: " ^ reason

let available () =
  Sys.os_type = "Unix"
  && (match Sys.getenv_opt "VERIOPT_NO_FORK" with None | Some "" -> true | Some _ -> false)

(* ------------------------------------------------------------------ *)
(* Counters (Solver.stats idiom: process-wide atomics). *)

type stats = {
  spawned : int;
  killed : int;
  crashed : int;
  respawned : int;
  frames : int;
  cancelled : int;
}

let spawned_c = Atomic.make 0
let killed_c = Atomic.make 0
let crashed_c = Atomic.make 0
let respawned_c = Atomic.make 0
let frames_c = Atomic.make 0
let cancelled_c = Atomic.make 0

let stats () =
  {
    spawned = Atomic.get spawned_c;
    killed = Atomic.get killed_c;
    crashed = Atomic.get crashed_c;
    respawned = Atomic.get respawned_c;
    frames = Atomic.get frames_c;
    cancelled = Atomic.get cancelled_c;
  }

let reset_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ spawned_c; killed_c; crashed_c; respawned_c; frames_c; cancelled_c ]

(* ------------------------------------------------------------------ *)
(* Pool structure.

   OCaml 5 forbids [Unix.fork] once any domain has EVER been created in the
   process — so the parent cannot fork replacement workers mid-training
   (the Par pool's domains are up by then).  Instead each slot gets a
   single-threaded SUPERVISOR process, forked once at pool creation (while
   the runtime is still domain-free): the supervisor forks the actual
   worker, [waitpid]s it, and forks a replacement whenever it dies — its
   own runtime never sees a domain, so its forks always succeed.  The
   parent talks straight to the worker over the slot's pipes (both ends
   live in the supervisor and are inherited by every replacement), and
   SIGKILLs the worker directly at the hard deadline. *)

type slot = {
  sup_pid : int;
  req_w : Unix.file_descr; (* parent -> worker requests *)
  resp_r : Unix.file_descr; (* worker -> parent responses + pid notices *)
  mutable worker_pid : int option; (* latest pid notice *)
  mutable expect_respawn : bool; (* we killed the worker; the next pid notice is routine *)
  mutable seq : int; (* request sequence, for skipping stale responses *)
  mutable failures : int; (* consecutive, for the backoff schedule *)
  mutable not_before : float; (* earliest next dispatch to this slot *)
  mutable dead : bool; (* the supervisor itself is gone; terminal *)
}

type ('req, 'resp) t = {
  n_jobs : int;
  slots : slot option array; (* None: the initial supervisor fork failed *)
  free : int Queue.t;
  mutex : Mutex.t;
  free_cond : Condition.t;
  backoff_base : float;
  backoff_max : float;
  max_call_s : float;
  mutable closed : bool;
}

(* The request envelope carries the parent's live fault config so chaos
   specs configured after the workers forked still reach them. *)
type 'req request_frame = { seq : int; payload : 'req; faults : Fault.config option }

let jobs t = t.n_jobs

let slots_available t =
  Array.fold_left
    (fun n -> function Some s when not s.dead -> n + 1 | _ -> n)
    0 t.slots

(* ------------------------------------------------------------------ *)
(* Fork hygiene.  Every parent-side pipe fd (across all pools) is listed
   here; a fresh supervisor closes them all, so one worker's EOF can never
   be deferred by a sibling that inherited the write end. *)

let fd_registry : Unix.file_descr list ref = ref []
let fd_registry_mutex = Mutex.create ()

let registry_add fds =
  Mutex.lock fd_registry_mutex;
  fd_registry := fds @ !fd_registry;
  Mutex.unlock fd_registry_mutex

let registry_remove fds =
  Mutex.lock fd_registry_mutex;
  fd_registry := List.filter (fun fd -> not (List.memq fd fds)) !fd_registry;
  Mutex.unlock fd_registry_mutex

(* A dead peer must surface as EPIPE on write, not kill the process. *)
let sigpipe_ignored =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Frame protocol: "VPRC" magic, 1-byte type, 4-byte big-endian length,
   Marshal payload.  Types: 'R' request, 'r' response, 'P' pid notice (a
   fresh worker announcing itself).  The magic lets the parent resynchronize
   after a worker died mid-write (torn frame). *)

let frame_magic = Bytes.of_string "VPRC"
let max_frame = 1 lsl 30

let write_frame fd ty payload =
  let len = Bytes.length payload in
  (* one buffer, one write: small frames stay atomic (PIPE_BUF) *)
  let buf = Bytes.create (9 + len) in
  Bytes.blit frame_magic 0 buf 0 4;
  Bytes.set buf 4 ty;
  Bytes.set_int32_be buf 5 (Int32.of_int len);
  Bytes.blit payload 0 buf 9 len;
  Eintr.write_fully fd buf 0 (9 + len)

(* Parent-side read under the hard deadline: select, then read, looping
   over short reads with the remaining time recomputed each round. *)
let rec read_exact fd ~deadline buf pos len =
  if len = 0 then `Ok
  else
    match Eintr.wait_readable fd ~deadline with
    | `Timeout -> `Timeout
    | `Ready -> (
      match Eintr.read fd buf pos len with
      | 0 -> `Eof
      | n -> read_exact fd ~deadline buf (pos + n) (len - n)
      | exception Unix.Unix_error _ -> `Eof)

let rec read_frame_parent fd ~deadline : [ `Frame of char * bytes | `Timeout | `Eof ] =
  let win = Bytes.create 4 in
  match read_exact fd ~deadline win 0 4 with
  | (`Timeout | `Eof) as e -> e
  | `Ok ->
    let rec sync () =
      if Bytes.equal win frame_magic then `Ok
      else begin
        (* torn frame: scan forward one byte at a time for the next magic *)
        Bytes.blit win 1 win 0 3;
        match read_exact fd ~deadline win 3 1 with
        | `Ok -> sync ()
        | (`Timeout | `Eof) as e -> e
      end
    in
    (match sync () with
    | (`Timeout | `Eof) as e -> e
    | `Ok -> (
      let hdr = Bytes.create 5 in
      match read_exact fd ~deadline hdr 0 5 with
      | (`Timeout | `Eof) as e -> e
      | `Ok ->
        let ty = Bytes.get hdr 0 in
        let len = Int32.to_int (Bytes.get_int32_be hdr 1) in
        if len < 0 || len > max_frame then
          (* a payload byte happened to spell the magic; keep scanning *)
          read_frame_parent fd ~deadline
        else
          let data = Bytes.create len in
          (match read_exact fd ~deadline data 0 len with
          | (`Timeout | `Eof) as e -> e
          | `Ok -> `Frame (ty, data))))

(* ------------------------------------------------------------------ *)
(* Worker side (grandchild of the pool's creator) *)

let apply_rlimits ~mem_headroom_mb ~cpu_limit_s =
  (if mem_headroom_mb > 0 then
     (* RLIMIT_AS is the total address space, and the OCaml 5 runtime
        reserves a large region up front — so the cap is expressed as
        headroom over the image inherited from the parent.  No /proc means
        no memory cap, never a broken worker. *)
     match
       let ic = open_in "/proc/self/statm" in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           match String.split_on_char ' ' (input_line ic) with
           | pages :: _ -> int_of_string_opt pages
           | [] -> None)
     with
     | Some pages -> ignore (setrlimit_raw 0 ((pages * 4096) + (mem_headroom_mb * 1024 * 1024)))
     | None | (exception _) -> ());
  if cpu_limit_s > 0 then ignore (setrlimit_raw 1 cpu_limit_s)

(* Worker-side frame read: the parent never writes torn frames (it only
   dies whole-process, which shows up as EOF), so no resync needed. *)
let read_frame_worker fd : (char * bytes) option =
  let hdr = Bytes.create 9 in
  if not (Eintr.read_fully fd hdr 0 9) then None
  else if not (Bytes.equal (Bytes.sub hdr 0 4) frame_magic) then None
  else
    let len = Int32.to_int (Bytes.get_int32_be hdr 5) in
    if len < 0 || len > max_frame then None
    else
      let data = Bytes.create len in
      if not (Eintr.read_fully fd data 0 len) then None
      else Some (Bytes.get hdr 4, data)

let worker_main ~(handler : 'req -> 'resp) ~mem_headroom_mb ~cpu_limit_s req_r resp_w : 'a =
  apply_rlimits ~mem_headroom_mb ~cpu_limit_s;
  write_frame resp_w 'P' (Marshal.to_bytes (Unix.getpid ()) []);
  let rec loop () =
    match read_frame_worker req_r with
    | None -> Unix._exit 0 (* EOF: pool shutdown (or parent death) *)
    | Some ('R', data) ->
      let fr : 'req request_frame = Marshal.from_bytes data 0 in
      (match fr.faults with Some c -> Fault.configure c | None -> Fault.disable ());
      (* fault sites: the two worker-death shapes the sandbox exists for.
         worker_hang busy-spins (only SIGKILL ends it); worker_oom
         allocates until the RLIMIT_AS cap kills the child. *)
      if Fault.fire Fault.Worker_hang then
        while true do
          ignore (Sys.opaque_identity 0)
        done;
      if Fault.fire Fault.Worker_oom then begin
        let hold = ref [] in
        while true do
          hold := Bytes.create (1 lsl 20) :: !hold
        done
      end;
      let resp : ('resp, string) result =
        try Ok (handler fr.payload) with
        | (Stack_overflow | Out_of_memory) as e -> raise e (* die; the supervisor respawns *)
        | e -> Error (Printexc.to_string e)
      in
      write_frame resp_w 'r' (Marshal.to_bytes (fr.seq, resp) []);
      loop ()
    | Some _ -> Unix._exit 2
  in
  (* any escape — OOM included — becomes a visible nonzero exit, and
     [Unix._exit] skips the parent's inherited at_exit handlers *)
  try loop () with _ -> Unix._exit 2

(* ------------------------------------------------------------------ *)
(* Supervisor side (child of the pool's creator, parent of every worker
   this slot will ever run).  Single-threaded, no domains ever: its forks
   are always legal, unlike the trainer's once it has spawned domains. *)

let supervisor_main ~handler ~mem_headroom_mb ~cpu_limit_s ~backoff_base ~backoff_max req_r
    resp_w : 'a =
  (* drop every registered parent-side pipe end inherited at our fork *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !fd_registry;
  let delay = ref 0. in
  let rec loop () =
    if Unix.getppid () = 1 then Unix._exit 0 (* orphaned: the trainer is gone *)
    else begin
      if !delay > 0. then Unix.sleepf !delay;
      let t0 = Unix.gettimeofday () in
      match Unix.fork () with
      | 0 -> worker_main ~handler ~mem_headroom_mb ~cpu_limit_s req_r resp_w
      | pid -> (
        match Eintr.waitpid pid with
        | _, Unix.WEXITED 0 -> Unix._exit 0 (* clean EOF shutdown: follow suit *)
        | _, _ | (exception _) ->
          (* killed, OOMed, or crashed: respawn with exponential backoff,
             resetting once a worker survives a full second *)
          let lived = Unix.gettimeofday () -. t0 in
          delay :=
            (if lived >= 1. then 0.
             else Float.min backoff_max (Float.max backoff_base (!delay *. 2.)));
          loop ())
      | exception _ -> Unix._exit 3
    end
  in
  try loop () with _ -> Unix._exit 3

(* ------------------------------------------------------------------ *)
(* Parent side *)

let spawn_slot ~handler ~mem_headroom_mb ~cpu_limit_s ~backoff_base ~backoff_max : slot option
    =
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  registry_add [ req_w; resp_r ];
  match Unix.fork () with
  | 0 ->
    supervisor_main ~handler ~mem_headroom_mb ~cpu_limit_s ~backoff_base ~backoff_max req_r
      resp_w
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    Some
      {
        sup_pid = pid;
        req_w;
        resp_r;
        worker_pid = None;
        expect_respawn = false;
        seq = 0;
        failures = 0;
        not_before = 0.;
        dead = false;
      }
  | exception _ ->
    (* typically: a domain has already been created in this process *)
    registry_remove [ req_w; resp_r ];
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ req_r; req_w; resp_r; resp_w ];
    None

(* Record a pid notice: every one is a fork ([spawned]); every one after the
   first on a slot replaced a dead worker ([respawned]). *)
let note_pid (slot : slot) (data : bytes) : [ `Initial | `Expected_respawn | `Died_mid_call ]
    =
  let p : int = Marshal.from_bytes data 0 in
  Atomic.incr spawned_c;
  let prev = slot.worker_pid in
  slot.worker_pid <- Some p;
  match prev with
  | None -> `Initial
  | Some _ when slot.expect_respawn ->
    Atomic.incr respawned_c;
    slot.expect_respawn <- false;
    `Expected_respawn
  | Some _ ->
    Atomic.incr respawned_c;
    `Died_mid_call

let acquire (t : _ t) : int option =
  Mutex.lock t.mutex;
  while Queue.is_empty t.free && not t.closed do
    Condition.wait t.free_cond t.mutex
  done;
  let r = if t.closed then None else Some (Queue.pop t.free) in
  Mutex.unlock t.mutex;
  r

let release (t : _ t) (idx : int) =
  Mutex.lock t.mutex;
  Queue.push idx t.free;
  (* broadcast, not signal: an [acquire_many] waiter may need several
     releases before its predicate holds, and a woken single-slot waiter
     would otherwise swallow the wakeup *)
  Condition.broadcast t.free_cond;
  Mutex.unlock t.mutex

(* Atomically acquire [n] slots — all or nothing, so two concurrent races
   can never deadlock each other holding partial sets. *)
let acquire_many (t : _ t) (n : int) : int list option =
  Mutex.lock t.mutex;
  while Queue.length t.free < n && not t.closed do
    Condition.wait t.free_cond t.mutex
  done;
  let r =
    if t.closed then None else Some (List.init n (fun _ -> Queue.pop t.free))
  in
  Mutex.unlock t.mutex;
  r

let call ?kill_at (t : ('req, 'resp) t) (req : 'req) : ('resp, failure) result =
  if t.closed then Error (Unavailable "pool is shut down")
  else
    match acquire t with
    | None -> Error (Unavailable "pool is shut down")
    | Some idx -> (
      Fun.protect ~finally:(fun () -> release t idx) @@ fun () ->
      match t.slots.(idx) with
      | None -> Error (Unavailable "worker slot failed to start (fork unavailable)")
      | Some slot when slot.dead -> Error (Unavailable "worker supervisor died")
      | Some slot -> (
        (* failure backoff: hold dispatch to a freshly-failed slot *)
        let wait = slot.not_before -. Unix.gettimeofday () in
        if wait > 0. then Unix.sleepf wait;
        slot.seq <- slot.seq + 1;
        let seq = slot.seq in
        let started = Unix.gettimeofday () in
        let deadline =
          match kill_at with
          | Some _ as d -> d
          | None -> if t.max_call_s > 0. then Some (started +. t.max_call_s) else None
        in
        let note_failure () =
          slot.failures <- slot.failures + 1;
          let delay =
            Float.min t.backoff_max
              (t.backoff_base *. (2. ** float_of_int (slot.failures - 1)))
          in
          slot.not_before <- Unix.gettimeofday () +. delay
        in
        let killed () =
          Atomic.incr killed_c;
          (match slot.worker_pid with
          | Some p -> ( try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ())
          | None -> ());
          slot.expect_respawn <- true;
          note_failure ();
          Error (Killed (Unix.gettimeofday () -. started))
        in
        let crashed reason =
          Atomic.incr crashed_c;
          note_failure ();
          Error (Crashed reason)
        in
        match
          write_frame slot.req_w 'R'
            (Marshal.to_bytes { seq; payload = req; faults = Fault.config () } [])
        with
        | exception Unix.Unix_error (e, _, _) ->
          slot.dead <- true;
          crashed ("request write failed: " ^ Unix.error_message e)
        | () ->
          let rec await () =
            match read_frame_parent slot.resp_r ~deadline with
            | `Timeout -> killed ()
            | `Eof ->
              slot.dead <- true;
              crashed "worker and supervisor gone (EOF)"
            | `Frame ('P', data) -> (
              match note_pid slot data with
              | `Initial | `Expected_respawn -> await ()
              | `Died_mid_call -> crashed "worker died mid-call (respawned)")
            | `Frame ('r', data) -> (
              match (Marshal.from_bytes data 0 : int * ('resp, string) result) with
              | exception _ -> crashed "corrupt response payload"
              | s, _ when s < seq -> await () (* stale answer to a pre-kill request *)
              | s, _ when s > seq -> crashed "response sequence desync"
              | _, r -> (
                slot.failures <- 0;
                Atomic.incr frames_c;
                match r with
                | Ok v -> Ok v
                | Error msg ->
                  (* the handler raised but the worker itself survived *)
                  Error (Handler_raised msg)))
            | `Frame (_, _) -> await () (* unknown frame type: ignore *)
          in
          await ()))

(* ------------------------------------------------------------------ *)
(* Portfolio racing: one request per member, dispatched to distinct slots
   simultaneously; the caller's [decide] inspects each response as it lands
   and declares the winner, at which point every still-running member is
   SIGKILLed (cancellation, not failure: no backoff penalty — the
   supervisor respawns the worker as usual). *)

type 'resp race_member =
  | Race_done of 'resp * float
  | Race_cancelled of float
  | Race_failed of failure

let slot_note_failure (t : _ t) (slot : slot) =
  slot.failures <- slot.failures + 1;
  let delay =
    Float.min t.backoff_max (t.backoff_base *. (2. ** float_of_int (slot.failures - 1)))
  in
  slot.not_before <- Unix.gettimeofday () +. delay

let slot_sigkill (slot : slot) =
  (match slot.worker_pid with
  | Some p -> ( try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ())
  | None -> ());
  slot.expect_respawn <- true

let call_race ?kill_at ~(decide : int -> 'resp -> [ `Win | `Continue ])
    (t : ('req, 'resp) t) (reqs : 'req list) : ('resp race_member array, failure) result =
  if t.closed then Error (Unavailable "pool is shut down")
  else begin
    let reqs = Array.of_list reqs in
    let n = Array.length reqs in
    if n = 0 then Ok [||]
    else begin
      let n_take = min n t.n_jobs in
      match acquire_many t n_take with
      | None -> Error (Unavailable "pool is shut down")
      | Some idxs ->
        Fun.protect ~finally:(fun () -> List.iter (release t) idxs) @@ fun () ->
        let started = Unix.gettimeofday () in
        let deadline =
          match kill_at with
          | Some _ as d -> d
          | None -> if t.max_call_s > 0. then Some (started +. t.max_call_s) else None
        in
        let outcome : 'resp race_member option array = Array.make n None in
        let slots : slot option array = Array.make n None in
        List.iteri
          (fun i idx ->
            match t.slots.(idx) with
            | Some slot when not slot.dead -> slots.(i) <- Some slot
            | _ -> outcome.(i) <- Some (Race_failed (Unavailable "worker slot unavailable")))
          idxs;
        for i = n_take to n - 1 do
          (* more members than slots: the engine sizes the pool to the
             portfolio, so this is defensive, not a normal path *)
          outcome.(i) <- Some (Race_failed (Unavailable "more members than pool slots"))
        done;
        (* dispatch every member before reading anything *)
        Array.iteri
          (fun i (slot_opt : slot option) ->
            match slot_opt with
            | None -> ()
            | Some _ when outcome.(i) <> None -> ()
            | Some slot -> (
              slot.seq <- slot.seq + 1;
              match
                write_frame slot.req_w 'R'
                  (Marshal.to_bytes
                     { seq = slot.seq; payload = reqs.(i); faults = Fault.config () }
                     [])
              with
              | () -> ()
              | exception Unix.Unix_error (e, _, _) ->
                slot.dead <- true;
                Atomic.incr crashed_c;
                slot_note_failure t slot;
                outcome.(i) <-
                  Some (Race_failed (Crashed ("request write failed: " ^ Unix.error_message e)))))
          slots;
        let winner = ref false in
        let all_done () = Array.for_all (fun o -> o <> None) outcome in
        let fail i slot f =
          slot_note_failure t slot;
          outcome.(i) <- Some (Race_failed f)
        in
        while (not !winner) && not (all_done ()) do
          let now = Unix.gettimeofday () in
          match deadline with
          | Some d when now > d ->
            (* hard deadline: every still-running member is killed *)
            Array.iteri
              (fun i o ->
                if o = None then begin
                  (match slots.(i) with
                  | Some slot ->
                    Atomic.incr killed_c;
                    slot_sigkill slot;
                    slot_note_failure t slot
                  | None -> ());
                  outcome.(i) <- Some (Race_failed (Killed (now -. started)))
                end)
              outcome
          | _ -> (
            let fds =
              Array.to_list slots
              |> List.filteri (fun i _ -> outcome.(i) = None)
              |> List.filter_map (Option.map (fun s -> s.resp_r))
            in
            let tv =
              match deadline with
              | Some d -> Float.max 0.01 (Float.min 0.5 (d -. now))
              | None -> 0.5
            in
            match Unix.select fds [] [] tv with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | ready, _, _ ->
              List.iter
                (fun fd ->
                  if not !winner then
                    Array.iteri
                      (fun i (slot_opt : slot option) ->
                        match slot_opt with
                        | Some slot when slot.resp_r == fd && outcome.(i) = None -> (
                          (* the frame's bytes are in flight: give the worker a
                             bounded window to finish writing it *)
                          let read_by = Some (Unix.gettimeofday () +. 5.) in
                          match read_frame_parent slot.resp_r ~deadline:read_by with
                          | `Timeout ->
                            Atomic.incr killed_c;
                            slot_sigkill slot;
                            fail i slot (Killed (Unix.gettimeofday () -. started))
                          | `Eof ->
                            slot.dead <- true;
                            Atomic.incr crashed_c;
                            fail i slot (Crashed "worker and supervisor gone (EOF)")
                          | `Frame ('P', data) -> (
                            match note_pid slot data with
                            | `Initial | `Expected_respawn -> ()
                            | `Died_mid_call ->
                              Atomic.incr crashed_c;
                              fail i slot (Crashed "worker died mid-call (respawned)"))
                          | `Frame ('r', data) -> (
                            match
                              (Marshal.from_bytes data 0 : int * ('resp, string) result)
                            with
                            | exception _ ->
                              Atomic.incr crashed_c;
                              fail i slot (Crashed "corrupt response payload")
                            | s, _ when s < slot.seq -> () (* stale pre-kill answer *)
                            | s, _ when s > slot.seq ->
                              Atomic.incr crashed_c;
                              fail i slot (Crashed "response sequence desync")
                            | _, Error msg ->
                              slot.failures <- 0;
                              Atomic.incr frames_c;
                              outcome.(i) <- Some (Race_failed (Handler_raised msg))
                            | _, Ok v ->
                              slot.failures <- 0;
                              Atomic.incr frames_c;
                              outcome.(i) <-
                                Some (Race_done (v, Unix.gettimeofday () -. started));
                              if decide i v = `Win then winner := true)
                          | `Frame (_, _) -> () (* unknown frame type: ignore *))
                        | _ -> ())
                      slots)
                ready)
        done;
        (* a winner cancels every member still running *)
        if !winner then begin
          let now = Unix.gettimeofday () in
          Array.iteri
            (fun i o ->
              if o = None then begin
                (match slots.(i) with
                | Some slot ->
                  Atomic.incr cancelled_c;
                  slot_sigkill slot
                | None -> ());
                outcome.(i) <- Some (Race_cancelled (now -. started))
              end)
            outcome
        end;
        Ok (Array.map (function Some m -> m | None -> assert false) outcome)
    end
  end

(** Live workers still traceable through this pool's slots: a post-shutdown
    smoke check for orphans (always 0 after a clean {!shutdown}). *)
let orphans (t : _ t) =
  Array.fold_left
    (fun acc -> function
      | Some slot -> (
        match slot.worker_pid with
        | Some p -> ( match Unix.kill p 0 with () -> acc + 1 | exception Unix.Unix_error _ -> acc)
        | None -> acc)
      | None -> acc)
    0 t.slots

(* ------------------------------------------------------------------ *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some v -> v | None -> default)
  | None -> default

let create ?jobs ?mem_headroom_mb ?cpu_limit_s ?(backoff_base = 0.02) ?(backoff_max = 0.5)
    ?(max_call_s = 300.) ~handler () =
  Lazy.force sigpipe_ignored;
  let n_jobs = match jobs with Some j -> max 1 j | None -> max 1 (env_int "VERIOPT_PROC_JOBS" 2) in
  let mem_headroom_mb =
    match mem_headroom_mb with Some m -> m | None -> env_int "VERIOPT_PROC_MEM_MB" 512
  in
  let cpu_limit_s =
    match cpu_limit_s with Some c -> c | None -> env_int "VERIOPT_PROC_CPU_S" 300
  in
  let backoff_base = Float.max 0.001 backoff_base in
  let backoff_max = Float.max backoff_base backoff_max in
  let slots =
    Array.init n_jobs (fun _ ->
        if available () then
          spawn_slot ~handler ~mem_headroom_mb ~cpu_limit_s ~backoff_base ~backoff_max
        else None)
  in
  let t =
    {
      n_jobs;
      slots;
      free = Queue.create ();
      mutex = Mutex.create ();
      free_cond = Condition.create ();
      backoff_base;
      backoff_max;
      max_call_s;
      closed = false;
    }
  in
  for i = 0 to n_jobs - 1 do
    Queue.push i t.free
  done;
  (* best-effort startup drain: collect each slot's initial pid notice so
     [stats] and the first hard kill have a target before any call runs *)
  let drain_deadline = Some (Unix.gettimeofday () +. 5.) in
  Array.iter
    (function
      | Some slot when slot.worker_pid = None -> (
        match read_frame_parent slot.resp_r ~deadline:drain_deadline with
        | `Frame ('P', data) -> ignore (note_pid slot data)
        | `Frame _ | `Timeout -> ()
        | `Eof -> slot.dead <- true)
      | _ -> ())
    t.slots;
  t

let shutdown (t : _ t) =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.free_cond;
  (* Quiesce before teardown: every in-flight [call]/[call_race] holds its
     slots until its [Fun.protect] finalizer releases them, and race
     cancellation (loser SIGKILL + reap) happens before that release.  Waiting
     for the free queue to refill therefore orders the teardown below — and
     any post-shutdown [orphans] audit — strictly after all cancellation
     work.  Closing pipes under an active race used to make the racer's
     respawn logic fork fresh workers that teardown had already walked past,
     leaking them past the audit.  In-flight work is deadline-bounded
     ([max_call_s], race [kill_at]), so this wait terminates. *)
  while Queue.length t.free < t.n_jobs do
    Condition.wait t.free_cond t.mutex
  done;
  Mutex.unlock t.mutex;
  Array.iter
    (function
      | None -> ()
      | Some slot ->
        (* EOF first so workers and supervisors exit cleanly; then the kill
           unsticks any worker wedged mid-request *)
        (try Unix.close slot.req_w with Unix.Unix_error _ -> ());
        (match slot.worker_pid with
        | Some p -> ( try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ())
        | None -> ());
        (* The live worker may be a respawn whose pid notice nobody has read
           (its predecessor was hard-killed and the slot sat idle since), so
           the kill above may have hit an already-dead pid — and the
           [waitpid] below would then block forever behind a supervisor still
           nursing a wedged worker.  Every worker announces itself on
           [resp_r] before reading requests, so: drain announcements, killing
           each announced pid, until the supervisor line exits (EOF).  A
           respawn that finds the request pipe closed and drained exits 0 and
           takes the supervisor with it, so this converges; the deadline
           backstops a wedged supervisor, which then gets SIGKILLed itself,
           followed by a last announcement sweep (no forks can follow it). *)
        let rec drain_until_eof ~deadline =
          match read_frame_parent slot.resp_r ~deadline with
          | `Eof -> `Eof
          | `Timeout -> `Timeout
          | `Frame ('P', data) ->
            (match (Marshal.from_bytes data 0 : int) with
            | p ->
              slot.worker_pid <- Some p;
              ( try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ())
            | exception _ -> ());
            drain_until_eof ~deadline
          | `Frame _ -> drain_until_eof ~deadline
        in
        (match drain_until_eof ~deadline:(Some (Unix.gettimeofday () +. 10.)) with
        | `Eof -> ()
        | `Timeout ->
          (try Unix.kill slot.sup_pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (drain_until_eof ~deadline:(Some (Unix.gettimeofday () +. 5.))));
        (try ignore (Eintr.waitpid slot.sup_pid) with Unix.Unix_error _ -> ());
        (try Unix.close slot.resp_r with Unix.Unix_error _ -> ());
        registry_remove [ slot.req_w; slot.resp_r ])
    t.slots

(** End-to-end experiment pipeline: dataset, baselines, four-model training.
    Everything is seeded and deterministic. *)

module Model = Veriopt_llm.Model
module Suite = Veriopt_data.Suite
module Trainer = Veriopt_rl.Trainer

type scale = {
  n_train : int;
  n_validation : int;
  opts : Trainer.options;
  verify_dataset : bool;
}

val quick : scale
(** Minutes on a laptop CPU; the default bench scale. *)

val full : scale
(** Approaches the paper's sample counts (hours). *)

type artifacts = {
  scale : scale;
  train : Suite.sample list;
  validation : Suite.sample list;
  train_stats : Suite.stats;
  validation_stats : Suite.stats;
  base : Model.t;
  zoo_sft : (string * Model.t) list;
  llm_compiler : Model.t;
  pipeline : Trainer.pipeline_result;
  u_max : float;
  engine : Veriopt_alive.Engine.t;  (** shared by training, evaluation, bench *)
}

val build :
  ?scale:scale ->
  ?progress:(string -> unit) ->
  ?engine:Veriopt_alive.Engine.t ->
  unit ->
  artifacts
(** [engine] (default {!Veriopt_alive.Engine.shared}) backs every verifier
    call in training; it is returned in the artifacts so evaluation and the
    bench harness share its verdict cache and statistics. *)

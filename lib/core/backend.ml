(** The deployment backend: the paper's key safety observation (via
    LLM-Vectorizer) is that because the model transforms IR to IR, every
    output can be formally checked and the original kept on failure — the
    LLM need never be trusted.

    [optimize] is that wrapper: greedy decode, verify, fall back. *)

open Veriopt_ir
module Model = Veriopt_llm.Model
module Prompt = Veriopt_llm.Prompt
module Alive = Veriopt_alive.Alive
module Reward = Veriopt_rl.Reward

type outcome = {
  output : Ast.func; (* always safe to use *)
  used_model : bool; (* false = fell back to the input *)
  verdict : Alive.verdict;
  completion : string; (* the raw model completion, for inspection *)
}

(** Optimize one function with verified fallback. *)
let optimize ?(mode = Prompt.Generic) ?(max_conflicts = 100_000) (model : Model.t)
    (modul : Ast.modul) (f : Ast.func) : outcome =
  let sample_id = Hashtbl.hash (Printer.func_to_string f) in
  let g = Model.generate model ~mode ~rng:None ~sample_id modul f in
  let vc =
    Reward.verify_completion
      ~cfg:{ Reward.default_config with Reward.max_conflicts }
      modul ~src:f g.Model.completion
  in
  match (vc.Reward.verdict.Alive.category, vc.Reward.parsed) with
  | Alive.Equivalent, Some out ->
    { output = out; used_model = true; verdict = vc.Reward.verdict; completion = g.Model.completion }
  | _ ->
    { output = f; used_model = false; verdict = vc.Reward.verdict; completion = g.Model.completion }

(** Optimize with both the model and the handwritten instcombine pass,
    keeping whichever is better on the latency model — the configuration
    behind the paper's "net 17% over instcombine alone". *)
let optimize_best_of_both ?mode ?max_conflicts (model : Model.t) (modul : Ast.modul)
    (f : Ast.func) : Ast.func * outcome =
  let o = optimize ?mode ?max_conflicts model modul f in
  let ic, _ = Veriopt_passes.Pass_manager.instcombine modul f in
  let best =
    if Veriopt_cost.Latency.of_func o.output < Veriopt_cost.Latency.of_func ic then o.output
    else ic
  in
  (best, o)

(** Optimize every function of a module. *)
let optimize_module ?mode ?max_conflicts (model : Model.t) (m : Ast.modul) :
    Ast.modul * outcome list =
  let outs = List.map (fun f -> optimize ?mode ?max_conflicts model m f) m.Ast.funcs in
  ({ m with Ast.funcs = List.map (fun o -> o.output) outs }, outs)

(** Open-loop synthetic traffic for the serving layer.

    Open-loop means arrivals follow a fixed schedule (seeded exponential
    inter-arrival times at a configured rate) regardless of how the service
    keeps up — the hostile regime where naive queues melt down.  The
    generator submits every arrival without waiting, then awaits every
    ticket: the summary therefore accounts for {e all} offered requests,
    answered or rejected. *)

type cfg = {
  rate : float;  (** mean arrivals per second *)
  duration_s : float;  (** generation window (wall clock) *)
  seed : int;  (** replayable arrival schedule + query stream *)
  interactive_share : float;  (** fraction of arrivals marked [Interactive] *)
  interactive_deadline_s : float;
  bulk_deadline_s : float;
  dup_share : float;
      (** fraction of arrivals replaying a recent query (half verbatim, half
          alpha-renamed) — food for in-queue coalescing *)
  source : Workload.source;
      (** where fresh queries come from: the synthetic generators (default),
          deterministic replay of a mined adversarial corpus, or a mix *)
}

val default_cfg : cfg
(** 200 req/s for 2 s, seed 11, 25% interactive (100 ms budget), 2 s bulk
    budget, 30% duplicates, synthetic source. *)

type summary = {
  offered : int;  (** arrivals generated *)
  answered : int;  (** tickets resolved (always [offered] — the contract) *)
  verdict_equivalent : int;
  verdict_semantic : int;
  verdict_syntax : int;
  verdict_inconclusive : int;
  rejected : int;  (** all [Rejected] outcomes *)
  rejected_by : (string * int) list;  (** rejection reason -> count *)
  p50_interactive_ms : float;
  p99_interactive_ms : float;
  p50_bulk_ms : float;
  p99_bulk_ms : float;
  wall_s : float;  (** generation start to last resolution *)
  offered_rps : float;
  answered_rps : float;  (** verdict-bearing resolutions per second *)
  serve : Serve.stats;  (** service counters snapshotted at the end *)
}

val run : Serve.t -> cfg -> summary
(** Generate, submit, await everything, snapshot.  Does {e not} drain the
    service — callers decide when to shut down. *)

val calibrate : Serve.t -> seed:int -> n:int -> float
(** Closed-loop sustainable throughput estimate: drive [n] queries of the
    stream through the service one at a time (bulk class, generous
    deadlines) and return achieved queries/sec scaled by the worker count —
    the rate a replay must double to count as overload. *)

val pp_summary : Format.formatter -> summary -> unit

val json_of_summary : name:string -> extra:(string * string) list -> summary -> string
(** Flat JSON object for BENCH_serve.json: latency/throughput metrics, shed/
    coalesce/admission counters and any [extra] key/value pairs (values are
    spliced verbatim, so quote strings yourself). *)

(** Deterministic hostile-mix query generation for serving-layer load tests. *)

open Veriopt_ir

type query = {
  w_label : string;
  w_m : Ast.modul;
  w_src : Ast.func;
  w_tgt : Ast.func;
  w_unroll : int option;
  w_max_conflicts : int option;
}

let parse_pair src_text tgt_text =
  let m = Parser.parse_module src_text in
  let src = List.hd m.Ast.funcs in
  let tgt = List.hd (Parser.parse_module tgt_text).Ast.funcs in
  (m, src, tgt)

(* Data-dependent-exit mul-accumulate loop (the incr-bench hostile shape):
   %z iterations of s <- (s * y) + k.  Commuting the mul keeps it
   equivalent; the verifier must re-prove commutativity per unrolled
   frame. *)
let chain_text w mul k =
  Fmt.str
    "define i%d @f(i%d %%x, i%d %%y, i%d %%z) {\nentry:\n  br label %%h\nh:\n  %%i = phi i%d [ \
     0, %%entry ], [ %%i2, %%b ]\n  %%s = phi i%d [ %%x, %%entry ], [ %%s2, %%b ]\n  %%c = \
     icmp eq i%d %%i, %%z\n  br i1 %%c, label %%x, label %%b\nb:\n  %%m = mul i%d %s\n  %%s2 = \
     add i%d %%m, %d\n  %%i2 = add i%d %%i, 1\n  br label %%h\nx:\n  ret i%d %%s\n}"
    w w w w w w w w mul w k w w

let chain_pair w k =
  parse_pair (chain_text w "%s, %y" k) (chain_text w "%y, %s" k)

(* Straight-line mul commutativity, salted with a trailing add constant so
   each index is a distinct query to the cache. *)
let mulc_text w op k =
  Fmt.str
    "define i%d @f(i%d %%x, i%d %%y) {\nentry:\n  %%m = mul i%d %s\n  %%r = add i%d %%m, \
     %d\n  ret i%d %%r\n}"
    w w w w op w k w

let mulc_pair w k = parse_pair (mulc_text w "%x, %y" k) (mulc_text w "%y, %x" k)

let easy_text k op =
  Fmt.str "define i32 @f(i32 %%x) {\nentry:\n  %%r = %s i32 %%x, %d\n  ret i32 %%r\n}" op k

let easy_pair k = parse_pair (easy_text k "add") (easy_text k "add")
let wrong_pair k = parse_pair (easy_text k "add") (easy_text (k + 1) "add")

let count_text bound =
  Fmt.str
    "define i32 @f(i32 %%n) {\nentry:\n  br label %%h\nh:\n  %%i = phi i32 [ 0, %%entry ], [ \
     %%i2, %%b ]\n  %%c = icmp slt i32 %%i, %d\n  br i1 %%c, label %%b, label %%x\nb:\n  %%i2 \
     = add i32 %%i, 1\n  br label %%h\nx:\n  ret i32 %%i\n}"
    bound

let count_pair bound ret =
  parse_pair (count_text bound) (Fmt.str "define i32 @f(i32 %%n) {\nentry:\n  ret i32 %d\n}" ret)

let h seed index salt = Hashtbl.hash (seed, index, salt, "veriopt-serve-workload")

let make ~seed ~index : query =
  let q label (m, src, tgt) unroll max_conflicts =
    { w_label = label; w_m = m; w_src = src; w_tgt = tgt; w_unroll = unroll; w_max_conflicts = max_conflicts }
  in
  let pick = h seed index 0 mod 100 in
  if pick < 40 then
    q "mul-chain" (chain_pair 7 (3 + (h seed index 1 mod 97))) None (Some 4000)
  else if pick < 60 then
    q "mul-comm" (mulc_pair (8 + (h seed index 2 mod 2)) (h seed index 3 mod 211)) None (Some 4000)
  else if pick < 75 then q "easy" (easy_pair (h seed index 4 mod 251)) None None
  else if pick < 90 then q "wrong" (wrong_pair (h seed index 5 mod 251)) None None
  else q "count" (count_pair (1 + (h seed index 6 mod 3)) (1 + (h seed index 6 mod 3))) None None

let alpha_variant (qy : query) : query =
  { qy with w_src = Builder.renumber qy.w_src; w_tgt = Builder.renumber qy.w_tgt }

(* ------------------------------------------------------------------ *)
(* Replay sources: traffic drawn from a mined adversarial corpus instead of
   (or mixed with) the synthetic generators.  Selection is keyed on the same
   (seed, index) hash family as [make], so a replay stream is exactly as
   deterministic as a synthetic one. *)

type source =
  | Synthetic
  | Mined of query array
  | Mixed of query array * int

let of_pair ~label ?unroll ?max_conflicts m ~src ~tgt : query =
  {
    w_label = label;
    w_m = m;
    w_src = src;
    w_tgt = tgt;
    w_unroll = unroll;
    w_max_conflicts = max_conflicts;
  }

let make_from ~source ~seed ~index : query =
  let mined arr = arr.(h seed index 7 mod Array.length arr) in
  match source with
  | Synthetic -> make ~seed ~index
  | Mined arr -> if Array.length arr = 0 then make ~seed ~index else mined arr
  | Mixed (arr, pct) ->
    if Array.length arr > 0 && h seed index 8 mod 100 < pct then mined arr
    else make ~seed ~index

(** Deterministic hostile-mix query generation for serving-layer load tests.

    Mirrors the shapes the SAT and incremental benches established as
    adversarial — bit-blasted mul commutativity and data-dependent-exit
    mul-accumulate loops — salted with per-index constants so a long arrival
    stream keeps producing genuinely distinct verification work instead of
    collapsing into the verdict cache, plus cheap equivalent and
    tier-1-refutable wrong pairs for variety.  Everything is derived from
    [(seed, index)] hashes: the same seed replays the same traffic. *)

type query = {
  w_label : string;  (** shape tag, e.g. ["mul-chain"] *)
  w_m : Veriopt_ir.Ast.modul;
  w_src : Veriopt_ir.Ast.func;
  w_tgt : Veriopt_ir.Ast.func;
  w_unroll : int option;
  w_max_conflicts : int option;
}

val make : seed:int -> index:int -> query
(** The [index]-th query of stream [seed]: ~40% mul-accumulate chain loops,
    ~20% widened mul-commutativity pairs, the rest easy equivalents, wrong
    pairs and count loops — each salted by [index] so repeats are rare. *)

val alpha_variant : query -> query
(** The same query with alpha-renamed (renumbered) functions: textually
    different, alpha-equivalent — food for in-queue coalescing. *)

(** Where a traffic stream draws its queries from. *)
type source =
  | Synthetic  (** the generators above — the historical behaviour *)
  | Mined of query array  (** pure replay of a mined adversarial corpus *)
  | Mixed of query array * int
      (** [Mixed (corpus, pct)]: [pct]% of indices replay a mined case, the
          rest stay synthetic *)

val of_pair :
  label:string ->
  ?unroll:int ->
  ?max_conflicts:int ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  query
(** Wrap a decoded corpus case as a replayable query. *)

val make_from : source:source -> seed:int -> index:int -> query
(** [make_from ~source:Synthetic] is exactly {!make}.  Mined selection is
    keyed on the same [(seed, index)] hash family, so replay streams are as
    deterministic as synthetic ones; an empty corpus falls back to
    {!make}. *)

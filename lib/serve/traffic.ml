(** Open-loop synthetic traffic generation for the serving layer. *)

type cfg = {
  rate : float;
  duration_s : float;
  seed : int;
  interactive_share : float;
  interactive_deadline_s : float;
  bulk_deadline_s : float;
  dup_share : float;
  source : Workload.source; (* synthetic, mined-corpus replay, or a mix *)
}

let default_cfg =
  {
    rate = 200.;
    duration_s = 2.;
    seed = 11;
    interactive_share = 0.25;
    interactive_deadline_s = 0.1;
    bulk_deadline_s = 2.0;
    dup_share = 0.3;
    source = Workload.Synthetic;
  }

type summary = {
  offered : int;
  answered : int;
  verdict_equivalent : int;
  verdict_semantic : int;
  verdict_syntax : int;
  verdict_inconclusive : int;
  rejected : int;
  rejected_by : (string * int) list;
  p50_interactive_ms : float;
  p99_interactive_ms : float;
  p50_bulk_ms : float;
  p99_bulk_ms : float;
  wall_s : float;
  offered_rps : float;
  answered_rps : float;
  serve : Serve.stats;
}

(* Deterministic uniform in (0, 1]: same seed, same schedule. *)
let uniform seed i salt =
  let x = Hashtbl.hash (seed, i, salt, "veriopt-serve-traffic") land 0xFFFFFF in
  float_of_int (x + 1) /. 16777216.

let pctl (xs : float array) p =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    s.(max 0 (min (n - 1) idx))
  end

let run (sv : Serve.t) (cfg : cfg) : summary =
  let recent = Array.make 32 None in
  let n_recent = ref 0 in
  let tickets = ref [] in
  let offered = ref 0 in
  let start = Unix.gettimeofday () in
  let t_arrival = ref 0. in
  let i = ref 0 in
  (* open loop: walk the precomputable schedule, submitting at (or as soon
     as possible after) each arrival instant, never waiting on results *)
  while !t_arrival < cfg.duration_s do
    let target = start +. !t_arrival in
    let lag = target -. Unix.gettimeofday () in
    if lag > 0. then Unix.sleepf lag;
    let q =
      if !n_recent > 0 && uniform cfg.seed !i 1 < cfg.dup_share then begin
        let slot = Hashtbl.hash (cfg.seed, !i, "dup") mod min !n_recent 32 in
        match recent.(slot) with
        | Some q -> if uniform cfg.seed !i 2 < 0.5 then Workload.alpha_variant q else q
        | None -> Workload.make_from ~source:cfg.source ~seed:cfg.seed ~index:!i
      end
      else Workload.make_from ~source:cfg.source ~seed:cfg.seed ~index:!i
    in
    recent.(!n_recent mod 32) <- Some q;
    incr n_recent;
    let interactive = uniform cfg.seed !i 3 < cfg.interactive_share in
    let priority = if interactive then Serve.Interactive else Serve.Bulk in
    let deadline =
      Unix.gettimeofday ()
      +. (if interactive then cfg.interactive_deadline_s else cfg.bulk_deadline_s)
    in
    let tk =
      Serve.submit ~priority ~deadline ?unroll:q.Workload.w_unroll
        ?max_conflicts:q.Workload.w_max_conflicts sv q.Workload.w_m ~src:q.Workload.w_src
        ~tgt:q.Workload.w_tgt
    in
    tickets := (tk, priority) :: !tickets;
    incr offered;
    t_arrival := !t_arrival +. (-.log (uniform cfg.seed !i 0) /. Float.max 1e-3 cfg.rate);
    incr i
  done;
  (* the open loop is done generating; now account for every single ticket *)
  let eq = ref 0 and se = ref 0 and sy = ref 0 and inc = ref 0 and rej = ref 0 in
  let rej_by : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let lat_i = ref [] and lat_b = ref [] in
  let answered = ref 0 in
  List.iter
    (fun (tk, priority) ->
      let o = Serve.await tk in
      incr answered;
      let l = Serve.latency tk *. 1e3 in
      (match priority with
      | Serve.Interactive -> lat_i := l :: !lat_i
      | Serve.Bulk -> lat_b := l :: !lat_b);
      match o with
      | Serve.Verdict v -> (
        match v.Veriopt_alive.Alive.category with
        | Veriopt_alive.Alive.Equivalent -> incr eq
        | Veriopt_alive.Alive.Semantic_error -> incr se
        | Veriopt_alive.Alive.Syntax_error -> incr sy
        | Veriopt_alive.Alive.Inconclusive -> incr inc)
      | Serve.Rejected { reason; _ } ->
        incr rej;
        let k = Serve.reason_name reason in
        Hashtbl.replace rej_by k (1 + Option.value ~default:0 (Hashtbl.find_opt rej_by k)))
    (List.rev !tickets);
  let wall = Unix.gettimeofday () -. start in
  let lat_i = Array.of_list !lat_i and lat_b = Array.of_list !lat_b in
  let verdicts = !eq + !se + !sy + !inc in
  {
    offered = !offered;
    answered = !answered;
    verdict_equivalent = !eq;
    verdict_semantic = !se;
    verdict_syntax = !sy;
    verdict_inconclusive = !inc;
    rejected = !rej;
    rejected_by =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) rej_by []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    p50_interactive_ms = pctl lat_i 50.;
    p99_interactive_ms = pctl lat_i 99.;
    p50_bulk_ms = pctl lat_b 50.;
    p99_bulk_ms = pctl lat_b 99.;
    wall_s = wall;
    offered_rps = (if wall > 0. then float_of_int !offered /. wall else 0.);
    answered_rps = (if wall > 0. then float_of_int verdicts /. wall else 0.);
    serve = Serve.stats sv;
  }

let calibrate (sv : Serve.t) ~seed ~n : float =
  let n = max 1 n in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let q = Workload.make ~seed ~index:i in
    ignore
      (Serve.verify ~priority:Serve.Bulk
         ~deadline:(Unix.gettimeofday () +. 5.)
         ?unroll:q.Workload.w_unroll ?max_conflicts:q.Workload.w_max_conflicts sv
         q.Workload.w_m ~src:q.Workload.w_src ~tgt:q.Workload.w_tgt)
  done;
  let el = Float.max 1e-6 (Unix.gettimeofday () -. t0) in
  (* one closed-loop stream keeps one worker busy; capacity scales with the
     dispatcher pool *)
  float_of_int n /. el *. float_of_int (Serve.config sv).Serve.workers

let pp_summary ppf (s : summary) =
  let sv = s.serve in
  Fmt.pf ppf
    "  offered %d (%.0f rps) answered %d  verdicts eq/sem/syn/inc %d/%d/%d/%d  rejected %d@."
    s.offered s.offered_rps s.answered s.verdict_equivalent s.verdict_semantic s.verdict_syntax
    s.verdict_inconclusive s.rejected;
  List.iter (fun (k, v) -> Fmt.pf ppf "    rejected %-20s %d@." k v) s.rejected_by;
  Fmt.pf ppf "  latency ms: interactive p50 %.1f p99 %.1f | bulk p50 %.1f p99 %.1f@."
    s.p50_interactive_ms s.p99_interactive_ms s.p50_bulk_ms s.p99_bulk_ms;
  Fmt.pf ppf
    "  serve: engine calls %d coalesced %d admission refused %d breaker refused %d@."
    sv.Serve.engine_calls sv.Serve.coalesced sv.Serve.admission_refused sv.Serve.breaker_refused;
  Fmt.pf ppf "  shed: queue-full %d displaced %d expired %d drain %d | depth max %d@."
    sv.Serve.shed_queue_full sv.Serve.shed_displaced sv.Serve.shed_expired sv.Serve.shed_drain
    sv.Serve.depth_max;
  Fmt.pf ppf "  service ewma ms: interactive %.2f bulk %.2f@."
    (sv.Serve.service_ewma_interactive_s *. 1e3)
    (sv.Serve.service_ewma_bulk_s *. 1e3)

let json_of_summary ~name ~extra (s : summary) : string =
  let sv = s.serve in
  let b = Buffer.create 1024 in
  let kv fmt = Printf.ksprintf (fun line -> Buffer.add_string b line) fmt in
  kv "{\n";
  kv "  \"bench\": %S,\n" name;
  kv "  \"offered\": %d,\n" s.offered;
  kv "  \"answered\": %d,\n" s.answered;
  kv "  \"offered_rps\": %.1f,\n" s.offered_rps;
  kv "  \"answered_rps\": %.1f,\n" s.answered_rps;
  kv "  \"wall_s\": %.3f,\n" s.wall_s;
  kv "  \"p50_interactive_ms\": %.2f,\n" s.p50_interactive_ms;
  kv "  \"p99_interactive_ms\": %.2f,\n" s.p99_interactive_ms;
  kv "  \"p50_bulk_ms\": %.2f,\n" s.p50_bulk_ms;
  kv "  \"p99_bulk_ms\": %.2f,\n" s.p99_bulk_ms;
  kv "  \"verdicts\": { \"equivalent\": %d, \"semantic_error\": %d, \"syntax_error\": %d, \"inconclusive\": %d },\n"
    s.verdict_equivalent s.verdict_semantic s.verdict_syntax s.verdict_inconclusive;
  kv "  \"rejected\": %d,\n" s.rejected;
  kv "  \"rejected_by\": {%s},\n"
    (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf " \"%s\": %d" k v) s.rejected_by));
  kv "  \"engine_calls\": %d,\n" sv.Serve.engine_calls;
  kv "  \"coalesced\": %d,\n" sv.Serve.coalesced;
  kv "  \"admission_refused\": %d,\n" sv.Serve.admission_refused;
  kv "  \"breaker_refused\": %d,\n" sv.Serve.breaker_refused;
  kv "  \"shed_queue_full\": %d,\n" sv.Serve.shed_queue_full;
  kv "  \"shed_displaced\": %d,\n" sv.Serve.shed_displaced;
  kv "  \"shed_expired\": %d,\n" sv.Serve.shed_expired;
  kv "  \"shed_drain\": %d,\n" sv.Serve.shed_drain;
  kv "  \"rejected_draining\": %d,\n" sv.Serve.rejected_draining;
  kv "  \"client_disconnects\": %d,\n" sv.Serve.client_disconnects;
  kv "  \"depth_max\": %d,\n" sv.Serve.depth_max;
  kv "  \"service_ewma_interactive_ms\": %.3f,\n" (sv.Serve.service_ewma_interactive_s *. 1e3);
  kv "  \"service_ewma_bulk_ms\": %.3f%s\n"
    (sv.Serve.service_ewma_bulk_s *. 1e3)
    (if extra = [] then "" else ",");
  List.iteri
    (fun idx (k, v) ->
      kv "  \"%s\": %s%s\n" k v (if idx = List.length extra - 1 then "" else ","))
    extra;
  kv "}\n";
  Buffer.contents b

(** Overload-safe serving front end for the verification engine. *)

open Veriopt_ir
module Engine = Veriopt_alive.Engine
module Alive = Veriopt_alive.Alive
module Fault = Veriopt_fault.Fault

type priority = Interactive | Bulk

let priority_name = function Interactive -> "interactive" | Bulk -> "bulk"

type reject_reason =
  | Queue_full
  | Displaced
  | Deadline_unmeetable
  | Breaker_open
  | Expired
  | Draining
  | Disconnected

let reason_name = function
  | Queue_full -> "queue_full"
  | Displaced -> "displaced"
  | Deadline_unmeetable -> "deadline_unmeetable"
  | Breaker_open -> "breaker_open"
  | Expired -> "expired"
  | Draining -> "draining"
  | Disconnected -> "disconnected"

type outcome =
  | Verdict of Alive.verdict
  | Rejected of { reason : reject_reason; detail : string }

type config = {
  queue_capacity : int;
  workers : int;
  interactive_deadline_s : float;
  bulk_deadline_s : float;
  admission : bool;
  coalesce : bool;
}

let default_config =
  {
    queue_capacity = 256;
    workers = 4;
    interactive_deadline_s = 0.1;
    bulk_deadline_s = 2.0;
    admission = true;
    coalesce = true;
  }

(* One result cell per coalesce group; every waiter's ticket points at the
   group's cell, so fan-out is just a broadcast. *)
type cell = {
  cm : Mutex.t;
  cc : Condition.t;
  mutable c_result : outcome option;
  mutable c_done_at : float;
}

type ticket = { tk_cell : cell; tk_submitted : float }

type entry = {
  e_m : Ast.modul;
  e_src : Ast.func;
  e_tgt : Ast.func;
  e_unroll : int option;
  e_max_conflicts : int option;
  e_key : string option;
  mutable e_priority : priority;
  mutable e_deadline : float;
  mutable e_waiters : int;
  mutable e_state : [ `Queued | `Running | `Done ];
  e_cell : cell;
}

type drain_report = { forced_shed : int; drain_orphans : int }

type stats = {
  submitted_interactive : int;
  submitted_bulk : int;
  completed : int;
  engine_calls : int;
  coalesced : int;
  admission_refused : int;
  breaker_refused : int;
  shed_queue_full : int;
  shed_displaced : int;
  shed_expired : int;
  shed_drain : int;
  rejected_draining : int;
  client_disconnects : int;
  depth_interactive : int;
  depth_bulk : int;
  depth_max : int;
  inflight : int;
  service_ewma_interactive_s : float;
  service_ewma_bulk_s : float;
  store_hits : int;
  store_misses : int;
}

type t = {
  sv_engine : Engine.t;
  cfg : config;
  mutex : Mutex.t;
  not_empty : Condition.t;
  (* both queues sorted ascending by [e_deadline]: pop the most urgent, shed
     from the front (most expired) *)
  mutable q_int : entry list;
  mutable q_bulk : entry list;
  pending : (string, entry) Hashtbl.t;  (* coalesce key -> queued/running entry *)
  mutable inflight : int;
  mutable draining : bool;
  mutable stop : bool;
  drain_flag : bool Atomic.t;
  drain_mutex : Mutex.t;
  mutable drained : drain_report option;
  mutable threads : Thread.t list;
  (* counters (under [mutex]) *)
  mutable n_submitted_i : int;
  mutable n_submitted_b : int;
  mutable n_completed : int;
  mutable n_engine_calls : int;
  mutable n_coalesced : int;
  mutable n_admission_refused : int;
  mutable n_breaker_refused : int;
  mutable n_shed_queue_full : int;
  mutable n_shed_displaced : int;
  mutable n_shed_expired : int;
  mutable n_shed_drain : int;
  mutable n_rejected_draining : int;
  mutable n_client_disc : int;
  mutable n_depth_max : int;
  mutable ewma_i : float;
  mutable ewma_b : float;
}

let engine t = t.sv_engine
let config t = t.cfg
let now () = Unix.gettimeofday ()

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ------------------------------------------------------------------ *)
(* Tickets and cells *)

let new_cell () =
  { cm = Mutex.create (); cc = Condition.create (); c_result = None; c_done_at = 0. }

let resolve_cell (c : cell) (o : outcome) =
  Mutex.lock c.cm;
  if c.c_result = None then begin
    c.c_result <- Some o;
    c.c_done_at <- now ();
    Condition.broadcast c.cc
  end;
  Mutex.unlock c.cm

let rejected_ticket reason detail =
  let c = new_cell () in
  let t0 = now () in
  c.c_result <- Some (Rejected { reason; detail });
  c.c_done_at <- t0;
  { tk_cell = c; tk_submitted = t0 }

let await (tk : ticket) : outcome =
  let c = tk.tk_cell in
  Mutex.lock c.cm;
  while c.c_result = None do
    Condition.wait c.cc c.cm
  done;
  let r = Option.get c.c_result in
  Mutex.unlock c.cm;
  r

let poll (tk : ticket) : outcome option =
  let c = tk.tk_cell in
  Mutex.lock c.cm;
  let r = c.c_result in
  Mutex.unlock c.cm;
  r

let latency (tk : ticket) : float =
  let c = tk.tk_cell in
  Mutex.lock c.cm;
  let r = if c.c_result = None then 0. else c.c_done_at -. tk.tk_submitted in
  Mutex.unlock c.cm;
  r

(* ------------------------------------------------------------------ *)
(* Queue plumbing (callers hold [t.mutex]) *)

let insert_sorted (e : entry) (lst : entry list) : entry list =
  let rec go = function
    | x :: rest when x.e_deadline <= e.e_deadline -> x :: go rest
    | rest -> e :: rest
  in
  go lst

let remove_phys (e : entry) (lst : entry list) : entry list =
  List.filter (fun x -> x != e) lst

let depth t = List.length t.q_int + List.length t.q_bulk

let note_depth t =
  let d = depth t in
  if d > t.n_depth_max then t.n_depth_max <- d

let enqueue_locked t (e : entry) =
  (match e.e_priority with
  | Interactive -> t.q_int <- insert_sorted e t.q_int
  | Bulk -> t.q_bulk <- insert_sorted e t.q_bulk);
  note_depth t;
  Condition.signal t.not_empty

let unqueue_locked t (e : entry) =
  match e.e_priority with
  | Interactive -> t.q_int <- remove_phys e t.q_int
  | Bulk -> t.q_bulk <- remove_phys e t.q_bulk

(* Resolve a queued entry without running it (shed paths).  The caller holds
   [t.mutex]; the entry must already be out of its queue. *)
let reject_entry_locked t (e : entry) reason detail =
  e.e_state <- `Done;
  (match e.e_key with Some k -> Hashtbl.remove t.pending k | None -> ());
  resolve_cell e.e_cell (Rejected { reason; detail })

(* Find and shed one victim to make room: expired entries first (any class,
   they are dead weight), then the most-expired — front-of-queue — [Bulk]
   entry when the newcomer outranks it.  Returns [true] if a slot was
   freed. *)
let shed_for_locked t ~(incoming : priority) ~(incoming_deadline : float) : bool =
  let tnow = now () in
  let expired lst = List.find_opt (fun e -> e.e_deadline < tnow) lst in
  match expired t.q_bulk with
  | Some e ->
    t.q_bulk <- remove_phys e t.q_bulk;
    t.n_shed_expired <- t.n_shed_expired + e.e_waiters;
    reject_entry_locked t e Expired "deadline passed while queued";
    true
  | None -> (
    match expired t.q_int with
    | Some e ->
      t.q_int <- remove_phys e t.q_int;
      t.n_shed_expired <- t.n_shed_expired + e.e_waiters;
      reject_entry_locked t e Expired "deadline passed while queued";
      true
    | None -> (
      match t.q_bulk with
      | victim :: rest
        when incoming = Interactive
             || (incoming = Bulk && victim.e_deadline < incoming_deadline) ->
        t.q_bulk <- rest;
        t.n_shed_displaced <- t.n_shed_displaced + victim.e_waiters;
        reject_entry_locked t victim Displaced "displaced by higher-priority arrival";
        true
      | _ -> false))

(* ------------------------------------------------------------------ *)
(* Admission control *)

(* Price a query from the engine's rolling per-tier EWMAs: a cache hit is
   ~free, a miss pays tier 1 + tier 2, and queued work ahead of us shares
   [workers] dispatchers. *)
let estimate_locked t ~(prio : priority) : float * float =
  let s = Engine.stats t.sv_engine in
  let lookups = s.Veriopt_alive.Vcache.hits + s.Veriopt_alive.Vcache.misses in
  let hit_rate =
    if lookups = 0 then 0.
    else float_of_int s.Veriopt_alive.Vcache.hits /. float_of_int lookups
  in
  let per_miss = s.Veriopt_alive.Vcache.tier1_ewma_s +. s.Veriopt_alive.Vcache.tier2_ewma_s in
  let service = Float.max 1e-6 ((1. -. hit_rate) *. per_miss) in
  let ahead =
    match prio with
    | Interactive -> List.length t.q_int
    | Bulk -> List.length t.q_int + List.length t.q_bulk
  in
  let wait = float_of_int (ahead + t.inflight) *. service /. float_of_int (max 1 t.cfg.workers) in
  (service, wait)

(* ------------------------------------------------------------------ *)
(* Submission *)

let coalesce_suffix u mc =
  Printf.sprintf "\x00u=%d\x00c=%d"
    (match u with Some u -> u | None -> -1)
    (match mc with Some c -> c | None -> -1)

let submit ?(priority = Bulk) ?deadline ?unroll ?max_conflicts t (m : Ast.modul)
    ~(src : Ast.func) ~(tgt : Ast.func) : ticket =
  let tnow = now () in
  let deadline =
    match deadline with
    | Some d -> d
    | None ->
      tnow
      +. (match priority with
         | Interactive -> t.cfg.interactive_deadline_s
         | Bulk -> t.cfg.bulk_deadline_s)
  in
  locked t @@ fun () ->
  (match priority with
  | Interactive -> t.n_submitted_i <- t.n_submitted_i + 1
  | Bulk -> t.n_submitted_b <- t.n_submitted_b + 1);
  if t.draining then begin
    t.n_rejected_draining <- t.n_rejected_draining + 1;
    rejected_ticket Draining "service is draining"
  end
  else if
    t.cfg.admission
    && (deadline <= tnow
       ||
       let service, wait = estimate_locked t ~prio:priority in
       tnow +. wait +. service > deadline)
  then begin
    t.n_admission_refused <- t.n_admission_refused + 1;
    rejected_ticket Deadline_unmeetable
      (Printf.sprintf "remaining budget %.1fms below estimated service time"
         ((deadline -. tnow) *. 1e3))
  end
  else if t.cfg.admission && priority = Bulk && Engine.breaker_open t.sv_engine then begin
    t.n_breaker_refused <- t.n_breaker_refused + 1;
    rejected_ticket Breaker_open "circuit breaker open: tier 2 would be skipped"
  end
  else begin
    let key =
      if t.cfg.coalesce then
        Some (Engine.coalesce_key m ~src ~tgt ^ coalesce_suffix unroll max_conflicts)
      else None
    in
    let joined =
      match key with
      | None -> None
      | Some k -> (
        match Hashtbl.find_opt t.pending k with
        | Some e when e.e_state <> `Done ->
          e.e_waiters <- e.e_waiters + 1;
          t.n_coalesced <- t.n_coalesced + 1;
          if e.e_state = `Queued then begin
            (* inherit the joiner's urgency: tighter deadline, higher class *)
            if deadline < e.e_deadline then begin
              unqueue_locked t e;
              e.e_deadline <- deadline;
              enqueue_locked t e
            end;
            if priority = Interactive && e.e_priority = Bulk then begin
              unqueue_locked t e;
              e.e_priority <- Interactive;
              enqueue_locked t e
            end
          end;
          Some { tk_cell = e.e_cell; tk_submitted = tnow }
        | _ -> None)
    in
    match joined with
    | Some tk -> tk
    | None ->
      if Fault.fire Fault.Queue_full then begin
        t.n_shed_queue_full <- t.n_shed_queue_full + 1;
        rejected_ticket Queue_full "queue full (injected)"
      end
      else if
        depth t >= t.cfg.queue_capacity
        && not (shed_for_locked t ~incoming:priority ~incoming_deadline:deadline)
      then begin
        t.n_shed_queue_full <- t.n_shed_queue_full + 1;
        rejected_ticket Queue_full
          (Printf.sprintf "queue at capacity %d" t.cfg.queue_capacity)
      end
      else begin
        let e =
          {
            e_m = m;
            e_src = src;
            e_tgt = tgt;
            e_unroll = unroll;
            e_max_conflicts = max_conflicts;
            e_key = key;
            e_priority = priority;
            e_deadline = deadline;
            e_waiters = 1;
            e_state = `Queued;
            e_cell = new_cell ();
          }
        in
        (match key with Some k -> Hashtbl.replace t.pending k e | None -> ());
        enqueue_locked t e;
        { tk_cell = e.e_cell; tk_submitted = tnow }
      end
  end

(* ------------------------------------------------------------------ *)
(* Workers *)

let inconclusive_of_exn ex =
  Verdict
    {
      Alive.category = Alive.Inconclusive;
      message = "engine exception: " ^ Printexc.to_string ex;
      example = [];
      bounded = false;
      copy_of_input = false;
    }

let roll_ewma prev sample =
  if prev = 0. then sample else (0.15 *. sample) +. (0.85 *. prev)

let finish_locked t (e : entry) (o : outcome) =
  e.e_state <- `Done;
  (match e.e_key with Some k -> Hashtbl.remove t.pending k | None -> ());
  t.inflight <- t.inflight - 1;
  (match o with
  | Verdict _ -> t.n_completed <- t.n_completed + e.e_waiters
  | Rejected _ -> ());
  resolve_cell e.e_cell o

let worker_loop t () =
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while t.q_int = [] && t.q_bulk = [] && not t.stop do
      Condition.wait t.not_empty t.mutex
    done;
    if t.q_int = [] && t.q_bulk = [] then begin
      (* stop set and nothing left: exit *)
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      let e =
        match t.q_int with
        | e :: rest ->
          t.q_int <- rest;
          e
        | [] -> (
          match t.q_bulk with
          | e :: rest ->
            t.q_bulk <- rest;
            e
          | [] -> assert false)
      in
      let tnow = now () in
      if e.e_deadline < tnow then begin
        t.n_shed_expired <- t.n_shed_expired + e.e_waiters;
        reject_entry_locked t e Expired "deadline passed while queued";
        Mutex.unlock t.mutex
      end
      else begin
        e.e_state <- `Running;
        t.inflight <- t.inflight + 1;
        Mutex.unlock t.mutex;
        (* chaos: a stalled dispatcher backs the queue up *)
        if Fault.fire Fault.Slow_drain then Unix.sleepf (Fault.param Fault.Slow_drain);
        if Fault.fire Fault.Client_disconnect then
          locked t (fun () ->
              t.n_client_disc <- t.n_client_disc + 1;
              finish_locked t e (Rejected { reason = Disconnected; detail = "client vanished" }))
        else begin
          let t0 = now () in
          let result =
            match
              Engine.verify_funcs ?unroll:e.e_unroll ?max_conflicts:e.e_max_conflicts
                ~deadline:e.e_deadline t.sv_engine e.e_m ~src:e.e_src ~tgt:e.e_tgt
            with
            | v -> Verdict v
            | exception ex -> inconclusive_of_exn ex
          in
          let service = now () -. t0 in
          locked t (fun () ->
              t.n_engine_calls <- t.n_engine_calls + 1;
              (match e.e_priority with
              | Interactive -> t.ewma_i <- roll_ewma t.ewma_i service
              | Bulk -> t.ewma_b <- roll_ewma t.ewma_b service);
              finish_locked t e result)
        end
      end
    end
  done

(* ------------------------------------------------------------------ *)

let create ?(config = default_config) ~engine () =
  let config =
    {
      config with
      queue_capacity = max 1 config.queue_capacity;
      workers = max 1 config.workers;
    }
  in
  let t =
    {
      sv_engine = engine;
      cfg = config;
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      q_int = [];
      q_bulk = [];
      pending = Hashtbl.create 64;
      inflight = 0;
      draining = false;
      stop = false;
      drain_flag = Atomic.make false;
      drain_mutex = Mutex.create ();
      drained = None;
      threads = [];
      n_submitted_i = 0;
      n_submitted_b = 0;
      n_completed = 0;
      n_engine_calls = 0;
      n_coalesced = 0;
      n_admission_refused = 0;
      n_breaker_refused = 0;
      n_shed_queue_full = 0;
      n_shed_displaced = 0;
      n_shed_expired = 0;
      n_shed_drain = 0;
      n_rejected_draining = 0;
      n_client_disc = 0;
      n_depth_max = 0;
      ewma_i = 0.;
      ewma_b = 0.;
    }
  in
  t.threads <- List.init config.workers (fun _ -> Thread.create (worker_loop t) ());
  t

let verify ?priority ?deadline ?unroll ?max_conflicts t m ~src ~tgt =
  await (submit ?priority ?deadline ?unroll ?max_conflicts t m ~src ~tgt)

(* ------------------------------------------------------------------ *)
(* Drain *)

let request_drain t = Atomic.set t.drain_flag true
let drain_requested t = Atomic.get t.drain_flag

let install_signal_handlers t =
  let h = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

let drain ?(timeout = 5.) t : drain_report =
  Mutex.lock t.drain_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.drain_mutex) @@ fun () ->
  match t.drained with
  | Some r -> r
  | None ->
    Atomic.set t.drain_flag true;
    locked t (fun () -> t.draining <- true);
    (* grace period: let queued + in-flight work complete *)
    let give_up = now () +. Float.max 0. timeout in
    let quiesced = ref false in
    while (not !quiesced) && now () < give_up do
      let empty = locked t (fun () -> t.q_int = [] && t.q_bulk = [] && t.inflight = 0) in
      if empty then quiesced := true else Unix.sleepf 0.005
    done;
    (* shed whatever the grace period left behind, then stop the workers *)
    let forced =
      locked t (fun () ->
          let leftovers = t.q_int @ t.q_bulk in
          t.q_int <- [];
          t.q_bulk <- [];
          let n =
            List.fold_left
              (fun acc e ->
                t.n_shed_drain <- t.n_shed_drain + e.e_waiters;
                reject_entry_locked t e Draining "shed at drain timeout";
                acc + e.e_waiters)
              0 leftovers
          in
          t.stop <- true;
          Condition.broadcast t.not_empty;
          n)
    in
    (* workers exit after finishing their current (deadline-bounded) call *)
    List.iter Thread.join t.threads;
    Engine.shutdown t.sv_engine;
    let r = { forced_shed = forced; drain_orphans = Engine.orphans t.sv_engine } in
    t.drained <- Some r;
    r

(* ------------------------------------------------------------------ *)

let stats t : stats =
  (* passthrough from the engine's mounted verdict store (0/0 without one):
     how much of the served traffic a warm disk tier absorbed *)
  let st_hits, st_misses =
    match Engine.store_stats t.sv_engine with
    | Some st -> (st.Veriopt_store.Store.hits, st.Veriopt_store.Store.misses)
    | None -> (0, 0)
  in
  locked t (fun () ->
      {
        submitted_interactive = t.n_submitted_i;
        submitted_bulk = t.n_submitted_b;
        completed = t.n_completed;
        engine_calls = t.n_engine_calls;
        coalesced = t.n_coalesced;
        admission_refused = t.n_admission_refused;
        breaker_refused = t.n_breaker_refused;
        shed_queue_full = t.n_shed_queue_full;
        shed_displaced = t.n_shed_displaced;
        shed_expired = t.n_shed_expired;
        shed_drain = t.n_shed_drain;
        rejected_draining = t.n_rejected_draining;
        client_disconnects = t.n_client_disc;
        depth_interactive = List.length t.q_int;
        depth_bulk = List.length t.q_bulk;
        depth_max = t.n_depth_max;
        inflight = t.inflight;
        service_ewma_interactive_s = t.ewma_i;
        service_ewma_bulk_s = t.ewma_b;
        store_hits = st_hits;
        store_misses = st_misses;
      })

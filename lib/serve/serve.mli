(** Overload-safe verification service.

    Owns one {!Veriopt_alive.Engine.t} (and with it the engine's [Vproc]
    worker set) behind a bounded, two-priority-class request queue, and stays
    correct and responsive when requests arrive faster than the engine can
    absorb them.  The design contract, in deployment terms:

    - {b Every request is answered}, in bounded time, with a [Verdict] or an
      explicit [Rejected] — submission never blocks on a full queue and no
      outcome is silently dropped.
    - {b Overload degrades honestly}: a full queue sheds the lowest-priority,
      most-expired work first; a request whose deadline cannot plausibly be
      met (estimated from the engine's rolling per-tier latency EWMAs) is
      refused at admission in microseconds rather than queued to die.
    - {b Duplicate work collapses}: identical and alpha-equivalent queries
      waiting in the queue coalesce onto one engine call whose verdict fans
      back out to every waiter ({!Veriopt_alive.Engine.coalesce_key}).
    - {b Shutdown is graceful}: {!drain} stops admission, lets queued and
      in-flight work finish within a bounded timeout, sheds the remainder,
      joins every worker thread and reaps the engine's fork pool — zero
      orphaned processes.

    Chaos hooks: the [queue_full], [slow_drain] and [client_disconnect]
    fault kinds ({!Veriopt_fault.Fault}) let [VERIOPT_FAULTS] force spurious
    sheds, stalled dispatch and vanished clients, the same way the engine
    and worker layers are already chaos-tested. *)

type priority = Interactive | Bulk

val priority_name : priority -> string

type reject_reason =
  | Queue_full  (** the bounded queue was full and the shed policy found no
                    victim cheaper than the newcomer *)
  | Displaced  (** was queued, then shed to admit higher-priority work *)
  | Deadline_unmeetable
      (** admission control: estimated queue wait + service time exceeds the
          remaining client budget, so the request is refused up front *)
  | Breaker_open
      (** admission control: the engine's circuit breaker is open and the
          request is [Bulk] — tier 2 would be skipped anyway *)
  | Expired  (** the deadline passed while the request sat in the queue *)
  | Draining  (** the service is draining (or drained) and admits nothing *)
  | Disconnected  (** the client vanished before its result was ready
                      (the [client_disconnect] chaos fault) *)

val reason_name : reject_reason -> string

type outcome =
  | Verdict of Veriopt_alive.Alive.verdict
  | Rejected of { reason : reject_reason; detail : string }

type config = {
  queue_capacity : int;  (** bound on queued entries, both classes combined *)
  workers : int;  (** dispatcher threads draining the queue into the engine *)
  interactive_deadline_s : float;
      (** default client budget for [Interactive] submissions *)
  bulk_deadline_s : float;  (** default client budget for [Bulk] submissions *)
  admission : bool;  (** EWMA + breaker admission control at submit *)
  coalesce : bool;  (** in-queue coalescing of alpha-equivalent queries *)
}

val default_config : config
(** [{ queue_capacity = 256; workers = 4; interactive_deadline_s = 0.1;
       bulk_deadline_s = 2.0; admission = true; coalesce = true }] *)

type t

val create : ?config:config -> engine:Veriopt_alive.Engine.t -> unit -> t
(** Wrap [engine] in a serving front end and start the worker threads.  The
    service takes ownership of the engine: {!drain} shuts its fork pool
    down.  Create the engine {e before} any domains are spawned (its [Proc]
    pool forks); the serve workers are plain systhreads and are safe to
    start afterwards. *)

val engine : t -> Veriopt_alive.Engine.t
val config : t -> config

(** {1 Submission} *)

type ticket
(** A claim on one request's outcome.  Tickets for requests refused at
    admission are born resolved, so {!await} never blocks on them. *)

val submit :
  ?priority:priority ->
  ?deadline:float ->
  ?unroll:int ->
  ?max_conflicts:int ->
  t ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  ticket
(** Non-blocking admission.  [priority] defaults to [Bulk]; [deadline] is an
    absolute [Unix.gettimeofday] instant (default: now + the class budget
    from {!config}).  The call returns in microseconds in every case —
    admitted, coalesced onto an existing entry, or refused with a resolved
    [Rejected] ticket. *)

val await : ticket -> outcome
(** Block until the outcome is available.  Termination is bounded: queued
    work expires or is shed, engine calls carry the request deadline, and
    {!drain} resolves everything still pending. *)

val poll : ticket -> outcome option

val latency : ticket -> float
(** Submission-to-resolution wall time; meaningful once resolved (after
    {!await}), [0.] before. *)

val verify :
  ?priority:priority ->
  ?deadline:float ->
  ?unroll:int ->
  ?max_conflicts:int ->
  t ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  outcome
(** [submit] then [await]. *)

(** {1 Drain} *)

val request_drain : t -> unit
(** Async-signal-safe flag raise: ask the owner loop to {!drain}.  Does no
    locking, so it is callable from a signal handler. *)

val drain_requested : t -> bool

val install_signal_handlers : t -> unit
(** Route [SIGTERM]/[SIGINT] to {!request_drain}; the serving loop polls
    {!drain_requested} and performs the actual {!drain}. *)

type drain_report = {
  forced_shed : int;  (** waiters resolved [Rejected Draining] at timeout *)
  drain_orphans : int;  (** engine workers alive after pool teardown — 0 *)
}

val drain : ?timeout:float -> t -> drain_report
(** Graceful shutdown: stop admitting, let queued + in-flight work complete
    for up to [timeout] seconds (default 5), shed whatever remains, join all
    worker threads and shut the engine's fork pool down.  Idempotent — later
    calls return the first report. *)

(** {1 Observability} *)

type stats = {
  submitted_interactive : int;
  submitted_bulk : int;
  completed : int;  (** waiters resolved with a [Verdict] *)
  engine_calls : int;  (** engine invocations actually dispatched *)
  coalesced : int;  (** waiters attached to an existing queued/running entry *)
  admission_refused : int;  (** [Deadline_unmeetable] refusals at submit *)
  breaker_refused : int;  (** [Breaker_open] refusals at submit *)
  shed_queue_full : int;  (** newcomers rejected on a full queue *)
  shed_displaced : int;  (** queued waiters displaced by the shed policy *)
  shed_expired : int;  (** waiters whose deadline passed in the queue *)
  shed_drain : int;  (** waiters shed by a drain timeout *)
  rejected_draining : int;  (** submissions refused while draining *)
  client_disconnects : int;  (** entries dropped by the chaos fault *)
  depth_interactive : int;  (** gauge: queued [Interactive] entries *)
  depth_bulk : int;  (** gauge: queued [Bulk] entries *)
  depth_max : int;  (** high-water mark of total queue depth *)
  inflight : int;  (** gauge: entries currently inside the engine *)
  service_ewma_interactive_s : float;
      (** rolling EWMA of [Interactive] engine-call wall time *)
  service_ewma_bulk_s : float;
  store_hits : int;
      (** verdict-store hits of the wrapped engine (0 without a store) —
          answers a warm disk tier served at lookup cost *)
  store_misses : int;  (** verdict-store misses of the wrapped engine *)
}

val stats : t -> stats

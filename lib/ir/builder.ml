(** Helpers for constructing and transforming functions programmatically:
    fresh names, instruction substitution, and block surgery.  Used by the
    lowering pipeline, the peephole engine and the mutation engine. *)

open Ast

(** A fresh-name supply seeded with all names already used in a function. *)
type names = { mutable used : (string, unit) Hashtbl.t; mutable counter : int }

let names_of_func (f : func) : names =
  let used = Hashtbl.create 64 in
  List.iter (fun (_, v) -> Hashtbl.replace used v ()) f.params;
  List.iter
    (fun b ->
      Hashtbl.replace used b.label ();
      List.iter
        (fun { name; _ } -> match name with Some n -> Hashtbl.replace used n () | None -> ())
        b.instrs)
    f.blocks;
  { used; counter = 0 }

let fresh names prefix =
  let rec go () =
    let candidate = Fmt.str "%s%d" prefix names.counter in
    names.counter <- names.counter + 1;
    if Hashtbl.mem names.used candidate then go ()
    else (
      Hashtbl.replace names.used candidate ();
      candidate)
  in
  go ()

(** Reset the supply's counter without forgetting which names are taken.
    The rewrite context shares one supply across a whole pass; resetting
    before each rule application reproduces the historical behaviour of
    building a fresh supply per rule (names restart at [prefix0] and skip
    taken ones). *)
let names_reset (n : names) = n.counter <- 0

let name_claim (n : names) v = Hashtbl.replace n.used v ()
let name_release (n : names) v = Hashtbl.remove n.used v

(** Substitute operand [from] with [to_] everywhere in a function (used when a
    rewrite replaces an instruction's result with another value). *)
let substitute_operand (f : func) ~(from : var) ~(to_ : operand) : func =
  let subst op = match op with Var v when v = from -> to_ | _ -> op in
  {
    f with
    blocks =
      List.map
        (fun b ->
          {
            b with
            instrs =
              List.map (fun ni -> { ni with instr = map_instr_operands subst ni.instr }) b.instrs;
            term = map_terminator_operands subst b.term;
          })
        f.blocks;
  }

(** Replace the instruction named [name] with a new instruction list
    (possibly empty if the value was substituted away). *)
let replace_instr (f : func) ~(name : var) ~(with_ : named_instr list) : func =
  {
    f with
    blocks =
      List.map
        (fun b ->
          {
            b with
            instrs =
              List.concat_map
                (fun ni -> if ni.name = Some name then with_ else [ ni ])
                b.instrs;
          })
        f.blocks;
  }

let remove_instr_at (f : func) ~(block : label) ~(index : int) : func =
  {
    f with
    blocks =
      List.map
        (fun b ->
          if b.label = block then
            { b with instrs = List.filteri (fun i _ -> i <> index) b.instrs }
          else b)
        f.blocks;
  }

let map_blocks (f : func) g = { f with blocks = List.map g f.blocks }

(** All uses of each variable, for use-count-based rewrites (e.g. "has one
    use" preconditions in instcombine). *)
let use_counts (f : func) : (var, int) Hashtbl.t =
  let counts = Hashtbl.create 64 in
  let note = function
    | Var v -> Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
    | Const _ | Global _ -> ()
  in
  List.iter
    (fun b ->
      List.iter (fun { instr; _ } -> List.iter note (operands_of_instr instr)) b.instrs;
      List.iter note (operands_of_terminator b.term))
    f.blocks;
  counts

(** Map from defined variable to its defining instruction. *)
let def_map (f : func) : (var, instr) Hashtbl.t =
  let defs = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun { name; instr } ->
          match name with Some n -> Hashtbl.replace defs n instr | None -> ())
        b.instrs)
    f.blocks;
  defs

(** Renumber all locals and labels to the compact clang-like scheme
    (%0, %1, ...), preserving program order.  Canonicalizing names makes
    exact-match comparison meaningful across differently-named but
    structurally identical outputs. *)
let renumber (f : func) : func =
  let mapping = Hashtbl.create 64 in
  let next = ref 0 in
  let assign name =
    if not (Hashtbl.mem mapping name) then (
      Hashtbl.replace mapping name (string_of_int !next);
      incr next)
  in
  List.iter (fun (_, v) -> assign v) f.params;
  List.iter
    (fun b ->
      assign b.label;
      List.iter
        (fun { name; _ } -> match name with Some n -> assign n | None -> ())
        b.instrs)
    f.blocks;
  let rename n = try Hashtbl.find mapping n with Not_found -> n in
  let rename_op = function Var v -> Var (rename v) | op -> op in
  let rename_term t =
    let t = map_terminator_operands rename_op t in
    match t with
    | Br l -> Br (rename l)
    | CondBr c -> CondBr { c with if_true = rename c.if_true; if_false = rename c.if_false }
    | Switch s ->
      Switch
        { s with default = rename s.default; cases = List.map (fun (v, l) -> (v, rename l)) s.cases }
    | Ret _ | Unreachable -> t
  in
  let rename_instr i =
    let i = map_instr_operands rename_op i in
    match i with
    | Phi p -> Phi { p with incoming = List.map (fun (o, l) -> (o, rename l)) p.incoming }
    | _ -> i
  in
  {
    f with
    params = List.map (fun (t, v) -> (t, rename v)) f.params;
    blocks =
      List.map
        (fun b ->
          {
            label = rename b.label;
            instrs =
              List.map
                (fun { name; instr } -> { name = Option.map rename name; instr = rename_instr instr })
                b.instrs;
            term = rename_term b.term;
          })
        f.blocks;
  }

(** Structural equality modulo local/label names. *)
let alpha_equal (a : func) (b : func) : bool = renumber a = renumber b

let instr_count (f : func) : int =
  List.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 f.blocks

(* ------------------------------------------------------------------ *)
(* The emitting cursor: re-build a function one instruction at a time while
   keeping a live whole-function view of definitions and use counts.

   The fold engine (Veriopt_passes.Fold_engine) drives this: instructions
   are [stage]d (pending substitutions applied, their operand uses moved
   from the pending ledger to the cursor), rewritten zero or more times,
   then [commit]ted into the current block — or dropped entirely via
   [redirect], which records a substitution applied lazily to everything
   not yet emitted.  [defs] and [uses] always describe the whole current
   function (emitted prefix + rewritten cursor + pending suffix), which is
   exactly the view a Rewrite.ctx needs — maintained incrementally instead
   of rebuilt after every rewrite.

   The cursor is pure mechanism: it never decides *whether* a rewrite is
   safe to apply mid-stream.  Policy (retry budgets, restart triggers,
   cascade DCE, the phi barrier) lives in the fold engine. *)

module Emit = struct
  type t = {
    src : func;  (** snapshot of the function being re-emitted *)
    defs : (var, instr) Hashtbl.t;
        (** live def view: final form for emitted instrs, original (pre-
            substitution) form for pending ones *)
    uses : (var, int) Hashtbl.t;  (** live whole-function use counts *)
    pending : (var, int) Hashtbl.t;
        (** uses not yet emitted: occurrences in instructions and
            terminators the cursor has not reached *)
    names : names;  (** live used-name set, shared with Rewrite.ctx *)
    users : (var, (var, int) Hashtbl.t) Hashtbl.t;
        (** used var -> (named user -> occurrence count).  Only *named*
            users: the index exists so [redirect] can eagerly rewrite the
            def-map entries a rule's [def_of] might inspect.  Unnamed
            instructions (stores) are invisible to [def_of] and are fixed
            lazily by [resolve] at stage time. *)
    params : (var, unit) Hashtbl.t;
    subst : (var, operand) Hashtbl.t;  (** lazy substitution, path-compressed *)
    emitted : (var, unit) Hashtbl.t;  (** names committed into the prefix *)
    deleted : (var, unit) Hashtbl.t;  (** names removed (prefix or pending) *)
    mutable done_blocks : block list;  (** reversed *)
    mutable cur_label : label;
    mutable cur_rev : named_instr list;  (** current block, reversed, final form *)
  }

  let open_func (f : func) : t =
    let uses = use_counts f in
    let params = Hashtbl.create 8 in
    List.iter (fun (_, v) -> Hashtbl.replace params v ()) f.params;
    let users = Hashtbl.create 64 in
    List.iter
      (fun b ->
        List.iter
          (fun ni ->
            match ni.name with
            | None -> ()
            | Some u ->
              List.iter
                (function
                  | Var v ->
                    let tbl =
                      match Hashtbl.find_opt users v with
                      | Some tbl -> tbl
                      | None ->
                        let tbl = Hashtbl.create 4 in
                        Hashtbl.replace users v tbl;
                        tbl
                    in
                    Hashtbl.replace tbl u
                      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl u))
                  | Const _ | Global _ -> ())
                (operands_of_instr ni.instr))
          b.instrs)
      f.blocks;
    {
      src = f;
      defs = def_map f;
      uses;
      pending = Hashtbl.copy uses;
      names = names_of_func f;
      users;
      params;
      subst = Hashtbl.create 16;
      emitted = Hashtbl.create 64;
      deleted = Hashtbl.create 16;
      done_blocks = [];
      cur_label = "";
      cur_rev = [];
    }

  let defs t = t.defs
  let uses t = t.uses
  let names t = t.names
  let is_param t v = Hashtbl.mem t.params v
  let is_emitted t v = Hashtbl.mem t.emitted v
  let is_deleted t v = Hashtbl.mem t.deleted v
  let def_peek t v = Hashtbl.find_opt t.defs v

  let rec resolve t (op : operand) : operand =
    match op with
    | Var v -> (
      match Hashtbl.find_opt t.subst v with
      | None -> op
      | Some op' ->
        let r = resolve t op' in
        if r <> op' then Hashtbl.replace t.subst v r;
        r)
    | Const _ | Global _ -> op

  let total t v = Option.value ~default:0 (Hashtbl.find_opt t.uses v)
  let pending_of t v = Option.value ~default:0 (Hashtbl.find_opt t.pending v)

  let bump tbl v d =
    let n = max 0 (Option.value ~default:0 (Hashtbl.find_opt tbl v) + d) in
    if n = 0 then Hashtbl.remove tbl v else Hashtbl.replace tbl v n;
    n

  let add_use t v n = ignore (bump t.uses v n)

  let users_of t v : (var * int) list =
    match Hashtbl.find_opt t.users v with
    | None -> []
    | Some tbl -> Hashtbl.fold (fun u n acc -> (u, n) :: acc) tbl []

  let user_add t ~used ~user n =
    let tbl =
      match Hashtbl.find_opt t.users used with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace t.users used tbl;
        tbl
    in
    Hashtbl.replace tbl user (n + Option.value ~default:0 (Hashtbl.find_opt tbl user))

  let user_drop t ~used ~user n =
    match Hashtbl.find_opt t.users used with
    | None -> ()
    | Some tbl ->
      let n' = Option.value ~default:0 (Hashtbl.find_opt tbl user) - n in
      if n' <= 0 then Hashtbl.remove tbl user else Hashtbl.replace tbl user n'

  (** Decrement the live use count; returns the new count. *)
  let drop_use t v = bump t.uses v (-1)

  let drop_pending t v = ignore (bump t.pending v (-1))

  (** Uses of [v] already baked into the emitted prefix (instructions and
      sealed terminators).  [cursor], when given, is the instruction
      currently held at the cursor — its operands are neither prefix nor
      pending. *)
  let prefix_uses ?cursor t v =
    let at_cursor =
      match cursor with
      | None -> 0
      | Some i ->
        List.fold_left
          (fun n o -> match o with Var u when u = v -> n + 1 | _ -> n)
          0 (operands_of_instr i)
    in
    total t v - pending_of t v - at_cursor

  (** Pull a pending instruction to the cursor: apply the substitution to
      its operands and move those occurrences out of the pending ledger. *)
  let stage t (ni : named_instr) : named_instr =
    let instr = map_instr_operands (resolve t) ni.instr in
    List.iter
      (function Var v -> drop_pending t v | Const _ | Global _ -> ())
      (operands_of_instr instr);
    { ni with instr }

  let commit t (ni : named_instr) =
    (match ni.name with
    | Some n ->
      Hashtbl.replace t.defs n ni.instr;
      Hashtbl.replace t.emitted n ()
    | None -> ());
    t.cur_rev <- ni :: t.cur_rev

  let set_def t v i = Hashtbl.replace t.defs v i

  (** Record that every remaining use of [from] reads [to_] instead: the
      value was rewritten away.  Transfers the outstanding use counts onto
      the replacement and retires the name.  Named users' def-map entries
      are rewritten *eagerly* — a later rule's [def_of] on a not-yet-staged
      user must see the substituted form, exactly as a rescanning driver
      would after [substitute_operand]; only unnamed instructions and
      terminators (invisible to [def_of]) wait for [resolve]. *)
  let redirect t ~(from : var) ~(to_ : operand) =
    let n_total = total t from and n_pending = pending_of t from in
    Hashtbl.remove t.uses from;
    Hashtbl.remove t.pending from;
    (match to_ with
    | Var w ->
      if n_total > 0 then ignore (bump t.uses w n_total);
      if n_pending > 0 then ignore (bump t.pending w n_pending)
    | Const _ | Global _ -> ());
    List.iter
      (fun (u, n) ->
        if u <> from then begin
          (match Hashtbl.find_opt t.defs u with
          | Some i ->
            Hashtbl.replace t.defs u
              (map_instr_operands
                 (function Var v when v = from -> to_ | op -> op)
                 i)
          | None -> ());
          match to_ with Var w -> user_add t ~used:w ~user:u n | Const _ | Global _ -> ()
        end)
      (users_of t from);
    Hashtbl.remove t.users from;
    Hashtbl.replace t.subst from to_;
    Hashtbl.remove t.defs from;
    Hashtbl.replace t.deleted from ();
    name_release t.names from

  (** Register an instruction created mid-pass (an Expand rewrite's
      prefix): it joins the def map and its operand uses join both
      ledgers — it will be staged like any other pending instruction. *)
  let introduce t (ni : named_instr) =
    (match ni.name with Some n -> Hashtbl.replace t.defs n ni.instr | None -> ());
    List.iter
      (function
        | Var v ->
          ignore (bump t.uses v 1);
          ignore (bump t.pending v 1);
          (match ni.name with Some u -> user_add t ~used:v ~user:u 1 | None -> ())
        | Const _ | Global _ -> ())
      (operands_of_instr ni.instr)

  (** Remove a dead definition from the live view; returns its instruction
      so the caller can release the operand uses (prefix occurrences for an
      emitted def, pending ones otherwise). *)
  let delete t (v : var) : instr option =
    match Hashtbl.find_opt t.defs v with
    | None -> None
    | Some i ->
      Hashtbl.remove t.defs v;
      Hashtbl.remove t.users v;
      Hashtbl.replace t.deleted v ();
      name_release t.names v;
      Some i

  (** Defined names with no remaining uses (the arming sweep's worklist). *)
  let zero_use_defs t : var list =
    Hashtbl.fold (fun v _ acc -> if total t v = 0 then v :: acc else acc) t.defs []

  let start_block t lbl =
    t.cur_label <- lbl;
    t.cur_rev <- []

  let seal_block t (term : terminator) =
    let term = map_terminator_operands (resolve t) term in
    List.iter
      (function Var v -> drop_pending t v | Const _ | Global _ -> ())
      (operands_of_terminator term);
    t.done_blocks <- { label = t.cur_label; instrs = List.rev t.cur_rev; term } :: t.done_blocks;
    t.cur_rev <- []

  (** Reassemble the function: emitted blocks, then (when the pass stopped
      mid-block) the open block with its unprocessed [queue] and original
      terminator, then the untouched [rest].  The substitution is applied
      and deleted names are filtered everywhere — after a mid-pass stop the
      prefix may hold uses a later substitution must still rewrite. *)
  let materialize t ~(open_ : (named_instr list * terminator) option) ~(rest : block list) :
      func =
    let fix_ni ni =
      match ni.name with
      | Some n when Hashtbl.mem t.deleted n -> None
      | _ -> Some { ni with instr = map_instr_operands (resolve t) ni.instr }
    in
    let fix_term term = map_terminator_operands (resolve t) term in
    let fix_block b =
      { b with instrs = List.filter_map fix_ni b.instrs; term = fix_term b.term }
    in
    let done_ = List.rev_map fix_block t.done_blocks in
    let cur =
      match open_ with
      | None -> []
      | Some (queue, term) ->
        [
          {
            label = t.cur_label;
            instrs =
              List.filter_map fix_ni (List.rev t.cur_rev) @ List.filter_map fix_ni queue;
            term = fix_term term;
          };
        ]
    in
    { t.src with blocks = done_ @ cur @ List.map fix_block rest }
end

(** Canonical instruction form.

    Two disciplines share this module:

    - [canon_instr] is the *emit-time* normal form applied wherever IR is
      constructed (the lowering pipeline's emit chokepoint, the fold
      engine's canon rule family): constants are masked to their width and
      the constant operand of a commutative binop / icmp sits on the right.
      It is deliberately conservative — it never reorders variable
      operands, so it is safe at any construction site.

    - [canon_func_for_key] is the *key-level* quotient used by the
      verification cache and verdict-store keys: on top of [canon_instr]
      it totally orders variable-variable operand pairs of commutative
      operations, sorts phi incomings by predecessor label and masks
      terminator constants.  It expects a {!Builder.renumber}ed function
      (renumbering assigns names by definition order, which operand order
      cannot change, so renumber-then-canon is deterministic and
      idempotent) and produces a representative shared by every
      operand-commuted / constant-renormalized twin of the function.

    Every transformation here preserves semantics exactly, including
    poison: commutative binops are commutative in both flags' operands,
    [icmp_swap_pred] is the textbook predicate mirror, and constants are
    already defined to be masked ([Ast.const]'s CInt invariant).  That is
    what makes it sound to share one cached verdict across a whole canon
    class. *)

open Ast

(** Bump to invalidate stored verdicts when the canonical form (hence the
    key quotient) changes. *)
let semantics_version = 1

let mask_operand = function
  | Const (CInt { width; value }) as op ->
    let m = Bits.mask width value in
    if m = value then op else Const (CInt { width; value = m })
  | op -> op

let is_const = function Const _ -> true | Var _ | Global _ -> false

(** Commute a constant left operand to the right slot when the operation
    allows it.  Assumes operands are already masked. *)
let commute_instr (i : instr) : instr =
  match i with
  | Binop ({ op; lhs; rhs; _ } as b)
    when binop_is_commutative op && is_const lhs && not (is_const rhs) ->
    Binop { b with lhs = rhs; rhs = lhs }
  | Icmp ({ pred; lhs; rhs; _ } as c) when is_const lhs && not (is_const rhs) ->
    Icmp { c with pred = icmp_swap_pred pred; lhs = rhs; rhs = lhs }
  | i -> i

let remask_instr (i : instr) : instr = map_instr_operands mask_operand i

let canon_instr (i : instr) : instr = commute_instr (remask_instr i)

(* ------------------------------------------------------------------ *)
(* Key-level canonicalization *)

(* Total operand order for the key form.  Renumbered names are decimal
   strings, so (length, lexicographic) compares them numerically: %2 < %10.
   Constants sort after variables (they already live on the right), globals
   after everything. *)
let operand_rank = function Var _ -> 0 | Const _ -> 1 | Global _ -> 2

let operand_order (a : operand) (b : operand) : int =
  match (a, b) with
  | Var x, Var y -> compare (String.length x, x) (String.length y, y)
  | _ -> compare (operand_rank a, a) (operand_rank b, b)

let sort_var_pair (i : instr) : instr =
  match i with
  | Binop ({ op; lhs; rhs; _ } as b)
    when binop_is_commutative op && operand_order lhs rhs > 0 ->
    Binop { b with lhs = rhs; rhs = lhs }
  | Icmp ({ pred; lhs; rhs; _ } as c) when operand_order lhs rhs > 0 ->
    Icmp { c with pred = icmp_swap_pred pred; lhs = rhs; rhs = lhs }
  | i -> i

let canon_instr_for_key (i : instr) : instr =
  let i = canon_instr i in
  let i = sort_var_pair i in
  match i with
  | Phi ({ incoming; _ } as p) ->
    (* incoming order is semantically irrelevant; sort by predecessor label
       (labels are unique per phi, so the order is total) *)
    Phi
      {
        p with
        incoming =
          List.sort
            (fun (_, l1) (_, l2) ->
              compare (String.length l1, l1) (String.length l2, l2))
            incoming;
      }
  | i -> i

let canon_terminator (t : terminator) : terminator =
  let t = map_terminator_operands mask_operand t in
  match t with
  | Switch ({ ty = Types.Int w; cases; _ } as s) ->
    Switch { s with cases = List.map (fun (v, l) -> (Bits.mask w v, l)) cases }
  | t -> t

let canon_func_for_key (f : func) : func =
  {
    f with
    blocks =
      List.map
        (fun b ->
          {
            b with
            instrs =
              List.map (fun ni -> { ni with instr = canon_instr_for_key ni.instr }) b.instrs;
            term = canon_terminator b.term;
          })
        f.blocks;
  }

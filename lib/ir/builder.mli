(** Construction and surgery helpers used by the lowering pipeline, the
    peephole engine and the mutation engine. *)

type names
(** A fresh-name supply seeded with all names already used in a function. *)

val names_of_func : Ast.func -> names
val fresh : names -> string -> string

val names_reset : names -> unit
(** Reset the supply's counter to 0 without forgetting used names.  The
    peephole engine calls this before each rule application so expanding
    rules see one fresh supply per invocation (historic behavior the SFT
    traces are pinned to). *)

val name_claim : names -> Ast.var -> unit
(** Mark a name as used (a mid-pass definition joined the function). *)

val name_release : names -> Ast.var -> unit
(** Forget a used name (its definition was deleted; the old per-rewrite
    supply would likewise not see it). *)

val substitute_operand : Ast.func -> from:Ast.var -> to_:Ast.operand -> Ast.func
(** Replace every use of [from] (including phi incomings) with [to_]. *)

val replace_instr : Ast.func -> name:Ast.var -> with_:Ast.named_instr list -> Ast.func
(** Replace the instruction defining [name] with a (possibly empty) list. *)

val remove_instr_at : Ast.func -> block:Ast.label -> index:int -> Ast.func
val map_blocks : Ast.func -> (Ast.block -> Ast.block) -> Ast.func

val use_counts : Ast.func -> (Ast.var, int) Hashtbl.t
(** Number of uses of each SSA value ("has one use" preconditions). *)

val def_map : Ast.func -> (Ast.var, Ast.instr) Hashtbl.t
(** Defined variable to defining instruction. *)

val renumber : Ast.func -> Ast.func
(** Rename all locals and labels to the compact clang-like scheme
    (%0, %1, ...), preserving program order. *)

val alpha_equal : Ast.func -> Ast.func -> bool
(** Structural equality modulo local/label names: the paper's "exact match
    with the reference IR" and its "copy of input" detector. *)

val instr_count : Ast.func -> int

(** The emitting cursor: re-build a function one instruction at a time
    while keeping a live whole-function view of definitions and use counts
    (the incremental [Rewrite.ctx]).  Driven by the emit-time fold engine;
    see {!Veriopt_passes.Fold_engine}. *)
module Emit : sig
  type t

  val open_func : Ast.func -> t

  val defs : t -> (Ast.var, Ast.instr) Hashtbl.t
  (** Live def view over the whole function (shared with [Rewrite.ctx]). *)

  val uses : t -> (Ast.var, int) Hashtbl.t
  (** Live whole-function use counts (shared with [Rewrite.ctx]). *)

  val names : t -> names
  (** Live fresh-name supply. *)

  val is_param : t -> Ast.var -> bool
  val is_emitted : t -> Ast.var -> bool
  val is_deleted : t -> Ast.var -> bool
  val def_peek : t -> Ast.var -> Ast.instr option
  val resolve : t -> Ast.operand -> Ast.operand

  val total : t -> Ast.var -> int
  val pending_of : t -> Ast.var -> int

  val prefix_uses : ?cursor:Ast.instr -> t -> Ast.var -> int
  (** Uses already baked into the emitted prefix.  [cursor] is the
      instruction currently held at the cursor, whose operand occurrences
      are neither prefix nor pending. *)

  val add_use : t -> Ast.var -> int -> unit
  val drop_use : t -> Ast.var -> int
  val drop_pending : t -> Ast.var -> unit

  val users_of : t -> Ast.var -> (Ast.var * int) list
  (** Named instructions currently using a var, with occurrence counts. *)

  val user_add : t -> used:Ast.var -> user:Ast.var -> int -> unit
  val user_drop : t -> used:Ast.var -> user:Ast.var -> int -> unit

  val stage : t -> Ast.named_instr -> Ast.named_instr
  (** Pull a pending instruction to the cursor: substitution applied,
      operand occurrences moved out of the pending ledger. *)

  val commit : t -> Ast.named_instr -> unit
  val set_def : t -> Ast.var -> Ast.instr -> unit
  val redirect : t -> from:Ast.var -> to_:Ast.operand -> unit
  val introduce : t -> Ast.named_instr -> unit
  val delete : t -> Ast.var -> Ast.instr option
  val zero_use_defs : t -> Ast.var list
  val start_block : t -> Ast.label -> unit
  val seal_block : t -> Ast.terminator -> unit

  val materialize :
    t -> open_:(Ast.named_instr list * Ast.terminator) option -> rest:Ast.block list -> Ast.func
  (** Reassemble the function from the emitted prefix, the still-open
      block's unprocessed queue (if the pass stopped mid-block), and the
      untouched remaining blocks, applying the pending substitution and
      dropping deleted definitions everywhere. *)
end

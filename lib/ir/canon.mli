(** Canonical instruction form: emit-time normalization shared by the
    lowering pipeline and the peephole engine, plus the key-level quotient
    used by the verification cache and verdict-store keys. *)

val semantics_version : int
(** Folded into the engine's semantics digest: bumping it invalidates every
    stored verdict keyed under an older canonical form. *)

val mask_operand : Ast.operand -> Ast.operand
(** Re-mask an integer constant to its declared width (identity otherwise). *)

val canon_instr : Ast.instr -> Ast.instr
(** Emit-time normal form: operands masked, the constant operand of a
    commutative binop / icmp moved to the right slot (icmp via
    {!Ast.icmp_swap_pred}).  Never reorders variable operands, so it is
    safe at any construction site.  Semantics- and poison-preserving. *)

val canon_func_for_key : Ast.func -> Ast.func
(** Key-level canonical form; expects a {!Builder.renumber}ed function.
    Adds a total order on variable-variable operand pairs of commutative
    operations, sorts phi incomings by predecessor label and masks
    terminator constants, so operand-commuted and constant-renormalized
    twins print identically. *)

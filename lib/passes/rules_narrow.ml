(** Narrowing and widening transforms: moving computation to the width where
    it is cheapest, plus the De Morgan rewrite (the catalog's one
    multi-instruction [Expand] rule). *)

open Veriopt_ir
open Ast
open Rewrite

(* zext (trunc x to iN) to iM, with x : iM  ->  and x, (2^N - 1) *)
let zext_of_trunc_mask =
  rule ~family:"cast" "zext-of-trunc-to-and" (fun ctx ni ->
      match ni.instr with
      | Cast { op = ZExt; src_ty = Types.Int sw; value; dst_ty = Types.Int dw } -> (
        match def_of ctx value with
        | Some (Cast { op = Trunc; src_ty = Types.Int ow; value = x; _ })
          when ow = dw && one_use ctx value ->
          Some
            (Instr
               (Binop
                  {
                    op = And;
                    flags = no_flags;
                    ty = Types.Int dw;
                    lhs = x;
                    rhs = const_int dw (Bits.mask dw (Int64.sub (Int64.shift_left 1L sw) 1L));
                  }))
        | _ -> None)
      | _ -> None)

(* bitwise op of two zexts from the same width -> zext of the narrow op *)
let bitwise_of_zexts =
  rule ~family:"logic" "bitwise-of-zexts" (fun ctx ni ->
      match ni.instr with
      | Binop { op = (And | Or | Xor) as op; ty = Types.Int dw; lhs; rhs; _ } -> (
        match (def_of ctx lhs, def_of ctx rhs) with
        | ( Some (Cast { op = ZExt; src_ty = Types.Int sw1; value = a; _ }),
            Some (Cast { op = ZExt; src_ty = Types.Int sw2; value = b; _ }) )
          when sw1 = sw2 && one_use ctx lhs && one_use ctx rhs ->
          let names = Rewrite.fresh_supply ctx in
          let narrow = Builder.fresh names "narrow" in
          let widened = Builder.fresh names "widened" in
          Some
            (Expand
               ( [
                   {
                     name = Some narrow;
                     instr = Binop { op; flags = no_flags; ty = Types.Int sw1; lhs = a; rhs = b };
                   };
                   {
                     name = Some widened;
                     instr =
                       Cast
                         {
                           op = ZExt;
                           src_ty = Types.Int sw1;
                           value = Var narrow;
                           dst_ty = Types.Int dw;
                         };
                   };
                 ],
                 Var widened ))
        | _ -> None)
      | _ -> None)

(* trunc (bitwise-op x, y) -> bitwise-op (trunc x), (trunc y): low bits only
   depend on low bits.  Restricted to a constant rhs so no new instructions
   are needed for the second operand. *)
let trunc_of_bitwise_const =
  rule ~family:"cast" "trunc-of-bitwise-const" (fun ctx ni ->
      match ni.instr with
      | Cast { op = Trunc; src_ty = Types.Int sw; value; dst_ty = Types.Int dw } -> (
        match def_of ctx value with
        | Some (Binop { op = (And | Or | Xor | Add | Sub | Mul) as op; lhs = x; rhs; _ })
          when one_use ctx value -> (
          match cint rhs with
          | Some (_, c) ->
            let names = Rewrite.fresh_supply ctx in
            let narrow = Builder.fresh names "narrow" in
            let folded = Builder.fresh names "folded" in
            Some
              (Expand
                 ( [
                     {
                       name = Some narrow;
                       instr =
                         Cast { op = Trunc; src_ty = Types.Int sw; value = x; dst_ty = Types.Int dw };
                     };
                     {
                       name = Some folded;
                       instr =
                         Binop
                           {
                             op;
                             flags = no_flags;
                             ty = Types.Int dw;
                             lhs = Var narrow;
                             rhs = const_int dw (Bits.mask dw c);
                           };
                     };
                   ],
                   Var folded ))
          | None -> None)
        | _ -> None)
      | _ -> None)

(* icmp of two zexts -> icmp at the narrow width (unsigned predicates and
   eq/ne are preserved by zero extension) *)
let icmp_of_zexts =
  rule ~family:"icmp" "icmp-of-zexts" (fun ctx ni ->
      match ni.instr with
      | Icmp { pred = (Eq | Ne | Ult | Ule | Ugt | Uge) as pred; ty = _; lhs; rhs } -> (
        match (def_of ctx lhs, def_of ctx rhs) with
        | ( Some (Cast { op = ZExt; src_ty = Types.Int sw1; value = a; _ }),
            Some (Cast { op = ZExt; src_ty = Types.Int sw2; value = b; _ }) )
          when sw1 = sw2 && one_use ctx lhs && one_use ctx rhs ->
          Some (Instr (Icmp { pred; ty = Types.Int sw1; lhs = a; rhs = b }))
        | _ -> None)
      | _ -> None)

(* De Morgan: (~a) & (~b) -> ~(a | b), and the dual. *)
let demorgan =
  rule ~family:"logic" "demorgan" (fun ctx ni ->
      let not_of op =
        match def_of ctx op with
        | Some (Binop { op = Xor; lhs; rhs; _ }) when is_all_ones rhs && one_use ctx op -> Some lhs
        | Some (Binop { op = Xor; lhs; rhs; _ }) when is_all_ones lhs && one_use ctx op -> Some rhs
        | _ -> None
      in
      match ni.instr with
      | Binop { op = (And | Or) as op; ty; lhs; rhs; _ } -> (
        match (not_of lhs, not_of rhs) with
        | Some a, Some b ->
          let dual = match op with And -> Or | Or -> And | _ -> assert false in
          let names = Rewrite.fresh_supply ctx in
          let inner = Builder.fresh names "dm" in
          let dmnot = Builder.fresh names "dmnot" in
          let w = Types.width ty in
          Some
            (Expand
               ( [
                   { name = Some inner; instr = Binop { op = dual; flags = no_flags; ty; lhs = a; rhs = b } };
                   {
                     name = Some dmnot;
                     instr =
                       Binop
                         { op = Xor; flags = no_flags; ty; lhs = Var inner; rhs = const_int w (Bits.all_ones w) };
                   };
                 ],
                 Var dmnot ))
        | _ -> None)
      | _ -> None)

let rules = [ zext_of_trunc_mask; bitwise_of_zexts; trunc_of_bitwise_const; icmp_of_zexts; demorgan ]

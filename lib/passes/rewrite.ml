(** The peephole rule framework.

    A rule inspects one instruction (with access to operand definitions and
    use counts, like InstCombine's visitors) and proposes a rewrite.  Rules
    carry a [sound] flag: the instcombine pass only ever applies sound rules,
    while the surrogate model's action space also contains the unsound
    variants ("hallucinations") so that reinforcement learning has real
    mistakes to learn from. *)

open Veriopt_ir
open Ast

type ctx = {
  func : func;
  modul : modul;
  defs : (var, instr) Hashtbl.t;
  uses : (var, int) Hashtbl.t;
  names : Builder.names;
}

let make_ctx modul func =
  {
    func;
    modul;
    defs = Builder.def_map func;
    uses = Builder.use_counts func;
    names = Builder.names_of_func func;
  }

(** One fresh-name supply per rule invocation: the counter restarts at 0
    while the used-name set stays live, reproducing the historical
    names_of_func-per-rewrite behavior the SFT traces are pinned to. *)
let fresh_supply ctx =
  Builder.names_reset ctx.names;
  ctx.names

type rewrite =
  | Value of operand (* replace all uses of the result, delete the instr *)
  | Instr of instr (* replace the instruction in place (same result name) *)
  | Expand of named_instr list * operand
      (* insert new instructions, then substitute the result with an operand *)

type rule = {
  rule_name : string;
  family : string;
  sound : bool;
  apply : ctx -> named_instr -> rewrite option;
}

let rule ?(sound = true) ~family rule_name apply = { rule_name; family; sound; apply }

(* ------------------------------------------------------------------ *)
(* Matching helpers *)

let cint = function Const (CInt { width; value }) -> Some (width, value) | _ -> None
let is_cint v op = match cint op with Some (_, x) -> x = v | None -> false
let is_zero op = is_cint 0L op

let is_all_ones op =
  match cint op with Some (w, x) -> x = Bits.all_ones w | None -> false

let def_of ctx = function Var v -> Hashtbl.find_opt ctx.defs v | Const _ | Global _ -> None

let one_use ctx = function
  | Var v -> Hashtbl.find_opt ctx.uses v = Some 1
  | Const _ | Global _ -> false

let same_operand a b =
  match (a, b) with
  | Var x, Var y -> x = y
  | Const (CInt { width = w1; value = v1 }), Const (CInt { width = w2; value = v2 }) ->
    w1 = w2 && v1 = v2
  | Global g1, Global g2 -> g1 = g2
  | _ -> false

(** Known-bits of an operand at integer width [w]. *)
let known ctx w op = Known_bits.compute ctx.defs w op

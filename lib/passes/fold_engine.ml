(** The emit-time fold engine (after lambdachine's [ir_fold.cc]).

    Instead of rescanning the whole function after every rewrite, the
    engine re-emits it once, instruction by instruction, through a fold
    state: each staged instruction is offered to the matcher (constant
    folding, then the rule catalog — which ends with the canonicalization
    family, so emitted IR is canonical); a match yields one of the classic
    fold outcomes

    - [Next]      — nothing fired, commit the instruction and move on;
    - [Retry i]   — the instruction was rewritten in place ([Instr]); offer
                    the new form again, under a bounded retry budget;
    - [Lit op]    — the result collapsed to an operand ([Value]/[Expand]);
                    remaining uses are redirected and the def disappears.

    {!Builder.Emit} keeps the def map and use counts live across rewrites,
    so the [Rewrite.ctx] handed to rules is maintained incrementally
    instead of rebuilt per rewrite.

    {b Exactness.}  The (rule, site) trace is the SFT supervision signal,
    so this engine must fire {e exactly} the rewrites the reference
    rescanning driver fires, in the same order.  The rescanning driver
    restarts from instruction one after every rewrite; the fold engine
    keeps going — sound only while the already-emitted prefix stays at
    fixpoint.  A rewrite can disturb the prefix in three ways, each
    detected and answered with a pass restart (the [Restarted] result):

    - {b T1} a [Lit] redirect whose site still has uses in the prefix
      (back-edge phi incomings, or non-topological layout): prefix operand
      identities change, prefix rules may now match;
    - {b T2} a use count dropping to exactly 1 for a value used in the
      prefix: [one_use] guards flip from false to true;
    - {b T3} a rewrite at, or a kill / eager-substitution into, a def the
      emitted prefix {e inspects} ([watched]): a committed instruction
      referenced the def before it was emitted, so its [def_of] view
      changed.  [watched] is the def-operand closure of forward references
      from committed non-phi instructions.  Phi incomings are exempt
      because the phi rules ({!Rules_phi}, the phi case of {!Fold}) match
      on the phi's own operands only — if a phi rule that inspects
      incoming {e defs} is ever added, extend [watched] to phi incomings.

    Spurious restarts are harmless (the fresh scan reproduces the same
    trace, it only costs time), so the triggers may over-fire; they must
    never under-fire.

    {b DCE.}  The reference driver runs {!Dce} after every rewrite.  The
    engine mirrors it incrementally: the first rewrite of a run "arms" the
    state and sweeps all currently-dead defs; from then on any use count
    hitting zero kills the def immediately, cascading — so the live view
    is always DCE-clean, exactly like the rescanning driver's.

    {b PHIBARRIER.}  A [Lit (Var w)] at a phi inside a loop header, where
    [w] is defined below the phi, is refused outright: folding a
    loop-carried value to its back-edge operand rewrites uses to a var
    that doesn't dominate them (the degenerate self-reference
    [%j = add %j, 1]).  The guard lives in the shared matcher, so the
    reference driver refuses identically and traces stay equal. *)

open Veriopt_ir
open Ast

type outcome = Next | Retry of instr | Lit of operand

(** Shared between this engine and the reference fixpoint driver:
    [barrier ~site rw] is the PHIBARRIER predicate (true = refuse). *)
type matcher =
  Rewrite.ctx ->
  barrier:(site:named_instr -> Rewrite.rewrite -> bool) ->
  named_instr ->
  (Rewrite.rule * Rewrite.rewrite) option

type pass_result =
  | Fixpoint of func * int  (** full pass completed; n rewrites fired *)
  | Restarted of func * int  (** exactness trigger: rescan from the top *)
  | Exhausted of func * int  (** fuel ran out mid-pass *)

(* ------------------------------------------------------------------ *)
(* Counters (surfaced in Report) *)

let passes_total = Atomic.make 0
let restarts_total = Atomic.make 0
let barrier_hits_total = Atomic.make 0

(* ------------------------------------------------------------------ *)
(* PHIBARRIER *)

type site_info = {
  pos : (var, int) Hashtbl.t;  (** program-order index of each def *)
  block_of : (var, label) Hashtbl.t;
  loop_headers : (label, unit) Hashtbl.t Lazy.t;  (** back-edge targets *)
}

let site_info_of (f : func) : site_info =
  let pos = Hashtbl.create 64 and block_of = Hashtbl.create 64 in
  let i = ref 0 in
  List.iter
    (fun b ->
      List.iter
        (fun ni ->
          (match ni.name with
          | Some n ->
            Hashtbl.replace pos n !i;
            Hashtbl.replace block_of n b.label
          | None -> ());
          incr i)
        b.instrs)
    f.blocks;
  let loop_headers =
    lazy
      (let tbl = Hashtbl.create 4 in
       List.iter (fun (_, dst) -> Hashtbl.replace tbl dst ()) (Cfg.back_edges (Cfg.of_func f));
       tbl)
  in
  { pos; block_of; loop_headers }

(** Refuse folding a loop-header phi to a value defined below it.  Vars
    with unknown positions (mid-pass expansions) are treated as earlier:
    the guard only fires on a {e known} downward reference. *)
let barrier_of (info : site_info) ~(site : named_instr) (rw : Rewrite.rewrite) : bool =
  match (site.name, site.instr, rw) with
  | Some s, Phi _, Rewrite.Value (Var w) -> (
    match (Hashtbl.find_opt info.pos w, Hashtbl.find_opt info.pos s) with
    | Some pw, Some ps when pw > ps -> (
      match Hashtbl.find_opt info.block_of s with
      | Some b when Hashtbl.mem (Lazy.force info.loop_headers) b ->
        Atomic.incr barrier_hits_total;
        true
      | _ -> false)
    | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The pass *)

type state = {
  em : Builder.Emit.t;
  ctx : Rewrite.ctx;
  info : site_info;
  matcher : matcher;
  fuel : unit -> bool;  (** increments the step counter; false = exhausted *)
  on_rewrite : rule:string -> site:string -> unit;
  armed : bool ref;  (** run-level: first rewrite arms incremental DCE *)
  retry_budget : int;
  watched : (var, unit) Hashtbl.t;
  mutable cursor : var option;  (** name of the staged instruction, if any *)
  mutable pre_queue : named_instr list;  (** Expand prefixes awaiting staging *)
  mutable restart : bool;
  mutable fired : int;
}

let mk_state ~matcher ~fuel ~on_rewrite ~armed ~retry_budget (modul : modul) (f : func) : state
    =
  let em = Builder.Emit.open_func f in
  let ctx : Rewrite.ctx =
    {
      Rewrite.func = f;
      modul;
      defs = Builder.Emit.defs em;
      uses = Builder.Emit.uses em;
      names = Builder.Emit.names em;
    }
  in
  {
    em;
    ctx;
    info = site_info_of f;
    matcher;
    fuel;
    on_rewrite;
    armed;
    retry_budget;
    watched = Hashtbl.create 8;
    cursor = None;
    pre_queue = [];
    restart = false;
    fired = 0;
  }

let pure_named st v =
  match Builder.Emit.def_peek st.em v with
  | Some i -> not (Dce.has_side_effects i)
  | None -> false

let cursor_instr st =
  match st.cursor with None -> None | Some c -> Builder.Emit.def_peek st.em c

(* Kill [v]'s definition (it hit zero uses), releasing its operand uses and
   cascading.  Mirrors one Dce.run step. *)
let rec kill st (v : var) =
  if Hashtbl.mem st.watched v then st.restart <- true;
  let was_pending = not (Builder.Emit.is_emitted st.em v) && st.cursor <> Some v in
  match Builder.Emit.delete st.em v with
  | None -> ()
  | Some i ->
    List.iter
      (function
        | Var u ->
          Builder.Emit.user_drop st.em ~used:u ~user:v 1;
          if was_pending then Builder.Emit.drop_pending st.em u;
          note_drop st u
        | Const _ | Global _ -> ())
      (operands_of_instr i)

(* Every decrement of a total use count funnels through here: arms the T2
   trigger and the cascade kill. *)
and note_drop st (v : var) =
  if not (Builder.Emit.is_param st.em v) then begin
    let n = Builder.Emit.drop_use st.em v in
    if n = 0 then begin
      if !(st.armed) && pure_named st v then kill st v
    end
    else if n = 1 && Builder.Emit.prefix_uses ?cursor:(cursor_instr st) st.em v >= 1 then
      st.restart <- true
  end

(* First rewrite of the run: sweep defs that were already dead, as the
   reference driver's first post-rewrite Dce.run would. *)
let arm st =
  if not !(st.armed) then begin
    st.armed := true;
    List.iter
      (fun v -> if pure_named st v && not (Builder.Emit.is_param st.em v) then kill st v)
      (Builder.Emit.zero_use_defs st.em)
  end

(* Watch the def-operand closure of a forward reference from a committed
   instruction: any later change to these defs must restart the pass. *)
let rec watch st (v : var) =
  if not (Hashtbl.mem st.watched v) && not (Builder.Emit.is_param st.em v) then begin
    Hashtbl.replace st.watched v ();
    match Builder.Emit.def_peek st.em v with
    | None -> ()
    | Some i ->
      List.iter
        (function Var u -> watch st u | Const _ | Global _ -> ())
        (operands_of_instr i)
  end

let commit st (ni : named_instr) =
  (match ni.instr with
  | Phi _ -> ()  (* phi rules match on own operands only; see module doc *)
  | i ->
    List.iter
      (function
        | Var v ->
          if not (Builder.Emit.is_emitted st.em v) && not (Builder.Emit.is_param st.em v)
          then watch st v
        | Const _ | Global _ -> ())
      (operands_of_instr i));
  Builder.Emit.commit st.em ni;
  st.cursor <- None

(* Apply one matched rewrite at the staged cursor instruction.  Returns the
   fold outcome; triggers set [st.restart]. *)
let apply_rewrite st (ni : named_instr) (rw : Rewrite.rewrite) : outcome =
  let site = Option.get ni.name in
  if Hashtbl.mem st.watched site then st.restart <- true;
  arm st;
  match rw with
  | Rewrite.Instr i' ->
    (* new operand uses first: no transient zeros, no spurious T2 *)
    List.iter
      (function
        | Var v ->
          Builder.Emit.add_use st.em v 1;
          Builder.Emit.user_add st.em ~used:v ~user:site 1
        | Const _ | Global _ -> ())
      (operands_of_instr i');
    Builder.Emit.set_def st.em site i';
    List.iter
      (function
        | Var v ->
          Builder.Emit.user_drop st.em ~used:v ~user:site 1;
          note_drop st v
        | Const _ | Global _ -> ())
      (operands_of_instr ni.instr);
    if Builder.Emit.is_deleted st.em site then Lit (Var site) (* killed via cascade *)
    else Retry i'
  | Rewrite.Value op | Rewrite.Expand (_, op) ->
    let pre = match rw with Rewrite.Expand (pre, _) -> pre | _ -> [] in
    if Builder.Emit.prefix_uses ~cursor:ni.instr st.em site > 0 then st.restart <- true;
    List.iter
      (fun (u, _) -> if u <> site && Hashtbl.mem st.watched u then st.restart <- true)
      (Builder.Emit.users_of st.em site);
    Builder.Emit.redirect st.em ~from:site ~to_:op;
    st.pre_queue <- st.pre_queue @ pre;
    List.iter
      (fun (p : named_instr) ->
        Builder.Emit.introduce st.em p;
        match p.name with
        | Some n ->
          (match Hashtbl.find_opt st.info.pos site with
          | Some ps ->
            Hashtbl.replace st.info.pos n ps;
            (match Hashtbl.find_opt st.info.block_of site with
            | Some b -> Hashtbl.replace st.info.block_of n b
            | None -> ())
          | None -> ())
        | None -> ())
      pre;
    List.iter
      (function Var u -> note_drop st u | Const _ | Global _ -> ())
      (operands_of_instr ni.instr);
    Lit op

let barrier st ~site rw = barrier_of st.info ~site rw

(* Offer a staged instruction to the matcher until it settles.  Returns the
   final form to commit, or None if the def disappeared ([Lit]), or raises
   nothing — exhaustion is reported via st.restart / the driver's flag. *)
type settled = Emit of named_instr | Gone | Stop of named_instr

let rec settle st (ni : named_instr) (budget : int) : settled =
  if st.restart then Emit ni  (* commit current form; pass will restart *)
  else
    match ni.name with
    | None -> Emit ni
    | Some _ -> (
      match st.matcher st.ctx ~barrier:(barrier st) ni with
      | None -> Emit ni
      | Some (r, rw) ->
        if not (st.fuel ()) then Stop ni
        else begin
          st.on_rewrite ~rule:r.Rewrite.rule_name ~site:(Option.get ni.name);
          st.fired <- st.fired + 1;
          match apply_rewrite st ni rw with
          | Lit _ -> Gone
          | Next -> Emit ni
          | Retry i' ->
            if budget <= 1 then begin
              (* budget spent with rules still firing: fall back to a
                 fresh scan rather than diverge from the reference *)
              st.restart <- true;
              Emit { ni with instr = i' }
            end
            else settle st { ni with instr = i' } (budget - 1)
        end)

(* ------------------------------------------------------------------ *)

let default_retry_budget = 32

let run_pass ~(matcher : matcher) ~(fuel : unit -> bool)
    ~(on_rewrite : rule:string -> site:string -> unit) ?(retry_budget = default_retry_budget)
    ~(armed : bool ref) (modul : modul) (f : func) : pass_result =
  Atomic.incr passes_total;
  let st = mk_state ~matcher ~fuel ~on_rewrite ~armed ~retry_budget modul f in
  let em = st.em in
  let exception Cut of func in
  (* Expand prefixes are staged next, at the site's position — the order a
     rescanning driver sees after replace_instr splices them in. *)
  let drain qrest =
    match st.pre_queue with
    | [] -> qrest
    | pre ->
      st.pre_queue <- [];
      pre @ qrest
  in
  let materialize_open queue term rest =
    let f' = Builder.Emit.materialize em ~open_:(Some (drain queue, term)) ~rest in
    if st.restart then fst (Dce.run f') else f'
  in
  try
    let rec blocks = function
      | [] -> ()
      | (b : block) :: rest ->
        Builder.Emit.start_block em b.label;
        let rec instrs queue =
          match queue with
          | [] -> ()
          | (ni : named_instr) :: qrest -> (
            (* cascade kills can delete instructions still in the queue *)
            match ni.name with
            | Some n when Builder.Emit.is_deleted em n -> instrs qrest
            | _ -> (
              let staged = Builder.Emit.stage em ni in
              st.cursor <- staged.name;
              match settle st staged st.retry_budget with
              | Stop final ->
                (* fuel exhausted before applying the match: keep the
                   instruction in its current form and stop the run *)
                st.cursor <- None;
                Builder.Emit.commit em final;
                raise
                  (Cut (Builder.Emit.materialize em ~open_:(Some (qrest, b.term)) ~rest))
              | Gone ->
                st.cursor <- None;
                if st.restart then raise (Cut (materialize_open qrest b.term rest))
                else instrs (drain qrest)
              | Emit final ->
                if Builder.Emit.is_deleted em (Option.value ~default:"" final.name) then begin
                  st.cursor <- None;
                  if st.restart then raise (Cut (materialize_open qrest b.term rest))
                  else instrs (drain qrest)
                end
                else begin
                  commit st final;
                  if st.restart then raise (Cut (materialize_open qrest b.term rest))
                  else instrs (drain qrest)
                end))
        in
        instrs b.instrs;
        Builder.Emit.seal_block em b.term;
        blocks rest
    in
    blocks f.blocks;
    Fixpoint (Builder.Emit.materialize em ~open_:None ~rest:[], st.fired)
  with Cut f' ->
    if st.restart then begin
      Atomic.incr restarts_total;
      Restarted (f', st.fired)
    end
    else Exhausted (f', st.fired)

(** The peephole rule framework: rules inspect one instruction (with operand
    definitions and use counts) and propose a rewrite.  [sound = false]
    marks the hallucination variants used only by the model's action space. *)

open Veriopt_ir

type ctx = {
  func : Ast.func;
  modul : Ast.modul;
  defs : (Ast.var, Ast.instr) Hashtbl.t;
  uses : (Ast.var, int) Hashtbl.t;
  names : Builder.names;  (** live fresh-name supply for expanding rules *)
}

val make_ctx : Ast.modul -> Ast.func -> ctx

val fresh_supply : ctx -> Builder.names
(** The supply with its counter reset to 0 (one supply per rule
    invocation, as the pre-fold-engine drivers behaved). *)

type rewrite =
  | Value of Ast.operand  (** replace all uses of the result, delete *)
  | Instr of Ast.instr  (** replace in place, same result name *)
  | Expand of Ast.named_instr list * Ast.operand
      (** insert new instructions, substitute the result *)

type rule = {
  rule_name : string;
  family : string;
  sound : bool;
  apply : ctx -> Ast.named_instr -> rewrite option;
}

val rule : ?sound:bool -> family:string -> string -> (ctx -> Ast.named_instr -> rewrite option) -> rule

(** {1 Matching helpers} *)

val cint : Ast.operand -> (int * int64) option
val is_cint : int64 -> Ast.operand -> bool
val is_zero : Ast.operand -> bool
val is_all_ones : Ast.operand -> bool
val def_of : ctx -> Ast.operand -> Ast.instr option
val one_use : ctx -> Ast.operand -> bool
val same_operand : Ast.operand -> Ast.operand -> bool
val known : ctx -> int -> Ast.operand -> Known_bits.t

(** The instcombine pass, driven by the emit-time fold engine
    ({!Fold_engine}): the fixpoint is "re-emit the function through the
    fold state until no rewrite fires", with {!Rules_mem} forwarding and
    {!Dce} folded between re-emissions.

    Every application is recorded in a trace of (rule, site) pairs.  The
    trace is not just for debugging: it is the supervision signal for the
    surrogate model — the "teacher action sequence" that turns an -O0
    function into its optimized label (see veriopt_llm.Sft).  The
    reference rescanning driver ({!run_fixpoint}) is kept precisely
    because the two must produce bit-identical traces; the differential
    fuzz and [make fold-bench] hold them to it. *)

open Veriopt_ir
open Ast

type trace_entry = { rule : string; site : string }

type result = {
  func : func;
  trace : trace_entry list;
  steps : int;
  fuel_exhausted : bool;
      (** [max_steps] ran out: [func]/[trace] are a valid but possibly
          non-fixpoint prefix of the full optimization. *)
}

(** All sound rewrite rules, in application priority order.  The
    canonicalization family is deliberately last: a real simplification at
    a site always outranks a mere renormalization. *)
let all_rules : Rewrite.rule list =
  Rules_arith.rules @ Rules_logic.rules @ Rules_shift.rules @ Rules_icmp.rules
  @ Rules_select.rules @ Rules_cast.rules @ Rules_phi.rules @ Rules_extra.rules
  @ Rules_narrow.rules @ Rules_canon.rules

let rule_names = List.map (fun (r : Rewrite.rule) -> r.Rewrite.rule_name) all_rules

let find_rule name = List.find_opt (fun (r : Rewrite.rule) -> r.Rewrite.rule_name = name) all_rules

(* ------------------------------------------------------------------ *)
(* Run counters (surfaced in Report.engine_stats) *)

let runs_total = Atomic.make 0
let rewrites_total = Atomic.make 0
let fuel_exhausted_total = Atomic.make 0

(* ------------------------------------------------------------------ *)
(* The shared matcher *)

(* Constant folding runs before the rule catalog, like InstCombine; it is
   traced as a synthetic rule so SFT sequences name it uniformly. *)
let fold_rule = Rewrite.rule ~family:"fold" "constant-fold" (fun _ _ -> None)

let matcher_of_rules (rules : Rewrite.rule list) : Fold_engine.matcher =
 fun ctx ~barrier ni ->
  match ni.name with
  | None -> None
  | Some _ -> (
    let folded =
      match Fold.fold_instr ni.instr with
      | Some op when not (barrier ~site:ni (Rewrite.Value op)) ->
        Some (fold_rule, Rewrite.Value op)
      | Some _ | None -> None
    in
    match folded with
    | Some _ -> folded
    | None ->
      List.find_map
        (fun (r : Rewrite.rule) ->
          if not r.Rewrite.sound then None
          else
            match r.Rewrite.apply ctx ni with
            | Some rw -> if barrier ~site:ni rw then None else Some (r, ni, rw)
            | None -> None)
        rules
      |> Option.map (fun (r, _, rw) -> (r, rw)))

let default_matcher = matcher_of_rules all_rules

(** Apply a single rewrite at the instruction named [site]. *)
let apply_rewrite (f : func) (site : var) (rw : Rewrite.rewrite) : func =
  match rw with
  | Rewrite.Value op ->
    let f = Builder.substitute_operand f ~from:site ~to_:op in
    Builder.replace_instr f ~name:site ~with_:[]
  | Rewrite.Instr instr -> Builder.replace_instr f ~name:site ~with_:[ { name = Some site; instr } ]
  | Rewrite.Expand (pre, result) ->
    let f = Builder.substitute_operand f ~from:site ~to_:result in
    Builder.replace_instr f ~name:site ~with_:pre

(** Find the first (rule, site) applicable in program order with rule
    priority, or [None] at fixpoint.  Shares the matcher (and so the
    PHIBARRIER) with the fold engine. *)
let find_applicable ?(rules = all_rules) (modul : modul) (f : func) :
    (Rewrite.rule * named_instr * Rewrite.rewrite) option =
  let matcher = if rules == all_rules then default_matcher else matcher_of_rules rules in
  let ctx = Rewrite.make_ctx modul f in
  let info = lazy (Fold_engine.site_info_of f) in
  let barrier ~site rw = Fold_engine.barrier_of (Lazy.force info) ~site rw in
  List.find_map
    (fun b ->
      List.find_map
        (fun ni -> Option.map (fun (r, rw) -> (r, ni, rw)) (matcher ctx ~barrier ni))
        b.instrs)
    f.blocks

(* ------------------------------------------------------------------ *)
(* Drivers *)

let mem_rule (e : Rules_mem.trace_entry) = { rule = e.Rules_mem.rule; site = e.Rules_mem.site }

(** Run instcombine to fixpoint through the fold engine: rule catalog +
    constant folding + block-local memory forwarding + DCE. [max_steps]
    bounds pathological rule cycles. *)
let run ?(max_steps = 2000) (modul : modul) (f : func) : result =
  Atomic.incr runs_total;
  let trace = ref [] in
  let steps = ref 0 in
  let exhausted = ref false in
  let fuel () =
    incr steps;
    if !steps > max_steps then begin
      exhausted := true;
      false
    end
    else true
  in
  let on_rewrite ~rule ~site = trace := { rule; site } :: !trace in
  let armed = ref false in
  let rec loop f =
    if !exhausted then f
    else
      match Fold_engine.run_pass ~matcher:default_matcher ~fuel ~on_rewrite ~armed modul f with
      | Fold_engine.Restarted (f', _) -> loop f'
      | Fold_engine.Exhausted (f', _) -> f'
      | Fold_engine.Fixpoint (f', _) -> (
        (* clean pass end: memory stages, then DCE, then (if anything
           moved) another emitting pass — the reference driver's order *)
        let f1, t1 = Rules_mem.forward_loads f' in
        if t1 <> [] then
          if fuel () then begin
            trace := List.rev_append (List.map mem_rule t1) !trace;
            loop (fst (Dce.run f1))
          end
          else f'
        else
          let f2, t2 = Rules_mem.eliminate_dead_stores f' in
          if t2 <> [] then
            if fuel () then begin
              trace := List.rev_append (List.map mem_rule t2) !trace;
              loop (fst (Dce.run f2))
            end
            else f'
          else
            let f3, removed = Dce.run f' in
            if removed > 0 then loop f3 else f3)
  in
  let func = loop f in
  let trace = List.rev !trace in
  Atomic.fetch_and_add rewrites_total (List.length trace) |> ignore;
  if !exhausted then Atomic.incr fuel_exhausted_total;
  { func; trace; steps = !steps; fuel_exhausted = !exhausted }

exception Fuel_exhausted

(** The pre-fold-engine rescanning driver, kept as the differential
    reference: after every rewrite it rebuilds the context and rescans
    from instruction one.  Same matcher, same barrier, same fuel
    accounting — the fold engine must reproduce its trace bit for bit. *)
let run_fixpoint ?(max_steps = 2000) (modul : modul) (f : func) : result =
  let trace = ref [] in
  let steps = ref 0 in
  let exhausted = ref false in
  let bump () =
    incr steps;
    if !steps > max_steps then raise Fuel_exhausted
  in
  let f = ref f in
  (try
     let changed = ref true in
     while !changed do
       changed := false;
       (match find_applicable modul !f with
       | Some (r, ni, rw) ->
         bump ();
         let site = Option.get ni.name in
         f := apply_rewrite !f site rw;
         trace := { rule = r.Rewrite.rule_name; site } :: !trace;
         changed := true
       | None -> ());
       if not !changed then begin
         let f', t = Rules_mem.forward_loads !f in
         if t <> [] then begin
           bump ();
           f := f';
           trace := List.rev_append (List.map mem_rule t) !trace;
           changed := true
         end
       end;
       if not !changed then begin
         let f', t = Rules_mem.eliminate_dead_stores !f in
         if t <> [] then begin
           bump ();
           f := f';
           trace := List.rev_append (List.map mem_rule t) !trace;
           changed := true
         end
       end;
       let f', removed = Dce.run !f in
       if removed > 0 then begin
         f := f';
         changed := true
       end
     done
   with Fuel_exhausted -> exhausted := true);
  { func = !f; trace = List.rev !trace; steps = !steps; fuel_exhausted = !exhausted }

(** Canonicalization as catalog rules (family ["canon"]): constant
    re-masking and commutative constant-to-the-right ordering, shared by
    the fold engine and the reference fixpoint driver.  Placed last in the
    catalog so real simplifications win over renormalizations. *)

val rules : Rewrite.rule list

(** Emit-time fold engine: one incremental pass over a function, offering
    each instruction to the shared matcher (constant fold + rule catalog +
    canonicalization) with [Next] / [Retry] / [Lit] outcomes, a bounded
    retry budget, a PHIBARRIER guard at loop-header phis, and incremental
    DCE — restarting the pass whenever a rewrite could disturb the
    already-emitted prefix, so the (rule, site) trace is exactly the
    reference rescanning driver's.  See the implementation header for the
    exactness argument (triggers T1/T2/T3). *)

open Veriopt_ir

type outcome = Next | Retry of Ast.instr | Lit of Ast.operand

type matcher =
  Rewrite.ctx ->
  barrier:(site:Ast.named_instr -> Rewrite.rewrite -> bool) ->
  Ast.named_instr ->
  (Rewrite.rule * Rewrite.rewrite) option
(** Shared with the reference fixpoint driver; [barrier] is the PHIBARRIER
    predicate (true = refuse the rewrite and keep matching). *)

type pass_result =
  | Fixpoint of Ast.func * int  (** full pass completed; n rewrites fired *)
  | Restarted of Ast.func * int  (** exactness trigger: rescan from the top *)
  | Exhausted of Ast.func * int  (** fuel ran out mid-pass *)

val passes_total : int Atomic.t
val restarts_total : int Atomic.t
val barrier_hits_total : int Atomic.t

type site_info

val site_info_of : Ast.func -> site_info
(** Def positions / blocks plus lazy loop-header detection, as the barrier
    needs them.  Cheap unless a phi fold actually reaches the CFG check. *)

val barrier_of : site_info -> site:Ast.named_instr -> Rewrite.rewrite -> bool
(** The PHIBARRIER: refuse [Lit (Var w)] at a loop-header phi when [w] is
    defined below the phi (the degenerate loop-carried self-reference). *)

val default_retry_budget : int

val run_pass :
  matcher:matcher ->
  fuel:(unit -> bool) ->
  on_rewrite:(rule:string -> site:string -> unit) ->
  ?retry_budget:int ->
  armed:bool ref ->
  Ast.modul ->
  Ast.func ->
  pass_result
(** One emitting pass.  [fuel] is called before each rewrite application
    (false stops the run, leaving the match unapplied); [on_rewrite] is
    called once per applied rewrite in application order; [armed] is the
    run-level DCE latch, shared across passes of one run. *)

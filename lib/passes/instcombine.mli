(** The instcombine pass: a fold-engine driver over the peephole rule
    catalog plus constant folding, block-local memory optimization and
    DCE, with the pre-refactor rescanning driver kept as the differential
    reference.

    The trace of (rule, site) applications is the supervision signal for
    the surrogate model (the teacher action sequence of SFT); both drivers
    produce it bit-identically. *)

type trace_entry = { rule : string; site : string }

type result = {
  func : Veriopt_ir.Ast.func;
  trace : trace_entry list;
  steps : int;  (** fuel consumed (rewrites + memory batches) *)
  fuel_exhausted : bool;
      (** [max_steps] ran out: the result is a valid but possibly
          non-fixpoint prefix of the full optimization *)
}

val all_rules : Rewrite.rule list
(** Sound rewrite rules in application priority order; the
    canonicalization family ({!Rules_canon}) is last. *)

val rule_names : string list

val find_rule : string -> Rewrite.rule option

val runs_total : int Atomic.t
val rewrites_total : int Atomic.t
val fuel_exhausted_total : int Atomic.t

val matcher_of_rules : Rewrite.rule list -> Fold_engine.matcher

val default_matcher : Fold_engine.matcher
(** [matcher_of_rules all_rules]: constant fold first, then the catalog. *)

val apply_rewrite : Veriopt_ir.Ast.func -> Veriopt_ir.Ast.var -> Rewrite.rewrite -> Veriopt_ir.Ast.func
(** Apply a single rewrite at the instruction named by the site. *)

val find_applicable :
  ?rules:Rewrite.rule list ->
  Veriopt_ir.Ast.modul ->
  Veriopt_ir.Ast.func ->
  (Rewrite.rule * Veriopt_ir.Ast.named_instr * Rewrite.rewrite) option
(** First applicable (rule, site) in program order, or [None] at fixpoint.
    Shares the matcher (and PHIBARRIER) with the fold engine. *)

val run : ?max_steps:int -> Veriopt_ir.Ast.modul -> Veriopt_ir.Ast.func -> result
(** Fold-engine driver: re-emit the function through the fold state until
    no rewrite fires, memory forwarding and DCE between re-emissions. *)

val run_fixpoint : ?max_steps:int -> Veriopt_ir.Ast.modul -> Veriopt_ir.Ast.func -> result
(** The pre-refactor rescanning fixpoint driver (differential reference):
    must produce the same function and bit-identical trace as {!run}. *)

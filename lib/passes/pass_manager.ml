(** Pass composition.  [instcombine] alone is the reference label generator
    (the paper trains against `opt -instcombine` output); [aggressive] adds
    mem2reg and simplifycfg and approximates what the latency-stage model can
    discover beyond its labels. *)

open Veriopt_ir
open Ast

type trace_entry = { pass : string; rule : string; site : string }


(** The paper's reference pipeline: instcombine to fixpoint (through the
    emit-time fold engine). *)
let instcombine (modul : modul) (f : func) : func * trace_entry list =
  let r = Instcombine.run modul f in
  ( r.Instcombine.func,
    List.map
      (fun (e : Instcombine.trace_entry) ->
        { pass = "instcombine"; rule = e.Instcombine.rule; site = e.Instcombine.site })
      r.Instcombine.trace )

(** instcombine + mem2reg + simplifycfg, iterated: the full space of sound
    transformations available to the model. *)
let aggressive ?(max_iters = 5) (modul : modul) (f : func) : func * trace_entry list =
  (* acc is a reversed prefix: O(1) batch appends instead of acc @ news *)
  let rec go f acc i =
    if i >= max_iters then (f, List.rev acc)
    else begin
      let f1, t1 = instcombine modul f in
      let f2, t2 = Mem2reg.run f1 in
      let t2 =
        List.map
          (fun (e : Mem2reg.trace_entry) ->
            { pass = "mem2reg"; rule = e.Mem2reg.rule; site = e.Mem2reg.site })
          t2
      in
      let f3, t3 = Simplifycfg.run f2 in
      let t3 =
        List.map
          (fun (e : Simplifycfg.trace_entry) ->
            { pass = "simplifycfg"; rule = e.Simplifycfg.rule; site = e.Simplifycfg.site })
          t3
      in
      let f4, removed = Dce.run f3 in
      let news = t1 @ t2 @ t3 in
      if news = [] && removed = 0 then (f4, List.rev acc)
      else go f4 (List.rev_append news acc) (i + 1)
    end
  in
  go f [] 0

(** Canonicalization as catalog rules.

    The emit-time fold engine and the reference fixpoint driver share one
    rule catalog, so canonical form is produced the same way by both: as
    ordinary traced rewrites, placed *last* in the catalog so a real
    simplification (add-zero, icmp-fold, ...) always wins over a mere
    renormalization at the same site.  The transformations themselves live
    in {!Veriopt_ir.Canon}; these wrappers only detect "would change". *)

open Veriopt_ir
open Ast
open Rewrite

let const_mask =
  rule ~family:"canon" "canon-const-mask" (fun _ctx ni ->
      let i' = map_instr_operands Canon.mask_operand ni.instr in
      if i' <> ni.instr then Some (Instr i') else None)

let commute =
  rule ~family:"canon" "canon-commute" (fun _ctx ni ->
      match ni.instr with
      | Binop _ ->
        let i' = Canon.canon_instr ni.instr in
        if i' <> ni.instr then Some (Instr i') else None
      | _ -> None)

let icmp_commute =
  rule ~family:"canon" "canon-icmp-commute" (fun _ctx ni ->
      match ni.instr with
      | Icmp _ ->
        let i' = Canon.canon_instr ni.instr in
        if i' <> ni.instr then Some (Instr i') else None
      | _ -> None)

(* const-mask first: commute assumes masked operands, and a single
   application of canon_instr does both anyway — the split is only so the
   trace names which normalization fired. *)
let rules = [ const_mask; commute; icmp_commute ]

(** Concrete interpreter for the IR subset.

    Implements the LLVM semantics our verifier encodes symbolically: poison
    propagation, UB detection (division traps, memory errors, branch on
    poison), byte-addressed memory for allocas and globals, and an observable
    trace of impure calls.  Differential agreement between this interpreter
    and the SMT encoding is one of the test suite's core properties. *)

open Veriopt_ir
open Ast

type value =
  | VInt of { width : int; v : int64 } (* canonical: masked *)
  | VPtr of { base : int; offset : int }
  | VPoison

exception Undefined_behavior of string
exception Out_of_fuel

let ub fmt = Fmt.kstr (fun s -> raise (Undefined_behavior s)) fmt

type allocation = { bytes : Bytes.t; poisoned : bool array }

type state = {
  modul : modul;
  locals : (var, value) Hashtbl.t;
      (* latest binding wins, as in SSA re-execution of a loop body; a
         hashtable keeps lookup O(1) where an assoc list would make long
         loops quadratic in trip count *)
  allocations : (int, allocation) Hashtbl.t;
  global_base : (gname, int) Hashtbl.t;
  mutable next_base : int;
  mutable calls : (gname * value list) list; (* impure-call trace, reversed *)
  mutable fuel : int;
  (* Deterministic environment for external calls: maps (callee, args) to a
     result so that source and target see the same world. *)
  external_fn : gname -> value list -> Types.t -> value;
  undef_value : Types.t -> value;
}

let vint width v = VInt { width; v = Bits.mask width v }

let default_undef ty =
  match ty with Types.Int w -> vint w 0L | Types.Ptr -> VPtr { base = 0; offset = 0 } | _ -> VPoison

(* A deterministic pseudo-random pure function of the callee name and
   arguments: both sides of an equivalence check observe the same world. *)
let default_external name args ret_ty =
  match ret_ty with
  | Types.Void -> VPoison (* unused *)
  | Types.Int w ->
    let h = Hashtbl.hash (name, List.map (function VInt { v; _ } -> v | _ -> 0L) args) in
    vint w (Int64.of_int h)
  | _ -> VPtr { base = 0; offset = 0 }

let alloc state ty =
  let size = max 1 (Types.size_in_bytes ty) in
  let base = state.next_base in
  state.next_base <- base + 1;
  Hashtbl.replace state.allocations base
    { bytes = Bytes.make size '\000'; poisoned = Array.make size false };
  VPtr { base; offset = 0 }

let create ?(fuel = 100_000) ?(external_fn = default_external) ?(undef_value = default_undef)
    (modul : modul) : state =
  let state =
    {
      modul;
      locals = Hashtbl.create 64;
      allocations = Hashtbl.create 16;
      global_base = Hashtbl.create 4;
      next_base = 1;
      calls = [];
      fuel;
      external_fn;
      undef_value;
    }
  in
  List.iter
    (fun (g : global) ->
      match alloc state g.gty with
      | VPtr { base; _ } ->
        Hashtbl.replace state.global_base g.gname base;
        let a = Hashtbl.find state.allocations base in
        let size = Types.size_in_bytes g.gty in
        for i = 0 to min size 8 - 1 do
          Bytes.set a.bytes i (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical g.init (8 * i)) 0xffL)))
        done
      | _ -> assert false)
    modul.globals;
  state

let lookup state v =
  match Hashtbl.find_opt state.locals v with
  | Some value -> value
  | None -> ub "use of undefined value %%%s" v

let eval_const state = function
  | CInt { width; value } -> vint width value
  | CNull -> VPtr { base = 0; offset = 0 }
  | CUndef ty -> state.undef_value ty
  | CPoison _ -> VPoison

let eval_operand state ?ty op =
  ignore ty;
  match op with
  | Var v -> lookup state v
  | Const c -> eval_const state c
  | Global g -> (
    match Hashtbl.find_opt state.global_base g with
    | Some base -> VPtr { base; offset = 0 }
    | None -> ub "unknown global @%s" g)

let as_int = function
  | VInt { width; v } -> (width, v)
  | VPtr _ -> ub "pointer used as integer"
  | VPoison -> ub "unexpected poison operand" (* callers catch poison first *)

let load_int state ~width ~base ~offset =
  if base = 0 then ub "load from null pointer";
  match Hashtbl.find_opt state.allocations base with
  | None -> ub "load from invalid pointer"
  | Some a ->
    let size = (width + 7) / 8 in
    if offset < 0 || offset + size > Bytes.length a.bytes then ub "out-of-bounds load";
    let poisoned = ref false in
    let v = ref 0L in
    for i = size - 1 downto 0 do
      if a.poisoned.(offset + i) then poisoned := true;
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get a.bytes (offset + i))))
    done;
    if !poisoned then VPoison else vint width !v

let store_int state ~width ~base ~offset ~value ~poison =
  if base = 0 then ub "store to null pointer";
  match Hashtbl.find_opt state.allocations base with
  | None -> ub "store to invalid pointer"
  | Some a ->
    let size = (width + 7) / 8 in
    if offset < 0 || offset + size > Bytes.length a.bytes then ub "out-of-bounds store";
    for i = 0 to size - 1 do
      a.poisoned.(offset + i) <- poison;
      Bytes.set a.bytes (offset + i)
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical value (8 * i)) 0xffL)))
    done


(* Pointers in memory: we encode VPtr as a 64-bit integer [base * 2^32 + offset]
   and remember nothing else; this supports the -O0 pattern of spilling
   pointers to allocas. *)
let encode_ptr base offset = Int64.logor (Int64.shift_left (Int64.of_int base) 32) (Int64.of_int (offset land 0xffffffff))

let decode_ptr v =
  (Int64.to_int (Int64.shift_right_logical v 32), Int64.to_int (Int64.logand v 0xffffffffL))

let eval_binop op flags w a b =
  let open Bits in
  let check_poison_flags result =
    if
      (flags.nsw
      &&
      match op with
      | Add -> add_nsw_overflow w a b
      | Sub -> sub_nsw_overflow w a b
      | Mul -> mul_nsw_overflow w a b
      | Shl -> shl_nsw_overflow w a b
      | _ -> false)
      || (flags.nuw
         &&
         match op with
         | Add -> add_nuw_overflow w a b
         | Sub -> sub_nuw_overflow w a b
         | Mul -> mul_nuw_overflow w a b
         | Shl -> shl_nuw_overflow w a b
         | _ -> false)
      || (flags.exact
         &&
         match op with
         | UDiv -> udiv_exact_violation w a b
         | SDiv -> sdiv_exact_violation w a b
         | LShr -> lshr_exact_violation w a b
         | AShr -> ashr_exact_violation w a b
         | _ -> false)
    then VPoison
    else result
  in
  match op with
  | Add -> check_poison_flags (vint w (add w a b))
  | Sub -> check_poison_flags (vint w (sub w a b))
  | Mul -> check_poison_flags (vint w (mul w a b))
  | UDiv ->
    if b = 0L then ub "udiv by zero";
    check_poison_flags (vint w (udiv w a b))
  | SDiv ->
    if b = 0L then ub "sdiv by zero";
    if sdiv_overflow w a b then ub "sdiv overflow";
    check_poison_flags (vint w (sdiv w a b))
  | URem ->
    if b = 0L then ub "urem by zero";
    vint w (urem w a b)
  | SRem ->
    if b = 0L then ub "srem by zero";
    if sdiv_overflow w a b then ub "srem overflow";
    vint w (srem w a b)
  | Shl -> if shift_amount_poison w b then VPoison else check_poison_flags (vint w (shl w a b))
  | LShr -> if shift_amount_poison w b then VPoison else check_poison_flags (vint w (lshr w a b))
  | AShr -> if shift_amount_poison w b then VPoison else check_poison_flags (vint w (ashr w a b))
  | And -> vint w (logand w a b)
  | Or -> vint w (logor w a b)
  | Xor -> vint w (logxor w a b)

let rec gep_offset state base_ty (indices : (Types.t * operand) list) : int option =
  (* Returns None if any index is poison. *)
  match indices with
  | [] -> Some 0
  | (_, op) :: rest -> (
    match eval_operand state op with
    | VPoison -> None
    | VPtr _ -> ub "pointer used as gep index"
    | VInt { width; v } -> (
      let i = Int64.to_int (Bits.to_signed width v) in
      let elem_size, next_ty =
        match base_ty with
        | Types.Array (_, t) -> (Types.size_in_bytes t, t)
        | Types.Struct ts ->
          if i < 0 || i >= List.length ts then ub "struct gep index out of range";
          (Types.struct_field_offset ts i, List.nth ts i)
        | t -> (Types.size_in_bytes t, t)
      in
      let here =
        match base_ty with Types.Struct _ -> elem_size | _ -> i * elem_size
      in
      match gep_offset state next_ty rest with
      | None -> None
      | Some rest_off -> Some (here + rest_off)))

type outcome = {
  ret : value option;
  call_trace : (gname * value list) list;
  globals_final : (gname * value) list; (* observable memory at return *)
  steps : int; (* dynamic instructions executed: a latency proxy for tests *)
}

let run ?(fuel = 100_000) ?external_fn ?undef_value (modul : modul) (f : func)
    (args : value list) : outcome =
  let state = create ~fuel ?external_fn ?undef_value modul in
  if List.length args <> List.length f.params then ub "wrong number of arguments";
  List.iter2 (fun (_, v) a -> Hashtbl.replace state.locals v a) f.params args;
  let steps = ref 0 in
  let set name v = Hashtbl.replace state.locals name v in
  let current = ref (entry_block f) in
  let previous = ref None in
  let result = ref None in
  let finished = ref false in
  while not !finished do
    let b = !current in
    (* Phis read their incoming values simultaneously. *)
    let phi_values =
      List.filter_map
        (fun { name; instr } ->
          match (name, instr) with
          | Some n, Phi { incoming; ty } -> (
            match !previous with
            | None -> ub "phi in entry block"
            | Some from -> (
              match List.assoc_opt from (List.map (fun (o, l) -> (l, o)) incoming) with
              | None -> ub "phi has no incoming value for predecessor %%%s" from
              | Some op -> Some (n, eval_operand state ~ty op)))
          | _ -> None)
        b.instrs
    in
    List.iter (fun (n, v) -> set n v) phi_values;
    List.iter
      (fun { name; instr } ->
        state.fuel <- state.fuel - 1;
        if state.fuel <= 0 then raise Out_of_fuel;
        incr steps;
        match instr with
        | Phi _ -> ()
        | Binop { op; flags; ty; lhs; rhs } -> (
          let w = Types.width ty in
          let lv = eval_operand state ~ty lhs and rv = eval_operand state ~ty rhs in
          (* a poison divisor could be zero: immediate UB, as in Alive2 *)
          (match (op, rv) with
          | (UDiv | SDiv | URem | SRem), VPoison -> ub "division by poison divisor"
          | _ -> ());
          match (lv, rv) with
          | VPoison, _ | _, VPoison -> set (Option.get name) VPoison
          | a, b ->
            let _, av = as_int a and _, bv = as_int b in
            set (Option.get name) (eval_binop op flags w av bv))
        | Icmp { pred; ty; lhs; rhs } -> (
          match (eval_operand state ~ty lhs, eval_operand state ~ty rhs) with
          | VPoison, _ | _, VPoison -> set (Option.get name) VPoison
          | VPtr p1, VPtr p2 ->
            (* Pointer comparison on our flat encoding. *)
            let v1 = encode_ptr p1.base p1.offset and v2 = encode_ptr p2.base p2.offset in
            set (Option.get name) (vint 1 (if eval_icmp pred 64 v1 v2 then 1L else 0L))
          | a, b ->
            let w, av = as_int a and _, bv = as_int b in
            set (Option.get name) (vint 1 (if eval_icmp pred w av bv then 1L else 0L)))
        | Select { ty; cond; if_true; if_false } -> (
          match eval_operand state ~ty:Types.i1 cond with
          | VPoison -> set (Option.get name) VPoison
          | VInt { v; _ } ->
            let chosen = if v = 1L then if_true else if_false in
            set (Option.get name) (eval_operand state ~ty chosen)
          | VPtr _ -> ub "pointer used as select condition")
        | Cast { op; src_ty; value; dst_ty } -> (
          match eval_operand state ~ty:src_ty value with
          | VPoison -> set (Option.get name) VPoison
          | v -> (
            match (op, v) with
            | Trunc, VInt { width; v } ->
              set (Option.get name) (vint (Types.width dst_ty) (Bits.trunc width (Types.width dst_ty) v))
            | ZExt, VInt { width; v } ->
              set (Option.get name) (vint (Types.width dst_ty) (Bits.zext width (Types.width dst_ty) v))
            | SExt, VInt { width; v } ->
              set (Option.get name) (vint (Types.width dst_ty) (Bits.sext width (Types.width dst_ty) v))
            | PtrToInt, VPtr { base; offset } ->
              set (Option.get name) (vint (Types.width dst_ty) (Bits.mask (Types.width dst_ty) (encode_ptr base offset)))
            | IntToPtr, VInt { v; _ } ->
              let base, offset = decode_ptr v in
              set (Option.get name) (VPtr { base; offset })
            | Bitcast, v -> set (Option.get name) v
            | _ -> ub "invalid cast operand"))
        | Alloca { ty; _ } -> set (Option.get name) (alloc state ty)
        | Load { ty; ptr; _ } -> (
          match eval_operand state ~ty:Types.Ptr ptr with
          | VPoison -> ub "load from poison pointer"
          | VInt _ -> ub "load from non-pointer"
          | VPtr { base; offset } -> (
            match ty with
            | Types.Int w -> set (Option.get name) (load_int state ~width:w ~base ~offset)
            | Types.Ptr -> (
              match load_int state ~width:64 ~base ~offset with
              | VPoison -> set (Option.get name) VPoison
              | VInt { v; _ } ->
                let b, o = decode_ptr v in
                set (Option.get name) (VPtr { base = b; offset = o })
              | VPtr _ -> assert false)
            | _ -> ub "load of aggregate type"))
        | Store { ty; value; ptr; _ } -> (
          match eval_operand state ~ty:Types.Ptr ptr with
          | VPoison -> ub "store to poison pointer"
          | VInt _ -> ub "store to non-pointer"
          | VPtr { base; offset } -> (
            match eval_operand state ~ty value with
            | VPoison -> (
              match ty with
              | Types.Int w -> store_int state ~width:w ~base ~offset ~value:0L ~poison:true
              | Types.Ptr -> store_int state ~width:64 ~base ~offset ~value:0L ~poison:true
              | _ -> ub "store of aggregate type")
            | VInt { width; v } -> store_int state ~width ~base ~offset ~value:v ~poison:false
            | VPtr p ->
              store_int state ~width:64 ~base ~offset ~value:(encode_ptr p.base p.offset)
                ~poison:false))
        | Gep { base_ty; ptr; indices; inbounds } -> (
          match eval_operand state ~ty:Types.Ptr ptr with
          | VPoison -> set (Option.get name) VPoison
          | VInt _ -> ub "gep on non-pointer"
          | VPtr { base; offset } -> (
            match gep_offset state base_ty indices with
            | None -> set (Option.get name) VPoison
            | Some delta ->
              let offset' = offset + delta in
              if inbounds && base <> 0 then (
                match Hashtbl.find_opt state.allocations base with
                | Some a when offset' >= 0 && offset' <= Bytes.length a.bytes ->
                  set (Option.get name) (VPtr { base; offset = offset' })
                | _ -> set (Option.get name) VPoison)
              else set (Option.get name) (VPtr { base; offset = offset' })))
        | Call { ret_ty; callee; args } -> (
          let arg_values = List.map (fun (ty, o) -> eval_operand state ~ty o) args in
          if List.exists (fun v -> v = VPoison) arg_values then ub "poison passed to call";
          let pure =
            match find_decl state.modul callee with Some d -> d.pure | None -> false
          in
          if not pure then state.calls <- (callee, arg_values) :: state.calls;
          let result = state.external_fn callee arg_values ret_ty in
          match (name, ret_ty) with
          | Some n, Types.Void -> ub "named void call %%%s" n
          | Some n, _ -> set n result
          | None, _ -> ())
        | Freeze { ty; value } -> (
          match eval_operand state ~ty value with
          | VPoison -> set (Option.get name) (state.undef_value ty)
          | v -> set (Option.get name) v))
      b.instrs;
    state.fuel <- state.fuel - 1;
    if state.fuel <= 0 then raise Out_of_fuel;
    incr steps;
    let goto l =
      match find_block f l with
      | Some b' ->
        previous := Some b.label;
        current := b'
      | None -> ub "branch to unknown block %%%s" l
    in
    match b.term with
    | Ret None ->
      result := None;
      finished := true
    | Ret (Some (ty, v)) ->
      result := Some (eval_operand state ~ty v);
      finished := true
    | Br l -> goto l
    | CondBr { cond; if_true; if_false } -> (
      match eval_operand state ~ty:Types.i1 cond with
      | VPoison -> ub "branch on poison"
      | VInt { v; _ } -> goto (if v = 1L then if_true else if_false)
      | VPtr _ -> ub "branch on pointer")
    | Switch { value; default; cases; _ } -> (
      match eval_operand state value with
      | VPoison -> ub "switch on poison"
      | VInt { v; _ } -> (
        match List.assoc_opt v cases with Some l -> goto l | None -> goto default)
      | VPtr _ -> ub "switch on pointer")
    | Unreachable -> ub "reached 'unreachable'"
  done;
  let globals_final =
    List.filter_map
      (fun (g : global) ->
        match (g.gty, Hashtbl.find_opt state.global_base g.gname) with
        | Types.Int w, Some base -> Some (g.gname, load_int state ~width:w ~base ~offset:0)
        | _ -> None)
      modul.globals
  in
  { ret = !result; call_trace = List.rev state.calls; globals_final; steps = !steps }

(** The I/O-equivalence oracle: correctness "verification" by finite
    input/output samples, the approach of most prior LLM-compiler work and
    the paper's foil for formal validation.

    Deliberately poison-blind: real test harnesses run compiled code, where
    poison is invisible — one of the reasons finite testing overestimates
    correctness (LLM-Vectorizer's observation). *)

type verdict =
  | Io_equivalent of int  (** number of agreeing samples *)
  | Io_different of Interp.value list  (** a distinguishing input *)
  | Io_unsupported of string

val boundary_values : int -> int64 list

val random_value : Random.State.t -> int -> int64
(** One random sample at the given width, drawn from all 64 bits before
    masking so every bit position (the sign bit included) is exercised. *)

val equivalent :
  ?samples:int ->
  ?seed:int ->
  ?fuel:int ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  tgt:Veriopt_ir.Ast.func ->
  verdict
(** Compare on boundary values plus seeded random vectors (default 32 total,
    the paper artifact's LIMIT=32), in the refinement direction.  [fuel]
    bounds each concrete run (default 200k steps); an exhausted run never
    distinguishes, so lowering it only weakens the oracle. *)

(** The I/O-equivalence oracle: correctness testing by finite input/output
    samples — what most prior LLM-compiler work uses (the paper's §I), and
    what LLM-Vectorizer showed to *overestimate* correctness compared to
    formal verification.

    We reproduce that comparison as an ablation: [equivalent] runs both
    functions on a deterministic battery of inputs (boundary values plus
    seeded random vectors) and declares them equivalent when no sample
    distinguishes them.  The bench suite measures how many formally-wrong
    candidates this oracle waves through. *)

open Veriopt_ir
open Ast

type verdict =
  | Io_equivalent of int (* number of samples agreeing *)
  | Io_different of Interp.value list (* a distinguishing input *)
  | Io_unsupported of string

(* Boundary values per width: the corners finite test suites reach for. *)
let boundary_values w =
  let open Bits in
  List.sort_uniq compare
    [ 0L; 1L; 2L; mask w (-1L); mask w (-2L); min_signed w; max_signed w; mask w 7L; mask w 42L ]

(* Sample all 64 bits before masking: [Random.State.int64 rng Int64.max_int]
   never sets the top bit, so w=64 vectors would miss the whole negative
   half-space (and every width would see a biased distribution). *)
let random_value rng w = Bits.mask w (Random.State.bits64 rng)

let outcome_key (o : Interp.outcome) =
  (o.Interp.ret, o.Interp.call_trace, o.Interp.globals_final)

(* One function's behavior on one input vector, with UB as a distinct
   observable class (finite testing treats a crash as an output). *)
let run_one ?(fuel = 200_000) (m : modul) (f : func) (args : Interp.value list) =
  match Interp.run ~fuel m f args with
  | o -> `Ok (outcome_key o)
  | exception Interp.Undefined_behavior _ -> `Ub
  | exception Interp.Out_of_fuel -> `Timeout

(** Compare [src] and [tgt] on [samples] input vectors (default 32, the
    LIMIT=32 of the paper's artifact).  Mirrors the refinement direction:
    source UB tolerates anything; otherwise observations must agree.
    [fuel] bounds each run; a sample where either side runs out never
    distinguishes, so a smaller budget only weakens the oracle, it cannot
    make it wrong. *)
let equivalent ?(samples = 32) ?(seed = 7) ?fuel (m : modul) ~(src : func) ~(tgt : func) :
    verdict =
  (* fault site: the concrete oracle crashing on a hostile candidate *)
  Veriopt_fault.Fault.inject Veriopt_fault.Fault.Oracle_exn ~site:"exec_oracle.equivalent";
  if
    List.length src.params <> List.length tgt.params
    || List.exists (fun (ty, _) -> not (Types.is_integer ty)) src.params
  then Io_unsupported "only integer-parameter functions are tested"
  else begin
    let rng = Random.State.make [| seed |] in
    let widths = List.map (fun (ty, _) -> Types.width ty) src.params in
    (* boundary vectors: diagonal of per-parameter boundary values *)
    let boundaries =
      match widths with
      | [] -> [ [] ]
      | w0 :: _ -> List.map (fun v -> List.map (fun w -> Bits.mask w v) widths) (boundary_values w0)
    in
    let random_vectors =
      List.init (max 0 (samples - List.length boundaries)) (fun _ ->
          List.map (random_value rng) widths)
    in
    let vectors = boundaries @ random_vectors in
    let rec check n = function
      | [] -> Io_equivalent n
      | vec :: rest ->
        let args = List.map2 (fun w v -> Interp.vint w v) widths vec in
        let distinguishes =
          (* poison is a compiler-level fiction: real test harnesses run
             compiled code, where an nsw-violating shift just produces the
             wrapped bits.  Any poison value is therefore a wildcard here --
             one of the reasons finite testing overestimates correctness. *)
          let values_agree a b =
            match (a, b) with
            | Some Interp.VPoison, Some _ | Some _, Some Interp.VPoison -> true
            | a, b -> a = b
          in
          let globals_agree ga gb =
            List.length ga = List.length gb
            && List.for_all2 (fun (_, a) (_, b) -> values_agree (Some a) (Some b)) ga gb
          in
          match (run_one ?fuel m src args, run_one ?fuel m tgt args) with
          | `Ub, _ -> false (* refinement: source UB allows anything *)
          | `Timeout, _ | _, `Timeout -> false
          | `Ok _, `Ub -> true
          | `Ok (ret_a, calls_a, globals_a), `Ok (ret_b, calls_b, globals_b) ->
            not (values_agree ret_a ret_b && calls_a = calls_b && globals_agree globals_a globals_b)
        in
        if distinguishes then Io_different args else check (n + 1) rest
    in
    check 0 vectors
  end

(** Crash-safe on-disk corpus of mined pain cases.

    Layout: one Blob-framed file per case ([case-NNNNNN.vadv], written
    tmp+rename so a torn case file cannot exist) plus a Blob-framed index
    ([index.vadv]) rewritten atomically after every commit.  Loading scans
    the directory and reads every case through the CRC frame — the index
    is a cross-check, not a trust root — so a kill -9 mid-commit loses at
    most the in-flight case and corruption of any single file degrades to
    one counted skip, never a torn entry served. *)

module Blob = Veriopt_store.Blob
module Fault = Veriopt_fault.Fault
module Parser = Veriopt_ir.Parser
module Workload = Veriopt_serve.Workload

let case_magic = "VADV"
let index_magic = "VADX"
let version = 1

type case = {
  c_id : int;
  c_family : string;
  c_label : string;
  c_key : string; (* MD5 of Engine.store_key at mine time — the dedup identity *)
  c_verdict : string;
  c_pain : float;
  c_wall_us : int;
  c_conflicts : int;
  c_unroll : int; (* 0 = engine default *)
  c_max_conflicts : int; (* 0 = engine default *)
  c_semantics : string; (* Engine.semantics_digest at mine time *)
  c_m_text : string;
  c_src_text : string;
  c_tgt_text : string;
}

type t = {
  dir : string;
  mutable cases : case list; (* ascending c_id *)
  mutable next_id : int;
  mutable skipped : int;
  mutable rescans : int;
  keys : (string, unit) Hashtbl.t;
}

type stats = { s_cases : int; s_skipped : int; s_rescans : int }

let stats t = { s_cases = List.length t.cases; s_skipped = t.skipped; s_rescans = t.rescans }
let cases t = t.cases
let mem_key t key = Hashtbl.mem t.keys key
let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Encoding: scalar fields then the three IR texts, NUL-separated — the
   printer never emits NUL, families/labels/digests contain none. *)

let encode (c : case) =
  String.concat "\x00"
    [
      string_of_int c.c_id;
      c.c_family;
      c.c_label;
      c.c_key;
      c.c_verdict;
      Printf.sprintf "%.6f" c.c_pain;
      string_of_int c.c_wall_us;
      string_of_int c.c_conflicts;
      string_of_int c.c_unroll;
      string_of_int c.c_max_conflicts;
      c.c_semantics;
      c.c_m_text;
      c.c_src_text;
      c.c_tgt_text;
    ]

let decode (s : string) : case option =
  match String.split_on_char '\x00' s with
  | [ id; family; label; key; verdict; pain; wall; conf; unroll; maxc; sem; m; src; tgt ] -> (
    try
      Some
        {
          c_id = int_of_string id;
          c_family = family;
          c_label = label;
          c_key = key;
          c_verdict = verdict;
          c_pain = float_of_string pain;
          c_wall_us = int_of_string wall;
          c_conflicts = int_of_string conf;
          c_unroll = int_of_string unroll;
          c_max_conflicts = int_of_string maxc;
          c_semantics = sem;
          c_m_text = m;
          c_src_text = src;
          c_tgt_text = tgt;
        }
    with _ -> None)
  | _ -> None

let case_file dir id = Filename.concat dir (Printf.sprintf "case-%06d.vadv" id)
let index_path dir = Filename.concat dir "index.vadv"

(* One case read: CRC/magic/version mismatches and undecodable payloads
   are corruption (a counted skip); a missing file is a racing unlink.
   The corpus_corrupt fault pretends a healthy read was damaged — the
   required degradation is exactly the skip path. *)
let read_case path : [ `Case of case | `Corrupt | `Missing ] =
  if Fault.fire Fault.Corpus_corrupt then `Corrupt
  else
    match Blob.read_framed ~magic:case_magic ~version ~path with
    | Ok payload -> ( match decode payload with Some c -> `Case c | None -> `Corrupt)
    | Error Blob.Missing -> `Missing
    | Error _ -> `Corrupt

let write_index t =
  let lines =
    List.map
      (fun c -> Printf.sprintf "%d\t%s\t%s" c.c_id (Filename.basename (case_file t.dir c.c_id)) c.c_key)
      t.cases
  in
  Blob.write_framed ~magic:index_magic ~version ~path:(index_path t.dir)
    (String.concat "\n" lines)

let is_case_file f =
  String.length f > 5 && String.sub f 0 5 = "case-" && Filename.check_suffix f ".vadv"

let load ~dir : t =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let t = { dir; cases = []; next_id = 0; skipped = 0; rescans = 0; keys = Hashtbl.create 64 } in
  let index_ok, indexed =
    match Blob.read_framed ~magic:index_magic ~version ~path:(index_path dir) with
    | Ok payload ->
      let files =
        String.split_on_char '\n' payload
        |> List.filter (fun l -> l <> "")
        |> List.filter_map (fun l ->
               match String.split_on_char '\t' l with _ :: file :: _ -> Some file | _ -> None)
      in
      (true, files)
    | Error _ -> (false, [])
  in
  if not index_ok then t.rescans <- t.rescans + 1;
  let on_disk =
    (try Array.to_list (Sys.readdir dir) with Sys_error _ -> []) |> List.filter is_case_file
  in
  (* cases the index promises but the scan cannot produce are lost entries *)
  List.iter (fun f -> if not (List.mem f on_disk) then t.skipped <- t.skipped + 1) indexed;
  let cases =
    List.filter_map
      (fun f ->
        match read_case (Filename.concat dir f) with
        | `Case c -> Some c
        | `Corrupt ->
          t.skipped <- t.skipped + 1;
          None
        | `Missing -> None)
      on_disk
  in
  let cases = List.sort (fun a b -> compare a.c_id b.c_id) cases in
  t.cases <- cases;
  t.next_id <- 1 + List.fold_left (fun acc c -> max acc c.c_id) (-1) cases;
  List.iter (fun c -> Hashtbl.replace t.keys c.c_key ()) cases;
  (* heal the index when it disagreed with the scan *)
  if (not index_ok) || List.exists (fun f -> not (List.mem f indexed)) on_disk then write_index t;
  t

let add t (c : case) : case =
  let c = { c with c_id = t.next_id } in
  t.next_id <- t.next_id + 1;
  (* case first (atomic), index second: a crash between the two is healed
     by the next load's scan; a crash inside either write leaves only a
     tmp file or the previous generation *)
  Blob.write_framed ~magic:case_magic ~version ~path:(case_file t.dir c.c_id) (encode c);
  t.cases <- t.cases @ [ c ];
  Hashtbl.replace t.keys c.c_key ();
  write_index t;
  c

(* ------------------------------------------------------------------ *)
(* Consumers *)

let decode_pair (c : case) : Mutate.pair option =
  try
    let m = Parser.parse_module c.c_m_text in
    let src = Parser.parse_func c.c_src_text in
    let tgt = Parser.parse_func c.c_tgt_text in
    Some { Mutate.a_m = m; a_src = src; a_tgt = tgt }
  with _ -> None

let queries t : Workload.query array =
  List.filter_map
    (fun c ->
      match decode_pair c with
      | None ->
        t.skipped <- t.skipped + 1;
        None
      | Some p ->
        Some
          (Workload.of_pair
             ~label:(c.c_family ^ ":" ^ c.c_label)
             ?unroll:(if c.c_unroll > 0 then Some c.c_unroll else None)
             ?max_conflicts:(if c.c_max_conflicts > 0 then Some c.c_max_conflicts else None)
             p.Mutate.a_m ~src:p.Mutate.a_src ~tgt:p.Mutate.a_tgt))
    t.cases
  |> Array.of_list

let pp_stats ppf t =
  let s = stats t in
  Fmt.pf ppf "corpus %s: %d cases, %d skipped, %d rescans" t.dir s.s_cases s.s_skipped s.s_rescans

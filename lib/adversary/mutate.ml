(** Semantics-aware pair mutators for the adversarial miner.

    Each mutator takes a verification pair (module, src, tgt) and returns a
    structurally different pair that is still well-formed IR — the point is
    to perturb the {e verification problem}, not to produce garbage the
    parser would reject anyway.  Mutants that fail the validator are
    discarded by {!apply}, so downstream consumers only ever see pairs the
    engine will accept.

    Mutators that touch one side only (everything except [widen]) may
    change the pair's equivalence status — that is deliberate: flag
    toggles and loop-bound perturbations are exactly the near-miss shapes
    that separate a sound verifier from a lucky one. *)

open Veriopt_ir
open Ast

type pair = { a_m : Ast.modul; a_src : Ast.func; a_tgt : Ast.func }

let families = [ "commute"; "flags"; "widen"; "gep"; "selphi"; "loopbound" ]

(* ------------------------------------------------------------------ *)
(* Surgery helpers *)

(* Every (block, index, instr) site satisfying [pred], in program order. *)
let sites (f : func) pred =
  List.concat_map
    (fun b ->
      List.concat
        (List.mapi (fun i ni -> if pred ni then [ (b.label, i, ni) ] else []) b.instrs))
    f.blocks

let rewrite_at (f : func) ~block ~index g =
  Builder.map_blocks f (fun b ->
      if b.label = block then
        { b with instrs = List.mapi (fun i ni -> if i = index then g ni else ni) b.instrs }
      else b)

let insert_after (f : func) ~block ~index (news : named_instr list) =
  Builder.map_blocks f (fun b ->
      if b.label = block then
        {
          b with
          instrs =
            List.concat
              (List.mapi (fun i ni -> if i = index then ni :: news else [ ni ]) b.instrs);
        }
      else b)

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(* The module text enters the engine's cache and store keys, so a mutated
   function must be written back into the module when it lives there. *)
let set_func (m : modul) (f : func) =
  { m with funcs = List.map (fun g -> if g.fname = f.fname then f else g) m.funcs }

(* ------------------------------------------------------------------ *)
(* commute: swap operands of a commutative binop, or swap an icmp's
   operands with the mirrored predicate.  Equivalence-preserving on its
   own; stresses the verifier's and the cache's canonicalization. *)

let commute rng p =
  let is_site ni =
    match ni.instr with
    | Binop { op; _ } -> binop_is_commutative op
    | Icmp _ -> true
    | _ -> false
  in
  match sites p.a_tgt is_site with
  | [] -> None
  | cand ->
    let bl, i, _ = pick rng cand in
    let tgt =
      rewrite_at p.a_tgt ~block:bl ~index:i (fun ni ->
          match ni.instr with
          | Binop b -> { ni with instr = Binop { b with lhs = b.rhs; rhs = b.lhs } }
          | Icmp ic ->
            { ni with instr = Icmp { ic with pred = icmp_swap_pred ic.pred; lhs = ic.rhs; rhs = ic.lhs } }
          | _ -> ni)
    in
    Some { p with a_tgt = tgt }

(* ------------------------------------------------------------------ *)
(* flags: toggle nsw/nuw on add/sub/mul/shl or exact on the divisions and
   right shifts — the overflow-flag near-misses of Alive's rule table. *)

let flags rng p =
  let is_site ni =
    match ni.instr with
    | Binop { op = Add | Sub | Mul | Shl | UDiv | SDiv | LShr | AShr; _ } -> true
    | _ -> false
  in
  match sites p.a_tgt is_site with
  | [] -> None
  | cand ->
    let bl, i, _ = pick rng cand in
    let coin = Random.State.bool rng in
    let tgt =
      rewrite_at p.a_tgt ~block:bl ~index:i (fun ni ->
          match ni.instr with
          | Binop ({ op = Add | Sub | Mul | Shl; flags; _ } as b) ->
            let flags =
              if coin then { flags with nsw = not flags.nsw }
              else { flags with nuw = not flags.nuw }
            in
            { ni with instr = Binop { b with flags } }
          | Binop ({ op = UDiv | SDiv | LShr | AShr; flags; _ } as b) ->
            { ni with instr = Binop { b with flags = { flags with exact = not flags.exact } } }
          | _ -> ni)
    in
    Some { p with a_tgt = tgt }

(* ------------------------------------------------------------------ *)
(* widen: double every integer width (i1 stays i1) in BOTH functions.
   Only pure register functions qualify — memory widths are layout-bound —
   and only when every doubled width still fits in 64 bits.  The pair's
   equivalence status may change (wrapping moves), but well-formedness is
   preserved; the payoff is a bit-blasting problem twice the size. *)

let widen_ty = function Types.Int w when w > 1 -> Types.Int (2 * w) | t -> t

let widen_op = function
  | Const (CInt { width; value }) when width > 1 ->
    Const (CInt { width = 2 * width; value = Bits.mask (2 * width) (Bits.sext width (2 * width) value) })
  | Const (CUndef t) -> Const (CUndef (widen_ty t))
  | Const (CPoison t) -> Const (CPoison (widen_ty t))
  | o -> o

(* Widening a loop multiplies its concrete trip count by up to 2^w — the
   interpreter-backed oracle battery would pay that on every probe — so
   widen only fires on loop-free (DAG) control flow, where the bigger
   bit-blast is the whole cost. *)
let has_cycle (f : func) =
  let color : (label, [ `Gray | `Black ]) Hashtbl.t = Hashtbl.create 8 in
  let cyclic = ref false in
  let rec visit l =
    match Hashtbl.find_opt color l with
    | Some `Gray -> cyclic := true
    | Some `Black -> ()
    | None -> (
      match find_block f l with
      | None -> ()
      | Some b ->
        Hashtbl.replace color l `Gray;
        List.iter visit (successors b.term);
        Hashtbl.replace color l `Black)
  in
  (match f.blocks with [] -> () | b :: _ -> visit b.label);
  !cyclic

let func_widenable f =
  let ok_ty = function Types.Int w -> w = 1 || (w > 1 && 2 * w <= 64) | _ -> false in
  let ok_op = function
    | Const (CInt { width; _ }) -> width = 1 || 2 * width <= 64
    | Const (CUndef t) | Const (CPoison t) -> ok_ty t
    | Var _ -> true
    | Const CNull | Global _ -> false
  in
  let ok_instr ni =
    (match ni.instr with
    | Alloca _ | Load _ | Store _ | Gep _ | Call _ -> false
    | Binop { ty; _ } | Icmp { ty; _ } | Select { ty; _ } | Phi { ty; _ } | Freeze { ty; _ } ->
      ok_ty ty
    | Cast { op = Trunc | ZExt | SExt; src_ty; dst_ty; _ } -> ok_ty src_ty && ok_ty dst_ty
    | Cast _ -> false)
    && List.for_all ok_op (operands_of_instr ni.instr)
  in
  let ok_term t =
    (match t with
    | Ret None | Br _ | Unreachable | CondBr _ -> true
    | Ret (Some (ty, _)) -> ok_ty ty
    | Switch { ty; _ } -> ok_ty ty)
    && List.for_all ok_op (operands_of_terminator t)
  in
  (not (has_cycle f))
  && List.for_all (fun (t, _) -> ok_ty t) f.params
  && (f.ret_ty = Types.Void || ok_ty f.ret_ty)
  && List.for_all (fun b -> List.for_all ok_instr b.instrs && ok_term b.term) f.blocks

let widen_func f =
  let widen_instr i =
    let i =
      match i with
      | Binop b -> Binop { b with ty = widen_ty b.ty }
      | Icmp ic -> Icmp { ic with ty = widen_ty ic.ty }
      | Select s -> Select { s with ty = widen_ty s.ty }
      | Cast c -> Cast { c with src_ty = widen_ty c.src_ty; dst_ty = widen_ty c.dst_ty }
      | Phi ph -> Phi { ph with ty = widen_ty ph.ty }
      | Freeze fr -> Freeze { fr with ty = widen_ty fr.ty }
      | other -> other
    in
    map_instr_operands widen_op i
  in
  let widen_term = function
    | Ret (Some (t, v)) -> Ret (Some (widen_ty t, widen_op v))
    | CondBr c -> CondBr { c with cond = widen_op c.cond }
    | Switch ({ ty = Types.Int w; _ } as s) when w > 1 ->
      Switch
        {
          s with
          ty = Types.Int (2 * w);
          value = widen_op s.value;
          cases = List.map (fun (v, l) -> (Bits.mask (2 * w) (Bits.sext w (2 * w) v), l)) s.cases;
        }
    | t -> map_terminator_operands widen_op t
  in
  {
    f with
    ret_ty = widen_ty f.ret_ty;
    params = List.map (fun (t, v) -> (widen_ty t, v)) f.params;
    blocks =
      List.map
        (fun b ->
          {
            b with
            instrs = List.map (fun ni -> { ni with instr = widen_instr ni.instr }) b.instrs;
            term = widen_term b.term;
          })
        f.blocks;
  }

let widen _rng p =
  if func_widenable p.a_src && func_widenable p.a_tgt then begin
    let src = widen_func p.a_src and tgt = widen_func p.a_tgt in
    Some { a_m = set_func p.a_m src; a_src = src; a_tgt = tgt }
  end
  else None

(* ------------------------------------------------------------------ *)
(* gep: deepen an address chain by routing a memory operation's pointer
   through a fresh zero-offset gep.  A semantic no-op that lengthens the
   pointer-arithmetic chain the encoder must reason through. *)

let gep rng p =
  let f = p.a_tgt in
  let is_site ni = match ni.instr with Load _ | Store _ | Gep _ -> true | _ -> false in
  match sites f is_site with
  | [] -> None
  | cand ->
    let bl, i, ni0 = pick rng cand in
    let ptr0 =
      match ni0.instr with
      | Load { ptr; _ } | Store { ptr; _ } | Gep { ptr; _ } -> ptr
      | _ -> assert false
    in
    let names = Builder.names_of_func f in
    let g = Builder.fresh names "advg" in
    let zgep =
      {
        name = Some g;
        instr =
          Gep
            {
              base_ty = Types.Int 8;
              ptr = ptr0;
              indices = [ (Types.i64, const_int 64 0L) ];
              inbounds = false;
            };
      }
    in
    let set_ptr = function
      | Load l -> Load { l with ptr = Var g }
      | Store s -> Store { s with ptr = Var g }
      | Gep gg -> Gep { gg with ptr = Var g }
      | other -> other
    in
    let tgt =
      Builder.map_blocks f (fun b ->
          if b.label = bl then
            {
              b with
              instrs =
                List.concat
                  (List.mapi
                     (fun j nj ->
                       if j = i then [ zgep; { nj with instr = set_ptr nj.instr } ] else [ nj ])
                     b.instrs);
            }
          else b)
    in
    Some { p with a_tgt = tgt }

(* ------------------------------------------------------------------ *)
(* selphi: inject an identity select over a defined value (icmp eq v v;
   select c, v, v — instcombine-foldable, verifier-visible), or thread an
   unconditional edge through a fresh trampoline block, renaming the phi
   incomings of the target.  Both are semantic no-ops that grow the CFG
   and value graph the refinement encoder walks. *)

let inject_select rng p =
  let f = p.a_tgt in
  let is_site ni =
    match (ni.name, ni.instr) with
    | Some _, Phi _ -> false (* inserting after a phi could break the phis-first block prefix *)
    | Some _, i -> ( match instr_result_type i with Some (Types.Int _) -> true | _ -> false)
    | None, _ -> false
  in
  match sites f is_site with
  | [] -> None
  | cand ->
    let bl, i, ni0 = pick rng cand in
    let v = Option.get ni0.name in
    let ty = match instr_result_type ni0.instr with Some t -> t | None -> assert false in
    let names = Builder.names_of_func f in
    let c = Builder.fresh names "advc" in
    let s = Builder.fresh names "advs" in
    (* route all uses of %v through the select first, then insert the
       identity chain (which itself uses %v) after the definition *)
    let f = Builder.substitute_operand f ~from:v ~to_:(Var s) in
    let news =
      [
        { name = Some c; instr = Icmp { pred = Eq; ty; lhs = Var v; rhs = Var v } };
        { name = Some s; instr = Select { ty; cond = Var c; if_true = Var v; if_false = Var v } };
      ]
    in
    Some { p with a_tgt = insert_after f ~block:bl ~index:i news }

let phi_trampoline rng p =
  let f = p.a_tgt in
  let cand =
    List.filter_map (fun b -> match b.term with Br l -> Some (b.label, l) | _ -> None) f.blocks
  in
  match cand with
  | [] -> None
  | _ ->
    let bfrom, lto = pick rng cand in
    let names = Builder.names_of_func f in
    let t = Builder.fresh names "advt" in
    let blocks =
      List.map
        (fun b ->
          let b = if b.label = bfrom then { b with term = Br t } else b in
          if b.label = lto then
            {
              b with
              instrs =
                List.map
                  (fun ni ->
                    match ni.instr with
                    | Phi ph ->
                      {
                        ni with
                        instr =
                          Phi
                            {
                              ph with
                              incoming =
                                List.map
                                  (fun (o, l) -> (o, if l = bfrom then t else l))
                                  ph.incoming;
                            };
                      }
                    | _ -> ni)
                  b.instrs;
            }
          else b)
        f.blocks
    in
    let tramp = { label = t; instrs = []; term = Br lto } in
    Some { p with a_tgt = { f with blocks = blocks @ [ tramp ] } }

let selphi rng p =
  if Random.State.bool rng then
    match inject_select rng p with None -> phi_trampoline rng p | some -> some
  else match phi_trampoline rng p with None -> inject_select rng p | some -> some

(* ------------------------------------------------------------------ *)
(* loopbound: bump a constant icmp operand by one — off-by-one loop bounds
   and threshold near-misses, the classic "almost equivalent" shape. *)

let loopbound rng p =
  let f = p.a_tgt in
  let is_site ni = match ni.instr with Icmp { rhs = Const (CInt _); _ } -> true | _ -> false in
  match sites f is_site with
  | [] -> None
  | cand ->
    let bl, i, _ = pick rng cand in
    let delta = if Random.State.bool rng then 1L else -1L in
    let tgt =
      rewrite_at f ~block:bl ~index:i (fun ni ->
          match ni.instr with
          | Icmp ({ rhs = Const (CInt { width; value }); _ } as ic) ->
            {
              ni with
              instr =
                Icmp
                  { ic with rhs = Const (CInt { width; value = Bits.mask width (Int64.add value delta) }) };
            }
          | _ -> ni)
    in
    Some { p with a_tgt = tgt }

(* ------------------------------------------------------------------ *)

let mutators : (string * (Random.State.t -> pair -> pair option)) array =
  [|
    ("commute", commute);
    ("flags", flags);
    ("widen", widen);
    ("gep", gep);
    ("selphi", selphi);
    ("loopbound", loopbound);
  |]

let valid p =
  let ok f = match Validator.validate_func ~module_:p.a_m f with Ok () -> true | Error _ -> false in
  ok p.a_src && ok p.a_tgt

let apply rng p =
  let k = Random.State.int rng (Array.length mutators) in
  let name, m = mutators.(k) in
  match m rng p with
  | None -> None
  | Some p' -> if valid p' then Some (name, p') else None

(** Pain-guided adversarial miner over verification pairs.

    The miner draws seeds from the synthetic data pipeline (both Cgen
    profiles, lowered and instcombined) and the serve workload generators,
    mutates them with {!Mutate}, probes each candidate through
    {!Veriopt_alive.Engine.verify_pain} under a tight deadline, and
    commits minimized high-pain cases to a crash-safe {!Corpus}.

    Minimization is delta-debugging under a concrete-oracle guard: a
    reduction is rejected when it changes the {!Veriopt_eval.Exec_oracle}
    verdict class or flips a conclusive engine verdict, so a mined case
    always exhibits the same ground-truth behaviour as the candidate that
    earned its pain score. *)

type config = {
  mc_seed : int;
  mc_budget_s : float;  (** wall budget for one mine run *)
  mc_max_cases : int;  (** stop after this many commits *)
  mc_probe_budget_s : float;  (** verify_pain deadline per probe *)
  mc_probe_unroll : int;
  mc_probe_conflicts : int;  (** probe SAT conflict budget (also recorded for replay) *)
  mc_pain_threshold : float;  (** minimum score to mine a candidate *)
  mc_oracle_samples : int;  (** concrete-oracle battery size for the guard *)
  mc_minimize_probes : int;  (** probe cap per minimization *)
}

val default_config : config

type result = {
  r_probes : int;
  r_candidates : int;
  r_invalid : int;  (** mutants rejected by the validator or with no site *)
  r_duplicates : int;  (** candidates already in the corpus by store key *)
  r_mined : int;
  r_stalls : int;  (** [miner_stall] fault firings, each a bounded counted pause *)
  r_minimize_accepted : int;
  r_minimize_flip_rejects : int;
      (** reductions rejected because they flipped a conclusive verdict or
          changed the oracle class *)
  r_committed_flips : int;
      (** audited flips between pre- and post-minimization verdicts among
          committed cases — zero by construction, asserted by the bench *)
  r_families : (string * int) list;
  r_wall_s : float;
}

(** Concrete-oracle verdict class used by the minimization guard. *)
type oclass = Oc_eq | Oc_diff | Oc_unsupported

val oracle_class : samples:int -> Mutate.pair -> oclass

val seed_pair : config -> int -> (string * Mutate.pair) option
(** The [i]-th seed of the pool: Cgen (adversarial profile on even
    residues, default on odd) lowered and instcombined, interleaved with
    serve-workload pairs.  Exposed for tests. *)

val mine : ?engine:Veriopt_alive.Engine.t -> ?cfg:config -> Corpus.t -> result
(** Run one budgeted mine loop, committing into the corpus.  Without
    [engine] a private one is created (small cache, oracle battery sized
    by [mc_oracle_samples]). *)

type replayed = { rp_id : int; rp_key : string; rp_family : string; rp_category : string }

val replay : ?engine:Veriopt_alive.Engine.t -> Corpus.t -> replayed list
(** Deterministic replay: every decodable case re-verified with its
    recorded conflict budget and {e no} wall deadline, so the verdict
    stream is a pure function of the corpus — two replays on fresh
    engines agree case by case. *)

val stress :
  ?seed:int ->
  ?rate:float ->
  ?duration_s:float ->
  ?mix_pct:int ->
  ?config:Veriopt_serve.Serve.config ->
  engine:Veriopt_alive.Engine.t ->
  Corpus.t ->
  Veriopt_serve.Traffic.summary option
(** Standing stress: drive open-loop traffic whose fresh queries replay
    the corpus ([mix_pct] < 100 mixes in the synthetic generators) through
    a serve instance, then drain it.  [None] when the corpus decodes to
    zero queries. *)

val curriculum_samples : Corpus.t -> Veriopt_data.Suite.sample list
(** The corpus as trainer curriculum samples (mined target as the label,
    empty trace) for {!Veriopt_rl.Trainer}'s [curriculum] option — the
    oversampling hook that points training at verifier-breaking shapes. *)

val pain_score : config -> Veriopt_alive.Engine.pain -> float
(** The scoring function: 1 for an inconclusive verdict, plus weighted
    deadline fraction, conflict fraction, breaker trips and worker
    kills/crashes.  Exposed for tests and the bench. *)

val category_name : Veriopt_alive.Alive.category -> string

val pp_result : Format.formatter -> result -> unit

(** Semantics-aware mutators over verification pairs.

    A mutation perturbs the {e verification problem} — operand order,
    poison flags, bit widths, address chains, CFG shape, loop bounds —
    while keeping both sides well-formed IR.  [commute], [gep] and
    [selphi] are semantic no-ops (they stress canonicalization and encoder
    depth); [flags] and [loopbound] deliberately risk changing the pair's
    equivalence status (near-miss shapes); [widen] transforms both sides
    identically, doubling the bit-blasting load. *)

type pair = {
  a_m : Veriopt_ir.Ast.modul;
  a_src : Veriopt_ir.Ast.func;
  a_tgt : Veriopt_ir.Ast.func;
}

val families : string list
(** The six mutator family names, in the order {!apply} draws from. *)

val set_func : Veriopt_ir.Ast.modul -> Veriopt_ir.Ast.func -> Veriopt_ir.Ast.modul
(** Write a (possibly rewritten) function back into the module by name —
    the module text enters the engine's cache and store keys, so the two
    must stay in sync when the source side is mutated. *)

val valid : pair -> bool
(** Both functions pass the validator against the pair's module. *)

val apply : Random.State.t -> pair -> (string * pair) option
(** Draw one mutator family and apply it.  [None] when the family found no
    applicable site or the mutant failed validation — callers just retry
    with the next random draw. *)

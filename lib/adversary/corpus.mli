(** Crash-safe on-disk corpus of mined pain cases.

    One Blob-framed (CRC + magic + tmp/rename) file per case plus an
    atomically rewritten Blob-framed index.  Loading rescans the directory
    and re-reads every case through its CRC frame, so the index is a
    cross-check rather than a trust root: kill -9 at any instant loses at
    most the in-flight case, and any damaged file degrades to one counted
    skip.  The [corpus_corrupt] fault kind forces the skip path on healthy
    reads. *)

type case = {
  c_id : int;
  c_family : string;  (** mutator family that produced the case *)
  c_label : string;  (** seed lineage, e.g. ["workload:mul-chain"] *)
  c_key : string;  (** MD5 of [Engine.store_key] at mine time — dedup identity *)
  c_verdict : string;  (** verdict category name at mine time *)
  c_pain : float;  (** pain score at mine time *)
  c_wall_us : int;
  c_conflicts : int;
  c_unroll : int;  (** probe unroll bound; [0] = engine default *)
  c_max_conflicts : int;  (** probe conflict budget; [0] = engine default *)
  c_semantics : string;  (** [Engine.semantics_digest] at mine time *)
  c_m_text : string;
  c_src_text : string;
  c_tgt_text : string;
}

type t

type stats = { s_cases : int; s_skipped : int; s_rescans : int }

val load : dir:string -> t
(** Open (creating the directory if needed) and scan.  Corrupt or
    undecodable cases are skipped and counted; a missing or corrupt index
    counts one rescan and is healed from the scan. *)

val add : t -> case -> case
(** Commit a case ([c_id] is assigned); the case file lands atomically
    before the index is rewritten.  Returns the stored case. *)

val cases : t -> case list
(** All live cases, ascending id. *)

val mem_key : t -> string -> bool
(** Is a case with this dedup key already committed? *)

val stats : t -> stats
val dir : t -> string

val decode_pair : case -> Mutate.pair option
(** Re-parse the stored IR texts; [None] (never an exception) on damage
    that slipped past the CRC, e.g. a semantics-incompatible writer. *)

val queries : t -> Veriopt_serve.Workload.query array
(** The corpus as replayable workload queries (each with its recorded
    budget knobs), for [Workload.Mined]/[Mixed] traffic sources.
    Undecodable cases are skipped and counted. *)

val pp_stats : Format.formatter -> t -> unit

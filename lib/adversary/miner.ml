(** Pain-guided adversarial miner.

    Seeds come from the synthetic pipeline (Cgen at both profiles, lowered
    and instcombined) and the serve workload generators; mutants come from
    {!Mutate}; each candidate is probed through {!Engine.verify_pain}
    under a tight deadline and scored for {e pain} — inconclusive
    verdicts, deadline fraction, solver conflicts, breaker trips, worker
    kills.  High-pain candidates are greedily minimized under a concrete
    oracle guard (a reduction that changes the oracle's verdict class or
    flips a conclusive engine verdict is rejected), then committed to the
    crash-safe {!Corpus}. *)

module Engine = Veriopt_alive.Engine
module Alive = Veriopt_alive.Alive
module Workload = Veriopt_serve.Workload
module Serve = Veriopt_serve.Serve
module Traffic = Veriopt_serve.Traffic
module Cgen = Veriopt_data.Cgen
module Lower = Veriopt_data.Lower
module Suite = Veriopt_data.Suite
module Pass_manager = Veriopt_passes.Pass_manager
module Exec_oracle = Veriopt_eval.Exec_oracle
module Fault = Veriopt_fault.Fault
open Veriopt_ir
open Ast

(* Set VERIOPT_ADV_TRACE=1 for per-iteration progress on stderr. *)
let trace =
  match Sys.getenv_opt "VERIOPT_ADV_TRACE" with Some ("" | "0") | None -> false | Some _ -> true

type config = {
  mc_seed : int;
  mc_budget_s : float;  (* wall budget for one mine run *)
  mc_max_cases : int;
  mc_probe_budget_s : float;  (* verify_pain deadline per probe *)
  mc_probe_unroll : int;
  mc_probe_conflicts : int;
  mc_pain_threshold : float;
  mc_oracle_samples : int;
  mc_minimize_probes : int;  (* probe cap per minimization *)
}

let default_config =
  {
    mc_seed = 1;
    mc_budget_s = 20.;
    mc_max_cases = 40;
    mc_probe_budget_s = 0.04;
    mc_probe_unroll = 6;
    mc_probe_conflicts = 2000;
    mc_pain_threshold = 0.5;
    mc_oracle_samples = 12;
    mc_minimize_probes = 12;
  }

type result = {
  r_probes : int;
  r_candidates : int;
  r_invalid : int;
  r_duplicates : int;
  r_mined : int;
  r_stalls : int;
  r_minimize_accepted : int;
  r_minimize_flip_rejects : int;
  r_committed_flips : int;  (* audited against the pre-minimization verdict; 0 by construction *)
  r_families : (string * int) list;
  r_wall_s : float;
}

let category_name = function
  | Alive.Equivalent -> "equivalent"
  | Alive.Semantic_error -> "semantic_error"
  | Alive.Syntax_error -> "syntax_error"
  | Alive.Inconclusive -> "inconclusive"

(* ------------------------------------------------------------------ *)
(* Pain scoring *)

let pain_score cfg (p : Engine.pain) =
  let inconclusive =
    match p.Engine.p_verdict.Alive.category with Alive.Inconclusive -> 1.0 | _ -> 0.
  in
  inconclusive
  +. (0.75 *. Float.min 1.0 p.Engine.p_deadline_frac)
  +. 0.5
     *. Float.min 1.0
          (float_of_int p.Engine.p_conflicts /. float_of_int (max 1 cfg.mc_probe_conflicts))
  +. float_of_int p.Engine.p_breaker_trips
  +. float_of_int (p.Engine.p_worker_kills + p.Engine.p_worker_crashes)

let probe cfg engine (p : Mutate.pair) =
  Engine.verify_pain ~unroll:cfg.mc_probe_unroll ~max_conflicts:cfg.mc_probe_conflicts
    ~budget_s:cfg.mc_probe_budget_s engine p.Mutate.a_m ~src:p.Mutate.a_src ~tgt:p.Mutate.a_tgt

let key_of cfg (p : Mutate.pair) =
  Digest.to_hex
    (Digest.string
       (Engine.store_key ~unroll:cfg.mc_probe_unroll ~max_conflicts:cfg.mc_probe_conflicts
          p.Mutate.a_m ~src:p.Mutate.a_src ~tgt:p.Mutate.a_tgt))

(* ------------------------------------------------------------------ *)
(* Concrete-oracle guard *)

type oclass = Oc_eq | Oc_diff | Oc_unsupported

(* The guard's concrete runs are fuel-capped well below the default: loop
   mutants (loopbound, widen) routinely run millions of steps, and the
   guard compares the class of the original against the class of each
   reduction at the SAME fuel, so a tight budget stays self-consistent
   while keeping a minimization probe in the low milliseconds. *)
let oracle_fuel = 20_000

let oracle_class ~samples (p : Mutate.pair) =
  match
    Exec_oracle.equivalent ~samples ~fuel:oracle_fuel p.Mutate.a_m ~src:p.Mutate.a_src
      ~tgt:p.Mutate.a_tgt
  with
  | Exec_oracle.Io_equivalent _ -> Oc_eq
  | Exec_oracle.Io_different _ -> Oc_diff
  | Exec_oracle.Io_unsupported _ -> Oc_unsupported
  | exception _ -> Oc_unsupported

let conclusive (v : Alive.verdict) =
  match v.Alive.category with
  | Alive.Equivalent | Alive.Semantic_error -> true
  | Alive.Syntax_error | Alive.Inconclusive -> false

let verdict_flip (v0 : Alive.verdict) (v1 : Alive.verdict) =
  conclusive v0 && conclusive v1 && v0.Alive.category <> v1.Alive.category

(* ------------------------------------------------------------------ *)
(* Delta-debugging reductions: drop a dead definition, drop a store,
   collapse a conditional branch (fixing the dropped edge's phis). *)

let is_dead_def uses ni =
  match (ni.name, ni.instr) with
  | Some v, (Binop _ | Icmp _ | Select _ | Cast _ | Gep _ | Phi _ | Freeze _ | Load _ | Alloca _)
    -> Option.value ~default:0 (Hashtbl.find_opt uses v) = 0
  | _ -> false

let remove_dead (f : func) : func list =
  let uses = Builder.use_counts f in
  List.concat_map
    (fun b ->
      List.concat
        (List.mapi
           (fun i ni ->
             if is_dead_def uses ni then [ Builder.remove_instr_at f ~block:b.label ~index:i ]
             else [])
           b.instrs))
    f.blocks

(* Aggregate variants: all dead defs (or all stores) dropped in one shot.
   Tried first, they collapse what would otherwise be a long chain of
   one-instruction accepts — each a probe plus an oracle battery — into a
   single round; the per-site reductions then mop up the remainder. *)
let remove_dead_all (f : func) : func list =
  let uses = Builder.use_counts f in
  let dropped = ref 0 in
  let f' =
    Builder.map_blocks f (fun b ->
        {
          b with
          instrs =
            List.filter
              (fun ni ->
                if is_dead_def uses ni then begin
                  incr dropped;
                  false
                end
                else true)
              b.instrs;
        })
  in
  if !dropped > 1 then [ f' ] else []

let remove_stores_all (f : func) : func list =
  let dropped = ref 0 in
  let f' =
    Builder.map_blocks f (fun b ->
        {
          b with
          instrs =
            List.filter
              (fun ni ->
                match ni.instr with
                | Store _ ->
                  incr dropped;
                  false
                | _ -> true)
              b.instrs;
        })
  in
  if !dropped > 1 then [ f' ] else []

let remove_stores (f : func) : func list =
  List.concat_map
    (fun b ->
      List.concat
        (List.mapi
           (fun i ni ->
             match ni.instr with
             | Store _ -> [ Builder.remove_instr_at f ~block:b.label ~index:i ]
             | _ -> [])
           b.instrs))
    f.blocks

(* Collapse [CondBr] to one arm; incoming phi entries of the dropped arm
   are filtered out, and the reduction is skipped when a phi would end up
   with no incomings. *)
let collapse_branches (f : func) : func list =
  let drop_pred (f : func) ~(from_ : label) ~(in_ : label) : func option =
    let ok = ref true in
    let f' =
      Builder.map_blocks f (fun b ->
          if b.label = in_ then
            {
              b with
              instrs =
                List.map
                  (fun ni ->
                    match ni.instr with
                    | Phi ph ->
                      let incoming = List.filter (fun (_, l) -> l <> from_) ph.incoming in
                      if incoming = [] then ok := false;
                      { ni with instr = Phi { ph with incoming } }
                    | _ -> ni)
                  b.instrs;
            }
          else b)
    in
    if !ok then Some f' else None
  in
  List.concat_map
    (fun b ->
      match b.term with
      | CondBr { if_true; if_false; _ } when if_true = if_false ->
        [ Builder.map_blocks f (fun c -> if c.label = b.label then { c with term = Br if_true } else c) ]
      | CondBr { if_true; if_false; _ } ->
        List.filter_map
          (fun (keep, drop) ->
            let f =
              Builder.map_blocks f (fun c ->
                  if c.label = b.label then { c with term = Br keep } else c)
            in
            drop_pred f ~from_:b.label ~in_:drop)
          [ (if_true, if_false); (if_false, if_true) ]
      | _ -> [])
    f.blocks

(* Fixpoint strip: all dead defs and all stores removed repeatedly on one
   function.  Store removal makes address chains dead, which makes their
   loads' sources dead in turn — iterating to a fixpoint yields the
   dead-code-free skeleton as a single candidate, so the whole chain costs
   one probe and one oracle battery instead of one per instruction.  The
   guard still decides: a strip that changes the oracle class or flips a
   conclusive verdict is rejected like any other reduction. *)
let strip_func (f : func) : func =
  let pass f =
    let uses = Builder.use_counts f in
    let changed = ref false in
    let f' =
      Builder.map_blocks f (fun b ->
          {
            b with
            instrs =
              List.filter
                (fun ni ->
                  let drop =
                    is_dead_def uses ni
                    || match ni.instr with Store _ -> true | _ -> false
                  in
                  if drop then changed := true;
                  not drop)
                b.instrs;
          })
    in
    (f', !changed)
  in
  let rec fix f =
    let f', changed = pass f in
    if changed then fix f' else f
  in
  fix f

let reduce_candidates (p : Mutate.pair) : Mutate.pair list =
  let on_tgt f' = { p with Mutate.a_tgt = f' } in
  let on_src f' =
    (* the module carries the src function; keep the two in sync *)
    { p with Mutate.a_src = f'; a_m = Mutate.set_func p.Mutate.a_m f' }
  in
  (* the composed both-sides strip goes first: accepting it early keeps
     every later probe's encode small *)
  (let src' = strip_func p.Mutate.a_src and tgt' = strip_func p.Mutate.a_tgt in
   if src' <> p.Mutate.a_src || tgt' <> p.Mutate.a_tgt then
     [ { Mutate.a_m = Mutate.set_func p.Mutate.a_m src'; a_src = src'; a_tgt = tgt' } ]
   else [])
  @ List.map on_tgt
    (remove_dead_all p.Mutate.a_tgt @ remove_stores_all p.Mutate.a_tgt
    @ remove_dead p.Mutate.a_tgt @ remove_stores p.Mutate.a_tgt
    @ collapse_branches p.Mutate.a_tgt)
  @ List.map on_src
      (remove_dead_all p.Mutate.a_src @ remove_stores_all p.Mutate.a_src
      @ remove_dead p.Mutate.a_src @ remove_stores p.Mutate.a_src
      @ collapse_branches p.Mutate.a_src)

type min_state = { mutable accepted : int; mutable flip_rejects : int }

(* Greedy first-accept minimization: a reduction survives only if it still
   validates, keeps the concrete oracle's verdict class, does not flip a
   conclusive engine verdict, and retains at least half the original pain. *)
let minimize ~cfg ~engine ~deadline (st : min_state) (p0 : Mutate.pair) (pain0 : float)
    (v0 : Alive.verdict) =
  let oc0 = oracle_class ~samples:cfg.mc_oracle_samples p0 in
  let probes = ref 0 in
  let exhausted () = !probes >= cfg.mc_minimize_probes || Unix.gettimeofday () > deadline in
  let rec go p pain v =
    if exhausted () then (p, pain, v)
    else begin
      let rec try_cands = function
        | [] -> None
        | c :: rest ->
          if exhausted () then None
          else if not (Mutate.valid c) then try_cands rest
          else begin
            incr probes;
            let pr = probe cfg engine c in
            let score = pain_score cfg pr in
            if verdict_flip v0 pr.Engine.p_verdict then begin
              st.flip_rejects <- st.flip_rejects + 1;
              try_cands rest
            end
            else if score >= 0.5 *. pain0 && not pr.Engine.p_cached then
              (* oracle battery only for would-be accepts: it is the
                 expensive half of the guard *)
              if oracle_class ~samples:cfg.mc_oracle_samples c <> oc0 then begin
                st.flip_rejects <- st.flip_rejects + 1;
                try_cands rest
              end
              else begin
                st.accepted <- st.accepted + 1;
                Some (c, score, pr.Engine.p_verdict)
              end
            else try_cands rest
          end
      in
      match try_cands (reduce_candidates p) with
      | Some (c, s, v') -> go c s v'
      | None -> (p, pain, v)
    end
  in
  go p0 pain0 v0

(* ------------------------------------------------------------------ *)
(* Seed pool *)

let seed_pair cfg i : (string * Mutate.pair) option =
  match i mod 4 with
  | 0 | 1 -> (
    let profile = if i mod 4 = 0 then Cgen.adversarial_profile else Cgen.default_profile in
    let cseed = Hashtbl.hash (cfg.mc_seed, i, "veriopt-adv-cgen") land 0x3FFFFFFF in
    try
      let prog = Cgen.generate ~profile ~seed:cseed ~name:"f" () in
      let m, src = Lower.lower prog in
      let tgt, _trace = Pass_manager.instcombine m src in
      Some ((if i mod 4 = 0 then "cgen-adv" else "cgen"), { Mutate.a_m = m; a_src = src; a_tgt = tgt })
    with _ -> None)
  | _ ->
    let q = Workload.make ~seed:cfg.mc_seed ~index:i in
    Some
      ( "workload:" ^ q.Workload.w_label,
        { Mutate.a_m = q.Workload.w_m; a_src = q.Workload.w_src; a_tgt = q.Workload.w_tgt } )

(* ------------------------------------------------------------------ *)
(* The mine loop *)

let mine ?engine ?(cfg = default_config) (corpus : Corpus.t) : result =
  let engine =
    match engine with
    | Some e -> e
    | None ->
      Engine.create ~capacity:512 ~tier1_samples:cfg.mc_oracle_samples ~tier1_fuel:oracle_fuel ()
  in
  let rng = Random.State.make [| cfg.mc_seed; 0xADF5 |] in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. cfg.mc_budget_s in
  let probes = ref 0
  and candidates = ref 0
  and invalid = ref 0
  and duplicates = ref 0
  and mined = ref 0
  and stalls = ref 0
  and committed_flips = ref 0 in
  let mstate = { accepted = 0; flip_rejects = 0 } in
  let families : (string, int) Hashtbl.t = Hashtbl.create 8 in
  (* pain-guided population: high scorers become mutation parents *)
  let population = ref [] in
  let push_pop score label p =
    population :=
      List.filteri
        (fun i _ -> i < 12)
        (List.sort (fun (a, _, _) (b, _, _) -> compare b a) ((score, label, p) :: !population))
  in
  let i = ref 0 in
  while Unix.gettimeofday () < deadline && !mined < cfg.mc_max_cases do
    (* fault site: a stalled miner loop must degrade to a counted, bounded
       pause, never a hang or a torn commit *)
    if Fault.fire Fault.Miner_stall then begin
      incr stalls;
      let d = Fault.param Fault.Miner_stall in
      if d > 0. then Unix.sleepf (Float.min 0.05 d)
    end;
    let parent =
      if !population <> [] && Random.State.float rng 1.0 < 0.6 then
        let _, label, p = List.nth !population (Random.State.int rng (List.length !population)) in
        Some (label, p)
      else seed_pair cfg !i
    in
    incr i;
    match parent with
    | None -> ()
    | Some (label, parent) -> (
      incr candidates;
      match Mutate.apply rng parent with
      | None -> incr invalid
      | Some (family, cand) ->
        if trace then
          Printf.eprintf "[adv] it=%d %s/%s probe...\n%!" !i label family;
        if Corpus.mem_key corpus (key_of cfg cand) then incr duplicates
        else begin
          incr probes;
          let pr = probe cfg engine cand in
          let score = pain_score cfg pr in
          if score > 0.15 && not pr.Engine.p_cached then push_pop score label cand;
          if score >= cfg.mc_pain_threshold && not pr.Engine.p_cached then begin
            if trace then
              Printf.eprintf "[adv] it=%d pain %.2f (%s) minimize...\n%!" !i score
                (category_name pr.Engine.p_verdict.Alive.category);
            let mp, mscore, mverdict =
              minimize ~cfg ~engine ~deadline mstate cand score pr.Engine.p_verdict
            in
            if verdict_flip pr.Engine.p_verdict mverdict then incr committed_flips;
            let mkey = key_of cfg mp in
            if Corpus.mem_key corpus mkey then incr duplicates
            else begin
              let case =
                {
                  Corpus.c_id = 0;
                  c_family = family;
                  c_label = label;
                  c_key = mkey;
                  c_verdict = category_name mverdict.Alive.category;
                  c_pain = mscore;
                  c_wall_us = int_of_float (pr.Engine.p_wall_s *. 1e6);
                  c_conflicts = pr.Engine.p_conflicts;
                  c_unroll = cfg.mc_probe_unroll;
                  c_max_conflicts = cfg.mc_probe_conflicts;
                  c_semantics = Engine.semantics_digest ();
                  c_m_text = Printer.module_to_string mp.Mutate.a_m;
                  c_src_text = Printer.func_to_string mp.Mutate.a_src;
                  c_tgt_text = Printer.func_to_string mp.Mutate.a_tgt;
                }
              in
              ignore (Corpus.add corpus case);
              incr mined;
              Hashtbl.replace families family
                (1 + Option.value ~default:0 (Hashtbl.find_opt families family))
            end
          end
        end)
  done;
  {
    r_probes = !probes;
    r_candidates = !candidates;
    r_invalid = !invalid;
    r_duplicates = !duplicates;
    r_mined = !mined;
    r_stalls = !stalls;
    r_minimize_accepted = mstate.accepted;
    r_minimize_flip_rejects = mstate.flip_rejects;
    r_committed_flips = !committed_flips;
    r_families =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) families [] |> List.sort compare;
    r_wall_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Consumers *)

type replayed = { rp_id : int; rp_key : string; rp_family : string; rp_category : string }

let replay ?engine (corpus : Corpus.t) : replayed list =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  List.filter_map
    (fun (c : Corpus.case) ->
      match Corpus.decode_pair c with
      | None -> None
      | Some p ->
        (* conflict budgets only, no wall deadline: the verdict is a pure
           function of the pair and the budget, so two replays agree *)
        let v =
          Engine.verify_funcs
            ?unroll:(if c.Corpus.c_unroll > 0 then Some c.Corpus.c_unroll else None)
            ?max_conflicts:(if c.Corpus.c_max_conflicts > 0 then Some c.Corpus.c_max_conflicts else None)
            engine p.Mutate.a_m ~src:p.Mutate.a_src ~tgt:p.Mutate.a_tgt
        in
        Some
          {
            rp_id = c.Corpus.c_id;
            rp_key = c.Corpus.c_key;
            rp_family = c.Corpus.c_family;
            rp_category = category_name v.Alive.category;
          })
    (Corpus.cases corpus)

let stress ?(seed = 11) ?(rate = 100.) ?(duration_s = 2.) ?(mix_pct = 100) ?config ~engine
    (corpus : Corpus.t) : Traffic.summary option =
  let queries = Corpus.queries corpus in
  if Array.length queries = 0 then None
  else begin
    let config =
      match config with
      | Some c -> c
      | None -> { Serve.default_config with Serve.workers = 2; queue_capacity = 64 }
    in
    let sv = Serve.create ~config ~engine () in
    let source =
      if mix_pct >= 100 then Workload.Mined queries
      else Workload.Mixed (queries, max 0 mix_pct)
    in
    let cfg = { Traffic.default_cfg with Traffic.rate; duration_s; seed; source } in
    let summary = Traffic.run sv cfg in
    ignore (Serve.drain ~timeout:5. sv);
    Some summary
  end

let curriculum_samples (corpus : Corpus.t) : Suite.sample list =
  List.filter_map
    (fun (c : Corpus.case) ->
      match Corpus.decode_pair c with
      | None -> None
      | Some p ->
        Some
          {
            Suite.id = 900_000 + c.Corpus.c_id;
            modul = p.Mutate.a_m;
            src = p.Mutate.a_src;
            label = p.Mutate.a_tgt;
            trace = [];
            src_text = c.Corpus.c_src_text;
            label_text = c.Corpus.c_tgt_text;
          })
    (Corpus.cases corpus)

let pp_result ppf (r : result) =
  Fmt.pf ppf
    "mined %d cases in %.1fs: %d probes, %d candidates (%d invalid, %d duplicate), %d stalls@."
    r.r_mined r.r_wall_s r.r_probes r.r_candidates r.r_invalid r.r_duplicates r.r_stalls;
  Fmt.pf ppf "  minimize: %d reductions accepted, %d flip-rejects, %d committed flips@."
    r.r_minimize_accepted r.r_minimize_flip_rejects r.r_committed_flips;
  List.iter (fun (f, n) -> Fmt.pf ppf "  family %-10s %d@." f n) r.r_families

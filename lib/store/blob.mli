(** Shared atomic-blob idioms (CRC-32, tmp + rename, [.prev] rotation,
    typed corrupt reads) extracted from the Checkpoint v2 format so every
    on-disk artifact persists the same way.  The framing is byte-identical
    to Checkpoint v2. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. *)

val crc32_int : string -> int
(** {!crc32} as a non-negative [int] in [0, 0xFFFFFFFF]. *)

val prev_path : string -> string
(** [prev_path file] is [file ^ ".prev"], the rotation target. *)

val write_framed : magic:string -> version:int -> path:string -> string -> unit
(** [write_framed ~magic ~version ~path payload] writes
    [magic | version | length | crc32 | payload] to [path ^ ".tmp"], rotates
    any existing [path] to [path ^ ".prev"], then renames the tmp into
    place.  A crash at any point leaves either the old file, the old file
    plus a stray tmp, or the new file — never a torn [path]. *)

type read_error =
  | Missing
  | Truncated_header  (** too short to hold the magic + version words *)
  | Bad_magic
  | Bad_version of int  (** the version word the file actually carries *)
  | Truncated_payload  (** header fine, payload shorter than its length word *)
  | Crc_mismatch  (** payload present but fails its CRC-32 *)

val read_framed : magic:string -> version:int -> path:string -> (string, read_error) result
(** Read back a {!write_framed} file, verifying magic, version, length and
    CRC-32.  Every corruption mode maps to a typed error so callers can
    decide between fallback ([.prev]), miss, or hard failure. *)

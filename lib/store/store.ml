(** Shared, versioned, disk-backed verdict store — the tier beneath [Vcache].

    One store directory is shared by every process that opens it: trainer
    runs, bench sweeps, serve replicas and forked [Vproc] workers.  The
    layout keeps writers and readers decoupled without any locking:

    - Each {e writer} appends to its own segment file,
      [seg-<pid>-<k>.vst], created [O_CREAT|O_EXCL] so two writers can
      never share one (single-writer-per-segment discipline).  Appends are
      buffered (write-behind) and flushed as one [write] per batch, so a
      record either lands whole or is a detectable torn tail.
    - Each {e reader} scans every segment it can see into an in-memory
      index, remembers per-segment offsets, and re-scans only appended
      bytes on {!refresh} (auto-triggered, throttled, on a miss).

    Every record carries the segment magic, the store format version, the
    {e engine-semantics hash} of the writer, the key/value lengths and a
    CRC-32 of key+value.  A record that fails any of those checks is
    counted ([corrupt_entries]) and skipped by resyncing to the next magic
    — corruption degrades to a miss, never a wrong value, never an
    exception.  A record whose semantics hash differs from the reader's is
    counted ([stale_version_skips]) and skipped: bumping any registered
    semantics version invalidates every prior entry without touching disk.

    The directory [meta] file (written with the {!Blob} Checkpoint-v2
    idioms: tmp + rename, [.prev] rotation, CRC) records the last writer's
    format and semantics for inspection; it is advisory, not load-bearing —
    entries are self-describing. *)

module Fault = Veriopt_fault.Fault

let format_version = 1
let meta_magic = "VERIOPT-STORE"
let rec_magic = "VSTE"
let sem_len = 16 (* semantics hash: 16 hex chars, fixed width *)
let header_len = 4 + 1 + sem_len + 4 + 4 + 4
let max_record = 1 lsl 26 (* 64 MiB; any larger length word is corruption *)

(* ------------------------------------------------------------------ *)
(* Semantics version digest *)

let fnv1a64 (s : string) (h0 : int64) : int64 =
  let h = ref h0 in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let version_digest (components : (string * int) list) : string =
  let h =
    List.fold_left
      (fun acc (name, v) -> fnv1a64 (Printf.sprintf "%s=%d;" name v) acc)
      0xcbf29ce484222325L components
  in
  Printf.sprintf "%016Lx" h

(* ------------------------------------------------------------------ *)

type stats = {
  hits : int;
  misses : int;
  writes : int;
  corrupt_entries : int;  (** records dropped for bad magic/length/CRC *)
  stale_version_skips : int;  (** records dropped for a foreign semantics hash *)
  entries : int;  (** distinct keys currently indexed *)
  segments : int;  (** segment files scanned (other writers') *)
  flushes : int;
  read_only : bool;
}

type seg = { seg_path : string; mutable seg_off : int (* bytes fully consumed *) }

type t = {
  dir : string;
  semantics : string;
  read_only : bool;
  mutex : Mutex.t;
  index : (string, string) Hashtbl.t;
  mutable segs : seg list;
  mutable out : out_channel option;  (** this writer's own segment *)
  mutable out_path : string;  (** basename; excluded from scans *)
  buf : Buffer.t;
  flush_bytes : int;
  refresh_every : float;
  mutable last_refresh : float;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_writes : int;
  mutable n_corrupt : int;
  mutable n_stale : int;
  mutable n_flushes : int;
  mutable closed : bool;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ------------------------------------------------------------------ *)
(* Record encoding *)

let put_be32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let get_be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let encode_record ~semantics buf key value =
  Buffer.add_string buf rec_magic;
  Buffer.add_char buf (Char.chr format_version);
  Buffer.add_string buf semantics;
  put_be32 buf (String.length key);
  put_be32 buf (String.length value);
  put_be32 buf (Blob.crc32_int (key ^ value));
  Buffer.add_string buf key;
  Buffer.add_string buf value

(* ------------------------------------------------------------------ *)
(* Segment scanning: parse appended bytes, resync on corruption, stop on a
   partial tail (a write still in flight — retried on the next refresh). *)

let find_magic data pos =
  let n = String.length data in
  let rec go p =
    if p + String.length rec_magic > n then None
    else
      match String.index_from_opt data p rec_magic.[0] with
      | None -> None
      | Some q ->
        if q + String.length rec_magic > n then None
        else if String.sub data q (String.length rec_magic) = rec_magic then Some q
        else go (q + 1)
  in
  go pos

let scan_seg t (s : seg) =
  match open_in_bin (Filename.concat t.dir s.seg_path) with
  | exception Sys_error _ -> ()
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let size = in_channel_length ic in
    if size > s.seg_off then begin
      seek_in ic s.seg_off;
      let data = really_input_string ic (size - s.seg_off) in
      let n = String.length data in
      let pos = ref 0 in
      let committed = ref 0 in
      let running = ref true in
      let resync () =
        t.n_corrupt <- t.n_corrupt + 1;
        match find_magic data (!pos + 1) with
        | Some p ->
          pos := p;
          committed := p
        | None ->
          pos := n;
          committed := n;
          running := false
      in
      while !running do
        if n - !pos < header_len then begin
          (* partial header: either a write in flight or a truncated tail —
             leave [committed] here so a later refresh retries it *)
          running := false
        end
        else if String.sub data !pos 4 <> rec_magic then resync ()
        else begin
          let fmt = Char.code data.[!pos + 4] in
          let sem = String.sub data (!pos + 5) sem_len in
          let klen = get_be32 data (!pos + 5 + sem_len) in
          let vlen = get_be32 data (!pos + 9 + sem_len) in
          let crc = get_be32 data (!pos + 13 + sem_len) in
          if fmt <> format_version || klen < 0 || vlen < 0 || klen + vlen > max_record then
            resync ()
          else if n - !pos - header_len < klen + vlen then
            (* partial body: write in flight or torn tail; retry later *)
            running := false
          else begin
            let key = String.sub data (!pos + header_len) klen in
            let value = String.sub data (!pos + header_len + klen) vlen in
            if Blob.crc32_int (key ^ value) <> crc then resync ()
            else begin
              if sem <> t.semantics then t.n_stale <- t.n_stale + 1
              else Hashtbl.replace t.index key value;
              pos := !pos + header_len + klen + vlen;
              committed := !pos
            end
          end
        end
      done;
      s.seg_off <- s.seg_off + !committed
    end

let list_segments t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> [||]
  | names ->
    Array.sort compare names;
    Array.of_list
      (List.filter
         (fun name -> Filename.check_suffix name ".vst" && name <> t.out_path)
         (Array.to_list names))

let refresh_locked t =
  let names = list_segments t in
  Array.iter
    (fun name ->
      if not (List.exists (fun s -> s.seg_path = name) t.segs) then
        t.segs <- t.segs @ [ { seg_path = name; seg_off = 0 } ])
    names;
  List.iter (scan_seg t) t.segs

(* ------------------------------------------------------------------ *)
(* Writer plumbing *)

let flush_locked t =
  match t.out with
  | None -> ()
  | Some oc ->
    if Buffer.length t.buf > 0 then begin
      Buffer.output_buffer oc t.buf;
      flush oc;
      Buffer.clear t.buf;
      t.n_flushes <- t.n_flushes + 1
    end

let write_meta t =
  let payload = Printf.sprintf "format=%d\nsemantics=%s\n" format_version t.semantics in
  try Blob.write_framed ~magic:meta_magic ~version:format_version
        ~path:(Filename.concat t.dir "meta") payload
  with Sys_error _ -> ()

let open_own_segment t =
  let rec go k =
    if k > 1000 then failwith "store: cannot create a segment file"
    else
      let name = Printf.sprintf "seg-%d-%d.vst" (Unix.getpid ()) k in
      let path = Filename.concat t.dir name in
      match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
      | fd ->
        t.out <- Some (Unix.out_channel_of_descr fd);
        t.out_path <- name
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)

let open_ ?(read_only = false) ?(flush_bytes = 8192) ?(refresh_every = 0.05) ~dir ~semantics ()
    : t =
  if String.length semantics <> sem_len then
    invalid_arg
      (Printf.sprintf "Store.open_: semantics hash must be %d chars (got %S)" sem_len semantics);
  if (not read_only) && not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let t =
    {
      dir;
      semantics;
      read_only;
      mutex = Mutex.create ();
      index = Hashtbl.create 256;
      segs = [];
      out = None;
      out_path = "";
      buf = Buffer.create 4096;
      flush_bytes = max 1 flush_bytes;
      refresh_every = Float.max 0. refresh_every;
      last_refresh = 0.;
      n_hits = 0;
      n_misses = 0;
      n_writes = 0;
      n_corrupt = 0;
      n_stale = 0;
      n_flushes = 0;
      closed = false;
    }
  in
  if not read_only then begin
    open_own_segment t;
    write_meta t
  end;
  locked t (fun () ->
      t.last_refresh <- Unix.gettimeofday ();
      refresh_locked t);
  t

let refresh t =
  locked t (fun () ->
      if not t.closed then begin
        t.last_refresh <- Unix.gettimeofday ();
        refresh_locked t
      end)

let find t ~key : string option =
  locked t (fun () ->
      let miss () =
        t.n_misses <- t.n_misses + 1;
        None
      in
      if t.closed then miss ()
      else if Fault.fire Fault.Store_corrupt then begin
        (* chaos: pretend the entry failed its CRC — counted miss, recompute *)
        t.n_corrupt <- t.n_corrupt + 1;
        miss ()
      end
      else if Fault.fire Fault.Store_stale then begin
        (* chaos: pretend the entry carries a foreign semantics hash *)
        t.n_stale <- t.n_stale + 1;
        miss ()
      end
      else
        match Hashtbl.find_opt t.index key with
        | Some v ->
          t.n_hits <- t.n_hits + 1;
          Some v
        | None ->
          let now = Unix.gettimeofday () in
          if now -. t.last_refresh >= t.refresh_every then begin
            t.last_refresh <- now;
            refresh_locked t;
            match Hashtbl.find_opt t.index key with
            | Some v ->
              t.n_hits <- t.n_hits + 1;
              Some v
            | None -> miss ()
          end
          else miss ())

let add t ~key value : unit =
  locked t (fun () ->
      if t.read_only || t.closed then ()
      else begin
        Hashtbl.replace t.index key value;
        t.n_writes <- t.n_writes + 1;
        encode_record ~semantics:t.semantics t.buf key value;
        if Buffer.length t.buf >= t.flush_bytes then flush_locked t
      end)

let note_corrupt t = locked t (fun () -> t.n_corrupt <- t.n_corrupt + 1)

let flush t = locked t (fun () -> flush_locked t)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        flush_locked t;
        (match t.out with Some oc -> close_out_noerr oc | None -> ());
        t.out <- None;
        t.closed <- true
      end)

let stats t : stats =
  locked t (fun () ->
      {
        hits = t.n_hits;
        misses = t.n_misses;
        writes = t.n_writes;
        corrupt_entries = t.n_corrupt;
        stale_version_skips = t.n_stale;
        entries = Hashtbl.length t.index;
        segments = List.length t.segs;
        flushes = t.n_flushes;
        read_only = t.read_only;
      })

let dir t = t.dir
let semantics t = t.semantics

(** Shared atomic-blob idioms: the crash-safety primitives the Checkpoint v2
    format introduced (CRC-32, tmp + rename, [.prev] rotation, typed corrupt
    reads), extracted so the verdict {!Store} and [Checkpoint] write the same
    way instead of each re-growing their own copy.

    The framing is byte-identical to Checkpoint v2: [magic] bytes, then the
    format version, payload length and payload CRC-32 as [output_binary_int]
    words, then the payload.  A write lands via tmp + rename (a crash
    mid-write can never leave a torn file) and rotates the outgoing good file
    to [<file>.prev] so one corrupt write never loses the previous state. *)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.  A few megabytes
   per write is well under the noise floor of the work being persisted, and
   it keeps the formats dependency-free. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_int (s : string) : int = Int32.to_int (crc32 s) land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)

let prev_path file = file ^ ".prev"

let write_framed ~magic ~version ~path payload : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      output_binary_int oc (String.length payload);
      output_binary_int oc (Int32.to_int (crc32 payload));
      output_string oc payload);
  (* rotate before rename: the outgoing good file becomes the fallback *)
  if Sys.file_exists path then Sys.rename path (prev_path path);
  Sys.rename tmp path

type read_error =
  | Missing
  | Truncated_header  (** too short to hold the magic + version words *)
  | Bad_magic
  | Bad_version of int  (** the version word the file actually carries *)
  | Truncated_payload  (** header fine, payload shorter than its length word *)
  | Crc_mismatch  (** payload present but fails its CRC-32 *)

let read_framed ~magic ~version ~path : (string, read_error) result =
  if not (Sys.file_exists path) then Error Missing
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match
          let got_magic = really_input_string ic (String.length magic) in
          let got_version = input_binary_int ic in
          (got_magic, got_version)
        with
        | exception _ -> Error Truncated_header
        | got_magic, _ when got_magic <> magic -> Error Bad_magic
        | _, got_version when got_version <> version -> Error (Bad_version got_version)
        | _ -> (
          match
            let len = input_binary_int ic in
            let stored_crc = input_binary_int ic land 0xFFFFFFFF in
            if len < 0 then failwith "negative length"
            else
              let payload = really_input_string ic len in
              (payload, stored_crc)
          with
          | exception _ -> Error Truncated_payload
          | payload, stored_crc ->
            if crc32_int payload <> stored_crc then Error Crc_mismatch else Ok payload))

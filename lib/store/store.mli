(** Shared, versioned, disk-backed verdict store — the tier beneath
    [Vcache].

    {b Keying and soundness.}  Callers key entries on
    [(canonical alpha-renamed pair text, engine-semantics version hash,
    resolved verification flags)].  The semantics hash travels {e inside}
    every record: a reader whose registered semantics digest differs skips
    the record (counted as [stale_version_skips]), so bumping any layer's
    semantics version invalidates every prior entry with no disk traffic.

    {b Crash safety.}  Writers append CRC-framed records to a private
    segment file ([seg-<pid>-<k>.vst], created [O_CREAT|O_EXCL]) with
    write-behind buffering; readers scan all segments lock-free and resync
    on the record magic past anything torn, truncated or bit-flipped.  A
    damaged record is a counted miss ([corrupt_entries]) — never a wrong
    value, never an exception.  The advisory [meta] file is written with
    the {!Blob} Checkpoint-v2 idioms (tmp + rename, [.prev] rotation,
    CRC-32).

    {b Concurrency.}  One [t] is thread-safe (internal mutex).  Across
    processes: any number of concurrent writers (each owns its segment) and
    readers (scan-only) may share a directory; {!refresh} — auto-triggered
    on a miss, throttled by [refresh_every] — picks up other writers'
    appends, so forked [Vproc] workers and serve replicas share one warm
    store.

    Chaos hooks: the [store_corrupt] / [store_stale] fault kinds
    ({!Veriopt_fault.Fault}) force {!find} to treat a present entry as
    damaged or version-stale — a counted miss, exercised by the injection
    tests. *)

type t

val version_digest : (string * int) list -> string
(** [version_digest ["encode", v1; ...]] folds named semantics versions
    into the fixed-width (16 hex chars) hash that keys record freshness.
    Order-sensitive by construction — register components in one place. *)

val open_ :
  ?read_only:bool ->
  ?flush_bytes:int ->
  ?refresh_every:float ->
  dir:string ->
  semantics:string ->
  unit ->
  t
(** Open (creating the directory and a private segment unless [read_only],
    default [false]) a store whose entries are valid under [semantics] (a
    {!version_digest}).  [flush_bytes] (default 8192) is the write-behind
    threshold; [refresh_every] (default 0.05 s) throttles the automatic
    rescan for other writers' appends on a miss. *)

val find : t -> key:string -> string option
(** Indexed lookup; on a miss, refreshes from disk if the throttle allows
    and retries once.  Counts a hit or a miss either way. *)

val add : t -> key:string -> string -> unit
(** Buffer one record for append ([read_only] stores drop it silently) and
    serve it from the index immediately.  Flushed when the buffer crosses
    [flush_bytes], on {!flush}, and on {!close}. *)

val refresh : t -> unit
(** Force a rescan of all visible segments (new segments and appended
    bytes), bypassing the throttle. *)

val flush : t -> unit
val close : t -> unit
(** Flush and close the private segment.  Idempotent; a closed store
    answers every {!find} with a counted miss and drops every {!add}. *)

val note_corrupt : t -> unit
(** Count one decode-level corrupt entry (a record whose CRC passed but
    whose payload failed the caller's decoder). *)

type stats = {
  hits : int;
  misses : int;
  writes : int;
  corrupt_entries : int;  (** records dropped for bad magic/length/CRC *)
  stale_version_skips : int;  (** records dropped for a foreign semantics hash *)
  entries : int;  (** distinct keys currently indexed *)
  segments : int;  (** segment files scanned (other writers') *)
  flushes : int;
  read_only : bool;
}

val stats : t -> stats
val dir : t -> string
val semantics : t -> string

(** Mini-C program generator: the offline stand-in for the LLVM and GCC test
    suites, mixing random arithmetic with the cleanup idioms test suites are
    full of.  Deterministic in the seed. *)

type ty = I8 | I16 | I32 | I64

val bits : ty -> int

type binop = CAdd | CSub | CMul | CDiv | CMod | CAnd | COr | CXor | CShl | CShr
type cmp = CEq | CNe | CLt | CLe | CGt | CGe

type expr =
  | Const of ty * int64
  | Var of string
  | Bin of binop * expr * expr
  | Cmp of cmp * expr * expr
  | Cond of expr * expr * expr
  | Sel of expr * expr * expr
      (** branchless ternary: both arms evaluate, lowers straight to [select] *)
  | Idx of string * expr  (** [a[e]] — array read, lowers to a non-constant GEP *)
  | Call of string * expr list
  | Cast of ty * expr

type stmt =
  | Decl of string * ty * expr
  | DeclArr of string * ty * int
      (** [ty a[n] = {0};] — [n] a power of two, so masked indexing stays in
          bounds *)
  | Assign of string * expr
  | AssignIdx of string * expr * expr  (** [a[e1] = e2] *)
  | If of expr * stmt list * stmt list
  | Switch of string * (int64 * stmt list) list * stmt list
  | For of string * int * stmt list
  | CallStmt of string * expr list
  | Return of expr

type cfunc = {
  name : string;
  ret : ty;
  params : (string * ty) list;
  body : stmt list;
  uses_ext_call : bool;
}

type profile = {
  max_depth : int;
  max_stmts : int;
  allow_branches : bool;
  allow_loops : bool;
  allow_calls : bool;
  idiom_bias : float;
  gep_bias : float;  (** local arrays with non-constant (masked) GEP indexing *)
  select_bias : float;  (** branchless ternaries that lower straight to select *)
  phi_bias : float;  (** extra value-merging diamonds (phi-heavy CFGs) *)
  ovf_bias : float;  (** nsw arithmetic pinned near the signed overflow boundary *)
}

val default_profile : profile
(** The historical mix.  The four adversarial biases are 0. and are guarded
    before any RNG draw, so generation under [default_profile] is
    bit-identical to what it was before they existed (pinned by test). *)

val adversarial_profile : profile
(** [default_profile] with every adversarial shape family switched on; the
    miner's seed profile. *)

val generate : ?profile:profile -> seed:int -> name:string -> unit -> cfunc

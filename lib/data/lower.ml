(** Clang-`-O0`-style lowering from mini-C to IR.

    Faithful to what `clang -O0` emits and what the paper's dataset
    therefore looks like: every parameter and local lives in an entry-block
    alloca with loads and stores around each use; comparisons materialize as
    `icmp` + `zext`; ternaries lower to control flow with a phi; returns
    funnel through a `%retval` slot and a common return block.  All the
    slack this introduces is precisely what `-instcombine` (and mem2reg-like
    emergent behaviour) removes. *)

open Veriopt_ir
open Ast

let ir_ty (t : Cgen.ty) = Types.Int (Cgen.bits t)

type lstate = {
  mutable blocks : block list; (* finished blocks, reversed *)
  mutable cur_label : label;
  mutable cur_instrs : named_instr list; (* reversed *)
  mutable entry_allocas : named_instr list; (* reversed *)
  mutable slots : (string * (var * Cgen.ty)) list; (* C var -> alloca, type *)
  mutable arr_slots : (string * (var * Cgen.ty * int)) list; (* C array -> alloca, elt ty, length *)
  mutable counter : int;
  retval : var;
  ret_ty : Cgen.ty;
}

let fresh st prefix =
  st.counter <- st.counter + 1;
  Fmt.str "%s%d" prefix st.counter

(* Every emitted instruction passes through the shared emit-time
   canonicalizer: workload generators and the adversarial miner produce
   canonical seeds, so cache/store keys collide where they should. *)
let emit st name instr = st.cur_instrs <- { name; instr = Canon.canon_instr instr } :: st.cur_instrs

let emit_value st prefix instr =
  let n = fresh st prefix in
  emit st (Some n) instr;
  Var n

let finish_block st term =
  st.blocks <- { label = st.cur_label; instrs = List.rev st.cur_instrs; term } :: st.blocks;
  st.cur_instrs <- []

let start_block st label =
  st.cur_label <- label;
  st.cur_instrs <- []

let add_slot st cvar ty =
  let slot = fresh st (cvar ^ ".addr.") in
  st.entry_allocas <-
    { name = Some slot; instr = Alloca { ty = ir_ty ty; align = Cgen.bits ty / 8 } }
    :: st.entry_allocas;
  st.slots <- (cvar, (slot, ty)) :: st.slots;
  slot

let slot_of st cvar =
  match List.assoc_opt cvar st.slots with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Lower.slot_of: unknown variable %s" cvar)

let arr_slot_of st cvar =
  match List.assoc_opt cvar st.arr_slots with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Lower.arr_slot_of: unknown array %s" cvar)

let load_var st cvar =
  let slot, ty = slot_of st cvar in
  ( emit_value st "t"
      (Load { ty = ir_ty ty; ptr = Var slot; align = Cgen.bits ty / 8 }),
    ty )

let store_var st cvar (v : operand) =
  let slot, ty = slot_of st cvar in
  emit st None (Store { ty = ir_ty ty; value = v; ptr = Var slot; align = Cgen.bits ty / 8 })

let rec infer_ty st (e : Cgen.expr) : Cgen.ty =
  match e with
  | Cgen.Const (ty, _) -> ty
  | Cgen.Var v -> snd (slot_of st v)
  | Cgen.Bin (_, a, _) -> infer_ty st a
  | Cgen.Cmp _ -> Cgen.I32 (* C comparisons yield int *)
  | Cgen.Cond (_, a, _) -> infer_ty st a
  | Cgen.Sel (_, a, _) -> infer_ty st a
  | Cgen.Idx (a, _) ->
    let _, ty, _ = arr_slot_of st a in
    ty
  | Cgen.Call _ -> Cgen.I32
  | Cgen.Cast (ty, _) -> ty

let cast_to st (from_ty : Cgen.ty) (to_ty : Cgen.ty) (v : operand) : operand =
  let fw = Cgen.bits from_ty and tw = Cgen.bits to_ty in
  if fw = tw then v
  else if fw < tw then
    (* C integer promotion of signed values *)
    emit_value st "conv"
      (Cast { op = SExt; src_ty = Types.Int fw; value = v; dst_ty = Types.Int tw })
  else
    emit_value st "conv"
      (Cast { op = Trunc; src_ty = Types.Int fw; value = v; dst_ty = Types.Int tw })

let ir_binop : Cgen.binop -> binop * flags = function
  | Cgen.CAdd -> (Add, { no_flags with nsw = true })
  | Cgen.CSub -> (Sub, { no_flags with nsw = true })
  | Cgen.CMul -> (Mul, { no_flags with nsw = true })
  | Cgen.CDiv -> (SDiv, no_flags)
  | Cgen.CMod -> (SRem, no_flags)
  | Cgen.CAnd -> (And, no_flags)
  | Cgen.COr -> (Or, no_flags)
  | Cgen.CXor -> (Xor, no_flags)
  | Cgen.CShl -> (Shl, no_flags)
  | Cgen.CShr -> (AShr, no_flags)

let ir_cmp : Cgen.cmp -> icmp_pred = function
  | Cgen.CEq -> Eq
  | Cgen.CNe -> Ne
  | Cgen.CLt -> Slt
  | Cgen.CLe -> Sle
  | Cgen.CGt -> Sgt
  | Cgen.CGe -> Sge

let rec lower_expr st (e : Cgen.expr) : operand =
  match e with
  | Cgen.Const (ty, v) -> const_int (Cgen.bits ty) v
  | Cgen.Var v ->
    let value, _ = load_var st v in
    value
  | Cgen.Bin (op, a, b) ->
    let ty = infer_ty st a in
    let bty = infer_ty st b in
    let av = lower_expr st a in
    let bv = lower_expr st b in
    let bv = cast_to st bty ty bv in
    let irop, flags = ir_binop op in
    emit_value st "t" (Binop { op = irop; flags; ty = ir_ty ty; lhs = av; rhs = bv })
  | Cgen.Cmp _ ->
    (* value context: icmp then zext to int *)
    let c = lower_cond st e in
    emit_value st "conv" (Cast { op = ZExt; src_ty = Types.i1; value = c; dst_ty = Types.i32 })
  | Cgen.Cond (c, a, b) ->
    (* clang -O0 shape: cond.true / cond.false / cond.end with a phi *)
    let ty = infer_ty st a in
    let cv = lower_cond st c in
    let true_l = fresh st "cond.true." in
    let false_l = fresh st "cond.false." in
    let end_l = fresh st "cond.end." in
    finish_block st (CondBr { cond = cv; if_true = true_l; if_false = false_l });
    start_block st true_l;
    let av = lower_expr st a in
    let av = cast_to st (infer_ty st a) ty av in
    let true_exit = st.cur_label in
    finish_block st (Br end_l);
    start_block st false_l;
    let bv = lower_expr st b in
    let bv = cast_to st (infer_ty st b) ty bv in
    let false_exit = st.cur_label in
    finish_block st (Br end_l);
    start_block st end_l;
    emit_value st "cond"
      (Phi { ty = ir_ty ty; incoming = [ (av, true_exit); (bv, false_exit) ] })
  | Cgen.Sel (c, a, b) ->
    (* branchless ternary: both arms evaluate eagerly, then a select *)
    let ty = infer_ty st a in
    let cv = lower_cond st c in
    let av = lower_expr st a in
    let av = cast_to st (infer_ty st a) ty av in
    let bv = lower_expr st b in
    let bv = cast_to st (infer_ty st b) ty bv in
    emit_value st "sel" (Select { ty = ir_ty ty; cond = cv; if_true = av; if_false = bv })
  | Cgen.Idx (a, idx) ->
    let p, ty = lower_arr_addr st a idx in
    emit_value st "t" (Load { ty = ir_ty ty; ptr = p; align = Cgen.bits ty / 8 })
  | Cgen.Call (callee, args) ->
    let argv = List.map (fun a -> (Types.i32, cast_to st (infer_ty st a) Cgen.I32 (lower_expr st a))) args in
    emit_value st "call" (Call { ret_ty = Types.i32; callee; args = argv })
  | Cgen.Cast (ty, inner) ->
    let ity = infer_ty st inner in
    let v = lower_expr st inner in
    cast_to st ity ty v

and lower_cond st (e : Cgen.expr) : operand =
  match e with
  | Cgen.Cmp (c, a, b) ->
    let ty = infer_ty st a in
    let av = lower_expr st a in
    let bv = cast_to st (infer_ty st b) ty (lower_expr st b) in
    emit_value st "cmp" (Icmp { pred = ir_cmp c; ty = ir_ty ty; lhs = av; rhs = bv })
  | _ ->
    let ty = infer_ty st e in
    let v = lower_expr st e in
    emit_value st "tobool"
      (Icmp { pred = Ne; ty = ir_ty ty; lhs = v; rhs = const_int (Cgen.bits ty) 0L })

(* The canonical clang array-access shape: sign-extend the index to i64, then
   one two-index GEP (`0` over the whole array, then the element index). *)
and lower_arr_addr st a idx : operand * Cgen.ty =
  let slot, ty, n = arr_slot_of st a in
  let iv = cast_to st (infer_ty st idx) Cgen.I64 (lower_expr st idx) in
  let p =
    emit_value st "arrayidx"
      (Gep
         {
           base_ty = Types.Array (n, ir_ty ty);
           ptr = Var slot;
           indices = [ (Types.i64, const_int 64 0L); (Types.i64, iv) ];
           inbounds = true;
         })
  in
  (p, ty)

let rec lower_stmt st (s : Cgen.stmt) : unit =
  match s with
  | Cgen.Decl (v, ty, e) ->
    let value = cast_to st (infer_ty st e) ty (lower_expr st e) in
    let _slot = add_slot st v ty in
    store_var st v value
  | Cgen.DeclArr (v, ty, n) ->
    let slot = fresh st (v ^ ".addr.") in
    st.entry_allocas <-
      {
        name = Some slot;
        instr = Alloca { ty = Types.Array (n, ir_ty ty); align = Cgen.bits ty / 8 };
      }
      :: st.entry_allocas;
    st.arr_slots <- (v, (slot, ty, n)) :: st.arr_slots;
    (* `= {0}` zero-init, element by element (no memset in the IR subset) *)
    for i = 0 to n - 1 do
      let p =
        emit_value st "arrayinit"
          (Gep
             {
               base_ty = Types.Array (n, ir_ty ty);
               ptr = Var slot;
               indices =
                 [ (Types.i64, const_int 64 0L); (Types.i64, const_int 64 (Int64.of_int i)) ];
               inbounds = true;
             })
      in
      emit st None
        (Store
           { ty = ir_ty ty; value = const_int (Cgen.bits ty) 0L; ptr = p; align = Cgen.bits ty / 8 })
    done
  | Cgen.Assign (v, e) ->
    let _, ty = slot_of st v in
    let value = cast_to st (infer_ty st e) ty (lower_expr st e) in
    store_var st v value
  | Cgen.AssignIdx (a, idx, e) ->
    let p, ty = lower_arr_addr st a idx in
    let value = cast_to st (infer_ty st e) ty (lower_expr st e) in
    emit st None (Store { ty = ir_ty ty; value; ptr = p; align = Cgen.bits ty / 8 })
  | Cgen.If (c, then_, else_) ->
    let cv = lower_cond st c in
    let then_l = fresh st "if.then." in
    let else_l = fresh st "if.else." in
    let end_l = fresh st "if.end." in
    let has_else = else_ <> [] in
    finish_block st
      (CondBr { cond = cv; if_true = then_l; if_false = (if has_else then else_l else end_l) });
    start_block st then_l;
    let saved = st.slots and saved_arrs = st.arr_slots in
    List.iter (lower_stmt st) then_;
    st.slots <- saved;
    st.arr_slots <- saved_arrs;
    finish_block st (Br end_l);
    if has_else then begin
      start_block st else_l;
      List.iter (lower_stmt st) else_;
      st.slots <- saved;
      st.arr_slots <- saved_arrs;
      finish_block st (Br end_l)
    end;
    start_block st end_l
  | Cgen.Switch (v, cases, default) ->
    let value, ty = load_var st v in
    let end_l = fresh st "sw.end." in
    let default_l = fresh st "sw.default." in
    let case_labels = List.map (fun (c, _) -> (c, fresh st "sw.bb.")) cases in
    finish_block st
      (Switch
         {
           ty = ir_ty ty;
           value;
           default = default_l;
           cases =
             List.map (fun (c, l) -> (Veriopt_ir.Bits.mask (Cgen.bits ty) c, l)) case_labels;
         });
    List.iter2
      (fun (_, body) (_, l) ->
        start_block st l;
        let saved = st.slots and saved_arrs = st.arr_slots in
        List.iter (lower_stmt st) body;
        st.slots <- saved;
        st.arr_slots <- saved_arrs;
        finish_block st (Br end_l))
      cases case_labels;
    start_block st default_l;
    let saved = st.slots and saved_arrs = st.arr_slots in
    List.iter (lower_stmt st) default;
    st.slots <- saved;
    st.arr_slots <- saved_arrs;
    finish_block st (Br end_l);
    start_block st end_l
  | Cgen.For (i, n, body) ->
    let _slot = add_slot st i Cgen.I32 in
    store_var st i (const_int 32 0L);
    let head_l = fresh st "for.cond." in
    let body_l = fresh st "for.body." in
    let inc_l = fresh st "for.inc." in
    let end_l = fresh st "for.end." in
    finish_block st (Br head_l);
    start_block st head_l;
    let iv, _ = load_var st i in
    let cv =
      emit_value st "cmp"
        (Icmp { pred = Slt; ty = Types.i32; lhs = iv; rhs = const_int 32 (Int64.of_int n) })
    in
    finish_block st (CondBr { cond = cv; if_true = body_l; if_false = end_l });
    start_block st body_l;
    let saved = st.slots and saved_arrs = st.arr_slots in
    List.iter (lower_stmt st) body;
    st.slots <- saved;
    st.arr_slots <- saved_arrs;
    finish_block st (Br inc_l);
    start_block st inc_l;
    let iv2, _ = load_var st i in
    let inc =
      emit_value st "inc"
        (Binop
           { op = Add; flags = { no_flags with nsw = true }; ty = Types.i32; lhs = iv2; rhs = const_int 32 1L })
    in
    store_var st i inc;
    finish_block st (Br head_l);
    start_block st end_l
  | Cgen.CallStmt (callee, args) ->
    let argv = List.map (fun a -> (Types.i32, cast_to st (infer_ty st a) Cgen.I32 (lower_expr st a))) args in
    emit st None (Call { ret_ty = Types.Void; callee; args = argv })
  | Cgen.Return e ->
    let v = cast_to st (infer_ty st e) st.ret_ty (lower_expr st e) in
    emit st None
      (Store
         {
           ty = ir_ty st.ret_ty;
           value = v;
           ptr = Var st.retval;
           align = Cgen.bits st.ret_ty / 8;
         });
    finish_block st (Br "return");
    (* anything after a return is dead code in a fresh unreachable block *)
    start_block st (fresh st "dead.")

(** External functions every lowered module can call. *)
let module_decls : decl list =
  [
    { dname = "ext"; dret_ty = Types.i32; dparams = [ Types.i32 ]; pure = false };
    { dname = "sink"; dret_ty = Types.Void; dparams = [ Types.i32 ]; pure = false };
  ]

(** Lower a mini-C function to its clang-O0-shaped IR. *)
let lower (cf : Cgen.cfunc) : modul * func =
  let st =
    {
      blocks = [];
      cur_label = "entry";
      cur_instrs = [];
      entry_allocas = [];
      slots = [];
      arr_slots = [];
      counter = 0;
      retval = "retval";
      ret_ty = cf.Cgen.ret;
    }
  in
  st.entry_allocas <-
    [
      {
        name = Some st.retval;
        instr = Alloca { ty = ir_ty cf.Cgen.ret; align = Cgen.bits cf.Cgen.ret / 8 };
      };
    ];
  (* parameters: spill to allocas, clang-style *)
  let params = List.map (fun (p, ty) -> (ir_ty ty, p)) cf.Cgen.params in
  List.iter
    (fun (p, ty) ->
      let _slot = add_slot st p ty in
      store_var st p (Var p))
    cf.Cgen.params;
  List.iter (lower_stmt st) cf.Cgen.body;
  (* fall-through (possible only in dead blocks): route to return anyway *)
  finish_block st (Br "return");
  start_block st "return";
  let rv =
    emit_value st "rv"
      (Load { ty = ir_ty cf.Cgen.ret; ptr = Var st.retval; align = Cgen.bits cf.Cgen.ret / 8 })
  in
  finish_block st (Ret (Some (ir_ty cf.Cgen.ret, rv)));
  let blocks = List.rev st.blocks in
  let blocks =
    match blocks with
    | entry :: rest -> { entry with instrs = List.rev st.entry_allocas @ entry.instrs } :: rest
    | [] -> assert false
  in
  let f = { fname = cf.Cgen.name; ret_ty = ir_ty cf.Cgen.ret; params; blocks } in
  let m = { globals = []; decls = module_decls; funcs = [ f ] } in
  (m, f)

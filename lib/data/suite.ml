(** Dataset construction, following §IV-A of the paper:

    1. generate source programs ("test suite" surrogate) and lower at -O0;
    2. produce reference labels with `-instcombine`;
    3. keep only pairs Alive proves semantically equivalent (no UB, no
       timeout), and only functions within the 2048-token context limit;
    4. drop pairs where instcombine found nothing to do (the paper notes no
       such samples survive into its sets);
    5. split train / validation disjointly by seed. *)

open Veriopt_ir
module Alive = Veriopt_alive.Alive
module Pass_manager = Veriopt_passes.Pass_manager
module Par = Veriopt_par.Par

type sample = {
  id : int;
  modul : Ast.modul; (* declarations context shared by src and label *)
  src : Ast.func; (* the -O0 form *)
  label : Ast.func; (* the -instcombine reference *)
  trace : Pass_manager.trace_entry list; (* rule applications src -> label *)
  src_text : string;
  label_text : string;
}

type stats = {
  generated : int;
  kept : int;
  dropped_no_change : int;
  dropped_not_equivalent : int;
  dropped_inconclusive : int;
  dropped_too_long : int;
}

let empty_stats =
  {
    generated = 0;
    kept = 0;
    dropped_no_change = 0;
    dropped_not_equivalent = 0;
    dropped_inconclusive = 0;
    dropped_too_long = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "generated %d; kept %d; dropped: unchanged %d, not-equivalent %d, inconclusive %d, too-long %d"
    s.generated s.kept s.dropped_no_change s.dropped_not_equivalent s.dropped_inconclusive
    s.dropped_too_long

(* The cheap front half of sample construction: generation, lowering,
   instcombine, and the no-change / token filters.  No solver involved. *)
let generate_candidate ~(seed : int) (id : int) : (sample, stats -> stats) result =
  let profile =
    (* vary shape across the corpus *)
    let r = Random.State.make [| seed; 77 |] in
    {
      Cgen.default_profile with
      Cgen.max_stmts = 2 + Random.State.int r 6;
      Cgen.max_depth = 2 + Random.State.int r 2;
      Cgen.allow_loops = Random.State.int r 4 = 0;
      Cgen.allow_calls = Random.State.int r 3 = 0;
    }
  in
  let cf = Cgen.generate ~profile ~seed ~name:(Fmt.str "f%d" id) () in
  let modul, src = Lower.lower cf in
  let label, trace = Pass_manager.instcombine modul src in
  let src_text = Printer.func_to_string src in
  let label_text = Printer.func_to_string label in
  if trace = [] then Error (fun s -> { s with dropped_no_change = s.dropped_no_change + 1 })
  else if not (Veriopt_nlp.Tokenizer.within_limit src_text) then
    Error (fun s -> { s with dropped_too_long = s.dropped_too_long + 1 })
  else Ok { id; modul; src; label; trace; src_text; label_text }

(* The expensive back half: the Alive equivalence filter. *)
let verify_candidate (s : sample) : (sample, stats -> stats) result =
  match (Alive.verify_funcs s.modul ~src:s.src ~tgt:s.label).Alive.category with
  | Alive.Equivalent -> Ok s
  | Alive.Semantic_error | Alive.Syntax_error ->
    Error (fun s -> { s with dropped_not_equivalent = s.dropped_not_equivalent + 1 })
  | Alive.Inconclusive ->
    Error (fun s -> { s with dropped_inconclusive = s.dropped_inconclusive + 1 })

(** Build one candidate sample from a seed; [Error] when filtered out. *)
let build_sample ?(verify = true) ~(seed : int) (id : int) : (sample, stats -> stats) result =
  match generate_candidate ~seed id with
  | Error bump -> Error bump
  | Ok s -> if verify then verify_candidate s else Ok s

type dataset = { samples : sample list; stats : stats }

(** Build [n] samples starting from [seed0].  Training and validation sets
    use disjoint seed ranges, which keeps them strictly separated (the
    paper's "strictly isolated ... to avoid any data leakage").

    With verification on and a parallel {!Par} pool available, the Alive
    filter — by far the dominant cost — runs over the pool in waves, and is
    bit-for-bit identical to the sequential build: a sample's id (hence its
    printed name) depends on how many earlier candidates were kept, so each
    wave guesses ids optimistically (assuming every verified candidate
    survives), verifies in parallel, and commits results in order; the first
    verify-level drop invalidates the guessed ids of the wave's tail, which
    is simply re-generated from the same seeds with corrected ids.  Since
    label pairs overwhelmingly verify as equivalent, aborts are rare. *)
let build ?(verify = true) ~seed0 ~n () : dataset =
  let sequential () =
    let rec go i id acc stats =
      if id >= n then { samples = List.rev acc; stats }
      else
        let stats = { stats with generated = stats.generated + 1 } in
        match build_sample ~verify ~seed:(seed0 + i) id with
        | Ok s -> go (i + 1) (id + 1) (s :: acc) { stats with kept = stats.kept + 1 }
        | Error bump -> go (i + 1) id acc (bump stats)
    in
    go 0 0 [] empty_stats
  in
  let jobs = Par.shared_jobs () in
  if (not verify) || jobs <= 1 || n <= 0 then sequential ()
  else begin
    let wave = 2 * jobs in
    let rec go i id acc stats =
      if id >= n then { samples = List.rev acc; stats }
      else begin
        (* Phase A (sequential, cheap): generate a wave with guessed ids. *)
        let gid = ref id in
        let cands =
          List.init wave (fun j ->
              let r = generate_candidate ~seed:(seed0 + i + j) !gid in
              (match r with Ok _ -> incr gid | Error _ -> ());
              (i + j, r))
        in
        (* Phase B (parallel): the Alive filter over the survivors. *)
        let verified =
          Par.run verify_candidate
            (List.filter_map (function _, Ok s -> Some s | _ -> None) cands)
        in
        (* Phase C (in order): commit until a verify-drop stales the guesses. *)
        let rec commit cands vres next_i id acc stats =
          match cands with
          | [] -> go next_i id acc stats
          | (j, r) :: rest -> (
            if id >= n then { samples = List.rev acc; stats }
            else
              let stats = { stats with generated = stats.generated + 1 } in
              match r with
              | Error bump -> commit rest vres (j + 1) id acc (bump stats)
              | Ok _ -> (
                match vres with
                | Ok s :: vrest ->
                  (* abort-on-drop keeps guessed ids equal to true ids for
                     every committed keep *)
                  commit rest vrest (j + 1) (id + 1) (s :: acc)
                    { stats with kept = stats.kept + 1 }
                | Error bump :: _ ->
                  (* the tail's guessed ids are now one too high: redo it *)
                  go (j + 1) id acc (bump stats)
                | [] -> assert false))
        in
        commit cands verified (i + wave) id acc stats
      end
    in
    go 0 0 [] empty_stats
  end

let train_seed_base = 1_000_000
let validation_seed_base = 9_000_000

let training ?(verify = true) ~n () = build ~verify ~seed0:train_seed_base ~n ()
let validation ?(verify = true) ~n () = build ~verify ~seed0:validation_seed_base ~n ()

(** A mini-C program generator: the offline stand-in for the LLVM and GCC
    test suites.

    Generated functions mix plain random arithmetic with the redundancy
    idioms compiler test suites are full of (multiply by one, shift
    round-trips, `x % 8`, equal ternary arms, dead locals): exactly the
    material `-instcombine` exists to clean up.  Generation is fully
    deterministic given the seed. *)

type ty = I8 | I16 | I32 | I64

let bits = function I8 -> 8 | I16 -> 16 | I32 -> 32 | I64 -> 64

type binop = CAdd | CSub | CMul | CDiv | CMod | CAnd | COr | CXor | CShl | CShr

type cmp = CEq | CNe | CLt | CLe | CGt | CGe

type expr =
  | Const of ty * int64
  | Var of string (* locals and parameters *)
  | Bin of binop * expr * expr
  | Cmp of cmp * expr * expr (* yields int (0/1) as in C *)
  | Cond of expr * expr * expr (* ternary *)
  | Sel of expr * expr * expr (* branchless ternary: both arms evaluate, lowers to select *)
  | Idx of string * expr (* a[e] — array read, lowers to a non-constant GEP *)
  | Call of string * expr list
  | Cast of ty * expr

type stmt =
  | Decl of string * ty * expr
  | DeclArr of string * ty * int (* ty a[n] = {0}; n is a power of two *)
  | Assign of string * expr
  | AssignIdx of string * expr * expr (* a[e1] = e2 *)
  | If of expr * stmt list * stmt list
  | Switch of string * (int64 * stmt list) list * stmt list (* break-style switch *)
  | For of string * int * stmt list (* for (i = 0; i < n; i++) — bounded *)
  | CallStmt of string * expr list
  | Return of expr

type cfunc = {
  name : string;
  ret : ty;
  params : (string * ty) list;
  body : stmt list;
  uses_ext_call : bool;
}

(* ------------------------------------------------------------------ *)

type profile = {
  max_depth : int;
  max_stmts : int;
  allow_branches : bool;
  allow_loops : bool;
  allow_calls : bool;
  idiom_bias : float; (* probability that an expression is a cleanup idiom *)
  (* Adversarial widening knobs.  All default to 0., and every use site is
     guarded by [bias > 0.] BEFORE drawing from the RNG, so [default_profile]
     consumes the exact same random stream as before these fields existed
     (seed stability is pinned by test). *)
  gep_bias : float; (* local arrays with non-constant (masked) GEP indexing *)
  select_bias : float; (* branchless ternaries that lower straight to select *)
  phi_bias : float; (* extra value-merging diamonds (phi-heavy CFGs) *)
  ovf_bias : float; (* nsw arithmetic pinned near the signed overflow boundary *)
}

let default_profile =
  {
    max_depth = 3;
    max_stmts = 6;
    allow_branches = true;
    allow_loops = true;
    allow_calls = true;
    idiom_bias = 0.45;
    gep_bias = 0.;
    select_bias = 0.;
    phi_bias = 0.;
    ovf_bias = 0.;
  }

(** The adversarial-widening profile the miner seeds from: every new shape
    family switched on at once, on top of the default mix. *)
let adversarial_profile =
  {
    default_profile with
    gep_bias = 0.25;
    select_bias = 0.2;
    phi_bias = 0.2;
    ovf_bias = 0.25;
  }

type gen_state = {
  rng : Random.State.t;
  mutable vars : (string * ty) list; (* in scope, initialized *)
  mutable arrays : (string * ty * int) list; (* in scope, zero-initialized *)
  mutable counter : int;
  mutable used_call : bool;
  profile : profile;
}

let fresh st prefix =
  st.counter <- st.counter + 1;
  Fmt.str "%s%d" prefix st.counter

let pick st xs = List.nth xs (Random.State.int st.rng (List.length xs))
let chance st p = Random.State.float st.rng 1.0 < p

let random_const st ty =
  let interesting = [ 0L; 1L; 2L; 3L; 4L; 7L; 8L; 15L; 16L; 255L; -1L; -2L; 10L; 12L ] in
  let v =
    if chance st 0.7 then pick st interesting
    else Int64.of_int (Random.State.int st.rng 1000 - 500)
  in
  Const (ty, Veriopt_ir.Bits.mask (bits ty) v)

let vars_of_ty st ty = List.filter (fun (_, t) -> t = ty) st.vars

let rec random_expr st ty depth : expr =
  if depth <= 0 || chance st 0.25 then random_leaf st ty
  else if st.profile.gep_bias > 0. && st.arrays <> [] && chance st st.profile.gep_bias then
    random_index st ty depth
  else if st.profile.select_bias > 0. && chance st st.profile.select_bias then
    Sel
      ( Cmp (pick st [ CLt; CNe; CGt; CLe ], random_leaf st ty, random_const st ty),
        random_expr st ty (depth - 1),
        random_expr st ty (depth - 1) )
  else if st.profile.phi_bias > 0. && chance st st.profile.phi_bias then
    Cond
      ( Cmp (pick st [ CLt; CNe; CEq ], random_leaf st ty, random_const st ty),
        random_expr st ty (depth - 1),
        random_expr st ty (depth - 1) )
  else if st.profile.ovf_bias > 0. && chance st st.profile.ovf_bias then
    random_overflow st ty depth
  else if chance st st.profile.idiom_bias then random_idiom st ty depth
  else
    match Random.State.int st.rng 10 with
    | 0 | 1 | 2 ->
      let op = pick st [ CAdd; CSub; CMul; CAnd; COr; CXor ] in
      Bin (op, random_expr st ty (depth - 1), random_expr st ty (depth - 1))
    | 3 ->
      (* division and modulo only by non-zero constants: keeps generated
         sources UB-free, like a sanitized test suite *)
      let d = pick st [ 2L; 3L; 4L; 5L; 7L; 8L; 16L ] in
      Bin (pick st [ CDiv; CMod ], random_expr st ty (depth - 1), Const (ty, d))
    | 4 ->
      let s = Int64.of_int (Random.State.int st.rng (bits ty - 1)) in
      Bin (pick st [ CShl; CShr ], random_expr st ty (depth - 1), Const (ty, s))
    | 5 ->
      let c = pick st [ CEq; CNe; CLt; CLe; CGt; CGe ] in
      Cast (ty, Cmp (c, random_expr st ty (depth - 1), random_expr st ty (depth - 1)))
    | 6 ->
      Cond
        ( Cmp (pick st [ CLt; CNe; CGt ], random_leaf st ty, random_const st ty),
          random_expr st ty (depth - 1),
          random_expr st ty (depth - 1) )
    | 7 when st.profile.allow_calls && not st.used_call ->
      st.used_call <- true;
      Call ("ext", [ random_expr st I32 (depth - 1) ])
    | 7 | 8 ->
      let other = pick st [ I8; I16; I32; I64 ] in
      if other = ty then random_leaf st ty else Cast (ty, random_expr st other (depth - 1))
    | _ -> random_leaf st ty

and random_leaf st ty =
  match vars_of_ty st ty with
  | [] -> random_const st ty
  | vs -> if chance st 0.7 then Var (fst (pick st vs)) else random_const st ty

(* Cleanup idioms: expressions with instcombine-visible slack. *)
and random_idiom st ty depth : expr =
  let x () = random_expr st ty (depth - 1) in
  match Random.State.int st.rng 12 with
  | 0 -> Bin (CMul, x (), Const (ty, 1L)) (* x * 1 *)
  | 1 -> Bin (CAdd, x (), Const (ty, 0L)) (* x + 0 *)
  | 2 ->
    let e = x () in
    Bin (CSub, e, e) (* x - x *)
  | 3 ->
    let s = Int64.of_int (1 + Random.State.int st.rng 3) in
    Bin (CShr, Bin (CShl, x (), Const (ty, s)), Const (ty, s)) (* (x<<s)>>s *)
  | 4 -> Bin (CMul, x (), Const (ty, pick st [ 2L; 4L; 8L ])) (* strength reduction *)
  | 5 -> Bin (CMod, x (), Const (ty, pick st [ 2L; 4L; 8L; 16L ])) (* x % 2^k *)
  | 6 -> Bin (CDiv, x (), Const (ty, pick st [ 2L; 4L; 8L ])) (* x / 2^k *)
  | 7 ->
    let e = x () in
    Cond (Cmp (CEq, e, random_const st ty), e, e) (* c ? x : x *)
  | 8 -> Bin (CAnd, x (), Const (ty, Veriopt_ir.Bits.all_ones (bits ty))) (* x & -1 *)
  | 9 -> Bin (COr, x (), Const (ty, 0L)) (* x | 0 *)
  | 10 ->
    let e = x () in
    Bin (CXor, Bin (CXor, e, Const (ty, 5L)), Const (ty, 5L)) (* (x^5)^5 *)
  | _ ->
    (* x + c1 + c2 *)
    Bin (CAdd, Bin (CAdd, x (), random_const st ty), random_const st ty)

(* An array read with a non-constant, mask-bounded index: a[e & (n-1)].
   Masking with the power-of-two size keeps every access in bounds (UB-free)
   while leaving the index genuinely symbolic for the verifier. *)
and random_index st ty depth : expr =
  let a, aty, n = pick st st.arrays in
  let idx =
    Bin (CAnd, random_expr st I32 (depth - 1), Const (I32, Int64.of_int (n - 1)))
  in
  let read = Idx (a, idx) in
  if aty = ty then read else Cast (ty, read)

(* nsw/nuw-sensitive arithmetic: operands pinned next to the signed boundary,
   where the lowered `add nsw`/`mul nsw` flags decide poison. *)
and random_overflow st ty depth : expr =
  let w = bits ty in
  let smax = Int64.sub (Int64.shift_left 1L (w - 1)) 1L in
  let near =
    pick st [ smax; Int64.sub smax 1L; Int64.neg (Int64.add smax 1L); Int64.sub smax 2L ]
  in
  let op = pick st [ CAdd; CSub; CMul ] in
  Bin (op, random_expr st ty (depth - 1), Const (ty, Veriopt_ir.Bits.mask w near))

(* A guarded array statement: declare a fresh power-of-two array or store
   through a non-constant index into one already in scope. *)
let random_array_stmt st ~depth : stmt =
  if st.arrays = [] || chance st 0.3 then begin
    let name = fresh st "a" in
    let ty = pick st [ I8; I16; I32; I64 ] in
    let n = pick st [ 4; 4; 8; 8; 16 ] in
    st.arrays <- (name, ty, n) :: st.arrays;
    DeclArr (name, ty, n)
  end
  else
    let a, aty, n = pick st st.arrays in
    let idx =
      Bin (CAnd, random_expr st I32 (depth - 1), Const (I32, Int64.of_int (n - 1)))
    in
    AssignIdx (a, idx, random_expr st aty depth)

let random_stmts st ~depth ~count ~ret_ty : stmt list =
  let rec stmts n acc =
    if n = 0 then List.rev acc
    else
      let s =
        if st.profile.gep_bias > 0. && chance st st.profile.gep_bias then
          random_array_stmt st ~depth
        else
        match Random.State.int st.rng 8 with
        | 0 | 1 | 2 ->
          let ty = pick st [ I8; I16; I32; I64 ] in
          let name = fresh st "v" in
          let e = random_expr st ty depth in
          st.vars <- (name, ty) :: st.vars;
          Decl (name, ty, e)
        | 3 when st.vars <> [] ->
          let v, ty = pick st st.vars in
          Assign (v, random_expr st ty depth)
        | 4 when st.profile.allow_branches ->
          let ty = match st.vars with (_, t) :: _ -> t | [] -> I32 in
          let cond = Cmp (pick st [ CLt; CGt; CEq; CNe ], random_leaf st ty, random_const st ty) in
          let saved = st.vars and saved_arrays = st.arrays in
          let then_ = stmts (1 + Random.State.int st.rng 2) [] in
          st.vars <- saved;
          st.arrays <- saved_arrays;
          let else_ = if chance st 0.5 then stmts (1 + Random.State.int st.rng 2) [] else [] in
          st.vars <- saved;
          st.arrays <- saved_arrays;
          If (cond, then_, else_)
        | 5 when st.profile.allow_loops ->
          let i = fresh st "i" in
          let saved = st.vars and saved_arrays = st.arrays in
          st.vars <- (i, I32) :: st.vars;
          let body = stmts (1 + Random.State.int st.rng 2) [] in
          st.vars <- saved;
          st.arrays <- saved_arrays;
          For (i, 1 + Random.State.int st.rng 3, body)
        | 6 when st.profile.allow_calls && not st.used_call ->
          st.used_call <- true;
          CallStmt ("sink", [ random_expr st I32 depth ])
        | 7 when st.profile.allow_branches && st.vars <> [] && chance st 0.35 ->
          (* a small break-style switch over an existing variable *)
          let v, _ = pick st st.vars in
          let saved = st.vars and saved_arrays = st.arrays in
          let case c =
            let body = stmts (1 + Random.State.int st.rng 2) [] in
            st.vars <- saved;
            st.arrays <- saved_arrays;
            (c, body)
          in
          let cases = List.map case [ 0L; 1L; pick st [ 2L; 3L; 7L ] ] in
          let default = stmts 1 [] in
          st.vars <- saved;
          st.arrays <- saved_arrays;
          Switch (v, cases, default)
        | _ ->
          let ty = pick st [ I8; I16; I32; I64 ] in
          let name = fresh st "v" in
          let e = random_expr st ty depth in
          st.vars <- (name, ty) :: st.vars;
          Decl (name, ty, e)
      in
      stmts (n - 1) (s :: acc)
  in
  let body = stmts count [] in
  (* guarantee a final return of the right type *)
  body @ [ Return (random_expr st ret_ty depth) ]

(** Generate one function.  Deterministic in [seed]. *)
let generate ?(profile = default_profile) ~seed ~name () : cfunc =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let st = { rng; vars = []; arrays = []; counter = 0; used_call = false; profile } in
  let nparams = 1 + Random.State.int rng 3 in
  let params =
    List.init nparams (fun i -> (Fmt.str "p%d" i, pick st [ I8; I16; I32; I64 ]))
  in
  st.vars <- params;
  let ret = pick st [ I8; I16; I32; I64 ] in
  let body =
    random_stmts st ~depth:st.profile.max_depth
      ~count:(1 + Random.State.int rng st.profile.max_stmts)
      ~ret_ty:ret
  in
  { name; ret; params; body; uses_ext_call = st.used_call }

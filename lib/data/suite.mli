(** Dataset construction, following the paper's §IV-A: generate programs,
    lower at -O0, label with instcombine, keep only Alive-verified pairs
    within the token limit and with real optimization work, split train and
    validation by disjoint seed ranges. *)

type sample = {
  id : int;
  modul : Veriopt_ir.Ast.modul;
  src : Veriopt_ir.Ast.func;  (** the -O0 form *)
  label : Veriopt_ir.Ast.func;  (** the -instcombine reference *)
  trace : Veriopt_passes.Pass_manager.trace_entry list;  (** src -> label rule applications *)
  src_text : string;
  label_text : string;
}

type stats = {
  generated : int;
  kept : int;
  dropped_no_change : int;
  dropped_not_equivalent : int;
  dropped_inconclusive : int;
  dropped_too_long : int;
}

val empty_stats : stats
val pp_stats : Format.formatter -> stats -> unit

type dataset = { samples : sample list; stats : stats }

val build_sample : ?verify:bool -> seed:int -> int -> (sample, stats -> stats) result

val build : ?verify:bool -> seed0:int -> n:int -> unit -> dataset
(** With [verify] on, the per-sample Alive filter runs over the shared
    {!Veriopt_par.Par} pool (sized by [VERIOPT_JOBS]; [VERIOPT_JOBS=1] keeps
    the build sequential).  The parallel build produces bit-for-bit the same
    dataset and stats as the sequential one. *)

val train_seed_base : int
val validation_seed_base : int

val training : ?verify:bool -> n:int -> unit -> dataset
val validation : ?verify:bool -> n:int -> unit -> dataset

(** The four-model training pipeline of the paper's Fig. 3. *)

module Model = Veriopt_llm.Model
module Suite = Veriopt_data.Suite

type options = {
  grpo_steps : int;
  group_size : int;
  learning_rate : float;
  sft_epochs : int;
  seed : int;
  max_conflicts : int;
  verbose : bool;
  checkpoint_dir : string option;
      (** write a {!Checkpoint} snapshot per stage when set (default off) *)
  checkpoint_every : int;
      (** snapshot period in GRPO steps (default 25; [0] = only at stage end) *)
  resume : bool;
      (** start each stage from its snapshot in [checkpoint_dir] when one
          exists; the resumed trajectory is bit-identical to an
          uninterrupted run *)
  verify_timeout : float option;
      (** per-candidate verification wall-clock budget in seconds *)
  isolate : Veriopt_alive.Engine.isolate option;
      (** tier-2 verification backend for stages run without an explicit
          [engine]: [Some Proc] gives each stage a dedicated engine whose
          SMT queries run in forked, SIGKILL-able workers; [None] (default)
          defers to the engine's own [VERIOPT_ISOLATE] resolution *)
  curriculum : Suite.sample list;
      (** extra samples oversampled during GRPO — typically
          {!Veriopt_adversary.Miner.curriculum_samples} of a mined pain
          corpus.  Empty (the default) leaves the sampling RNG trajectory
          bit-identical to older runs *)
  curriculum_share : float;
      (** probability that a GRPO step draws from [curriculum] instead of
          the training set (default 0.25; only consulted when [curriculum]
          is non-empty) *)
}

val default_options : options

type stage_log = { raw_rewards : float list; ema_rewards : float list }

(** {1 Stage 1 — Model-Zero}

    GRPO on the base model with generic prompts.  Doubles as the
    diagnostic-augmented sample generator: every failed rollout is harvested
    with Alive's verdict and message. *)

type stage1_result = {
  model_zero : Model.t;
  failures : Sft.failure_record list;
  zero_log : stage_log;
}

val train_model_zero :
  ?opts:options ->
  ?engine:Veriopt_alive.Engine.t ->
  Model.t ->
  Suite.sample list ->
  stage1_result
(** Group verification runs on the shared Par pool through [engine]
    (default: {!Veriopt_alive.Engine.shared}). *)

(** {1 Stage 2 — Warm-up and Model-Correctness} *)

val warm_up : ?opts:options -> Model.t -> Suite.sample list -> Sft.failure_record list -> Model.t
(** SFT from the pretrained base on first-time + correction samples. *)

val sft_baseline : ?opts:options -> Model.t -> Suite.sample list -> Model.t
(** SFT-only comparators (the paper's Fig. 5 baselines), generic prompts. *)

type stage2_result = { model_correctness : Model.t; correctness_log : stage_log }

val train_correctness :
  ?opts:options ->
  ?engine:Veriopt_alive.Engine.t ->
  Model.t ->
  Suite.sample list ->
  stage2_result
(** GRPO with augmented prompts; reward = Eq. 1 (answer) + Eq. 2 (CoT). *)

(** {1 Stage 3 — Model-Latency} *)

type stage3_result = { model_latency : Model.t; latency_log : stage_log }

val train_latency :
  ?opts:options ->
  ?engine:Veriopt_alive.Engine.t ->
  Model.t ->
  Suite.sample list ->
  stage3_result
(** Incremental GRPO with the latency reward; labels dropped, correctness
    kept in the reward through the verifier. *)

type pipeline_result = {
  base : Model.t;
  stage1 : stage1_result;
  warm : Model.t;
  stage2 : stage2_result;
  stage3 : stage3_result;
}

val full_pipeline :
  ?opts:options ->
  ?engine:Veriopt_alive.Engine.t ->
  Model.t ->
  Suite.sample list ->
  pipeline_result

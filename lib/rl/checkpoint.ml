(** Versioned, atomically-written training snapshots.

    A snapshot is everything a GRPO stage loop consumes or mutates: the model
    parameters, the stage RNG, the last completed step and the running
    metrics (plus stage 1's harvested failures).  [Marshal] round-trips the
    [Random.State.t] and the parameter table exactly, so a resumed run
    replays the uninterrupted trajectory bit for bit.

    Files are written tmp + rename so a crash mid-write can never leave a
    torn snapshot: the previous one survives untouched. *)

module Model = Veriopt_llm.Model

let magic = "VERIOPT-CKPT"
let version = 1

type snapshot = {
  stage : string;  (** which stage loop wrote this (e.g. "model-zero") *)
  step : int;  (** last completed GRPO step *)
  model : Model.t;
  rng : Random.State.t;
  rewards_rev : float list;  (** per-step mean rewards, most recent first *)
  failures_rev : Sft.failure_record list;  (** stage-1 harvest, most recent first *)
}

let path ~dir ~stage = Filename.concat dir (stage ^ ".ckpt")

let save ~dir (snap : snapshot) : unit =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let final = path ~dir ~stage:snap.stage in
  let tmp = final ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      Marshal.to_channel oc snap []);
  Sys.rename tmp final

let load ~dir ~stage : (snapshot, string) result =
  let file = path ~dir ~stage in
  if not (Sys.file_exists file) then Error (Printf.sprintf "no checkpoint at %s" file)
  else
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match
          let got_magic = really_input_string ic (String.length magic) in
          let got_version = input_binary_int ic in
          (got_magic, got_version)
        with
        | exception _ -> Error (Printf.sprintf "%s: truncated or not a checkpoint" file)
        | got_magic, _ when got_magic <> magic ->
          Error (Printf.sprintf "%s: bad magic (not a veriopt checkpoint)" file)
        | _, got_version when got_version <> version ->
          Error
            (Printf.sprintf "%s: checkpoint version %d, this binary reads %d" file got_version
               version)
        | _ -> (
          match (Marshal.from_channel ic : snapshot) with
          | snap when snap.stage = stage -> Ok snap
          | snap -> Error (Printf.sprintf "%s: stage %S, expected %S" file snap.stage stage)
          | exception _ -> Error (Printf.sprintf "%s: corrupt snapshot payload" file)))

(** Versioned, atomically-written training snapshots.

    A snapshot is everything a GRPO stage loop consumes or mutates: the model
    parameters, the stage RNG, the last completed step and the running
    metrics (plus stage 1's harvested failures).  [Marshal] round-trips the
    [Random.State.t] and the parameter table exactly, so a resumed run
    replays the uninterrupted trajectory bit for bit.

    Files are written tmp + rename so a crash mid-write can never leave a
    torn snapshot, and each write rotates the outgoing snapshot to
    [<file>.prev].  The payload carries its length and a CRC-32, so load
    detects truncation and bit rot — not just the torn-write case rename
    already rules out — and falls back to [.prev] with a warning instead of
    silently resuming from garbage. *)

module Model = Veriopt_llm.Model

let magic = "VERIOPT-CKPT"
let version = 2

type snapshot = {
  stage : string;  (** which stage loop wrote this (e.g. "model-zero") *)
  step : int;  (** last completed GRPO step *)
  model : Model.t;
  rng : Random.State.t;
  rewards_rev : float list;  (** per-step mean rewards, most recent first *)
  failures_rev : Sft.failure_record list;  (** stage-1 harvest, most recent first *)
}

let path ~dir ~stage = Filename.concat dir (stage ^ ".ckpt")
let prev_path file = file ^ ".prev"

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.  A handful of
   megabytes per checkpoint write is well under the noise floor of a GRPO
   step, and it keeps the format dependency-free. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)

let save ~dir (snap : snapshot) : unit =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let final = path ~dir ~stage:snap.stage in
  let tmp = final ^ ".tmp" in
  let payload = Marshal.to_string snap [] in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      output_binary_int oc (String.length payload);
      output_binary_int oc (Int32.to_int (crc32 payload));
      output_string oc payload);
  (* rotate before rename: the outgoing good snapshot becomes the fallback *)
  if Sys.file_exists final then Sys.rename final (prev_path final);
  Sys.rename tmp final

let load_file ~stage file : (snapshot, string) result =
  if not (Sys.file_exists file) then Error (Printf.sprintf "no checkpoint at %s" file)
  else
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match
          let got_magic = really_input_string ic (String.length magic) in
          let got_version = input_binary_int ic in
          (got_magic, got_version)
        with
        | exception _ -> Error (Printf.sprintf "%s: truncated or not a checkpoint" file)
        | got_magic, _ when got_magic <> magic ->
          Error (Printf.sprintf "%s: bad magic (not a veriopt checkpoint)" file)
        | _, got_version when got_version <> version ->
          Error
            (Printf.sprintf "%s: checkpoint version %d, this binary reads %d" file got_version
               version)
        | _ -> (
          match
            let len = input_binary_int ic in
            let stored_crc = input_binary_int ic land 0xFFFFFFFF in
            if len < 0 then failwith "negative length"
            else
              let payload = really_input_string ic len in
              (payload, stored_crc)
          with
          | exception _ -> Error (Printf.sprintf "%s: truncated snapshot payload" file)
          | payload, stored_crc ->
            if Int32.to_int (crc32 payload) land 0xFFFFFFFF <> stored_crc then
              Error (Printf.sprintf "%s: snapshot CRC mismatch (corrupt payload)" file)
            else (
              match (Marshal.from_string payload 0 : snapshot) with
              | snap when snap.stage = stage -> Ok snap
              | snap -> Error (Printf.sprintf "%s: stage %S, expected %S" file snap.stage stage)
              | exception _ -> Error (Printf.sprintf "%s: corrupt snapshot payload" file))))

let load ~dir ~stage : (snapshot, string) result =
  let file = path ~dir ~stage in
  match load_file ~stage file with
  | Ok _ as ok -> ok
  | Error reason when Sys.file_exists (prev_path file) -> (
    (* the latest snapshot is unusable; fall back one write *)
    Printf.eprintf "veriopt: %s; falling back to %s\n%!" reason (prev_path file);
    match load_file ~stage (prev_path file) with
    | Ok _ as ok -> ok
    | Error prev_reason -> Error (Printf.sprintf "%s (fallback: %s)" reason prev_reason))
  | Error _ as e -> e

(** Versioned, atomically-written training snapshots.

    A snapshot is everything a GRPO stage loop consumes or mutates: the model
    parameters, the stage RNG, the last completed step and the running
    metrics (plus stage 1's harvested failures).  [Marshal] round-trips the
    [Random.State.t] and the parameter table exactly, so a resumed run
    replays the uninterrupted trajectory bit for bit.

    The on-disk framing (magic, version, length, CRC-32, tmp + rename,
    [.prev] rotation) is the shared {!Veriopt_store.Blob} format — the same
    idioms the disk-backed verdict store uses — so a crash mid-write can
    never leave a torn snapshot, and load detects truncation and bit rot and
    falls back to [.prev] with a warning instead of silently resuming from
    garbage. *)

module Model = Veriopt_llm.Model
module Blob = Veriopt_store.Blob

let magic = "VERIOPT-CKPT"
let version = 2

type snapshot = {
  stage : string;  (** which stage loop wrote this (e.g. "model-zero") *)
  step : int;  (** last completed GRPO step *)
  model : Model.t;
  rng : Random.State.t;
  rewards_rev : float list;  (** per-step mean rewards, most recent first *)
  failures_rev : Sft.failure_record list;  (** stage-1 harvest, most recent first *)
}

let path ~dir ~stage = Filename.concat dir (stage ^ ".ckpt")
let prev_path = Blob.prev_path

let save ~dir (snap : snapshot) : unit =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let final = path ~dir ~stage:snap.stage in
  Blob.write_framed ~magic ~version ~path:final (Marshal.to_string snap [])

let load_file ~stage file : (snapshot, string) result =
  match Blob.read_framed ~magic ~version ~path:file with
  | Error Blob.Missing -> Error (Printf.sprintf "no checkpoint at %s" file)
  | Error Blob.Truncated_header -> Error (Printf.sprintf "%s: truncated or not a checkpoint" file)
  | Error Blob.Bad_magic -> Error (Printf.sprintf "%s: bad magic (not a veriopt checkpoint)" file)
  | Error (Blob.Bad_version got) ->
    Error (Printf.sprintf "%s: checkpoint version %d, this binary reads %d" file got version)
  | Error Blob.Truncated_payload -> Error (Printf.sprintf "%s: truncated snapshot payload" file)
  | Error Blob.Crc_mismatch ->
    Error (Printf.sprintf "%s: snapshot CRC mismatch (corrupt payload)" file)
  | Ok payload -> (
    match (Marshal.from_string payload 0 : snapshot) with
    | snap when snap.stage = stage -> Ok snap
    | snap -> Error (Printf.sprintf "%s: stage %S, expected %S" file snap.stage stage)
    | exception _ -> Error (Printf.sprintf "%s: corrupt snapshot payload" file))

let load ~dir ~stage : (snapshot, string) result =
  let file = path ~dir ~stage in
  match load_file ~stage file with
  | Ok _ as ok -> ok
  | Error reason when Sys.file_exists (prev_path file) -> (
    (* the latest snapshot is unusable; fall back one write *)
    Printf.eprintf "veriopt: %s; falling back to %s\n%!" reason (prev_path file);
    match load_file ~stage (prev_path file) with
    | Ok _ as ok -> ok
    | Error prev_reason -> Error (Printf.sprintf "%s (fallback: %s)" reason prev_reason))
  | Error _ as e -> e

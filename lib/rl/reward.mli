(** The paper's reward functions: Eq. 1 (hierarchical correctness), Eq. 2
    (chain-of-thought agreement), Eqs. 3–4 (saturating convex latency). *)

type verified_candidate = {
  verdict : Veriopt_alive.Alive.verdict;
  parsed : Veriopt_ir.Ast.func option;
  answer_text : string option;
}

type config = { unroll : int; max_conflicts : int; timeout : float option }
(** Verifier budget shared by every reward path (one definition instead of
    per-call-site magic numbers).  [timeout], when set, is a per-candidate
    wall-clock budget in seconds, converted to an absolute deadline when each
    verification starts; past it the verdict is [Inconclusive]. *)

val default_config : config
(** [unroll = 4], [max_conflicts = 60_000], [timeout = None] — the
    evaluation defaults. *)

val engine_failures : unit -> int
(** Verifications that raised and were converted to an engine-failure
    verdict (process-wide, since process start or the last reset). *)

val reset_engine_failures : unit -> unit

val syntax_verdict : string -> Veriopt_alive.Alive.verdict
(** A [Syntax_error] verdict with the given detail message. *)

val verify_completion :
  ?cfg:config ->
  ?engine:Veriopt_alive.Engine.t ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  string ->
  verified_candidate
(** Run the verifier over a raw model completion (format check included),
    through the tiered + cached engine ({!Veriopt_alive.Engine.shared} by
    default).  Crash-proof: any exception the engine raises (other than
    [Stack_overflow]/[Out_of_memory]) becomes a counted engine-failure
    verdict, scored like [Inconclusive] — see {!engine_failures}. *)

val correctness :
  format_ok:bool -> equivalent:bool -> exact_match:bool -> bleu:float -> float
(** Eq. 1: [t * (1 + a * (1 + m)) + b]. *)

val correctness_of_completion :
  ?cfg:config ->
  ?engine:Veriopt_alive.Engine.t ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  label:Veriopt_ir.Ast.func ->
  string ->
  float * verified_candidate

val cot_agreement :
  ?cfg:config ->
  ?engine:Veriopt_alive.Engine.t ->
  Veriopt_ir.Ast.modul ->
  src:Veriopt_ir.Ast.func ->
  claimed:Veriopt_llm.Diag.error_class ->
  think_attempt:string ->
  model_message:string ->
  float
(** Eq. 2: 1 on agreed-OK; 0.5 + 0.5*BLEU(F_model, F_alive) on agreed-ERR;
    0 on disagreement. *)

val latency :
  ?gamma:float -> u_max:float -> equivalent:bool -> baseline:int -> candidate:int -> unit -> float
(** Eq. 4: 0 unless verified and faster; then a convex saturating function
    of the speedup. *)

val u_max_of_samples : Veriopt_data.Suite.sample list -> float
(** The paper's [U_max]: the 80th percentile of instcombine's speedups over
    the training set. *)
